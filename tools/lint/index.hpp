// Include-graph / module index for hyades-lint.
//
// Built once over the whole corpus by scanning the #include directives
// the tokenizer captured.  The layering rule consumes module_deps; the
// header->includers map is available for future cross-TU rules.
//
// The dependency DAG is expressed as linear layers (an include is legal
// iff it targets the same module or a strictly lower layer):
//
//   support(0) <- sim(1) <- arctic(2) <- startx(3) <- net(4)
//            <- cluster(5) <- comm(6) <- gcm(7) <- {perf, farm}(8)
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/source.hpp"

namespace hyades::lint {

// Module name ("support", "gcm", ...) for a path under src/ (or a lint
// fixture mimicking one); "" when the path is not in a known module.
std::string module_of(const std::string& path);

// Layer number for a known module; -1 for unknown.
int layer_of(const std::string& module);

struct IncludeEdge {
  std::string from_file;
  std::string from_module;
  std::string to_module;
  std::size_t line = 0;  // 1-based
};

struct Index {
  // Edges between *known modules* (quoted includes only).
  std::vector<IncludeEdge> module_edges;
  // header target -> files that include it (quoted includes).
  std::map<std::string, std::set<std::string>> includers;

  static Index build(const std::vector<SourceFile>& files);
};

}  // namespace hyades::lint
