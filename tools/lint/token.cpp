#include "lint/token.hpp"

#include <algorithm>
#include <cctype>

namespace hyades::lint {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) { return c >= '0' && c <= '9'; }

// Raw-string prefixes: the identifier immediately before '"' that turns
// the literal into R"tag(...)tag" form.
bool raw_string_prefix(const std::string& id) {
  return id == "R" || id == "u8R" || id == "uR" || id == "UR" || id == "LR";
}

// Longest-match punctuation merging; everything else is a single char.
const char* const kPuncts3[] = {"...", "->*", "<<=", ">>="};
const char* const kPuncts2[] = {"::", "->", "+=", "-=", "*=", "/=", "%=",
                                "&=", "|=", "^=", "==", "!=", "<=", ">=",
                                "&&", "||", "<<", ">>", "++", "--", "##"};

// Parse `#include <...>` / `#include "..."` starting at the '#' in
// `line[hash]`.  Returns true and fills `out` when the directive is an
// include with a complete target on this line.
bool scan_include(const std::string& line, std::size_t hash,
                  std::size_t lineno, IncludeDirective* out) {
  std::size_t j = hash + 1;
  while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
  const char* kw = "include";
  for (const char* p = kw; *p != '\0'; ++p, ++j) {
    if (j >= line.size() || line[j] != *p) return false;
  }
  if (j < line.size() && ident_char(line[j])) return false;  // include_next
  while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
  if (j >= line.size()) return false;
  char close = '\0';
  bool angled = false;
  if (line[j] == '"') {
    close = '"';
  } else if (line[j] == '<') {
    close = '>';
    angled = true;
  } else {
    return false;
  }
  const std::size_t end = line.find(close, j + 1);
  if (end == std::string::npos) return false;
  out->target = line.substr(j + 1, end - j - 1);
  out->angled = angled;
  out->line = lineno;
  out->col = hash + 1;
  return true;
}

}  // namespace

LexedFile lex(const std::vector<std::string>& raw) {
  LexedFile out;
  out.code.reserve(raw.size());

  enum class St { kCode, kBlock, kLineComment, kStr, kChar, kRaw };
  St st = St::kCode;
  std::string raw_tag;  // raw-string terminator: )tag"
  Token pending;        // string/char literal being accumulated

  for (std::size_t li = 0; li < raw.size(); ++li) {
    const std::string& line = raw[li];
    const std::size_t lineno = li + 1;
    // A backslash as the very last character splices this physical line
    // with the next one -- in particular a `//` comment ending in a
    // backslash legally continues (the strip_noncode v1 bug treated the
    // continuation as code).
    const bool spliced = !line.empty() && line.back() == '\\';

    if (st == St::kLineComment) {
      out.code.emplace_back(line.size(), ' ');
      if (!spliced) st = St::kCode;
      continue;
    }

    std::string o;
    o.reserve(line.size());
    bool only_ws = true;       // nothing but whitespace emitted so far
    bool str_spliced = false;  // string/char literal continues past EOL
    std::size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      const char n = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (st) {
        case St::kCode: {
          if (c == '/' && n == '/') {
            o.append(line.size() - i, ' ');
            i = line.size();
            if (spliced) st = St::kLineComment;
            break;
          }
          if (c == '/' && n == '*') {
            st = St::kBlock;
            o += "  ";
            i += 2;
            break;
          }
          if (c == '"') {
            pending = Token{Tok::kString, "", lineno, i + 1};
            st = St::kStr;
            o += ' ';
            ++i;
            only_ws = false;
            break;
          }
          if (c == '\'') {
            pending = Token{Tok::kChar, "", lineno, i + 1};
            st = St::kChar;
            o += ' ';
            ++i;
            only_ws = false;
            break;
          }
          if (c == '#' && only_ws) {
            IncludeDirective inc;
            if (scan_include(line, i, lineno, &inc)) {
              out.includes.push_back(std::move(inc));
            }
            out.tokens.push_back(Token{Tok::kPunct, "#", lineno, i + 1});
            o += c;
            ++i;
            only_ws = false;
            break;
          }
          if (ident_start(c)) {
            std::size_t j = i;
            while (j < line.size() && ident_char(line[j])) ++j;
            std::string text = line.substr(i, j - i);
            if (j < line.size() && line[j] == '"' &&
                raw_string_prefix(text)) {
              // R"tag( ... )tag": collect the delimiter up to '('.
              std::size_t k = j + 1;
              std::string tag;
              while (k < line.size() && line[k] != '(') tag += line[k++];
              raw_tag = ")" + tag + "\"";
              pending = Token{Tok::kString, "", lineno, i + 1};
              st = St::kRaw;
              const std::size_t consumed = std::min(k + 1, line.size()) - i;
              o.append(consumed, ' ');
              i += consumed;
              only_ws = false;
              break;
            }
            out.tokens.push_back(
                Token{Tok::kIdent, text, lineno, i + 1});
            o += text;
            i = j;
            only_ws = false;
            break;
          }
          if (is_digit(c) || (c == '.' && is_digit(n))) {
            // pp-number: digits, identifier chars, '.', digit
            // separators, and signed exponents (1e-3, 0x1p+2).
            std::size_t j = i;
            while (j < line.size()) {
              const char d = line[j];
              if (!(ident_char(d) || d == '.' || d == '\'')) break;
              if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') &&
                  j + 1 < line.size() &&
                  (line[j + 1] == '+' || line[j + 1] == '-')) {
                j += 2;
              } else {
                ++j;
              }
            }
            const std::string text = line.substr(i, j - i);
            out.tokens.push_back(
                Token{Tok::kNumber, text, lineno, i + 1});
            o += text;
            i = j;
            only_ws = false;
            break;
          }
          if (c == ' ' || c == '\t') {
            o += c;
            ++i;
            break;
          }
          if (c == '\\' && i + 1 >= line.size()) {
            // Code-line splice: acts as whitespace.
            o += ' ';
            ++i;
            break;
          }
          {
            std::string text(1, c);
            for (const char* p : kPuncts3) {
              if (line.compare(i, 3, p) == 0) {
                text = p;
                break;
              }
            }
            if (text.size() == 1) {
              for (const char* p : kPuncts2) {
                if (line.compare(i, 2, p) == 0) {
                  text = p;
                  break;
                }
              }
            }
            out.tokens.push_back(
                Token{Tok::kPunct, text, lineno, i + 1});
            o += text;
            i += text.size();
            only_ws = false;
          }
          break;
        }
        case St::kBlock:
          if (c == '*' && n == '/') {
            st = St::kCode;
            o += "  ";
            i += 2;
          } else {
            o += ' ';
            ++i;
          }
          break;
        case St::kStr:
        case St::kChar: {
          const char quote = st == St::kStr ? '"' : '\'';
          if (c == '\\') {
            if (i + 1 >= line.size()) {
              // Backslash-newline inside a literal: continues next line.
              str_spliced = true;
              o += ' ';
              ++i;
            } else {
              pending.text += c;
              pending.text += n;
              o += "  ";
              i += 2;
            }
          } else if (c == quote) {
            out.tokens.push_back(pending);
            st = St::kCode;
            o += ' ';
            ++i;
          } else {
            pending.text += c;
            o += ' ';
            ++i;
          }
          break;
        }
        case St::kRaw: {
          const std::size_t hit = line.find(raw_tag, i);
          if (hit == std::string::npos) {
            pending.text += line.substr(i);
            pending.text += '\n';
            o.append(line.size() - i, ' ');
            i = line.size();
          } else {
            pending.text += line.substr(i, hit - i);
            out.tokens.push_back(pending);
            o.append(hit - i + raw_tag.size(), ' ');
            i = hit + raw_tag.size();
            st = St::kCode;
          }
          break;
        }
        case St::kLineComment:
          // Handled before the loop; unreachable here.
          ++i;
          break;
      }
    }
    // Unterminated ordinary string/char literals do not span lines in
    // valid C++ (only an explicit backslash-newline splice does).
    if ((st == St::kStr || st == St::kChar) && !str_spliced) {
      out.tokens.push_back(pending);
      st = St::kCode;
    }
    out.code.push_back(std::move(o));
  }
  return out;
}

}  // namespace hyades::lint
