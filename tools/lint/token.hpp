// hyades-lint tokenizer: a real C++ token stream with file/line/column
// provenance, plus the comment/string-blanked "code view" the
// line-oriented legacy rules (spancat-coverage) still consume and the
// #include directives the include graph is built from.
//
// The lexer is deliberately a *lexer*, not a parser: rules match token
// shapes (identifier followed by '(', member access before a name,
// number spellings), which is exactly the precision the repo's
// invariant checks need -- and it is immune to the classic line-regex
// failure modes: tokens inside strings, comments, raw strings, and
// (the PR-10 fix) `//` comments whose trailing backslash legally
// continues the comment onto the next line.
//
// Provenance: `line` is 1-based; `col` is the 1-based *byte* column
// (a tab advances one column -- stable across editors, locked by the
// tab/CRLF fixtures).  Input lines must already be '\r'-stripped
// (source.cpp does this on load), so CRLF files lint identically to
// LF files.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hyades::lint {

enum class Tok {
  kIdent,   // identifiers and keywords
  kNumber,  // pp-numbers: 4, 16u, 0x3F, 4.0, 1'000, 1e-3
  kString,  // text = contents without quotes (escapes kept verbatim)
  kChar,    // text = contents without quotes
  kPunct,   // operators/punctuation, multi-char forms merged ("->", "+=")
};

struct Token {
  Tok kind = Tok::kPunct;
  std::string text;
  std::size_t line = 0;  // 1-based
  std::size_t col = 0;   // 1-based byte column
};

struct IncludeDirective {
  std::string target;   // "gcm/config.hpp" or "vector"
  bool angled = false;  // <...> vs "..."
  std::size_t line = 0;
  std::size_t col = 0;  // column of the '#'
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<std::string> code;  // comments/strings/chars blanked, per line
  std::vector<IncludeDirective> includes;
};

// True for [A-Za-z0-9_].
bool ident_char(char c);

// Lex `raw` (one entry per physical line, no trailing newline/'\r').
LexedFile lex(const std::vector<std::string>& raw);

}  // namespace hyades::lint
