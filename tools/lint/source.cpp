#include "lint/source.hpp"

#include <filesystem>
#include <fstream>

namespace hyades::lint {

namespace {

// Scan one raw line for lint:allow(<rule>) comments.  The justification
// demand is what keeps suppressions auditable: text must follow the
// "): " -- a bare allow still suppresses (so the tree stays
// single-finding) but is reported itself.  Rule names are strictly
// [a-z-]: prose like `lint:allow(<rule>)` in docs never becomes a
// suppression site.
void scan_allows(const std::string& line, std::size_t line_idx,
                 std::vector<AllowSite>* out) {
  static const std::string kNeedle = "lint:allow(";
  std::size_t pos = 0;
  while ((pos = line.find(kNeedle, pos)) != std::string::npos) {
    std::size_t j = pos + kNeedle.size();
    std::string rule;
    while (j < line.size() &&
           ((line[j] >= 'a' && line[j] <= 'z') || line[j] == '-')) {
      rule += line[j++];
    }
    if (j >= line.size() || line[j] != ')' || rule.empty()) {
      pos = j;  // malformed or prose: not a suppression site
      continue;
    }
    ++j;  // ')'
    while (j < line.size() && (line[j] == ':' || line[j] == ' ')) ++j;
    out->push_back(AllowSite{line_idx, rule, j < line.size()});
    pos = j;
  }
}

}  // namespace

bool load(const std::string& path, SourceFile* out) {
  std::ifstream in(path);
  if (!in) return false;
  out->path = path;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    out->raw.push_back(line);
  }
  LexedFile lexed = lex(out->raw);
  out->code = std::move(lexed.code);
  out->tokens = std::move(lexed.tokens);
  out->includes = std::move(lexed.includes);
  for (std::size_t i = 0; i < out->raw.size(); ++i) {
    scan_allows(out->raw[i], i, &out->allows);
  }
  return true;
}

bool line_is_comment(const std::string& raw) {
  const std::size_t p = raw.find_first_not_of(" \t");
  return p != std::string::npos && raw.compare(p, 2, "//") == 0;
}

bool path_contains(const std::string& path, const std::string& part) {
  return path.find(part) != std::string::npos;
}

std::string basename_of(const std::string& path) {
  return std::filesystem::path(path).filename().string();
}

}  // namespace hyades::lint
