// Rule plumbing for hyades-lint: Finding, Reporter (suppression +
// ordering), the Rule base class, and the self-registration registry.
//
// Writing a new rule (see tools/lint/README.md for the worked example):
//
//   #include "lint/rule.hpp"
//   namespace { class MyRule final : public hyades::lint::Rule { ... }; }
//   HYADES_LINT_RULE(MyRule)
//
// The macro instantiates the rule at static-init time and pushes it
// into the registry; the driver discovers every rule through
// `all_rules()`.  Rules live in an OBJECT library so no registration
// unit can be dead-stripped.
#pragma once

#include <cstddef>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lint/index.hpp"
#include "lint/source.hpp"

namespace hyades::lint {

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::size_t col = 1;   // 1-based
  std::string rule;
  std::string message;

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (col != o.col) return col < o.col;
    if (rule != o.rule) return rule < o.rule;
    return message < o.message;
  }
};

// Everything a rule may look at.
struct Corpus {
  std::vector<SourceFile> files;
  Index index;
  bool root_scan = false;  // true when scanning the tree (not explicit files)
};

// Collects findings, honoring lint:allow suppressions and producing the
// stable ordering the formatters rely on.
class Reporter {
 public:
  explicit Reporter(std::set<std::string> enabled)
      : enabled_(std::move(enabled)) {}

  bool rule_enabled(const std::string& rule) const {
    return enabled_.empty() || enabled_.count(rule) > 0;
  }
  const std::set<std::string>& enabled() const { return enabled_; }

  // Report a finding at raw-line index `line_idx` (0-based) of `file`.
  // Consults allow comments on the line itself and in the contiguous
  // comment block above; a matching allow marks itself `used` and eats
  // the finding (a bare allow additionally yields one
  // needs-a-justification finding).
  void report(const SourceFile& file, std::size_t line_idx,
              const std::string& rule, const std::string& message,
              std::size_t col = 1);

  // Report with no suppression lookup (whole-corpus rules that already
  // did their own, and stale-allow itself for unknown rule names).
  void raw_report(Finding f);

  // Sorted, deduplicated findings.
  std::vector<Finding> take_sorted();

 private:
  const AllowSite* find_allow(const SourceFile& file, std::size_t line_idx,
                              const std::string& rule) const;

  std::set<std::string> enabled_;
  std::vector<Finding> findings_;
};

class Rule {
 public:
  virtual ~Rule() = default;
  virtual std::string name() const = 0;
  virtual std::string summary() const = 0;
  // Called once per file.
  virtual void per_file(const SourceFile& file, const Corpus& corpus,
                        Reporter& rep) {
    (void)file;
    (void)corpus;
    (void)rep;
  }
  // Called once after every per_file pass (cross-file rules).
  virtual void whole_corpus(const Corpus& corpus, Reporter& rep) {
    (void)corpus;
    (void)rep;
  }
  // Called after all rules ran (stale-allow judges allow usage here).
  virtual void finalize(const Corpus& corpus, Reporter& rep) {
    (void)corpus;
    (void)rep;
  }
};

// Registry -----------------------------------------------------------

std::vector<Rule*>& all_rules();

struct RuleRegistrar {
  explicit RuleRegistrar(Rule* r);
};

#define HYADES_LINT_RULE(cls)                                 \
  static cls hyades_lint_inst_##cls;                          \
  static ::hyades::lint::RuleRegistrar hyades_lint_reg_##cls{ \
      &hyades_lint_inst_##cls};

}  // namespace hyades::lint
