#include "lint/rule.hpp"

#include <algorithm>

namespace hyades::lint {

const AllowSite* Reporter::find_allow(const SourceFile& file,
                                      std::size_t line_idx,
                                      const std::string& rule) const {
  // Same line first, then the contiguous `//` comment block directly
  // above the offending line.
  for (const AllowSite& a : file.allows) {
    if (a.line_idx == line_idx && a.rule == rule) return &a;
  }
  std::size_t i = line_idx;
  while (i > 0 && line_is_comment(file.raw[i - 1])) {
    --i;
    for (const AllowSite& a : file.allows) {
      if (a.line_idx == i && a.rule == rule) return &a;
    }
  }
  return nullptr;
}

void Reporter::report(const SourceFile& file, std::size_t line_idx,
                      const std::string& rule, const std::string& message,
                      std::size_t col) {
  if (!rule_enabled(rule)) return;
  if (const AllowSite* a = find_allow(file, line_idx, rule)) {
    a->used = true;
    if (!a->justified && !a->nagged) {
      a->nagged = true;
      findings_.push_back(Finding{
          file.path, a->line_idx + 1, 1, rule,
          "lint:allow(" + rule + ") needs a justification after the colon"});
    }
    return;
  }
  findings_.push_back(Finding{file.path, line_idx + 1, col, rule, message});
}

void Reporter::raw_report(Finding f) {
  if (!rule_enabled(f.rule)) return;
  findings_.push_back(std::move(f));
}

std::vector<Finding> Reporter::take_sorted() {
  std::sort(findings_.begin(), findings_.end());
  findings_.erase(std::unique(findings_.begin(), findings_.end(),
                              [](const Finding& a, const Finding& b) {
                                return !(a < b) && !(b < a);
                              }),
                  findings_.end());
  return std::move(findings_);
}

std::vector<Rule*>& all_rules() {
  static std::vector<Rule*> rules;
  return rules;
}

RuleRegistrar::RuleRegistrar(Rule* r) { all_rules().push_back(r); }

}  // namespace hyades::lint
