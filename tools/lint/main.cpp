// hyades-lint v2: repo-specific invariant checker.
//
// The simulated world only stays deterministic and fault-pure because
// a handful of disciplines hold everywhere; sanitizers and golden
// tests catch violations at run time, this tool catches them at review
// time with zero execution.  See tools/lint/README.md for the rule
// catalog and how to add a rule; DESIGN.md section 4 for the
// architecture (tokenizer -> index -> rules -> formats).
//
// Suppression: a finding is allowed by a comment on the same line or
// the contiguous comment block above, of the form
//
//     // lint:allow(<rule>): <justification>
//
// The justification is mandatory -- an allow without a reason is
// itself a finding -- and an allow that suppresses zero findings is a
// stale-allow finding.
//
// Exit status: 0 clean, 1 findings, 2 usage/IO error.

#include <iostream>

#include "lint/driver.hpp"

int main(int argc, char** argv) {
  hyades::lint::Options opts;
  bool help = false;
  if (!hyades::lint::parse_args(argc, argv, &opts, &help, std::cerr)) {
    return 2;
  }
  if (help) {
    hyades::lint::usage(std::cerr);
    return 0;
  }
  return hyades::lint::run(opts, std::cout, std::cerr);
}
