// Token-walking helpers shared by the rule implementations.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/token.hpp"

namespace hyades::lint {

// tokens[i] exists, has kind `k`, and spells `text`.
inline bool tok_is(const std::vector<Token>& t, std::size_t i, Tok k,
                   const char* text) {
  return i < t.size() && t[i].kind == k && t[i].text == text;
}

// tokens[i] is an identifier followed immediately by '(' -- a call (or
// function-style construction) site.
inline bool is_call(const std::vector<Token>& t, std::size_t i) {
  return tok_is(t, i + 1, Tok::kPunct, "(");
}

// tokens[i] is reached through member access: preceded by '.' or '->'.
inline bool is_member(const std::vector<Token>& t, std::size_t i) {
  return i > 0 && t[i - 1].kind == Tok::kPunct &&
         (t[i - 1].text == "." || t[i - 1].text == "->");
}

// Index of the ')' matching the '(' at `open` (which must be a '('),
// or t.size() when unbalanced.
inline std::size_t match_paren(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < t.size(); ++j) {
    if (t[j].kind != Tok::kPunct) continue;
    if (t[j].text == "(") ++depth;
    if (t[j].text == ")" && --depth == 0) return j;
  }
  return t.size();
}

}  // namespace hyades::lint
