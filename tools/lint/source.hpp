// Source loading and suppression bookkeeping for hyades-lint.
//
// A SourceFile carries every view a rule might need: the raw lines
// (allow comments live here), the blanked code view (legacy
// line-oriented matching), the token stream, and the include
// directives.  AllowSites are scanned once at load; the Reporter marks
// them used as findings consult them, which is what makes the
// stale-allow rule possible -- an allow that suppressed nothing this
// run is itself a finding.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/token.hpp"

namespace hyades::lint {

struct AllowSite {
  std::size_t line_idx = 0;  // 0-based raw-line index
  std::string rule;
  bool justified = false;
  // Consultation state, written by the Reporter during the run.
  mutable bool used = false;    // suppressed at least one finding
  mutable bool nagged = false;  // missing-justification already reported
};

struct SourceFile {
  std::string path;                        // as reported in findings
  std::vector<std::string> raw;            // original lines, '\r'-stripped
  std::vector<std::string> code;           // comments/strings blanked
  std::vector<Token> tokens;               // token stream with provenance
  std::vector<IncludeDirective> includes;  // for the include graph
  std::vector<AllowSite> allows;           // lint:allow comments
};

// Read `path` (stripping trailing '\r' so CRLF files lint like LF),
// lex it, and scan allow comments.  False on IO failure.
bool load(const std::string& path, SourceFile* out);

// True if the raw line is nothing but a `//` comment (allow comments
// stack in a contiguous block above the suppressed line).
bool line_is_comment(const std::string& raw);

// Substring containment helper shared by the path-scoped rules.
bool path_contains(const std::string& path, const std::string& part);

// Filename (last component) of a path.
std::string basename_of(const std::string& path);

}  // namespace hyades::lint
