// Driver: argument parsing, corpus assembly, rule execution, output.
// Split from main() so the lint_core tests can run the whole pipeline
// in-process against fixture files.
#pragma once

#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "lint/format.hpp"

namespace hyades::lint {

struct Options {
  std::string root;                 // --root DIR (scan mode)
  std::vector<std::string> files;   // explicit files (fixture mode)
  std::set<std::string> rules;      // empty = all
  Format format = Format::kText;
};

// Parse argv into opts; returns false (after printing to err) on a
// usage error.  `help` is set when --help was asked (caller exits 0).
bool parse_args(int argc, const char* const* argv, Options* opts,
                bool* help, std::ostream& err);

void usage(std::ostream& err);

// Run the lint pipeline.  Exit status: 0 clean, 1 findings, 2
// usage/IO error.
int run(const Options& opts, std::ostream& out, std::ostream& err);

}  // namespace hyades::lint
