#include "lint/index.hpp"

namespace hyades::lint {

namespace {

// First path component after a marker directory ("src/", or
// "fixtures/" so lint fixtures can exercise the layering rule).
std::string component_after(const std::string& path,
                            const std::string& marker) {
  const std::size_t at = path.rfind(marker);
  if (at == std::string::npos) return "";
  const std::size_t start = at + marker.size();
  const std::size_t slash = path.find('/', start);
  if (slash == std::string::npos) return "";  // file directly in marker dir
  return path.substr(start, slash - start);
}

}  // namespace

int layer_of(const std::string& module) {
  if (module == "support") return 0;
  if (module == "sim") return 1;
  if (module == "arctic") return 2;
  if (module == "startx") return 3;
  if (module == "net") return 4;
  if (module == "cluster") return 5;
  if (module == "comm") return 6;
  if (module == "gcm") return 7;
  if (module == "perf" || module == "farm") return 8;
  return -1;
}

std::string module_of(const std::string& path) {
  for (const char* marker : {"src/", "fixtures/"}) {
    const std::string c = component_after(path, marker);
    if (layer_of(c) >= 0) return c;
  }
  return "";
}

Index Index::build(const std::vector<SourceFile>& files) {
  Index idx;
  for (const SourceFile& f : files) {
    const std::string mod = module_of(f.path);
    for (const IncludeDirective& inc : f.includes) {
      if (inc.angled) continue;  // system/library headers carry no layer
      idx.includers[inc.target].insert(f.path);
      // Quoted includes are rooted at src/, so the first component of
      // the target *is* the module name.
      const std::size_t slash = inc.target.find('/');
      if (slash == std::string::npos) continue;
      const std::string dep = inc.target.substr(0, slash);
      if (layer_of(dep) < 0 || mod.empty()) continue;
      idx.module_edges.push_back(IncludeEdge{f.path, mod, dep, inc.line});
    }
  }
  return idx;
}

}  // namespace hyades::lint
