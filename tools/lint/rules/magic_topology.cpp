// magic-topology: bare shape literals in the topology machinery.
#include <set>
#include <string>

#include "lint/rule.hpp"
#include "lint/walk.hpp"

namespace hyades::lint {
namespace {

class MagicTopologyRule final : public Rule {
 public:
  std::string name() const override { return "magic-topology"; }
  std::string summary() const override {
    return "bare 4/16/32 literals in topology code instead of FatTreeShape";
  }
  void per_file(const SourceFile& f, const Corpus&, Reporter& rep) override {
    // Scope: the topology-shape translation units under src/arctic and
    // src/net (plus the lint fixtures mirroring them).  Tests and
    // benches legitimately spell out concrete shapes.
    const bool dir_ok = path_contains(f.path, "src/arctic") ||
                        path_contains(f.path, "src/net") ||
                        path_contains(f.path, "fixtures/arctic") ||
                        path_contains(f.path, "fixtures/net");
    if (!dir_ok) return;
    static const char* kUnits[] = {"route",    "fabric", "fault",
                                   "topology", "torus",  "arctic_model"};
    const std::string base = basename_of(f.path);
    bool unit_ok = false;
    for (const char* u : kUnits) {
      if (base.find(u) != std::string::npos) {
        unit_ok = true;
        break;
      }
    }
    if (!unit_ok) return;

    // Named-constant definitions are the sanctioned home for these
    // numbers: skip every line that spells `constexpr`.
    std::set<std::size_t> constexpr_lines;
    for (const Token& t : f.tokens) {
      if (t.kind == Tok::kIdent && t.text == "constexpr") {
        constexpr_lines.insert(t.line);
      }
    }

    std::size_t last_line = 0;  // at most one finding per line (v1 parity)
    for (const Token& t : f.tokens) {
      if (t.kind != Tok::kNumber || t.line == last_line) continue;
      if (constexpr_lines.count(t.line) != 0) continue;
      // Strip integer suffixes; float spellings (4.0, 0.4) lex as a
      // single pp-number and won't match -- calibration values, not
      // shapes.
      std::string digits = t.text;
      while (!digits.empty()) {
        const char c = digits.back();
        if (c == 'u' || c == 'U' || c == 'l' || c == 'L') {
          digits.pop_back();
        } else {
          break;
        }
      }
      if (digits == "4" || digits == "16" || digits == "32") {
        last_line = t.line;
        rep.report(f, t.line - 1, name(),
                   "bare " + digits +
                       ": shape numbers (radix, endpoints, ports) come from "
                       "FatTreeShape or a named constexpr constant",
                   t.col);
      }
    }
  }
};
HYADES_LINT_RULE(MagicTopologyRule)

}  // namespace
}  // namespace hyades::lint
