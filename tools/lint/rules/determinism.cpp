// Determinism rule pack: wall-clock, unseeded-rng, naked-new,
// catch-all.  Ported from hyades-lint v1 onto the token stream --
// identifier tokens cannot be fooled by substrings, strings, or
// comments, and each finding carries the exact column.
#include <string>

#include "lint/rule.hpp"
#include "lint/walk.hpp"

namespace hyades::lint {
namespace {

class WallClockRule final : public Rule {
 public:
  std::string name() const override { return "wall-clock"; }
  std::string summary() const override {
    return "real-time clock reads outside VirtualClock";
  }
  void per_file(const SourceFile& f, const Corpus&, Reporter& rep) override {
    const std::vector<Token>& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Tok::kIdent) continue;
      const std::string& id = t[i].text;
      if (id == "system_clock" || id == "steady_clock" ||
          id == "high_resolution_clock") {
        rep.report(f, t[i].line - 1, name(),
                   id + ": the simulated world tells time with VirtualClock",
                   t[i].col);
        continue;
      }
      if ((id == "gettimeofday" || id == "clock_gettime" ||
           id == "timespec_get" || id == "localtime" || id == "gmtime") &&
          is_call(t, i)) {
        rep.report(f, t[i].line - 1, name(), id + "() reads the host clock",
                   t[i].col);
        continue;
      }
      // time(nullptr) / time(0) / time(NULL): `time` alone collides
      // with too many identifiers, so require the call shape with a
      // null-ish argument.
      if (id == "time" && is_call(t, i) && i + 2 < t.size()) {
        const Token& arg = t[i + 2];
        const bool nullish =
            (arg.kind == Tok::kIdent &&
             (arg.text == "nullptr" || arg.text == "NULL")) ||
            (arg.kind == Tok::kNumber && arg.text[0] == '0');
        if (nullish) {
          rep.report(f, t[i].line - 1, name(), "time() reads the host clock",
                     t[i].col);
        }
      }
    }
  }
};
HYADES_LINT_RULE(WallClockRule)

class UnseededRngRule final : public Rule {
 public:
  std::string name() const override { return "unseeded-rng"; }
  std::string summary() const override {
    return "nondeterministic randomness outside seeded SplitMix64";
  }
  void per_file(const SourceFile& f, const Corpus&, Reporter& rep) override {
    const std::vector<Token>& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Tok::kIdent) continue;
      const std::string& id = t[i].text;
      if (id == "random_device" || id == "default_random_engine") {
        rep.report(f, t[i].line - 1, name(),
                   "nondeterministic engine: draw from a seeded SplitMix64",
                   t[i].col);
      } else if ((id == "rand" || id == "srand") && is_call(t, i)) {
        rep.report(
            f, t[i].line - 1, name(),
            "C rand(): hidden global state breaks replay; use SplitMix64",
            t[i].col);
      }
    }
  }
};
HYADES_LINT_RULE(UnseededRngRule)

class NakedNewRule final : public Rule {
 public:
  std::string name() const override { return "naked-new"; }
  std::string summary() const override {
    return "raw new/delete instead of owned containers/smart pointers";
  }
  void per_file(const SourceFile& f, const Corpus&, Reporter& rep) override {
    const std::vector<Token>& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Tok::kIdent) continue;
      const bool after_operator = i > 0 && tok_is(t, i - 1, Tok::kIdent,
                                                  "operator");
      if (t[i].text == "new" && !after_operator) {
        rep.report(f, t[i].line - 1, name(),
                   "raw new: use make_unique/containers (exception-safe "
                   "ownership)",
                   t[i].col);
      } else if (t[i].text == "delete" && !after_operator &&
                 !(i > 0 && tok_is(t, i - 1, Tok::kPunct, "="))) {
        rep.report(f, t[i].line - 1, name(),
                   "raw delete: ownership belongs to a smart pointer",
                   t[i].col);
      }
    }
  }
};
HYADES_LINT_RULE(NakedNewRule)

class CatchAllRule final : public Rule {
 public:
  std::string name() const override { return "catch-all"; }
  std::string summary() const override {
    return "catch (...) would swallow RankFailStop";
  }
  void per_file(const SourceFile& f, const Corpus&, Reporter& rep) override {
    const std::vector<Token>& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!tok_is(t, i, Tok::kIdent, "catch") || !is_call(t, i)) continue;
      const std::size_t close = match_paren(t, i + 1);
      for (std::size_t j = i + 2; j < close; ++j) {
        if (tok_is(t, j, Tok::kPunct, "...")) {
          rep.report(f, t[i].line - 1, name(),
                     "catch (...) also swallows RankFailStop (a scheduled "
                     "node death must not be survived)",
                     t[i].col);
          break;
        }
      }
    }
  }
};
HYADES_LINT_RULE(CatchAllRule)

}  // namespace
}  // namespace hyades::lint
