// spancat-coverage: the SpanCat enum (cluster/trace.hpp) and the
// wait-attribution column map (span_cat_column in cluster/report.cpp)
// must stay in sync, and every named column must exist in the printed
// table.  A whole-corpus rule: it pairs the enum file with the map
// file, so it stays line-oriented over the blanked code view (the pair
// lives in different translation units).
#include <algorithm>
#include <cctype>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/rule.hpp"

namespace hyades::lint {
namespace {

// Parse `enum class SpanCat ... { kA, kB, ... }` enumerator names.
std::vector<std::string> parse_spancat_enum(const SourceFile& f) {
  std::vector<std::string> names;
  bool in_enum = false;
  for (const std::string& s : f.code) {
    if (!in_enum) {
      if (s.find("enum class SpanCat") == std::string::npos) continue;
      in_enum = true;
    }
    // Collect identifiers starting with 'k' at word boundaries.
    for (std::size_t i = 0; i < s.size();) {
      if (s[i] == '}') return names;
      if (ident_char(s[i]) && (i == 0 || !ident_char(s[i - 1]))) {
        std::size_t j = i;
        while (j < s.size() && ident_char(s[j])) ++j;
        const std::string word = s.substr(i, j - i);
        if (word.size() > 1 && word[0] == 'k' &&
            std::isupper(static_cast<unsigned char>(word[1])) != 0) {
          names.push_back(word);
        }
        i = j;
      } else {
        ++i;
      }
    }
  }
  return names;
}

class SpancatCoverageRule final : public Rule {
 public:
  std::string name() const override { return "spancat-coverage"; }
  std::string summary() const override {
    return "SpanCat enum and span_cat_column map out of sync";
  }
  void whole_corpus(const Corpus& corpus, Reporter& rep) override {
    const SourceFile* enum_file = nullptr;
    const SourceFile* report_file = nullptr;
    for (const SourceFile& f : corpus.files) {
      bool has_enum = false;
      bool has_map = false;
      for (const std::string& s : f.code) {
        if (s.find("enum class SpanCat") != std::string::npos) {
          has_enum = true;
        }
        if (s.find("span_cat_column") != std::string::npos &&
            s.find("switch") == std::string::npos) {
          has_map = true;
        }
      }
      // The switch implementation (not the header declaration) contains
      // `case SpanCat::`.
      bool has_cases = false;
      for (const std::string& s : f.code) {
        if (s.find("case SpanCat::") != std::string::npos) has_cases = true;
      }
      if (has_enum && enum_file == nullptr) enum_file = &f;
      if (has_map && has_cases) report_file = &f;
    }
    // Single-file scans (fixtures, pre-commit on one file) may
    // legitimately see only half the pair; the rule only fires when
    // both sides exist.
    if (enum_file == nullptr || report_file == nullptr) return;

    const std::vector<std::string> cats = parse_spancat_enum(*enum_file);
    if (cats.empty()) return;

    // Which categories have a `case SpanCat::kX:` and what column
    // strings the map returns.  Column strings live in the *raw* lines
    // (string literals are blanked in the code view).
    std::set<std::string> covered;
    std::vector<std::pair<std::size_t, std::string>> columns;
    bool in_map = false;
    int depth = 0;
    for (std::size_t i = 0; i < report_file->code.size(); ++i) {
      const std::string& s = report_file->code[i];
      if (!in_map && s.find("span_cat_column") != std::string::npos &&
          s.find(';') == std::string::npos) {
        in_map = true;  // function definition begins
      }
      if (!in_map) continue;
      for (char c : s) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
      }
      const std::size_t cs = s.find("case SpanCat::");
      if (cs != std::string::npos) {
        std::size_t j = cs + 14;
        std::string nm;
        while (j < s.size() && ident_char(s[j])) nm += s[j++];
        covered.insert(nm);
      }
      if (s.find("return") != std::string::npos) {
        const std::string& raw = report_file->raw[i];
        const std::size_t q1 = raw.find('"');
        const std::size_t q2 = q1 == std::string::npos ? std::string::npos
                                                       : raw.find('"', q1 + 1);
        if (q2 != std::string::npos) {
          columns.emplace_back(i, raw.substr(q1 + 1, q2 - q1 - 1));
        }
      }
      if (in_map && depth == 0 && s.find('}') != std::string::npos) break;
    }

    for (const std::string& cat : cats) {
      if (covered.count(cat) == 0) {
        rep.raw_report(Finding{
            report_file->path, 1, 1, name(),
            "SpanCat::" + cat + " (declared in " + enum_file->path +
                ") has no case in span_cat_column: decide its "
                "wait-attribution column (or map it to nullptr with a "
                "comment)"});
      }
    }
    for (const std::string& cat : covered) {
      if (std::find(cats.begin(), cats.end(), cat) == cats.end()) {
        rep.raw_report(Finding{report_file->path, 1, 1, name(),
                               "span_cat_column handles SpanCat::" + cat +
                                   " which the enum no longer declares"});
      }
    }
    // Every named column must appear in the printed table's header
    // list.
    std::string headers;
    for (const std::string& raw : report_file->raw) headers += raw;
    for (const auto& [line_idx, col] : columns) {
      // Count occurrences: the return site plus at least one use in a
      // table header initializer.
      std::size_t count = 0;
      std::size_t pos = 0;
      const std::string quoted = "\"" + col + "\"";
      while ((pos = headers.find(quoted, pos)) != std::string::npos) {
        ++count;
        pos += quoted.size();
      }
      if (count < 2) {
        rep.raw_report(Finding{report_file->path, line_idx + 1, 1, name(),
                               "column \"" + col +
                                   "\" returned by span_cat_column does not "
                                   "appear in the report's table headers"});
      }
    }
  }
};
HYADES_LINT_RULE(SpancatCoverageRule)

}  // namespace
}  // namespace hyades::lint
