// ordered-state: std::unordered_map/unordered_set in src/ is a
// finding.  Iteration order of the unordered containers depends on the
// host hash and bucket layout; one rank printing or folding in that
// order leaks host behavior into the bit-determinism contract.  The
// tree is clean today -- this is a tripwire like magic-topology.
#include <string>

#include "lint/rule.hpp"

namespace hyades::lint {
namespace {

class OrderedStateRule final : public Rule {
 public:
  std::string name() const override { return "ordered-state"; }
  std::string summary() const override {
    return "unordered container: hash iteration order is not deterministic";
  }
  void per_file(const SourceFile& f, const Corpus&, Reporter& rep) override {
    if (!path_contains(f.path, "src/") &&
        !path_contains(f.path, "fixtures/")) {
      return;
    }
    for (const Token& t : f.tokens) {
      if (t.kind != Tok::kIdent) continue;
      if (t.text == "unordered_map" || t.text == "unordered_set" ||
          t.text == "unordered_multimap" || t.text == "unordered_multiset") {
        rep.report(f, t.line - 1, name(),
                   "std::" + t.text +
                       ": iteration order leaks host-hash behavior into "
                       "bit-determinism; use std::map/std::set or a sorted "
                       "vector",
                   t.col);
      }
    }
  }
};
HYADES_LINT_RULE(OrderedStateRule)

}  // namespace
}  // namespace hyades::lint
