// Protocol/recovery rule pack: raw-send, ckpt-path, recovery-typed.
// Path-scoped rules over model (gcm/) and campaign (farm/) code.
#include <string>

#include "lint/rule.hpp"
#include "lint/walk.hpp"

namespace hyades::lint {
namespace {

bool in_gcm_or_farm(const std::string& path) {
  return path_contains(path, "gcm/") || path_contains(path, "gcm\\") ||
         path_contains(path, "farm/") || path_contains(path, "farm\\");
}

class RawSendRule final : public Rule {
 public:
  std::string name() const override { return "raw-send"; }
  std::string summary() const override {
    return "gcm/farm traffic bypassing the comm/reliable protocol";
  }
  void per_file(const SourceFile& f, const Corpus&, Reporter& rep) override {
    // Scope: model code (gcm/) and the ensemble-farm service (farm/) --
    // both drive whole campaigns through the fault machinery, so a raw
    // bus send would silently lose CRC/NAK protection there too.
    if (!in_gcm_or_farm(f.path)) return;
    const std::vector<Token>& t = f.tokens;
    static const char* kMsg =
        "gcm traffic bypassing comm/reliable loses CRC/NAK protection "
        "under fault plans";
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Tok::kIdent) continue;
      // Member-call sites only (`x.send_raw(` / `x->send_raw(`):
      // declarations of the bus primitives are fine, invoking them from
      // model code is the violation.
      if ((t[i].text == "send_raw" || t[i].text == "send_msg") &&
          is_call(t, i) && is_member(t, i)) {
        rep.report(f, t[i].line - 1, name(), kMsg, t[i].col);
      }
      // bus().send(...)
      if (t[i].text == "bus" && tok_is(t, i + 1, Tok::kPunct, "(") &&
          tok_is(t, i + 2, Tok::kPunct, ")") &&
          tok_is(t, i + 3, Tok::kPunct, ".") &&
          tok_is(t, i + 4, Tok::kIdent, "send")) {
        rep.report(f, t[i].line - 1, name(), kMsg, t[i].col);
      }
      // MessageBus::send(...)
      if (t[i].text == "MessageBus" && tok_is(t, i + 1, Tok::kPunct, "::") &&
          tok_is(t, i + 2, Tok::kIdent, "send")) {
        rep.report(f, t[i].line - 1, name(), kMsg, t[i].col);
      }
    }
  }
};
HYADES_LINT_RULE(RawSendRule)

class RecoveryTypedRule final : public Rule {
 public:
  std::string name() const override { return "recovery-typed"; }
  std::string summary() const override {
    return "untyped errors in recovery-critical translation units";
  }
  void per_file(const SourceFile& f, const Corpus&, Reporter& rep) override {
    // Scope: the recovery-critical translation units -- the resilient
    // driver and the membership service.  Fixtures mirroring those
    // filenames are linted too.
    const std::string base = basename_of(f.path);
    if (base != "resilient.cpp" && base != "membership.cpp") return;
    const std::vector<Token>& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Tok::kIdent) continue;
      if (t[i].text == "catch" && is_call(t, i)) {
        const std::size_t close = match_paren(t, i + 1);
        for (std::size_t j = i + 2; j < close; ++j) {
          if (tok_is(t, j, Tok::kPunct, "...")) {
            rep.report(f, t[i].line - 1, name(),
                       "recovery code must not catch (...): failures stay "
                       "typed for the degradation ladder and farm triage",
                       t[i].col);
            break;
          }
        }
      }
      // Construction sites only (`runtime_error(...)`): catching the
      // base type to triage collateral errors is fine, throwing it
      // discards the context a typed gcm::RecoveryError carries.
      if (t[i].text == "runtime_error" && is_call(t, i)) {
        rep.report(f, t[i].line - 1, name(),
                   "bare std::runtime_error in recovery code: throw a typed "
                   "gcm::RecoveryError (or subclass) carrying "
                   "rank/step/slot/rung context",
                   t[i].col);
      }
    }
  }
};
HYADES_LINT_RULE(RecoveryTypedRule)

class CkptPathRule final : public Rule {
 public:
  std::string name() const override { return "ckpt-path"; }
  std::string summary() const override {
    return "checkpoint file names composed outside gcm/tile_ckpt";
  }
  void per_file(const SourceFile& f, const Corpus&, Reporter& rep) override {
    // Scope: gcm/ and farm/ production code (plus the lint fixtures
    // mirroring them).  tile_ckpt itself is the sanctioned owner of the
    // on-disk names, and tests outside the fixtures legitimately assert
    // the published format.  This rule stays line-oriented: it reasons
    // about where fragments sit relative to string literals, which the
    // blanked code view encodes positionally.
    if (!in_gcm_or_farm(f.path)) return;
    if (path_contains(f.path, "tests/") &&
        !path_contains(f.path, "fixtures")) {
      return;
    }
    if (basename_of(f.path).find("tile_ckpt") != std::string::npos) return;

    for (std::size_t i = 0; i < f.raw.size(); ++i) {
      if (line_is_comment(f.raw[i])) continue;
      const std::string& raw = f.raw[i];
      const std::string& code = f.code[i];
      bool hit = false;
      // Quoted name fragments: the fragment must sit inside a string
      // literal (blanked in the code view, with an opening quote before
      // it) -- `verdict.rank` member accesses and prose in whole-line
      // comments stay silent.
      for (const char* frag : {".rank", ".tmp"}) {
        const std::string tok = frag;
        std::size_t pos = 0;
        while ((pos = raw.find(tok, pos)) != std::string::npos) {
          if (pos < code.size() && code[pos] == ' ' &&
              raw.rfind('"', pos) != std::string::npos) {
            hit = true;
            break;
          }
          pos += 1;
        }
        if (hit) break;
      }
      // The slot suffixes as bare literals.
      if (!hit && (raw.find("\".a\"") != std::string::npos ||
                   raw.find("\".b\"") != std::string::npos)) {
        hit = true;
      }
      // A checkpoint prefix spliced with `+` is the other shape of the
      // same violation.
      if (!hit) {
        const std::size_t pos = code.find("ckpt_prefix");
        if (pos != std::string::npos &&
            (pos == 0 || !ident_char(code[pos - 1])) &&
            (pos + 11 >= code.size() || !ident_char(code[pos + 11]))) {
          std::size_t a = pos;
          while (a > 0 && code[a - 1] == ' ') --a;
          std::size_t b = pos + 11;  // strlen("ckpt_prefix")
          while (b < code.size() && code[b] == ' ') ++b;
          if ((a > 0 && code[a - 1] == '+') ||
              (b < code.size() && code[b] == '+')) {
            hit = true;
          }
        }
      }
      if (hit) {
        rep.report(f, i, name(),
                   "checkpoint file names are composed only inside "
                   "gcm/tile_ckpt (slot_prefix/rank_path): ad-hoc "
                   "\".rank\"/\".tmp\"/slot suffixes fork the on-disk "
                   "format");
      }
    }
  }
};
HYADES_LINT_RULE(CkptPathRule)

}  // namespace
}  // namespace hyades::lint
