// nonassoc-reduce: raw `+=` accumulation over rank- or tile-indexed
// buffers outside gcm/kernels and comm/.  Floating-point addition is
// not associative; a global sum folded in ad-hoc order diverges from
// the fixed fold-then-butterfly order comm::Comm guarantees, so every
// cross-rank reduction must go through it.  Within a kernel (single
// tile, fixed loop order) and inside comm itself the order *is* the
// contract, so those stay exempt.
#include <algorithm>
#include <cctype>
#include <string>

#include "lint/rule.hpp"
#include "lint/walk.hpp"

namespace hyades::lint {
namespace {

bool stmt_boundary(const Token& t) {
  return t.kind == Tok::kPunct &&
         (t.text == ";" || t.text == "{" || t.text == "}");
}

// Does any identifier inside a [...] subscript in [a, b) smell like a
// rank or tile index?
bool indexed_by_rank_or_tile(const std::vector<Token>& t, std::size_t a,
                             std::size_t b) {
  int depth = 0;
  for (std::size_t j = a; j < b && j < t.size(); ++j) {
    if (t[j].kind == Tok::kPunct) {
      if (t[j].text == "[") ++depth;
      if (t[j].text == "]") --depth;
      continue;
    }
    if (depth > 0 && t[j].kind == Tok::kIdent) {
      std::string low = t[j].text;
      std::transform(low.begin(), low.end(), low.begin(), [](char c) {
        return static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
      });
      if (low.find("rank") != std::string::npos ||
          low.find("tile") != std::string::npos) {
        return true;
      }
    }
  }
  return false;
}

class NonassocReduceRule final : public Rule {
 public:
  std::string name() const override { return "nonassoc-reduce"; }
  std::string summary() const override {
    return "raw += over rank/tile-indexed buffers outside comm/kernels";
  }
  void per_file(const SourceFile& f, const Corpus&, Reporter& rep) override {
    if (!path_contains(f.path, "src/") &&
        !path_contains(f.path, "fixtures/")) {
      return;
    }
    // Exemptions: comm owns the sanctioned reduction order, kernels own
    // their per-tile loop order.
    if (path_contains(f.path, "comm/")) return;
    if (basename_of(f.path).rfind("kernels", 0) == 0) return;

    const std::vector<Token>& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!tok_is(t, i, Tok::kPunct, "+=")) continue;
      // Statement extent: back to the previous ;/{/} and forward to the
      // next ';' -- subscripts on either side of += count
      // (`total += p[rank]` and `sums[tile] += v` are the same
      // violation).
      std::size_t a = i;
      while (a > 0 && !stmt_boundary(t[a - 1])) --a;
      std::size_t b = i + 1;
      while (b < t.size() && !tok_is(t, b, Tok::kPunct, ";")) ++b;
      if (indexed_by_rank_or_tile(t, a, b)) {
        rep.report(f, t[i].line - 1, name(),
                   "raw += over a rank/tile-indexed buffer: fold through "
                   "comm::Comm so the reduction order stays fixed",
                   t[i].col);
      }
    }
  }
};
HYADES_LINT_RULE(NonassocReduceRule)

}  // namespace
}  // namespace hyades::lint
