// atomic-order: every std::atomic operation in src/ must spell an
// explicit std::memory_order.  A bare seq_cst default hides the
// intended ordering contract -- the auditability floor for lock-free
// code (SPSC mailboxes, progress counters).
#include <string>

#include "lint/rule.hpp"
#include "lint/walk.hpp"

namespace hyades::lint {
namespace {

bool is_atomic_op(const std::string& id) {
  return id == "load" || id == "store" || id == "exchange" ||
         id == "fetch_add" || id == "fetch_sub" || id == "fetch_and" ||
         id == "fetch_or" || id == "fetch_xor" ||
         id == "compare_exchange_weak" || id == "compare_exchange_strong";
}

class AtomicOrderRule final : public Rule {
 public:
  std::string name() const override { return "atomic-order"; }
  std::string summary() const override {
    return "atomic op without an explicit std::memory_order";
  }
  void per_file(const SourceFile& f, const Corpus&, Reporter& rep) override {
    if (!path_contains(f.path, "src/") &&
        !path_contains(f.path, "fixtures/")) {
      return;
    }
    const std::vector<Token>& t = f.tokens;
    // File gate: only files that mention an atomic type at all --
    // `comm.exchange(nb, buf)` on a halo exchanger or `cfg.load(path)`
    // on a plain object must stay silent.  Any file that declares or
    // includes std::atomic necessarily spells an identifier starting
    // with "atomic".
    bool mentions_atomic = false;
    for (const Token& tok : t) {
      if (tok.kind == Tok::kIdent && tok.text.rfind("atomic", 0) == 0) {
        mentions_atomic = true;
        break;
      }
    }
    if (!mentions_atomic) return;

    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Tok::kIdent || !is_atomic_op(t[i].text)) continue;
      if (!is_member(t, i) || !is_call(t, i)) continue;
      const std::size_t close = match_paren(t, i + 1);
      bool has_order = false;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (t[j].kind == Tok::kIdent &&
            t[j].text.rfind("memory_order", 0) == 0) {
          has_order = true;
          break;
        }
      }
      if (!has_order) {
        rep.report(f, t[i].line - 1, name(),
                   t[i].text +
                       "() without std::memory_order: spell the intended "
                       "ordering (relaxed/acquire/release/...) or justify "
                       "seq_cst explicitly",
                   t[i].col);
      }
    }
  }
};
HYADES_LINT_RULE(AtomicOrderRule)

}  // namespace
}  // namespace hyades::lint
