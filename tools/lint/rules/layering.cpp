// layering: enforce the module dependency DAG via the include graph.
//
//   support <- sim <- arctic <- startx <- net <- cluster <- comm
//           <- gcm <- {perf, farm}
//
// A file inside src/<mod>/ may only include headers from <mod> itself
// or from a strictly lower layer; src/support/ including gcm/ is the
// canonical finding.  Files outside known modules (tests, bench,
// examples, tools) may include anything.
#include <string>

#include "lint/rule.hpp"

namespace hyades::lint {
namespace {

class LayeringRule final : public Rule {
 public:
  std::string name() const override { return "layering"; }
  std::string summary() const override {
    return "include edge violating the module dependency DAG";
  }
  void per_file(const SourceFile& f, const Corpus&, Reporter& rep) override {
    const std::string mod = module_of(f.path);
    if (mod.empty()) return;
    const int my_layer = layer_of(mod);
    for (const IncludeDirective& inc : f.includes) {
      if (inc.angled) continue;  // system/library headers carry no layer
      const std::size_t slash = inc.target.find('/');
      if (slash == std::string::npos) continue;
      const std::string dep = inc.target.substr(0, slash);
      const int dep_layer = layer_of(dep);
      if (dep_layer < 0) continue;  // not a known module
      if (dep == mod || dep_layer < my_layer) continue;
      rep.report(f, inc.line - 1, name(),
                 mod + "/ may not include " + dep + "/ (layer " +
                     std::to_string(my_layer) + " <- " +
                     std::to_string(dep_layer) +
                     "): the DAG is support <- sim <- arctic <- startx <- "
                     "net <- cluster <- comm <- gcm <- {perf,farm}",
                 inc.col);
    }
  }
};
HYADES_LINT_RULE(LayeringRule)

}  // namespace
}  // namespace hyades::lint
