// stale-allow: a lint:allow(<rule>) comment that suppressed zero
// findings this run is itself a finding.  Suppressions rot -- the code
// they excused gets rewritten, the excuse stays and silently eats the
// next genuine violation on that line.  Runs in finalize(), after
// every other rule has consulted the allow sites.
//
// Subset runs (`--rule X`) only judge allows whose rule actually ran;
// an allow for a disabled rule cannot be proven stale.
#include <set>
#include <string>

#include "lint/rule.hpp"

namespace hyades::lint {
namespace {

class StaleAllowRule final : public Rule {
 public:
  std::string name() const override { return "stale-allow"; }
  std::string summary() const override {
    return "lint:allow comment that suppresses zero findings";
  }
  void finalize(const Corpus& corpus, Reporter& rep) override {
    std::set<std::string> known;
    for (const Rule* r : all_rules()) known.insert(r->name());

    // Two passes: judge every non-stale-allow site first, so an allow
    // *of* stale-allow suppressing those verdicts is marked used before
    // pass 2 judges it in turn.
    for (int pass = 0; pass < 2; ++pass) {
      for (const SourceFile& f : corpus.files) {
        for (const AllowSite& a : f.allows) {
          const bool self = a.rule == name();
          if (self != (pass == 1)) continue;
          if (known.count(a.rule) == 0) {
            rep.report(f, a.line_idx, name(),
                       "lint:allow(" + a.rule +
                           ") names an unknown rule: nothing can ever be "
                           "suppressed by it",
                       1);
            continue;
          }
          if (!rep.rule_enabled(a.rule)) continue;  // subset run: unprovable
          if (!a.used) {
            rep.report(f, a.line_idx, name(),
                       "lint:allow(" + a.rule +
                           ") suppresses zero findings: delete it (or the "
                           "code it excused grew back wrong)",
                       1);
          }
        }
      }
    }
  }
};
HYADES_LINT_RULE(StaleAllowRule)

}  // namespace
}  // namespace hyades::lint
