#include "lint/driver.hpp"

#include <algorithm>
#include <filesystem>

#include "lint/rule.hpp"

namespace fs = std::filesystem;

namespace hyades::lint {

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

std::vector<Rule*> sorted_rules() {
  std::vector<Rule*> rules = all_rules();
  std::sort(rules.begin(), rules.end(), [](const Rule* a, const Rule* b) {
    return a->name() < b->name();
  });
  return rules;
}

}  // namespace

void usage(std::ostream& err) {
  err << "usage: hyades-lint [--root DIR] [--rule NAME]... "
         "[--format=text|json|sarif] [FILE]...\n"
         "  --root DIR     scan DIR/{src,tests,bench,examples,tools}\n"
         "  --rule NAME    run only the named rule(s); default: all\n"
         "  --format=FMT   text (default), json, or sarif\n"
         "  FILE...        scan exactly these files instead of a root\n"
         "rules:";
  for (const Rule* r : sorted_rules()) err << " " << r->name();
  err << "\n";
}

bool parse_args(int argc, const char* const* argv, Options* opts, bool* help,
                std::ostream& err) {
  *help = false;
  std::set<std::string> known;
  for (const Rule* r : all_rules()) known.insert(r->name());

  auto set_format = [&](const std::string& v) {
    if (v == "text") {
      opts->format = Format::kText;
    } else if (v == "json") {
      opts->format = Format::kJson;
    } else if (v == "sarif") {
      opts->format = Format::kSarif;
    } else {
      err << "hyades-lint: unknown format '" << v << "'\n";
      return false;
    }
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opts->root = argv[++i];
    } else if (arg == "--rule" && i + 1 < argc) {
      const std::string r = argv[++i];
      if (known.count(r) == 0) {
        err << "hyades-lint: unknown rule '" << r << "'\n";
        usage(err);
        return false;
      }
      opts->rules.insert(r);
    } else if (arg.rfind("--format=", 0) == 0) {
      if (!set_format(arg.substr(9))) return false;
    } else if (arg == "--format" && i + 1 < argc) {
      if (!set_format(argv[++i])) return false;
    } else if (arg == "--help" || arg == "-h") {
      *help = true;
      return true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage(err);
      return false;
    } else {
      opts->files.push_back(arg);
    }
  }
  return true;
}

int run(const Options& opts, std::ostream& out, std::ostream& err) {
  std::vector<std::string> files = opts.files;
  const bool root_scan = files.empty();
  if (root_scan) {
    if (opts.root.empty()) {
      usage(err);
      return 2;
    }
    for (const char* sub : {"src", "tests", "bench", "examples", "tools"}) {
      const fs::path dir = fs::path(opts.root) / sub;
      if (!fs::exists(dir)) continue;
      for (const auto& e : fs::recursive_directory_iterator(dir)) {
        if (e.is_regular_file() && lintable(e.path())) {
          files.push_back(e.path().string());
        }
      }
    }
    std::sort(files.begin(), files.end());
  }

  Corpus corpus;
  corpus.root_scan = root_scan;
  corpus.files.reserve(files.size());
  for (const std::string& f : files) {
    SourceFile sf;
    if (!load(f, &sf)) {
      err << "hyades-lint: cannot read " << f << "\n";
      return 2;
    }
    // Lint fixtures are deliberate tripwires: skipped when discovered
    // by a root scan, linted when named explicitly (the fixture tests).
    if (root_scan &&
        sf.path.find("tests/lint/fixtures") != std::string::npos) {
      continue;
    }
    corpus.files.push_back(std::move(sf));
  }
  corpus.index = Index::build(corpus.files);

  Reporter rep(opts.rules);
  std::vector<RuleInfo> infos;
  for (Rule* r : sorted_rules()) {
    infos.push_back(RuleInfo{r->name(), r->summary()});
    if (!rep.rule_enabled(r->name())) continue;
    for (const SourceFile& f : corpus.files) r->per_file(f, corpus, rep);
    r->whole_corpus(corpus, rep);
  }
  for (Rule* r : sorted_rules()) {
    if (rep.rule_enabled(r->name())) r->finalize(corpus, rep);
  }

  const std::vector<Finding> findings = rep.take_sorted();
  switch (opts.format) {
    case Format::kText:
      emit_text(findings, corpus.files.size(), out);
      break;
    case Format::kJson:
      emit_json(findings, infos, corpus.files.size(), out);
      break;
    case Format::kSarif:
      emit_sarif(findings, infos, out);
      break;
  }
  return findings.empty() ? 0 : 1;
}

}  // namespace hyades::lint
