#include "lint/format.hpp"

#include <cstdio>

namespace hyades::lint {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void emit_text(const std::vector<Finding>& findings, std::size_t files_scanned,
               std::ostream& out) {
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ":" << f.col << ": [" << f.rule << "] "
        << f.message << "\n";
  }
  out << findings.size() << " finding(s) in " << files_scanned
      << " file(s)\n";
}

void emit_json(const std::vector<Finding>& findings,
               const std::vector<RuleInfo>& rules, std::size_t files_scanned,
               std::ostream& out) {
  out << "{\"tool\":\"hyades-lint\",\"schema_version\":2,";
  out << "\"files_scanned\":" << files_scanned << ",";
  out << "\"rules\":[";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i != 0) out << ",";
    out << "{\"name\":\"" << json_escape(rules[i].name) << "\",\"summary\":\""
        << json_escape(rules[i].summary) << "\"}";
  }
  out << "],\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) out << ",";
    out << "{\"file\":\"" << json_escape(f.file) << "\",\"line\":" << f.line
        << ",\"col\":" << f.col << ",\"rule\":\"" << json_escape(f.rule)
        << "\",\"message\":\"" << json_escape(f.message) << "\"}";
  }
  out << "],\"count\":" << findings.size() << "}\n";
}

void emit_sarif(const std::vector<Finding>& findings,
                const std::vector<RuleInfo>& rules, std::ostream& out) {
  out << "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
      << "\"version\":\"2.1.0\",\"runs\":[{";
  out << "\"tool\":{\"driver\":{\"name\":\"hyades-lint\","
      << "\"informationUri\":\"tools/lint/README.md\",\"rules\":[";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i != 0) out << ",";
    out << "{\"id\":\"" << json_escape(rules[i].name)
        << "\",\"shortDescription\":{\"text\":\""
        << json_escape(rules[i].summary) << "\"}}";
  }
  out << "]}},\"results\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) out << ",";
    out << "{\"ruleId\":\"" << json_escape(f.rule)
        << "\",\"level\":\"error\",\"message\":{\"text\":\""
        << json_escape(f.message) << "\"},\"locations\":[{"
        << "\"physicalLocation\":{\"artifactLocation\":{\"uri\":\""
        << json_escape(f.file) << "\"},\"region\":{\"startLine\":" << f.line
        << ",\"startColumn\":" << f.col << "}}}]}";
  }
  out << "]}]}\n";
}

}  // namespace hyades::lint
