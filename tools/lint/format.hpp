// Output formatters for hyades-lint.
//
// All three formats consume the same sorted finding list, so ordering
// is stable across runs and formats.  json and sarif are strict
// RFC-8259: every control character is escaped, and no non-finite
// numbers can occur (all numbers emitted are line/column counts).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "lint/rule.hpp"

namespace hyades::lint {

enum class Format { kText, kJson, kSarif };

// Escape a string for embedding inside JSON quotes.
std::string json_escape(const std::string& s);

struct RuleInfo {
  std::string name;
  std::string summary;
};

// `file:line:col: [rule] message` lines plus a trailing count summary.
void emit_text(const std::vector<Finding>& findings, std::size_t files_scanned,
               std::ostream& out);

// Single JSON object: tool, schema_version, files_scanned, rules,
// findings, count.
void emit_json(const std::vector<Finding>& findings,
               const std::vector<RuleInfo>& rules, std::size_t files_scanned,
               std::ostream& out);

// Minimal SARIF 2.1.0 log: one run, driver rule metadata, one result
// per finding.
void emit_sarif(const std::vector<Finding>& findings,
                const std::vector<RuleInfo>& rules, std::ostream& out);

}  // namespace hyades::lint
