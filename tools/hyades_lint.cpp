// hyades-lint: repo-specific invariant checker.
//
// The simulated world only stays deterministic and fault-pure because a
// handful of disciplines hold everywhere; sanitizers and golden tests
// catch violations at run time, this tool catches them at review time
// with zero execution.  Rules:
//
//   wall-clock        real-time clock reads (system/steady clock,
//                     gettimeofday, time()) outside an allowlisted
//                     site: all timing in the simulated world must go
//                     through VirtualClock or stamps derived from it.
//   unseeded-rng      rand()/srand()/std::random_device/
//                     default_random_engine anywhere: every random
//                     draw must come from a seeded SplitMix64 so runs
//                     replay bit-identically.
//   naked-new         raw new/delete expressions: ownership goes
//                     through containers and smart pointers; a naked
//                     new in an exception-throwing world leaks.
//   catch-all         catch (...) without a justification: it would
//                     also catch RankFailStop (deliberately not a
//                     std::exception) and turn a scheduled node death
//                     into silent survival.
//   raw-send          send_raw/send_msg/bus().send from gcm/ or farm/
//                     code: model and campaign traffic must ride the
//                     comm/reliable protocol (CRC status,
//                     NAK/retransmit) or carry a justification for why
//                     loss cannot matter.
//   spancat-coverage  the SpanCat enum (cluster/trace.hpp) and the
//                     wait-attribution column map (span_cat_column in
//                     cluster/report.cpp) must stay in sync, and every
//                     named column must exist in the printed table.
//   ckpt-path         checkpoint file names composed outside the
//                     gcm/tile_ckpt module (quoted ".rank"/".tmp"/slot
//                     suffix strings, or a checkpoint prefix spliced
//                     with `+`) in gcm/ or farm/ code: the HYADES03
//                     naming scheme has exactly one owner, which is
//                     what lets per-tile recovery (live migration)
//                     reason about durable files without ad-hoc string
//                     surgery scattered over the tree.
//   recovery-typed    catch (...) or a bare std::runtime_error
//                     construction inside the recovery-critical
//                     translation units (gcm/resilient.cpp,
//                     cluster/membership.cpp): every failure there must
//                     be a typed gcm::RecoveryError subclass carrying
//                     rank/step/slot/rung context, or the degradation
//                     ladder and the farm's triage lose the why.
//   magic-topology    bare 4/16/32 literals in the topology machinery
//                     (src/arctic and src/net files named route/fabric/
//                     fault/topology/torus/arctic_model): since the
//                     fabric is parameterized by FatTreeShape, the
//                     paper's radix-4 16-endpoint machine is a default,
//                     not a law -- shape numbers must come from the
//                     shape or a named constexpr constant, or a
//                     non-default build silently re-hardcodes the seed
//                     machine.
//
// Suppression: a finding is allowed by a comment on the same line or
// the line above, of the form
//
//     // lint:allow(<rule>): <justification>
//
// The justification is mandatory -- an allow without a reason is itself
// a finding.  Comments and string literals are stripped before pattern
// matching, so mentioning steady_clock in prose is fine.
//
// Exit status: 0 clean, 1 findings, 2 usage/IO error.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct SourceFile {
  std::string path;          // as reported in findings
  std::vector<std::string> raw;   // original lines (for allow comments)
  std::vector<std::string> code;  // comments + string literals blanked
};

// ---- lexing ---------------------------------------------------------------

// Blank comments and string/char literals, preserving line structure so
// findings keep their line numbers.  Handles //, /* */, "..." with
// escapes, '...' and raw strings R"tag(...)tag".
std::vector<std::string> strip_noncode(const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  enum class St { kCode, kBlock, kStr, kChar, kRaw };
  St st = St::kCode;
  std::string raw_tag;
  for (const std::string& line : lines) {
    std::string o;
    o.reserve(line.size());
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char n = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (st) {
        case St::kCode:
          if (c == '/' && n == '/') {
            o.append(line.size() - i, ' ');
            i = line.size();
          } else if (c == '/' && n == '*') {
            st = St::kBlock;
            o += "  ";
            ++i;
          } else if (c == 'R' && n == '"' &&
                     (i == 0 || (std::isalnum(static_cast<unsigned char>(
                                     line[i - 1])) == 0 &&
                                 line[i - 1] != '_'))) {
            // raw string: collect delimiter up to '('
            std::size_t j = i + 2;
            std::string tag;
            while (j < line.size() && line[j] != '(') tag += line[j++];
            st = St::kRaw;
            raw_tag = ")" + tag + "\"";
            o.append(j >= line.size() ? line.size() - i : j - i + 1, ' ');
            i = j;
          } else if (c == '"') {
            st = St::kStr;
            o += ' ';
          } else if (c == '\'') {
            st = St::kChar;
            o += ' ';
          } else {
            o += c;
          }
          break;
        case St::kBlock:
          if (c == '*' && n == '/') {
            st = St::kCode;
            o += "  ";
            ++i;
          } else {
            o += ' ';
          }
          break;
        case St::kStr:
          if (c == '\\') {
            o += "  ";
            ++i;
          } else if (c == '"') {
            st = St::kCode;
            o += ' ';
          } else {
            o += ' ';
          }
          break;
        case St::kChar:
          if (c == '\\') {
            o += "  ";
            ++i;
          } else if (c == '\'') {
            st = St::kCode;
            o += ' ';
          } else {
            o += ' ';
          }
          break;
        case St::kRaw: {
          const std::size_t hit = line.find(raw_tag, i);
          if (hit == std::string::npos) {
            o.append(line.size() - i, ' ');
            i = line.size();
          } else {
            o.append(hit - i + raw_tag.size(), ' ');
            i = hit + raw_tag.size() - 1;
            st = St::kCode;
          }
          break;
        }
      }
    }
    // Unterminated string/char literals do not span lines in valid C++.
    if (st == St::kStr || st == St::kChar) st = St::kCode;
    out.push_back(std::move(o));
  }
  return out;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Find `token` in `s` as a whole word (no identifier char on either
// side).  Returns npos if absent.
std::size_t find_word(const std::string& s, const std::string& token,
                      std::size_t from = 0) {
  std::size_t pos = from;
  while ((pos = s.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(s[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= s.size() || !ident_char(s[end]);
    if (left_ok && right_ok) return pos;
    pos += 1;
  }
  return std::string::npos;
}

// Whole-word token immediately followed by '(' (spaces allowed).
bool has_call(const std::string& s, const std::string& fn) {
  std::size_t pos = 0;
  while ((pos = find_word(s, fn, pos)) != std::string::npos) {
    std::size_t j = pos + fn.size();
    while (j < s.size() && s[j] == ' ') ++j;
    if (j < s.size() && s[j] == '(') return true;
    pos += 1;
  }
  return false;
}

// ---- allow comments -------------------------------------------------------

bool line_is_comment(const std::string& raw) {
  const std::size_t p = raw.find_first_not_of(" \t");
  return p != std::string::npos && raw.compare(p, 2, "//") == 0;
}

// True if raw line `i` (0-based), or the contiguous `//` comment block
// directly above it, carries `lint:allow(<rule>): <justification>`.
// A bare allow with nothing after the colon still suppresses the
// original finding but is reported itself: suppressions must say why.
bool allowed(const SourceFile& f, std::size_t i, const std::string& rule,
             std::vector<Finding>* findings) {
  const std::string needle = "lint:allow(" + rule + ")";
  std::vector<std::size_t> candidates{i};
  for (std::size_t k = i; k > 0 && line_is_comment(f.raw[k - 1]); --k) {
    candidates.push_back(k - 1);
  }
  for (const std::size_t k : candidates) {
    const std::string& line = f.raw[k];
    const std::size_t pos = line.find(needle);
    if (pos == std::string::npos) continue;
    // Demand a justification after "): ".
    std::size_t j = pos + needle.size();
    while (j < line.size() && (line[j] == ':' || line[j] == ' ')) ++j;
    if (j >= line.size()) {
      findings->push_back({f.path, k + 1, rule,
                           "lint:allow(" + rule +
                               ") needs a justification after the colon"});
    }
    return true;
  }
  return false;
}

void report(std::vector<Finding>* findings, const SourceFile& f,
            std::size_t line_idx, const std::string& rule,
            const std::string& msg) {
  if (allowed(f, line_idx, rule, findings)) return;
  findings->push_back({f.path, line_idx + 1, rule, msg});
}

// ---- per-line rules -------------------------------------------------------

void rule_wall_clock(const SourceFile& f, std::vector<Finding>* out) {
  static const char* kClocks[] = {"system_clock", "steady_clock",
                                  "high_resolution_clock"};
  static const char* kCalls[] = {"gettimeofday", "clock_gettime",
                                 "timespec_get", "localtime", "gmtime"};
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& s = f.code[i];
    for (const char* c : kClocks) {
      if (find_word(s, c) != std::string::npos) {
        report(out, f, i, "wall-clock",
               std::string(c) +
                   ": the simulated world tells time with VirtualClock");
        break;
      }
    }
    for (const char* c : kCalls) {
      if (has_call(s, c)) {
        report(out, f, i, "wall-clock",
               std::string(c) + "() reads the host clock");
        break;
      }
    }
    // time(nullptr) / time(0) / time(NULL): `time` alone collides with
    // too many identifiers, so require the call shape.
    std::size_t pos = 0;
    while ((pos = find_word(s, "time", pos)) != std::string::npos) {
      std::size_t j = pos + 4;
      while (j < s.size() && s[j] == ' ') ++j;
      if (j < s.size() && s[j] == '(') {
        std::size_t k = j + 1;
        while (k < s.size() && s[k] == ' ') ++k;
        if (s.compare(k, 7, "nullptr") == 0 || s.compare(k, 4, "NULL") == 0 ||
            (k < s.size() && s[k] == '0')) {
          report(out, f, i, "wall-clock", "time() reads the host clock");
          break;
        }
      }
      pos += 1;
    }
  }
}

void rule_unseeded_rng(const SourceFile& f, std::vector<Finding>* out) {
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& s = f.code[i];
    if (find_word(s, "random_device") != std::string::npos ||
        find_word(s, "default_random_engine") != std::string::npos) {
      report(out, f, i, "unseeded-rng",
             "nondeterministic engine: draw from a seeded SplitMix64");
    } else if (has_call(s, "rand") || has_call(s, "srand")) {
      report(out, f, i, "unseeded-rng",
             "C rand(): hidden global state breaks replay; use SplitMix64");
    }
  }
}

void rule_naked_new(const SourceFile& f, std::vector<Finding>* out) {
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& s = f.code[i];
    std::size_t pos = find_word(s, "new");
    if (pos != std::string::npos) {
      // Ignore `operator new` declarations.
      const std::size_t op = s.rfind("operator", pos);
      const bool is_operator =
          op != std::string::npos &&
          s.find_first_not_of(' ', op + 8) == pos;
      if (!is_operator) {
        report(out, f, i, "naked-new",
               "raw new: use make_unique/containers (exception-safe "
               "ownership)");
      }
    }
    pos = find_word(s, "delete");
    if (pos != std::string::npos) {
      // Ignore `= delete` (deleted functions) and `operator delete`.
      std::size_t p = pos;
      while (p > 0 && s[p - 1] == ' ') --p;
      const bool deleted_fn = p > 0 && s[p - 1] == '=';
      const std::size_t op = s.rfind("operator", pos);
      const bool is_operator =
          op != std::string::npos &&
          s.find_first_not_of(' ', op + 8) == pos;
      if (!deleted_fn && !is_operator) {
        report(out, f, i, "naked-new",
               "raw delete: ownership belongs to a smart pointer");
      }
    }
  }
}

void rule_catch_all(const SourceFile& f, std::vector<Finding>* out) {
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& s = f.code[i];
    std::size_t pos = 0;
    while ((pos = find_word(s, "catch", pos)) != std::string::npos) {
      std::size_t j = pos + 5;
      while (j < s.size() && s[j] == ' ') ++j;
      if (j < s.size() && s[j] == '(') {
        const std::size_t dots = s.find("...", j);
        const std::size_t close = s.find(')', j);
        if (dots != std::string::npos && close != std::string::npos &&
            dots < close) {
          report(out, f, i, "catch-all",
                 "catch (...) also swallows RankFailStop (a scheduled node "
                 "death must not be survived)");
        }
      }
      pos += 1;
    }
  }
}

bool path_contains(const std::string& path, const std::string& part) {
  return path.find(part) != std::string::npos;
}

void rule_raw_send(const SourceFile& f, std::vector<Finding>* out) {
  // Scope: model code (gcm/) and the ensemble-farm service (farm/) --
  // both drive whole campaigns through the fault machinery, so a raw
  // bus send would silently lose CRC/NAK protection there too.
  const bool scoped =
      path_contains(f.path, "gcm/") || path_contains(f.path, "gcm\\") ||
      path_contains(f.path, "farm/") || path_contains(f.path, "farm\\");
  if (!scoped) return;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& s = f.code[i];
    // Member-call sites only (`x.send_raw(` / `x->send_raw(`):
    // declarations of the bus primitives are fine, invoking them from
    // model code is the violation.
    bool hit = false;
    for (const char* fn : {"send_raw", "send_msg"}) {
      std::size_t pos = 0;
      while ((pos = find_word(s, fn, pos)) != std::string::npos) {
        std::size_t j = pos + std::string(fn).size();
        while (j < s.size() && s[j] == ' ') ++j;
        const bool is_call = j < s.size() && s[j] == '(';
        const bool member = pos > 0 && (s[pos - 1] == '.' ||
                                        (pos > 1 && s[pos - 1] == '>' &&
                                         s[pos - 2] == '-'));
        if (is_call && member) hit = true;
        pos += 1;
      }
    }
    if (hit || s.find("bus().send") != std::string::npos ||
        s.find("MessageBus::send") != std::string::npos) {
      report(out, f, i, "raw-send",
             "gcm traffic bypassing comm/reliable loses CRC/NAK protection "
             "under fault plans");
    }
  }
}

void rule_recovery_typed(const SourceFile& f, std::vector<Finding>* out) {
  // Scope: the recovery-critical translation units -- the resilient
  // driver and the membership service.  Everything that can go wrong
  // there must surface as a typed, context-carrying error (the
  // degradation ladder records rung failures, the farm triages typed
  // give-ups); a bare std::runtime_error erases the rank/step/slot/rung
  // context, and a catch (...) would swallow RankFailStop.  Fixtures
  // mirroring those filenames are linted too.
  const std::string base = fs::path(f.path).filename().string();
  if (base != "resilient.cpp" && base != "membership.cpp") return;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& s = f.code[i];
    std::size_t pos = 0;
    while ((pos = find_word(s, "catch", pos)) != std::string::npos) {
      std::size_t j = pos + 5;
      while (j < s.size() && s[j] == ' ') ++j;
      if (j < s.size() && s[j] == '(') {
        const std::size_t dots = s.find("...", j);
        const std::size_t close = s.find(')', j);
        if (dots != std::string::npos && close != std::string::npos &&
            dots < close) {
          report(out, f, i, "recovery-typed",
                 "recovery code must not catch (...): failures stay typed "
                 "for the degradation ladder and farm triage");
        }
      }
      pos += 1;
    }
    pos = 0;
    while ((pos = find_word(s, "runtime_error", pos)) != std::string::npos) {
      std::size_t j = pos + 13;
      while (j < s.size() && s[j] == ' ') ++j;
      // Construction sites only (`runtime_error(...)`): catching the
      // base type to triage collateral errors is fine, throwing it
      // discards the context a typed gcm::RecoveryError carries.
      if (j < s.size() && s[j] == '(') {
        report(out, f, i, "recovery-typed",
               "bare std::runtime_error in recovery code: throw a typed "
               "gcm::RecoveryError (or subclass) carrying rank/step/slot/"
               "rung context");
      }
      pos += 1;
    }
  }
}

void rule_ckpt_path(const SourceFile& f, std::vector<Finding>* out) {
  // Scope: gcm/ and farm/ production code (plus the lint fixtures
  // mirroring them).  tile_ckpt itself is the sanctioned owner of the
  // on-disk names, and tests outside the fixtures legitimately assert
  // the published format.
  const bool dir_ok =
      path_contains(f.path, "gcm/") || path_contains(f.path, "gcm\\") ||
      path_contains(f.path, "farm/") || path_contains(f.path, "farm\\");
  if (!dir_ok) return;
  if (path_contains(f.path, "tests/") && !path_contains(f.path, "fixtures")) {
    return;
  }
  const std::string base = fs::path(f.path).filename().string();
  if (base.find("tile_ckpt") != std::string::npos) return;

  for (std::size_t i = 0; i < f.raw.size(); ++i) {
    if (line_is_comment(f.raw[i])) continue;
    const std::string& raw = f.raw[i];
    const std::string& code = f.code[i];
    bool hit = false;
    // Quoted name fragments: the fragment must sit inside a string
    // literal (blanked in the code view, with an opening quote before
    // it) -- `verdict.rank` member accesses and prose in whole-line
    // comments stay silent.
    for (const char* frag : {".rank", ".tmp"}) {
      const std::string tok = frag;
      std::size_t pos = 0;
      while ((pos = raw.find(tok, pos)) != std::string::npos) {
        if (pos < code.size() && code[pos] == ' ' &&
            raw.rfind('"', pos) != std::string::npos) {
          hit = true;
          break;
        }
        pos += 1;
      }
      if (hit) break;
    }
    // The slot suffixes as bare literals.
    if (!hit && (raw.find("\".a\"") != std::string::npos ||
                 raw.find("\".b\"") != std::string::npos)) {
      hit = true;
    }
    // A checkpoint prefix spliced with `+` is the other shape of the
    // same violation.
    if (!hit) {
      const std::size_t pos = find_word(code, "ckpt_prefix");
      if (pos != std::string::npos) {
        std::size_t a = pos;
        while (a > 0 && code[a - 1] == ' ') --a;
        std::size_t b = pos + 11;  // strlen("ckpt_prefix")
        while (b < code.size() && code[b] == ' ') ++b;
        if ((a > 0 && code[a - 1] == '+') ||
            (b < code.size() && code[b] == '+')) {
          hit = true;
        }
      }
    }
    if (hit) {
      report(out, f, i, "ckpt-path",
             "checkpoint file names are composed only inside gcm/tile_ckpt "
             "(slot_prefix/rank_path): ad-hoc \".rank\"/\".tmp\"/slot "
             "suffixes fork the on-disk format");
    }
  }
}

void rule_magic_topology(const SourceFile& f, std::vector<Finding>* out) {
  // Scope: the topology-shape translation units under src/arctic and
  // src/net (plus the lint fixtures mirroring them).  Tests and benches
  // legitimately spell out concrete shapes.
  const bool dir_ok = path_contains(f.path, "src/arctic") ||
                      path_contains(f.path, "src/net") ||
                      path_contains(f.path, "fixtures/arctic") ||
                      path_contains(f.path, "fixtures/net");
  if (!dir_ok) return;
  static const char* kUnits[] = {"route",    "fabric", "fault",
                                 "topology", "torus",  "arctic_model"};
  const std::string base = fs::path(f.path).filename().string();
  bool unit_ok = false;
  for (const char* u : kUnits) {
    if (base.find(u) != std::string::npos) {
      unit_ok = true;
      break;
    }
  }
  if (!unit_ok) return;

  static const char* kShapeLiterals[] = {"4", "16", "32"};
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& s = f.code[i];
    // Named-constant definitions are the sanctioned home for these
    // numbers.
    if (find_word(s, "constexpr") != std::string::npos) continue;
    for (const char* lit : kShapeLiterals) {
      const std::string tok = lit;
      std::size_t pos = 0;
      bool hit = false;
      while ((pos = s.find(tok, pos)) != std::string::npos) {
        // A standalone numeric token: no identifier character or digit
        // on the left, and on the right only an integer suffix before a
        // non-identifier character.  '.' adjacency means a float
        // (0.4, 4.0) -- a calibration value, not a shape.
        const bool left_ok =
            pos == 0 || (!ident_char(s[pos - 1]) && s[pos - 1] != '.');
        std::size_t end = pos + tok.size();
        while (end < s.size() &&
               (s[end] == 'u' || s[end] == 'U' || s[end] == 'l' ||
                s[end] == 'L')) {
          ++end;
        }
        const bool right_ok =
            end >= s.size() || (!ident_char(s[end]) && s[end] != '.');
        if (left_ok && right_ok) {
          hit = true;
          break;
        }
        pos += 1;
      }
      if (hit) {
        report(out, f, i, "magic-topology",
               std::string("bare ") + lit +
                   ": shape numbers (radix, endpoints, ports) come from "
                   "FatTreeShape or a named constexpr constant");
        break;
      }
    }
  }
}

// ---- spancat-coverage -----------------------------------------------------

// Parse `enum class SpanCat ... { kA, kB, ... }` enumerator names.
std::vector<std::string> parse_spancat_enum(const SourceFile& f) {
  std::vector<std::string> names;
  bool in_enum = false;
  for (const std::string& s : f.code) {
    if (!in_enum) {
      const std::size_t pos = s.find("enum class SpanCat");
      if (pos == std::string::npos) continue;
      in_enum = true;
    }
    // Collect identifiers starting with 'k' at word boundaries.
    for (std::size_t i = 0; i < s.size();) {
      if (s[i] == '}') return names;
      if (ident_char(s[i]) && (i == 0 || !ident_char(s[i - 1]))) {
        std::size_t j = i;
        while (j < s.size() && ident_char(s[j])) ++j;
        const std::string word = s.substr(i, j - i);
        if (word.size() > 1 && word[0] == 'k' &&
            std::isupper(static_cast<unsigned char>(word[1])) != 0) {
          names.push_back(word);
        }
        i = j;
      } else {
        ++i;
      }
    }
  }
  return names;
}

void rule_spancat_coverage(const std::vector<SourceFile>& files,
                           std::vector<Finding>* out) {
  const SourceFile* enum_file = nullptr;
  const SourceFile* report_file = nullptr;
  for (const SourceFile& f : files) {
    bool has_enum = false;
    bool has_map = false;
    for (const std::string& s : f.code) {
      if (s.find("enum class SpanCat") != std::string::npos) has_enum = true;
      if (s.find("span_cat_column") != std::string::npos &&
          s.find("switch") == std::string::npos) {
        has_map = true;
      }
    }
    // The switch implementation (not the header declaration) contains
    // `case SpanCat::`.
    bool has_cases = false;
    for (const std::string& s : f.code) {
      if (s.find("case SpanCat::") != std::string::npos) has_cases = true;
    }
    if (has_enum && enum_file == nullptr) enum_file = &f;
    if (has_map && has_cases) report_file = &f;
  }
  // Single-file scans (fixtures, pre-commit on one file) may legitimately
  // see only half the pair; the rule only fires when both sides exist.
  if (enum_file == nullptr || report_file == nullptr) return;

  const std::vector<std::string> cats = parse_spancat_enum(*enum_file);
  if (cats.empty()) return;

  // Which categories have a `case SpanCat::kX:` and what column strings
  // the map returns.  Column strings live in the *raw* lines (string
  // literals are blanked in the code view).
  std::set<std::string> covered;
  std::vector<std::pair<std::size_t, std::string>> columns;
  bool in_map = false;
  int depth = 0;
  for (std::size_t i = 0; i < report_file->code.size(); ++i) {
    const std::string& s = report_file->code[i];
    if (!in_map && s.find("span_cat_column") != std::string::npos &&
        s.find(';') == std::string::npos) {
      in_map = true;  // function definition begins
    }
    if (!in_map) continue;
    for (char c : s) {
      if (c == '{') ++depth;
      if (c == '}') --depth;
    }
    const std::size_t cs = s.find("case SpanCat::");
    if (cs != std::string::npos) {
      std::size_t j = cs + 14;
      std::string name;
      while (j < s.size() && ident_char(s[j])) name += s[j++];
      covered.insert(name);
    }
    if (s.find("return") != std::string::npos) {
      const std::string& raw = report_file->raw[i];
      const std::size_t q1 = raw.find('"');
      const std::size_t q2 =
          q1 == std::string::npos ? std::string::npos : raw.find('"', q1 + 1);
      if (q2 != std::string::npos) {
        columns.emplace_back(i, raw.substr(q1 + 1, q2 - q1 - 1));
      }
    }
    if (in_map && depth == 0 && s.find('}') != std::string::npos) break;
  }

  for (const std::string& cat : cats) {
    if (covered.count(cat) == 0) {
      out->push_back(
          {report_file->path, 1, "spancat-coverage",
           "SpanCat::" + cat + " (declared in " + enum_file->path +
               ") has no case in span_cat_column: decide its "
               "wait-attribution column (or map it to nullptr with a "
               "comment)"});
    }
  }
  for (const std::string& cat : covered) {
    if (std::find(cats.begin(), cats.end(), cat) == cats.end()) {
      out->push_back({report_file->path, 1, "spancat-coverage",
                      "span_cat_column handles SpanCat::" + cat +
                          " which the enum no longer declares"});
    }
  }
  // Every named column must appear in the printed table's header list.
  std::string headers;
  for (const std::string& raw : report_file->raw) headers += raw;
  for (const auto& [line_idx, col] : columns) {
    // Count occurrences: the return site plus at least one use in a
    // table header initializer.
    std::size_t count = 0;
    std::size_t pos = 0;
    const std::string quoted = "\"" + col + "\"";
    while ((pos = headers.find(quoted, pos)) != std::string::npos) {
      ++count;
      pos += quoted.size();
    }
    if (count < 2) {
      out->push_back({report_file->path, line_idx + 1, "spancat-coverage",
                      "column \"" + col +
                          "\" returned by span_cat_column does not appear "
                          "in the report's table headers"});
    }
  }
}

// ---- driver ---------------------------------------------------------------

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

bool load(const std::string& path, SourceFile* out) {
  std::ifstream in(path);
  if (!in) return false;
  out->path = path;
  std::string line;
  while (std::getline(in, line)) out->raw.push_back(line);
  out->code = strip_noncode(out->raw);
  return true;
}

void usage() {
  std::cerr
      << "usage: hyades-lint [--root DIR] [--rule NAME]... [FILE]...\n"
         "  --root DIR   scan DIR/{src,tests,bench,examples,tools}\n"
         "  --rule NAME  run only the named rule(s); default: all\n"
         "  FILE...      scan exactly these files instead of a root\n"
         "rules: wall-clock unseeded-rng naked-new catch-all raw-send "
         "spancat-coverage magic-topology ckpt-path recovery-typed\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::set<std::string> rules;
  std::vector<std::string> files;
  static const std::set<std::string> kAllRules = {
      "wall-clock",       "unseeded-rng",   "naked-new",
      "catch-all",        "raw-send",       "spancat-coverage",
      "magic-topology",   "ckpt-path",      "recovery-typed"};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--rule" && i + 1 < argc) {
      const std::string r = argv[++i];
      if (kAllRules.count(r) == 0) {
        std::cerr << "hyades-lint: unknown rule '" << r << "'\n";
        usage();
        return 2;
      }
      rules.insert(r);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (rules.empty()) rules = kAllRules;

  const bool root_scan = files.empty();
  if (root_scan) {
    if (root.empty()) {
      usage();
      return 2;
    }
    for (const char* sub : {"src", "tests", "bench", "examples", "tools"}) {
      const fs::path dir = fs::path(root) / sub;
      if (!fs::exists(dir)) continue;
      for (const auto& e : fs::recursive_directory_iterator(dir)) {
        if (e.is_regular_file() && lintable(e.path())) {
          files.push_back(e.path().string());
        }
      }
    }
    std::sort(files.begin(), files.end());
  }

  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const std::string& f : files) {
    SourceFile sf;
    if (!load(f, &sf)) {
      std::cerr << "hyades-lint: cannot read " << f << "\n";
      return 2;
    }
    // Lint fixtures are deliberate tripwires: skipped when discovered
    // by a root scan, linted when named explicitly (the fixture tests).
    if (root_scan &&
        sf.path.find("tests/lint/fixtures") != std::string::npos) {
      continue;
    }
    sources.push_back(std::move(sf));
  }

  std::vector<Finding> findings;
  for (const SourceFile& f : sources) {
    if (rules.count("wall-clock") != 0) rule_wall_clock(f, &findings);
    if (rules.count("unseeded-rng") != 0) rule_unseeded_rng(f, &findings);
    if (rules.count("naked-new") != 0) rule_naked_new(f, &findings);
    if (rules.count("catch-all") != 0) rule_catch_all(f, &findings);
    if (rules.count("raw-send") != 0) rule_raw_send(f, &findings);
    if (rules.count("magic-topology") != 0) rule_magic_topology(f, &findings);
    if (rules.count("ckpt-path") != 0) rule_ckpt_path(f, &findings);
    if (rules.count("recovery-typed") != 0) {
      rule_recovery_typed(f, &findings);
    }
  }
  if (rules.count("spancat-coverage") != 0) {
    rule_spancat_coverage(sources, &findings);
  }

  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!findings.empty()) {
    std::cout << findings.size() << " finding(s) in " << sources.size()
              << " file(s)\n";
    return 1;
  }
  return 0;
}
