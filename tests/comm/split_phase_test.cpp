// Split-phase (start/test/finish) semantics of the comm core: the
// pipelined exchange and global sum must deliver bitwise-identical data
// to their blocking counterparts, tolerate out-of-order finishes among
// in-flight exchanges, and credit hidden communication to the
// Accounting::overlap_us bucket instead of charging it twice.
#include <gtest/gtest.h>

#include <array>
#include <thread>
#include <vector>

#include "comm/comm.hpp"
#include "net/arctic_model.hpp"
#include "net/ethernet.hpp"

namespace hyades::comm {
namespace {

using cluster::MachineConfig;
using cluster::RankContext;
using cluster::Runtime;

MachineConfig machine(const net::Interconnect& net, int smps, int ppp) {
  MachineConfig cfg;
  cfg.smp_count = smps;
  cfg.procs_per_smp = ppp;
  cfg.interconnect = &net;
  return cfg;
}

// 4x4 periodic tile grid over 16 ranks: rank = ty*4 + tx.
std::array<int, kDirections> grid_neighbors(int rank) {
  const int tx = rank % 4, ty = rank / 4;
  auto id = [](int x, int y) { return ((y + 4) % 4) * 4 + (x + 4) % 4; };
  return {id(tx + 1, ty), id(tx - 1, ty), id(tx, ty + 1), id(tx, ty - 1)};
}

Comm::Buffers make_buffers(int rank, double tag, int len = 8) {
  Comm::Buffers buf;
  for (int d = 0; d < kDirections; ++d) {
    const auto n = static_cast<std::size_t>(len);
    buf.out[static_cast<std::size_t>(d)].assign(n, rank * 100.0 + tag + d);
    buf.in[static_cast<std::size_t>(d)].assign(n, -1.0);
  }
  return buf;
}

void expect_exchanged(const std::array<int, kDirections>& nb,
                      const Comm::Buffers& buf, double tag, int rank) {
  for (int d = 0; d < kDirections; ++d) {
    const double expected =
        nb[static_cast<std::size_t>(d)] * 100.0 + tag + opposite(d);
    for (double v : buf.in[static_cast<std::size_t>(d)]) {
      ASSERT_DOUBLE_EQ(v, expected) << "rank " << rank << " dir " << d;
    }
  }
}

// The pipelined start/finish path must deliver exactly the data the
// blocking exchange delivers, on the same neighbor grid.
TEST(SplitPhase, ExchangeMatchesBlockingData) {
  const net::ArcticModel net;
  for (int ppp : {1, 2}) {
    Runtime rt(machine(net, 16 / ppp, ppp));
    rt.run([&](RankContext& ctx) {
      Comm comm(ctx);
      const auto nb = grid_neighbors(ctx.rank());
      Comm::Buffers blocking = make_buffers(ctx.rank(), 7.0);
      comm.exchange(nb, blocking);

      Comm::Buffers split = make_buffers(ctx.rank(), 7.0);
      ExchangeHandle h = comm.exchange_start(nb, split);
      EXPECT_TRUE(h.valid());
      comm.exchange_finish(h);
      for (int d = 0; d < kDirections; ++d) {
        ASSERT_EQ(split.in[static_cast<std::size_t>(d)],
                  blocking.in[static_cast<std::size_t>(d)])
            << "rank " << ctx.rank() << " dir " << d;
      }
      EXPECT_EQ(comm.exchanges_done(), 2u);
    });
  }
}

// Two exchanges in flight at once, finished in reverse start order: the
// per-handle tag sequencing must route each strip to the right handle.
TEST(SplitPhase, OutOfOrderFinishTwoInFlight) {
  const net::ArcticModel net;
  for (int ppp : {1, 2}) {
    Runtime rt(machine(net, 16 / ppp, ppp));
    rt.run([&](RankContext& ctx) {
      Comm comm(ctx);
      const auto nb = grid_neighbors(ctx.rank());
      Comm::Buffers a = make_buffers(ctx.rank(), 11.0);
      Comm::Buffers b = make_buffers(ctx.rank(), 23.0, 16);
      ExchangeHandle ha = comm.exchange_start(nb, a);
      ExchangeHandle hb = comm.exchange_start(nb, b);
      comm.exchange_finish(hb);  // reverse order
      comm.exchange_finish(ha);
      expect_exchanged(nb, a, 11.0, ctx.rank());
      expect_exchanged(nb, b, 23.0, ctx.rank());
      EXPECT_EQ(comm.exchanges_done(), 2u);
    });
  }
}

// exchange_test never advances the virtual clock; once it reports true,
// finish completes with the correct data.
TEST(SplitPhase, ExchangeTestDrainsWithoutClockAdvance) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 4, 1));
  rt.run([&](RankContext& ctx) {
    Comm comm(ctx);
    const int tx = ctx.rank() % 2, ty = ctx.rank() / 2;
    auto id = [](int x, int y) { return ((y + 2) % 2) * 2 + (x + 2) % 2; };
    const std::array<int, kDirections> nb{id(tx + 1, ty), id(tx - 1, ty),
                                          id(tx, ty + 1), id(tx, ty - 1)};
    Comm::Buffers buf = make_buffers(ctx.rank(), 3.0);
    ExchangeHandle h = comm.exchange_start(nb, buf);
    const Microseconds t0 = ctx.clock().now();
    // All sends were posted by start on every rank, so the strips arrive
    // in real time even though we only probe.
    while (!comm.exchange_test(h)) std::this_thread::yield();
    EXPECT_EQ(ctx.clock().now(), t0);  // probing is free
    comm.exchange_finish(h);
    expect_exchanged(nb, buf, 3.0, ctx.rank());
  });
}

// Split global sum/max returns bitwise the blocking result on every rank.
TEST(SplitPhase, GsumMatchesBlockingBitwise) {
  const net::ArcticModel net;
  for (int ppp : {1, 2}) {
    Runtime rt(machine(net, 8 / ppp, ppp));
    rt.run([&](RankContext& ctx) {
      Comm comm(ctx);
      // Values with non-trivial mantissas so associativity errors would
      // show up as ulp differences.
      const double x = 1.0 / (3.0 + ctx.rank());
      const double blocking_sum = comm.global_sum(x);
      const double blocking_max = comm.global_max(x);

      GsumHandle hs = comm.global_sum_start(x);
      EXPECT_TRUE(hs.valid());
      const std::vector<double> s = comm.global_sum_finish(hs);
      ASSERT_EQ(s.size(), 1u);
      EXPECT_EQ(s[0], blocking_sum);  // bitwise, not approximately
      EXPECT_FALSE(hs.valid());

      GsumHandle hm = comm.global_max_start(x);
      const std::vector<double> m = comm.global_sum_finish(hm);
      ASSERT_EQ(m.size(), 1u);
      EXPECT_EQ(m[0], blocking_max);
    });
  }
}

// Vector reductions through the split path, with several reductions in
// a row to exercise the rotating tag salt.
TEST(SplitPhase, VectorGsumSequence) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 4, 2));
  rt.run([&](RankContext& ctx) {
    Comm comm(ctx);
    for (int round = 0; round < 6; ++round) {
      std::vector<double> xs = {1.0 * ctx.rank() + round, 0.5, -2.0 * round};
      std::vector<double> blocking = xs;
      comm.global_sum(blocking);
      GsumHandle h = comm.global_sum_start(xs);
      const std::vector<double> split = comm.global_sum_finish(h);
      ASSERT_EQ(split, blocking) << "round " << round;
    }
    EXPECT_EQ(comm.gsums_done(), 12u);
  });
}

// Compute issued between start and finish hides communication: the
// total virtual time is less than the serial (blocking) arrangement,
// and the hidden time is credited to Accounting::overlap_us.
TEST(SplitPhase, ComputeHidesExchangeTime) {
  const net::EthernetModel fe = net::fast_ethernet();
  const double work_us = 2.0e4;
  auto run = [&](bool split) {
    Runtime rt(machine(fe, 4, 1));
    double overlap = 0.0;
    rt.run([&](RankContext& ctx) {
      Comm comm(ctx);
      const int tx = ctx.rank() % 2, ty = ctx.rank() / 2;
      auto id = [](int x, int y) { return ((y + 2) % 2) * 2 + (x + 2) % 2; };
      const std::array<int, kDirections> nb{id(tx + 1, ty), id(tx - 1, ty),
                                            id(tx, ty + 1), id(tx, ty - 1)};
      Comm::Buffers buf = make_buffers(ctx.rank(), 5.0, 4096);
      if (split) {
        ExchangeHandle h = comm.exchange_start(nb, buf);
        ctx.compute(work_us * 50.0, 50.0);  // 50 MFlop/s => work_us
        comm.exchange_finish(h);
      } else {
        comm.exchange(nb, buf);
        ctx.compute(work_us * 50.0, 50.0);
      }
      if (ctx.rank() == 0) overlap = ctx.accounting().overlap_us;
      expect_exchanged(nb, buf, 5.0, ctx.rank());
    });
    return std::make_pair(rt.max_clock(), overlap);
  };
  const auto [t_blocking, ovl_blocking] = run(false);
  const auto [t_split, ovl_split] = run(true);
  EXPECT_EQ(ovl_blocking, 0.0);  // blocking path never credits overlap
  EXPECT_GT(ovl_split, 0.0);
  EXPECT_LT(t_split, t_blocking);
  // The saving shows up as overlap credit; it cannot exceed the compute
  // window that covered it.
  EXPECT_LE(ovl_split, work_us + 1e-9);
}

// Same for the split global sum: a first-round latency hidden under
// compute shortens the critical path on a high-latency interconnect.
TEST(SplitPhase, ComputeHidesGsumLatency) {
  const net::EthernetModel fe = net::fast_ethernet();
  const double work_us = 1.0e4;
  auto run = [&](bool split) {
    Runtime rt(machine(fe, 8, 1));
    rt.run([&](RankContext& ctx) {
      Comm comm(ctx);
      const double x = ctx.rank() + 0.25;
      double s;
      if (split) {
        GsumHandle h = comm.global_sum_start(x);
        ctx.compute(work_us * 50.0, 50.0);
        s = comm.global_sum_finish(h)[0];
      } else {
        s = comm.global_sum(x);
        ctx.compute(work_us * 50.0, 50.0);
      }
      EXPECT_DOUBLE_EQ(s, 8.0 * 7.0 / 2.0 + 8 * 0.25);
    });
    return rt.max_clock();
  };
  EXPECT_LT(run(true), run(false));
}

// Barriers use their own tag space and counter: they must not consume
// global-sum sequence numbers or pollute gsums_done() statistics, and
// collectives interleave cleanly around them.
TEST(SplitPhase, BarrierCountersIndependent) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 4, 2));
  rt.run([&](RankContext& ctx) {
    Comm comm(ctx);
    comm.barrier();
    EXPECT_EQ(comm.barriers_done(), 1u);
    EXPECT_EQ(comm.gsums_done(), 0u);
    GsumHandle h = comm.global_sum_start(1.0);
    comm.barrier();  // barrier while a reduction is in flight
    const double s = comm.global_sum_finish(h)[0];
    EXPECT_DOUBLE_EQ(s, 8.0);
    EXPECT_EQ(comm.barriers_done(), 2u);
    EXPECT_EQ(comm.gsums_done(), 1u);
    EXPECT_EQ(comm.exchanges_done(), 0u);
  });
}

// The deterministic-timing guarantee extends to the split-phase path.
TEST(SplitPhase, TimingDeterministic) {
  const net::ArcticModel net;
  auto run_once = [&] {
    Runtime rt(machine(net, 8, 2));
    rt.run([&](RankContext& ctx) {
      Comm comm(ctx);
      const auto nb = grid_neighbors(ctx.rank());
      Comm::Buffers a = make_buffers(ctx.rank(), 1.0, 64);
      Comm::Buffers b = make_buffers(ctx.rank(), 2.0, 64);
      for (int i = 0; i < 3; ++i) {
        ExchangeHandle ha = comm.exchange_start(nb, a);
        ExchangeHandle hb = comm.exchange_start(nb, b);
        ctx.compute(100.0, 1.0);
        comm.exchange_finish(hb);
        comm.exchange_finish(ha);
        GsumHandle h = comm.global_sum_start(1.0 * i);
        (void)comm.global_sum_finish(h);
      }
    });
    return rt.final_clocks();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace hyades::comm
