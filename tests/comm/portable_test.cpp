#include "comm/portable.hpp"

#include <gtest/gtest.h>

#include "comm/comm.hpp"
#include "net/arctic_model.hpp"

namespace hyades::comm {
namespace {

using cluster::MachineConfig;
using cluster::RankContext;
using cluster::Runtime;

MachineConfig machine(const net::Interconnect& net, int smps, int ppp = 1) {
  MachineConfig cfg;
  cfg.smp_count = smps;
  cfg.procs_per_smp = ppp;
  cfg.interconnect = &net;
  return cfg;
}

TEST(Portable, SendRecvAdvancesReceiverClock) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 2));
  rt.run([&](RankContext& ctx) {
    Portable mpi(ctx);
    if (mpi.rank() == 0) {
      ctx.compute(500.0, 50.0);  // sender is ahead in virtual time
      mpi.send(1, 3, {1.0, 2.0, 3.0});
    } else {
      const auto v = mpi.recv(0, 3);
      EXPECT_EQ(v, (std::vector<double>{1.0, 2.0, 3.0}));
      EXPECT_GT(ctx.clock().now(), 10.0);  // pulled past the send stamp
    }
  });
}

TEST(Portable, RejectsBadArguments) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 2));
  EXPECT_THROW(rt.run([&](RankContext& ctx) {
                 Portable mpi(ctx);
                 mpi.send(5, 1, {1.0});
               }),
               std::out_of_range);
  EXPECT_THROW(rt.run([&](RankContext& ctx) {
                 Portable mpi(ctx);
                 mpi.send(0, 9999, {1.0});
               }),
               std::invalid_argument);
}

TEST(Portable, BcastReachesEveryRankFromAnyRoot) {
  const net::ArcticModel net;
  for (int nodes : {2, 4, 8, 16}) {
    for (int root : {0, nodes - 1, nodes / 2}) {
      Runtime rt(machine(net, nodes));
      rt.run([&](RankContext& ctx) {
        Portable mpi(ctx);
        std::vector<double> data;
        if (mpi.rank() == root) data = {7.0, 8.0, 9.0};
        mpi.bcast(data, root);
        ASSERT_EQ(data.size(), 3u) << nodes << " root " << root;
        EXPECT_DOUBLE_EQ(data[0], 7.0);
        EXPECT_DOUBLE_EQ(data[2], 9.0);
      });
    }
  }
}

TEST(Portable, BcastWorksOnNonPowerOfTwo) {
  // Group sizes inside a power-of-two machine need not be powers of two
  // for Portable (unlike the tuned butterfly).
  const net::ArcticModel net;
  Runtime rt(machine(net, 8));
  rt.run([&](RankContext& ctx) {
    if (ctx.rank() >= 6) return;  // 6-rank group
    Portable mpi(ctx, 0, 6);
    std::vector<double> data;
    if (mpi.rank() == 2) data = {1.5};
    mpi.bcast(data, 2);
    ASSERT_EQ(data.size(), 1u);
    EXPECT_DOUBLE_EQ(data[0], 1.5);
  });
}

TEST(Portable, GatherCollectsByRank) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 4));
  rt.run([&](RankContext& ctx) {
    Portable mpi(ctx);
    const auto all =
        mpi.gather({static_cast<double>(10 * mpi.rank())}, /*root=*/1);
    if (mpi.rank() == 1) {
      ASSERT_EQ(all.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        ASSERT_EQ(all[static_cast<std::size_t>(r)].size(), 1u);
        EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r)][0], 10.0 * r);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Portable, AllreduceMatchesButterfly) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 8, 2));
  rt.run([&](RankContext& ctx) {
    Portable mpi(ctx);
    Comm comm(ctx);
    const double x = 1.0 + 0.25 * ctx.rank();
    const double tree = mpi.allreduce_sum(x);
    const double fly = comm.global_sum(x);
    EXPECT_DOUBLE_EQ(tree, fly);
  });
}

TEST(Portable, TunedGlobalSumIsFaster) {
  // The point of the paper's custom primitives: the generic tree
  // allreduce costs more virtual time than the tuned butterfly.
  const net::ArcticModel net;
  auto run_one = [&](bool tuned) {
    Runtime rt(machine(net, 16));
    rt.run([&](RankContext& ctx) {
      if (tuned) {
        Comm comm(ctx);
        for (int i = 0; i < 8; ++i) (void)comm.global_sum(1.0);
      } else {
        Portable mpi(ctx);
        for (int i = 0; i < 8; ++i) (void)mpi.allreduce_sum(1.0);
      }
    });
    return rt.max_clock();
  };
  EXPECT_LT(run_one(true), run_one(false));
}

TEST(Portable, AllreduceNonPowerOfTwoGroup) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 8));
  rt.run([&](RankContext& ctx) {
    if (ctx.rank() >= 6) return;
    Portable mpi(ctx, 0, 6);
    const double s = mpi.allreduce_sum(1.0 + ctx.rank());
    EXPECT_DOUBLE_EQ(s, 21.0);  // 1+2+...+6
  });
}

TEST(Portable, GroupOffset) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 4));
  rt.run([&](RankContext& ctx) {
    if (ctx.rank() < 2) return;
    Portable mpi(ctx, 2, 2);
    EXPECT_EQ(mpi.size(), 2);
    EXPECT_EQ(mpi.rank(), ctx.rank() - 2);
    if (mpi.rank() == 0) {
      mpi.send(1, 1, {4.2});
    } else {
      EXPECT_DOUBLE_EQ(mpi.recv(0, 1)[0], 4.2);
    }
  });
}

}  // namespace
}  // namespace hyades::comm
