#include <gtest/gtest.h>

#include <array>

#include "comm/comm.hpp"
#include "net/arctic_model.hpp"
#include "net/ethernet.hpp"

namespace hyades::comm {
namespace {

using cluster::MachineConfig;
using cluster::RankContext;
using cluster::Runtime;

MachineConfig machine(const net::Interconnect& net, int smps, int ppp) {
  MachineConfig cfg;
  cfg.smp_count = smps;
  cfg.procs_per_smp = ppp;
  cfg.interconnect = &net;
  return cfg;
}

// 4x4 periodic tile grid over 16 ranks: rank = ty*4 + tx.
std::array<int, kDirections> grid_neighbors(int rank) {
  const int tx = rank % 4, ty = rank / 4;
  auto id = [](int x, int y) { return ((y + 4) % 4) * 4 + (x + 4) % 4; };
  return {id(tx + 1, ty), id(tx - 1, ty), id(tx, ty + 1), id(tx, ty - 1)};
}

// Each rank sends strips encoding (rank, direction); after the exchange,
// in[d] must hold what the d-direction neighbor sent toward us.
TEST(Exchange, FourNeighborGridConsistency) {
  const net::ArcticModel net;
  for (int ppp : {1, 2}) {
    Runtime rt(machine(net, 16 / ppp, ppp));
    rt.run([&](RankContext& ctx) {
      Comm comm(ctx);
      const auto nb = grid_neighbors(ctx.rank());
      Comm::Buffers buf;
      for (int d = 0; d < kDirections; ++d) {
        buf.out[static_cast<std::size_t>(d)].assign(
            8, ctx.rank() * 10.0 + d);
        buf.in[static_cast<std::size_t>(d)].assign(8, -1.0);
      }
      comm.exchange(nb, buf);
      for (int d = 0; d < kDirections; ++d) {
        // The neighbor in direction d sent its opposite(d)-direction
        // strip toward us.
        const double expected =
            nb[static_cast<std::size_t>(d)] * 10.0 + opposite(d);
        for (double v : buf.in[static_cast<std::size_t>(d)]) {
          ASSERT_DOUBLE_EQ(v, expected)
              << "rank " << ctx.rank() << " dir " << d << " ppp " << ppp;
        }
      }
    });
  }
}

TEST(Exchange, MissingNeighborsSkipped) {
  // 1-D strip decomposition, closed boundaries: east/west only.
  const net::ArcticModel net;
  Runtime rt(machine(net, 4, 1));
  rt.run([&](RankContext& ctx) {
    Comm comm(ctx);
    const int r = ctx.rank();
    std::array<int, kDirections> nb{r + 1 < 4 ? r + 1 : -1,
                                    r - 1 >= 0 ? r - 1 : -1, -1, -1};
    Comm::Buffers buf;
    if (nb[kEast] >= 0) buf.out[kEast].assign(4, r + 0.5);
    if (nb[kWest] >= 0) buf.out[kWest].assign(4, r - 0.5);
    if (nb[kEast] >= 0) buf.in[kEast].assign(4, 0.0);
    if (nb[kWest] >= 0) buf.in[kWest].assign(4, 0.0);
    comm.exchange(nb, buf);
    if (nb[kWest] >= 0) {
      EXPECT_DOUBLE_EQ(buf.in[kWest][0], (r - 1) + 0.5);
    }
    if (nb[kEast] >= 0) {
      EXPECT_DOUBLE_EQ(buf.in[kEast][0], (r + 1) - 0.5);
    }
  });
}

TEST(Exchange, SelfNeighborPeriodicWrap) {
  // One tile across x: the east and west neighbor are the rank itself.
  const net::ArcticModel net;
  Runtime rt(machine(net, 1, 1));
  rt.run([&](RankContext& ctx) {
    Comm comm(ctx);
    std::array<int, kDirections> nb{0, 0, -1, -1};
    Comm::Buffers buf;
    buf.out[kEast].assign(3, 1.0);
    buf.out[kWest].assign(3, 2.0);
    buf.in[kEast].assign(3, 0.0);
    buf.in[kWest].assign(3, 0.0);
    comm.exchange(nb, buf);
    EXPECT_DOUBLE_EQ(buf.in[kWest][0], 1.0);  // own east strip wraps west
    EXPECT_DOUBLE_EQ(buf.in[kEast][0], 2.0);
  });
}

TEST(Exchange, SizeMismatchThrows) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 2, 1));
  EXPECT_THROW(
      rt.run([&](RankContext& ctx) {
        Comm comm(ctx);
        std::array<int, kDirections> nb{ctx.rank() ^ 1, ctx.rank() ^ 1, -1,
                                        -1};
        Comm::Buffers buf;
        buf.out[kEast].assign(4, 1.0);
        buf.out[kWest].assign(4, 1.0);
        buf.in[kEast].assign(4, 0.0);
        buf.in[kWest].assign(ctx.rank() == 0 ? 5 : 4, 0.0);  // wrong size
        comm.exchange(nb, buf);
      }),
      std::logic_error);
}

TEST(Exchange, NeighborOutsideGroupThrows) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 2, 1));
  EXPECT_THROW(rt.run([&](RankContext& ctx) {
                 Comm comm(ctx);
                 std::array<int, kDirections> nb{5, -1, -1, -1};
                 Comm::Buffers buf;
                 comm.exchange(nb, buf);
               }),
               std::out_of_range);
}

TEST(Exchange, RemoteCostsDominateLocal) {
  // Same traffic pattern, one exchanged intra-SMP and one across SMPs:
  // the remote variant must cost far more virtual time.
  auto run_pair = [](int smps, int ppp) {
    const net::ArcticModel net;
    Runtime rt(machine(net, smps, ppp));
    rt.run([&](RankContext& ctx) {
      Comm comm(ctx);
      const int partner = ctx.rank() ^ 1;
      std::array<int, kDirections> nb{partner, partner, -1, -1};
      Comm::Buffers buf;
      buf.out[kEast].assign(128, 1.0);
      buf.out[kWest].assign(128, 2.0);
      buf.in[kEast].assign(128, 0.0);
      buf.in[kWest].assign(128, 0.0);
      comm.exchange(nb, buf);
    });
    return rt.max_clock();
  };
  const double local = run_pair(1, 2);   // ranks 0,1 on one SMP
  const double remote = run_pair(2, 1);  // ranks 0,1 on separate SMPs
  EXPECT_GT(remote, 4.0 * local);
}

TEST(Exchange, TimingDeterministic) {
  const net::ArcticModel net;
  auto run_once = [&] {
    Runtime rt(machine(net, 8, 2));
    rt.run([&](RankContext& ctx) {
      Comm comm(ctx);
      const auto nb = grid_neighbors(ctx.rank());
      Comm::Buffers buf;
      for (int d = 0; d < kDirections; ++d) {
        buf.out[static_cast<std::size_t>(d)].assign(64, 1.0);
        buf.in[static_cast<std::size_t>(d)].assign(64, 0.0);
      }
      for (int i = 0; i < 3; ++i) comm.exchange(nb, buf);
    });
    return rt.final_clocks();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Exchange, EthernetCostsOrdersOfMagnitudeMore) {
  auto run_with = [](const net::Interconnect& net) {
    Runtime rt(machine(net, 8, 2));
    rt.run([&](RankContext& ctx) {
      Comm comm(ctx);
      const auto nb = grid_neighbors(ctx.rank());
      Comm::Buffers buf;
      for (int d = 0; d < kDirections; ++d) {
        buf.out[static_cast<std::size_t>(d)].assign(32, 1.0);
        buf.in[static_cast<std::size_t>(d)].assign(32, 0.0);
      }
      comm.exchange(nb, buf);
    });
    return rt.max_clock();
  };
  const net::ArcticModel arctic;
  const auto fe = net::fast_ethernet();
  const auto ge = net::gigabit_ethernet();
  const double t_arctic = run_with(arctic);
  const double t_ge = run_with(ge);
  const double t_fe = run_with(fe);
  EXPECT_GT(t_ge, 5.0 * t_arctic);
  EXPECT_GT(t_fe, 3.0 * t_ge);
}

TEST(Exchange, SequenceCountersAdvance) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 2, 1));
  rt.run([&](RankContext& ctx) {
    Comm comm(ctx);
    EXPECT_EQ(comm.exchanges_done(), 0u);
    std::array<int, kDirections> nb{ctx.rank() ^ 1, ctx.rank() ^ 1, -1, -1};
    Comm::Buffers buf;
    buf.out[kEast].assign(2, 0.0);
    buf.out[kWest].assign(2, 0.0);
    buf.in[kEast].assign(2, 0.0);
    buf.in[kWest].assign(2, 0.0);
    comm.exchange(nb, buf);
    (void)comm.global_sum(1.0);
    EXPECT_EQ(comm.exchanges_done(), 1u);
    EXPECT_EQ(comm.gsums_done(), 1u);
  });
}

}  // namespace
}  // namespace hyades::comm
