#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <vector>

#include "comm/comm.hpp"
#include "net/arctic_model.hpp"
#include "support/stats.hpp"

namespace hyades::comm {
namespace {

using cluster::MachineConfig;
using cluster::RankContext;
using cluster::Runtime;

MachineConfig machine(const net::Interconnect& net, int smps, int ppp) {
  MachineConfig cfg;
  cfg.smp_count = smps;
  cfg.procs_per_smp = ppp;
  cfg.interconnect = &net;
  return cfg;
}

TEST(GlobalSum, CorrectAcrossShapes) {
  const net::ArcticModel net;
  for (auto [smps, ppp] : std::vector<std::pair<int, int>>{
           {1, 1}, {1, 2}, {2, 1}, {4, 2}, {8, 2}, {16, 1}}) {
    Runtime rt(machine(net, smps, ppp));
    const double expected = smps * ppp * (smps * ppp + 1) / 2.0;
    rt.run([&](RankContext& ctx) {
      Comm comm(ctx);
      const double s = comm.global_sum(ctx.rank() + 1.0);
      EXPECT_DOUBLE_EQ(s, expected) << "shape " << smps << "x" << ppp;
    });
  }
}

TEST(GlobalSum, BitwiseIdenticalEverywhere) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 8, 2));
  std::mutex mu;
  std::vector<double> results;
  rt.run([&](RankContext& ctx) {
    Comm comm(ctx);
    // Values chosen so different addition orders would differ in the last
    // bits if the implementation were order-dependent per rank.
    const double mine = 1.0 + 1e-15 * ctx.rank() * 3.7;
    const double s = comm.global_sum(mine);
    std::lock_guard<std::mutex> lock(mu);
    results.push_back(s);
  });
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]);  // exact bitwise equality
  }
}

TEST(GlobalSum, VectorVariant) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 4, 2));
  rt.run([&](RankContext& ctx) {
    Comm comm(ctx);
    std::vector<double> v{1.0, static_cast<double>(ctx.rank())};
    comm.global_sum(v);
    EXPECT_DOUBLE_EQ(v[0], 8.0);
    EXPECT_DOUBLE_EQ(v[1], 28.0);
  });
}

TEST(GlobalMax, Correct) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 4, 2));
  rt.run([&](RankContext& ctx) {
    Comm comm(ctx);
    EXPECT_DOUBLE_EQ(comm.global_max(static_cast<double>(ctx.rank() % 5)),
                     4.0);
    EXPECT_DOUBLE_EQ(comm.global_max(-1.0 - ctx.rank()), -1.0);
  });
}

// Section 4.2: "measured latencies for 2-way, 4-way, 8-way and 16-way
// global sums are 4.0, 8.3, 12.8 and 18.2 usec".
TEST(GlobalSum, SingleProcessorLatenciesMatchPaper) {
  const net::ArcticModel net;
  const double paper[] = {4.0, 8.3, 12.8, 18.2};
  for (int i = 0; i < 4; ++i) {
    const int nodes = 2 << i;
    Runtime rt(machine(net, nodes, 1));
    rt.run([&](RankContext& ctx) {
      Comm comm(ctx);
      (void)comm.global_sum(1.0);
    });
    EXPECT_LT(relative_error(rt.max_clock(), paper[i]), 0.10)
        << nodes << "-way measured-analog " << rt.max_clock();
  }
}

// Section 4.2: "on our two-way SMPs, the measured latencies for 2x2-way,
// 2x4-way, 2x8-way and 2x16-way global sums are 4.8, 9.1, 13.5, 19.5".
TEST(GlobalSum, MixModeLatenciesMatchPaper) {
  const net::ArcticModel net;
  const double paper[] = {4.8, 9.1, 13.5, 19.5};
  for (int i = 0; i < 4; ++i) {
    const int smps = 2 << i;
    Runtime rt(machine(net, smps, 2));
    rt.run([&](RankContext& ctx) {
      Comm comm(ctx);
      (void)comm.global_sum(1.0);
    });
    EXPECT_LT(relative_error(rt.max_clock(), paper[i]), 0.10)
        << "2x" << smps << "-way measured-analog " << rt.max_clock();
  }
}

TEST(GlobalSum, LeastSquaresFitNearPaper) {
  // tgsum = 4.67 * log2(N) - 0.95 (Section 4.2).
  const net::ArcticModel net;
  std::vector<double> xs, ys;
  for (int i = 0; i < 4; ++i) {
    const int nodes = 2 << i;
    Runtime rt(machine(net, nodes, 1));
    rt.run([&](RankContext& ctx) {
      Comm comm(ctx);
      (void)comm.global_sum(1.0);
    });
    xs.push_back(i + 1.0);
    ys.push_back(rt.max_clock());
  }
  const LinearFit fit = least_squares(xs, ys);
  EXPECT_LT(relative_error(fit.slope, 4.67), 0.10);
  EXPECT_GT(fit.r2, 0.98);
}

TEST(GlobalSum, TimingDeterministic) {
  const net::ArcticModel net;
  auto run_once = [&] {
    Runtime rt(machine(net, 8, 2));
    rt.run([&](RankContext& ctx) {
      Comm comm(ctx);
      for (int i = 0; i < 5; ++i) (void)comm.global_sum(1.0);
    });
    return rt.final_clocks();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(GlobalSum, SubGroupCommunicators) {
  // Coupled-run layout: two groups of 4 SMPs each sum independently.
  const net::ArcticModel net;
  Runtime rt(machine(net, 8, 2));
  rt.run([&](RankContext& ctx) {
    const int half = ctx.nranks() / 2;
    const int base = ctx.rank() < half ? 0 : half;
    Comm comm(ctx, base, half);
    EXPECT_EQ(comm.group_size(), half);
    const double s = comm.global_sum(1.0);
    EXPECT_DOUBLE_EQ(s, half);
  });
}

TEST(GlobalSum, GroupMustBeAligned) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 4, 2));
  EXPECT_THROW(rt.run([](RankContext& ctx) { Comm comm(ctx, 1, 4); }),
               std::invalid_argument);
  EXPECT_THROW(rt.run([](RankContext& ctx) { Comm comm(ctx, 0, 6); }),
               std::invalid_argument);
}

TEST(Barrier, CompletesAndCostsLikeGsum) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 8, 2));
  rt.run([&](RankContext& ctx) {
    Comm comm(ctx);
    comm.barrier();
  });
  // A 16-processor barrier ~ its global sum: well under the >50 us the
  // paper reports for the HPVM equivalent (Section 6).
  EXPECT_LT(rt.max_clock(), 20.0);
  EXPECT_GT(rt.max_clock(), 10.0);
}

// Figure 8: the butterfly's per-round partial sums.  Reconstructed here
// at the runtime level (8 nodes, values d_i = 10^i) so the communication
// pattern itself is validated, not just the final sum.
TEST(Butterfly, Figure8PartialSums) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 8, 1));
  rt.run([&](RankContext& ctx) {
    double v = std::pow(10.0, ctx.rank());
    for (int round = 0; round < 3; ++round) {
      const int partner = ctx.rank() ^ (1 << round);
      ctx.send_raw(partner, 500 + round, {v}, ctx.clock().now());
      v += ctx.recv_raw(partner, 500 + round).data[0];
      // After round i, every node holds the sum over the group of nodes
      // whose ids differ only in the lowest i+1 bits (Figure 8).
      const int group = ctx.rank() & ~((2 << round) - 1);
      double expected = 0;
      for (int n = group; n < group + (2 << round); ++n) {
        expected += std::pow(10.0, n);
      }
      EXPECT_DOUBLE_EQ(v, expected)
          << "rank " << ctx.rank() << " round " << round;
    }
  });
}

}  // namespace
}  // namespace hyades::comm
