// Tag-window lifetime bugs (fixed in this layer): the rotating exchange
// and global-sum tag windows used to wrap silently, so the 65th
// in-flight exchange (or 5th in-flight global sum) would consume an
// older handle's messages as its own.  Starting onto an undrained slot
// now throws, and destroying a never-finished handle is detected and
// counted.  Single-rank machine throughout: collectives complete
// locally, so handles can be parked without deadlocking siblings.
#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "comm/comm.hpp"
#include "net/arctic_model.hpp"

namespace hyades::comm {
namespace {

using cluster::MachineConfig;
using cluster::RankContext;
using cluster::Runtime;

void run_single_rank(const std::function<void(Comm&)>& body) {
  static const net::ArcticModel net;
  MachineConfig mc;
  mc.smp_count = 1;
  mc.procs_per_smp = 1;
  mc.interconnect = &net;
  Runtime rt(mc);
  rt.run([&](RankContext& ctx) {
    Comm comm(ctx);
    body(comm);
  });
}

const std::array<int, kDirections> kNoNeighbors{{-1, -1, -1, -1}};

TEST(TagWindow, ExchangeWrapOntoUnfinishedHandleThrows) {
  run_single_rank([](Comm& comm) {
    Buffers buf;  // neighborless: no strips move, but slots are consumed
    std::vector<ExchangeHandle> inflight;
    for (int i = 0; i < 64; ++i) {
      inflight.push_back(comm.exchange_start(kNoNeighbors, buf));
    }
    // The 65th start would reuse slot 0, still held by inflight[0].
    EXPECT_THROW((void)comm.exchange_start(kNoNeighbors, buf),
                 std::runtime_error);
    for (ExchangeHandle& h : inflight) comm.exchange_finish(h);
    // Draining the window frees the slots again.
    ExchangeHandle h = comm.exchange_start(kNoNeighbors, buf);
    comm.exchange_finish(h);
  });
}

TEST(TagWindow, GsumWrapOntoUnfinishedHandleThrows) {
  run_single_rank([](Comm& comm) {
    std::vector<GsumHandle> inflight;
    for (int i = 0; i < 4; ++i) {
      inflight.push_back(comm.global_sum_start(1.0));
    }
    EXPECT_THROW((void)comm.global_sum_start(1.0), std::runtime_error);
    for (GsumHandle& h : inflight) {
      EXPECT_DOUBLE_EQ(comm.global_sum_finish(h)[0], 1.0);
    }
    GsumHandle h = comm.global_sum_start(2.0);
    EXPECT_DOUBLE_EQ(comm.global_sum_finish(h)[0], 2.0);
  });
}

TEST(TagWindow, AbandonedHandlesAreDetectedAndCounted) {
  reset_abandoned_handles();
  run_single_rank([](Comm& comm) {
    Buffers buf;
    {
      ExchangeHandle x = comm.exchange_start(kNoNeighbors, buf);
      GsumHandle g = comm.global_sum_start(1.0);
      EXPECT_TRUE(x.valid());
      EXPECT_TRUE(g.valid());
      // Both go out of scope still active: two abandonments.
    }
    EXPECT_EQ(abandoned_handles(), 2u);
    // The abandoned slots stay poisoned: wrapping onto them fails fast
    // instead of silently adopting the abandoned handles' messages.
    for (int i = 0; i < 3; ++i) {
      GsumHandle h = comm.global_sum_start(1.0);
      (void)comm.global_sum_finish(h);
    }
    EXPECT_THROW((void)comm.global_sum_start(1.0), std::runtime_error);
  });
  reset_abandoned_handles();
  EXPECT_EQ(abandoned_handles(), 0u);
}

TEST(TagWindow, MovedFromHandlesDoNotCountAsAbandoned) {
  reset_abandoned_handles();
  run_single_rank([](Comm& comm) {
    Buffers buf;
    ExchangeHandle a = comm.exchange_start(kNoNeighbors, buf);
    ExchangeHandle b = std::move(a);
    EXPECT_FALSE(a.valid());  // ownership transferred, not duplicated
    EXPECT_TRUE(b.valid());
    comm.exchange_finish(b);

    GsumHandle g = comm.global_sum_start(3.0);
    GsumHandle g2 = std::move(g);
    EXPECT_FALSE(g.valid());
    EXPECT_DOUBLE_EQ(comm.global_sum_finish(g2)[0], 3.0);
  });
  EXPECT_EQ(abandoned_handles(), 0u);
}

// ---- satellite (c): neighbor validation ---------------------------------

TEST(NeighborValidation, MinusOneAcceptedOtherNegativesRejected) {
  run_single_rank([](Comm& comm) {
    Buffers buf;
    // Exactly -1 means "no neighbor" and is fine.
    comm.exchange(kNoNeighbors, buf);
    // Any other negative is a decomposition bug, not a missing neighbor.
    EXPECT_THROW(comm.exchange({{-2, -1, -1, -1}}, buf), std::out_of_range);
    EXPECT_THROW(comm.exchange({{-1, -1, kDirections, -1}}, buf),
                 std::out_of_range);
    // A rejected exchange consumed no tag slot: the window still drains.
    ExchangeHandle h = comm.exchange_start(kNoNeighbors, buf);
    comm.exchange_finish(h);
  });
}

}  // namespace
}  // namespace hyades::comm
