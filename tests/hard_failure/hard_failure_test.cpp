// Hard-failure suite (tier2 + aggregate label `hard_failure_tests`):
// permanent link kills with route-around, heartbeat-detected node
// fail-stop, epoch-tagged restart from durable checkpoints, and the
// typed give-up past the restart budget.  The governing invariant: any
// survivable kill schedule finishes with final prognostic state
// bit-identical to the failure-free run -- hard failures cost virtual
// time and accounting, never bits.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <vector>

#include "cluster/fault.hpp"
#include "cluster/membership.hpp"
#include "cluster/runtime.hpp"
#include "cluster/trace.hpp"
#include "comm/comm.hpp"
#include "gcm/model.hpp"
#include "gcm/resilient.hpp"
#include "gcm/tile_ckpt.hpp"
#include "support/logging.hpp"
#include "tests/gcm/gcm_test_util.hpp"

namespace hyades {
namespace {

struct QuietLog {
  LogLevel before = log_level();
  QuietLog() { set_log_level(LogLevel::kError); }
  ~QuietLog() { set_log_level(before); }
};

bool bits_equal(const double* a, const double* b, std::size_t n) {
  return std::memcmp(a, b, n * sizeof(double)) == 0;
}

void expect_state_bits_equal(const gcm::State& a, const gcm::State& b,
                             const char* what) {
  EXPECT_TRUE(bits_equal(a.u.data(), b.u.data(), a.u.size())) << what << " u";
  EXPECT_TRUE(bits_equal(a.v.data(), b.v.data(), a.v.size())) << what << " v";
  EXPECT_TRUE(bits_equal(a.w.data(), b.w.data(), a.w.size())) << what << " w";
  EXPECT_TRUE(bits_equal(a.theta.data(), b.theta.data(), a.theta.size()))
      << what << " theta";
  EXPECT_TRUE(bits_equal(a.salt.data(), b.salt.data(), a.salt.size()))
      << what << " salt";
  EXPECT_TRUE(bits_equal(a.ps.data(), b.ps.data(), a.ps.size()))
      << what << " ps";
  EXPECT_TRUE(bits_equal(a.gu_nm1.data(), b.gu_nm1.data(), a.gu_nm1.size()))
      << what << " gu_nm1";
  EXPECT_EQ(a.step, b.step) << what;
}

std::string ckpt_prefix_for(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void cleanup_slots(const std::string& prefix, int ranks) {
  gcm::tile_ckpt::remove_slots(prefix, ranks);
}

// One resilient gyre run: 4 tiles (2x2), kBasin topography, collecting
// every rank's final state plus the runtime's summed fault accounting.
struct ResilientRun {
  gcm::ResilientStats stats;
  std::map<int, gcm::State> state;  // by rank
  std::int64_t degraded_sends = 0;
  std::int64_t restarts = 0;
  Microseconds reroute_us = 0;
  Microseconds restart_us = 0;
};

ResilientRun run_resilient_gyre(int steps, const cluster::FaultPlan* plan,
                                const char* ckpt_name, int smp_count,
                                int procs_per_smp,
                                std::vector<cluster::Tracer>* tracers = nullptr,
                                int max_restarts = 3) {
  gcm::ModelConfig cfg = gcm::testing::small_ocean(2, 2);
  cfg.topography = gcm::ModelConfig::Topography::kBasin;

  cluster::MachineConfig mc;
  mc.smp_count = smp_count;
  mc.procs_per_smp = procs_per_smp;
  mc.interconnect = &gcm::testing::test_net();
  mc.faults = plan;
  cluster::Runtime rt(mc);

  gcm::ResilientConfig rcfg;
  rcfg.ckpt_prefix = ckpt_prefix_for(ckpt_name);
  rcfg.ckpt_every = 3;
  rcfg.max_restarts = max_restarts;
  rcfg.tracers = tracers;

  ResilientRun out;
  std::mutex mu;
  rcfg.on_complete = [&](cluster::RankContext& ctx, gcm::Model& m) {
    std::lock_guard<std::mutex> lock(mu);
    out.state.emplace(ctx.rank(), m.state());
  };
  out.stats = gcm::run_resilient(rt, cfg, steps, rcfg);
  for (const cluster::Accounting& a : rt.accounting()) {
    out.degraded_sends += a.degraded_sends;
    out.restarts += a.restarts;
    out.reroute_us += a.reroute_us;
    out.restart_us += a.restart_us;
  }
  cleanup_slots(rcfg.ckpt_prefix, mc.nranks());
  return out;
}

TEST(HardFailure, ResilientNoKillsMatchesPlainRun) {
  // With no kills scheduled the resilient driver is pure plumbing: one
  // epoch, zero restarts, and (checkpoint barriers are state-neutral)
  // final state bit-identical to a plain uninterrupted run.
  QuietLog quiet;
  gcm::ModelConfig cfg = gcm::testing::small_ocean(2, 2);
  cfg.topography = gcm::ModelConfig::Topography::kBasin;
  std::map<int, gcm::State> plain;
  std::mutex mu;
  gcm::testing::run_ranks(4, [&](cluster::RankContext& ctx, comm::Comm& comm) {
    gcm::Model m(cfg, comm);
    m.initialize();
    m.run(10);
    std::lock_guard<std::mutex> lock(mu);
    plain.emplace(ctx.rank(), m.state());
  });

  const ResilientRun r =
      run_resilient_gyre(10, nullptr, "hyades_hf_nokill", 4, 1);
  EXPECT_EQ(r.stats.restarts, 0);
  EXPECT_EQ(r.stats.steps, 10);
  EXPECT_TRUE(r.stats.verdicts.empty());
  EXPECT_EQ(r.restarts, 0);
  EXPECT_EQ(r.restart_us, 0.0);
  ASSERT_EQ(r.state.size(), 4u);
  for (int rank = 0; rank < 4; ++rank) {
    expect_state_bits_equal(plain.at(rank), r.state.at(rank),
                            "resilient-vs-plain");
  }
}

TEST(HardFailure, LinkKillsRerouteWithoutChangingState) {
  // Two non-critical inter-SMP link kills from t=0: every transfer
  // between those SMP pairs rides the route-around and pays the
  // penalty (visible in degraded_sends / reroute_us), but payloads are
  // untouched, so the run completes bit-identically to the clean one.
  QuietLog quiet;
  const cluster::FaultPlan clean;
  cluster::FaultPlan faulty;
  faulty.link_kills.push_back({0, 1, 0.0});
  faulty.link_kills.push_back({2, 3, 0.0});
  ASSERT_TRUE(faulty.enabled());
  ASSERT_FALSE(faulty.has_fates());  // kill-only: raw fast path otherwise

  const ResilientRun a =
      run_resilient_gyre(10, &clean, "hyades_hf_linkclean", 4, 1);
  const ResilientRun b =
      run_resilient_gyre(10, &faulty, "hyades_hf_linkkill", 4, 1);
  EXPECT_EQ(a.degraded_sends, 0);
  EXPECT_EQ(a.reroute_us, 0.0);
  EXPECT_GT(b.degraded_sends, 0);
  EXPECT_GT(b.reroute_us, 0.0);
  EXPECT_EQ(b.stats.restarts, 0);  // degraded, not down
  ASSERT_EQ(b.state.size(), 4u);
  for (int rank = 0; rank < 4; ++rank) {
    expect_state_bits_equal(a.state.at(rank), b.state.at(rank),
                            "linkkill-vs-clean");
  }
}

TEST(HardFailure, NodeKillRestartsFromCheckpointBitIdentically) {
  // Rank 3's node dies early in epoch 0.  Survivors detect the silence
  // through the membership service, publish the plan-pure verdict,
  // abort the epoch, and epoch 1 restarts everyone from the durable
  // step-0 checkpoint -- finishing bit-identical to the kill-free run,
  // with the recovery visible in accounting and the trace.
  QuietLog quiet;
  cluster::FaultPlan plan;
  plan.node_kills.push_back({/*rank=*/3, /*at_us=*/50.0, /*epoch=*/0});

  const ResilientRun a =
      run_resilient_gyre(10, nullptr, "hyades_hf_nodeclean", 4, 1);
  std::vector<cluster::Tracer> tracers(4);
  const ResilientRun b = run_resilient_gyre(10, &plan, "hyades_hf_nodekill",
                                            4, 1, &tracers);
  EXPECT_EQ(b.stats.restarts, 1);
  ASSERT_EQ(b.stats.verdicts.size(), 1u);
  EXPECT_EQ(b.stats.verdicts[0].rank, 3);
  EXPECT_EQ(b.stats.verdicts[0].epoch, 0);
  EXPECT_DOUBLE_EQ(b.stats.verdicts[0].detected_us,
                   50.0 + plan.heartbeat_deadline_us);
  ASSERT_EQ(b.stats.restart_steps.size(), 1u);
  EXPECT_EQ(b.stats.restart_steps[0], 0);  // died before the first rotation
  EXPECT_GT(b.restarts, 0);
  EXPECT_GT(b.restart_us, 0.0);
  Microseconds node_down_span = 0;
  for (const cluster::Tracer& t : tracers) {
    node_down_span += t.total_cat(cluster::SpanCat::kNodeDown);
  }
  EXPECT_GT(node_down_span, 0.0);
  ASSERT_EQ(b.state.size(), 4u);
  for (int rank = 0; rank < 4; ++rank) {
    expect_state_bits_equal(a.state.at(rank), b.state.at(rank),
                            "nodekill-vs-clean");
  }
}

TEST(HardFailure, NodeKillTakesWholeSmpWithIt) {
  // Kills are node-granular: killing rank 2 on a two-way SMP takes its
  // sibling rank 3 down too (no half-dead SMP deadlocks the shared
  // barrier).  Survivors on SMP 0 declare one of the dead ranks down
  // and the restart still converges bit-identically.
  QuietLog quiet;
  cluster::FaultPlan plan;
  plan.node_kills.push_back({/*rank=*/2, /*at_us=*/50.0, /*epoch=*/0});

  const ResilientRun a =
      run_resilient_gyre(10, nullptr, "hyades_hf_smpclean", 2, 2);
  const ResilientRun b =
      run_resilient_gyre(10, &plan, "hyades_hf_smpkill", 2, 2);
  EXPECT_EQ(b.stats.restarts, 1);
  ASSERT_EQ(b.stats.verdicts.size(), 1u);
  // The verdict names whichever dead-SMP rank a survivor talked to.
  EXPECT_TRUE(b.stats.verdicts[0].rank == 2 || b.stats.verdicts[0].rank == 3)
      << "verdict rank " << b.stats.verdicts[0].rank;
  ASSERT_EQ(b.state.size(), 4u);
  for (int rank = 0; rank < 4; ++rank) {
    expect_state_bits_equal(a.state.at(rank), b.state.at(rank),
                            "smpkill-vs-clean");
  }
}

TEST(HardFailure, RestartBudgetExhaustionIsTypedNeverAHang) {
  // A node that dies in every epoch is not survivable by restarting:
  // after max_restarts aborted epochs the driver throws the typed
  // RestartExhausted (with the last verdict attached) instead of
  // looping or hanging.
  QuietLog quiet;
  cluster::FaultPlan plan;
  for (int epoch = 0; epoch < 4; ++epoch) {
    plan.node_kills.push_back({/*rank=*/1, /*at_us=*/50.0, epoch});
  }
  try {
    (void)run_resilient_gyre(10, &plan, "hyades_hf_exhaust", 4, 1,
                             /*tracers=*/nullptr, /*max_restarts=*/2);
    FAIL() << "expected RestartExhausted";
  } catch (const gcm::RestartExhausted& e) {
    EXPECT_EQ(e.restarts, 3);  // one past the budget of 2
    EXPECT_EQ(e.last_verdict.rank, 1);
    EXPECT_EQ(e.last_verdict.epoch, 2);
  }
  cleanup_slots(ckpt_prefix_for("hyades_hf_exhaust"), 4);
}

TEST(HardFailure, EpochTagStrideDiscardsStaleMessages) {
  // A message posted in epoch 0 but never received must be invisible to
  // epoch 1's receives on the same nominal tag: the epoch weaves into
  // the transport tag, so pre-failure mail ages out as dead letters
  // instead of corrupting the restarted run.
  cluster::MachineConfig mc;
  mc.smp_count = 2;
  mc.procs_per_smp = 1;
  mc.interconnect = &gcm::testing::test_net();
  cluster::Runtime rt(mc);

  rt.set_epoch(0);
  rt.run([&](cluster::RankContext& ctx) {
    if (ctx.rank() == 0) ctx.send_raw(1, 7, {1.0}, 10.0);
  });

  rt.set_epoch(1);
  rt.run([&](cluster::RankContext& ctx) {
    if (ctx.rank() == 1) {
      // The stale epoch-0 message does not match epoch-1's tag space.
      EXPECT_FALSE(ctx.try_recv_raw(0, 7).has_value());
      ctx.send_raw(0, 8, {0.0}, 5.0);  // release rank 0's epoch-1 send
      const cluster::Message m = ctx.recv_raw(0, 7);
      ASSERT_EQ(m.data.size(), 1u);
      EXPECT_EQ(m.data[0], 2.0);  // the epoch-1 payload, not the stale 1.0
    } else {
      (void)ctx.recv_raw(1, 8);
      ctx.send_raw(1, 7, {2.0}, 20.0);
    }
  });
}

TEST(HardFailure, BusPoisonWakesBlockedReceivers) {
  // declare_node_down must wake a rank blocked in a receive for a
  // message that will never come -- every survivor unwinds with
  // NodeDownError carrying the identical verdict.
  QuietLog quiet;
  cluster::MachineConfig mc;
  mc.smp_count = 2;
  mc.procs_per_smp = 1;
  mc.interconnect = &gcm::testing::test_net();
  cluster::Runtime rt(mc);
  cluster::NodeDownVerdict v;
  v.rank = 1;
  v.epoch = 0;
  v.detected_us = 1234.0;
  try {
    rt.run([&](cluster::RankContext& ctx) {
      if (ctx.rank() == 0) {
        (void)ctx.recv_raw(1, 9);  // blocks forever: rank 1 never sends
        FAIL() << "poisoned recv returned";
      } else {
        ctx.declare_node_down(v);
      }
    });
    FAIL() << "expected NodeDownError";
  } catch (const cluster::NodeDownError& e) {
    EXPECT_EQ(e.verdict.rank, 1);
    EXPECT_DOUBLE_EQ(e.verdict.detected_us, 1234.0);
  }
  rt.bus().reset_down();
}

}  // namespace
}  // namespace hyades
