#include "cluster/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <mutex>

#include "comm/comm.hpp"
#include "gcm/model.hpp"
#include "net/arctic_model.hpp"
#include "tests/gcm/gcm_test_util.hpp"

namespace hyades::cluster {
namespace {

TEST(Tracer, RecordsAndTotals) {
  Tracer t;
  t.record("gsum", 0.0, 4.0);
  t.record("exchange", 4.0, 120.0);
  t.record("gsum", 120.0, 125.0);
  EXPECT_EQ(t.events().size(), 3u);
  EXPECT_DOUBLE_EQ(t.total("gsum"), 9.0);
  EXPECT_DOUBLE_EQ(t.total("exchange"), 116.0);
  EXPECT_DOUBLE_EQ(t.total("nothing"), 0.0);
  t.clear();
  EXPECT_TRUE(t.events().empty());
}

TEST(Tracer, CommPrimitivesRecordIntervals) {
  gcm::testing::run_ranks(4, [&](RankContext& ctx, comm::Comm& comm) {
    Tracer tracer;
    ctx.set_tracer(&tracer);
    (void)comm.global_sum(1.0);
    std::array<int, comm::kDirections> nb{comm.group_rank() ^ 1,
                                          comm.group_rank() ^ 1, -1, -1};
    comm::Comm::Buffers buf;
    buf.out[comm::kEast].assign(8, 1.0);
    buf.out[comm::kWest].assign(8, 1.0);
    buf.in[comm::kEast].assign(8, 0.0);
    buf.in[comm::kWest].assign(8, 0.0);
    comm.exchange(nb, buf);
    ctx.set_tracer(nullptr);

    ASSERT_EQ(tracer.events().size(), 2u);
    EXPECT_EQ(tracer.events()[0].op, "gsum");
    EXPECT_EQ(tracer.events()[1].op, "exchange");
    // Intervals are ordered and non-negative on the virtual clock.
    for (const TraceEvent& e : tracer.events()) {
      EXPECT_GE(e.end_us, e.begin_us);
    }
    EXPECT_LE(tracer.events()[0].end_us, tracer.events()[1].begin_us);
  });
}

TEST(Tracer, ModelStepProducesPhaseTimeline) {
  const gcm::ModelConfig cfg = gcm::testing::small_ocean(2, 2);
  std::mutex mu;
  gcm::testing::run_ranks(4, [&](RankContext& ctx, comm::Comm& comm) {
    Tracer tracer;
    ctx.set_tracer(&tracer);
    gcm::Model m(cfg, comm);
    m.initialize();
    m.run(2);
    ctx.set_tracer(nullptr);

    std::lock_guard<std::mutex> lock(mu);
    int ps = 0, ds = 0, gsum = 0, exch = 0;
    for (const TraceEvent& e : tracer.events()) {
      if (e.op == "ps") ++ps;
      if (e.op == "ds") ++ds;
      if (e.op == "gsum") ++gsum;
      if (e.op == "exchange") ++exch;
    }
    EXPECT_EQ(ps, 2);
    EXPECT_EQ(ds, 2);
    // Each step: >= 5 PS exchanges (x+y stages count once each at the
    // comm level: 2 per field) plus the DS-phase solver traffic.
    EXPECT_GE(exch, 2 * (5 * 2 + 2));
    EXPECT_GT(gsum, 4);
    // PS time accounted in the trace matches the stepper's observables.
    EXPECT_NEAR(tracer.total("ps"),
                m.stepper().observables().tps_us, 1e-6);
  });
}

TEST(Tracer, CsvRoundTrip) {
  Tracer a, b;
  a.record("gsum", 0.0, 5.0);
  b.record("exchange", 1.0, 7.5);
  const std::string path = ::testing::TempDir() + "hyades_trace.csv";
  write_trace_csv(path, {&a, &b});
  std::ifstream is(path);
  std::string header, l1, l2;
  std::getline(is, header);
  std::getline(is, l1);
  std::getline(is, l2);
  EXPECT_EQ(header, "rank,op,begin_us,end_us");
  EXPECT_EQ(l1, "0,gsum,0,5");
  EXPECT_EQ(l2, "1,exchange,1,7.5");
  std::remove(path.c_str());
}

TEST(Tracer, NullRankSkipped) {
  Tracer a;
  a.record("x", 0, 1);
  const std::string path = ::testing::TempDir() + "hyades_trace2.csv";
  write_trace_csv(path, {nullptr, &a});
  std::ifstream is(path);
  std::string header, l1;
  std::getline(is, header);
  std::getline(is, l1);
  EXPECT_EQ(l1, "1,x,0,1");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hyades::cluster
