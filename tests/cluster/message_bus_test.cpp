#include "cluster/message_bus.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace hyades::cluster {
namespace {

TEST(MessageBus, SendRecvSameThread) {
  MessageBus bus(4);
  bus.send(2, Message{0, 7, {1.0, 2.0}, 3.5});
  const Message m = bus.recv(2, 0, 7);
  EXPECT_EQ(m.src, 0);
  EXPECT_EQ(m.tag, 7);
  EXPECT_EQ(m.data, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(m.stamp_us, 3.5);
}

TEST(MessageBus, FifoPerSourceAndTag) {
  MessageBus bus(2);
  for (int i = 0; i < 10; ++i) {
    bus.send(1, Message{0, 5, {static_cast<double>(i)}, 0});
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(bus.recv(1, 0, 5).data[0], i);
  }
}

TEST(MessageBus, TagsAreIndependent) {
  MessageBus bus(2);
  bus.send(1, Message{0, 1, {1.0}, 0});
  bus.send(1, Message{0, 2, {2.0}, 0});
  EXPECT_DOUBLE_EQ(bus.recv(1, 0, 2).data[0], 2.0);
  EXPECT_DOUBLE_EQ(bus.recv(1, 0, 1).data[0], 1.0);
}

TEST(MessageBus, SourcesAreIndependent) {
  MessageBus bus(3);
  bus.send(2, Message{0, 1, {10.0}, 0});
  bus.send(2, Message{1, 1, {20.0}, 0});
  EXPECT_DOUBLE_EQ(bus.recv(2, 1, 1).data[0], 20.0);
  EXPECT_DOUBLE_EQ(bus.recv(2, 0, 1).data[0], 10.0);
}

TEST(MessageBus, RecvBlocksUntilSend) {
  MessageBus bus(2);
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    bus.send(1, Message{0, 3, {42.0}, 0});
  });
  EXPECT_DOUBLE_EQ(bus.recv(1, 0, 3).data[0], 42.0);
  sender.join();
}

TEST(MessageBus, TimeoutThrows) {
  MessageBus bus(2);
  EXPECT_THROW(bus.recv(1, 0, 3, /*timeout_ms=*/30), std::runtime_error);
}

TEST(MessageBus, Poll) {
  MessageBus bus(2);
  EXPECT_FALSE(bus.poll(1, 0, 3));
  bus.send(1, Message{0, 3, {1.0}, 0});
  EXPECT_TRUE(bus.poll(1, 0, 3));
  (void)bus.recv(1, 0, 3);
  EXPECT_FALSE(bus.poll(1, 0, 3));
}

TEST(MessageBus, SelfSendWorks) {
  MessageBus bus(1);
  bus.send(0, Message{0, 9, {5.0}, 0});
  EXPECT_DOUBLE_EQ(bus.recv(0, 0, 9).data[0], 5.0);
}

TEST(MessageBus, RejectsBadConstruction) {
  EXPECT_THROW(MessageBus(0), std::invalid_argument);
}

}  // namespace
}  // namespace hyades::cluster
