#include "cluster/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "net/arctic_model.hpp"

namespace hyades::cluster {
namespace {

MachineConfig machine(const net::Interconnect& net, int smps = 8,
                      int ppp = 2) {
  MachineConfig cfg;
  cfg.smp_count = smps;
  cfg.procs_per_smp = ppp;
  cfg.interconnect = &net;
  return cfg;
}

TEST(VirtualClockTest, AdvanceAndSync) {
  VirtualClock c;
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  c.advance(2.5);
  c.advance_to(1.0);  // no-op: already past
  EXPECT_DOUBLE_EQ(c.now(), 2.5);
  c.advance_to(10.0);
  EXPECT_DOUBLE_EQ(c.now(), 10.0);
  c.reset();
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
}

TEST(Runtime, RequiresInterconnect) {
  MachineConfig cfg;
  cfg.interconnect = nullptr;
  EXPECT_THROW(Runtime rt(cfg), std::invalid_argument);
}

TEST(Runtime, AcceptsNonPowerOfTwoSmps) {
  // The comm layer folds odd group sizes onto a butterfly core, so the
  // runtime no longer restricts smp_count to powers of two.
  const net::ArcticModel net;
  Runtime rt(machine(net, 3));
  std::atomic<int> seen{0};
  rt.run([&](RankContext&) { seen.fetch_add(1); });
  EXPECT_EQ(seen.load(), 6);
  EXPECT_THROW(Runtime bad(machine(net, 0)), std::invalid_argument);
}

TEST(Runtime, RanksSeeTheirIdentity) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 4, 2));
  std::atomic<int> masters{0};
  rt.run([&](RankContext& ctx) {
    EXPECT_EQ(ctx.nranks(), 8);
    EXPECT_EQ(ctx.smp(), ctx.rank() / 2);
    EXPECT_EQ(ctx.local_rank(), ctx.rank() % 2);
    if (ctx.is_master()) ++masters;
  });
  EXPECT_EQ(masters.load(), 4);
}

TEST(Runtime, ComputeAdvancesClockAndAccounting) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 1, 1));
  rt.run([](RankContext& ctx) {
    ctx.compute(5.0e6, 50.0);  // 5 MFlop at 50 MFlop/s -> 0.1 s
  });
  EXPECT_NEAR(rt.final_clocks()[0], 1.0e5, 1e-6);
  EXPECT_NEAR(rt.accounting()[0].compute_us, 1.0e5, 1e-6);
  EXPECT_DOUBLE_EQ(rt.accounting()[0].flops, 5.0e6);
  EXPECT_NEAR(rt.accounting()[0].sustained_mflops(), 50.0, 1e-9);
}

TEST(Runtime, ComputeRejectsBadArgs) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 1, 1));
  EXPECT_THROW(rt.run([](RankContext& ctx) { ctx.compute(-1.0, 50.0); }),
               std::invalid_argument);
  EXPECT_THROW(rt.run([](RankContext& ctx) { ctx.compute(1.0, 0.0); }),
               std::invalid_argument);
}

TEST(Runtime, SmpSyncEqualizesClocks) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 1, 2));
  rt.run([](RankContext& ctx) {
    // Rank 1 is far ahead; after the sync both clocks agree.
    ctx.compute(ctx.rank() == 1 ? 1.0e6 : 1.0e3, 50.0);
    ctx.smp_sync();
    EXPECT_NEAR(ctx.clock().now(), 1.0e6 / 50.0 + 0.25, 1e-9);
  });
}

TEST(Runtime, SmpPublishPeek) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 1, 2));
  rt.run([](RankContext& ctx) {
    ctx.smp_publish(10.0 + ctx.local_rank());
    ctx.smp_publish_bytes(100 + ctx.local_rank(), 200 + ctx.local_rank());
    ctx.smp_sync();
    double sum = 0;
    std::int64_t bsum = 0;
    for (int lr = 0; lr < ctx.procs_per_smp(); ++lr) {
      sum += ctx.smp_peek(lr);
      const auto [a, b] = ctx.smp_peek_bytes(lr);
      bsum += a + b;
    }
    ctx.smp_sync();
    EXPECT_DOUBLE_EQ(sum, 21.0);
    EXPECT_EQ(bsum, 100 + 101 + 200 + 201);
  });
}

TEST(Runtime, MessagingBetweenRanks) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 2, 2));
  rt.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send_raw(3, 11, {3.14}, 42.0);
    } else if (ctx.rank() == 3) {
      const Message m = ctx.recv_raw(0, 11);
      EXPECT_DOUBLE_EQ(m.data[0], 3.14);
      ctx.clock().advance_to(m.stamp_us);
      EXPECT_DOUBLE_EQ(ctx.clock().now(), 42.0);
    }
  });
}

TEST(Runtime, ExceptionPropagates) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 2, 2));
  EXPECT_THROW(rt.run([](RankContext& ctx) {
                 if (ctx.rank() == 2) throw std::runtime_error("boom");
               }),
               std::runtime_error);
}

TEST(Runtime, ExceptionDoesNotDeadlockSibling) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 1, 2));
  // Rank 0 throws before its barrier; rank 1 would hang in smp_sync
  // without the arrive_and_drop release.
  EXPECT_THROW(rt.run([](RankContext& ctx) {
                 if (ctx.rank() == 0) throw std::runtime_error("early");
                 ctx.smp_sync();
               }),
               std::runtime_error);
}

TEST(Runtime, VirtualTimeDeterministicAcrossRuns) {
  const net::ArcticModel net;
  auto run_once = [&] {
    Runtime rt(machine(net, 4, 2));
    rt.run([](RankContext& ctx) {
      for (int step = 0; step < 10; ++step) {
        ctx.compute(1000.0 * (ctx.rank() + 1), 50.0);
        ctx.smp_sync();
      }
    });
    return rt.final_clocks();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(Runtime, MaxClock) {
  const net::ArcticModel net;
  Runtime rt(machine(net, 2, 1));
  rt.run([](RankContext& ctx) {
    ctx.compute(ctx.rank() == 1 ? 2000.0 : 1000.0, 50.0);
  });
  EXPECT_NEAR(rt.max_clock(), 40.0, 1e-9);
}

}  // namespace
}  // namespace hyades::cluster
