// Membership edge cases: monotone liveness stamps, never-heard peers,
// and the detector-independence of NodeDown verdicts.
#include "cluster/membership.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cluster/fault.hpp"
#include "cluster/runtime.hpp"
#include "net/arctic_model.hpp"

namespace hyades::cluster {
namespace {

MachineConfig machine(const net::Interconnect& net, const FaultPlan* plan,
                      int smps = 4, int ppp = 1) {
  MachineConfig cfg;
  cfg.smp_count = smps;
  cfg.procs_per_smp = ppp;
  cfg.interconnect = &net;
  cfg.faults = plan;
  return cfg;
}

FaultPlan kill_plan(int rank = 3, Microseconds at_us = 50.0, int epoch = 0) {
  FaultPlan plan;
  plan.node_kills.push_back({rank, at_us, epoch});
  return plan;
}

TEST(Membership, StaleStampNeverMovesLastHeardBackwards) {
  const net::ArcticModel net;
  const FaultPlan plan = kill_plan();
  Runtime rt(machine(net, &plan));
  rt.run([&](RankContext& ctx) {
    if (ctx.rank() != 0) return;
    Membership ms(ctx, plan);
    ms.note_alive(1, 100.0);
    EXPECT_DOUBLE_EQ(ms.last_heard(1), 100.0);
    // A late-delivered message carries an older stamp: liveness
    // knowledge is monotone, so the fresher time must survive.
    ms.note_alive(1, 50.0);
    EXPECT_DOUBLE_EQ(ms.last_heard(1), 100.0);
    ms.note_alive(1, 150.0);
    EXPECT_DOUBLE_EQ(ms.last_heard(1), 150.0);
  });
}

TEST(Membership, NeverHeardPeerReportsZero) {
  const net::ArcticModel net;
  const FaultPlan plan = kill_plan();
  Runtime rt(machine(net, &plan));
  rt.run([&](RankContext& ctx) {
    if (ctx.rank() != 0) return;
    Membership ms(ctx, plan);
    for (int peer = 0; peer < ctx.nranks(); ++peer) {
      EXPECT_DOUBLE_EQ(ms.last_heard(peer), 0.0);
    }
  });
}

// The verdict is a pure function of the fault plan, never of the racing
// detector's clock: whichever survivor escalates first -- and however
// much virtual time it had already burned -- the published verdict is
// bit-identical.  Permute the detecting rank (and skew its clock) and
// compare.
TEST(Membership, VerdictIdenticalAcrossDetectionOrder) {
  const net::ArcticModel net;
  const FaultPlan plan = kill_plan(/*rank=*/3, /*at_us=*/50.0, /*epoch=*/0);
  std::vector<NodeDownVerdict> verdicts;
  const std::vector<std::pair<int, Microseconds>> detectors = {
      {0, 0.0}, {1, 12.5}, {2, 0.75}, {1, 0.0}, {0, 200.0}};
  for (const auto& [detector, skew_us] : detectors) {
    Runtime rt(machine(net, &plan));
    NodeDownVerdict got;
    rt.run([&](RankContext& ctx) {
      if (ctx.rank() != detector) return;
      if (skew_us > 0) ctx.clock().advance(skew_us);
      const NodeKill* kill = plan.node_kill(3, ctx.epoch());
      ASSERT_NE(kill, nullptr);
      Membership* ms = ctx.membership();
      ASSERT_NE(ms, nullptr);
      try {
        ms->escalate(3, *kill);
        FAIL() << "escalate must throw NodeDownError";
      } catch (const NodeDownError& e) {
        got = e.verdict;
      }
    });
    verdicts.push_back(got);
  }
  for (const NodeDownVerdict& v : verdicts) {
    EXPECT_EQ(v.rank, verdicts.front().rank);
    EXPECT_EQ(v.epoch, verdicts.front().epoch);
    EXPECT_DOUBLE_EQ(v.detected_us, verdicts.front().detected_us);
  }
  EXPECT_EQ(verdicts.front().rank, 3);
  EXPECT_DOUBLE_EQ(verdicts.front().detected_us,
                   50.0 + plan.heartbeat_deadline_us);
}

}  // namespace
}  // namespace hyades::cluster
