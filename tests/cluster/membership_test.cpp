// Membership edge cases: monotone liveness stamps, never-heard peers,
// and the detector-independence of NodeDown verdicts.
#include "cluster/membership.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cluster/fault.hpp"
#include "cluster/runtime.hpp"
#include "net/arctic_model.hpp"

namespace hyades::cluster {
namespace {

MachineConfig machine(const net::Interconnect& net, const FaultPlan* plan,
                      int smps = 4, int ppp = 1) {
  MachineConfig cfg;
  cfg.smp_count = smps;
  cfg.procs_per_smp = ppp;
  cfg.interconnect = &net;
  cfg.faults = plan;
  return cfg;
}

FaultPlan kill_plan(int rank = 3, Microseconds at_us = 50.0, int epoch = 0) {
  FaultPlan plan;
  plan.node_kills.push_back({rank, at_us, epoch});
  return plan;
}

TEST(Membership, StaleStampNeverMovesLastHeardBackwards) {
  const net::ArcticModel net;
  const FaultPlan plan = kill_plan();
  Runtime rt(machine(net, &plan));
  rt.run([&](RankContext& ctx) {
    if (ctx.rank() != 0) return;
    Membership ms(ctx, plan);
    ms.note_alive(1, 100.0);
    EXPECT_DOUBLE_EQ(ms.last_heard(1), 100.0);
    // A late-delivered message carries an older stamp: liveness
    // knowledge is monotone, so the fresher time must survive.
    ms.note_alive(1, 50.0);
    EXPECT_DOUBLE_EQ(ms.last_heard(1), 100.0);
    ms.note_alive(1, 150.0);
    EXPECT_DOUBLE_EQ(ms.last_heard(1), 150.0);
  });
}

TEST(Membership, NeverHeardPeerReportsZero) {
  const net::ArcticModel net;
  const FaultPlan plan = kill_plan();
  Runtime rt(machine(net, &plan));
  rt.run([&](RankContext& ctx) {
    if (ctx.rank() != 0) return;
    Membership ms(ctx, plan);
    for (int peer = 0; peer < ctx.nranks(); ++peer) {
      EXPECT_DOUBLE_EQ(ms.last_heard(peer), 0.0);
    }
  });
}

// The verdict is a pure function of the fault plan, never of the racing
// detector's clock: whichever survivor escalates first -- and however
// much virtual time it had already burned -- the published verdict is
// bit-identical.  Permute the detecting rank (and skew its clock) and
// compare.
TEST(Membership, VerdictIdenticalAcrossDetectionOrder) {
  const net::ArcticModel net;
  const FaultPlan plan = kill_plan(/*rank=*/3, /*at_us=*/50.0, /*epoch=*/0);
  std::vector<NodeDownVerdict> verdicts;
  const std::vector<std::pair<int, Microseconds>> detectors = {
      {0, 0.0}, {1, 12.5}, {2, 0.75}, {1, 0.0}, {0, 200.0}};
  for (const auto& [detector, skew_us] : detectors) {
    Runtime rt(machine(net, &plan));
    NodeDownVerdict got;
    rt.run([&](RankContext& ctx) {
      if (ctx.rank() != detector) return;
      if (skew_us > 0) ctx.clock().advance(skew_us);
      const NodeKill* kill = plan.node_kill(3, ctx.epoch());
      ASSERT_NE(kill, nullptr);
      Membership* ms = ctx.membership();
      ASSERT_NE(ms, nullptr);
      try {
        ms->escalate(3, *kill);
        FAIL() << "escalate must throw NodeDownError";
      } catch (const NodeDownError& e) {
        got = e.verdict;
      }
    });
    verdicts.push_back(got);
  }
  for (const NodeDownVerdict& v : verdicts) {
    EXPECT_EQ(v.rank, verdicts.front().rank);
    EXPECT_EQ(v.epoch, verdicts.front().epoch);
    EXPECT_DOUBLE_EQ(v.detected_us, verdicts.front().detected_us);
  }
  EXPECT_EQ(verdicts.front().rank, 3);
  EXPECT_DOUBLE_EQ(verdicts.front().detected_us,
                   50.0 + plan.heartbeat_deadline_us);
}

// Concurrent loss: every kill of the epoch whose deadline has expired
// by the coalesced detection time lands in ONE verdict, so recovery
// plans over the whole dead set instead of discovering casualties one
// aborted epoch at a time.
TEST(Membership, ConcurrentKillsCoalesceIntoOneVerdict) {
  const net::ArcticModel net;
  FaultPlan plan;
  plan.node_kills.push_back({1, 50.0, 0});
  plan.node_kills.push_back({3, 60.0, 0});
  Runtime rt(machine(net, &plan));
  rt.run([&](RankContext& ctx) {
    if (ctx.rank() != 0) return;
    Membership ms(ctx, plan);
    const NodeDownVerdict v = ms.coalesced_verdict();
    ASSERT_EQ(v.ranks.size(), 2u);
    EXPECT_EQ(v.ranks[0], 1);
    EXPECT_EQ(v.ranks[1], 3);
    EXPECT_EQ(v.rank, 1);  // canonical primary: lowest kill-named rank
    EXPECT_EQ(v.dead_ranks(), (std::vector<int>{1, 3}));
    // Fixpoint: detection waits for the latest coalesced deadline.
    EXPECT_DOUBLE_EQ(v.detected_us, 60.0 + plan.heartbeat_deadline_us);
  });
}

// A kill during recovery detection chains in: its deadline lands inside
// the window the earlier deadlines opened, growing the dead set until
// the fixpoint is stable.
TEST(Membership, CascadingKillsChainThroughTheFixpoint) {
  const net::ArcticModel net;
  const Microseconds dl = FaultPlan{}.heartbeat_deadline_us;  // 2000
  FaultPlan plan;
  plan.node_kills.push_back({0, 0.0, 0});
  plan.node_kills.push_back({2, dl - 500.0, 0});       // inside first window
  plan.node_kills.push_back({3, 2.0 * dl - 600.0, 0});  // inside second
  Runtime rt(machine(net, &plan));
  rt.run([&](RankContext& ctx) {
    if (ctx.rank() != 1) return;
    Membership ms(ctx, plan);
    const NodeDownVerdict v = ms.coalesced_verdict();
    EXPECT_EQ(v.ranks, (std::vector<int>{0, 2, 3}));
    EXPECT_EQ(v.rank, 0);
    EXPECT_DOUBLE_EQ(v.detected_us, 3.0 * dl - 600.0);
  });
}

// A kill scheduled beyond the coalescing fixpoint stays out: the world
// recovers from the first verdict (bumping the epoch) before that kill
// could ever be detected.
TEST(Membership, KillBeyondTheFixpointStaysASeparateEvent) {
  const net::ArcticModel net;
  const Microseconds dl = FaultPlan{}.heartbeat_deadline_us;
  FaultPlan plan;
  plan.node_kills.push_back({1, 100.0, 0});
  plan.node_kills.push_back({3, 100.0 + dl + 1.0, 0});  // past the window
  Runtime rt(machine(net, &plan));
  rt.run([&](RankContext& ctx) {
    if (ctx.rank() != 0) return;
    Membership ms(ctx, plan);
    const NodeDownVerdict v = ms.coalesced_verdict();
    EXPECT_EQ(v.ranks, (std::vector<int>{1}));
    EXPECT_DOUBLE_EQ(v.detected_us, 100.0 + dl);
  });
}

// Plan purity holds for multi-rank verdicts too: whichever survivor
// escalates, whatever its clock skew, the published dead set and
// detection time are bit-identical.
TEST(Membership, CoalescedVerdictIdenticalAcrossDetectionOrder) {
  const net::ArcticModel net;
  FaultPlan plan;
  plan.node_kills.push_back({2, 40.0, 0});
  plan.node_kills.push_back({3, 55.0, 0});
  std::vector<NodeDownVerdict> verdicts;
  const std::vector<std::pair<int, Microseconds>> detectors = {
      {0, 0.0}, {1, 12.5}, {0, 321.0}, {1, 0.25}};
  for (const auto& [detector, skew_us] : detectors) {
    Runtime rt(machine(net, &plan));
    NodeDownVerdict got;
    rt.run([&](RankContext& ctx) {
      if (ctx.rank() != detector) return;
      if (skew_us > 0) ctx.clock().advance(skew_us);
      const NodeKill* kill = plan.node_kill(2, ctx.epoch());
      ASSERT_NE(kill, nullptr);
      Membership* ms = ctx.membership();
      ASSERT_NE(ms, nullptr);
      try {
        ms->escalate(2, *kill);
        FAIL() << "escalate must throw NodeDownError";
      } catch (const NodeDownError& e) {
        got = e.verdict;
      }
    });
    verdicts.push_back(got);
  }
  for (const NodeDownVerdict& v : verdicts) {
    EXPECT_EQ(v.ranks, verdicts.front().ranks);
    EXPECT_EQ(v.rank, verdicts.front().rank);
    EXPECT_DOUBLE_EQ(v.detected_us, verdicts.front().detected_us);
  }
  EXPECT_EQ(verdicts.front().ranks, (std::vector<int>{2, 3}));
  EXPECT_EQ(verdicts.front().rank, 2);
}

// A hand-built single-rank verdict (and any pre-coalescing producer)
// still reports a dead set through dead_ranks().
TEST(Membership, DeadRanksFallsBackToThePrimaryCasualty) {
  NodeDownVerdict v;
  v.rank = 5;
  EXPECT_EQ(v.dead_ranks(), (std::vector<int>{5}));
  v.rank = -1;
  EXPECT_TRUE(v.dead_ranks().empty());
}

}  // namespace
}  // namespace hyades::cluster
