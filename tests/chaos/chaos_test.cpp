// Cascading-failure suite (tier2 + aggregate label `chaos_tests`):
// concurrent node loss coalesced into one verdict, faults injected
// *during* recovery, adversarial damage to durable checkpoints, and the
// graceful-degradation ladder that turns every formerly-fatal recovery
// precondition into one rung down instead of an abort.  The governing
// invariant is unchanged from the elastic suite: every survivable
// schedule finishes bit-identical to the failure-free run, and every
// non-survivable one ends in a typed error -- never a hang, never a
// bare throw.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/fault.hpp"
#include "cluster/membership.hpp"
#include "cluster/runtime.hpp"
#include "gcm/decomp.hpp"
#include "gcm/model.hpp"
#include "gcm/resilient.hpp"
#include "gcm/state.hpp"
#include "gcm/tile_ckpt.hpp"
#include "support/logging.hpp"
#include "tests/gcm/gcm_test_util.hpp"

namespace hyades {
namespace {

namespace fs = std::filesystem;

struct QuietLog {
  LogLevel before = log_level();
  QuietLog() { set_log_level(LogLevel::kError); }
  ~QuietLog() { set_log_level(before); }
};

bool bits_equal(const double* a, const double* b, std::size_t n) {
  return std::memcmp(a, b, n * sizeof(double)) == 0;
}

void expect_state_bits_equal(const gcm::State& a, const gcm::State& b,
                             const char* what) {
  EXPECT_TRUE(bits_equal(a.u.data(), b.u.data(), a.u.size())) << what << " u";
  EXPECT_TRUE(bits_equal(a.v.data(), b.v.data(), a.v.size())) << what << " v";
  EXPECT_TRUE(bits_equal(a.theta.data(), b.theta.data(), a.theta.size()))
      << what << " theta";
  EXPECT_TRUE(bits_equal(a.salt.data(), b.salt.data(), a.salt.size()))
      << what << " salt";
  EXPECT_EQ(a.step, b.step) << what;
}

std::string ckpt_prefix_for(const char* name) {
  return (fs::temp_directory_path() / name).string();
}

// Flip one payload byte of a committed checkpoint file in place:
// post-commit bit rot.  The header (magic, config words, step) stays
// intact, so peek_step/scan_slot still accept the file -- only the
// deep CRC verification can tell.
void rot_payload(const std::string& path) {
  ASSERT_TRUE(fs::exists(path)) << path;
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.good());
  f.seekg(0, std::ios::end);
  const std::streamoff size = f.tellg();
  ASSERT_GT(size, 0);
  f.seekg(size - 1);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5a);
  f.seekp(size - 1);
  f.write(&byte, 1);
}

// One resilient gyre run under a chaos configuration, collecting every
// rank's final state and the runtime's final-epoch accounting.
struct ChaosSetup {
  int steps = 12;
  int smp_count = 4;
  int procs_per_smp = 1;
  int ckpt_every = 3;
  int max_restarts = 3;
  int ring_depth = 2;
  const cluster::FaultPlan* plan = nullptr;
  std::function<void(int, const cluster::NodeDownVerdict&)> pre_recovery;
};

struct ChaosRun {
  gcm::ResilientStats stats;
  std::map<int, gcm::State> state;  // by rank
  std::int64_t acct_restarts = 0;
  std::int64_t acct_migrations = 0;
  std::int64_t acct_downgrades = 0;
  Microseconds busy_us = 0;
};

ChaosRun run_chaos_gyre(const ChaosSetup& setup, const char* ckpt_name,
                        gcm::RecoveryMode mode) {
  gcm::ModelConfig cfg = gcm::testing::small_ocean(2, 2);
  cfg.topography = gcm::ModelConfig::Topography::kBasin;

  cluster::MachineConfig mc;
  mc.smp_count = setup.smp_count;
  mc.procs_per_smp = setup.procs_per_smp;
  mc.interconnect = &gcm::testing::test_net();
  mc.faults = setup.plan;
  cluster::Runtime rt(mc);

  gcm::ResilientConfig rcfg;
  rcfg.ckpt_prefix = ckpt_prefix_for(ckpt_name);
  rcfg.ckpt_every = setup.ckpt_every;
  rcfg.max_restarts = setup.max_restarts;
  rcfg.ring_depth = setup.ring_depth;
  rcfg.recovery = mode;
  rcfg.pre_recovery = setup.pre_recovery;

  ChaosRun out;
  std::mutex mu;
  rcfg.on_complete = [&](cluster::RankContext& ctx, gcm::Model& m) {
    std::lock_guard<std::mutex> lock(mu);
    out.state.emplace(ctx.rank(), m.state());
    out.busy_us = std::max(out.busy_us, ctx.clock().now());
  };
  try {
    out.stats = gcm::run_resilient(rt, cfg, setup.steps, rcfg);
    // lint:allow(catch-all): driver-thread slot cleanup; rethrows intact
  } catch (...) {
    gcm::tile_ckpt::remove_slots(rcfg.ckpt_prefix, mc.nranks());
    throw;
  }
  for (const cluster::Accounting& a : rt.accounting()) {
    out.acct_restarts += a.restarts;
    out.acct_migrations += a.migrations;
    out.acct_downgrades += a.downgrades;
  }
  gcm::tile_ckpt::remove_slots(rcfg.ckpt_prefix, mc.nranks());
  return out;
}

void expect_all_ranks_bit_identical(const ChaosRun& a, const ChaosRun& b,
                                    int nranks, const char* what) {
  ASSERT_EQ(a.state.size(), static_cast<std::size_t>(nranks)) << what;
  ASSERT_EQ(b.state.size(), static_cast<std::size_t>(nranks)) << what;
  for (int r = 0; r < nranks; ++r) {
    expect_state_bits_equal(a.state.at(r), b.state.at(r), what);
  }
}

// ---------------------------------------------------------------------------
// Concurrent node loss: one coalesced verdict, one recovery.

TEST(Chaos, TwoBoardsDownInOneWindowIsOneCoalescedRecovery) {
  QuietLog quiet;
  ChaosSetup clean_setup;
  const ChaosRun clean = run_chaos_gyre(clean_setup, "hyades_ch_two_clean",
                                        gcm::RecoveryMode::kMigrate);

  cluster::FaultPlan plan;
  plan.node_kills.push_back({/*rank=*/1, clean.busy_us * 0.6, /*epoch=*/0});
  plan.node_kills.push_back(
      {/*rank=*/3, clean.busy_us * 0.6 + 100.0, /*epoch=*/0});
  ChaosSetup setup;
  setup.plan = &plan;
  const ChaosRun b =
      run_chaos_gyre(setup, "hyades_ch_two_kill", gcm::RecoveryMode::kMigrate);

  // ONE recovery event covering the whole dead set -- not two epochs
  // discovering one casualty each.
  EXPECT_EQ(b.stats.restarts, 1);
  ASSERT_EQ(b.stats.verdicts.size(), 1u);
  EXPECT_EQ(b.stats.verdicts[0].dead_ranks(), (std::vector<int>{1, 3}));
  ASSERT_EQ(b.stats.ladder.size(), 1u);
  EXPECT_EQ(b.stats.ladder[0].landed(), gcm::RecoveryRung::kMigrate);
  EXPECT_EQ(b.stats.ladder[0].downgrades(), 0);
  EXPECT_EQ(b.stats.migrations, 2);  // both dead tiles adopted in one plan
  EXPECT_EQ(b.acct_downgrades, 0);
  expect_all_ranks_bit_identical(clean, b, 4, "two-boards-coalesced");
}

TEST(Chaos, KillDuringRecoveryIsASecondLadderEvent) {
  // Epoch 0 loses rank 3; while the recovered epoch is replaying, rank
  // 1's board dies too (an epoch-1 kill fires during recovery).  Two
  // verdicts, two ladder events, still bit-identical.
  QuietLog quiet;
  ChaosSetup clean_setup;
  const ChaosRun clean = run_chaos_gyre(clean_setup, "hyades_ch_dur_clean",
                                        gcm::RecoveryMode::kMigrate);
  cluster::FaultPlan plan;
  plan.node_kills.push_back({/*rank=*/3, clean.busy_us * 0.5, /*epoch=*/0});
  plan.node_kills.push_back({/*rank=*/1, clean.busy_us * 0.7, /*epoch=*/1});
  ChaosSetup setup;
  setup.plan = &plan;
  const ChaosRun b =
      run_chaos_gyre(setup, "hyades_ch_dur_kill", gcm::RecoveryMode::kMigrate);

  EXPECT_EQ(b.stats.restarts, 2);
  ASSERT_EQ(b.stats.verdicts.size(), 2u);
  EXPECT_EQ(b.stats.verdicts[0].dead_ranks(), (std::vector<int>{3}));
  EXPECT_EQ(b.stats.verdicts[1].dead_ranks(), (std::vector<int>{1}));
  ASSERT_EQ(b.stats.ladder.size(), 2u);
  EXPECT_EQ(b.stats.ladder[0].landed(), gcm::RecoveryRung::kMigrate);
  EXPECT_EQ(b.stats.ladder[1].landed(), gcm::RecoveryRung::kMigrate);
  ASSERT_EQ(b.stats.recovery_us.size(), 2u);
  expect_all_ranks_bit_identical(clean, b, 4, "kill-during-recovery");
}

// ---------------------------------------------------------------------------
// The degradation ladder.

TEST(Chaos, CorruptAdoptedTileFallsOneRungToTheOlderCut) {
  // Post-commit bit rot on the dead rank's newest durable tile: rung 1
  // fails deep verification, rung 2 recovers from one cut further back.
  // The ladder history says exactly that, and the run still finishes
  // bit-identical.
  QuietLog quiet;
  ChaosSetup clean_setup;
  const ChaosRun clean = run_chaos_gyre(clean_setup, "hyades_ch_rot_clean",
                                        gcm::RecoveryMode::kMigrate);
  cluster::FaultPlan plan;
  plan.node_kills.push_back({/*rank=*/1, clean.busy_us * 0.75, /*epoch=*/0});
  ChaosSetup setup;
  setup.plan = &plan;
  const std::string prefix = ckpt_prefix_for("hyades_ch_rot_kill");
  setup.pre_recovery = [&](int epoch, const cluster::NodeDownVerdict& v) {
    if (epoch != 0) return;
    ASSERT_EQ(v.dead_ranks(), (std::vector<int>{1}));
    const gcm::tile_ckpt::TileHit newest =
        gcm::tile_ckpt::newest_rank_ckpt(prefix, 1, 1000000);
    ASSERT_GE(newest.step, 0);
    rot_payload(newest.path);
  };
  const ChaosRun b =
      run_chaos_gyre(setup, "hyades_ch_rot_kill", gcm::RecoveryMode::kMigrate);

  ASSERT_EQ(b.stats.ladder.size(), 1u);
  const gcm::RecoveryEvent& ev = b.stats.ladder[0];
  ASSERT_EQ(ev.attempts.size(), 2u);
  EXPECT_EQ(ev.attempts[0].rung, gcm::RecoveryRung::kMigrate);
  EXPECT_FALSE(ev.attempts[0].ok);
  EXPECT_NE(ev.attempts[0].reason.find("deep verification"),
            std::string::npos)
      << ev.attempts[0].reason;
  EXPECT_EQ(ev.attempts[1].rung, gcm::RecoveryRung::kMigrateOlderCut);
  EXPECT_TRUE(ev.attempts[1].ok);
  EXPECT_EQ(ev.landed(), gcm::RecoveryRung::kMigrateOlderCut);
  EXPECT_EQ(ev.downgrades(), 1);
  // The older cut is strictly older than what rung 1 aimed at.
  EXPECT_LT(ev.attempts[1].step, ev.attempts[0].step);
  // The downgrade is ledgered in the per-rank accounting.
  EXPECT_GT(b.acct_downgrades, 0);
  expect_all_ranks_bit_identical(clean, b, 4, "corrupt-newest-older-cut");
}

TEST(Chaos, EveryBoardDownDegradesToEpochRestart) {
  // Both boards of a 2x2 machine host a kill-named rank inside one
  // heartbeat window: the whole machine fail-stops, no survivor can
  // escalate, migration is unplannable.  The driver synthesizes the
  // coalesced verdict, rungs 1-2 fail ("every board down"), and rung 3
  // restarts the epoch from the newest verified slot -- bit-identical,
  // with the full ladder history on record.
  QuietLog quiet;
  ChaosSetup clean_setup;
  clean_setup.smp_count = 2;
  clean_setup.procs_per_smp = 2;
  const ChaosRun clean = run_chaos_gyre(clean_setup, "hyades_ch_all_clean",
                                        gcm::RecoveryMode::kMigrate);
  cluster::FaultPlan plan;
  plan.node_kills.push_back({/*rank=*/0, clean.busy_us * 0.6, /*epoch=*/0});
  plan.node_kills.push_back(
      {/*rank=*/2, clean.busy_us * 0.6 + 50.0, /*epoch=*/0});
  ChaosSetup setup;
  setup.smp_count = 2;
  setup.procs_per_smp = 2;
  setup.plan = &plan;
  const ChaosRun b =
      run_chaos_gyre(setup, "hyades_ch_all_kill", gcm::RecoveryMode::kMigrate);

  EXPECT_EQ(b.stats.restarts, 1);
  ASSERT_EQ(b.stats.ladder.size(), 1u);
  const gcm::RecoveryEvent& ev = b.stats.ladder[0];
  ASSERT_GE(ev.attempts.size(), 3u);
  EXPECT_FALSE(ev.attempts[0].ok);
  EXPECT_NE(ev.attempts[0].reason.find("every board"), std::string::npos)
      << ev.attempts[0].reason;
  EXPECT_EQ(ev.landed(), gcm::RecoveryRung::kEpochRestart);
  EXPECT_EQ(ev.downgrades(), static_cast<int>(ev.attempts.size()) - 1);
  EXPECT_GT(b.acct_restarts, 0);   // restart-the-world was charged
  EXPECT_GT(b.acct_downgrades, 0);
  ASSERT_EQ(b.stats.restart_steps.size(), 1u);
  EXPECT_GT(b.stats.restart_steps[0], 0);  // restarted from a durable cut
  expect_all_ranks_bit_identical(clean, b, 4, "all-boards-epoch-restart");
}

TEST(Chaos, BothSlotsCorruptIsTypedRecoveryExhausted) {
  // Rot the dead rank's durable tile in BOTH slots: rung 1 fails
  // (corrupt at the newest cut), rung 2 fails (corrupt at the older
  // cut), rung 3 fails (no slot passes deep verification).  The run
  // must end in a typed RecoveryExhausted carrying the whole ladder
  // history -- never a hang, never a bare runtime_error.
  QuietLog quiet;
  ChaosSetup probe_setup;
  const ChaosRun probe = run_chaos_gyre(probe_setup, "hyades_ch_exh_probe",
                                        gcm::RecoveryMode::kMigrate);
  cluster::FaultPlan plan;
  plan.node_kills.push_back({/*rank=*/1, probe.busy_us * 0.75, /*epoch=*/0});
  ChaosSetup setup;
  setup.plan = &plan;
  const std::string prefix = ckpt_prefix_for("hyades_ch_exh_kill");
  setup.pre_recovery = [&](int epoch, const cluster::NodeDownVerdict&) {
    if (epoch != 0) return;
    for (int slot = 0; slot < 2; ++slot) {
      const std::string path = gcm::tile_ckpt::rank_path(
          gcm::tile_ckpt::slot_prefix(prefix, slot), 1);
      if (fs::exists(path)) rot_payload(path);
    }
  };
  try {
    run_chaos_gyre(setup, "hyades_ch_exh_kill", gcm::RecoveryMode::kMigrate);
    FAIL() << "expected RecoveryExhausted";
  } catch (const gcm::RecoveryExhausted& e) {
    EXPECT_EQ(e.verdict.dead_ranks(), (std::vector<int>{1}));
    // Full ladder walked: migrate, older-cut, and at least one
    // epoch-restart attempt, all failed.
    ASSERT_GE(e.history.size(), 3u);
    for (const gcm::RungAttempt& a : e.history) {
      EXPECT_FALSE(a.ok) << gcm::to_string(a.rung) << ": " << a.reason;
      EXPECT_FALSE(a.reason.empty());
    }
    EXPECT_EQ(e.history.back().rung, gcm::RecoveryRung::kEpochRestart);
    EXPECT_EQ(e.rank, 1);
    // The base-class message is self-contained for farm triage.
    EXPECT_NE(std::string(e.what()).find("recovery exhausted"),
              std::string::npos);
  }
}

TEST(Chaos, RestartModeCorruptNewestSlotDegradesToOlder) {
  // The ladder exists under kEpochRestart too: when the newest
  // consistent slot fails deep verification, recovery degrades to the
  // older slot (one downgrade) instead of loading rotten bits.
  QuietLog quiet;
  ChaosSetup clean_setup;
  const ChaosRun clean = run_chaos_gyre(clean_setup, "hyades_ch_rsl_clean",
                                        gcm::RecoveryMode::kEpochRestart);
  cluster::FaultPlan plan;
  plan.node_kills.push_back({/*rank=*/2, clean.busy_us * 0.75, /*epoch=*/0});
  ChaosSetup setup;
  setup.plan = &plan;
  const std::string prefix = ckpt_prefix_for("hyades_ch_rsl_kill");
  setup.pre_recovery = [&](int epoch, const cluster::NodeDownVerdict&) {
    if (epoch != 0) return;
    // Rot one rank file of the newest consistent slot.
    const gcm::tile_ckpt::SlotScan s0 =
        gcm::tile_ckpt::scan_slot(prefix, 0, 4);
    const gcm::tile_ckpt::SlotScan s1 =
        gcm::tile_ckpt::scan_slot(prefix, 1, 4);
    const int newest = (s0.consistent && (!s1.consistent || s0.step >= s1.step))
                           ? 0
                           : 1;
    rot_payload(gcm::tile_ckpt::rank_path(
        gcm::tile_ckpt::slot_prefix(prefix, newest), 3));
  };
  const ChaosRun b = run_chaos_gyre(setup, "hyades_ch_rsl_kill",
                                    gcm::RecoveryMode::kEpochRestart);
  ASSERT_EQ(b.stats.ladder.size(), 1u);
  const gcm::RecoveryEvent& ev = b.stats.ladder[0];
  ASSERT_EQ(ev.attempts.size(), 2u);
  EXPECT_FALSE(ev.attempts[0].ok);
  EXPECT_TRUE(ev.attempts[1].ok);
  EXPECT_EQ(ev.landed(), gcm::RecoveryRung::kEpochRestart);
  EXPECT_EQ(ev.downgrades(), 1);
  EXPECT_LT(ev.attempts[1].step, ev.attempts[0].step);
  expect_all_ranks_bit_identical(clean, b, 4, "restart-mode-older-slot");
}

// ---------------------------------------------------------------------------
// The in-memory ring: depth is a knob, bits are not.

TEST(Chaos, RingDepthThreeIsBitIdenticalToDepthTwo) {
  QuietLog quiet;
  ChaosSetup clean_setup;
  const ChaosRun clean = run_chaos_gyre(clean_setup, "hyades_ch_rd_clean",
                                        gcm::RecoveryMode::kMigrate);
  cluster::FaultPlan plan;
  plan.node_kills.push_back({/*rank=*/3, clean.busy_us * 0.6, /*epoch=*/0});

  ChaosSetup d2;
  d2.plan = &plan;
  d2.ring_depth = 2;
  const ChaosRun r2 =
      run_chaos_gyre(d2, "hyades_ch_rd2", gcm::RecoveryMode::kMigrate);
  ChaosSetup d3;
  d3.plan = &plan;
  d3.ring_depth = 3;
  const ChaosRun r3 =
      run_chaos_gyre(d3, "hyades_ch_rd3", gcm::RecoveryMode::kMigrate);

  EXPECT_EQ(r2.stats.restarts, 1);
  EXPECT_EQ(r3.stats.restarts, 1);
  expect_all_ranks_bit_identical(clean, r2, 4, "ring-depth-2");
  expect_all_ranks_bit_identical(clean, r3, 4, "ring-depth-3");
}

TEST(Chaos, RingDepthBelowTwoIsRejected) {
  gcm::ModelConfig cfg = gcm::testing::small_ocean(2, 2);
  cluster::MachineConfig mc;
  mc.smp_count = 4;
  mc.procs_per_smp = 1;
  mc.interconnect = &gcm::testing::test_net();
  cluster::Runtime rt(mc);
  gcm::ResilientConfig rcfg;
  rcfg.ckpt_prefix = ckpt_prefix_for("hyades_ch_depth1");
  rcfg.recovery = gcm::RecoveryMode::kMigrate;
  rcfg.ring_depth = 1;
  EXPECT_THROW(gcm::run_resilient(rt, cfg, 4, rcfg), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Adversarial damage to the tile store itself.

TEST(TileDamage, CorruptPayloadPassesPeekButFailsVerify) {
  const gcm::ModelConfig cfg = gcm::testing::small_ocean(1, 1);
  const std::string path =
      gcm::tile_ckpt::rank_path(ckpt_prefix_for("hyades_ch_dmg_rot"), 0);
  gcm::State s;
  {
    const gcm::Decomp dec(cfg, 0);
    s.allocate(dec, cfg.nz);
    for (std::size_t i = 0; i < s.u.size(); ++i) {
      s.u.data()[i] = static_cast<double>(i) * 0.25;
    }
    s.step = 9;
  }
  gcm::tile_ckpt::save(path, cfg, s);
  ASSERT_TRUE(gcm::tile_ckpt::verify(path, cfg));

  rot_payload(path);
  // The header is intact: the shallow probes still accept the file...
  EXPECT_EQ(gcm::tile_ckpt::peek_step(path), 9);
  // ...but deep verification and a real load both refuse it.
  EXPECT_FALSE(gcm::tile_ckpt::verify(path, cfg));
  gcm::State loaded;
  {
    const gcm::Decomp dec(cfg, 0);
    loaded.allocate(dec, cfg.nz);
  }
  EXPECT_THROW(gcm::tile_ckpt::load(path, cfg, &loaded), std::runtime_error);
  fs::remove(path);
}

TEST(TileDamage, TruncatedFileFailsScanCleanly) {
  const gcm::ModelConfig cfg = gcm::testing::small_ocean(1, 1);
  const std::string prefix = ckpt_prefix_for("hyades_ch_dmg_trunc");
  const std::string slot0 = gcm::tile_ckpt::slot_prefix(prefix, 0);
  for (int r = 0; r < 2; ++r) {
    gcm::State s;
    const gcm::Decomp dec(cfg, 0);
    s.allocate(dec, cfg.nz);
    s.step = 6;
    gcm::tile_ckpt::save(gcm::tile_ckpt::rank_path(slot0, r), cfg, s);
  }
  ASSERT_TRUE(gcm::tile_ckpt::scan_slot(prefix, 0, 2).consistent);

  // Truncate rank 1's file mid-header: the slot must scan as
  // inconsistent (no exception escapes), and deep verify refuses it.
  const std::string victim = gcm::tile_ckpt::rank_path(slot0, 1);
  fs::resize_file(victim, 24);
  const gcm::tile_ckpt::SlotScan scan =
      gcm::tile_ckpt::scan_slot(prefix, 0, 2);
  EXPECT_FALSE(scan.consistent);
  EXPECT_FALSE(gcm::tile_ckpt::verify(victim, cfg));
  gcm::tile_ckpt::remove_slots(prefix, 2);
}

TEST(TileDamage, TmpOrphanIsNeverACommittedCheckpoint) {
  // A crash between write and rename strands "<path>.tmp".  The store
  // must never mistake it for a committed checkpoint: the slot scans
  // as unwritten and per-tile search finds nothing.
  const gcm::ModelConfig cfg = gcm::testing::small_ocean(1, 1);
  const std::string prefix = ckpt_prefix_for("hyades_ch_dmg_tmp");
  const std::string path =
      gcm::tile_ckpt::rank_path(gcm::tile_ckpt::slot_prefix(prefix, 0), 0);
  {
    std::ofstream orphan(path + ".tmp", std::ios::binary);
    orphan << "half-written garbage";
  }
  EXPECT_FALSE(gcm::tile_ckpt::scan_slot(prefix, 0, 1).consistent);
  EXPECT_EQ(gcm::tile_ckpt::newest_rank_ckpt(prefix, 0, 1000).step, -1);
  EXPECT_FALSE(gcm::tile_ckpt::verify(path, cfg));
  fs::remove(path + ".tmp");
}

}  // namespace
}  // namespace hyades
