#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hyades::sim {
namespace {

TEST(SimTime, Conversions) {
  EXPECT_EQ(from_us(1.0), kPsPerUs);
  EXPECT_EQ(from_ns(1.0), kPsPerNs);
  EXPECT_DOUBLE_EQ(to_us(from_us(0.15)), 0.15);
  // 150 MByte/sec link: 150 bytes take 1 us.
  EXPECT_EQ(transfer_time(150, 150.0), kPsPerUs);
}

TEST(Scheduler, RunsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(from_us(3.0), [&] { order.push_back(3); });
  s.schedule_at(from_us(1.0), [&] { order.push_back(1); });
  s.schedule_at(from_us(2.0), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), from_us(3.0));
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(from_us(5.0), [&, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler s;
  SimTime seen = -1;
  s.schedule_at(from_us(2.0), [&] {
    s.schedule_after(from_us(3.0), [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, from_us(5.0));
}

TEST(Scheduler, RejectsPast) {
  Scheduler s;
  s.schedule_at(from_us(2.0), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(from_us(1.0), [] {}), std::invalid_argument);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.schedule_at(from_us(1.0), [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_FALSE(s.cancel(id));  // double-cancel fails
}

TEST(Scheduler, CancelUnknownIdFails) {
  Scheduler s;
  EXPECT_FALSE(s.cancel(12345));
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler s;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) s.schedule_after(from_us(1.0), chain);
  };
  s.schedule_at(0, chain);
  s.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.now(), from_us(4.0));
}

TEST(Scheduler, RunWithLimit) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(from_us(i), [&] { ++count; });
  }
  EXPECT_EQ(s.run(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(s.pending(), 6u);
  s.run();
  EXPECT_EQ(count, 10);
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler s;
  std::vector<int> ran;
  s.schedule_at(from_us(1.0), [&] { ran.push_back(1); });
  s.schedule_at(from_us(2.0), [&] { ran.push_back(2); });
  s.schedule_at(from_us(3.0), [&] { ran.push_back(3); });
  s.run_until(from_us(2.0));
  EXPECT_EQ(ran, (std::vector<int>{1, 2}));  // event at exactly t runs
  EXPECT_EQ(s.now(), from_us(2.0));
  s.run();
  EXPECT_EQ(ran, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, RunUntilAdvancesTimeWhenEmpty) {
  Scheduler s;
  s.run_until(from_us(10.0));
  EXPECT_EQ(s.now(), from_us(10.0));
}

TEST(Scheduler, Determinism) {
  auto run_once = [] {
    Scheduler s;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      s.schedule_at(from_us((i * 7) % 13), [&, i] { order.push_back(i); });
    }
    s.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace hyades::sim
