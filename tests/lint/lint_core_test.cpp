// hyades-lint v2 core tests: tokenizer provenance (line continuation,
// CRLF, tabs, raw strings, spliced literals), the include scanner, and
// the machine-readable output formats.  json/sarif are checked against
// the same minimal strict RFC-8259 validator the BENCH_*.json probes
// use -- campaign tooling and the verify skill parse these documents
// with strict parsers, so "roughly JSON" is a regression.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "lint/driver.hpp"
#include "lint/source.hpp"
#include "lint/token.hpp"

namespace hyades::lint {
namespace {

// Minimal strict RFC-8259 recursive-descent validator (same idiom as
// tests/farm/bench_json_test.cpp).
class StrictJson {
 public:
  static bool valid(const std::string& text) {
    StrictJson p(text);
    p.ws();
    if (!p.value()) return false;
    p.ws();
    return p.i_ == text.size();
  }

 private:
  explicit StrictJson(const std::string& t) : t_(t) {}
  const std::string& t_;
  std::size_t i_ = 0;

  [[nodiscard]] char peek() const { return i_ < t_.size() ? t_[i_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++i_;
    return true;
  }
  bool lit(const char* s) {
    std::size_t j = i_;
    for (; *s != '\0'; ++s, ++j) {
      if (j >= t_.size() || t_[j] != *s) return false;
    }
    i_ = j;
    return true;
  }
  void ws() {
    while (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
           peek() == '\r') {
      ++i_;
    }
  }
  static bool digit(char c) { return c >= '0' && c <= '9'; }
  static bool hex(char c) {
    return digit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
  }

  bool string() {
    if (!eat('"')) return false;
    while (true) {
      if (i_ >= t_.size()) return false;
      const unsigned char c = static_cast<unsigned char>(t_[i_]);
      if (c == '"') {
        ++i_;
        return true;
      }
      if (c < 0x20) return false;  // bare control character: invalid
      if (c == '\\') {
        ++i_;
        const char e = peek();
        if (e == 'u') {
          ++i_;
          for (int k = 0; k < 4; ++k) {
            if (!hex(peek())) return false;
            ++i_;
          }
          continue;
        }
        if (e == '"' || e == '\\' || e == '/' || e == 'b' || e == 'f' ||
            e == 'n' || e == 'r' || e == 't') {
          ++i_;
          continue;
        }
        return false;
      }
      ++i_;
    }
  }

  bool number() {
    (void)eat('-');
    if (eat('0')) {
      // leading zero must not be followed by digits
    } else if (digit(peek())) {
      while (digit(peek())) ++i_;
    } else {
      return false;
    }
    if (eat('.')) {
      if (!digit(peek())) return false;
      while (digit(peek())) ++i_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++i_;
      if (peek() == '+' || peek() == '-') ++i_;
      if (!digit(peek())) return false;
      while (digit(peek())) ++i_;
    }
    return true;
  }

  bool value() {  // NOLINT(misc-no-recursion)
    const char c = peek();
    if (c == '{') {
      ++i_;
      ws();
      if (eat('}')) return true;
      while (true) {
        ws();
        if (!string()) return false;
        ws();
        if (!eat(':')) return false;
        ws();
        if (!value()) return false;
        ws();
        if (eat(',')) continue;
        return eat('}');
      }
    }
    if (c == '[') {
      ++i_;
      ws();
      if (eat(']')) return true;
      while (true) {
        ws();
        if (!value()) return false;
        ws();
        if (eat(',')) continue;
        return eat(']');
      }
    }
    if (c == '"') return string();
    if (lit("true") || lit("false") || lit("null")) return true;
    return number();
  }
};

std::string fixture(const std::string& name) {
  return std::string(HYADES_LINT_FIXDIR) + "/" + name;
}

bool has_ident(const LexedFile& lf, const std::string& text) {
  for (const Token& t : lf.tokens) {
    if (t.kind == Tok::kIdent && t.text == text) return true;
  }
  return false;
}

const Token* find_ident(const LexedFile& lf, const std::string& text) {
  for (const Token& t : lf.tokens) {
    if (t.kind == Tok::kIdent && t.text == text) return &t;
  }
  return nullptr;
}

// ---- tokenizer provenance -------------------------------------------

TEST(LintTokenizer, LineCommentContinuationIsStillComment) {
  // The v1 stripper bug: a `//` comment ending in backslash continues
  // onto the next physical line, which must stay blank.
  const LexedFile lf = lex({"// prose mentioning steady_clock \\",
                            "still prose: rand() and steady_clock here",
                            "int x = 1;"});
  EXPECT_FALSE(has_ident(lf, "steady_clock"));
  EXPECT_FALSE(has_ident(lf, "rand"));
  const Token* x = find_ident(lf, "x");
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->line, 3u);
}

TEST(LintTokenizer, DoubleContinuationChainsAcrossLines) {
  const LexedFile lf =
      lex({"// one \\", "two \\", "three, still comment", "int y;"});
  ASSERT_NE(find_ident(lf, "y"), nullptr);
  EXPECT_FALSE(has_ident(lf, "three"));
  EXPECT_EQ(find_ident(lf, "y")->line, 4u);
}

TEST(LintTokenizer, TabAdvancesOneByteColumn) {
  const LexedFile lf = lex({"\tint indented;"});
  const Token* t = find_ident(lf, "int");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->line, 1u);
  EXPECT_EQ(t->col, 2u);  // tab is one byte -> column 2
}

TEST(LintTokenizer, CrlfFixtureLoadsLikeLf) {
  SourceFile sf;
  ASSERT_TRUE(load(fixture("crlf_trip.cpp"), &sf));
  for (const std::string& line : sf.raw) {
    EXPECT_EQ(line.find('\r'), std::string::npos);
  }
  const Token* clk = nullptr;
  for (const Token& t : sf.tokens) {
    if (t.kind == Tok::kIdent && t.text == "steady_clock") clk = &t;
  }
  ASSERT_NE(clk, nullptr);
  EXPECT_EQ(clk->line, 6u);
  EXPECT_EQ(clk->col, 23u);
}

TEST(LintTokenizer, RawStringContentsAreNotCode) {
  const LexedFile lf = lex({"auto s = R\"(steady_clock rand())\";"});
  EXPECT_FALSE(has_ident(lf, "steady_clock"));
  bool found = false;
  for (const Token& t : lf.tokens) {
    if (t.kind == Tok::kString &&
        t.text.find("steady_clock") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LintTokenizer, SplicedStringLiteralSpansLines) {
  const LexedFile lf =
      lex({"const char* s = \"abc\\", "def\";", "int after;"});
  EXPECT_FALSE(has_ident(lf, "def"));
  const Token* after = find_ident(lf, "after");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->line, 3u);
}

TEST(LintTokenizer, PpNumbersLexAsOneToken) {
  const LexedFile lf = lex({"double a = 1e-3; int b = 1'000; int c = 0x3F;"});
  std::vector<std::string> numbers;
  for (const Token& t : lf.tokens) {
    if (t.kind == Tok::kNumber) numbers.push_back(t.text);
  }
  ASSERT_EQ(numbers.size(), 3u);
  EXPECT_EQ(numbers[0], "1e-3");
  EXPECT_EQ(numbers[1], "1'000");
  EXPECT_EQ(numbers[2], "0x3F");
}

TEST(LintTokenizer, IncludeDirectivesAreCaptured) {
  const LexedFile lf =
      lex({"#include \"gcm/config.hpp\"", "#include <vector>",
           "// #include \"net/fabric.hpp\" in a comment is not captured"});
  ASSERT_EQ(lf.includes.size(), 2u);
  EXPECT_EQ(lf.includes[0].target, "gcm/config.hpp");
  EXPECT_FALSE(lf.includes[0].angled);
  EXPECT_EQ(lf.includes[0].line, 1u);
  EXPECT_EQ(lf.includes[1].target, "vector");
  EXPECT_TRUE(lf.includes[1].angled);
}

// ---- formats --------------------------------------------------------

int run_files(const std::vector<std::string>& names, Format fmt,
              std::string* out_text) {
  Options opts;
  for (const std::string& n : names) opts.files.push_back(fixture(n));
  opts.format = fmt;
  std::ostringstream out;
  std::ostringstream err;
  const int rc = run(opts, out, err);
  *out_text = out.str();
  EXPECT_EQ(err.str(), "");
  return rc;
}

TEST(LintFormats, JsonStrictParses) {
  std::string text;
  const int rc = run_files({"wall_clock_trip.cpp", "naked_new_trip.cpp"},
                           Format::kJson, &text);
  EXPECT_EQ(rc, 1);
  EXPECT_TRUE(StrictJson::valid(text)) << text;
  EXPECT_NE(text.find("\"tool\":\"hyades-lint\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"rule\":\"wall-clock\""), std::string::npos) << text;
}

TEST(LintFormats, SarifStrictParses) {
  std::string text;
  const int rc = run_files({"wall_clock_trip.cpp"}, Format::kSarif, &text);
  EXPECT_EQ(rc, 1);
  EXPECT_TRUE(StrictJson::valid(text)) << text;
  EXPECT_NE(text.find("\"version\":\"2.1.0\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"ruleId\":\"wall-clock\""), std::string::npos) << text;
}

TEST(LintFormats, CleanRunStillStrictParses) {
  std::string text;
  const int rc = run_files({"clean.cpp"}, Format::kJson, &text);
  EXPECT_EQ(rc, 0);
  EXPECT_TRUE(StrictJson::valid(text)) << text;
  EXPECT_NE(text.find("\"count\":0"), std::string::npos) << text;
}

TEST(LintFormats, FindingOrderIsStableAcrossInputOrder) {
  std::string forward;
  std::string backward;
  run_files({"wall_clock_trip.cpp", "naked_new_trip.cpp"}, Format::kText,
            &forward);
  run_files({"naked_new_trip.cpp", "wall_clock_trip.cpp"}, Format::kText,
            &backward);
  EXPECT_EQ(forward, backward);
}

TEST(LintFormats, EscapingSurvivesStrictParse) {
  // Adversarial finding content: control chars, quotes, backslashes.
  const std::vector<Finding> findings = {
      Finding{"dir/we\"ird\\path.cpp", 3, 1, "wall-clock",
              std::string("msg with \x01 control\tand\nnewline")},
  };
  const std::vector<RuleInfo> rules = {{"wall-clock", "summary \"quoted\""}};
  std::ostringstream js;
  emit_json(findings, rules, 1, js);
  EXPECT_TRUE(StrictJson::valid(js.str())) << js.str();
  EXPECT_NE(js.str().find("\\u0001"), std::string::npos) << js.str();
  std::ostringstream sar;
  emit_sarif(findings, rules, sar);
  EXPECT_TRUE(StrictJson::valid(sar.str())) << sar.str();
}

TEST(LintDriver, StaleAllowFiresAndCleanAllowsStaySilent) {
  std::string text;
  EXPECT_EQ(run_files({"stale_allow_trip.cpp"}, Format::kText, &text), 1);
  EXPECT_NE(text.find("[stale-allow]"), std::string::npos) << text;
  EXPECT_EQ(run_files({"stale_allow_clean.cpp"}, Format::kText, &text), 0)
      << text;
}

TEST(LintDriver, LayeringTripAndClean) {
  std::string text;
  EXPECT_EQ(run_files({"support/layering_trip.cpp"}, Format::kText, &text),
            1);
  EXPECT_NE(text.find("[layering]"), std::string::npos) << text;
  EXPECT_EQ(run_files({"support/layering_clean.cpp"}, Format::kText, &text),
            0)
      << text;
}

}  // namespace
}  // namespace hyades::lint
