// Tripwire: CRLF line endings must not shift token columns or
// confuse the lexer: the carriage return is stripped at load.
#include <chrono>

long long now_us() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
