// A trailing backslash legally extends this comment onto the next \
   line, where steady_clock and rand() stay prose -- the v1 stripper \
   treated these continuations as code and fired here.
int answer() { return 6 * 7; }
