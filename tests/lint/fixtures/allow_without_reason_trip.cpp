// Tripwire: a lint:allow with no justification after the colon is
// itself a finding -- suppressions must say why.
#include <chrono>

long long watchdog_now() {
  // lint:allow(wall-clock):
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
