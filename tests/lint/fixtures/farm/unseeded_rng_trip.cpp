// Tripwire: nondeterministic randomness in farm code.  Member seeds
// come from the job spec; drawing them from the host entropy pool would
// break the (config hash, seed) cache key and the bit-identical ledger.
#include <random>

unsigned long draw_member_seed() {
  std::default_random_engine eng;
  return eng();
}
