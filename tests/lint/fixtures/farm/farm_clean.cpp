// Clean: farm-path code doing everything right -- virtual job-clock
// stamps, spec-carried seeds, and traffic through the reliability
// layer.  Mentioning send_raw or steady_clock in prose (like this
// comment) is fine: strings and comments are stripped before matching.
// Zero findings expected.
struct Reliable {
  void send(int peer, const void* data, int len);
};

struct JobSpec {
  unsigned long seed = 7;  // determinism: the seed travels in the spec
};

double advance_job_clock(double now_us, double busy_us) {
  return now_us + busy_us;  // the only clock the farm knows is virtual
}

void dispatch(Reliable& rel, const JobSpec& spec) {
  rel.send(0, &spec, static_cast<int>(sizeof spec));
}
