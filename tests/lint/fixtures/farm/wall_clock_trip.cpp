// Tripwire: a real-time clock read in farm code.  The farm's job clock
// is virtual; stamping records with host time would make the campaign
// ledger differ run to run.
#include <chrono>

double job_finish_stamp() {
  const auto t = std::chrono::system_clock::now().time_since_epoch();
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(t).count());
}
