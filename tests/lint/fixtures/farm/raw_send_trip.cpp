// Tripwire: farm-service traffic bypassing comm/reliable.  The path
// contains "farm/", so the raw-send rule applies there like in gcm/.
struct Ctx {
  void send_raw(int peer, const void* data, int len);
};

void broadcast_job(Ctx& ctx, const double* spec, int n) {
  ctx.send_raw(1, spec, n * 8);
}
