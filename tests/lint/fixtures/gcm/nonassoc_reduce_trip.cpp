// Tripwire: folding partial sums in rank order with raw += diverges
// from the fixed fold-then-butterfly order comm::Comm guarantees.
double total_energy(const double* partials, int nranks) {
  double total = 0.0;
  for (int rank = 0; rank < nranks; ++rank) {
    total += partials[rank];
  }
  return total;
}
