// Lint tripwire: exactly one planted ckpt-path violation -- model code
// composing a rank checkpoint file name by hand instead of going
// through gcm/tile_ckpt's slot_prefix()/rank_path().
#include <string>

namespace hyades::gcm {

std::string resume_path(const std::string& prefix, int rank) {
  return prefix + ".rank" + std::to_string(rank);
}

}  // namespace hyades::gcm
