// Near-miss: scalar accumulation over a plain loop index is not a
// cross-rank reduction -- the loop order here is the contract.
double trapezoid(const double* f, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    acc += f[i];
  }
  return acc * 0.5;
}
