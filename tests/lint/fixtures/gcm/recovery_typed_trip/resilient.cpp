// Lint tripwire: exactly one planted recovery-typed violation -- the
// resilient driver throwing a bare std::runtime_error instead of a
// typed gcm::RecoveryError, erasing the rank/step/slot/rung context the
// degradation ladder and the farm triage depend on.
#include <stdexcept>
#include <string>

namespace hyades::gcm {

void give_up(int rank) {
  throw std::runtime_error("no checkpoint for rank " + std::to_string(rank));
}

}  // namespace hyades::gcm
