// Clean fixture for the recovery-typed rule: the near-miss patterns
// that must stay silent in a recovery-critical translation unit.
// Catching the runtime_error base to triage collateral errors is fine
// (only *constructing* one is a finding), prose mentioning
// runtime_error or catch (...) in comments and strings is fine, and a
// justified lint:allow suppresses a deliberate construction.
#include <stdexcept>
#include <string>

namespace hyades::gcm {

void risky_step();

// A typed error deriving from std::runtime_error is the sanctioned
// shape; referencing the base type in a declaration is not a
// construction.
struct TypedRecoveryFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

int triage() {
  try {
    risky_step();
  } catch (const std::runtime_error&) {
    // Catching the base type (e.g. collateral barrier aborts) is the
    // documented triage pattern, not an untyped throw.
    return 1;
  }
  return 0;
}

void justified() {
  // lint:allow(recovery-typed): exercising the suppression path; a real
  // site would explain why no typed error fits here.
  throw std::runtime_error("justified and suppressed");
}

}  // namespace hyades::gcm
