// Near-miss: per-tile kernel loops own their accumulation order; the
// kernels* basename is exempt even though the buffer is tile-indexed.
double tile_sum(const double* cell, int ncells, int tile) {
  double acc = 0.0;
  for (int i = 0; i < ncells; ++i) {
    acc += cell[tile * ncells + i];
  }
  return acc;
}
