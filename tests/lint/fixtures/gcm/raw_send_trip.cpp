// Tripwire: model traffic bypassing comm/reliable.  The path contains
// "gcm/", so the raw-send rule applies.
struct Ctx {
  void send_raw(int peer, const void* data, int len);
};

void push_halo(Ctx& ctx, const double* buf, int n) {
  ctx.send_raw(1, buf, n * 8);
}
