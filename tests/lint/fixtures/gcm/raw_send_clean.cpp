// Clean: gcm-path code riding the reliability layer (and one justified
// raw send).  Zero findings expected.
struct Reliable {
  void send(int peer, const void* data, int len);
};

struct Ctx {
  void send_raw(int peer, const void* data, int len);
};

void push_halo(Reliable& rel, const double* buf, int n) {
  rel.send(1, buf, n * 8);
}

void push_ghost(Ctx& ctx, const double* buf, int n) {
  // lint:allow(raw-send): loss-tolerant diagnostic ghost copy; a drop
  // only blurs one plot point, never model state.
  ctx.send_raw(1, buf, n * 8);
}
