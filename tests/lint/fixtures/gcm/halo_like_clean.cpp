// Near-miss: a member function named exchange() on a plain object --
// no atomic type anywhere in this file, so atomic-order stays silent
// (the halo exchanger's comm.exchange(nb, buf) is exactly this shape).
struct HaloComm {
  void exchange(int nb, double* buf);
};

void step(HaloComm& comm, double* buf) { comm.exchange(0, buf); }
