// Near-misses for the ckpt-path rule: none of these compose checkpoint
// file names, so the lint must stay silent.
//
// Prose may freely describe the on-disk format -- the "<prefix>.rank<N>"
// files and the ".tmp" publish dance live in tile_ckpt's contract docs.
#include <string>

namespace hyades::gcm {

struct Verdict {
  int rank = 0;
};

// `.rank` as a member access is not a file suffix.
int verdict_rank(const Verdict& v) {
  return v.rank;
}

// A justified allow keeps a deliberate composition (say, a migration
// shim for a legacy layout) honest.
std::string legacy_shim(const std::string& prefix) {
  // lint:allow(ckpt-path): exercising the justified-allow path
  return prefix + ".rank0";
}

}  // namespace hyades::gcm
