// Near-miss patterns for atomic-order: explicit orders, the free
// std::exchange (not an atomic member op), and a justified seq_cst.
#include <atomic>
#include <utility>

std::atomic<int> g_flag{0};
std::atomic<int> g_state{0};

int take(int* slot) {
  return std::exchange(*slot, 0);  // free function, not an atomic op
}

void publish() { g_flag.store(1, std::memory_order_release); }

int consume() { return g_flag.load(std::memory_order_acquire); }

void reset() {
  // lint:allow(atomic-order): deliberate seq_cst -- the reset pairs
  // with every other access and must keep the single total order.
  g_state.store(0);
}
