// Clean: every enumerator has a case, every named column appears in
// the table headers.  Must produce zero findings.
enum class SpanCat { kPhase, kExchange, kGsum };

const char* span_cat_column(SpanCat cat) {
  switch (cat) {
    case SpanCat::kPhase:
      return nullptr;
    case SpanCat::kExchange:
      return "exchange (ms)";
    case SpanCat::kGsum:
      return "gsum (ms)";
  }
  return nullptr;
}

const char* kHeaders[] = {"rank", "exchange (ms)", "gsum (ms)",
                          "total (ms)"};
