// Near-miss: same-module quoted includes are legal at any layer, and
// angled system headers carry no layer at all.
#include "support/rng.hpp"
#include <vector>

int support_ok() { return 1; }
