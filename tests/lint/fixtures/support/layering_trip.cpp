// Tripwire: support/ (layer 0) reaching up into gcm/ (layer 7)
// inverts the dependency DAG the build is layered around.
#include "gcm/config.hpp"

int support_helper() { return 0; }
