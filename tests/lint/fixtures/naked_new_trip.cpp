// Tripwire: raw new in an exception-throwing world leaks on unwind.
struct Grid {
  int n = 0;
};

Grid* make_grid() { return new Grid{}; }
