// Near-miss: a justified allow that genuinely suppresses a finding is
// exactly what the suppression mechanism is for -- not stale.
struct Grid {};

Grid* leak_for_tooling() {
  // lint:allow(naked-new): intentional process-lifetime singleton for
  // the tooling probe; measured by the leak checker.
  return new Grid{};
}
