// Tripwire: nondeterministic randomness.  Every draw must come from a
// seeded SplitMix64 so runs replay bit-identically.
#include <random>

unsigned roll() {
  std::random_device rd;
  return rd();
}
