// Tripwire: a real-time clock read in simulated-world code.  The lint
// must flag it (timing goes through VirtualClock).
#include <chrono>

long long now_us() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::microseconds>(t).count();
}
