// Tripwire: tab indentation -- a tab advances the byte column by
// exactly one, so the finding lands at 6:22 regardless of tab width.
#include <chrono>

long long now_us() {
	return std::chrono::steady_clock::now().time_since_epoch().count();
}
