// Tripwire: this allow excuses nothing -- the naked new it once
// covered became make_unique, and the excuse stayed behind where it
// would silently eat the next genuine violation.
#include <memory>

struct Grid {};

std::unique_ptr<Grid> make_grid() {
  // lint:allow(naked-new): arena handoff (stale: the code below now
  // uses make_unique)
  return std::make_unique<Grid>();
}
