// Tripwire: an allow naming a rule that does not exist can never
// suppress anything (here, a typo for wall-clock).
int deploy() {
  // lint:allow(wall-cock): typo, should be wall-clock
  return 0;
}
