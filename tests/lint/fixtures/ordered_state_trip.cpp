// Tripwire: unordered_map iteration order depends on the host hash
// and bucket layout -- it leaks host behavior into bit-determinism.
#include <unordered_map>

int count_keys(const std::unordered_map<int, int>& m) {
  return static_cast<int>(m.size());
}
