// Near-miss patterns that must NOT fire: the lint matches code, not
// prose, and honors justified suppressions.  Zero findings expected.
#include <chrono>
#include <memory>
#include <string>

// Mentioning steady_clock or rand() in a comment is fine.
struct Stepper {
  Stepper() = default;
  Stepper(const Stepper&) = delete;             // deleted fn, not raw delete
  Stepper& operator=(const Stepper&) = delete;  // ditto
  ~Stepper() = default;

  // Identifiers that merely contain the tokens are not matches.
  int randomize_count = 0;
  double wall_time_budget = 0.0;
  void renew_lease() {}
  long long exchange_time(int) { return 0; }
};

std::string describe() {
  // Token in a string literal is not a match either.
  return "uses steady_clock? no; uses rand()? also no; new delete";
}

std::unique_ptr<Stepper> make_stepper() {
  return std::make_unique<Stepper>();  // make_unique, not naked new
}

long long watchdog_now() {
  // lint:allow(wall-clock): host watchdog for hang detection only;
  // never feeds simulated timestamps.
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

void typed_catch() {
  try {
    describe();
  } catch (const std::exception&) {  // typed catch is fine
  }
}
