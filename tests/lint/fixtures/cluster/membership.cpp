// Lint tripwire: exactly one planted recovery-typed violation -- the
// membership service swallowing every unwind with catch (...), which
// would also swallow RankFailStop (deliberately not a std::exception)
// and turn a scheduled node death into silent survival.
namespace hyades::cluster {

void probe_peer(int peer);

bool try_probe(int peer) {
  try {
    probe_peer(peer);
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace hyades::cluster
