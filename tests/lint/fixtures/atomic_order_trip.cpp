// Tripwire: a bare default-seq_cst atomic store hides the ordering
// contract the lock-free code depends on.
#include <atomic>

std::atomic<int> g_flag{0};

void publish() { g_flag.store(1); }
