// Tripwire: span_cat_column names a column -- the gsum one -- that the
// report's table headers never print; the attribution would silently
// vanish from the table.
enum class SpanCat { kPhase, kExchange, kGsum };

const char* span_cat_column(SpanCat cat) {
  switch (cat) {
    case SpanCat::kPhase:
      return nullptr;
    case SpanCat::kExchange:
      return "exchange (ms)";
    case SpanCat::kGsum:
      return "gsum (ms)";
  }
  return nullptr;
}

const char* kHeaders[] = {"rank", "exchange (ms)", "total (ms)"};
