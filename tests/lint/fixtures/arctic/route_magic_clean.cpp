// Near-miss patterns the magic-topology rule must stay silent on:
// named constexpr constants, float calibration values, hex masks,
// wider literals, suffix-free contexts inside identifiers, and a
// justified allow.
namespace hyades::arctic {

inline constexpr int kFixtureRadix = 4;       // sanctioned home
inline constexpr int kFixtureEndpoints = 16;  // sanctioned home

inline double stage_scale() { return 0.4 * 1.6; }  // floats, not shapes

inline unsigned mask_low() { return 0x3Fu; }  // hex digits are not tokens

inline int fixture_uint32_like(int uint32_value) { return uint32_value; }

// lint:allow(magic-topology): fixture demonstrating a justified allow.
inline int allowed_shape() { return 32; }

inline int uses_constant() { return kFixtureRadix * kFixtureEndpoints; }

}  // namespace hyades::arctic
