// Tripwire for the magic-topology rule: a bare radix literal in a
// topology translation unit.  Exactly one planted violation.
namespace hyades::arctic {

inline int up_port_of(int src) {
  int radix = 4;  // should be FatTreeShape::radix or kRadix
  return src % radix;
}

}  // namespace hyades::arctic
