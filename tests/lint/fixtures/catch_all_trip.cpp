// Tripwire: catch (...) also catches RankFailStop, turning a scheduled
// node death into silent survival.
void step();

bool step_survives() {
  try {
    step();
  } catch (...) {
    return false;
  }
  return true;
}
