// Near-miss: ordered containers, plus prose and string literals that
// merely mention unordered_map, must stay silent.
#include <map>
#include <string>

// An unordered_map would hash; std::map iterates in key order.
std::string describe() { return "not an unordered_map"; }

int count_keys(const std::map<int, int>& m) {
  return static_cast<int>(m.size());
}
