// Tripwire: this comment's trailing backslash legally extends it to \
   the next physical line, so the steady_clock here is prose only.
long long now_ticks() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
