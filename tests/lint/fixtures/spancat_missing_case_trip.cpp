// Tripwire: a SpanCat enumerator (kGsum) with no case in
// span_cat_column -- a new category was added without deciding its
// wait-attribution column.
enum class SpanCat { kPhase, kExchange, kGsum };

const char* span_cat_column(SpanCat cat) {
  switch (cat) {
    case SpanCat::kPhase:
      return nullptr;
    case SpanCat::kExchange:
      return "exchange (ms)";
  }
  return nullptr;
}

const char* kHeaders[] = {"rank", "exchange (ms)", "total (ms)"};
