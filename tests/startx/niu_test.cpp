#include "startx/niu.hpp"

#include <gtest/gtest.h>

#include "sim/scheduler.hpp"

namespace hyades::startx {
namespace {

struct Rig {
  sim::Scheduler sched;
  arctic::Fabric fabric;
  std::vector<std::unique_ptr<StartXNiu>> nius;

  explicit Rig(int endpoints = 16) : fabric(sched, endpoints) {
    nius = attach_all(sched, fabric);
  }
  StartXNiu& niu(int n) { return *nius[static_cast<std::size_t>(n)]; }
};

TEST(PioAccesses, CountsEightByteBeats) {
  EXPECT_EQ(pio_accesses(8), 2);    // header + 1 payload beat
  EXPECT_EQ(pio_accesses(16), 3);
  EXPECT_EQ(pio_accesses(64), 9);   // header + 8 payload beats
  EXPECT_EQ(pio_accesses(88), 12);
}

TEST(PioOverheads, MatchPaperEstimates) {
  Rig rig;
  // Section 2.3: sending an 8-byte message costs ~0.36 us, receiving
  // ~1.86 us, from the mmap access costs of Section 2.1.
  EXPECT_NEAR(rig.niu(0).pio_send_overhead(8), 0.36, 1e-9);
  EXPECT_NEAR(rig.niu(0).pio_recv_overhead(8), 1.86, 1e-9);
  EXPECT_NEAR(rig.niu(0).pio_send_overhead(64), 1.62, 1e-9);
  EXPECT_NEAR(rig.niu(0).pio_recv_overhead(64), 8.37, 1e-9);
}

TEST(PioMode, MessageRoundTrips) {
  Rig rig;
  rig.niu(0).pio_inject_at(0, 5, 42, {0xAAu, 0xBBu, 0xCCu});
  rig.sched.run();
  ASSERT_TRUE(rig.niu(5).pio_available());
  const PioMessage m = rig.niu(5).pio_pop();
  EXPECT_EQ(m.src, 0);
  EXPECT_EQ(m.tag, 42);
  EXPECT_EQ(m.payload, (std::vector<std::uint32_t>{0xAAu, 0xBBu, 0xCCu}));
  EXPECT_FALSE(m.crc_error);
  EXPECT_FALSE(rig.niu(5).pio_available());
}

TEST(PioMode, PartitionedDestinationReportsNiuContext) {
  // Killing a leaf router partitions its endpoints; an injection toward
  // one must surface a link-down error naming the NIU, the protocol,
  // and the destination -- not a bare fabric coordinate.
  Rig rig;
  rig.fabric.apply_kill({arctic::KillEvent::Kind::kRouter, /*level=*/0,
                         /*index=*/1, /*port=*/0, /*at_us=*/0.0});
  rig.niu(0).pio_inject_at(0, /*dst=*/5, 42, {0x1u, 0x2u});
  try {
    rig.sched.run();
    FAIL() << "expected partition error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("startx niu 0"), std::string::npos) << what;
    EXPECT_NE(what.find("pio"), std::string::npos) << what;
    EXPECT_NE(what.find("partitioned"), std::string::npos) << what;
  }
}

TEST(PioMode, PopOnEmptyThrows) {
  Rig rig;
  EXPECT_THROW(rig.niu(3).pio_pop(), std::logic_error);
}

TEST(PioMode, PopOnEmptyReportsNode) {
  Rig rig;
  try {
    rig.niu(3).pio_pop();
    FAIL() << "expected logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("node 3"), std::string::npos)
        << e.what();
  }
}

TEST(PioMode, RejectsBadPayloadAndTag) {
  Rig rig;
  EXPECT_THROW(rig.niu(0).pio_inject_at(0, 1, 1, {0u}),
               std::invalid_argument);
  EXPECT_THROW(rig.niu(0).pio_inject_at(0, 1, 2048, {0u, 0u}),
               std::invalid_argument);
}

TEST(PioMode, NotifyFiresAtArrival) {
  Rig rig;
  sim::SimTime seen = -1;
  rig.niu(9).set_pio_notify(
      [&](const PioMessage& m) { seen = m.arrival; });
  rig.niu(0).pio_inject_at(0, 9, 1, {1u, 2u});
  rig.sched.run();
  ASSERT_GE(seen, 0);
  // One-way small-message latency should be near the calibrated 1.3 us
  // plus the send-side injection instant (cpu_done = 0 here).
  const double us = sim::to_us(seen);
  EXPECT_GT(us, 0.8);
  EXPECT_LT(us, 2.0);
}

TEST(PioMode, OrderPreservedBetweenPair) {
  Rig rig;
  for (std::uint16_t i = 0; i < 20; ++i) {
    rig.niu(1).pio_inject_at(0, 13, i, {0u, 0u});
  }
  rig.sched.run();
  for (std::uint16_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(rig.niu(13).pio_available());
    EXPECT_EQ(rig.niu(13).pio_pop().tag, i);
  }
}

TEST(ViMode, StreamCompletes) {
  Rig rig;
  sim::SimTime done = -1;
  rig.niu(15).vi_expect(4, 10000, [&](sim::SimTime t) { done = t; });
  rig.niu(0).vi_send_at(0, 15, 4, 10000);
  rig.sched.run();
  ASSERT_GE(done, 0);
  EXPECT_EQ(rig.niu(15).vi_received(4), 0);  // consumed on completion
  // Payload paced at 110 MB/s: ~90.9 us of streaming plus transit.
  const double us = sim::to_us(done);
  EXPECT_GT(us, 10000.0 / 110.0);
  EXPECT_LT(us, 10000.0 / 110.0 + 5.0);
}

TEST(ViMode, ExpectAfterArrivalStillFires) {
  Rig rig;
  rig.niu(0).vi_send_at(0, 15, 6, 500);
  rig.sched.run();
  EXPECT_EQ(rig.niu(15).vi_received(6), 500);
  sim::SimTime done = -1;
  rig.sched.schedule_at(rig.sched.now(), [&] {
    rig.niu(15).vi_expect(6, 500, [&](sim::SimTime t) { done = t; });
  });
  rig.sched.run();
  EXPECT_GE(done, 0);
}

TEST(ViMode, DistinctTagsTrackedIndependently) {
  Rig rig;
  int completions = 0;
  rig.niu(7).vi_expect(1, 300, [&](sim::SimTime) { ++completions; });
  rig.niu(7).vi_expect(2, 400, [&](sim::SimTime) { ++completions; });
  rig.niu(0).vi_send_at(0, 7, 1, 300);
  rig.niu(3).vi_send_at(0, 7, 2, 400);
  rig.sched.run();
  EXPECT_EQ(completions, 2);
}

TEST(ViMode, BackToBackSendsSerializeOnTxEngine) {
  Rig rig;
  sim::SimTime done1 = -1, done2 = -1;
  rig.niu(15).vi_expect(1, 50000, [&](sim::SimTime t) { done1 = t; });
  rig.niu(14).vi_expect(2, 50000, [&](sim::SimTime t) { done2 = t; });
  rig.niu(0).vi_send_at(0, 15, 1, 50000);
  rig.niu(0).vi_send_at(0, 14, 2, 50000);
  rig.sched.run();
  // The second stream must wait for the first (single Tx DMA engine /
  // saturated PCI bus), so it finishes roughly a full stream later.
  EXPECT_GT(sim::to_us(done2), sim::to_us(done1) + 0.8 * 50000.0 / 110.0);
}

TEST(ViMode, CorruptChunkDiscardedNotCredited) {
  Rig rig;
  // Corrupt the first VI packet on the wire.  The NIU must not deposit
  // the chunk or trust its (garbled) byte-count word: the chunk is
  // discarded and the stream stalls short of completion.
  rig.fabric.corrupt_next_injection();
  rig.niu(0).vi_send_at(0, 15, 4, 200);  // 3 packets: 84 + 84 + 32 bytes
  rig.sched.run();
  EXPECT_EQ(rig.niu(15).vi_crc_discards(), 1u);
  EXPECT_EQ(rig.niu(15).vi_received(4), 200 - 84);
}

TEST(ViMode, OverlongChunkClaimFailsFast) {
  Rig rig;
  // A (clean-CRC) VI packet whose byte-count word claims more data than
  // the packet carries is a protocol bug; crediting it would silently
  // complete the stream early.
  arctic::Packet p;
  p.usr_tag = (1u << 10) | 5u;  // VI flag | tag 5
  p.payload = {1000u, 0u};      // claims 1000 bytes in one data word
  rig.fabric.inject(0, 15, std::move(p));
  EXPECT_THROW(rig.sched.run(), std::logic_error);
}

TEST(ViMode, ZeroByteSendCompletesImmediately) {
  Rig rig;
  bool sent = false;
  rig.niu(0).vi_send_at(0, 15, 9, 0, [&] { sent = true; });
  rig.sched.run();
  EXPECT_TRUE(sent);
}

TEST(ViMode, CopyTimeUsesCachedBandwidth) {
  Rig rig;
  // 400 MByte/sec cached copies: 512 bytes in 1.28 us.
  EXPECT_NEAR(rig.niu(0).copy_time(512), 1.28, 1e-9);
}

}  // namespace
}  // namespace hyades::startx
