// The observability layer end to end: typed spans with counter
// payloads, full-precision CSV (regression for the 6-digit truncation
// bug), Chrome trace-event JSON schema, the metrics registry, and the
// wait-time-attribution report -- plus the load-bearing invariant that
// tracing is timing-invisible (an instrumented run's virtual timeline
// and measurements are bit-identical to an uninstrumented one).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/report.hpp"
#include "cluster/trace.hpp"
#include "gcm/model.hpp"
#include "net/arctic_model.hpp"
#include "perf/calibrate.hpp"
#include "support/metrics.hpp"
#include "support/table.hpp"
#include "tests/gcm/gcm_test_util.hpp"

namespace hyades::cluster {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

int count_of(const std::string& hay, const std::string& needle) {
  int n = 0;
  for (std::size_t p = hay.find(needle); p != std::string::npos;
       p = hay.find(needle, p + needle.size())) {
    ++n;
  }
  return n;
}

// ---- satellite (a): CSV precision regression ----------------------------

TEST(TraceCsv, FullPrecisionSurvivesLongRuns) {
  // Regression: write_trace_csv used the default 6-significant-digit
  // ostream precision, so any timestamp beyond ~1 s of virtual time
  // (the paper's runs sit at ~1.1e10 us) collapsed to "1e+09"-style
  // rounded values and the timeline no longer round-tripped.
  Tracer t;
  const double b = 1.0e9 + 0.125, e = 1.0e9 + 0.625;
  t.record("gsum", b, e);
  const std::string path = ::testing::TempDir() + "hyades_precision.csv";
  write_trace_csv(path, {&t});
  std::ifstream is(path);
  std::string header, line;
  std::getline(is, header);
  std::getline(is, line);
  EXPECT_EQ(header, "rank,op,begin_us,end_us");
  EXPECT_EQ(line.find("1e+09"), std::string::npos) << line;
  std::replace(line.begin(), line.end(), ',', ' ');
  std::istringstream ls(line);
  int rank = -1;
  std::string op;
  double rb = 0, re = 0;
  ls >> rank >> op >> rb >> re;
  EXPECT_EQ(rank, 0);
  EXPECT_EQ(op, "gsum");
  EXPECT_EQ(rb, b);  // exact: full precision must round-trip
  EXPECT_EQ(re, e);
  std::remove(path.c_str());
}

// ---- typed spans and counters -------------------------------------------

TEST(Tracer, SpanCategoriesAndCountersRoundTrip) {
  Tracer t;
  SpanCounters c1;
  c1.bytes = 4096;
  c1.flops = 1.5e6;
  t.record("exchange", SpanCat::kExchange, 0.0, 10.0, c1);
  SpanCounters c2;
  c2.cg_iterations = 3;
  c2.overlap_us = 2.5;
  t.record("ds_cg_iter", SpanCat::kSolver, 10.0, 14.0, c2);
  t.record("ds_cg_iter", SpanCat::kSolver, 14.0, 19.0, c2);

  EXPECT_DOUBLE_EQ(t.total_cat(SpanCat::kExchange), 10.0);
  EXPECT_DOUBLE_EQ(t.total_cat(SpanCat::kSolver), 9.0);
  EXPECT_DOUBLE_EQ(t.total_cat(SpanCat::kGsum), 0.0);
  const SpanCounters ex = t.counters("exchange");
  EXPECT_EQ(ex.bytes, 4096);
  EXPECT_DOUBLE_EQ(ex.flops, 1.5e6);
  const SpanCounters cg = t.counters("ds_cg_iter");
  EXPECT_EQ(cg.cg_iterations, 6);
  EXPECT_DOUBLE_EQ(cg.overlap_us, 5.0);
}

TEST(Tracer, UntypedRecordInfersCategory) {
  EXPECT_EQ(span_cat_of("ps"), SpanCat::kPhase);
  EXPECT_EQ(span_cat_of("ps_interior"), SpanCat::kPhase);
  EXPECT_EQ(span_cat_of("exchange"), SpanCat::kExchange);
  EXPECT_EQ(span_cat_of("exchange_wait"), SpanCat::kExchange);
  EXPECT_EQ(span_cat_of("gsum_start"), SpanCat::kGsum);
  EXPECT_EQ(span_cat_of("gmax"), SpanCat::kGsum);
  EXPECT_EQ(span_cat_of("barrier"), SpanCat::kBarrier);
  EXPECT_EQ(span_cat_of("ds_cg_iter"), SpanCat::kSolver);
  EXPECT_EQ(span_cat_of("something_else"), SpanCat::kOther);

  Tracer t;
  t.record("gmax", 1.0, 2.0);
  EXPECT_EQ(t.events()[0].cat, SpanCat::kGsum);
}

// ---- Chrome trace-event JSON export -------------------------------------

TEST(TraceJson, SchemaFieldsPresent) {
  Tracer a, b;
  SpanCounters ctr;
  ctr.bytes = 128;
  a.record("gsum", SpanCat::kGsum, 0.0, 5.0, ctr);
  a.record("ps", SpanCat::kPhase, 5.0, 30.0);
  b.record("exchange", SpanCat::kExchange, 1.0, 7.5);
  const std::string path = ::testing::TempDir() + "hyades_schema.trace.json";
  write_trace_json(path, {&a, &b}, /*procs_per_smp=*/2);
  const std::string s = slurp(path);

  EXPECT_EQ(s.front(), '{');
  EXPECT_NE(s.find("\"traceEvents\":["), std::string::npos);
  // Three complete events, each with the required schema fields.
  EXPECT_EQ(count_of(s, "\"ph\":\"X\""), 3);
  EXPECT_EQ(count_of(s, "\"ts\":"), 3);
  EXPECT_EQ(count_of(s, "\"dur\":"), 3);
  // Every event (3 X + 4 M metadata) carries pid and tid.
  EXPECT_EQ(count_of(s, "\"ph\":\"M\""), 4);
  EXPECT_EQ(count_of(s, "\"pid\":"), 7);
  EXPECT_EQ(count_of(s, "\"tid\":"), 7);
  // Both ranks share SMP 0 (procs_per_smp = 2).
  EXPECT_NE(s.find("\"name\":\"smp0\""), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"rank1\""), std::string::npos);
  // Counter payloads ride in "args"; spans without counters omit it.
  EXPECT_EQ(count_of(s, "\"bytes\":128"), 1);
  EXPECT_EQ(count_of(s, "\"args\":"), 4 + 1);  // 4 metadata + 1 counter
  // Braces and brackets balance (cheap well-formedness check).
  EXPECT_EQ(count_of(s, "{"), count_of(s, "}"));
  EXPECT_EQ(count_of(s, "["), count_of(s, "]"));
}

TEST(TraceJson, NullTracersSkippedAndPidMapsSmp) {
  Tracer a;
  a.record("barrier", SpanCat::kBarrier, 0.0, 1.0);
  const std::string path = ::testing::TempDir() + "hyades_null.trace.json";
  write_trace_json(path, {nullptr, nullptr, &a, nullptr}, 2);
  const std::string s = slurp(path);
  // Rank 2 on a 2-way SMP lives in process (SMP) 1.
  EXPECT_NE(s.find("\"pid\":1,\"tid\":2"), std::string::npos);
  EXPECT_EQ(s.find("rank0"), std::string::npos);
  EXPECT_THROW(write_trace_json(path, {&a}, 0), std::invalid_argument);
}

// ---- model-level: capture, determinism, timing invisibility --------------

perf::ModelMeasurement measure_small(perf::TraceCapture* cap) {
  const gcm::ModelConfig cfg = gcm::testing::small_ocean(2, 2);
  const net::ArcticModel net;
  return perf::measure_model(cfg, net, perf::MachineShape{2, 2}, /*steps=*/2,
                             /*warmup=*/1, cap);
}

TEST(Observability, TracingIsTimingInvisible) {
  perf::TraceCapture cap;
  const perf::ModelMeasurement plain = measure_small(nullptr);
  const perf::ModelMeasurement traced = measure_small(&cap);
  // Bit-identical measurements: tracing only reads the virtual clock.
  EXPECT_EQ(plain.step_us, traced.step_us);
  EXPECT_EQ(plain.tps_us, traced.tps_us);
  EXPECT_EQ(plain.tds_us, traced.tds_us);
  EXPECT_EQ(plain.ni, traced.ni);
  EXPECT_EQ(plain.aggregate_gflops, traced.aggregate_gflops);
  EXPECT_EQ(plain.params.ps.nps, traced.params.ps.nps);
  ASSERT_EQ(cap.tracers.size(), 4u);
  for (const Tracer& t : cap.tracers) EXPECT_FALSE(t.events().empty());
}

TEST(Observability, JsonExportIsDeterministic) {
  const std::string p1 = ::testing::TempDir() + "hyades_det1.trace.json";
  const std::string p2 = ::testing::TempDir() + "hyades_det2.trace.json";
  for (const std::string& p : {p1, p2}) {
    perf::TraceCapture cap;
    (void)measure_small(&cap);
    std::vector<const Tracer*> ptrs;
    for (const Tracer& t : cap.tracers) ptrs.push_back(&t);
    write_trace_json(p, ptrs, cap.procs_per_smp);
  }
  const std::string s1 = slurp(p1), s2 = slurp(p2);
  ASSERT_FALSE(s1.empty());
  EXPECT_EQ(s1, s2);  // identical runs produce byte-identical traces
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(Observability, WaitAttributionMatchesAccounting) {
  perf::TraceCapture cap;
  (void)measure_small(&cap);
  std::vector<const Tracer*> ptrs;
  for (const Tracer& t : cap.tracers) ptrs.push_back(&t);
  const std::vector<RankBreakdown> rows = wait_attribution(ptrs, cap.acct);
  ASSERT_EQ(rows.size(), 4u);
  for (const RankBreakdown& b : rows) {
    // The traced comm spans and the Accounting buckets see the same
    // intervals: totals agree to well under a microsecond per rank.
    EXPECT_NEAR(b.traced_comm_us(), b.comm_us, 1.0) << "rank " << b.rank;
    EXPECT_DOUBLE_EQ(b.total_us, b.compute_us + b.comm_us);
    EXPECT_GE(b.imbalance_us, 0.0);
    EXPECT_LE(b.imbalance_us, b.comm_us + 1e-9);
    EXPECT_GT(b.compute_us, 0.0);
  }
  // Printing must not throw and mentions every rank.
  std::ostringstream os;
  print_wait_attribution(os, rows, 2.0);
  for (const RankBreakdown& b : rows) {
    EXPECT_NE(os.str().find(Table::fmt_int(b.rank)), std::string::npos);
  }
}

TEST(Observability, SolverSpansCountIterations) {
  perf::TraceCapture cap;
  const perf::ModelMeasurement m = measure_small(&cap);
  const SpanCounters cg = cap.tracers[0].counters("ds_cg_iter");
  // One span per converged CG iteration, each counting itself.
  EXPECT_DOUBLE_EQ(cg.cg_iterations, m.ni * static_cast<double>(m.steps));
  const SpanCounters ex = cap.tracers[0].counters("exchange");
  EXPECT_GT(ex.bytes, 0);
}

// ---- metrics registry ----------------------------------------------------

TEST(Metrics, RegistryBasics) {
  metrics::Registry r;
  EXPECT_FALSE(r.has("a"));
  EXPECT_DOUBLE_EQ(r.get("a"), 0.0);
  r.inc("a", 2.0);
  r.inc("a", 3.0);
  r.inc("b");
  r.set("c", 7.0);
  r.set("a", 10.0);
  EXPECT_TRUE(r.has("a"));
  EXPECT_DOUBLE_EQ(r.get("a"), 10.0);
  EXPECT_DOUBLE_EQ(r.get("b"), 1.0);
  EXPECT_DOUBLE_EQ(r.get("c"), 7.0);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r.entries()[0].name, "a");  // insertion order preserved
  EXPECT_EQ(r.entries()[2].name, "c");
  const metrics::Registry half = r.per(2.0);
  EXPECT_DOUBLE_EQ(half.get("a"), 5.0);
  r.clear();
  EXPECT_EQ(r.size(), 0u);
}

TEST(Metrics, AggregateTakesUnionAcrossRanks) {
  metrics::Registry r0, r1;
  r0.inc("t", 10.0);
  r0.inc("only0", 4.0);
  r1.inc("t", 30.0);
  const std::vector<metrics::Rollup> roll =
      metrics::aggregate({&r0, &r1, nullptr});
  ASSERT_EQ(roll.size(), 2u);
  EXPECT_EQ(roll[0].name, "t");
  EXPECT_DOUBLE_EQ(roll[0].min, 10.0);
  EXPECT_DOUBLE_EQ(roll[0].max, 30.0);
  EXPECT_DOUBLE_EQ(roll[0].sum, 40.0);
  EXPECT_DOUBLE_EQ(roll[0].mean, 20.0);
  // A rank missing a counter contributes 0 (and widens the min).
  EXPECT_EQ(roll[1].name, "only0");
  EXPECT_DOUBLE_EQ(roll[1].min, 0.0);
  EXPECT_DOUBLE_EQ(roll[1].max, 4.0);
  EXPECT_DOUBLE_EQ(roll[1].mean, 2.0);
}

TEST(Metrics, TraceMetricsFlattenCountersPerOp) {
  Tracer t;
  SpanCounters ctr;
  ctr.bytes = 100;
  t.record("exchange", SpanCat::kExchange, 0.0, 4.0, ctr);
  t.record("exchange", SpanCat::kExchange, 4.0, 10.0, ctr);
  t.record("ps", SpanCat::kPhase, 0.0, 50.0);
  const metrics::Registry reg = trace_metrics(t);
  EXPECT_DOUBLE_EQ(reg.get("time_us.exchange"), 10.0);
  EXPECT_DOUBLE_EQ(reg.get("count.exchange"), 2.0);
  EXPECT_DOUBLE_EQ(reg.get("bytes.exchange"), 200.0);
  EXPECT_DOUBLE_EQ(reg.get("time_us.ps"), 50.0);
  EXPECT_FALSE(reg.has("bytes.ps"));
}

}  // namespace
}  // namespace hyades::cluster
