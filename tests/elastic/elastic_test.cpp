// Elastic-membership suite (tier2 + aggregate label `elastic_tests`):
// per-tile durable checkpoints as independently loadable units, live
// tile migration onto surviving boards after a NodeDown verdict, and
// hot node join handing migrated tiles back mid-campaign.  The
// governing invariant is the same as the hard-failure suite's, with a
// sharper clock: recovery by migration costs strictly less virtual time
// than restarting the world, and neither recovery nor rebalance ever
// costs bits.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/fault.hpp"
#include "cluster/runtime.hpp"
#include "cluster/trace.hpp"
#include "gcm/decomp.hpp"
#include "gcm/model.hpp"
#include "gcm/resilient.hpp"
#include "gcm/state.hpp"
#include "gcm/tile_ckpt.hpp"
#include "support/logging.hpp"
#include "tests/gcm/gcm_test_util.hpp"

namespace hyades {
namespace {

namespace fs = std::filesystem;

struct QuietLog {
  LogLevel before = log_level();
  QuietLog() { set_log_level(LogLevel::kError); }
  ~QuietLog() { set_log_level(before); }
};

bool bits_equal(const double* a, const double* b, std::size_t n) {
  return std::memcmp(a, b, n * sizeof(double)) == 0;
}

void expect_state_bits_equal(const gcm::State& a, const gcm::State& b,
                             const char* what) {
  EXPECT_TRUE(bits_equal(a.u.data(), b.u.data(), a.u.size())) << what << " u";
  EXPECT_TRUE(bits_equal(a.v.data(), b.v.data(), a.v.size())) << what << " v";
  EXPECT_TRUE(bits_equal(a.w.data(), b.w.data(), a.w.size())) << what << " w";
  EXPECT_TRUE(bits_equal(a.theta.data(), b.theta.data(), a.theta.size()))
      << what << " theta";
  EXPECT_TRUE(bits_equal(a.salt.data(), b.salt.data(), a.salt.size()))
      << what << " salt";
  EXPECT_TRUE(bits_equal(a.ps.data(), b.ps.data(), a.ps.size()))
      << what << " ps";
  EXPECT_TRUE(bits_equal(a.gu_nm1.data(), b.gu_nm1.data(), a.gu_nm1.size()))
      << what << " gu_nm1";
  EXPECT_EQ(a.step, b.step) << what;
}

std::string ckpt_prefix_for(const char* name) {
  return (fs::temp_directory_path() / name).string();
}

// One resilient gyre run parameterized by recovery mode, collecting
// every rank's final state plus the runtime's summed elastic
// accounting.
struct ElasticRun {
  gcm::ResilientStats stats;
  std::map<int, gcm::State> state;  // by rank
  std::int64_t restarts = 0;        // accounting: restart charges
  std::int64_t migrations = 0;      // accounting: tiles adopted
  std::int64_t rebalances = 0;      // accounting: tiles handed back
  Microseconds restart_us = 0;
  Microseconds migrate_us = 0;
  Microseconds busy_us = 0;  // slowest rank's final virtual clock
};

ElasticRun run_elastic_gyre(int steps, const cluster::FaultPlan* plan,
                            const char* ckpt_name, int smp_count,
                            int procs_per_smp, gcm::RecoveryMode mode,
                            std::vector<cluster::Tracer>* tracers = nullptr,
                            int max_restarts = 3) {
  gcm::ModelConfig cfg = gcm::testing::small_ocean(2, 2);
  cfg.topography = gcm::ModelConfig::Topography::kBasin;

  cluster::MachineConfig mc;
  mc.smp_count = smp_count;
  mc.procs_per_smp = procs_per_smp;
  mc.interconnect = &gcm::testing::test_net();
  mc.faults = plan;
  cluster::Runtime rt(mc);

  gcm::ResilientConfig rcfg;
  rcfg.ckpt_prefix = ckpt_prefix_for(ckpt_name);
  rcfg.ckpt_every = 3;
  rcfg.max_restarts = max_restarts;
  rcfg.recovery = mode;
  rcfg.tracers = tracers;

  ElasticRun out;
  std::mutex mu;
  rcfg.on_complete = [&](cluster::RankContext& ctx, gcm::Model& m) {
    std::lock_guard<std::mutex> lock(mu);
    out.state.emplace(ctx.rank(), m.state());
    out.busy_us = std::max(out.busy_us, ctx.clock().now());
  };
  out.stats = gcm::run_resilient(rt, cfg, steps, rcfg);
  for (const cluster::Accounting& a : rt.accounting()) {
    out.restarts += a.restarts;
    out.migrations += a.migrations;
    out.rebalances += a.rebalances;
    out.restart_us += a.restart_us;
    out.migrate_us += a.migrate_us;
  }
  gcm::tile_ckpt::remove_slots(rcfg.ckpt_prefix, mc.nranks());
  return out;
}

// ---------------------------------------------------------------------------
// The tile store: per-tile files as independently loadable units.

gcm::State make_tile_state(const gcm::ModelConfig& cfg, long step,
                           double stamp) {
  const gcm::Decomp dec(cfg, 0);
  gcm::State s;
  s.allocate(dec, cfg.nz);
  for (std::size_t i = 0; i < s.u.size(); ++i) {
    s.u.data()[i] = stamp + static_cast<double>(i);
  }
  for (std::size_t i = 0; i < s.theta.size(); ++i) {
    s.theta.data()[i] = 2.0 * stamp - static_cast<double>(i);
  }
  s.step = step;
  return s;
}

TEST(TileStore, PathCompositionIsTheModulesJob) {
  const std::string prefix = "/scratch/run";
  EXPECT_EQ(gcm::tile_ckpt::slot_prefix(prefix, 0), "/scratch/run.a");
  EXPECT_EQ(gcm::tile_ckpt::slot_prefix(prefix, 1), "/scratch/run.b");
  EXPECT_EQ(gcm::tile_ckpt::rank_path("/scratch/run.a", 3),
            "/scratch/run.a.rank3");
}

TEST(TileStore, SaveLoadRoundTripsOneTileBitExactly) {
  const gcm::ModelConfig cfg = gcm::testing::small_ocean(1, 1);
  const std::string path =
      gcm::tile_ckpt::rank_path(ckpt_prefix_for("hyades_el_tile"), 0);
  const gcm::State wrote = make_tile_state(cfg, 7, 0.5);
  gcm::tile_ckpt::save(path, cfg, wrote);
  EXPECT_EQ(gcm::tile_ckpt::peek_step(path), 7);

  gcm::State read = make_tile_state(cfg, 0, 0.0);
  gcm::tile_ckpt::load(path, cfg, &read);
  expect_state_bits_equal(wrote, read, "tile-roundtrip");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  fs::remove(path);
}

TEST(TileStore, NewestRankCkptSearchesBothSlotsUnderACeiling) {
  const gcm::ModelConfig cfg = gcm::testing::small_ocean(1, 1);
  const std::string prefix = ckpt_prefix_for("hyades_el_newest");
  const gcm::State at3 = make_tile_state(cfg, 3, 1.0);
  const gcm::State at6 = make_tile_state(cfg, 6, 2.0);
  gcm::tile_ckpt::save(
      gcm::tile_ckpt::rank_path(gcm::tile_ckpt::slot_prefix(prefix, 1), 0),
      cfg, at3);
  gcm::tile_ckpt::save(
      gcm::tile_ckpt::rank_path(gcm::tile_ckpt::slot_prefix(prefix, 0), 0),
      cfg, at6);

  // Unbounded: the newest of the two slots wins, whichever slot it is.
  gcm::tile_ckpt::TileHit hit =
      gcm::tile_ckpt::newest_rank_ckpt(prefix, 0, 1000);
  EXPECT_EQ(hit.step, 6);
  // A recovery ceiling below it falls back to the older slot.
  hit = gcm::tile_ckpt::newest_rank_ckpt(prefix, 0, 5);
  EXPECT_EQ(hit.step, 3);
  // A ceiling below everything durable: no usable tile.
  hit = gcm::tile_ckpt::newest_rank_ckpt(prefix, 0, 2);
  EXPECT_EQ(hit.step, -1);
  // Other ranks never wrote: nothing to find.
  hit = gcm::tile_ckpt::newest_rank_ckpt(prefix, 1, 1000);
  EXPECT_EQ(hit.step, -1);

  gcm::tile_ckpt::remove_slots(prefix, 2);
  EXPECT_FALSE(fs::exists(
      gcm::tile_ckpt::rank_path(gcm::tile_ckpt::slot_prefix(prefix, 0), 0)));
  EXPECT_FALSE(fs::exists(
      gcm::tile_ckpt::rank_path(gcm::tile_ckpt::slot_prefix(prefix, 1), 0)));
}

TEST(TileStore, ScanSlotDemandsEveryRankAtTheSameStep) {
  const gcm::ModelConfig cfg = gcm::testing::small_ocean(1, 1);
  const std::string prefix = ckpt_prefix_for("hyades_el_scan");
  const std::string slot0 = gcm::tile_ckpt::slot_prefix(prefix, 0);
  gcm::tile_ckpt::save(gcm::tile_ckpt::rank_path(slot0, 0), cfg,
                       make_tile_state(cfg, 9, 1.0));
  // Rank 1 missing: inconsistent.
  gcm::tile_ckpt::SlotScan scan = gcm::tile_ckpt::scan_slot(prefix, 0, 2);
  EXPECT_FALSE(scan.consistent);
  // Rank 1 at a different step: still inconsistent.
  gcm::tile_ckpt::save(gcm::tile_ckpt::rank_path(slot0, 1), cfg,
                       make_tile_state(cfg, 12, 1.0));
  scan = gcm::tile_ckpt::scan_slot(prefix, 0, 2);
  EXPECT_FALSE(scan.consistent);
  // Both at step 9: a usable collective restart point.
  gcm::tile_ckpt::save(gcm::tile_ckpt::rank_path(slot0, 1), cfg,
                       make_tile_state(cfg, 9, 2.0));
  scan = gcm::tile_ckpt::scan_slot(prefix, 0, 2);
  EXPECT_TRUE(scan.consistent);
  EXPECT_EQ(scan.step, 9);
  gcm::tile_ckpt::remove_slots(prefix, 2);
}

// ---------------------------------------------------------------------------
// The .tmp-leak audit: every failure path of the durable writer must
// remove its temporary, and a failed save must never disturb the slot.

TEST(TileStore, FailedSaveNeverLeaksTmpNorDisturbsTheSlot) {
  const gcm::ModelConfig cfg = gcm::testing::small_ocean(1, 1);
  const std::string path =
      gcm::tile_ckpt::rank_path(ckpt_prefix_for("hyades_el_leak"), 0);
  const gcm::State committed = make_tile_state(cfg, 3, 4.0);
  gcm::tile_ckpt::save(path, cfg, committed);

  // Inject a torn write: the hook truncates the temporary between the
  // write and the post-write verify, so the save must throw, remove the
  // temporary, and leave the committed file untouched.
  gcm::tile_ckpt::set_test_corrupt_hook([](const std::string& tmp) {
    std::ofstream truncate(tmp, std::ios::binary | std::ios::trunc);
  });
  const gcm::State next = make_tile_state(cfg, 6, 5.0);
  EXPECT_THROW(gcm::tile_ckpt::save(path, cfg, next), std::runtime_error);
  gcm::tile_ckpt::set_test_corrupt_hook(nullptr);

  EXPECT_FALSE(fs::exists(path + ".tmp")) << "failed save leaked a .tmp";
  ASSERT_TRUE(fs::exists(path));
  EXPECT_EQ(gcm::tile_ckpt::peek_step(path), 3);
  gcm::State still = make_tile_state(cfg, 0, 0.0);
  gcm::tile_ckpt::load(path, cfg, &still);
  expect_state_bits_equal(committed, still, "slot-after-failed-save");
  fs::remove(path);
}

TEST(TileStore, UnopenablePathFailsCleanlyWithoutTmp) {
  const gcm::ModelConfig cfg = gcm::testing::small_ocean(1, 1);
  const std::string path =
      (fs::temp_directory_path() / "hyades_el_no_such_dir" / "ck.rank0")
          .string();
  ASSERT_FALSE(fs::exists(fs::path(path).parent_path()));
  EXPECT_THROW(
      gcm::tile_ckpt::save(path, cfg, make_tile_state(cfg, 1, 1.0)),
      std::runtime_error);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  EXPECT_FALSE(fs::exists(path));
}

// ---------------------------------------------------------------------------
// Live migration: survivors rewind in memory, adopters re-load only the
// dead tiles, and the run finishes bit-identical to the clean one.

TEST(Elastic, NoKillMigrateMatchesEpochRestartBitIdentically) {
  // With no kills scheduled the snapshot ring is pure bookkeeping: the
  // migrate-mode run must be bit-identical to the restart-mode run and
  // charge nothing to the elastic accounts.
  QuietLog quiet;
  const ElasticRun a =
      run_elastic_gyre(10, nullptr, "hyades_el_clean_restart", 4, 1,
                       gcm::RecoveryMode::kEpochRestart);
  const ElasticRun b =
      run_elastic_gyre(10, nullptr, "hyades_el_clean_migrate", 4, 1,
                       gcm::RecoveryMode::kMigrate);
  EXPECT_EQ(b.stats.restarts, 0);
  EXPECT_EQ(b.stats.migrations, 0);
  EXPECT_EQ(b.stats.rebalances, 0);
  EXPECT_EQ(b.migrations, 0);
  EXPECT_EQ(b.migrate_us, 0.0);
  EXPECT_DOUBLE_EQ(a.busy_us, b.busy_us);
  ASSERT_EQ(b.state.size(), 4u);
  for (int rank = 0; rank < 4; ++rank) {
    expect_state_bits_equal(a.state.at(rank), b.state.at(rank),
                            "clean-migrate-vs-restart");
  }
}

TEST(Elastic, NodeKillMigratesTheDeadTileBitIdentically) {
  // Rank 3's node dies early in epoch 0.  Under kMigrate the three
  // survivors rewind from their in-memory rings (no restart charge, no
  // disk), rank 3's tile is adopted from its durable step-0 file by a
  // surviving board, and the run finishes bit-identical to the
  // kill-free run.
  QuietLog quiet;
  cluster::FaultPlan plan;
  plan.node_kills.push_back({/*rank=*/3, /*at_us=*/50.0, /*epoch=*/0});

  const ElasticRun a = run_elastic_gyre(10, nullptr, "hyades_el_mig_clean",
                                        4, 1, gcm::RecoveryMode::kMigrate);
  std::vector<cluster::Tracer> tracers(4);
  const ElasticRun b =
      run_elastic_gyre(10, &plan, "hyades_el_mig_kill", 4, 1,
                       gcm::RecoveryMode::kMigrate, &tracers);
  EXPECT_EQ(b.stats.restarts, 1);  // one recovery event...
  EXPECT_EQ(b.restarts, 0);        // ...but no restart-the-world charge
  EXPECT_EQ(b.restart_us, 0.0);
  EXPECT_EQ(b.stats.migrations, 1);
  EXPECT_EQ(b.migrations, 1);
  EXPECT_GT(b.migrate_us, 0.0);
  ASSERT_EQ(b.stats.verdicts.size(), 1u);
  EXPECT_EQ(b.stats.verdicts[0].rank, 3);
  ASSERT_EQ(b.stats.restart_steps.size(), 1u);
  EXPECT_EQ(b.stats.restart_steps[0], 0);  // died before the first rotation
  ASSERT_EQ(b.stats.recovery_us.size(), 1u);
  EXPECT_GT(b.stats.recovery_us[0], 0.0);
  Microseconds recovery_span = 0;
  for (const cluster::Tracer& t : tracers) {
    recovery_span += t.total_cat(cluster::SpanCat::kNodeDown);
  }
  EXPECT_GT(recovery_span, 0.0);
  ASSERT_EQ(b.state.size(), 4u);
  for (int rank = 0; rank < 4; ++rank) {
    expect_state_bits_equal(a.state.at(rank), b.state.at(rank),
                            "migrate-vs-clean");
  }
}

TEST(Elastic, MidRunKillMigratesFromTheLatestCut) {
  // A kill landing after the first checkpoint rotations must resume
  // from a non-zero cut: survivors rewind their rings to the newest cut
  // the dead rank also made durable -- never all the way to step 0.
  QuietLog quiet;
  const ElasticRun clean = run_elastic_gyre(
      12, nullptr, "hyades_el_mid_clean", 4, 1, gcm::RecoveryMode::kMigrate);
  cluster::FaultPlan plan;
  plan.node_kills.push_back(
      {/*rank=*/1, /*at_us=*/clean.busy_us * 0.7, /*epoch=*/0});
  const ElasticRun b = run_elastic_gyre(12, &plan, "hyades_el_mid_kill", 4,
                                        1, gcm::RecoveryMode::kMigrate);
  EXPECT_EQ(b.stats.restarts, 1);
  EXPECT_EQ(b.stats.migrations, 1);
  ASSERT_EQ(b.stats.restart_steps.size(), 1u);
  EXPECT_GE(b.stats.restart_steps[0], 3);  // past at least one rotation
  ASSERT_EQ(b.state.size(), 4u);
  for (int rank = 0; rank < 4; ++rank) {
    expect_state_bits_equal(clean.state.at(rank), b.state.at(rank),
                            "midkill-vs-clean");
  }
}

TEST(Elastic, SmpKillMigratesEveryHostedTile) {
  // Kills are node-granular: killing rank 2 on a two-way SMP takes rank
  // 3 with it, so migration must adopt *both* tiles onto the surviving
  // board -- and still converge bit-identically.
  QuietLog quiet;
  cluster::FaultPlan plan;
  plan.node_kills.push_back({/*rank=*/2, /*at_us=*/50.0, /*epoch=*/0});

  const ElasticRun a = run_elastic_gyre(10, nullptr, "hyades_el_smp_clean",
                                        2, 2, gcm::RecoveryMode::kMigrate);
  const ElasticRun b = run_elastic_gyre(10, &plan, "hyades_el_smp_kill", 2,
                                        2, gcm::RecoveryMode::kMigrate);
  EXPECT_EQ(b.stats.restarts, 1);
  EXPECT_EQ(b.stats.migrations, 2);
  EXPECT_EQ(b.migrations, 2);
  ASSERT_EQ(b.state.size(), 4u);
  for (int rank = 0; rank < 4; ++rank) {
    expect_state_bits_equal(a.state.at(rank), b.state.at(rank),
                            "smpmigrate-vs-clean");
  }
}

TEST(Elastic, MigrationRecoversStrictlyFasterThanEpochRestart) {
  // The point of the whole subsystem: for the same kill schedule,
  // detection-to-first-post-recovery-step is strictly cheaper under
  // migration (survivors skip the restart penalty and the disk reload;
  // only the adopters pay the migration cost).
  QuietLog quiet;
  cluster::FaultPlan plan;
  plan.node_kills.push_back({/*rank=*/3, /*at_us=*/50.0, /*epoch=*/0});

  const ElasticRun restart =
      run_elastic_gyre(10, &plan, "hyades_el_race_restart", 4, 1,
                       gcm::RecoveryMode::kEpochRestart);
  const ElasticRun migrate =
      run_elastic_gyre(10, &plan, "hyades_el_race_migrate", 4, 1,
                       gcm::RecoveryMode::kMigrate);
  ASSERT_EQ(restart.stats.recovery_us.size(), 1u);
  ASSERT_EQ(migrate.stats.recovery_us.size(), 1u);
  EXPECT_LT(migrate.stats.recovery_us[0], restart.stats.recovery_us[0]);
  // Same bits either way: recovery mode is a scheduling decision.
  ASSERT_EQ(migrate.state.size(), 4u);
  for (int rank = 0; rank < 4; ++rank) {
    expect_state_bits_equal(restart.state.at(rank), migrate.state.at(rank),
                            "migrate-vs-restart-bits");
  }
}

// ---------------------------------------------------------------------------
// Hot join: a replacement board takes the migrated tiles back.

TEST(Elastic, HotJoinHandsMigratedTilesBackBitIdentically) {
  // Rank 3's board dies at t=50 and a replacement board for SMP 3 joins
  // at step 6: the adopted tile is handed home at that cut (one
  // rebalance charged to the moved rank) and the run still finishes
  // bit-identical to the failure-free run.
  QuietLog quiet;
  cluster::FaultPlan plan;
  plan.node_kills.push_back({/*rank=*/3, /*at_us=*/50.0, /*epoch=*/0});
  plan.node_joins.push_back({/*smp=*/3, /*at_step=*/6});

  const ElasticRun a = run_elastic_gyre(12, nullptr, "hyades_el_join_clean",
                                        4, 1, gcm::RecoveryMode::kMigrate);
  const ElasticRun b = run_elastic_gyre(12, &plan, "hyades_el_join_kill", 4,
                                        1, gcm::RecoveryMode::kMigrate);
  EXPECT_EQ(b.stats.restarts, 1);
  EXPECT_EQ(b.stats.migrations, 1);
  EXPECT_EQ(b.stats.rebalances, 1);
  EXPECT_EQ(b.rebalances, 1);
  ASSERT_EQ(b.state.size(), 4u);
  for (int rank = 0; rank < 4; ++rank) {
    expect_state_bits_equal(a.state.at(rank), b.state.at(rank),
                            "hotjoin-vs-clean");
  }
}

TEST(Elastic, JoinWithoutAnyMigrationIsANoOp) {
  // A join scheduled with nothing migrated away must change neither
  // bits nor accounting: every tile is already home.
  QuietLog quiet;
  cluster::FaultPlan plan;
  plan.node_kills.push_back({/*rank=*/3, /*at_us=*/50.0, /*epoch=*/1});
  plan.node_joins.push_back({/*smp=*/0, /*at_step=*/3});
  // (The epoch-1 kill never fires: epoch 0 completes the run.)

  const ElasticRun a = run_elastic_gyre(10, nullptr, "hyades_el_noop_clean",
                                        4, 1, gcm::RecoveryMode::kMigrate);
  const ElasticRun b = run_elastic_gyre(10, &plan, "hyades_el_noop_join", 4,
                                        1, gcm::RecoveryMode::kMigrate);
  EXPECT_EQ(b.stats.restarts, 0);
  EXPECT_EQ(b.stats.rebalances, 0);
  EXPECT_EQ(b.rebalances, 0);
  ASSERT_EQ(b.state.size(), 4u);
  for (int rank = 0; rank < 4; ++rank) {
    expect_state_bits_equal(a.state.at(rank), b.state.at(rank),
                            "noop-join-vs-clean");
  }
}

}  // namespace
}  // namespace hyades
