#include "arctic/crc.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace hyades::arctic {
namespace {

std::vector<std::uint8_t> bytes_of(const char* s) {
  std::vector<std::uint8_t> v(std::strlen(s));
  std::memcpy(v.data(), s, v.size());
  return v;
}

TEST(Crc32, KnownVector) {
  // The canonical IEEE CRC-32 check value.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32({}), 0u); }

TEST(Crc32, IncrementalMatchesOneShot) {
  const auto all = bytes_of("the quick brown fox");
  const auto head = bytes_of("the quick ");
  const auto tail = bytes_of("brown fox");
  EXPECT_EQ(crc32(tail, crc32(head)), crc32(all));
}

TEST(Crc32, DetectsSingleBitFlip) {
  auto data = bytes_of("arctic switch fabric");
  const std::uint32_t good = crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int b = 0; b < 8; ++b) {
      data[i] ^= static_cast<std::uint8_t>(1u << b);
      EXPECT_NE(crc32(data), good) << "undetected flip at " << i << ":" << b;
      data[i] ^= static_cast<std::uint8_t>(1u << b);
    }
  }
}

TEST(Crc32, WordInterfaceIncrementalMatchesOneShot) {
  // The packet CRC chains crc32_words over header words then payload;
  // any split of the stream must give the one-shot result.
  const std::vector<std::uint32_t> all = {0x0BADF00Du, 0xCAFEBABEu, 7u, 0u,
                                          0xFFFFFFFFu, 0x80000001u};
  const std::uint32_t one_shot = crc32_words(all);
  for (std::size_t split = 0; split <= all.size(); ++split) {
    const std::vector<std::uint32_t> head(all.begin(),
                                          all.begin() + static_cast<long>(split));
    const std::vector<std::uint32_t> tail(all.begin() + static_cast<long>(split),
                                          all.end());
    EXPECT_EQ(crc32_words(tail, crc32_words(head)), one_shot)
        << "split at word " << split;
  }
}

TEST(Crc32, WordInterfaceMatchesByteInterface) {
  const std::vector<std::uint32_t> words = {0xDEADBEEFu, 0x12345678u};
  std::vector<std::uint8_t> bytes(8);
  std::memcpy(bytes.data(), words.data(), 8);  // little-endian host
  EXPECT_EQ(crc32_words(words), crc32(bytes));
}

}  // namespace
}  // namespace hyades::arctic
