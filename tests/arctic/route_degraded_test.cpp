// Degraded-mode routing: route-around of dead links/routers, determinism,
// healthy bit-identity with compute_route, and -- the governing property
// -- kUnreachable exactly when the dead set disconnects src from dst,
// checked against an independent BFS over the up*/down* state graph.
#include "arctic/route.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "arctic/fault.hpp"

namespace hyades::arctic {
namespace {

int with_digit(int value, int pos, int d) {
  const int mask = 3 << (2 * pos);
  return (value & ~mask) | (d << (2 * pos));
}

// Independent reachability reference: breadth-first search over states
// (phase, level, router), where phase 0 is climbing (any live up port)
// and phase 1 is descending (any live down port).  A route exists under
// up*/down* routing iff some descending state reaches dst's leaf router.
bool reachable_bfs(int src, int dst, int n_levels, const TopologyHealth& h) {
  const int src_leaf = src >> 2;
  const int dst_leaf = dst >> 2;
  if (h.router_dead(0, src_leaf) || h.router_dead(0, dst_leaf)) return false;
  if (src_leaf == dst_leaf) return true;

  int rpl = 1;
  for (int l = 0; l < n_levels - 1; ++l) rpl *= kRadix;
  std::vector<char> seen(static_cast<std::size_t>(2 * n_levels * rpl), 0);
  auto mark = [&](int phase, int level, int r) {
    char& s = seen[static_cast<std::size_t>((phase * n_levels + level) * rpl + r)];
    const bool fresh = (s == 0);
    s = 1;
    return fresh;
  };

  std::deque<std::array<int, 3>> queue;
  mark(0, 0, src_leaf);
  queue.push_back({0, 0, src_leaf});
  while (!queue.empty()) {
    const auto [phase, level, r] = queue.front();
    queue.pop_front();
    if (phase == 1 && level == 0) {
      if (r == dst_leaf) return true;
      continue;
    }
    if (phase == 0) {
      if (mark(1, level, r)) queue.push_back({1, level, r});  // turn apex
      if (level < n_levels - 1) {
        for (int u = 0; u < kRadix; ++u) {
          if (h.up_link_dead(level, r, u)) continue;
          const int above = with_digit(r, level, u);
          if (h.router_dead(level + 1, above)) continue;
          if (mark(0, level + 1, above)) queue.push_back({0, level + 1, above});
        }
      }
    } else {
      for (int q = 0; q < kRadix; ++q) {
        const int below = with_digit(r, level - 1, q);
        if (h.up_link_dead(level - 1, below, digit(r, level - 1))) continue;
        if (h.router_dead(level - 1, below)) continue;
        if (mark(1, level - 1, below)) queue.push_back({1, level - 1, below});
      }
    }
  }
  return false;
}

TEST(RouteDegraded, HealthyMatchesComputeRouteAllPairs) {
  const int n_levels = 3;
  const TopologyHealth health(n_levels, 16);
  for (int src = 0; src < 64; ++src) {
    for (int dst = 0; dst < 64; ++dst) {
      const Route plain = compute_route(src, dst, n_levels);
      const RoutedPath degraded =
          compute_route_degraded(src, dst, n_levels, health);
      ASSERT_EQ(degraded.status, RouteStatus::kOk) << src << "->" << dst;
      EXPECT_EQ(degraded.route.encode_uproute(), plain.encode_uproute())
          << src << "->" << dst;
      EXPECT_EQ(degraded.route.downroute, plain.downroute)
          << src << "->" << dst;
    }
  }
}

TEST(RouteDegraded, HealthyRandomModeConsumesSameStream) {
  const int n_levels = 3;
  const TopologyHealth health(n_levels, 16);
  SplitMix64 rng_a(42);
  SplitMix64 rng_b(42);
  for (int i = 0; i < 200; ++i) {
    const int src = static_cast<int>(rng_a.next_below(64));
    rng_b.next_below(64);  // keep the streams aligned
    const int dst = 63 - src;
    const Route plain = compute_route(src, dst, n_levels, &rng_a);
    const RoutedPath degraded =
        compute_route_degraded(src, dst, n_levels, health, &rng_b);
    ASSERT_EQ(degraded.status, RouteStatus::kOk);
    EXPECT_EQ(degraded.route.encode_uproute(), plain.encode_uproute());
    EXPECT_EQ(degraded.route.downroute, plain.downroute);
  }
  // Both searches must have drawn the same number of values.
  EXPECT_EQ(rng_a.next(), rng_b.next());
}

TEST(RouteDegraded, RoutesAroundDeadLink) {
  // 64-endpoint tree, 0 -> 4: the deterministic route climbs through
  // level-1 router 1 (pairwise-hash port).  Kill that first-hop cable;
  // the degraded search must pick the next port in fallback order.
  const int n_levels = 3;
  const Route healthy = compute_route(0, 4, n_levels);
  ASSERT_EQ(healthy.up_levels, 1);
  const int healthy_port = healthy.up_ports[0];

  TopologyHealth health(n_levels, 16);
  health.kill_up_link(0, 0, healthy_port);
  const RoutedPath degraded = compute_route_degraded(0, 4, n_levels, health);
  ASSERT_EQ(degraded.status, RouteStatus::kOk);
  EXPECT_EQ(degraded.route.up_ports[0], (healthy_port + 1) & 3);
  EXPECT_TRUE(route_survives(0, 4, degraded.route, health));
  EXPECT_FALSE(route_survives(0, 4, healthy, health));

  // Same dead set => same route, bit for bit.
  const RoutedPath again = compute_route_degraded(0, 4, n_levels, health);
  EXPECT_EQ(again.route.encode_uproute(), degraded.route.encode_uproute());
  EXPECT_EQ(again.route.downroute, degraded.route.downroute);
}

TEST(RouteDegraded, RoutesAroundDeadRouter) {
  const int n_levels = 3;
  const Route healthy = compute_route(0, 4, n_levels);
  TopologyHealth health(n_levels, 16);
  health.kill_router(1, healthy.up_ports[0]);
  const RoutedPath degraded = compute_route_degraded(0, 4, n_levels, health);
  ASSERT_EQ(degraded.status, RouteStatus::kOk);
  EXPECT_NE(degraded.route.up_ports[0], healthy.up_ports[0]);
  EXPECT_TRUE(route_survives(0, 4, degraded.route, health));
}

TEST(RouteDegraded, DeadLeafRouterPartitions) {
  TopologyHealth health(2, 4);
  health.kill_router(0, 0);  // endpoints 0..3 lose their leaf router
  EXPECT_EQ(compute_route_degraded(0, 15, 2, health).status,
            RouteStatus::kUnreachable);
  EXPECT_EQ(compute_route_degraded(15, 2, 2, health).status,
            RouteStatus::kUnreachable);
  // Unrelated traffic still routes.
  EXPECT_EQ(compute_route_degraded(4, 15, 2, health).status, RouteStatus::kOk);
}

TEST(RouteDegraded, AllUpLinksDeadPartitions) {
  // Killing every up cable of leaf router 1 strands endpoints 4..7 from
  // the rest of the tree but leaves same-leaf traffic alive.
  TopologyHealth health(2, 4);
  for (int u = 0; u < kRadix; ++u) health.kill_up_link(0, 1, u);
  EXPECT_EQ(compute_route_degraded(0, 4, 2, health).status,
            RouteStatus::kUnreachable);
  EXPECT_EQ(compute_route_degraded(4, 5, 2, health).status, RouteStatus::kOk);
}

TEST(RouteDegraded, PropertyMatchesReferenceBfs) {
  // Random dead sets over the 64-endpoint tree: the search must report
  // kOk with a surviving route exactly when the reference BFS finds the
  // pair connected, for every seed and both routing modes.
  const int n_levels = 3;
  SplitMix64 rng(0xdeadfab);
  for (int trial = 0; trial < 60; ++trial) {
    TopologyHealth health(n_levels, 16);
    const int link_kills = static_cast<int>(rng.next_below(9));
    for (int i = 0; i < link_kills; ++i) {
      health.kill_up_link(static_cast<int>(rng.next_below(2)),
                          static_cast<int>(rng.next_below(16)),
                          static_cast<int>(rng.next_below(4)));
    }
    const int router_kills = static_cast<int>(rng.next_below(3));
    for (int i = 0; i < router_kills; ++i) {
      health.kill_router(static_cast<int>(rng.next_below(3)),
                         static_cast<int>(rng.next_below(16)));
    }
    for (int pair = 0; pair < 200; ++pair) {
      const int src = static_cast<int>(rng.next_below(64));
      const int dst = static_cast<int>(rng.next_below(64));
      const bool connected = reachable_bfs(src, dst, n_levels, health);
      SplitMix64 route_rng(static_cast<std::uint64_t>(trial * 1000 + pair));
      SplitMix64* mode = (pair % 2 == 0) ? nullptr : &route_rng;
      const RoutedPath routed =
          compute_route_degraded(src, dst, n_levels, health, mode);
      ASSERT_EQ(routed.status == RouteStatus::kOk, connected)
          << "trial " << trial << ": " << src << "->" << dst;
      if (routed.status == RouteStatus::kOk) {
        EXPECT_TRUE(route_survives(src, dst, routed.route, health))
            << "trial " << trial << ": " << src << "->" << dst;
      }
    }
  }
}

TEST(RouteDegraded, RouteSurvivesRejectsWrongDestination) {
  const TopologyHealth health(2, 4);
  const Route r = compute_route(0, 15, 2);
  EXPECT_TRUE(route_survives(0, 15, r, health));
  EXPECT_FALSE(route_survives(0, 14, r, health));
}

TEST(RouteDegraded, SeededLinkKillsDeterministicAndCapped) {
  const auto a = seeded_link_kills(77, 6, 3, 16, 500.0);
  const auto b = seeded_link_kills(77, 6, 3, 16, 500.0);
  ASSERT_EQ(a.size(), 6u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].level, b[i].level);
    EXPECT_EQ(a[i].index, b[i].index);
    EXPECT_EQ(a[i].port, b[i].port);
    EXPECT_DOUBLE_EQ(a[i].at_us, b[i].at_us);
    EXPECT_EQ(a[i].kind, KillEvent::Kind::kLink);
    EXPECT_GE(a[i].level, 0);
    EXPECT_LT(a[i].level, 2);
    EXPECT_GE(a[i].at_us, 0.0);
    EXPECT_LT(a[i].at_us, 500.0);
  }
  // At most one kill per router slot: every schedule is survivable.
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      EXPECT_FALSE(a[i].level == a[j].level && a[i].index == a[j].index);
    }
  }
  // A different seed gives a different schedule.
  const auto c = seeded_link_kills(78, 6, 3, 16, 500.0);
  bool any_differ = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_differ = any_differ || a[i].index != c[i].index ||
                 a[i].level != c[i].level || a[i].port != c[i].port;
  }
  EXPECT_TRUE(any_differ);
  EXPECT_THROW(seeded_link_kills(1, 999, 3, 16, 100.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace hyades::arctic
