#include "arctic/fabric.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/scheduler.hpp"

namespace hyades::arctic {
namespace {

Packet small_packet(std::uint16_t tag = 0, Priority pri = Priority::kLow) {
  Packet p;
  p.priority = pri;
  p.usr_tag = tag;
  p.payload = {0x11111111u, 0x22222222u};
  return p;
}

struct Delivery {
  int node;
  Packet packet;
  sim::SimTime at;
};

struct Rig {
  sim::Scheduler sched;
  Fabric fabric;
  std::vector<Delivery> deliveries;

  explicit Rig(int endpoints, FabricConfig cfg = {})
      : fabric(sched, endpoints, cfg) {
    fabric.set_delivery_handler([this](int node, Packet&& p) {
      deliveries.push_back({node, std::move(p), sched.now()});
    });
  }
};

TEST(Fabric, AllPairsDeliver) {
  Rig rig(16);
  int sent = 0;
  for (int s = 0; s < 16; ++s) {
    for (int d = 0; d < 16; ++d) {
      if (s == d) continue;
      rig.fabric.inject(s, d, small_packet(static_cast<std::uint16_t>(s)));
      ++sent;
    }
  }
  rig.sched.run();
  ASSERT_EQ(static_cast<int>(rig.deliveries.size()), sent);
  // Each delivery arrives at the addressed node with intact payload.
  for (const auto& del : rig.deliveries) {
    EXPECT_EQ(del.node, del.packet.dst);
    EXPECT_EQ(del.packet.usr_tag, del.packet.src);
    EXPECT_FALSE(del.packet.crc_error);
  }
}

TEST(Fabric, AllPairsDeliver64Nodes) {
  Rig rig(64);
  int sent = 0;
  for (int s = 0; s < 64; s += 7) {
    for (int d = 0; d < 64; ++d) {
      if (s == d) continue;
      rig.fabric.inject(s, d, small_packet());
      ++sent;
    }
  }
  rig.sched.run();
  EXPECT_EQ(static_cast<int>(rig.deliveries.size()), sent);
  EXPECT_EQ(rig.fabric.stats().crc_flagged, 0u);
}

TEST(Fabric, SameLeafFasterThanCrossTree) {
  Rig near_rig(16);
  near_rig.fabric.inject(0, 1, small_packet());
  near_rig.sched.run();
  const sim::SimTime near_t = near_rig.deliveries.at(0).at;

  Rig far_rig(16);
  far_rig.fabric.inject(0, 15, small_packet());
  far_rig.sched.run();
  const sim::SimTime far_t = far_rig.deliveries.at(0).at;

  EXPECT_LT(near_t, far_t);
  // Two extra links + two extra stages: expect roughly 0.15*2 + hdr*2 more.
  EXPECT_GT(far_t - near_t, sim::from_us(0.3));
}

TEST(Fabric, FifoOrderingSamePath) {
  Rig rig(16);
  constexpr int kCount = 50;
  for (int i = 0; i < kCount; ++i) {
    rig.fabric.inject(2, 14, small_packet(static_cast<std::uint16_t>(i)));
  }
  rig.sched.run();
  ASSERT_EQ(static_cast<int>(rig.deliveries.size()), kCount);
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(rig.deliveries[static_cast<std::size_t>(i)].packet.usr_tag, i)
        << "FIFO ordering violated at " << i;
  }
}

TEST(Fabric, HighPriorityOvertakesQueuedLow) {
  Rig rig(16);
  // Saturate the path 0->15 with low-priority packets, then inject one
  // high-priority packet; it must not be blocked behind the queued lows.
  rig.sched.schedule_at(0, [&] {
    for (int i = 0; i < 30; ++i) {
      Packet p;
      p.priority = Priority::kLow;
      p.usr_tag = 1;
      p.payload.assign(22, 0u);  // max-size packets queue up
      rig.fabric.inject(0, 15, std::move(p));
    }
    rig.fabric.inject(0, 15, small_packet(2, Priority::kHigh));
  });
  rig.sched.run();
  ASSERT_EQ(rig.deliveries.size(), 31u);
  // The high packet should arrive well before the last low packet.
  std::size_t high_pos = 99;
  for (std::size_t i = 0; i < rig.deliveries.size(); ++i) {
    if (rig.deliveries[i].packet.usr_tag == 2) high_pos = i;
  }
  ASSERT_NE(high_pos, 99u);
  EXPECT_LT(high_pos, 5u);  // overtook nearly the whole low queue
}

TEST(Fabric, CrcCorruptionFlaggedNotDropped) {
  Rig rig(16);
  rig.fabric.corrupt_next_injection();
  rig.fabric.inject(0, 15, small_packet());
  rig.fabric.inject(0, 15, small_packet());
  rig.sched.run();
  ASSERT_EQ(rig.deliveries.size(), 2u);
  EXPECT_TRUE(rig.deliveries[0].packet.crc_error);
  EXPECT_FALSE(rig.deliveries[1].packet.crc_error);
  EXPECT_EQ(rig.fabric.stats().crc_flagged, 1u);
}

TEST(Fabric, CorruptHeaderWordsFlaggedAndStillDelivered) {
  // compute_crc covers the header words too: garbling either one must be
  // flagged just like a payload flip, and the chosen bits (priority,
  // usr-tag LSB) leave the routing fields intact so the packet still
  // reaches its destination.
  for (int word = 0; word < 4; ++word) {
    Rig rig(16);
    rig.fabric.corrupt_next_injection(word);
    rig.fabric.inject(0, 15, small_packet(/*tag=*/4));
    rig.sched.run();
    ASSERT_EQ(rig.deliveries.size(), 1u) << "word " << word;
    EXPECT_EQ(rig.deliveries[0].node, 15) << "word " << word;
    EXPECT_TRUE(rig.deliveries[0].packet.crc_error) << "word " << word;
  }
}

TEST(Fabric, FaultPlanCorruptionDeterministic) {
  auto flagged_serials = [] {
    FabricConfig cfg;
    cfg.faults.corrupt_prob = 0.05;
    Rig rig(16, cfg);
    for (int i = 0; i < 400; ++i) rig.fabric.inject(0, 15, small_packet());
    rig.sched.run();
    std::vector<std::uint64_t> flagged;
    for (const auto& del : rig.deliveries) {
      if (del.packet.crc_error) flagged.push_back(del.packet.serial);
    }
    EXPECT_EQ(rig.fabric.stats().corrupted, flagged.size());
    return flagged;
  };
  const auto first = flagged_serials();
  EXPECT_GT(first.size(), 5u);   // ~20 expected at p=0.05
  EXPECT_LT(first.size(), 60u);
  // Same seed, same injection sequence: bit-identical fault pattern.
  EXPECT_EQ(first, flagged_serials());
}

TEST(Fabric, FaultPlanDropsLosePackets) {
  FabricConfig cfg;
  cfg.faults.drop_prob = 0.02;
  Rig rig(16, cfg);
  for (int i = 0; i < 500; ++i) rig.fabric.inject(0, 15, small_packet());
  rig.sched.run();
  const FabricStats& st = rig.fabric.stats();
  EXPECT_GT(st.dropped, 0u);
  EXPECT_EQ(st.delivered + st.dropped, st.injected);
  EXPECT_EQ(rig.deliveries.size(), st.delivered);
}

TEST(Fabric, FaultPlanStallDelaysButDelivers) {
  auto last_arrival = [](double stall_prob) {
    FabricConfig cfg;
    cfg.faults.stall_prob = stall_prob;
    cfg.faults.stall_us = 2.0;
    Rig rig(16, cfg);
    for (int i = 0; i < 20; ++i) rig.fabric.inject(0, 15, small_packet());
    rig.sched.run();
    EXPECT_EQ(rig.deliveries.size(), 20u);
    return rig.sched.now();
  };
  const sim::SimTime clean = last_arrival(0.0);
  const sim::SimTime stalled = last_arrival(1.0);
  // Every stage held each packet 2 us extra; the tail packet must land
  // at least one full stall later.
  EXPECT_GE(stalled - clean, sim::from_us(2.0));
}

TEST(Fabric, FaultStreamLeavesAdaptiveRoutingUntouched) {
  // The independent-streams requirement: fault decisions are pure hashes
  // of the packet serial and never consume the routing RNG, so the
  // adaptive up-route choices are bit-identical with faults on or off.
  auto uproutes = [](double corrupt_prob) {
    FabricConfig cfg;
    cfg.random_uproute = true;
    cfg.seed = 99;
    cfg.faults.corrupt_prob = corrupt_prob;
    Rig rig(16, cfg);
    for (int i = 0; i < 100; ++i) rig.fabric.inject(0, 15, small_packet());
    rig.sched.run();
    std::map<std::uint64_t, std::uint32_t> by_serial;
    for (const auto& del : rig.deliveries) {
      by_serial[del.packet.serial] = del.packet.uproute;
    }
    return by_serial;
  };
  const auto clean = uproutes(0.0);
  const auto faulty = uproutes(0.3);
  ASSERT_EQ(clean.size(), 100u);
  ASSERT_EQ(faulty.size(), 100u);
  EXPECT_EQ(clean, faulty);
}

TEST(Fabric, RandomUprouteStillDelivers) {
  FabricConfig cfg;
  cfg.random_uproute = true;
  cfg.seed = 99;
  Rig rig(16, cfg);
  for (int i = 0; i < 100; ++i) {
    rig.fabric.inject(0, 15, small_packet(static_cast<std::uint16_t>(i % 16)));
  }
  rig.sched.run();
  EXPECT_EQ(rig.deliveries.size(), 100u);
  for (const auto& del : rig.deliveries) EXPECT_EQ(del.node, 15);
}

TEST(Fabric, BisectionBandwidthFormula) {
  Rig rig(16);
  // Paper Section 2.2: 2 * N * 150 MByte/sec.
  EXPECT_DOUBLE_EQ(rig.fabric.bisection_bandwidth_mbytes_per_sec(),
                   2.0 * 16 * 150.0);
}

TEST(Fabric, DisjointPairsDoNotContend) {
  // "Arctic's fat-tree interconnect can handle multiple simultaneous
  // transfers with undiminished pair-wise bandwidth" (Section 4.1).
  auto run_pairs = [](std::vector<std::pair<int, int>> pairs) {
    Rig rig(16);
    for (int i = 0; i < 20; ++i) {
      for (auto [s, d] : pairs) {
        Packet p;
        p.payload.assign(22, 0u);
        rig.fabric.inject(s, d, std::move(p));
      }
    }
    rig.sched.run();
    return rig.sched.now();
  };
  // 8 disjoint same-leaf pairs take no longer than a single pair.
  const sim::SimTime single = run_pairs({{0, 1}});
  const sim::SimTime many =
      run_pairs({{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}, {10, 11}, {12, 13},
                 {14, 15}});
  EXPECT_EQ(single, many);
}

TEST(Fabric, StatsCountStages) {
  Rig rig(16);
  rig.fabric.inject(0, 1, small_packet());   // 1 stage
  rig.fabric.inject(0, 15, small_packet());  // 3 stages
  rig.sched.run();
  EXPECT_EQ(rig.fabric.stats().injected, 2u);
  EXPECT_EQ(rig.fabric.stats().delivered, 2u);
  EXPECT_EQ(rig.fabric.stats().router_stages, 4u);
}

TEST(Fabric, RejectsBadEndpointsAndFormat) {
  Rig rig(16);
  EXPECT_THROW(rig.fabric.inject(-1, 3, small_packet()), std::out_of_range);
  EXPECT_THROW(rig.fabric.inject(0, 16, small_packet()), std::out_of_range);
  Packet bad;
  bad.payload = {1u};  // below the 2-word minimum
  EXPECT_THROW(rig.fabric.inject(0, 3, std::move(bad)), std::invalid_argument);
}

TEST(Fabric, RoutesAroundScheduledLinkKill) {
  // A fault-plan link kill fires through the virtual clock; traffic
  // injected afterwards routes around the dead cable and still lands.
  FabricConfig cfg;
  const Route healthy = compute_route(0, 15, 2);
  KillEvent kill;
  kill.kind = KillEvent::Kind::kLink;
  kill.level = 0;
  kill.index = 0;
  kill.port = healthy.up_ports[0];
  kill.at_us = 5.0;
  cfg.faults.kills = {kill};
  Rig rig(16, cfg);
  rig.sched.schedule_at(sim::from_us(10.0), [&] {
    for (int i = 0; i < 8; ++i) rig.fabric.inject(0, 15, small_packet());
  });
  rig.sched.run();
  EXPECT_EQ(rig.deliveries.size(), 8u);
  for (const auto& del : rig.deliveries) {
    EXPECT_EQ(del.node, 15);
    EXPECT_FALSE(del.packet.crc_error);
  }
  const FabricStats& st = rig.fabric.stats();
  EXPECT_EQ(st.links_killed, 1u);
  EXPECT_EQ(st.degraded_routes, 8u);
  EXPECT_EQ(st.unreachable_routes, 0u);
}

TEST(Fabric, InFlightPacketLostAtKilledRouter) {
  // A packet routed before the kill is lost when it reaches the dead
  // hardware -- only the end-to-end protocol above can recover it.
  Rig rig(16);
  rig.fabric.inject(0, 15, small_packet());
  KillEvent kill;
  kill.kind = KillEvent::Kind::kRouter;
  kill.level = 1;
  kill.index = compute_route(0, 15, 2).up_ports[0];
  rig.fabric.apply_kill(kill);
  rig.sched.run();
  EXPECT_EQ(rig.deliveries.size(), 0u);
  EXPECT_EQ(rig.fabric.stats().dead_component_drops, 1u);
  EXPECT_EQ(rig.fabric.stats().routers_killed, 1u);
}

TEST(Fabric, UnreachableInjectionThrows) {
  // Killing all four up cables of leaf router 0 strands endpoints 0..3.
  Rig rig(16);
  for (int u = 0; u < kRadix; ++u) {
    KillEvent kill;
    kill.kind = KillEvent::Kind::kLink;
    kill.level = 0;
    kill.index = 0;
    kill.port = u;
    rig.fabric.apply_kill(kill);
  }
  try {
    rig.fabric.inject(0, 15, small_packet());
    FAIL() << "expected UnreachableError";
  } catch (const UnreachableError& e) {
    EXPECT_EQ(e.src, 0);
    EXPECT_EQ(e.dst, 15);
  }
  EXPECT_EQ(rig.fabric.stats().unreachable_routes, 1u);
  // Same-leaf traffic below the dead cables still flows.
  rig.fabric.inject(0, 1, small_packet());
  rig.sched.run();
  EXPECT_EQ(rig.deliveries.size(), 1u);
}

TEST(Fabric, TwoEndpointDegenerateTree) {
  Rig rig(2);
  rig.fabric.inject(0, 1, small_packet());
  rig.fabric.inject(1, 0, small_packet());
  rig.sched.run();
  EXPECT_EQ(rig.deliveries.size(), 2u);
}

}  // namespace
}  // namespace hyades::arctic
