#include "arctic/packet.hpp"

#include <gtest/gtest.h>

namespace hyades::arctic {
namespace {

Packet make_packet(int words = 4) {
  Packet p;
  p.priority = Priority::kHigh;
  p.downroute = 0x1234;
  p.uproute = 0x0ABC;
  p.random_uproute = true;
  p.usr_tag = 0x5F3;
  p.payload.assign(static_cast<std::size_t>(words), 0xCAFEF00Du);
  return p;
}

TEST(Packet, HeaderRoundTrips) {
  const Packet p = make_packet(7);
  const DecodedHeader h = decode_header(p.header_word0(), p.header_word1());
  EXPECT_EQ(h.priority, Priority::kHigh);
  EXPECT_EQ(h.downroute, 0x1234);
  EXPECT_EQ(h.uproute, 0x0ABC);
  EXPECT_TRUE(h.random_uproute);
  EXPECT_EQ(h.usr_tag, 0x5F3);
  EXPECT_EQ(h.size_words, 7);
}

TEST(Packet, WireSizeIncludesHeaderAndCrc) {
  const Packet p = make_packet(4);
  // 8 header bytes + 16 payload bytes + 4 CRC bytes (Figure 1b format).
  EXPECT_EQ(p.wire_bytes(), 28);
  EXPECT_EQ(p.payload_bytes(), 16);
}

TEST(Packet, FormatLimits) {
  EXPECT_TRUE(make_packet(kMinPayloadWords).valid_format());
  EXPECT_TRUE(make_packet(kMaxPayloadWords).valid_format());
  EXPECT_FALSE(make_packet(1).valid_format());
  EXPECT_FALSE(make_packet(23).valid_format());
  Packet p = make_packet();
  p.usr_tag = 1u << 11;  // exceeds the 11-bit field
  EXPECT_FALSE(p.valid_format());
}

TEST(Packet, SealAndVerify) {
  Packet p = make_packet();
  p.seal();
  EXPECT_TRUE(p.crc_ok());
  p.payload[2] ^= 1u;
  EXPECT_FALSE(p.crc_ok());
}

TEST(Packet, CrcCoversHeader) {
  Packet p = make_packet();
  p.seal();
  p.usr_tag ^= 1u;
  EXPECT_FALSE(p.crc_ok());
}

TEST(Packet, LowPriorityHeaderBitClear) {
  Packet p = make_packet();
  p.priority = Priority::kLow;
  EXPECT_EQ(p.header_word0() >> 31, 0u);
}

}  // namespace
}  // namespace hyades::arctic
