#include "arctic/route.hpp"

#include <gtest/gtest.h>

namespace hyades::arctic {
namespace {

TEST(Route, LevelsFor) {
  EXPECT_EQ(levels_for(2), 1);
  EXPECT_EQ(levels_for(4), 1);
  EXPECT_EQ(levels_for(5), 2);
  EXPECT_EQ(levels_for(16), 2);
  EXPECT_EQ(levels_for(17), 3);
  EXPECT_EQ(levels_for(64), 3);
  EXPECT_THROW(levels_for(0), std::invalid_argument);
}

TEST(Route, SameLeafStaysLow) {
  // Nodes 0..3 share the level-0 router in a 16-node tree.
  const Route r = compute_route(1, 2, 2);
  EXPECT_EQ(r.up_levels, 0);
  EXPECT_EQ(r.router_hops(), 1);
  EXPECT_EQ(r.down_port(0), 2);
}

TEST(Route, CrossTreeClimbs) {
  const Route r = compute_route(0, 15, 2);
  EXPECT_EQ(r.up_levels, 1);
  EXPECT_EQ(r.router_hops(), 3);
  EXPECT_EQ(r.down_port(1), 3);  // digit 1 of 15
  EXPECT_EQ(r.down_port(0), 3);  // digit 0 of 15
}

TEST(Route, EncodingRoundTrips) {
  const Route r = compute_route(3, 60, 3);
  const Route d = Route::decode(r.encode_uproute(), r.downroute);
  EXPECT_EQ(d.up_levels, r.up_levels);
  EXPECT_EQ(d.downroute, r.downroute);
  for (int l = 0; l < r.up_levels; ++l) {
    EXPECT_EQ(d.up_ports[static_cast<std::size_t>(l)],
              r.up_ports[static_cast<std::size_t>(l)]);
  }
}

TEST(Route, EncodingRoundTripsAtFullWidth) {
  // Every up-port slot populated with a distinct 2-bit value at the
  // maximum climb height: locks the per-level wire encoding (3 + 2l bit
  // positions) and the indexed port array handling.
  Route r;
  r.up_levels = kMaxLevels;
  for (int l = 0; l < kMaxLevels; ++l) {
    r.up_ports[static_cast<std::size_t>(l)] =
        static_cast<std::uint8_t>((l + 1) & (kRadix - 1));
  }
  r.downroute = 0x2d6;  // arbitrary down digits
  const Route d = Route::decode(r.encode_uproute(), r.downroute);
  EXPECT_EQ(d.up_levels, kMaxLevels);
  EXPECT_EQ(d.downroute, r.downroute);
  for (int l = 0; l < kMaxLevels; ++l) {
    EXPECT_EQ(d.up_ports[static_cast<std::size_t>(l)],
              r.up_ports[static_cast<std::size_t>(l)])
        << "port at level " << l;
  }
}

TEST(Route, DeterministicIsStable) {
  for (int trial = 0; trial < 3; ++trial) {
    const Route a = compute_route(5, 11, 2);
    const Route b = compute_route(5, 11, 2);
    EXPECT_EQ(a.encode_uproute(), b.encode_uproute());
    EXPECT_EQ(a.downroute, b.downroute);
  }
}

TEST(Route, RandomModeChoosesValidPorts) {
  SplitMix64 rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const Route r = compute_route(0, 63, 3, &rng);
    EXPECT_EQ(r.up_levels, 2);
    for (int l = 0; l < r.up_levels; ++l) {
      EXPECT_LT(r.up_ports[static_cast<std::size_t>(l)], kRadix);
    }
  }
}

TEST(Route, HopCountSymmetry) {
  for (int src = 0; src < 16; ++src) {
    for (int dst = 0; dst < 16; ++dst) {
      EXPECT_EQ(router_hops(src, dst, 2), router_hops(dst, src, 2));
    }
  }
}

TEST(Route, HopCountStructure16Nodes) {
  // Same-leaf pairs cross 1 stage; all others cross 3.
  for (int src = 0; src < 16; ++src) {
    for (int dst = 0; dst < 16; ++dst) {
      const int expected = (src / 4 == dst / 4) ? 1 : 3;
      EXPECT_EQ(router_hops(src, dst, 2), expected) << src << "->" << dst;
    }
  }
}

}  // namespace
}  // namespace hyades::arctic
