#include "perf/calibrate.hpp"

#include <gtest/gtest.h>

#include "net/arctic_model.hpp"
#include "net/ethernet.hpp"
#include "perf/perf_model.hpp"
#include "support/stats.hpp"

namespace hyades::perf {
namespace {

// Full 16-processor / 8-SMP production shape throughout, as in Figure 11.

TEST(MeasurePrimitives, ArcticNearFigure11) {
  const net::ArcticModel net;
  const PrimitiveCosts c = measure_primitives(net);
  // tgsum: paper 13.5 us (2x8-way).
  EXPECT_LT(relative_error(c.tgsum, 13.5), 0.10);
  // texchxy: paper 115 us.  Our protocol reproduces the structure
  // (per-phase negotiation + small strips); allow 20%.
  EXPECT_LT(relative_error(c.texchxy, 115.0), 0.20);
  // texchxyz: paper 1640 us (atmosphere) / 4573 us (ocean).  Shape
  // tolerance 25% (see DESIGN.md on the exchange bandwidth model).
  EXPECT_LT(relative_error(c.texchxyz_atmos, 1640.0), 0.25);
  EXPECT_LT(relative_error(c.texchxyz_ocean, 4573.0), 0.25);
  // And the ocean/atmosphere ratio tracks the level count.
  EXPECT_NEAR(c.texchxyz_ocean / c.texchxyz_atmos, 4573.0 / 1640.0, 0.6);
}

TEST(MeasurePrimitives, EthernetNearFigure12) {
  const auto fe = net::fast_ethernet();
  const PrimitiveCosts cfe = measure_primitives(fe, MachineShape{}, 4);
  EXPECT_LT(relative_error(cfe.tgsum, 942.0), 0.10);
  EXPECT_LT(relative_error(cfe.texchxy, 10008.0), 0.25);
  EXPECT_LT(relative_error(cfe.texchxyz_atmos, 100000.0), 0.30);

  const auto ge = net::gigabit_ethernet();
  const PrimitiveCosts cge = measure_primitives(ge, MachineShape{}, 4);
  EXPECT_LT(relative_error(cge.tgsum, 1193.0), 0.10);
  EXPECT_LT(relative_error(cge.texchxy, 1789.0), 0.30);
  EXPECT_LT(relative_error(cge.texchxyz_atmos, 5742.0), 0.30);
}

TEST(MeasureModel, AtmosphereObservablesSane) {
  const net::ArcticModel net;
  gcm::ModelConfig cfg = gcm::atmosphere_preset(4, 4);
  const ModelMeasurement m = measure_model(cfg, net, MachineShape{}, 4);
  // 128*64*10 cells over 16 processors.
  EXPECT_EQ(m.wet_cells, 128 * 64 * 10 / 16);
  EXPECT_EQ(m.wet_columns, 128 * 64 / 16);
  EXPECT_GT(m.params.ps.nps, 100.0);   // our kernel flop density
  EXPECT_LT(m.params.ps.nps, 781.0);   // below the full-physics paper code
  EXPECT_GT(m.params.ds.nds, 10.0);
  EXPECT_LT(m.params.ds.nds, 60.0);
  EXPECT_GT(m.ni, 3.0);
  EXPECT_GT(m.step_us, 0.0);
  EXPECT_GT(m.aggregate_gflops, 0.0);
}

TEST(MeasureModel, AnalyticModelPredictsSimulatedRun) {
  // The Section 5.3 validation, internally: evaluate Eqs. 4-13 with the
  // *measured* parameters and compare against the simulated wall clock.
  const net::ArcticModel net;
  gcm::ModelConfig cfg = gcm::atmosphere_preset(4, 4);
  const int steps = 4;
  const ModelMeasurement m = measure_model(cfg, net, MachineShape{}, steps);
  const Microseconds predicted = trun(m.params, steps, m.ni) / steps;
  EXPECT_LT(relative_error(predicted, m.step_us), 0.10)
      << "predicted " << predicted << " us/step, simulated " << m.step_us;
}

TEST(MeasureModel, RejectsMismatchedShape) {
  const net::ArcticModel net;
  gcm::ModelConfig cfg = gcm::atmosphere_preset(2, 2);
  EXPECT_THROW(measure_model(cfg, net, MachineShape{}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace hyades::perf
