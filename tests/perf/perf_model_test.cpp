#include "perf/perf_model.hpp"

#include <gtest/gtest.h>

#include "support/stats.hpp"
#include "support/units.hpp"

namespace hyades::perf {
namespace {

// These tests pin the model to the paper's own published arithmetic.

TEST(PerfModel, Figure11AtmosphereComputeTimes) {
  const PerfParams p = paper_atmosphere();
  // Nps*nxyz/Fps = 781*5120/50 us ~ 80 ms per PS phase.
  EXPECT_NEAR(tps_compute(p.ps), 781.0 * 5120.0 / 50.0, 1e-9);
  EXPECT_NEAR(tps_exch(p.ps), 5.0 * 1640.0, 1e-9);
  EXPECT_NEAR(tds_compute(p.ds), 36.0 * 1024.0 / 60.0, 1e-9);
  EXPECT_NEAR(tds_gsum(p.ds), 27.0, 1e-9);
  EXPECT_NEAR(tds_exch(p.ds), 230.0, 1e-9);
}

TEST(PerfModel, Section53PredictedCommunicationTime) {
  // "The predicted total communication time ... is 30.1 minutes."
  const PerfParams p = paper_atmosphere();
  const double minutes = us_to_minutes(tcomm(p, kPaperNt, kPaperNi));
  EXPECT_NEAR(minutes, 30.1, 0.6);
}

TEST(PerfModel, Section53PredictedComputationTime) {
  // "the predicted Tcomp is 151 minutes."
  const PerfParams p = paper_atmosphere();
  const double minutes = us_to_minutes(tcomp(p, kPaperNt, kPaperNi));
  EXPECT_NEAR(minutes, 151.0, 1.0);
}

TEST(PerfModel, Section53TotalNearObserved183) {
  // "Tcomm and Tcomp total to 181 minutes which agrees well with the
  // observed 183 minutes of wall-clock time."
  const PerfParams p = paper_atmosphere();
  const double total = us_to_minutes(tcomm(p, kPaperNt, kPaperNi)) +
                       us_to_minutes(tcomp(p, kPaperNt, kPaperNi));
  EXPECT_NEAR(total, 181.0, 1.5);
  EXPECT_LT(relative_error(total, 183.0), 0.02);
  // Consistency: trun == tcomm + tcomp by construction of Eqs. 11-13.
  EXPECT_NEAR(us_to_minutes(trun(p, kPaperNt, kPaperNi)), total, 1e-6);
}

TEST(PerfModel, Figure12PfppArctic) {
  const PerfParams p = paper_atmosphere();
  EXPECT_LT(relative_error(pfpp_ps(p.ps), 487.0), 0.01);
  EXPECT_LT(relative_error(pfpp_ds(p.ds), 143.0), 0.01);
}

TEST(PerfModel, Figure12PfppFastEthernet) {
  const PerfParams p =
      with_interconnect(paper_atmosphere(), paper_fast_ethernet());
  EXPECT_LT(relative_error(pfpp_ps(p.ps), 8.0), 0.01);
  EXPECT_LT(relative_error(pfpp_ds(p.ds), 1.6), 0.06);
}

TEST(PerfModel, Figure12PfppGigabitEthernet) {
  const PerfParams p =
      with_interconnect(paper_atmosphere(), paper_gigabit_ethernet());
  EXPECT_LT(relative_error(pfpp_ps(p.ps), 139.0), 0.01);
  EXPECT_LT(relative_error(pfpp_ds(p.ds), 6.2), 0.01);
}

TEST(PerfModel, Section54GigabitThresholdClaim) {
  // "To achieve Pfpp_ds of 60 MFlop/sec, the sum of tgsum and texchxy
  // cannot exceed 306 usec" -- check the algebra: Nds*nxy/(2*306) ~ 60.
  const DsParams ds{36.0, 1024.0, 0.0, 306.0, 60.0};
  DsParams at_threshold = ds;
  at_threshold.tgsum = 0.0;
  at_threshold.texchxy = 306.0;  // tgsum + texchxy == 306
  EXPECT_NEAR(pfpp_ds(at_threshold), 60.2, 0.5);
  // And Gigabit Ethernet is "nearly a factor of ten away": its sum is
  // 1193 + 1789 = 2982 us.
  const InterconnectCosts ge = paper_gigabit_ethernet();
  EXPECT_NEAR((ge.tgsum + ge.texchxy) / 306.0, 9.7, 0.3);
}

TEST(PerfModel, SustainedRateMatchesFigure10Scale) {
  // 16-processor sustained per-processor rate times 16 should land in
  // the 0.7-0.9 GFlop/s band the paper reports for Hyades (0.8).
  const PerfParams atm = paper_atmosphere();
  const double agg16 = 16.0 * sustained_mflops(atm, kPaperNi) / 1.0e3;
  EXPECT_GT(agg16, 0.65);
  EXPECT_LT(agg16, 0.90);
}

TEST(PerfModel, OceanParamsGiveSimilarProfile) {
  // "Because it is based on the same kernel, the atmospheric counterpart
  // has an almost identical profile": per-processor sustained rates of
  // the two isomorphs within ~20%.
  const double a = sustained_mflops(paper_atmosphere(), kPaperNi);
  const double o = sustained_mflops(paper_ocean(), kPaperNi);
  EXPECT_LT(relative_error(a, o), 0.20);
}

TEST(PerfModel, PfppMonotoneInCommCost) {
  PhaseParams ps = paper_atmosphere().ps;
  const double base = pfpp_ps(ps);
  ps.texchxyz *= 2.0;
  EXPECT_NEAR(pfpp_ps(ps), base / 2.0, 1e-9);
}

TEST(PerfModel, WithInterconnectOnlyTouchesCommCosts) {
  const PerfParams base = paper_atmosphere();
  const PerfParams fe = with_interconnect(base, paper_fast_ethernet());
  EXPECT_EQ(fe.ps.nps, base.ps.nps);
  EXPECT_EQ(fe.ds.nds, base.ds.nds);
  EXPECT_EQ(fe.ps.texchxyz, 100000.0);
  EXPECT_EQ(fe.ds.tgsum, 942.0);
}

}  // namespace
}  // namespace hyades::perf
