// Tier-2 robustness suite: the end-to-end reliability protocol, the
// regression-locked fault-tolerance invariant (recoverable faults change
// only virtual timing, never the model state), checkpoint/rollback
// recovery, and the rate-limited recovery logging.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <mutex>
#include <vector>

#include "cluster/fault.hpp"
#include "cluster/runtime.hpp"
#include "comm/comm.hpp"
#include "comm/reliable.hpp"
#include "gcm/cg.hpp"
#include "gcm/model.hpp"
#include "net/arctic_model.hpp"
#include "support/logging.hpp"
#include "tests/gcm/gcm_test_util.hpp"

namespace hyades {
namespace {

// gcm::testing::run_ranks with a FaultPlan attached to the machine.
template <typename Fn>
void run_faulty(int nranks, const cluster::FaultPlan& plan, Fn&& body) {
  cluster::MachineConfig mc;
  mc.smp_count = nranks;
  mc.procs_per_smp = 1;
  mc.interconnect = &gcm::testing::test_net();
  mc.faults = &plan;
  cluster::Runtime rt(mc);
  rt.run([&](cluster::RankContext& ctx) {
    comm::Comm comm(ctx);
    body(ctx, comm);
  });
}

// Keep fault-storm warnings out of the test log.
struct QuietLog {
  LogLevel before = log_level();
  QuietLog() { set_log_level(LogLevel::kError); }
  ~QuietLog() { set_log_level(before); }
};

bool bits_equal(const double* a, const double* b, std::size_t n) {
  return std::memcmp(a, b, n * sizeof(double)) == 0;
}

// Bitwise comparison of the prognostic state (the fields a checkpoint
// carries and the invariant protects).
void expect_state_bits_equal(const gcm::State& a, const gcm::State& b,
                             const char* what) {
  EXPECT_TRUE(bits_equal(a.u.data(), b.u.data(), a.u.size())) << what << " u";
  EXPECT_TRUE(bits_equal(a.v.data(), b.v.data(), a.v.size())) << what << " v";
  EXPECT_TRUE(bits_equal(a.w.data(), b.w.data(), a.w.size())) << what << " w";
  EXPECT_TRUE(bits_equal(a.theta.data(), b.theta.data(), a.theta.size()))
      << what << " theta";
  EXPECT_TRUE(bits_equal(a.salt.data(), b.salt.data(), a.salt.size()))
      << what << " salt";
  EXPECT_TRUE(bits_equal(a.ps.data(), b.ps.data(), a.ps.size()))
      << what << " ps";
  EXPECT_TRUE(
      bits_equal(a.gu_nm1.data(), b.gu_nm1.data(), a.gu_nm1.size()))
      << what << " gu_nm1";
  EXPECT_EQ(a.step, b.step) << what;
}

// Run `steps` of a small closed-basin (gyre) ocean under `plan`,
// collecting every rank's final state and summed fault accounting.
struct GyreRun {
  std::map<int, gcm::State> state;       // by rank
  std::uint64_t retransmits = 0;         // summed over ranks (sender side)
  std::uint64_t crc_rejects = 0;         // summed (receiver side)
  std::uint64_t drops_detected = 0;
  Microseconds retrans_us = 0;
  int rollbacks = 0;
};

GyreRun run_gyre(int steps, const cluster::FaultPlan& plan,
                 int retry_budget = -1, int checkpoint_interval = 0) {
  gcm::ModelConfig cfg = gcm::testing::small_ocean(2, 2);
  cfg.topography = gcm::ModelConfig::Topography::kBasin;
  cfg.retry_budget = retry_budget;
  cfg.checkpoint_interval = checkpoint_interval;
  GyreRun out;
  std::mutex mu;
  run_faulty(4, plan, [&](cluster::RankContext& ctx, comm::Comm& comm) {
    gcm::Model m(cfg, comm);
    m.initialize();
    const gcm::Model::RunStats rs = m.run(steps);
    const comm::ReliableStats& fs = comm.fault_stats();
    std::lock_guard<std::mutex> lock(mu);
    out.state.emplace(ctx.rank(), m.state());
    out.retransmits += fs.retransmits;
    out.crc_rejects += fs.crc_rejects;
    out.drops_detected += fs.drops_detected;
    out.retrans_us += fs.retrans_us;
    out.rollbacks = std::max(out.rollbacks, rs.rollbacks);
  });
  return out;
}

TEST(FaultPlan, FateIsAPureFunction) {
  cluster::FaultPlan plan;
  plan.seed = 42;
  plan.corrupt_prob = 0.2;
  plan.drop_prob = 0.1;
  int corrupt = 0, drop = 0;
  for (std::uint64_t serial = 0; serial < 2000; ++serial) {
    const auto f = plan.fate(0, 1, serial, 0);
    EXPECT_EQ(f, plan.fate(0, 1, serial, 0));  // repeatable
    if (f == cluster::FaultPlan::Fate::kCorrupt) ++corrupt;
    if (f == cluster::FaultPlan::Fate::kDrop) ++drop;
  }
  // Rates in the right ballpark (loose 3-sigma-ish bounds).
  EXPECT_GT(corrupt, 300);
  EXPECT_LT(corrupt, 520);
  EXPECT_GT(drop, 120);
  EXPECT_LT(drop, 290);
  // Different keys give a different stream.
  int agree = 0;
  for (std::uint64_t serial = 0; serial < 2000; ++serial) {
    if (plan.fate(0, 1, serial, 0) == plan.fate(1, 0, serial, 0)) ++agree;
  }
  EXPECT_LT(agree, 2000);
}

TEST(FaultPlan, BackoffIsCappedExponential) {
  cluster::FaultPlan plan;
  plan.backoff_us = 25.0;
  plan.backoff_max_us = 800.0;
  EXPECT_DOUBLE_EQ(plan.backoff(0), 0.0);
  EXPECT_DOUBLE_EQ(plan.backoff(1), 25.0);
  EXPECT_DOUBLE_EQ(plan.backoff(2), 50.0);
  EXPECT_DOUBLE_EQ(plan.backoff(3), 100.0);
  EXPECT_DOUBLE_EQ(plan.backoff(6), 800.0);   // 25 * 2^5 = 800: at cap
  EXPECT_DOUBLE_EQ(plan.backoff(7), 800.0);   // capped
  EXPECT_DOUBLE_EQ(plan.backoff(60), 800.0);  // no overflow at the cap
}

TEST(Reliable, TimeoutAndBackoffScheduling) {
  // The receiver's arrival stamp must equal the fault-free stamp plus
  // the per-attempt NAK / timeout / backoff / retransfer costs -- walked
  // here independently from the same pure fate function.
  QuietLog quiet;
  cluster::FaultPlan plan;
  plan.seed = 7;
  plan.corrupt_prob = 0.25;
  plan.drop_prob = 0.25;
  constexpr int kMessages = 40;
  constexpr int kWords = 64;
  constexpr Microseconds kStamp = 1000.0;

  const net::Interconnect& net = gcm::testing::test_net();
  const Microseconds nak_us = net.small_message(8).half_rtt();
  const Microseconds resend_us =
      net.transfer_time(kWords * static_cast<std::int64_t>(sizeof(double)));

  run_faulty(2, plan, [&](cluster::RankContext& ctx, comm::Comm&) {
    comm::Reliable rel(ctx);
    if (ctx.rank() == 0) {
      for (int i = 0; i < kMessages; ++i) {
        rel.send(1, /*tag=*/5, std::vector<double>(kWords, i), kStamp);
      }
      return;
    }
    std::uint64_t ghosts_seen = 0, drops_seen = 0;
    for (int i = 0; i < kMessages; ++i) {
      const cluster::Message m = rel.recv(0, /*tag=*/5);
      // Payload intact despite the recovery episode.
      ASSERT_EQ(m.data.size(), static_cast<std::size_t>(kWords));
      EXPECT_EQ(m.data[0], static_cast<double>(i));
      EXPECT_FALSE(m.crc_error);
      // Walk the expected schedule from the same pure fates.
      Microseconds expect = kStamp;
      int attempt = 0;
      for (;; ++attempt) {
        const auto f = plan.fate(0, 1, static_cast<std::uint64_t>(i), attempt);
        if (f == cluster::FaultPlan::Fate::kOk) break;
        if (f == cluster::FaultPlan::Fate::kCorrupt) {
          ++ghosts_seen;
          expect += nak_us + plan.backoff(attempt + 1) + resend_us;
        } else {
          ++drops_seen;
          expect += plan.timeout_us + nak_us + plan.backoff(attempt + 1) +
                    resend_us;
        }
      }
      EXPECT_EQ(m.attempt, attempt);
      EXPECT_NEAR(m.stamp_us, expect, 1e-9) << "message " << i;
      EXPECT_NEAR(m.recovery_us, expect - kStamp, 1e-9);
      EXPECT_NEAR(m.clean_stamp(), kStamp, 1e-9);
    }
    const comm::ReliableStats& st = rel.stats();
    EXPECT_EQ(st.crc_rejects, ghosts_seen);
    EXPECT_EQ(st.drops_detected, drops_seen);
    EXPECT_GT(ghosts_seen + drops_seen, 10u);  // the storm actually stormed
    EXPECT_EQ(ctx.accounting().crc_rejects,
              static_cast<std::int64_t>(ghosts_seen));
    EXPECT_EQ(ctx.accounting().drops_detected,
              static_cast<std::int64_t>(drops_seen));
    EXPECT_GT(ctx.accounting().retrans_us, 0.0);
  });
}

TEST(Reliable, DeliveryFailureCarriesItsFields) {
  // The diagnostic fields must round-trip through construction exactly
  // (regression for the ctor parameter/member disambiguation).
  const comm::DeliveryFailure e(3, 7, 42u, 64);
  EXPECT_EQ(e.rank, 3);
  EXPECT_EQ(e.peer, 7);
  EXPECT_EQ(e.serial, 42u);
  EXPECT_EQ(e.attempts, 64);
  const std::string what = e.what();
  EXPECT_NE(what.find("rank 3"), std::string::npos);
  EXPECT_NE(what.find("serial 42"), std::string::npos);
}

TEST(Solver, SolverDivergenceCarriesItsFields) {
  const gcm::SolverDivergence e("cg2d", 17, 1.5);
  EXPECT_EQ(e.iteration, 17);
  EXPECT_DOUBLE_EQ(e.residual_sq, 1.5);
  EXPECT_NE(std::string(e.what()).find("iteration 17"), std::string::npos);
}

TEST(Reliable, DeadLinkExhaustsAttemptsAndThrows) {
  QuietLog quiet;
  cluster::FaultPlan plan;
  plan.corrupt_prob = 1.0;  // every attempt faulted: the link is dead
  plan.max_attempts = 8;
  EXPECT_THROW(
      run_faulty(2, plan,
                 [&](cluster::RankContext& ctx, comm::Comm&) {
                   if (ctx.rank() != 0) return;
                   comm::Reliable rel(ctx);
                   rel.send(1, 5, std::vector<double>(8, 1.0), 100.0);
                 }),
      comm::DeliveryFailure);
}

TEST(Reliable, WarnRateLimiterEngagesUnderFaultStorm) {
  QuietLog quiet;
  cluster::FaultPlan plan;
  plan.seed = 3;
  plan.corrupt_prob = 0.45;
  run_faulty(2, plan, [&](cluster::RankContext& ctx, comm::Comm&) {
    comm::Reliable rel(ctx);
    if (ctx.rank() == 0) {
      for (int i = 0; i < 4000; ++i) {
        rel.send(1, 5, std::vector<double>(4, 0.0), 100.0);
      }
      return;
    }
    for (int i = 0; i < 4000; ++i) (void)rel.recv(0, 5);
    const comm::ReliableStats& st = rel.stats();
    // ~1800 recovery events against a burst-5/every-256 limiter: the
    // storm must be throttled, not silenced.
    EXPECT_GT(st.warns_emitted, 0u);
    EXPECT_GT(st.warns_suppressed, 100u);
    EXPECT_GT(st.warns_suppressed, 10u * st.warns_emitted);
  });
}

TEST(Robustness, FaultSweepDeterminism) {
  QuietLog quiet;
  cluster::FaultPlan plan;
  plan.seed = 11;
  plan.corrupt_prob = 2e-3;
  plan.drop_prob = 5e-4;
  const GyreRun a = run_gyre(20, plan);
  const GyreRun b = run_gyre(20, plan);
  EXPECT_GT(a.retransmits, 0u);
  // Same seed -> same retransmit count, same recovery cost, same state.
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.crc_rejects, b.crc_rejects);
  EXPECT_EQ(a.drops_detected, b.drops_detected);
  EXPECT_DOUBLE_EQ(a.retrans_us, b.retrans_us);
  for (int r = 0; r < 4; ++r) {
    expect_state_bits_equal(a.state.at(r), b.state.at(r), "rerun");
  }
}

TEST(Robustness, BitIdenticalStateUnderRecoverableFaults) {
  // The governing invariant: a 200-step gyre run at 1e-3 corruption per
  // packet (plus drops) ends in a final prognostic state bit-identical
  // to the fault-free run -- recoverable faults cost only virtual time,
  // and every injected fault shows up in the accounting.
  QuietLog quiet;
  const cluster::FaultPlan clean;  // disabled
  cluster::FaultPlan faulty;
  faulty.seed = 1234;
  faulty.corrupt_prob = 1e-3;
  faulty.drop_prob = 2e-4;
  const GyreRun a = run_gyre(200, clean);
  const GyreRun b = run_gyre(200, faulty);
  EXPECT_EQ(a.retransmits, 0u);
  EXPECT_EQ(a.retrans_us, 0.0);
  EXPECT_GT(b.retransmits, 0u);
  EXPECT_GT(b.retrans_us, 0.0);
  // Every injected fault is accounted: retransmits = rejects + drops.
  EXPECT_EQ(b.retransmits, b.crc_rejects + b.drops_detected);
  for (int r = 0; r < 4; ++r) {
    expect_state_bits_equal(a.state.at(r), b.state.at(r), "faulty-vs-clean");
  }
}

TEST(Robustness, HardFailureKnobsDisabledAreBitIdentical) {
  // The hard-failure machinery (membership heartbeats, reroute
  // penalties, restart costing) must be pure plumbing while no kill is
  // scheduled: a plan that cranks every hard-failure knob but schedules
  // no kills runs the 200-step gyre bit-identically to the fully
  // disabled plan -- same state, zero retransmits, zero degraded sends.
  QuietLog quiet;
  const cluster::FaultPlan clean;  // all disabled
  cluster::FaultPlan knobs;
  knobs.seed = 99;
  knobs.heartbeat_deadline_us = 50.0;
  knobs.dead_peer_probes = 9;
  knobs.restart_cost_us = 123456.0;
  knobs.reroute_penalty_us = 42.0;
  ASSERT_FALSE(knobs.enabled());  // no fates, no kills scheduled
  const GyreRun a = run_gyre(200, clean);
  const GyreRun b = run_gyre(200, knobs);
  EXPECT_EQ(b.retransmits, 0u);
  EXPECT_EQ(b.retrans_us, 0.0);
  for (int r = 0; r < 4; ++r) {
    expect_state_bits_equal(a.state.at(r), b.state.at(r), "knobs-vs-clean");
  }
}

TEST(Robustness, CheckpointRollbackRoundTrip) {
  // With a zero retransmit budget every faulted step is rolled back and
  // replayed (fresh serials draw fresh fates, so replays converge).  The
  // final state must still be bit-identical to the fault-free run.
  QuietLog quiet;
  const cluster::FaultPlan clean;
  cluster::FaultPlan faulty;
  faulty.seed = 77;
  // Low enough that most steps are clean (a zero budget rolls back every
  // faulted step, and replays must converge), high enough that a 60-step
  // run sees several rollbacks.
  faulty.corrupt_prob = 2.5e-4;
  faulty.drop_prob = 5e-5;
  const GyreRun a = run_gyre(60, clean);
  const GyreRun b = run_gyre(60, faulty, /*retry_budget=*/0,
                             /*checkpoint_interval=*/10);
  EXPECT_GT(b.retransmits, 0u);
  EXPECT_GT(b.rollbacks, 0);
  for (int r = 0; r < 4; ++r) {
    expect_state_bits_equal(a.state.at(r), b.state.at(r), "rollback");
  }
}

TEST(Robustness, SolverGuardAbortsOnNaN) {
  // A NaN escaping into the prognostic state must abort the CG solve
  // with a diagnostic, not silently iterate to max_iter on garbage.
  gcm::ModelConfig cfg = gcm::testing::small_ocean(1, 1);
  gcm::testing::run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    gcm::Model m(cfg, comm);
    m.initialize();
    (void)m.step();
    // Poison an interior velocity cell (halo cells would be refreshed by
    // the next exchange on a single-rank periodic tile).
    const auto h = static_cast<std::size_t>(m.decomp().halo);
    m.state().u(h + 2, h + 2, 1) = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW((void)m.step(), gcm::SolverDivergence);
  });
}

TEST(Robustness, StragglerRankRunsConfiguredlySlower) {
  QuietLog quiet;
  cluster::FaultPlan plan;
  plan.straggler_rank = 0;
  plan.straggler_factor = 3.0;
  Microseconds t0 = 0, t1 = 0;
  run_faulty(2, plan, [&](cluster::RankContext& ctx, comm::Comm&) {
    ctx.compute(/*flops=*/5000.0, /*mflops=*/50.0);
    (ctx.rank() == 0 ? t0 : t1) = ctx.clock().now();
  });
  EXPECT_DOUBLE_EQ(t1, 100.0);
  EXPECT_DOUBLE_EQ(t0, 300.0);  // 3x slower
}

TEST(Robustness, RollbackGivesUpAfterConsecutiveFailures) {
  // An unrecoverable fault pattern (every step over budget) must abort
  // after max_rollbacks consecutive rollbacks, not loop forever.
  QuietLog quiet;
  cluster::FaultPlan plan;
  plan.seed = 5;
  plan.corrupt_prob = 0.5;  // nearly every step has retransmits
  gcm::ModelConfig cfg = gcm::testing::small_ocean(2, 2);
  cfg.retry_budget = 0;
  cfg.max_rollbacks = 3;
  EXPECT_THROW(
      run_faulty(4, plan,
                 [&](cluster::RankContext&, comm::Comm& comm) {
                   gcm::Model m(cfg, comm);
                   m.initialize();
                   (void)m.run(20);
                 }),
      std::runtime_error);
}

}  // namespace
}  // namespace hyades
