#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hyades {
namespace {

TEST(Summarize, Empty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summarize, Basic) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(LeastSquares, ExactLine) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {3, 5, 7, 9};  // y = 2x + 1
  const LinearFit f = least_squares(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
  EXPECT_NEAR(f(10.0), 21.0, 1e-12);
}

TEST(LeastSquares, PaperGlobalSumFit) {
  // Section 4.2: latencies 4.0/8.3/12.8/18.2 us at log2(N) = 1..4 fit to
  // tgsum = 4.67*log2(N) - 0.95.
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {4.0, 8.3, 12.8, 18.2};
  // (An exact OLS fit of the four printed latencies gives slope 4.71;
  // the paper reports 4.67, presumably fit over the raw measurements.)
  const LinearFit f = least_squares(xs, ys);
  EXPECT_NEAR(f.slope, 4.67, 0.05);
  EXPECT_NEAR(f.intercept, -0.95, 0.03);
  EXPECT_GT(f.r2, 0.99);
}

TEST(LeastSquares, RejectsDegenerateInput) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(least_squares(one, one), std::invalid_argument);
  const std::vector<double> xs = {2.0, 2.0};
  const std::vector<double> ys = {1.0, 3.0};
  EXPECT_THROW(least_squares(xs, ys), std::invalid_argument);
  const std::vector<double> short_ys = {1.0};
  EXPECT_THROW(least_squares(xs, short_ys), std::invalid_argument);
}

TEST(RelativeError, Basics) {
  EXPECT_DOUBLE_EQ(relative_error(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(100.0, 100.0), 0.0);
  EXPECT_GT(relative_error(1.0, 0.0), 1.0);  // guarded by eps
}

}  // namespace
}  // namespace hyades
