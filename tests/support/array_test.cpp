#include "support/array.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace hyades {
namespace {

TEST(Array2D, DefaultIsEmpty) {
  Array2D<double> a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.nx(), 0u);
  EXPECT_EQ(a.ny(), 0u);
}

TEST(Array2D, InitFill) {
  Array2D<double> a(3, 4, 7.5);
  EXPECT_EQ(a.size(), 12u);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(a(i, j), 7.5);
}

TEST(Array2D, RowMajorLayout) {
  Array2D<int> a(2, 3);
  int v = 0;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = v++;
  // j is the fastest-varying index.
  const int* p = a.data();
  for (int k = 0; k < 6; ++k) EXPECT_EQ(p[k], k);
}

TEST(Array2D, FillAndEquality) {
  Array2D<int> a(2, 2), b(2, 2);
  a.fill(3);
  b.fill(3);
  EXPECT_EQ(a, b);
  b(1, 1) = 4;
  EXPECT_FALSE(a == b);
}

TEST(Array2D, Iteration) {
  Array2D<int> a(4, 5, 1);
  EXPECT_EQ(std::accumulate(a.begin(), a.end(), 0), 20);
}

TEST(Array3D, KFastestLayout) {
  Array3D<int> a(2, 2, 3);
  int v = 0;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      for (std::size_t k = 0; k < 3; ++k) a(i, j, k) = v++;
  const int* p = a.data();
  for (int k = 0; k < 12; ++k) EXPECT_EQ(p[k], k);
}

TEST(Array3D, ColumnIsContiguous) {
  Array3D<double> a(3, 3, 4);
  for (std::size_t k = 0; k < 4; ++k) a(1, 2, k) = static_cast<double>(k);
  const double* col = a.column(1, 2);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(col[k], static_cast<double>(k));
  }
}

TEST(Array3D, SizeAndFill) {
  Array3D<float> a(4, 5, 6);
  EXPECT_EQ(a.size(), 120u);
  a.fill(2.0f);
  for (float x : a) EXPECT_EQ(x, 2.0f);
}

}  // namespace
}  // namespace hyades
