#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "support/logging.hpp"
#include "support/units.hpp"

namespace hyades {
namespace {

TEST(Units, TimeConversions) {
  EXPECT_DOUBLE_EQ(seconds_to_us(1.5), 1.5e6);
  EXPECT_DOUBLE_EQ(us_to_seconds(2.0e6), 2.0);
  EXPECT_DOUBLE_EQ(us_to_minutes(1.8e8), 3.0);
  // Round trip.
  EXPECT_DOUBLE_EQ(us_to_seconds(seconds_to_us(123.456)), 123.456);
}

TEST(Units, BandwidthIdentity) {
  // MByte/sec is numerically bytes/us.
  EXPECT_DOUBLE_EQ(mbytes_per_sec_to_bytes_per_us(110.0), 110.0);
  EXPECT_DOUBLE_EQ(mflops_to_flops_per_us(50.0), 50.0);
}

TEST(Logging, LevelThresholdRoundTrips) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(before);
}

TEST(Logging, StreamInterfaceDoesNotCrashAcrossThreads) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);  // keep the test output quiet
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 50; ++i) {
        log_debug() << "thread " << t << " line " << i;
        log_info() << "info " << i;
      }
    });
  }
  for (auto& th : threads) th.join();
  set_log_level(before);
  SUCCEED();
}

TEST(Logging, SuppressedBelowThreshold) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  // These must be dropped silently (verified by not polluting stderr in
  // the test log; functionally we just exercise the path).
  log_warn() << "should be suppressed";
  log_info() << "also suppressed";
  set_log_level(before);
  SUCCEED();
}

TEST(RateLimiter, BurstThenEveryNth) {
  RateLimiter lim(/*burst=*/3, /*every=*/10);
  int admitted = 0;
  for (int i = 0; i < 33; ++i) {
    if (lim.admit()) ++admitted;
  }
  // First 3 pass, then events 3, 13, 23 of the remaining 30.
  EXPECT_EQ(admitted, 6);
  EXPECT_EQ(lim.seen(), 33u);
  EXPECT_EQ(lim.suppressed(), 27u);
}

TEST(RateLimiter, ZeroBurstStillAdmitsFirstAndEveryNth) {
  // burst == 0 must not silence the limiter entirely: event 0 lands on
  // the stride boundary (0 % every == 0), then every `every`-th event.
  RateLimiter lim(/*burst=*/0, /*every=*/4);
  std::vector<int> admitted;
  for (int i = 0; i < 10; ++i) {
    if (lim.admit()) admitted.push_back(i);
  }
  EXPECT_EQ(admitted, (std::vector<int>{0, 4, 8}));
  EXPECT_EQ(lim.seen(), 10u);
  EXPECT_EQ(lim.suppressed(), 7u);
}

TEST(RateLimiter, AdmissionRuleIsTotalOverCounterWrap) {
  // The rule is a pure function of the (unsigned) event counter, so it
  // stays well-defined when the counter wraps: `n - burst` wraps modulo
  // 2^64 and the stride cycle simply restarts -- no UB, no crash, and
  // never a permanently silent limiter.
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  static_assert(RateLimiter::admits(0, 0, 1));
  static_assert(RateLimiter::admits(kMax, kMax, 7));   // n < burst
  static_assert(!RateLimiter::admits(kMax, 5, 100));   // deep in a stride
  static_assert(RateLimiter::admits(2, 5, 100));       // inside the burst
  // every == 0 is normalized to 1: everything is admitted.
  for (std::uint64_t n : {std::uint64_t{0}, std::uint64_t{17}, kMax}) {
    EXPECT_TRUE(RateLimiter::admits(n, 0, 0));
  }
  // Around the wrap point itself the stride pattern is periodic.
  int hits = 0;
  for (std::uint64_t n = kMax - 8; n != 9; ++n) {  // wraps through 0
    if (RateLimiter::admits(n, 0, 3)) ++hits;
  }
  EXPECT_EQ(hits, 6);  // 18 consecutive events, stride 3
}

TEST(RateLimiter, ThreadSafeCountsAreExact) {
  RateLimiter lim(/*burst=*/5, /*every=*/100);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) (void)lim.admit();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(lim.seen(), 4000u);
  EXPECT_EQ(lim.seen() - lim.suppressed(), 5u + 3995u / 100u + 1u);
}

}  // namespace
}  // namespace hyades
