#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hyades {
namespace {

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(Table, RendersAlignedCells) {
  Table t({"size", "bw"});
  t.add_row({"8", "1.25"});
  t.add_row({"1024", "56.80"});
  std::ostringstream os;
  t.print(os, "Figure 7");
  const std::string s = os.str();
  EXPECT_NE(s.find("Figure 7"), std::string::npos);
  EXPECT_NE(s.find("size"), std::string::npos);
  EXPECT_NE(s.find("56.80"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumericFormatting) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(3.0, 0), "3");
  EXPECT_EQ(Table::fmt_int(1234), "1234");
}

}  // namespace
}  // namespace hyades
