#include "support/rng.hpp"

#include <gtest/gtest.h>

namespace hyades {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, NextBelowInRange) {
  SplitMix64 r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(4), 4u);
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(SplitMix64, DoubleInUnitInterval) {
  SplitMix64 r(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // rough uniformity
}

TEST(SplitMix64, RangeMapping) {
  SplitMix64 r(11);
  for (int i = 0; i < 100; ++i) {
    const double x = r.next_in(-2.0, 3.0);
    ASSERT_GE(x, -2.0);
    ASSERT_LT(x, 3.0);
  }
}

}  // namespace
}  // namespace hyades
