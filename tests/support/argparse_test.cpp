// The checked argv parsers that replaced std::atoi in every example:
// std::atoi silently returns 0 on garbage, which turned a typo'd
// `./production_run abc` into a zero-segment no-op "success".  The
// parse_* helpers must accept exactly the whole token or refuse.
#include <gtest/gtest.h>

#include "support/argparse.hpp"

namespace hyades::support {
namespace {

TEST(Argparse, ParseIntAcceptsWholeTokensOnly) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int("-3").value(), -3);
  EXPECT_EQ(parse_int("0").value(), 0);
  // The atoi failure modes: garbage, partial parses, empty.
  EXPECT_FALSE(parse_int("abc").has_value());
  EXPECT_FALSE(parse_int("12x").has_value());
  EXPECT_FALSE(parse_int("4.5").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int(" 7").has_value());
  EXPECT_FALSE(parse_int("7 ").has_value());
  // Overflow is a refusal, not a wrap.
  EXPECT_FALSE(parse_int("99999999999999999999").has_value());
}

TEST(Argparse, ParseDoubleAcceptsFiniteWholeTokensOnly) {
  EXPECT_DOUBLE_EQ(parse_double("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("1e3").value(), 1000.0);
  EXPECT_DOUBLE_EQ(parse_double("-0.25").value(), -0.25);
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  // Non-finite tokens parse in strtod but are refused here: every
  // example knob is a physical quantity.
  EXPECT_FALSE(parse_double("nan").has_value());
  EXPECT_FALSE(parse_double("inf").has_value());
  EXPECT_FALSE(parse_double("1e999").has_value());
}

}  // namespace
}  // namespace hyades::support
