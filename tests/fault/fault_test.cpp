// Failure-injection tests: corrupted packets surfacing through the
// 1-bit CRC status, solver budget exhaustion, and configuration errors.
#include <gtest/gtest.h>

#include "arctic/fabric.hpp"
#include "gcm/model.hpp"
#include "net/arctic_model.hpp"
#include "sim/scheduler.hpp"
#include "startx/niu.hpp"
#include "tests/gcm/gcm_test_util.hpp"

namespace hyades {
namespace {

TEST(Fault, CorruptedPioMessageSetsStatusBit) {
  // Section 2.2: "The software layer only has to check a 1-bit status to
  // detect the unlikely event of a corrupted message."
  sim::Scheduler sched;
  arctic::Fabric fabric(sched, 16);
  auto nius = startx::attach_all(sched, fabric);
  fabric.corrupt_next_injection();
  nius[0]->pio_inject_at(0, 9, 1, {1u, 2u});
  nius[0]->pio_inject_at(0, 9, 2, {3u, 4u});
  sched.run();
  ASSERT_EQ(nius[9]->pio_rx_depth(), 2u);
  const startx::PioMessage bad = nius[9]->pio_pop();
  const startx::PioMessage good = nius[9]->pio_pop();
  EXPECT_TRUE(bad.crc_error);    // flagged, not silently dropped
  EXPECT_FALSE(good.crc_error);  // the failure is not sticky
}

TEST(Fault, CorruptionFlaggedAtFirstRouterStage) {
  // Every router stage verifies the CRC; the flag must be set even on a
  // single-stage (same-leaf) path.
  sim::Scheduler sched;
  arctic::Fabric fabric(sched, 16);
  bool flagged = false;
  fabric.set_delivery_handler(
      [&](int, arctic::Packet&& p) { flagged = p.crc_error; });
  fabric.corrupt_next_injection();
  arctic::Packet p;
  p.payload = {1u, 2u};
  fabric.inject(0, 1, std::move(p));
  sched.run();
  EXPECT_TRUE(flagged);
  EXPECT_EQ(fabric.stats().crc_flagged, 1u);
}

TEST(Fault, SolverBudgetExhaustionIsReportedNotFatal) {
  gcm::ModelConfig cfg = gcm::testing::small_ocean(1, 1);
  cfg.cg_max_iter = 1;  // impossible budget
  gcm::testing::run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    gcm::Model m(cfg, comm);
    m.initialize();
    const gcm::StepStats st = m.step();
    EXPECT_FALSE(st.cg_converged);
    EXPECT_EQ(st.cg_iterations, 1);
    EXPECT_GT(st.cg_residual, 0.0);
    // The model keeps stepping (the projection is partial, not absent).
    const gcm::StepStats st2 = m.step();
    EXPECT_TRUE(std::isfinite(st2.cg_residual));
  });
}

TEST(Fault, ConfigValidationCatchesShapeErrors) {
  gcm::ModelConfig cfg = gcm::testing::small_ocean(1, 1);
  cfg.px = cfg.nx + 1;  // more tile columns than cells
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = gcm::testing::small_ocean(1, 1);
  cfg.dt = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = gcm::testing::small_ocean(1, 1);
  cfg.dz = {1000.0, 1000.0};  // wrong level count
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = gcm::testing::small_ocean(1, 1);
  cfg.halo = 9;  // exceeds tile extent
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Fault, ViTransferToUnknownTagIsHeldNotLost) {
  // Data arriving before the receiver posts vi_expect must be credited
  // once the expectation appears (no silent loss on reordering).
  sim::Scheduler sched;
  arctic::Fabric fabric(sched, 4);
  auto nius = startx::attach_all(sched, fabric);
  nius[0]->vi_send_at(0, 3, /*tag=*/5, 700);
  sched.run();
  EXPECT_EQ(nius[3]->vi_received(5), 700);
  bool done = false;
  sched.schedule_at(sched.now(), [&] {
    nius[3]->vi_expect(5, 700, [&](sim::SimTime) { done = true; });
  });
  sched.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace hyades
