// Topology-generalization suite (tier2 / topology_tests): the fat-tree
// parameterization, route-word encodings and route-around at non-default
// shapes, the 3-D torus model, the scale-generic decomposition, and the
// non-power-of-two reductions.  Everything here runs shapes the paper's
// machine does NOT have -- the paper shape itself is golden-locked by the
// tier1 suites.
#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "arctic/route.hpp"
#include "comm/comm.hpp"
#include "gcm/decomp.hpp"
#include "net/arctic_model.hpp"
#include "net/topology.hpp"
#include "net/torus.hpp"
#include "support/rng.hpp"

namespace hyades {
namespace {

using arctic::compute_route;
using arctic::compute_route_degraded;
using arctic::FatTreeShape;
using arctic::Route;
using arctic::RouteStatus;
using arctic::route_survives;
using arctic::TopologyHealth;
using hyades::SplitMix64;

// ---- shape validity -------------------------------------------------------

TEST(FatTreeShape, AcceptsSupportedRadixRange) {
  for (int radix = arctic::kMinShapeRadix; radix <= arctic::kMaxShapeRadix;
       ++radix) {
    const FatTreeShape s{radix, 2};
    EXPECT_NO_THROW(s.check()) << "radix " << radix;
    EXPECT_GE(s.max_endpoints(), radix * radix);
  }
}

TEST(FatTreeShape, RejectsOutOfRangeShapes) {
  EXPECT_THROW(FatTreeShape({1, 2}).check(), std::invalid_argument);
  EXPECT_THROW(FatTreeShape({9, 2}).check(), std::invalid_argument);
  EXPECT_THROW(FatTreeShape({4, 0}).check(), std::invalid_argument);
  EXPECT_THROW(FatTreeShape({4, arctic::kMaxShapeLevels + 1}).check(),
               std::invalid_argument);
}

TEST(FatTreeShape, WidthCheckBoundsRouteWords) {
  // radix 8 needs 3 bits per port: 10 levels would need 4 + 3*9 = 31
  // uproute bits -- over the 30-bit budget -- while 9 levels fit.
  EXPECT_NO_THROW(FatTreeShape({8, 9}).check());
  EXPECT_THROW(FatTreeShape({8, 10}).check(), std::invalid_argument);
  // radix 2 fits the full 16-level cap (4 + 15 = 19 bits).
  EXPECT_NO_THROW(FatTreeShape({2, arctic::kMaxShapeLevels}).check());
}

TEST(FatTreeShape, SupportsAtLeast4096EndpointsAtEveryRadix) {
  for (int radix = arctic::kMinShapeRadix; radix <= arctic::kMaxShapeRadix;
       ++radix) {
    const FatTreeShape s = arctic::shape_for(4096, radix);
    EXPECT_NO_THROW(s.check());
    EXPECT_GE(s.max_endpoints(), 4096) << "radix " << radix;
  }
}

TEST(FatTreeShape, DigitHelpersRoundTrip) {
  for (int radix : {2, 3, 4, 8}) {
    const FatTreeShape s{radix, 4};
    SplitMix64 rng(7);
    for (int trial = 0; trial < 64; ++trial) {
      const int e = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(s.max_endpoints())));
      for (int l = 0; l < s.levels; ++l) {
        const int d = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(radix)));
        const int m = s.with_digit(e, l, d);
        EXPECT_EQ(s.digit(m, l), d);
        for (int o = 0; o < s.levels; ++o) {
          if (o != l) {
            EXPECT_EQ(s.digit(m, o), s.digit(e, o));
          }
        }
      }
    }
  }
}

TEST(FatTreeShape, Radix4DigitMatchesPaperHelper) {
  const FatTreeShape s{4, 5};
  for (int e : {0, 1, 5, 63, 255, 1023}) {
    for (int l = 0; l < 5; ++l) {
      EXPECT_EQ(s.digit(e, l), arctic::digit(e, l));
    }
  }
}

// ---- route-word encode/decode ---------------------------------------------

void expect_route_round_trips(const FatTreeShape& shape, int src, int dst) {
  const Route r = compute_route(src, dst, shape);
  const Route back = Route::decode(r.encode_uproute(), r.downroute, shape);
  ASSERT_EQ(back.up_levels, r.up_levels)
      << "shape r=" << shape.radix << " L=" << shape.levels << " " << src
      << "->" << dst;
  for (int l = 0; l < r.up_levels; ++l) {
    EXPECT_EQ(back.up_ports[static_cast<std::size_t>(l)],
              r.up_ports[static_cast<std::size_t>(l)]);
  }
  EXPECT_EQ(back.downroute, r.downroute);
  EXPECT_EQ(back.encode_uproute(), r.encode_uproute());
  for (int l = 0; l < shape.levels; ++l) {
    EXPECT_EQ(back.down_port(l), r.down_port(l));
  }
}

TEST(RouteEncoding, RoundTripsAcrossRadices64Endpoints) {
  for (const FatTreeShape shape : {FatTreeShape{2, 6}, FatTreeShape{4, 3},
                                   FatTreeShape{8, 2}}) {
    const int n = shape.max_endpoints();
    ASSERT_EQ(n, 64);
    for (int src = 0; src < n; ++src) {
      for (int dst = 0; dst < n; ++dst) {
        expect_route_round_trips(shape, src, dst);
      }
    }
  }
}

TEST(RouteEncoding, RoundTripsSampledAtScale) {
  // 1024- and 4096-endpoint builds at each radix, sampled.
  for (const FatTreeShape shape :
       {FatTreeShape{2, 10}, FatTreeShape{4, 5}, FatTreeShape{8, 4},
        FatTreeShape{2, 12}, FatTreeShape{4, 6}}) {
    const int n = shape.max_endpoints();
    ASSERT_GE(n, 1024);
    SplitMix64 rng(0x5eedu + static_cast<std::uint64_t>(shape.radix));
    for (int trial = 0; trial < 512; ++trial) {
      const int src =
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
      const int dst =
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
      expect_route_round_trips(shape, src, dst);
    }
  }
}

TEST(RouteEncoding, RandomUprouteStaysDecodable) {
  const FatTreeShape shape{8, 4};
  SplitMix64 rng(42);
  const int n = shape.max_endpoints();
  for (int trial = 0; trial < 256; ++trial) {
    const int src =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    const int dst =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    const Route r = compute_route(src, dst, shape, &rng);
    const Route back = Route::decode(r.encode_uproute(), r.downroute, shape);
    EXPECT_EQ(back.encode_uproute(), r.encode_uproute());
    for (int l = 0; l < r.up_levels; ++l) {
      EXPECT_LT(back.up_ports[static_cast<std::size_t>(l)], shape.radix);
    }
  }
}

TEST(RouteEncoding, GoldenRadix4LayoutIsTheDefault) {
  // The generalized encoder at the paper shape must be bit-identical to
  // the legacy radix-4 path (which the tier1 route tests golden-lock).
  const FatTreeShape shape{4, 2};
  for (int src = 0; src < 16; ++src) {
    for (int dst = 0; dst < 16; ++dst) {
      const Route legacy = compute_route(src, dst, 2);
      const Route shaped = compute_route(src, dst, shape);
      EXPECT_EQ(shaped.encode_uproute(), legacy.encode_uproute());
      EXPECT_EQ(shaped.downroute, legacy.downroute);
      const Route via_legacy =
          Route::decode(legacy.encode_uproute(), legacy.downroute);
      const Route via_shape =
          Route::decode(shaped.encode_uproute(), shaped.downroute, shape);
      EXPECT_EQ(via_legacy.encode_uproute(), via_shape.encode_uproute());
      EXPECT_EQ(via_legacy.downroute, via_shape.downroute);
    }
  }
}

// ---- connectivity ---------------------------------------------------------

void expect_connected(const FatTreeShape& shape, int src, int dst) {
  const TopologyHealth healthy(shape);
  const Route r = compute_route(src, dst, shape);
  EXPECT_TRUE(route_survives(src, dst, r, healthy))
      << "shape r=" << shape.radix << " L=" << shape.levels << " " << src
      << "->" << dst;
  EXPECT_EQ(arctic::router_hops(src, dst, shape), r.router_hops());
  EXPECT_EQ(arctic::router_hops(src, dst, shape),
            arctic::router_hops(dst, src, shape));
  if (shape.leaf_of(src) == shape.leaf_of(dst)) {
    EXPECT_EQ(r.up_levels, 0);
  } else {
    EXPECT_GT(r.up_levels, 0);
    EXPECT_LE(r.up_levels, shape.levels - 1);
  }
}

TEST(Connectivity, AllPairsAt64Endpoints) {
  for (const FatTreeShape shape : {FatTreeShape{2, 6}, FatTreeShape{4, 3},
                                   FatTreeShape{8, 2}}) {
    const int n = shape.max_endpoints();
    for (int src = 0; src < n; ++src) {
      for (int dst = 0; dst < n; ++dst) {
        expect_connected(shape, src, dst);
      }
    }
  }
}

TEST(Connectivity, SampledPairsAt1024And4096Endpoints) {
  for (const FatTreeShape shape :
       {FatTreeShape{4, 5}, FatTreeShape{2, 12}, FatTreeShape{8, 4}}) {
    const int n = shape.max_endpoints();
    ASSERT_GE(n, 1024);
    SplitMix64 rng(0xab1eu + static_cast<std::uint64_t>(n));
    for (int trial = 0; trial < 768; ++trial) {
      const int src =
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
      const int dst =
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
      expect_connected(shape, src, dst);
    }
  }
}

// ---- route-around at non-default shapes -----------------------------------

TEST(RouteAround, SurvivesUpLinkKillAcrossShapes) {
  for (const FatTreeShape shape : {FatTreeShape{2, 6}, FatTreeShape{8, 2},
                                   FatTreeShape{4, 3}}) {
    const int n = shape.max_endpoints();
    const int src = 0;
    const int dst = n - 1;
    TopologyHealth health(shape);
    const Route preferred = compute_route(src, dst, shape);
    ASSERT_GT(preferred.up_levels, 0);
    health.kill_up_link(0, shape.leaf_of(src),
                        preferred.up_ports[0]);
    const arctic::RoutedPath rp =
        compute_route_degraded(src, dst, shape, health);
    ASSERT_EQ(rp.status, RouteStatus::kOk)
        << "shape r=" << shape.radix << " L=" << shape.levels;
    EXPECT_TRUE(route_survives(src, dst, rp.route, health));
    EXPECT_NE(rp.route.up_ports[0], preferred.up_ports[0]);
  }
}

TEST(RouteAround, ReportsPartitionWhenAllUpLinksDie) {
  const FatTreeShape shape{2, 6};
  TopologyHealth health(shape);
  for (int port = 0; port < shape.radix; ++port) {
    health.kill_up_link(0, shape.leaf_of(0), port);
  }
  const arctic::RoutedPath rp =
      compute_route_degraded(0, shape.max_endpoints() - 1, shape, health);
  EXPECT_EQ(rp.status, RouteStatus::kUnreachable);
  // Same-leaf traffic never climbs, so it still works.
  const arctic::RoutedPath local = compute_route_degraded(0, 1, shape, health);
  EXPECT_EQ(local.status, RouteStatus::kOk);
}

TEST(RouteAround, HealthShapeMismatchIsAnError) {
  const FatTreeShape shape{2, 6};
  const TopologyHealth radix4_view(3, 16);  // legacy radix-4 health
  EXPECT_THROW((void)compute_route_degraded(0, 63, shape, radix4_view),
               std::invalid_argument);
}

// ---- fat-tree topology views ----------------------------------------------

TEST(FatTreeTopology, StructuralMetrics) {
  const net::FatTreeTopology t(64, FatTreeShape{2, 6});
  EXPECT_EQ(t.endpoints(), 64);
  EXPECT_EQ(t.diameter_hops(), 2 * (6 - 1) + 1);
  EXPECT_GE(t.mean_hops(), 1.0);
  EXPECT_LE(t.mean_hops(), t.diameter_hops());
  EXPECT_GT(t.bisection_bandwidth_mbytes(), 0.0);
  // A fat tree keeps full bisection: 2 * N * link bandwidth.
  EXPECT_DOUBLE_EQ(t.bisection_bandwidth_mbytes(),
                   2.0 * 64 * t.link_bandwidth_mbytes());
}

TEST(FatTreeTopology, ArcticModelExposesItsShape) {
  const net::ArcticModel paper;
  ASSERT_NE(paper.topology(), nullptr);
  EXPECT_EQ(paper.topology()->endpoints(), net::kPaperEndpoints);
  EXPECT_EQ(paper.shape().radix, arctic::kRadix);
  EXPECT_EQ(paper.name(), "Arctic");

  const net::ArcticModel wide(512, {}, {}, 8);
  EXPECT_EQ(wide.shape().radix, 8);
  EXPECT_EQ(wide.shape().levels, 3);
  EXPECT_NE(wide.name(), "Arctic");
  EXPECT_EQ(wide.topology()->endpoints(), 512);
}

TEST(FatTreeTopology, GsumRoundClimbsMatchShape) {
  // Butterfly partners of round r differ in id bit r; the climb height
  // is the highest differing base-radix digit.
  const net::ArcticModel r2(64, {}, {}, 2);
  for (int round = 0; round < 6; ++round) {
    EXPECT_EQ(r2.up_levels_for_round(round), round);
  }
  const net::ArcticModel r4(64, {}, {}, 4);
  for (int round = 0; round < 6; ++round) {
    EXPECT_EQ(r4.up_levels_for_round(round), round / 2);
  }
  const net::ArcticModel r8(64, {}, {}, 8);
  for (int round = 0; round < 6; ++round) {
    EXPECT_EQ(r8.up_levels_for_round(round), round / 3);
  }
}

// ---- torus ----------------------------------------------------------------

TEST(Torus, NearCubicFactorization) {
  using net::near_cubic_torus;
  for (int nodes : {8, 16, 27, 32, 64, 100, 128, 256, 500, 512, 1024}) {
    const net::TorusShape s = near_cubic_torus(nodes);
    EXPECT_EQ(s.nodes(), nodes);
    EXPECT_GE(s.nx, s.ny);
    EXPECT_GE(s.ny, s.nz);
    EXPECT_NO_THROW(s.check());
  }
  EXPECT_EQ(near_cubic_torus(64).nx, 4);
  EXPECT_EQ(near_cubic_torus(64).ny, 4);
  EXPECT_EQ(near_cubic_torus(64).nz, 4);
}

TEST(Torus, RingDistanceWrapsBothWays) {
  using net::TorusShape;
  EXPECT_EQ(TorusShape::ring_distance(0, 3, 4), 1);  // wrap is shorter
  EXPECT_EQ(TorusShape::ring_distance(0, 2, 4), 2);
  EXPECT_EQ(TorusShape::ring_distance(5, 5, 8), 0);
  const TorusShape s{4, 4, 2};
  SplitMix64 rng(3);
  for (int trial = 0; trial < 128; ++trial) {
    const int a = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(s.nodes())));
    const int b = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(s.nodes())));
    EXPECT_EQ(s.distance(a, b), s.distance(b, a));
    EXPECT_LE(s.distance(a, b), s.nx / 2 + s.ny / 2 + s.nz / 2);
    EXPECT_EQ(s.distance(a, a), 0);
  }
}

TEST(Torus, TopologyMetrics) {
  const net::TorusTopology t(net::TorusShape{8, 8, 8},
                             net::kTorusHopLatencyUs, net::kTorusLinkMBs);
  EXPECT_EQ(t.endpoints(), 512);
  EXPECT_EQ(t.diameter_hops(), 12);
  EXPECT_GE(t.mean_hops(), 1.0);
  EXPECT_LE(t.mean_hops(), 12.0);
  // Bisection: cutting the longest dimension severs 2 directed links per
  // ring in each direction -> 4 * (nodes / longest) * link bandwidth.
  EXPECT_DOUBLE_EQ(t.bisection_bandwidth_mbytes(),
                   4.0 * (512 / 8) * net::kTorusLinkMBs);
}

TEST(Torus, ModelRoundCostsGrowWithHopCount) {
  const net::TorusModel m = net::TorusModel::for_nodes(64);
  EXPECT_GT(m.gsum_round_time(0), 0.0);
  // Later butterfly rounds span more of the machine; hop counts (and
  // with them round costs) never shrink as the partner distance grows
  // within one dimension.
  EXPECT_EQ(m.hops_for_round(0), 1);
  EXPECT_GE(m.hops_for_round(5), m.hops_for_round(0));
  EXPECT_GT(m.transfer_time(1 << 20), m.transfer_time(1 << 10));
  ASSERT_NE(m.topology(), nullptr);
  EXPECT_EQ(m.topology()->endpoints(), 64);
}

// ---- decomposition at scale -----------------------------------------------

TEST(DecompScale, ChooseTilesCoversSweepShapes) {
  // The sweep's near-square factorizations for a huge grid.
  EXPECT_EQ(gcm::choose_tiles(32, 4096, 4096), (std::pair<int, int>{4, 8}));
  EXPECT_EQ(gcm::choose_tiles(64, 4096, 4096), (std::pair<int, int>{8, 8}));
  EXPECT_EQ(gcm::choose_tiles(1024, 4096, 4096),
            (std::pair<int, int>{32, 32}));
}

TEST(DecompScale, LargeNonDivisibleGridPartitions) {
  // 1000 x 600 over 24 x 16 ranks: 1000 % 24 != 0, 600 % 16 != 0.
  gcm::ModelConfig cfg;
  cfg.nx = 1000;
  cfg.ny = 600;
  cfg.px = 24;
  cfg.py = 16;
  cfg.halo = 3;
  cfg.validate();
  std::set<std::pair<int, int>> covered;
  long long cells = 0;
  for (int r = 0; r < cfg.tiles(); ++r) {
    const gcm::Decomp d(cfg, r);
    cells += static_cast<long long>(d.snx) * d.sny;
    covered.insert({d.i0, d.j0});
    EXPECT_GE(d.snx, cfg.halo);
    EXPECT_GE(d.sny, cfg.halo);
  }
  EXPECT_EQ(cells, static_cast<long long>(cfg.nx) * cfg.ny);
  EXPECT_EQ(covered.size(), static_cast<std::size_t>(cfg.tiles()));
}

// ---- non-power-of-two reductions ------------------------------------------

cluster::MachineConfig machine(const net::Interconnect& net, int smps,
                               int ppp) {
  cluster::MachineConfig cfg;
  cfg.smp_count = smps;
  cfg.procs_per_smp = ppp;
  cfg.interconnect = &net;
  return cfg;
}

TEST(NonPow2Gsum, CorrectAcrossGroupSizes) {
  const net::ArcticModel net;
  for (auto [smps, ppp] : std::vector<std::pair<int, int>>{
           {3, 1}, {3, 2}, {5, 1}, {6, 2}, {7, 1}}) {
    cluster::Runtime rt(machine(net, smps, ppp));
    const int nranks = smps * ppp;
    const double expected = nranks * (nranks + 1) / 2.0;
    rt.run([&](cluster::RankContext& ctx) {
      comm::Comm comm(ctx);
      const double s = comm.global_sum(ctx.rank() + 1.0);
      EXPECT_DOUBLE_EQ(s, expected) << "shape " << smps << "x" << ppp;
      EXPECT_DOUBLE_EQ(comm.global_max(static_cast<double>(ctx.rank())),
                       nranks - 1.0);
    });
  }
}

TEST(NonPow2Gsum, BitwiseIdenticalEverywhere) {
  const net::ArcticModel net;
  cluster::Runtime rt(machine(net, 6, 2));
  std::mutex mu;
  std::vector<double> results;
  rt.run([&](cluster::RankContext& ctx) {
    comm::Comm comm(ctx);
    const double mine = 1.0 + 1e-15 * ctx.rank() * 3.7;
    const double s = comm.global_sum(mine);
    std::lock_guard<std::mutex> lock(mu);
    results.push_back(s);
  });
  ASSERT_EQ(results.size(), 12u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]);
  }
}

TEST(NonPow2Gsum, SplitPhaseOverlapsFoldSend) {
  const net::ArcticModel net;
  cluster::Runtime rt(machine(net, 3, 2));
  rt.run([&](cluster::RankContext& ctx) {
    comm::Comm comm(ctx);
    comm::GsumHandle h = comm.global_sum_start(ctx.rank() + 1.0);
    ctx.clock().advance(50.0);  // modeled computation between start/finish
    const std::vector<double> v = comm.global_sum_finish(h);
    EXPECT_DOUBLE_EQ(v[0], 21.0);
  });
}

TEST(NonPow2Gsum, TimingDeterministic) {
  const net::ArcticModel net;
  auto run_once = [&] {
    cluster::Runtime rt(machine(net, 5, 2));
    rt.run([&](cluster::RankContext& ctx) {
      comm::Comm comm(ctx);
      for (int i = 0; i < 4; ++i) (void)comm.global_sum(1.0);
      comm.barrier();
    });
    return rt.final_clocks();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(NonPow2Barrier, CompletesOnOddGroups) {
  const net::ArcticModel net;
  for (int smps : {3, 5, 6}) {
    cluster::Runtime rt(machine(net, smps, 2));
    rt.run([&](cluster::RankContext& ctx) {
      comm::Comm comm(ctx);
      comm.barrier();
      EXPECT_EQ(comm.barriers_done(), 1u);
    });
    EXPECT_GT(rt.max_clock(), 0.0);
  }
}

TEST(NonPow2Gsum, PowerOfTwoCostsUnchangedByFoldPath) {
  // The fold is strictly additive: an 8-SMP group must cost exactly what
  // the tier1 paper-latency tests lock in, and a 5-SMP group must cost
  // at least as much as the 4-SMP core it contains.
  const net::ArcticModel net;
  auto gsum_cost = [&](int smps) {
    cluster::Runtime rt(machine(net, smps, 1));
    rt.run([&](cluster::RankContext& ctx) {
      comm::Comm comm(ctx);
      (void)comm.global_sum(1.0);
    });
    return rt.max_clock();
  };
  EXPECT_GT(gsum_cost(5), gsum_cost(4));
  EXPECT_GT(gsum_cost(6), gsum_cost(4));
  EXPECT_LT(gsum_cost(4), gsum_cost(8));
}

}  // namespace
}  // namespace hyades
