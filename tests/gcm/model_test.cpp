#include <gtest/gtest.h>

#include <cmath>
#include <mutex>

#include "gcm/model.hpp"
#include "gcm/physics.hpp"
#include "tests/gcm/gcm_test_util.hpp"

namespace hyades::gcm {
namespace {

using testing::run_ranks;
using testing::small_atmos;
using testing::small_ocean;

TEST(Model, RejectsWrongGroupSize) {
  const ModelConfig cfg = small_ocean(2, 2);
  run_ranks(2, [&](cluster::RankContext&, comm::Comm& comm) {
    EXPECT_THROW(Model(cfg, comm), std::invalid_argument);
  });
}

TEST(Model, RestingUniformFluidStaysAtRest) {
  // Horizontally uniform stratification with no forcing: pressure
  // gradients vanish, so the fluid must not spontaneously accelerate.
  ModelConfig cfg = small_ocean(1, 1);
  cfg.enable_forcing = false;
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(cfg, comm);
    // Uniform-in-horizontal initial state (no noise).
    m.initialize(1);
    auto& th = m.state().theta;
    const Decomp& dec = m.decomp();
    for (int i = 0; i < dec.ext_x(); ++i) {
      for (int j = 0; j < dec.ext_y(); ++j) {
        for (int k = 0; k < cfg.nz; ++k) {
          if (m.grid().hFacC(static_cast<std::size_t>(i),
                             static_cast<std::size_t>(j),
                             static_cast<std::size_t>(k)) > 0) {
            th(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
               static_cast<std::size_t>(k)) = cfg.theta0 + 5.0 * (3 - k);
          }
        }
      }
    }
    m.run(5);
    EXPECT_LT(m.kinetic_energy(), 1e-8);
    EXPECT_LT(m.max_abs_w(), 1e-12);
  });
}

TEST(Model, OceanSpinupIsStableAndGeneratesFlow) {
  const ModelConfig cfg = small_ocean(1, 1);
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(cfg, comm);
    m.initialize();
    for (int s = 0; s < 20; ++s) {
      const StepStats st = m.step();
      EXPECT_TRUE(st.cg_converged) << "step " << s;
    }
    const double ke = m.kinetic_energy();
    EXPECT_TRUE(std::isfinite(ke));
    EXPECT_GT(ke, 0.0);          // wind stress spun up a flow
    EXPECT_LT(m.max_cfl(), 0.5);  // and it is numerically comfortable
  });
}

TEST(Model, ProjectionEnforcesNonDivergence) {
  const ModelConfig cfg = small_ocean(2, 2);
  run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(cfg, comm);
    m.initialize();
    m.run(5);
    // |depth-integrated divergence| / area should be at the CG tolerance
    // scale, vastly below the per-level velocity scale / dx.
    EXPECT_LT(m.max_surface_divergence(), 1e-10);
  });
}

TEST(Model, TracersConservedWithoutForcing) {
  ModelConfig cfg = small_ocean(2, 2);
  cfg.enable_forcing = false;
  run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(cfg, comm);
    m.initialize();
    // Give it something to advect.
    auto& u = m.state().u;
    for (auto& x : u) x = 0.05;
    kernels::apply_velocity_masks(m.grid(), m.state().u, m.state().v,
                                  kernels::extended(m.decomp(), 1));
    const double theta0 = m.total_theta_volume();
    const double salt0 = m.total_salt_volume();
    m.run(10);
    const double theta1 = m.total_theta_volume();
    const double salt1 = m.total_salt_volume();
    EXPECT_NEAR(theta1 / theta0, 1.0, 1e-12);
    EXPECT_NEAR(salt1 / salt0, 1.0, 1e-12);
  });
}

TEST(Model, DeterministicAcrossRuns) {
  const ModelConfig cfg = small_ocean(2, 2);
  std::mutex mu;
  std::vector<double> first;
  for (int trial = 0; trial < 2; ++trial) {
    run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
      Model m(cfg, comm);
      m.initialize();
      m.run(5);
      const double ke = m.kinetic_energy();
      const double th = m.total_theta_volume();
      std::lock_guard<std::mutex> lock(mu);
      if (trial == 0) {
        first.push_back(ke);
        first.push_back(th);
      } else if (comm.group_rank() == 0) {
        EXPECT_EQ(ke, first[0]);  // bitwise reproducible
        EXPECT_EQ(th, first[1]);
      }
    });
  }
}

TEST(Model, DecompositionIndependence) {
  // The same global problem on 1 tile and on 4 tiles must evolve to
  // (nearly) the same global state; only reduction orders differ.
  ModelConfig cfg1 = small_ocean(1, 1);
  ModelConfig cfg4 = small_ocean(2, 2);
  Array2D<double> theta1, theta4;
  std::mutex mu;
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(cfg1, comm);
    m.initialize();
    m.run(5);
    std::lock_guard<std::mutex> lock(mu);
    theta1 = m.gather_theta(0);
  });
  run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(cfg4, comm);
    m.initialize();
    m.run(5);
    auto g = m.gather_theta(0);
    if (comm.group_rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      theta4 = std::move(g);
    }
  });
  ASSERT_EQ(theta1.nx(), theta4.nx());
  for (std::size_t i = 0; i < theta1.nx(); ++i) {
    for (std::size_t j = 0; j < theta1.ny(); ++j) {
      ASSERT_NEAR(theta1(i, j), theta4(i, j), 1e-8) << i << "," << j;
    }
  }
}

TEST(Model, AtmosphereRunsStably) {
  const ModelConfig cfg = small_atmos(2, 2);
  run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(cfg, comm);
    m.initialize();
    for (int s = 0; s < 20; ++s) {
      const StepStats st = m.step();
      EXPECT_TRUE(st.cg_converged);
    }
    EXPECT_TRUE(std::isfinite(m.kinetic_energy()));
    EXPECT_LT(m.max_cfl(), 0.5);
  });
}

TEST(Model, ConvectiveAdjustmentRemovesInstability) {
  ModelConfig cfg = small_atmos(1, 1);
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(cfg, comm);
    m.initialize();
    // Create a statically unstable column (warm *below* cold in
    // potential temperature).
    auto& th = m.state().theta;
    const int h = m.decomp().halo;
    for (int k = 0; k < cfg.nz; ++k) {
      th(static_cast<std::size_t>(h + 2), static_cast<std::size_t>(h + 2),
         static_cast<std::size_t>(k)) = 290.0 + 5.0 * k;  // increases downward
    }
    const kernels::Range ri = kernels::extended(m.decomp(), 0);
    convective_adjustment(cfg, m.grid(), th, ri);
    for (int k = 0; k + 1 < cfg.nz; ++k) {
      const double upper = th(static_cast<std::size_t>(h + 2),
                              static_cast<std::size_t>(h + 2),
                              static_cast<std::size_t>(k));
      const double lower = th(static_cast<std::size_t>(h + 2),
                              static_cast<std::size_t>(h + 2),
                              static_cast<std::size_t>(k + 1));
      EXPECT_LE(lower, upper + 1e-9);
    }
  });
}

TEST(Model, TopographyRunIsStable) {
  ModelConfig cfg = small_ocean(2, 2);
  cfg.nx = 32;
  cfg.ny = 16;
  cfg.topography = ModelConfig::Topography::kContinents;
  cfg.validate();
  run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(cfg, comm);
    m.initialize();
    for (int s = 0; s < 10; ++s) {
      const StepStats st = m.step();
      EXPECT_TRUE(st.cg_converged);
    }
    EXPECT_TRUE(std::isfinite(m.kinetic_energy()));
    // Land faces stay closed.
    const auto& grid = m.grid();
    const auto& u = m.state().u;
    for (int i = m.decomp().halo; i < m.decomp().halo + m.decomp().snx; ++i) {
      for (int j = m.decomp().halo; j < m.decomp().halo + m.decomp().sny;
           ++j) {
        for (int k = 0; k < cfg.nz; ++k) {
          if (grid.hFacW(static_cast<std::size_t>(i),
                         static_cast<std::size_t>(j),
                         static_cast<std::size_t>(k)) == 0.0) {
            ASSERT_EQ(u(static_cast<std::size_t>(i),
                        static_cast<std::size_t>(j),
                        static_cast<std::size_t>(k)),
                      0.0);
          }
        }
      }
    }
  });
}

TEST(Model, PerfObservablesAccumulate) {
  const ModelConfig cfg = small_ocean(2, 2);
  run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(cfg, comm);
    m.initialize();
    m.run(3);
    const PerfObservables& obs = m.stepper().observables();
    EXPECT_EQ(obs.steps, 3);
    EXPECT_GT(obs.ps_flops, 0.0);
    EXPECT_GT(obs.ds_flops, 0.0);
    EXPECT_GT(obs.cg_iterations, 0);
    EXPECT_GT(obs.tps_exch_us, 0.0);
    EXPECT_GT(obs.nps(m.grid().wet_cells()), 50.0);
    EXPECT_GT(obs.nds(m.grid().wet_columns()), 5.0);
  });
}

TEST(Model, LoadImbalanceDiagnostic) {
  // Flat bottom: perfectly balanced.  Continents: some tiles land-heavy.
  ModelConfig flat = small_ocean(2, 2);
  run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(flat, comm);
    EXPECT_DOUBLE_EQ(m.load_imbalance(), 1.0);
  });
  // Slice in x only so the (zonally asymmetric) continents land unevenly
  // across tiles.
  ModelConfig cont = small_ocean(4, 1);
  cont.nx = 32;
  cont.ny = 16;
  cont.topography = ModelConfig::Topography::kContinents;
  cont.validate();
  run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(cont, comm);
    const double imb = m.load_imbalance();
    EXPECT_GT(imb, 1.0);
    EXPECT_LT(imb, 4.0);
  });
}

TEST(Model, GatherAssemblesGlobalField) {
  const ModelConfig cfg = small_ocean(2, 2);
  run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(cfg, comm);
    m.initialize();
    auto g = m.gather_theta(0);
    if (comm.group_rank() == 0) {
      ASSERT_EQ(g.nx(), static_cast<std::size_t>(cfg.nx));
      ASSERT_EQ(g.ny(), static_cast<std::size_t>(cfg.ny));
      for (double v : g) {
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_GT(v, cfg.theta0 - 20.0);
        EXPECT_LT(v, cfg.theta0 + 30.0);
      }
    } else {
      EXPECT_TRUE(g.empty());
    }
  });
}

}  // namespace
}  // namespace hyades::gcm
