#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <mutex>

#include "gcm/model.hpp"
#include "tests/gcm/gcm_test_util.hpp"

namespace hyades::gcm {
namespace {

using testing::run_ranks;
using testing::small_ocean;

std::string prefix_for(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void cleanup(const std::string& prefix, int ranks) {
  for (int r = 0; r < ranks; ++r) {
    std::remove((prefix + ".rank" + std::to_string(r)).c_str());
  }
}

TEST(Checkpoint, RestartContinuesBitIdentically) {
  const ModelConfig cfg = small_ocean(2, 2);
  const std::string prefix = prefix_for("hyades_ckpt_a");

  // Reference: 10 uninterrupted steps.
  std::mutex mu;
  double ref_ke = 0, ref_theta = 0;
  run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(cfg, comm);
    m.initialize();
    m.run(10);
    if (comm.group_rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      ref_ke = m.kinetic_energy();
      ref_theta = m.total_theta_volume();
    } else {
      (void)m.kinetic_energy();
      (void)m.total_theta_volume();
    }
  });

  // Interrupted: 6 steps, checkpoint, fresh models restart for 4 more.
  run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(cfg, comm);
    m.initialize();
    m.run(6);
    m.save_checkpoint(prefix);
  });
  run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(cfg, comm);
    m.load_checkpoint(prefix);
    EXPECT_EQ(m.state().step, 6);
    m.run(4);
    const double ke = m.kinetic_energy();
    const double th = m.total_theta_volume();
    if (comm.group_rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      EXPECT_EQ(ke, ref_ke);  // bitwise
      EXPECT_EQ(th, ref_theta);
    }
  });
  cleanup(prefix, 4);
}

TEST(Checkpoint, MismatchedConfigRejected) {
  const std::string prefix = prefix_for("hyades_ckpt_b");
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(small_ocean(1, 1), comm);
    m.initialize();
    m.save_checkpoint(prefix);
  });
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    ModelConfig other = small_ocean(1, 1);
    other.nz = 3;  // differs from the checkpoint
    other.validate();
    Model m(other, comm);
    EXPECT_THROW(m.load_checkpoint(prefix), std::runtime_error);
  });
  cleanup(prefix, 1);
}

TEST(Checkpoint, MissingFileRejected) {
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(small_ocean(1, 1), comm);
    EXPECT_THROW(m.load_checkpoint("/nonexistent/path/ckpt"),
                 std::runtime_error);
  });
}

TEST(Checkpoint, TruncatedFileRejected) {
  const std::string prefix = prefix_for("hyades_ckpt_c");
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(small_ocean(1, 1), comm);
    m.initialize();
    m.save_checkpoint(prefix);
  });
  // Truncate the file to half.
  const std::string path = prefix + ".rank0";
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(small_ocean(1, 1), comm);
    EXPECT_THROW(m.load_checkpoint(prefix), std::runtime_error);
  });
  cleanup(prefix, 1);
}

}  // namespace
}  // namespace hyades::gcm
