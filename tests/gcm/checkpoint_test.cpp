#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <vector>

#include "gcm/model.hpp"
#include "tests/gcm/gcm_test_util.hpp"

namespace hyades::gcm {
namespace {

using testing::run_ranks;
using testing::small_ocean;

std::string prefix_for(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void cleanup(const std::string& prefix, int ranks) {
  for (int r = 0; r < ranks; ++r) {
    std::remove((prefix + ".rank" + std::to_string(r)).c_str());
  }
}

TEST(Checkpoint, RestartContinuesBitIdentically) {
  const ModelConfig cfg = small_ocean(2, 2);
  const std::string prefix = prefix_for("hyades_ckpt_a");

  // Reference: 10 uninterrupted steps.
  std::mutex mu;
  double ref_ke = 0, ref_theta = 0;
  run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(cfg, comm);
    m.initialize();
    m.run(10);
    if (comm.group_rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      ref_ke = m.kinetic_energy();
      ref_theta = m.total_theta_volume();
    } else {
      (void)m.kinetic_energy();
      (void)m.total_theta_volume();
    }
  });

  // Interrupted: 6 steps, checkpoint, fresh models restart for 4 more.
  run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(cfg, comm);
    m.initialize();
    m.run(6);
    m.save_checkpoint(prefix);
  });
  run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(cfg, comm);
    m.load_checkpoint(prefix);
    EXPECT_EQ(m.state().step, 6);
    m.run(4);
    const double ke = m.kinetic_energy();
    const double th = m.total_theta_volume();
    if (comm.group_rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      EXPECT_EQ(ke, ref_ke);  // bitwise
      EXPECT_EQ(th, ref_theta);
    }
  });
  cleanup(prefix, 4);
}

TEST(Checkpoint, MismatchedConfigRejected) {
  const std::string prefix = prefix_for("hyades_ckpt_b");
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(small_ocean(1, 1), comm);
    m.initialize();
    m.save_checkpoint(prefix);
  });
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    ModelConfig other = small_ocean(1, 1);
    other.nz = 3;  // differs from the checkpoint
    other.validate();
    Model m(other, comm);
    EXPECT_THROW(m.load_checkpoint(prefix), std::runtime_error);
  });
  cleanup(prefix, 1);
}

TEST(Checkpoint, MissingFileRejected) {
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(small_ocean(1, 1), comm);
    EXPECT_THROW(m.load_checkpoint("/nonexistent/path/ckpt"),
                 std::runtime_error);
  });
}

TEST(Checkpoint, TruncatedFileRejected) {
  const std::string prefix = prefix_for("hyades_ckpt_c");
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(small_ocean(1, 1), comm);
    m.initialize();
    m.save_checkpoint(prefix);
  });
  // Truncate the file to half.
  const std::string path = prefix + ".rank0";
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(small_ocean(1, 1), comm);
    EXPECT_THROW(m.load_checkpoint(prefix), std::runtime_error);
  });
  cleanup(prefix, 1);
}

TEST(Checkpoint, BitFlippedPayloadRejectedByCrc) {
  // A single flipped bit anywhere in the payload must trip the CRC with
  // a message that says so -- a checkpoint that loads garbage silently
  // would poison a restarted run.
  const std::string prefix = prefix_for("hyades_ckpt_d");
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(small_ocean(1, 1), comm);
    m.initialize();
    m.run(3);
    m.save_checkpoint(prefix);
  });
  const std::string path = Model::checkpoint_path(prefix, 0);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    const auto size = std::filesystem::file_size(path);
    f.seekg(static_cast<std::streamoff>(size) - 17);  // deep in the payload
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    f.seekp(static_cast<std::streamoff>(size) - 17);
    f.write(&byte, 1);
  }
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(small_ocean(1, 1), comm);
    try {
      m.load_checkpoint(prefix);
      FAIL() << "bit-flipped checkpoint loaded without error";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
          << "error should name the CRC: " << e.what();
    }
  });
  cleanup(prefix, 1);
}

TEST(Checkpoint, DiskRoundTripIntoFreshModelIsBitIdentical) {
  // Save after a few steps, load into a brand-new (never initialized)
  // model, and require every prognostic value to round-trip through the
  // disk format bit-exactly -- compared as hexfloat strings so any
  // mismatch shows the exact bit pattern.
  const ModelConfig cfg = small_ocean(1, 1);
  const std::string prefix = prefix_for("hyades_ckpt_e");
  std::vector<double> want;
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(cfg, comm);
    m.initialize();
    m.run(5);
    m.save_checkpoint(prefix);
    const State& s = m.state();
    want.assign(s.u.data(), s.u.data() + s.u.size());
    want.insert(want.end(), s.theta.data(), s.theta.data() + s.theta.size());
    want.insert(want.end(), s.ps.data(), s.ps.data() + s.ps.size());
  });
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(cfg, comm);  // fresh: no initialize(), state is all zeros
    m.load_checkpoint(prefix);
    EXPECT_EQ(m.state().step, 5);
    const State& s = m.state();
    std::vector<double> got(s.u.data(), s.u.data() + s.u.size());
    got.insert(got.end(), s.theta.data(), s.theta.data() + s.theta.size());
    got.insert(got.end(), s.ps.data(), s.ps.data() + s.ps.size());
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      std::ostringstream w, g;
      w << std::hexfloat << want[i];
      g << std::hexfloat << got[i];
      ASSERT_EQ(g.str(), w.str()) << "value " << i << " changed on disk";
    }
  });
  cleanup(prefix, 1);
}

TEST(Checkpoint, BadMagicRejectedAndStepParserWorks) {
  const std::string prefix = prefix_for("hyades_ckpt_f");
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(small_ocean(1, 1), comm);
    m.initialize();
    m.run(7);
    m.save_checkpoint(prefix);
  });
  const std::string path = Model::checkpoint_path(prefix, 0);
  // The header parser reads the step without touching any model.
  EXPECT_EQ(Model::checkpoint_step(path), 7);
  // Corrupt the magic: the loader must refuse before reading anything
  // else, and say what it expected.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    const char junk = 'X';
    f.seekp(2);
    f.write(&junk, 1);
  }
  EXPECT_THROW((void)Model::checkpoint_step(path), std::runtime_error);
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(small_ocean(1, 1), comm);
    try {
      m.load_checkpoint(prefix);
      FAIL() << "bad-magic checkpoint loaded without error";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos)
          << "error should name the magic: " << e.what();
    }
  });
  cleanup(prefix, 1);
}

TEST(Checkpoint, SaveIsAtomicNoTmpFileSurvives) {
  // save_checkpoint writes to a `.tmp` sibling and renames; after a
  // successful save the temporary must be gone and the final file
  // complete.  A crash mid-write can strand a .tmp but never a partial
  // final file -- loaders only ever see complete checkpoints.
  const std::string prefix = prefix_for("hyades_ckpt_g");
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(small_ocean(1, 1), comm);
    m.initialize();
    m.save_checkpoint(prefix);
  });
  const std::string path = Model::checkpoint_path(prefix, 0);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  cleanup(prefix, 1);
}

}  // namespace
}  // namespace hyades::gcm
