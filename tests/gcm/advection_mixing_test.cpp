// Tests for the 3rd-order DST advection scheme and the implicit vertical
// mixing solver.
#include <gtest/gtest.h>

#include <cmath>

#include "gcm/kernels.hpp"
#include "gcm/model.hpp"
#include "gcm/state.hpp"
#include "support/rng.hpp"
#include "tests/gcm/gcm_test_util.hpp"

namespace hyades::gcm {
namespace {

using testing::small_ocean;

struct Fixture {
  ModelConfig cfg;
  Decomp dec;
  TileGrid grid;
  State s;

  explicit Fixture(ModelConfig c) : cfg(c), dec(cfg, 0), grid(cfg, dec) {
    s.allocate(dec, cfg.nz);
  }

  template <typename Fn>
  void fill(Array3D<double>& f, Fn fn) {
    for (int i = 0; i < dec.ext_x(); ++i) {
      for (int j = 0; j < dec.ext_y(); ++j) {
        for (int k = 0; k < cfg.nz; ++k) {
          const int gi = ((dec.global_i(i) % cfg.nx) + cfg.nx) % cfg.nx;
          f(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
            static_cast<std::size_t>(k)) = fn(gi, dec.global_j(j), k);
        }
      }
    }
  }
};

ModelConfig dst3_config() {
  ModelConfig cfg = small_ocean(1, 1, /*halo=*/3);
  cfg.advection = ModelConfig::Advection::kDst3;
  return cfg;
}

TEST(Dst3, UniformTracerHasZeroTendency) {
  Fixture fx(dst3_config());
  fx.fill(fx.s.u, [](int, int, int) { return 0.4; });
  fx.fill(fx.s.theta, [](int, int, int) { return 3.0; });
  kernels::apply_velocity_masks(fx.grid, fx.s.u, fx.s.v,
                                kernels::extended(fx.dec, 1));
  kernels::diagnose_w(fx.cfg, fx.grid, fx.s.u, fx.s.v, fx.s.w,
                      kernels::extended(fx.dec, 0));
  const auto r = kernels::extended(fx.dec, 0);
  kernels::tracer_tendency(fx.cfg, fx.grid, fx.s.u, fx.s.v, fx.s.w,
                           fx.s.theta, fx.s.gt, 0.0, 0.0, r);
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      for (int k = 0; k < fx.cfg.nz; ++k) {
        ASSERT_NEAR(fx.s.gt(static_cast<std::size_t>(i),
                            static_cast<std::size_t>(j),
                            static_cast<std::size_t>(k)),
                    0.0, 1e-14);
      }
    }
  }
}

TEST(Dst3, ConservesTracerIntegral) {
  Fixture fx(dst3_config());
  fx.fill(fx.s.u, [](int gi, int gj, int k) {
    SplitMix64 rng(static_cast<unsigned>(gi + 1) * 7919u +
                   static_cast<unsigned>(gj + 64) * 104729u +
                   static_cast<unsigned>(k));
    return rng.next_in(-0.2, 0.2);
  });
  fx.fill(fx.s.theta, [](int gi, int gj, int k) {
    SplitMix64 rng(static_cast<unsigned>(gi + 5) * 15485863u +
                   static_cast<unsigned>(gj + 64) * 32452843u +
                   static_cast<unsigned>(k));
    return rng.next_in(5.0, 25.0);
  });
  kernels::apply_velocity_masks(fx.grid, fx.s.u, fx.s.v,
                                kernels::extended(fx.dec, 1));
  kernels::diagnose_w(fx.cfg, fx.grid, fx.s.u, fx.s.v, fx.s.w,
                      kernels::extended(fx.dec, 0));
  const auto r = kernels::extended(fx.dec, 0);
  kernels::tracer_tendency(fx.cfg, fx.grid, fx.s.u, fx.s.v, fx.s.w,
                           fx.s.theta, fx.s.gt, 0.0, 0.0, r);
  double integral = 0, gross = 0;
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      const auto sj = static_cast<std::size_t>(j);
      for (int k = 0; k < fx.cfg.nz; ++k) {
        const double h = fx.grid.hFacC(static_cast<std::size_t>(i), sj,
                                       static_cast<std::size_t>(k));
        if (h <= 0) continue;
        const double gv = fx.s.gt(static_cast<std::size_t>(i), sj,
                                  static_cast<std::size_t>(k)) *
                          fx.grid.rAc[sj] *
                          fx.grid.dzf[static_cast<std::size_t>(k)] * h;
        integral += gv;
        gross += std::abs(gv);
      }
    }
  }
  ASSERT_GT(gross, 0.0);
  EXPECT_LT(std::abs(integral), 1e-11 * gross);
}

TEST(Dst3, LessOvershootThanCenteredOnAFront) {
  // Advect a sharp zonal front around the periodic channel at CFL ~ 0.2
  // with forward-Euler steps.  Centered differencing is dispersive (and
  // weakly unstable in this pairing); DST-3's upwind bias keeps the
  // solution essentially inside the initial [10, 20] range.
  auto overshoot = [&](ModelConfig::Advection scheme) {
    ModelConfig cfg = dst3_config();
    cfg.advection = scheme;
    Fixture fx(cfg);
    const double dx_mid =
        fx.grid.dxC[static_cast<std::size_t>(fx.dec.halo + fx.dec.sny / 2)];
    const double u0 = 1.0;
    fx.cfg.dt = 0.2 * dx_mid / u0;  // CFL ~ 0.2 in the mid latitudes
    fx.fill(fx.s.u, [&](int, int, int) { return u0; });
    fx.fill(fx.s.theta,
            [](int gi, int, int) { return gi < 8 ? 10.0 : 20.0; });
    kernels::apply_velocity_masks(fx.grid, fx.s.u, fx.s.v,
                                  kernels::extended(fx.dec, 1));
    kernels::diagnose_w(fx.cfg, fx.grid, fx.s.u, fx.s.v, fx.s.w,
                        kernels::extended(fx.dec, 0));
    const auto r = kernels::extended(fx.dec, 0);
    double worst = 0.0;
    for (int step = 0; step < 40; ++step) {
      // Refresh the periodic halo directly (single tile).
      fx.fill(fx.s.gt, [&](int gi, int gj, int k) {
        const int jl = gj + fx.dec.halo;  // local j of this global row
        (void)jl;
        return fx.s.theta(
            static_cast<std::size_t>(((gi % fx.cfg.nx) + fx.cfg.nx) %
                                         fx.cfg.nx +
                                     fx.dec.halo),
            static_cast<std::size_t>(std::clamp(gj, 0, fx.cfg.ny - 1) +
                                     fx.dec.halo),
            static_cast<std::size_t>(k));
      });
      fx.s.theta = fx.s.gt;
      fx.s.gt.fill(0.0);
      kernels::tracer_tendency(fx.cfg, fx.grid, fx.s.u, fx.s.v, fx.s.w,
                               fx.s.theta, fx.s.gt, 0.0, 0.0, r);
      for (int i = r.i0; i < r.i1; ++i) {
        for (int j = r.j0; j < r.j1; ++j) {
          for (int k = 0; k < fx.cfg.nz; ++k) {
            auto& t = fx.s.theta(static_cast<std::size_t>(i),
                                 static_cast<std::size_t>(j),
                                 static_cast<std::size_t>(k));
            t += fx.cfg.dt * fx.s.gt(static_cast<std::size_t>(i),
                                     static_cast<std::size_t>(j),
                                     static_cast<std::size_t>(k));
            worst = std::max(worst, std::max(t - 20.0, 10.0 - t));
          }
        }
      }
    }
    return worst;
  };
  const double centered = overshoot(ModelConfig::Advection::kCentered2);
  const double dst3 = overshoot(ModelConfig::Advection::kDst3);
  EXPECT_LT(dst3, 0.2 * centered);
  EXPECT_LT(dst3, 1.5);  // DST-3 is near-monotone (no limiter; ~10% of the jump)
}

TEST(Dst3, StableNearLand) {
  ModelConfig cfg = dst3_config();
  cfg.nx = 32;
  cfg.ny = 16;
  cfg.topography = ModelConfig::Topography::kContinents;
  cfg.validate();
  Fixture fx(cfg);
  fx.fill(fx.s.u, [](int, int, int) { return 0.2; });
  fx.fill(fx.s.theta, [](int gi, int, int) { return 10.0 + gi % 3; });
  kernels::apply_velocity_masks(fx.grid, fx.s.u, fx.s.v,
                                kernels::extended(fx.dec, 1));
  const auto r = kernels::extended(fx.dec, 0);
  kernels::tracer_tendency(fx.cfg, fx.grid, fx.s.u, fx.s.v, fx.s.w,
                           fx.s.theta, fx.s.gt, 0.0, 0.0, r);
  for (double g : fx.s.gt) ASSERT_TRUE(std::isfinite(g));
}

TEST(Dst3, RequiresWideHalo) {
  ModelConfig cfg = small_ocean(1, 1, /*halo=*/2);
  cfg.advection = ModelConfig::Advection::kDst3;
  testing::run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    EXPECT_THROW(Model model(cfg, comm), std::invalid_argument);
  });
}

// ---------------- implicit vertical diffusion -------------------------------

TEST(ImplicitVdiff, UniformColumnUnchanged) {
  Fixture fx(small_ocean(1, 1));
  fx.fill(fx.s.theta, [](int, int, int) { return 12.0; });
  kernels::implicit_vertical_diffusion(fx.cfg, fx.grid, fx.s.theta,
                                       fx.grid.hFacC, 1.0e-2,
                                       kernels::extended(fx.dec, 0));
  const int h = fx.dec.halo;
  for (int k = 0; k < fx.cfg.nz; ++k) {
    EXPECT_NEAR(fx.s.theta(static_cast<std::size_t>(h + 1),
                           static_cast<std::size_t>(h + 1),
                           static_cast<std::size_t>(k)),
                12.0, 1e-12);
  }
}

TEST(ImplicitVdiff, ConservesColumnIntegral) {
  Fixture fx(small_ocean(1, 1));
  fx.fill(fx.s.theta, [](int gi, int gj, int k) {
    return 10.0 + std::sin(0.7 * gi + 0.3 * gj + 1.1 * k) * 4.0;
  });
  const int h = fx.dec.halo;
  auto column = [&](int i, int j) {
    double total = 0;
    for (int k = 0; k < fx.cfg.nz; ++k) {
      total += fx.s.theta(static_cast<std::size_t>(i),
                          static_cast<std::size_t>(j),
                          static_cast<std::size_t>(k)) *
               fx.grid.dzf[static_cast<std::size_t>(k)] *
               fx.grid.hFacC(static_cast<std::size_t>(i),
                             static_cast<std::size_t>(j),
                             static_cast<std::size_t>(k));
    }
    return total;
  };
  const double before = column(h + 2, h + 3);
  kernels::implicit_vertical_diffusion(fx.cfg, fx.grid, fx.s.theta,
                                       fx.grid.hFacC, 5.0e-2,
                                       kernels::extended(fx.dec, 0));
  EXPECT_NEAR(column(h + 2, h + 3), before, 1e-9 * std::abs(before));
}

TEST(ImplicitVdiff, UnconditionallyStableWithHugeCoefficient) {
  // Explicit diffusion with kv*dt/dz^2 >> 1 would blow up; the implicit
  // solve instead homogenizes the column toward its mean.
  Fixture fx(small_ocean(1, 1));
  const int h = fx.dec.halo;
  double mean = 0;
  for (int k = 0; k < fx.cfg.nz; ++k) {
    const double v = (k % 2) ? 30.0 : -10.0;
    fx.s.theta(static_cast<std::size_t>(h), static_cast<std::size_t>(h),
               static_cast<std::size_t>(k)) = v;
    mean += v;
  }
  mean /= fx.cfg.nz;
  kernels::implicit_vertical_diffusion(fx.cfg, fx.grid, fx.s.theta,
                                       fx.grid.hFacC, 1.0e6,
                                       kernels::extended(fx.dec, 0));
  for (int k = 0; k < fx.cfg.nz; ++k) {
    const double v = fx.s.theta(static_cast<std::size_t>(h),
                                static_cast<std::size_t>(h),
                                static_cast<std::size_t>(k));
    ASSERT_TRUE(std::isfinite(v));
    EXPECT_NEAR(v, mean, 0.5);  // nearly homogenized, no overshoot
    EXPECT_GE(v, -10.0 - 1e-9);
    EXPECT_LE(v, 30.0 + 1e-9);
  }
}

TEST(ImplicitVdiff, SmoothsGradient) {
  Fixture fx(small_ocean(1, 1));
  const int h = fx.dec.halo;
  for (int k = 0; k < fx.cfg.nz; ++k) {
    fx.s.theta(static_cast<std::size_t>(h), static_cast<std::size_t>(h),
               static_cast<std::size_t>(k)) = 20.0 - 4.0 * k;
  }
  kernels::implicit_vertical_diffusion(fx.cfg, fx.grid, fx.s.theta,
                                       fx.grid.hFacC, 1.0e-1,
                                       kernels::extended(fx.dec, 0));
  const double top = fx.s.theta(static_cast<std::size_t>(h),
                                static_cast<std::size_t>(h), 0);
  const double bot = fx.s.theta(
      static_cast<std::size_t>(h), static_cast<std::size_t>(h),
      static_cast<std::size_t>(fx.cfg.nz - 1));
  EXPECT_LT(top, 20.0);
  EXPECT_GT(bot, 20.0 - 4.0 * (fx.cfg.nz - 1));
  EXPECT_GT(top, bot);  // ordering (stability) preserved
}

TEST(ImplicitVdiff, ZeroCoefficientIsNoOp) {
  Fixture fx(small_ocean(1, 1));
  fx.fill(fx.s.theta, [](int gi, int, int k) { return gi + 2.0 * k; });
  const Array3D<double> before = fx.s.theta;
  const double flops = kernels::implicit_vertical_diffusion(
      fx.cfg, fx.grid, fx.s.theta, fx.grid.hFacC, 0.0,
      kernels::extended(fx.dec, 0));
  EXPECT_EQ(flops, 0.0);
  EXPECT_EQ(fx.s.theta, before);
}

}  // namespace
}  // namespace hyades::gcm
