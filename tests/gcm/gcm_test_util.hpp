// Shared helpers for GCM tests: spin up a cluster runtime with one rank
// per SMP (the timing side is not under test here) and run a body on
// every rank.
#pragma once

#include "cluster/runtime.hpp"
#include "comm/comm.hpp"
#include "gcm/config.hpp"
#include "net/arctic_model.hpp"

namespace hyades::gcm::testing {

inline const net::ArcticModel& test_net() {
  static const net::ArcticModel net;
  return net;
}

template <typename Fn>
void run_ranks(int nranks, Fn&& body) {
  cluster::MachineConfig mc;
  mc.smp_count = nranks;
  mc.procs_per_smp = 1;
  mc.interconnect = &test_net();
  cluster::Runtime rt(mc);
  rt.run([&](cluster::RankContext& ctx) {
    comm::Comm comm(ctx);
    body(ctx, comm);
  });
}

// A small, fast configuration: 16 x 8 x 4 flat-bottom ocean box.
inline ModelConfig small_ocean(int px, int py, int halo = 2) {
  ModelConfig c;
  c.isomorph = Isomorph::kOcean;
  c.nx = 16;
  c.ny = 8;
  c.nz = 4;
  c.px = px;
  c.py = py;
  c.halo = halo;
  c.dt = 400.0;
  c.total_depth = 4000.0;
  // Scale mixing to the coarse grid (dx ~ 2500 km here).
  c.visc_h = 1.0e6;
  c.diff_h = 1.0e5;
  c.validate();
  return c;
}

inline ModelConfig small_atmos(int px, int py, int halo = 2) {
  ModelConfig c = small_ocean(px, py, halo);
  c.isomorph = Isomorph::kAtmosphere;
  c.nz = 4;
  c.total_depth = 1.0e4;
  c.rho0 = 1.2;
  c.theta0 = 300.0;
  c.eos_alpha = 1.0 / 300.0;
  c.eos_beta = 0.0;
  c.visc_h = 1.0e6;
  c.diff_h = 2.0e5;
  c.diff_v = 1.0e-3;
  c.visc_v = 1.0e-2;
  c.wind_tau0 = 0.0;
  c.validate();
  return c;
}

}  // namespace hyades::gcm::testing
