// Compute/communication overlap in the PS (ModelConfig::overlap_comm).
//
// Two regression surfaces:
//   1. overlap_comm = off must reproduce the seed StepStats *exactly* --
//      the blocking path is now start+finish of the split-phase core,
//      and the interior/rim kernel split must not move a single flop or
//      microsecond.  Golden hexfloat values below were captured from the
//      pre-split tree on all four topography presets.
//   2. overlap_comm = on must leave the model state bitwise identical
//      (the refactor only re-orders *where* cells are computed, never
//      the per-cell arithmetic) while recovering exchange time.
#include <gtest/gtest.h>

#include <mutex>
#include <vector>

#include "gcm/model.hpp"
#include "net/arctic_model.hpp"
#include "net/ethernet.hpp"

namespace hyades::gcm {
namespace {

struct RankStats {
  double tps = 0, exch = 0, tds = 0, ps = 0, ds = 0;
  int ni = 0;
};

struct GoldenCase {
  ModelConfig::Topography topo;
  double max_clock;
  RankStats rank[4];
};

// Captured from the seed (blocking-only) implementation: 2 SMPs x 2
// procs, ArcticModel, ocean 16x8x4, px=py=2, halo=2, dt=400,
// visc_h=1e6, diff_h=1e5, stats of the third step.
const GoldenCase kGolden[] = {
    {ModelConfig::Topography::kFlat,
     0x1.36f5a4c55a4c7p+13,
     {{0x1.8093294532974p+10, 0x1.3f91d7a91d8p+9, 0x1.60d55555555f8p+10,
       0x1.5f3cp+15, 0x1.d37p+13, 10},
      {0x1.8093294532974p+10, 0x1.3f91d7a91d8p+9, 0x1.60d55555555f8p+10,
       0x1.5f3cp+15, 0x1.d37p+13, 10},
      {0x1.85d3dc013dc2cp+10, 0x1.3679a3879a3d8p+9, 0x1.5b94a2994a34p+10,
       0x1.6e8cp+15, 0x1.d13p+13, 10},
      {0x1.85d3dc013dc2cp+10, 0x1.3679a3879a3d8p+9, 0x1.5b94a2994a34p+10,
       0x1.6e8cp+15, 0x1.d13p+13, 10}}},
    {ModelConfig::Topography::kRidge,
     0x1.82ff97bcf97adp+13,
     {{0x1.75a35fe235f7p+10, 0x1.3fa2e8ba2e7dp+9, 0x1.39e03b9403c2cp+11,
       0x1.4e18p+15, 0x1.78d8p+14, 19},
      {0x1.74613dc013d48p+10, 0x1.3f91d7a91d6cp+9, 0x1.3a814ca514d4p+11,
       0x1.4c2ep+15, 0x1.78f8p+14, 19},
      {0x1.7a625db625d4p+10, 0x1.36822c1022b2p+9, 0x1.3780bcaa0bd4p+11,
       0x1.5ca4p+15, 0x1.77c8p+14, 19},
      {0x1.79203b9403b2p+10, 0x1.36711aff11a1p+9, 0x1.3821cdbb1ce5p+11,
       0x1.5abap+15, 0x1.77e8p+14, 19}}},
    {ModelConfig::Topography::kContinents,
     0x1.7dbabacd6bab7p+13,
     {{0x1.4a3403b94034p+10, 0x1.4b7c8253c816p+9, 0x1.25e8c6980c728p+11,
       0x1.00f8p+15, 0x1.2064p+14, 18},
      {0x1.4e3470f34708p+10, 0x1.3f91d7a91d6cp+9, 0x1.23c6f6616f6fp+11,
       0x1.1088p+15, 0x1.35cp+14, 18},
      {0x1.4c61f07c1f01p+10, 0x1.422009ee0091p+9, 0x1.24d1d0369d0c4p+11,
       0x1.0bbp+15, 0x1.1fc4p+14, 18},
      {0x1.50e4129e4123p+10, 0x1.363de7cbde6fp+9, 0x1.226f258bf2618p+11,
       0x1.1c04p+15, 0x1.351p+14, 18}}},
    {ModelConfig::Topography::kBasin,
     0x1.5c7fed61bed6ap+13,
     {{0x1.4f2b7b30b7b5p+10, 0x1.3f91d7a91d7ep+9, 0x1.0ad138c913948p+11,
       0x1.120ap+15, 0x1.2d3p+14, 16},
      {0x1.544736ec73708p+10, 0x1.3fd61bed61c2p+9, 0x1.08435aeb35b6cp+11,
       0x1.19dp+15, 0x1.2cbp+14, 16},
      {0x1.52655a4c55a68p+10, 0x1.36578165781ap+9, 0x1.0934493b449bcp+11,
       0x1.1e4ap+15, 0x1.2c5p+14, 16},
      {0x1.578116081162p+10, 0x1.369bc5a9bc5ep+9, 0x1.06a66b5d66bdcp+11,
       0x1.261p+15, 0x1.2bdp+14, 16}}},
};

ModelConfig golden_cfg(ModelConfig::Topography topo, bool overlap) {
  ModelConfig cfg;
  cfg.isomorph = Isomorph::kOcean;
  cfg.nx = 16;
  cfg.ny = 8;
  cfg.nz = 4;
  cfg.px = 2;
  cfg.py = 2;
  cfg.halo = 2;
  cfg.dt = 400.0;
  cfg.visc_h = 1.0e6;
  cfg.diff_h = 1.0e5;
  cfg.topography = topo;
  cfg.overlap_comm = overlap;
  cfg.validate();
  return cfg;
}

TEST(OverlapOff, ReproducesSeedStepStatsExactly) {
  const net::ArcticModel net;
  for (const GoldenCase& gc : kGolden) {
    cluster::MachineConfig mc;
    mc.smp_count = 2;
    mc.procs_per_smp = 2;
    mc.interconnect = &net;
    cluster::Runtime rt(mc);
    const ModelConfig cfg = golden_cfg(gc.topo, false);
    std::mutex mu;
    rt.run([&](cluster::RankContext& ctx) {
      comm::Comm comm(ctx);
      Model m(cfg, comm);
      m.initialize();
      StepStats st{};
      for (int s = 0; s < 3; ++s) st = m.step();
      std::lock_guard<std::mutex> lock(mu);
      const RankStats& g = gc.rank[ctx.rank()];
      // EXPECT_EQ on doubles: the refactored blocking path must be
      // bit-identical to the seed, not merely close.
      EXPECT_EQ(st.tps_us, g.tps) << "rank " << ctx.rank();
      EXPECT_EQ(st.tps_exch_us, g.exch) << "rank " << ctx.rank();
      EXPECT_EQ(st.tds_us, g.tds) << "rank " << ctx.rank();
      EXPECT_EQ(st.ps_flops, g.ps) << "rank " << ctx.rank();
      EXPECT_EQ(st.ds_flops, g.ds) << "rank " << ctx.rank();
      EXPECT_EQ(st.cg_iterations, g.ni) << "rank " << ctx.rank();
      // Off mode never reports the overlap-only observables.
      EXPECT_EQ(st.tps_interior_us, 0.0);
      EXPECT_EQ(st.overlap_us, 0.0);
      EXPECT_EQ(ctx.accounting().overlap_us, 0.0);
    });
    EXPECT_EQ(rt.max_clock(), gc.max_clock);
  }
}

struct RunOut {
  StepStats st{};
  double max_clock = 0;
  std::vector<double> state;
};

void run_model(bool overlap, const net::Interconnect& net,
               std::array<RunOut, 4>& out) {
  cluster::MachineConfig mc;
  mc.smp_count = 2;
  mc.procs_per_smp = 2;
  mc.interconnect = &net;
  cluster::Runtime rt(mc);
  ModelConfig cfg = golden_cfg(ModelConfig::Topography::kRidge, overlap);
  cfg.nx = 32;
  cfg.ny = 16;
  cfg.validate();
  std::mutex mu;
  rt.run([&](cluster::RankContext& ctx) {
    comm::Comm comm(ctx);
    Model m(cfg, comm);
    m.initialize();
    StepStats st{};
    for (int s = 0; s < 3; ++s) st = m.step();
    std::lock_guard<std::mutex> lock(mu);
    RunOut& o = out[static_cast<std::size_t>(ctx.rank())];
    o.st = st;
    o.max_clock = ctx.clock().now();
    const State& state = m.state();
    for (const Array3D<double>* f :
         {&state.u, &state.v, &state.w, &state.theta, &state.salt}) {
      const std::size_t n = f->nx() * f->ny() * f->nz();
      o.state.insert(o.state.end(), f->data(), f->data() + n);
    }
  });
}

// The interior/rim split changes only *when* cells are computed, never
// the arithmetic: all five state fields must be bitwise identical after
// three steps with overlap on vs off, on both interconnects.
TEST(Overlap, StateBitwiseIdenticalOnAndOff) {
  const net::ArcticModel arctic;
  const net::EthernetModel fe = net::fast_ethernet();
  const net::Interconnect* nets[] = {&arctic, &fe};
  for (const net::Interconnect* net : nets) {
    std::array<RunOut, 4> off, on;
    run_model(false, *net, off);
    run_model(true, *net, on);
    for (int r = 0; r < 4; ++r) {
      ASSERT_EQ(off[static_cast<std::size_t>(r)].state,
                on[static_cast<std::size_t>(r)].state)
          << "rank " << r;
      EXPECT_EQ(off[static_cast<std::size_t>(r)].st.cg_iterations,
                on[static_cast<std::size_t>(r)].st.cg_iterations);
    }
  }
}

// On Fast Ethernet -- exchange-dominated -- overlap must actually hide
// communication: overlap_us > 0, a shorter PS, and a shorter run.
TEST(Overlap, HidesExchangeTimeOnEthernet) {
  const net::EthernetModel fe = net::fast_ethernet();
  std::array<RunOut, 4> off, on;
  run_model(false, fe, off);
  run_model(true, fe, on);
  for (int r = 0; r < 4; ++r) {
    const RunOut& o = off[static_cast<std::size_t>(r)];
    const RunOut& n = on[static_cast<std::size_t>(r)];
    EXPECT_GT(n.st.overlap_us, 0.0) << "rank " << r;
    EXPECT_GT(n.st.tps_interior_us, 0.0) << "rank " << r;
    EXPECT_LT(n.st.tps_us, o.st.tps_us) << "rank " << r;
    EXPECT_LT(n.max_clock, o.max_clock) << "rank " << r;
    // overlap_us is credited per collective, so the five concurrent
    // exchanges may each count the same hidden wall-clock window; the
    // total is still bounded by five times the blocking PS.
    EXPECT_LT(n.st.overlap_us, 5.0 * o.st.tps_us);
  }
}

}  // namespace
}  // namespace hyades::gcm
