#include "gcm/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gcm/eos.hpp"
#include "gcm/grid.hpp"
#include "gcm/state.hpp"
#include "support/rng.hpp"
#include "tests/gcm/gcm_test_util.hpp"

namespace hyades::gcm {
namespace {

using testing::small_ocean;

struct Fixture {
  ModelConfig cfg;
  Decomp dec;
  TileGrid grid;
  State s;

  explicit Fixture(ModelConfig c) : cfg(c), dec(cfg, 0), grid(cfg, dec) {
    s.allocate(dec, cfg.nz);
  }

  // Fill a field everywhere (including halos) from a function of global
  // indices, wrapped periodically in x, so stencils see data consistent
  // with what an exchange would produce.
  template <typename Fn>
  void fill(Array3D<double>& f, Fn fn) {
    for (int i = 0; i < dec.ext_x(); ++i) {
      for (int j = 0; j < dec.ext_y(); ++j) {
        for (int k = 0; k < cfg.nz; ++k) {
          const int gi = ((dec.global_i(i) % cfg.nx) + cfg.nx) % cfg.nx;
          f(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
            static_cast<std::size_t>(k)) = fn(gi, dec.global_j(j), k);
        }
      }
    }
  }

  // Deterministic pseudo-random value per global cell (periodic-safe).
  static double hash_val(int gi, int gj, int k, double lo, double hi) {
    SplitMix64 rng((static_cast<std::uint64_t>(gi) << 32) ^
                   (static_cast<std::uint64_t>(gj + 64) << 16) ^
                   static_cast<std::uint64_t>(k + 7));
    return rng.next_in(lo, hi);
  }

  double tracer_total(const Array3D<double>& tr) const {
    double total = 0;
    for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
      for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
        for (int k = 0; k < cfg.nz; ++k) {
          const auto sj = static_cast<std::size_t>(j);
          const double h = grid.hFacC(static_cast<std::size_t>(i), sj,
                                      static_cast<std::size_t>(k));
          if (h <= 0) continue;
          total += tr(static_cast<std::size_t>(i), sj,
                      static_cast<std::size_t>(k)) *
                   grid.rAc[sj] * grid.dzf[static_cast<std::size_t>(k)] * h;
        }
      }
    }
    return total;
  }
};

TEST(Hydrostatic, UniformFluidHasNoHorizontalGradient) {
  Fixture fx(small_ocean(1, 1));
  fx.fill(fx.s.theta, [](int, int, int k) { return 15.0 + k; });
  fx.fill(fx.s.salt, [](int, int, int) { return 35.0; });
  const auto r = kernels::extended(fx.dec, 1);
  kernels::hydrostatic(fx.cfg, fx.grid, fx.s.theta, fx.s.salt, fx.s.phi, r);
  const int h = fx.dec.halo;
  for (int k = 0; k < fx.cfg.nz; ++k) {
    const double ref = fx.s.phi(static_cast<std::size_t>(h),
                                static_cast<std::size_t>(h),
                                static_cast<std::size_t>(k));
    for (int i = r.i0; i < r.i1; ++i) {
      for (int j = r.j0; j < r.j1; ++j) {
        if (fx.grid.hFacC(static_cast<std::size_t>(i),
                          static_cast<std::size_t>(j),
                          static_cast<std::size_t>(k)) <= 0) {
          continue;  // land halo rows beyond the walls
        }
        EXPECT_NEAR(fx.s.phi(static_cast<std::size_t>(i),
                             static_cast<std::size_t>(j),
                             static_cast<std::size_t>(k)),
                    ref, 1e-12);
      }
    }
  }
}

TEST(Hydrostatic, ColdColumnIsHeavy) {
  // Colder water is denser: phi increases (less negative buoyancy
  // integral) under a cold column relative to a warm one.
  Fixture fx(small_ocean(1, 1));
  fx.fill(fx.s.theta, [&](int gi, int, int) { return gi < 8 ? 10.0 : 20.0; });
  fx.fill(fx.s.salt, [](int, int, int) { return 35.0; });
  kernels::hydrostatic(fx.cfg, fx.grid, fx.s.theta, fx.s.salt, fx.s.phi,
                       kernels::extended(fx.dec, 0));
  const int h = fx.dec.halo;
  const int kb = fx.cfg.nz - 1;
  const double cold = fx.s.phi(static_cast<std::size_t>(h + 2),
                               static_cast<std::size_t>(h + 2),
                               static_cast<std::size_t>(kb));
  const double warm = fx.s.phi(static_cast<std::size_t>(h + 12),
                               static_cast<std::size_t>(h + 2),
                               static_cast<std::size_t>(kb));
  EXPECT_GT(cold, warm);
}

TEST(TracerTendency, ZeroFlowZeroDiffusionGivesZero) {
  Fixture fx(small_ocean(1, 1));
  SplitMix64 rng(5);
  fx.fill(fx.s.theta,
          [&](int, int, int) { return 10.0 + rng.next_double(); });
  const auto r = kernels::extended(fx.dec, 0);
  kernels::tracer_tendency(fx.cfg, fx.grid, fx.s.u, fx.s.v, fx.s.w,
                           fx.s.theta, fx.s.gt, 0.0, 0.0, r);
  for (double g : fx.s.gt) EXPECT_DOUBLE_EQ(g, 0.0);
}

TEST(TracerTendency, UniformTracerUnaffectedByDivergenceFreeFlow) {
  // Solid zonal flow (periodic in x, divergence free) advecting a
  // uniform tracer must produce a zero tendency.
  Fixture fx(small_ocean(1, 1));
  fx.fill(fx.s.u, [](int, int, int) { return 0.3; });
  fx.fill(fx.s.theta, [](int, int, int) { return 7.5; });
  const auto r = kernels::extended(fx.dec, 0);
  kernels::tracer_tendency(fx.cfg, fx.grid, fx.s.u, fx.s.v, fx.s.w,
                           fx.s.theta, fx.s.gt, 0.0, 0.0, r);
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      for (int k = 0; k < fx.cfg.nz; ++k) {
        EXPECT_NEAR(fx.s.gt(static_cast<std::size_t>(i),
                            static_cast<std::size_t>(j),
                            static_cast<std::size_t>(k)),
                    0.0, 1e-14);
      }
    }
  }
}

TEST(TracerTendency, GlobalIntegralVanishes) {
  // Flux form: sum of G * V telescopes to the (closed) boundary for any
  // flow and tracer field on a single periodic tile.
  Fixture fx(small_ocean(1, 1));
  fx.fill(fx.s.u, [&](int gi, int gj, int k) {
    return Fixture::hash_val(gi, gj, k, -0.2, 0.2);
  });
  fx.fill(fx.s.v, [&](int gi, int gj, int k) {
    return Fixture::hash_val(gi + 1000, gj, k, -0.2, 0.2);
  });
  fx.fill(fx.s.theta, [&](int gi, int gj, int k) {
    return Fixture::hash_val(gi + 2000, gj, k, 5.0, 25.0);
  });
  kernels::apply_velocity_masks(fx.grid, fx.s.u, fx.s.v,
                                kernels::extended(fx.dec, 1));
  // w consistent with the (masked) horizontal flow.
  kernels::diagnose_w(fx.cfg, fx.grid, fx.s.u, fx.s.v, fx.s.w,
                      kernels::extended(fx.dec, 0));
  const auto r = kernels::extended(fx.dec, 0);
  kernels::tracer_tendency(fx.cfg, fx.grid, fx.s.u, fx.s.v, fx.s.w,
                           fx.s.theta, fx.s.gt, fx.cfg.diff_h, fx.cfg.diff_v,
                           r);
  double integral = 0;
  double gross = 0;  // sum |G| V: the natural magnitude scale
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      const auto sj = static_cast<std::size_t>(j);
      for (int k = 0; k < fx.cfg.nz; ++k) {
        const double h = fx.grid.hFacC(static_cast<std::size_t>(i), sj,
                                       static_cast<std::size_t>(k));
        if (h <= 0) continue;
        const double gv = fx.s.gt(static_cast<std::size_t>(i), sj,
                                  static_cast<std::size_t>(k)) *
                          fx.grid.rAc[sj] *
                          fx.grid.dzf[static_cast<std::size_t>(k)] * h;
        integral += gv;
        gross += std::abs(gv);
      }
    }
  }
  ASSERT_GT(gross, 0.0);
  EXPECT_LT(std::abs(integral), 1e-11 * gross);
}

TEST(DiagnoseW, ClosesTheDivergenceCellByCell) {
  Fixture fx(small_ocean(1, 1));
  SplitMix64 rng(23);
  fx.fill(fx.s.u, [&](int, int, int) { return rng.next_in(-0.1, 0.1); });
  fx.fill(fx.s.v, [&](int, int, int) { return rng.next_in(-0.1, 0.1); });
  kernels::apply_velocity_masks(fx.grid, fx.s.u, fx.s.v,
                                kernels::extended(fx.dec, 1));
  const auto r = kernels::extended(fx.dec, 0);
  kernels::diagnose_w(fx.cfg, fx.grid, fx.s.u, fx.s.v, fx.s.w, r);
  // Full 3-D divergence of every wet cell must vanish: hdiv + (W_bot -
  // W_top) = 0 with W the diagnosed downward flux.
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      const auto sj = static_cast<std::size_t>(j);
      for (int k = 0; k < fx.cfg.nz; ++k) {
        if (fx.grid.hFacC(static_cast<std::size_t>(i), sj,
                          static_cast<std::size_t>(k)) <= 0) {
          continue;
        }
        const double hdiv =
            kernels::column_flux_divergence(fx.grid, fx.s.u, fx.s.v, i, j, k);
        const double wtop = fx.s.w(static_cast<std::size_t>(i), sj,
                                   static_cast<std::size_t>(k)) *
                            fx.grid.rAc[sj];
        const double wbot =
            (k + 1 < fx.cfg.nz)
                ? fx.s.w(static_cast<std::size_t>(i), sj,
                         static_cast<std::size_t>(k + 1)) *
                      fx.grid.rAc[sj]
                : 0.0;
        EXPECT_NEAR(hdiv + wbot - wtop, 0.0, 1e-2)  // m^3/s vs ~1e7 fluxes
            << i << "," << j << "," << k;
      }
    }
  }
}

TEST(Ab2Update, FirstStepIsForwardEuler) {
  Fixture fx(small_ocean(1, 1));
  fx.fill(fx.s.gt, [](int, int, int) { return 2.0; });
  fx.fill(fx.s.gt_nm1, [](int, int, int) { return -100.0; });  // must be ignored
  const auto r = kernels::extended(fx.dec, 0);
  kernels::ab2_update(fx.cfg, fx.grid.hFacC, fx.s.theta, fx.s.gt,
                      fx.s.gt_nm1, /*first_step=*/true, r);
  EXPECT_NEAR(fx.s.theta(4, 4, 0), fx.cfg.dt * 2.0, 1e-12);
}

TEST(Ab2Update, SecondStepExtrapolates) {
  Fixture fx(small_ocean(1, 1));
  fx.fill(fx.s.gt, [](int, int, int) { return 2.0; });
  fx.fill(fx.s.gt_nm1, [](int, int, int) { return 1.0; });
  const auto r = kernels::extended(fx.dec, 0);
  kernels::ab2_update(fx.cfg, fx.grid.hFacC, fx.s.theta, fx.s.gt,
                      fx.s.gt_nm1, /*first_step=*/false, r);
  const double eps = fx.cfg.ab_eps;
  EXPECT_NEAR(fx.s.theta(4, 4, 0),
              fx.cfg.dt * ((1.5 + eps) * 2.0 - (0.5 + eps) * 1.0), 1e-12);
}

TEST(Ab2Update, MaskedPointsUntouched) {
  ModelConfig cfg = small_ocean(1, 1);
  cfg.topography = ModelConfig::Topography::kContinents;
  cfg.nx = 32;
  cfg.ny = 16;
  cfg.validate();
  Fixture fx(cfg);
  fx.fill(fx.s.gt, [](int, int, int) { return 5.0; });
  const auto r = kernels::extended(fx.dec, 0);
  kernels::ab2_update(fx.cfg, fx.grid.hFacC, fx.s.theta, fx.s.gt,
                      fx.s.gt_nm1, true, r);
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      for (int k = 0; k < cfg.nz; ++k) {
        if (fx.grid.hFacC(static_cast<std::size_t>(i),
                          static_cast<std::size_t>(j),
                          static_cast<std::size_t>(k)) == 0.0) {
          ASSERT_EQ(fx.s.theta(static_cast<std::size_t>(i),
                               static_cast<std::size_t>(j),
                               static_cast<std::size_t>(k)),
                    0.0);
        }
      }
    }
  }
}

TEST(MaskedLaplacian, ZeroOnConstants) {
  Fixture fx(small_ocean(1, 1));
  fx.fill(fx.s.theta, [](int, int, int) { return 42.0; });
  Array3D<double> out = fx.s.theta;
  const auto r = kernels::extended(fx.dec, 0);
  kernels::masked_laplacian(fx.cfg, fx.grid, fx.s.theta, fx.grid.hFacC, out,
                            r);
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      for (int k = 0; k < fx.cfg.nz; ++k) {
        EXPECT_NEAR(out(static_cast<std::size_t>(i),
                        static_cast<std::size_t>(j),
                        static_cast<std::size_t>(k)),
                    0.0, 1e-12);
      }
    }
  }
}

TEST(MaskedLaplacian, SmoothsExtrema) {
  Fixture fx(small_ocean(1, 1));
  fx.fill(fx.s.theta, [](int, int, int) { return 10.0; });
  const int h = fx.dec.halo;
  fx.s.theta(static_cast<std::size_t>(h + 4), static_cast<std::size_t>(h + 3),
             1) = 20.0;  // a hot spot
  Array3D<double> out = fx.s.theta;
  kernels::masked_laplacian(fx.cfg, fx.grid, fx.s.theta, fx.grid.hFacC, out,
                            kernels::extended(fx.dec, 0));
  EXPECT_LT(out(static_cast<std::size_t>(h + 4),
                static_cast<std::size_t>(h + 3), 1),
            0.0);  // the spot is damped
  EXPECT_GT(out(static_cast<std::size_t>(h + 5),
                static_cast<std::size_t>(h + 3), 1),
            0.0);  // neighbours warm
}

TEST(Biharmonic, ConservesTracerIntegral) {
  Fixture fx(small_ocean(1, 1, /*halo=*/3));
  fx.fill(fx.s.theta, [&](int gi, int gj, int k) {
    return Fixture::hash_val(gi, gj, k, 0.0, 10.0);
  });
  fx.s.gt.fill(0.0);
  Array3D<double> scratch = fx.s.gt;
  const auto r = kernels::extended(fx.dec, 0);
  kernels::biharmonic_tendency(fx.cfg, fx.grid, fx.s.theta, fx.grid.hFacC,
                               scratch, fx.s.gt, 1.0e14, r);
  // Integral of the tendency over the (periodic-x, walled-y) domain.
  EXPECT_NEAR(fx.tracer_total(fx.s.gt) /
                  std::max(fx.tracer_total(fx.s.theta), 1.0),
              0.0, 1e-12);
}

TEST(Biharmonic, DampsGridNoiseHarderThanLargeScales) {
  Fixture fx(small_ocean(1, 1, 3));
  // Checkerboard (grid-scale) vs a broad zonal gradient.
  fx.fill(fx.s.theta,
          [](int gi, int gj, int) { return ((gi + gj) % 2) ? 1.0 : -1.0; });
  Array3D<double> g_noise(fx.s.gt), scratch(fx.s.gt);
  g_noise.fill(0.0);
  const auto r = kernels::extended(fx.dec, 0);
  kernels::biharmonic_tendency(fx.cfg, fx.grid, fx.s.theta, fx.grid.hFacC,
                               scratch, g_noise, 1.0e14, r);
  Array3D<double> smooth = fx.s.theta;
  fx.fill(smooth, [&](int gi, int, int) {
    return std::sin(2.0 * M_PI * gi / fx.cfg.nx);
  });
  Array3D<double> g_smooth(fx.s.gt);
  g_smooth.fill(0.0);
  kernels::biharmonic_tendency(fx.cfg, fx.grid, smooth, fx.grid.hFacC,
                               scratch, g_smooth, 1.0e14, r);
  double max_noise = 0, max_smooth = 0;
  for (double v : g_noise) max_noise = std::max(max_noise, std::abs(v));
  for (double v : g_smooth) max_smooth = std::max(max_smooth, std::abs(v));
  EXPECT_GT(max_noise, 20.0 * max_smooth);  // del^4 is scale-selective
}

TEST(CorrectVelocity, RemovesDepthIntegratedDivergence) {
  // The discrete projection identity: after correcting with a ps that
  // solves L ps = -rhs, the depth-integrated divergence vanishes.  Here
  // we verify the simpler consistency: correcting with a constant ps
  // changes nothing.
  Fixture fx(small_ocean(1, 1));
  SplitMix64 rng(41);
  fx.fill(fx.s.u, [&](int, int, int) { return rng.next_in(-0.1, 0.1); });
  Array3D<double> before = fx.s.u;
  Array2D<double> ps(static_cast<std::size_t>(fx.dec.ext_x()),
                     static_cast<std::size_t>(fx.dec.ext_y()), 3.14);
  const int h = fx.dec.halo;
  kernels::correct_velocity(fx.cfg, fx.grid, ps, fx.s.u, fx.s.v,
                            kernels::Range{h, h + fx.dec.snx, h,
                                           h + fx.dec.sny});
  EXPECT_EQ(fx.s.u, before);
}

TEST(ExtendedRange, Arithmetic) {
  const ModelConfig cfg = small_ocean(2, 2);
  const Decomp dec(cfg, 0);
  const auto r0 = kernels::extended(dec, 0);
  EXPECT_EQ(r0.i0, dec.halo);
  EXPECT_EQ(r0.i1, dec.halo + dec.snx);
  const auto r2 = kernels::extended(dec, 2);
  EXPECT_EQ(r2.i0, dec.halo - 2);
  EXPECT_EQ(r2.j1, dec.halo + dec.sny + 2);
}

}  // namespace
}  // namespace hyades::gcm
