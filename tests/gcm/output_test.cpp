#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "gcm/output.hpp"

namespace hyades::gcm {
namespace {

Array2D<double> ramp(std::size_t nx, std::size_t ny) {
  Array2D<double> f(nx, ny);
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < ny; ++j) {
      f(i, j) = static_cast<double>(i + j);
    }
  }
  return f;
}

TEST(Output, PgmHeaderAndSize) {
  const std::string path = ::testing::TempDir() + "hyades_out_test.pgm";
  write_pgm(path, ramp(8, 4));
  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is.good());
  std::string magic;
  int w = 0, h = 0, maxv = 0;
  is >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 8);
  EXPECT_EQ(h, 4);
  EXPECT_EQ(maxv, 255);
  is.get();  // single whitespace after header
  std::vector<char> pixels(8 * 4);
  is.read(pixels.data(), static_cast<std::streamsize>(pixels.size()));
  EXPECT_EQ(is.gcount(), 32);
  std::remove(path.c_str());
}

TEST(Output, PgmRejectsEmpty) {
  EXPECT_THROW(write_pgm("/tmp/never.pgm", Array2D<double>{}),
               std::invalid_argument);
}

TEST(Output, CsvRoundTrips) {
  const std::string path = ::testing::TempDir() + "hyades_out_test.csv";
  write_csv(path, ramp(3, 2));
  std::ifstream is(path);
  std::string line1, line2;
  std::getline(is, line1);
  std::getline(is, line2);
  EXPECT_EQ(line1, "0,1,2");
  EXPECT_EQ(line2, "1,2,3");
  std::remove(path.c_str());
}

TEST(Output, AsciiMapShape) {
  const std::string s = ascii_map(ramp(32, 16), 20, 10);
  int rows = 0;
  for (char c : s) rows += (c == '\n');
  EXPECT_EQ(rows, 10);
  // Monotone field: both ends of the shade ramp appear (sampling may not
  // land exactly on the global max, so accept the two brightest shades).
  EXPECT_TRUE(s.find('@') != std::string::npos ||
              s.find('%') != std::string::npos);
  EXPECT_NE(s.find(' '), std::string::npos);
}

TEST(Output, ConstantFieldDoesNotDivideByZero) {
  Array2D<double> f(4, 4, 1.0);
  const std::string s = ascii_map(f, 4, 4);
  EXPECT_FALSE(s.empty());
}

}  // namespace
}  // namespace hyades::gcm
