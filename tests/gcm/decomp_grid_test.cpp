#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "gcm/decomp.hpp"
#include "gcm/grid.hpp"
#include "tests/gcm/gcm_test_util.hpp"

namespace hyades::gcm {
namespace {

using testing::small_ocean;

TEST(Decomp, TileCoordsAndOffsets) {
  const ModelConfig cfg = small_ocean(4, 2);
  const Decomp d(cfg, 5);  // tile (1, 1)
  EXPECT_EQ(d.tx, 1);
  EXPECT_EQ(d.ty, 1);
  EXPECT_EQ(d.snx, 4);
  EXPECT_EQ(d.sny, 4);
  EXPECT_EQ(d.i0, 4);
  EXPECT_EQ(d.j0, 4);
  EXPECT_EQ(d.ext_x(), 4 + 2 * cfg.halo);
  EXPECT_EQ(d.global_i(cfg.halo), 4);
  EXPECT_EQ(d.global_j(cfg.halo + 3), 7);
}

TEST(Decomp, NeighborsPeriodicInXClosedInY) {
  const ModelConfig cfg = small_ocean(4, 2);
  {
    const Decomp d(cfg, 0);  // tile (0,0): southwest corner
    EXPECT_EQ(d.neighbors[comm::kEast], 1);
    EXPECT_EQ(d.neighbors[comm::kWest], 3);  // periodic wrap
    EXPECT_EQ(d.neighbors[comm::kNorth], 4);
    EXPECT_EQ(d.neighbors[comm::kSouth], -1);
  }
  {
    const Decomp d(cfg, 7);  // tile (3,1): northeast corner
    EXPECT_EQ(d.neighbors[comm::kEast], 4);  // wraps to tile (0,1)
    EXPECT_EQ(d.neighbors[comm::kWest], 6);
    EXPECT_EQ(d.neighbors[comm::kNorth], -1);
    EXPECT_EQ(d.neighbors[comm::kSouth], 3);
  }
}

TEST(Decomp, RejectsBadRank) {
  const ModelConfig cfg = small_ocean(2, 2);
  EXPECT_THROW(Decomp(cfg, 4), std::invalid_argument);
  EXPECT_THROW(Decomp(cfg, -1), std::invalid_argument);
}

TEST(Decomp, BadRankCarriesTypedCode) {
  const ModelConfig cfg = small_ocean(2, 2);
  try {
    const Decomp d(cfg, 4);
    FAIL() << "expected DecompError";
  } catch (const DecompError& e) {
    EXPECT_EQ(e.code(), DecompError::Code::kBadRank);
  }
}

TEST(Decomp, RankOfRejectsTileYOutsideGrid) {
  const ModelConfig cfg = small_ocean(2, 2);
  const Decomp d(cfg, 0);
  // x wraps periodically; y must stay inside the grid.
  EXPECT_EQ(d.rank_of(-1, 0), 1);
  EXPECT_EQ(d.rank_of(2, 1), 2);
  EXPECT_THROW((void)d.rank_of(0, -1), DecompError);
  EXPECT_THROW((void)d.rank_of(0, 2), DecompError);
  try {
    (void)d.rank_of(0, cfg.py);
    FAIL() << "expected DecompError";
  } catch (const DecompError& e) {
    EXPECT_EQ(e.code(), DecompError::Code::kBadRank);
  }
}

TEST(Decomp, OneByNTilesWrapOntoThemselves) {
  // A 1 x py strip decomposition: with a single tile across x, the
  // periodic east/west neighbors are the tile itself.
  ModelConfig cfg = small_ocean(1, 2);
  cfg.halo = 2;
  cfg.validate();
  const Decomp d(cfg, 1);
  EXPECT_EQ(d.snx, cfg.nx);
  EXPECT_EQ(d.neighbors[comm::kEast], 1);
  EXPECT_EQ(d.neighbors[comm::kWest], 1);
  EXPECT_EQ(d.neighbors[comm::kSouth], 0);
  EXPECT_EQ(d.neighbors[comm::kNorth], -1);
}

TEST(Decomp, HaloWiderThanSmallestTileIsTypedError) {
  // 8 tiles across 16 cells leave 2-cell tiles; a 3-wide halo would
  // read past a neighbor's interior.
  ModelConfig cfg = small_ocean(8, 1);
  cfg.halo = 3;
  try {
    const Decomp d(cfg, 0);
    FAIL() << "expected DecompError";
  } catch (const DecompError& e) {
    EXPECT_EQ(e.code(), DecompError::Code::kHaloTooWide);
  }
}

TEST(Decomp, MoreTilesThanCellsIsTypedError) {
  ModelConfig cfg = small_ocean(1, 1);
  cfg.px = cfg.nx + 1;
  try {
    const Decomp d(cfg, 0);
    FAIL() << "expected DecompError";
  } catch (const DecompError& e) {
    EXPECT_EQ(e.code(), DecompError::Code::kBadShape);
  }
}

TEST(Decomp, RemainderTilesPartitionTheGrid) {
  // 3 x 3 tiles over a 16 x 8 grid: neither axis divides evenly; the
  // leading tiles absorb one extra column/row each, the tiles still
  // partition the grid exactly, and the strip-size invariants hold
  // (row-mates share sny, column-mates share snx).
  ModelConfig cfg = small_ocean(1, 1);
  cfg.px = 3;
  cfg.py = 3;
  cfg.halo = 2;
  std::vector<Decomp> tiles;
  for (int r = 0; r < cfg.tiles(); ++r) tiles.emplace_back(cfg, r);
  int covered_x = 0;
  for (int tx = 0; tx < cfg.px; ++tx) {
    EXPECT_EQ(tiles[static_cast<std::size_t>(tx)].i0, covered_x);
    covered_x += tiles[static_cast<std::size_t>(tx)].snx;
  }
  EXPECT_EQ(covered_x, cfg.nx);
  int covered_y = 0;
  for (int ty = 0; ty < cfg.py; ++ty) {
    const auto r = static_cast<std::size_t>(ty * cfg.px);
    EXPECT_EQ(tiles[r].j0, covered_y);
    covered_y += tiles[r].sny;
  }
  EXPECT_EQ(covered_y, cfg.ny);
  for (const Decomp& d : tiles) {
    EXPECT_EQ(d.snx, tiles[static_cast<std::size_t>(d.tx)].snx);
    EXPECT_EQ(d.sny, tiles[static_cast<std::size_t>(d.ty * cfg.px)].sny);
    EXPECT_GE(d.snx, cfg.halo);
    EXPECT_GE(d.sny, cfg.halo);
  }
}

TEST(ChooseTiles, PaperShapeAndNonSquareCounts) {
  EXPECT_EQ(choose_tiles(16, 128, 64), (std::pair<int, int>{4, 4}));
  EXPECT_EQ(choose_tiles(1, 8, 8), (std::pair<int, int>{1, 1}));
  // 6 ranks on the paper grid: 3 x 2 gives the squarest tiles.
  EXPECT_EQ(choose_tiles(6, 128, 64), (std::pair<int, int>{3, 2}));
  // A prime count degenerates to a strip that fits the wide axis.
  EXPECT_EQ(choose_tiles(7, 128, 64), (std::pair<int, int>{7, 1}));
  EXPECT_THROW(choose_tiles(0, 8, 8), DecompError);
  // More ranks than cells: no divisor pair fits.
  EXPECT_THROW(choose_tiles(128 * 64 * 2, 128, 64), DecompError);
}

TEST(TileGrid, MetricsShrinkTowardPoles) {
  const ModelConfig cfg = small_ocean(1, 1);
  const Decomp d(cfg, 0);
  const TileGrid g(cfg, d);
  // dx largest near the equator (middle rows), smaller at the walls.
  const auto jm = static_cast<std::size_t>(cfg.halo + cfg.ny / 2);
  const auto j0 = static_cast<std::size_t>(cfg.halo);
  EXPECT_GT(g.dxC[jm], g.dxC[j0]);
  EXPECT_GT(g.dyC, 0.0);
  // Coriolis negative in the south, positive in the north.
  EXPECT_LT(g.fC[j0], 0.0);
  EXPECT_GT(g.fC[static_cast<std::size_t>(cfg.halo + cfg.ny - 1)], 0.0);
}

TEST(TileGrid, FlatBottomDepthAndLevels) {
  const ModelConfig cfg = small_ocean(1, 1);
  const Decomp d(cfg, 0);
  const TileGrid g(cfg, d);
  for (int i = cfg.halo; i < cfg.halo + cfg.nx; ++i) {
    for (int j = cfg.halo; j < cfg.halo + cfg.ny; ++j) {
      EXPECT_DOUBLE_EQ(g.depth(static_cast<std::size_t>(i),
                               static_cast<std::size_t>(j)),
                       cfg.total_depth);
    }
  }
  double total = 0;
  for (double dz : g.dzf) total += dz;
  EXPECT_NEAR(total, cfg.total_depth, 1e-9);
  // zC strictly increasing (downward).
  for (std::size_t k = 1; k < g.zC.size(); ++k) {
    EXPECT_GT(g.zC[k], g.zC[k - 1]);
  }
}

TEST(TileGrid, WallsAreLand) {
  const ModelConfig cfg = small_ocean(1, 1);
  const Decomp d(cfg, 0);
  const TileGrid g(cfg, d);
  // Halo rows beyond the global y extent must be fully masked.
  for (int i = 0; i < d.ext_x(); ++i) {
    for (int j = 0; j < cfg.halo; ++j) {
      for (int k = 0; k < cfg.nz; ++k) {
        EXPECT_EQ(g.hFacC(static_cast<std::size_t>(i),
                          static_cast<std::size_t>(j),
                          static_cast<std::size_t>(k)),
                  0.0);
      }
    }
  }
}

TEST(TileGrid, RidgeCreatesPartialCells) {
  ModelConfig cfg = small_ocean(1, 1);
  cfg.topography = ModelConfig::Topography::kRidge;
  const Decomp d(cfg, 0);
  const TileGrid g(cfg, d);
  bool found_partial = false;
  bool found_closed = false;
  for (int i = cfg.halo; i < cfg.halo + cfg.nx; ++i) {
    for (int j = cfg.halo; j < cfg.halo + cfg.ny; ++j) {
      for (int k = 0; k < cfg.nz; ++k) {
        const double h = g.hFacC(static_cast<std::size_t>(i),
                                 static_cast<std::size_t>(j),
                                 static_cast<std::size_t>(k));
        if (h > 0 && h < 1) found_partial = true;
        if (h == 0 && k == cfg.nz - 1) found_closed = true;
      }
    }
  }
  EXPECT_TRUE(found_partial);  // shaved cells on the ridge flanks
  EXPECT_TRUE(found_closed);   // the crest closes the deepest level
}

TEST(TileGrid, ContinentsCreateLandColumns) {
  ModelConfig cfg = small_ocean(1, 1);
  cfg.nx = 32;
  cfg.ny = 16;
  cfg.topography = ModelConfig::Topography::kContinents;
  cfg.validate();
  const Decomp d(cfg, 0);
  const TileGrid g(cfg, d);
  EXPECT_LT(g.wet_columns(), static_cast<std::int64_t>(cfg.nx) * cfg.ny);
  EXPECT_GT(g.wet_columns(), 0);
}

TEST(TileGrid, FaceFractionIsMinOfNeighbors) {
  ModelConfig cfg = small_ocean(1, 1);
  cfg.topography = ModelConfig::Topography::kRidge;
  const Decomp d(cfg, 0);
  const TileGrid g(cfg, d);
  for (int i = 1; i < d.ext_x(); ++i) {
    for (int j = 1; j < d.ext_y(); ++j) {
      for (int k = 0; k < cfg.nz; ++k) {
        const auto si = static_cast<std::size_t>(i);
        const auto sj = static_cast<std::size_t>(j);
        const auto sk = static_cast<std::size_t>(k);
        EXPECT_DOUBLE_EQ(g.hFacW(si, sj, sk),
                         std::min(g.hFacC(si - 1, sj, sk), g.hFacC(si, sj, sk)));
        EXPECT_DOUBLE_EQ(g.hFacS(si, sj, sk),
                         std::min(g.hFacC(si, sj - 1, sk), g.hFacC(si, sj, sk)));
      }
    }
  }
}

TEST(TileGrid, WetCensusConsistent) {
  const ModelConfig cfg = small_ocean(2, 2);
  std::int64_t cells = 0, cols = 0;
  for (int r = 0; r < 4; ++r) {
    const Decomp d(cfg, r);
    const TileGrid g(cfg, d);
    cells += g.wet_cells();
    cols += g.wet_columns();
  }
  EXPECT_EQ(cells, static_cast<std::int64_t>(cfg.nx) * cfg.ny * cfg.nz);
  EXPECT_EQ(cols, static_cast<std::int64_t>(cfg.nx) * cfg.ny);
}

}  // namespace
}  // namespace hyades::gcm
