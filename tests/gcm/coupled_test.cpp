#include <gtest/gtest.h>

#include <cmath>

#include "cluster/runtime.hpp"
#include "gcm/coupler.hpp"
#include "gcm/model.hpp"
#include "tests/gcm/gcm_test_util.hpp"

namespace hyades::gcm {
namespace {

using testing::small_atmos;
using testing::small_ocean;
using testing::test_net;

// A miniature Section-5.1 coupled run: ocean ranks 0..3, atmosphere
// ranks 4..7, boundary conditions exchanged every few steps.
TEST(Coupled, OceanAtmosphereExchangeAndStep) {
  cluster::MachineConfig mc;
  mc.smp_count = 8;
  mc.procs_per_smp = 1;
  mc.interconnect = &test_net();
  cluster::Runtime rt(mc);

  const ModelConfig ocfg = small_ocean(2, 2);
  const ModelConfig acfg = small_atmos(2, 2);

  rt.run([&](cluster::RankContext& ctx) {
    const bool ocean_side = ctx.rank() < 4;
    comm::Comm comm(ctx, ocean_side ? 0 : 4, 4);
    Model model(ocean_side ? ocfg : acfg, comm);
    model.initialize();
    Coupler coupler(ctx, /*ocean_base=*/0, /*atmos_base=*/4, /*group_n=*/4);
    EXPECT_EQ(coupler.is_ocean(), ocean_side);

    SurfaceForcing forcing;
    for (int cycle = 0; cycle < 3; ++cycle) {
      coupler.exchange_boundary(model, forcing);
      if (ocean_side) {
        ASSERT_FALSE(forcing.taux.empty());
        ASSERT_FALSE(forcing.qnet.empty());
        for (double v : forcing.qnet) EXPECT_TRUE(std::isfinite(v));
      } else {
        ASSERT_FALSE(forcing.sst.empty());
        // The SST the atmosphere sees is an ocean temperature.
        for (double v : forcing.sst) {
          EXPECT_GT(v, -5.0);
          EXPECT_LT(v, 45.0);
        }
      }
      for (int s = 0; s < 3; ++s) {
        const StepStats st = model.step(&forcing);
        ASSERT_TRUE(st.cg_converged);
      }
      EXPECT_TRUE(std::isfinite(model.kinetic_energy()));
    }
  });
}

TEST(Coupled, HeatFluxHasRestoringSign) {
  // Warm air over cold water must heat the ocean (qnet > 0) and vice
  // versa -- the bulk formula's sign convention.
  cluster::MachineConfig mc;
  mc.smp_count = 2;
  mc.procs_per_smp = 1;
  mc.interconnect = &test_net();
  cluster::Runtime rt(mc);

  ModelConfig ocfg = small_ocean(1, 1);
  ModelConfig acfg = small_atmos(1, 1);

  rt.run([&](cluster::RankContext& ctx) {
    const bool ocean_side = ctx.rank() == 0;
    comm::Comm comm(ctx, ocean_side ? 0 : 1, 1);
    Model model(ocean_side ? ocfg : acfg, comm);
    model.initialize();
    if (!ocean_side) {
      // Make the whole lower atmosphere much warmer (in K) than any SST
      // (in degC): 330 K = 56.85 degC.
      auto& th = model.state().theta;
      const int kb = acfg.nz - 1;
      for (std::size_t i = 0; i < th.nx(); ++i) {
        for (std::size_t j = 0; j < th.ny(); ++j) {
          th(i, j, static_cast<std::size_t>(kb)) = 330.0;
        }
      }
    }
    Coupler coupler(ctx, 0, 1, 1);
    SurfaceForcing forcing;
    coupler.exchange_boundary(model, forcing);
    if (ocean_side) {
      const Decomp& dec = model.decomp();
      for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
        for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
          EXPECT_GT(forcing.qnet(static_cast<std::size_t>(i),
                                 static_cast<std::size_t>(j)),
                    0.0);
        }
      }
    }
  });
}

TEST(Coupled, CouplerRejectsRankOutsideGroups) {
  cluster::MachineConfig mc;
  mc.smp_count = 4;
  mc.procs_per_smp = 1;
  mc.interconnect = &test_net();
  cluster::Runtime rt(mc);
  EXPECT_THROW(rt.run([&](cluster::RankContext& ctx) {
                 Coupler coupler(ctx, 0, 1, 1);  // ranks 2,3 unassigned
               }),
               std::invalid_argument);
}

}  // namespace
}  // namespace hyades::gcm
