#include "gcm/physics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gcm/eos.hpp"
#include "tests/gcm/gcm_test_util.hpp"

namespace hyades::gcm {
namespace {

using testing::small_atmos;
using testing::small_ocean;

struct Fixture {
  ModelConfig cfg;
  Decomp dec;
  TileGrid grid;
  State s;

  explicit Fixture(ModelConfig c) : cfg(c), dec(cfg, 0), grid(cfg, dec) {
    s.allocate(dec, cfg.nz);
  }
};

TEST(AtmosTeq, StableAndBaroclinic) {
  const ModelConfig cfg = small_atmos(1, 1);
  // Statically stable: theta decreases with depth-from-top.
  EXPECT_GT(atmos_teq(cfg, 0.0, 0.0), atmos_teq(cfg, 0.0, cfg.total_depth));
  // Equator warmer than pole at the surface.
  EXPECT_GT(atmos_teq(cfg, 0.0, cfg.total_depth),
            atmos_teq(cfg, 1.2, cfg.total_depth));
  // ...and no meridional gradient at the top.
  EXPECT_NEAR(atmos_teq(cfg, 0.0, 0.0), atmos_teq(cfg, 1.2, 0.0), 1e-12);
}

TEST(OceanWindStress, TradeAndWesterlyBands) {
  const ModelConfig cfg = small_ocean(1, 1);
  // Easterlies at the equator, westerlies in mid-latitudes.
  EXPECT_LT(ocean_wind_stress(cfg, 0.0), 0.0);
  const double mid = 0.65 * cfg.lat_extent_deg * M_PI / 180.0;
  EXPECT_GT(ocean_wind_stress(cfg, mid), 0.0);
  // Symmetric about the equator.
  EXPECT_NEAR(ocean_wind_stress(cfg, mid), ocean_wind_stress(cfg, -mid),
              1e-12);
}

TEST(OceanSstTarget, WarmestAtEquator) {
  const ModelConfig cfg = small_ocean(1, 1);
  const double eq = ocean_sst_target(cfg, 0.0);
  const double hi = ocean_sst_target(cfg, 1.3);
  EXPECT_GT(eq, hi);
  EXPECT_GT(eq, cfg.theta0);
}

TEST(ApplyPhysics, OceanWindDrivesSurfaceOnly) {
  Fixture fx(small_ocean(1, 1));
  SurfaceForcing none;
  apply_physics(fx.cfg, fx.grid, fx.dec, fx.s, none,
                kernels::extended(fx.dec, 0));
  bool surface_forced = false;
  for (int i = fx.dec.halo; i < fx.dec.halo + fx.dec.snx; ++i) {
    for (int j = fx.dec.halo; j < fx.dec.halo + fx.dec.sny; ++j) {
      if (fx.s.gu(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                  0) != 0.0) {
        surface_forced = true;
      }
      for (int k = 1; k < fx.cfg.nz; ++k) {
        ASSERT_EQ(fx.s.gu(static_cast<std::size_t>(i),
                          static_cast<std::size_t>(j),
                          static_cast<std::size_t>(k)),
                  0.0)
            << "wind stress leaked below the surface";
      }
    }
  }
  EXPECT_TRUE(surface_forced);
}

TEST(ApplyPhysics, DisabledForcingIsInert) {
  ModelConfig cfg = small_ocean(1, 1);
  cfg.enable_forcing = false;
  Fixture fx(cfg);
  SurfaceForcing none;
  const double flops = apply_physics(fx.cfg, fx.grid, fx.dec, fx.s, none,
                                     kernels::extended(fx.dec, 0));
  EXPECT_EQ(flops, 0.0);
  for (double g : fx.s.gu) EXPECT_EQ(g, 0.0);
  for (double g : fx.s.gt) EXPECT_EQ(g, 0.0);
}

TEST(GrayRadiation, CoolsWarmAnomalies) {
  ModelConfig cfg = small_atmos(1, 1);
  cfg.enable_radiation = true;
  Fixture fx(cfg);
  for (auto& v : fx.s.theta) v = 300.0;
  // One hot column: radiation must cool it relative to its neighbours.
  const int h = fx.dec.halo;
  for (int k = 0; k < cfg.nz; ++k) {
    fx.s.theta(static_cast<std::size_t>(h + 3), static_cast<std::size_t>(h + 2),
               static_cast<std::size_t>(k)) = 320.0;
  }
  gray_radiation(cfg, fx.grid, fx.s, kernels::extended(fx.dec, 0));
  double hot_net = 0, ref_net = 0;
  for (int k = 0; k < cfg.nz; ++k) {
    hot_net += fx.s.gt(static_cast<std::size_t>(h + 3),
                       static_cast<std::size_t>(h + 2),
                       static_cast<std::size_t>(k));
    ref_net += fx.s.gt(static_cast<std::size_t>(h + 8),
                       static_cast<std::size_t>(h + 2),
                       static_cast<std::size_t>(k));
  }
  EXPECT_LT(hot_net, ref_net);
  // All heating rates finite and modest per step.
  for (double g : fx.s.gt) {
    ASSERT_TRUE(std::isfinite(g));
    ASSERT_LT(std::abs(g) * cfg.dt, 1.0);  // < 1 K per step
  }
}

TEST(GrayRadiation, OffByDefaultForOcean) {
  Fixture fx(small_ocean(1, 1));
  EXPECT_EQ(gray_radiation(fx.cfg, fx.grid, fx.s,
                           kernels::extended(fx.dec, 0)),
            0.0);
}

TEST(MoistureCycle, CondensationDriesAndWarms) {
  ModelConfig cfg = small_atmos(1, 1);
  cfg.enable_moisture = true;
  Fixture fx(cfg);
  for (auto& v : fx.s.theta) v = 290.0;
  for (auto& v : fx.s.salt) v = 0.05;  // strongly super-saturated
  SurfaceForcing none;
  moisture_cycle(cfg, fx.grid, fx.s, none, kernels::extended(fx.dec, 0));
  const int h = fx.dec.halo;
  const double gq = fx.s.gs(static_cast<std::size_t>(h),
                            static_cast<std::size_t>(h), 0);
  const double gt = fx.s.gt(static_cast<std::size_t>(h),
                            static_cast<std::size_t>(h), 0);
  EXPECT_LT(gq, 0.0);                        // moisture removed
  EXPECT_GT(gt, 0.0);                        // latent heating
  EXPECT_NEAR(gt, -cfg.latent_heat_over_cp * gq, 1e-12);  // energy link
}

TEST(MoistureCycle, SubSaturatedColumnOnlyEvaporatesAtSurface) {
  ModelConfig cfg = small_atmos(1, 1);
  cfg.enable_moisture = true;
  Fixture fx(cfg);
  for (auto& v : fx.s.theta) v = 290.0;
  for (auto& v : fx.s.salt) v = 1e-4;  // very dry
  SurfaceForcing none;
  moisture_cycle(cfg, fx.grid, fx.s, none, kernels::extended(fx.dec, 0));
  const int h = fx.dec.halo;
  for (int k = 0; k < cfg.nz - 1; ++k) {
    ASSERT_EQ(fx.s.gs(static_cast<std::size_t>(h), static_cast<std::size_t>(h),
                      static_cast<std::size_t>(k)),
              0.0);
  }
  EXPECT_GT(fx.s.gs(static_cast<std::size_t>(h), static_cast<std::size_t>(h),
                    static_cast<std::size_t>(cfg.nz - 1)),
            0.0);  // surface evaporation moistens
}

TEST(RichardsonMixing, MixesUnstratifiedShearNotStableColumns) {
  ModelConfig cfg = small_ocean(1, 1);
  cfg.enable_ri_mixing = true;
  cfg.eos_beta = 0.0;
  Fixture fx(cfg);
  const int h = fx.dec.halo;
  // Column A: strong shear, no stratification -> vigorous mixing.
  // Column B: same shear, strong stratification -> suppressed mixing.
  for (int k = 0; k < cfg.nz; ++k) {
    for (int col = 0; col < 2; ++col) {
      const auto si = static_cast<std::size_t>(h + (col ? 6 : 2));
      fx.s.u(si, static_cast<std::size_t>(h + 2),
             static_cast<std::size_t>(k)) = 0.5 * k;
      fx.s.theta(si, static_cast<std::size_t>(h + 2),
                 static_cast<std::size_t>(k)) =
          col ? 25.0 - 5.0 * k : 15.0;  // B stratified, A uniform
    }
  }
  richardson_mixing(cfg, fx.grid, fx.s, kernels::extended(fx.dec, 0));
  const double mix_a = std::abs(fx.s.gu(static_cast<std::size_t>(h + 2),
                                        static_cast<std::size_t>(h + 2), 0));
  const double mix_b = std::abs(fx.s.gu(static_cast<std::size_t>(h + 6),
                                        static_cast<std::size_t>(h + 2), 0));
  EXPECT_GT(mix_a, 5.0 * mix_b);
}

TEST(RichardsonMixing, ConservesColumnTracer) {
  ModelConfig cfg = small_ocean(1, 1);
  cfg.enable_ri_mixing = true;
  Fixture fx(cfg);
  const int h = fx.dec.halo;
  for (int k = 0; k < cfg.nz; ++k) {
    fx.s.u(static_cast<std::size_t>(h), static_cast<std::size_t>(h),
           static_cast<std::size_t>(k)) = 0.3 * k;
    fx.s.theta(static_cast<std::size_t>(h), static_cast<std::size_t>(h),
               static_cast<std::size_t>(k)) = 20.0 - k;
  }
  richardson_mixing(cfg, fx.grid, fx.s, kernels::extended(fx.dec, 0));
  double column_total = 0;
  for (int k = 0; k < cfg.nz; ++k) {
    column_total += fx.s.gt(static_cast<std::size_t>(h),
                            static_cast<std::size_t>(h),
                            static_cast<std::size_t>(k)) *
                    fx.grid.dzf[static_cast<std::size_t>(k)] *
                    fx.grid.hFacC(static_cast<std::size_t>(h),
                                  static_cast<std::size_t>(h),
                                  static_cast<std::size_t>(k));
  }
  EXPECT_NEAR(column_total, 0.0, 1e-15);
}

TEST(ConvectiveAdjustment, ConservesHeatAndStabilizes) {
  ModelConfig cfg = small_atmos(1, 1);
  Fixture fx(cfg);
  const int h = fx.dec.halo;
  double before = 0;
  for (int k = 0; k < cfg.nz; ++k) {
    const double v = 280.0 + ((k * 37) % 11);  // scrambled profile
    fx.s.theta(static_cast<std::size_t>(h + 1), static_cast<std::size_t>(h + 1),
               static_cast<std::size_t>(k)) = v;
    before += v * fx.grid.dzf[static_cast<std::size_t>(k)];
  }
  convective_adjustment(cfg, fx.grid, fx.s.theta,
                        kernels::extended(fx.dec, 0));
  double after = 0;
  for (int k = 0; k < cfg.nz; ++k) {
    const double v = fx.s.theta(static_cast<std::size_t>(h + 1),
                                static_cast<std::size_t>(h + 1),
                                static_cast<std::size_t>(k));
    after += v * fx.grid.dzf[static_cast<std::size_t>(k)];
    if (k > 0) {
      EXPECT_LE(v, fx.s.theta(static_cast<std::size_t>(h + 1),
                              static_cast<std::size_t>(h + 1),
                              static_cast<std::size_t>(k - 1)) +
                       1e-9);
    }
  }
  EXPECT_NEAR(after, before, 1e-9 * std::abs(before));
}

}  // namespace
}  // namespace hyades::gcm
