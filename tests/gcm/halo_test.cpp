#include <gtest/gtest.h>

#include "gcm/halo.hpp"
#include "tests/gcm/gcm_test_util.hpp"

namespace hyades::gcm {
namespace {

using testing::run_ranks;
using testing::small_ocean;

// Encode global coordinates into a value so halo contents can be checked
// against the function directly (periodic in x).
double coded(const ModelConfig& cfg, int gi, int gj, int k) {
  const int wi = ((gi % cfg.nx) + cfg.nx) % cfg.nx;
  return wi * 10000.0 + gj * 100.0 + k;
}

TEST(Halo, Exchange3DFillsHalosIncludingCorners) {
  const ModelConfig cfg = small_ocean(2, 2, /*halo=*/2);
  run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    const Decomp dec(cfg, comm.group_rank());
    Array3D<double> f(static_cast<std::size_t>(dec.ext_x()),
                      static_cast<std::size_t>(dec.ext_y()),
                      static_cast<std::size_t>(cfg.nz), -999.0);
    // Fill the interior with the coded global value.
    for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
      for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
        for (int k = 0; k < cfg.nz; ++k) {
          f(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
            static_cast<std::size_t>(k)) =
              coded(cfg, dec.global_i(i), dec.global_j(j), k);
        }
      }
    }
    exchange3d(comm, dec, f, dec.halo);
    // Every halo cell that maps to a real global cell must now hold the
    // coded value -- including the corners.
    for (int i = 0; i < dec.ext_x(); ++i) {
      for (int j = 0; j < dec.ext_y(); ++j) {
        const int gj = dec.global_j(j);
        if (gj < 0 || gj >= cfg.ny) continue;  // beyond the walls
        for (int k = 0; k < cfg.nz; ++k) {
          ASSERT_DOUBLE_EQ(f(static_cast<std::size_t>(i),
                             static_cast<std::size_t>(j),
                             static_cast<std::size_t>(k)),
                           coded(cfg, dec.global_i(i), gj, k))
              << "rank " << comm.group_rank() << " (" << i << "," << j << ","
              << k << ")";
        }
      }
    }
  });
}

TEST(Halo, Exchange3DPartialWidth) {
  const ModelConfig cfg = small_ocean(2, 2, /*halo=*/3);
  run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    const Decomp dec(cfg, comm.group_rank());
    Array3D<double> f(static_cast<std::size_t>(dec.ext_x()),
                      static_cast<std::size_t>(dec.ext_y()),
                      static_cast<std::size_t>(cfg.nz), -999.0);
    for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
      for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
        for (int k = 0; k < cfg.nz; ++k) {
          f(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
            static_cast<std::size_t>(k)) =
              coded(cfg, dec.global_i(i), dec.global_j(j), k);
        }
      }
    }
    exchange3d(comm, dec, f, 1);  // width-1 exchange, as in the DS phase
    // The innermost halo ring is filled; the outer rings stay untouched.
    const int h = dec.halo;
    ASSERT_DOUBLE_EQ(f(static_cast<std::size_t>(h - 1),
                       static_cast<std::size_t>(h), 0),
                     coded(cfg, dec.global_i(h - 1), dec.global_j(h), 0));
    ASSERT_DOUBLE_EQ(
        f(static_cast<std::size_t>(h - 2), static_cast<std::size_t>(h), 0),
        -999.0);
  });
}

TEST(Halo, Exchange2DPeriodicWrapSingleTile) {
  const ModelConfig cfg = small_ocean(1, 1, /*halo=*/2);
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    const Decomp dec(cfg, 0);
    Array2D<double> f(static_cast<std::size_t>(dec.ext_x()),
                      static_cast<std::size_t>(dec.ext_y()), -1.0);
    for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
      for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
        f(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
            coded(cfg, dec.global_i(i), dec.global_j(j), 0);
      }
    }
    exchange2d(comm, dec, f, 2);
    // West halo must hold the wrapped east edge.
    for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
      EXPECT_DOUBLE_EQ(
          f(static_cast<std::size_t>(dec.halo - 1),
            static_cast<std::size_t>(j)),
          coded(cfg, cfg.nx - 1, dec.global_j(j), 0));
      EXPECT_DOUBLE_EQ(
          f(static_cast<std::size_t>(dec.halo + dec.snx),
            static_cast<std::size_t>(j)),
          coded(cfg, 0, dec.global_j(j), 0));
    }
  });
}

TEST(Halo, RejectsBadWidth) {
  const ModelConfig cfg = small_ocean(1, 1, /*halo=*/2);
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    const Decomp dec(cfg, 0);
    Array2D<double> f(static_cast<std::size_t>(dec.ext_x()),
                      static_cast<std::size_t>(dec.ext_y()), 0.0);
    EXPECT_THROW(exchange2d(comm, dec, f, 0), std::invalid_argument);
    EXPECT_THROW(exchange2d(comm, dec, f, 3), std::invalid_argument);
  });
}

}  // namespace
}  // namespace hyades::gcm
