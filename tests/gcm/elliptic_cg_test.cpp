#include <gtest/gtest.h>

#include <cmath>

#include "gcm/cg.hpp"
#include "gcm/elliptic.hpp"
#include "gcm/halo.hpp"
#include "support/rng.hpp"
#include "tests/gcm/gcm_test_util.hpp"

namespace hyades::gcm {
namespace {

using testing::run_ranks;
using testing::small_ocean;

Array2D<double> field(const Decomp& dec, double init = 0.0) {
  return Array2D<double>(static_cast<std::size_t>(dec.ext_x()),
                         static_cast<std::size_t>(dec.ext_y()), init);
}

void fill_random_interior(const Decomp& dec, const TileGrid& grid,
                          Array2D<double>& f, std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
    for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
      if (grid.depth(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) >
          0) {
        f(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
            rng.next_in(-1.0, 1.0);
      }
    }
  }
}

double dot(const Decomp& dec, const Array2D<double>& a,
           const Array2D<double>& b) {
  double s = 0;
  for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
    for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
      s += a(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) *
           b(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
    }
  }
  return s;
}

TEST(Elliptic, ConstantIsInNullSpace) {
  const ModelConfig cfg = small_ocean(1, 1);
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    const Decomp dec(cfg, 0);
    const TileGrid grid(cfg, dec);
    const EllipticOperator op(cfg, dec, grid);
    Array2D<double> p = field(dec, 3.7);
    Array2D<double> out = field(dec);
    exchange2d(comm, dec, p, 1);
    op.apply(p, out);
    for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
      for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
        EXPECT_NEAR(out(static_cast<std::size_t>(i),
                        static_cast<std::size_t>(j)),
                    0.0, 1e-6)
            << i << "," << j;
      }
    }
  });
}

TEST(Elliptic, SymmetricAndPositiveSemidefinite) {
  ModelConfig cfg = small_ocean(1, 1);
  cfg.topography = ModelConfig::Topography::kRidge;  // nontrivial H
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    const Decomp dec(cfg, 0);
    const TileGrid grid(cfg, dec);
    const EllipticOperator op(cfg, dec, grid);
    Array2D<double> p = field(dec), q = field(dec);
    fill_random_interior(dec, grid, p, 11);
    fill_random_interior(dec, grid, q, 22);
    Array2D<double> Lp = field(dec), Lq = field(dec);
    exchange2d(comm, dec, p, 1);
    exchange2d(comm, dec, q, 1);
    op.apply(p, Lp);
    op.apply(q, Lq);
    // <Lp, q> == <p, Lq> (symmetry across the periodic seam included).
    EXPECT_NEAR(dot(dec, Lp, q), dot(dec, p, Lq),
                1e-9 * std::abs(dot(dec, Lp, q)) + 1e-6);
    // <Lp, p> >= 0.
    EXPECT_GE(dot(dec, Lp, p), -1e-9);
  });
}

TEST(Elliptic, DiagonalPositiveOnWetZeroOnLand) {
  ModelConfig cfg = small_ocean(1, 1);
  cfg.nx = 32;
  cfg.ny = 16;
  cfg.topography = ModelConfig::Topography::kContinents;
  cfg.validate();
  run_ranks(1, [&](cluster::RankContext&, comm::Comm&) {
    const Decomp dec(cfg, 0);
    const TileGrid grid(cfg, dec);
    const EllipticOperator op(cfg, dec, grid);
    int wet = 0, dry = 0;
    for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
      for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
        const bool is_wet = grid.depth(static_cast<std::size_t>(i),
                                       static_cast<std::size_t>(j)) > 0;
        if (is_wet) {
          EXPECT_GT(op.diagonal()(static_cast<std::size_t>(i),
                                  static_cast<std::size_t>(j)),
                    0.0);
          ++wet;
        } else {
          EXPECT_EQ(op.diagonal()(static_cast<std::size_t>(i),
                                  static_cast<std::size_t>(j)),
                    0.0);
          ++dry;
        }
      }
    }
    EXPECT_GT(wet, 0);
    EXPECT_GT(dry, 0);
  });
}

TEST(Cg, SolvesManufacturedProblem) {
  const ModelConfig cfg = small_ocean(2, 2);
  run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    const Decomp dec(cfg, comm.group_rank());
    const TileGrid grid(cfg, dec);
    const EllipticOperator op(cfg, dec, grid);
    // Build b = L p_true for a random p_true; then solve from zero.
    Array2D<double> p_true = field(dec);
    fill_random_interior(dec, grid, p_true,
                         static_cast<std::uint64_t>(100 + comm.group_rank()));
    Array2D<double> b = field(dec);
    exchange2d(comm, dec, p_true, 1);
    op.apply(p_true, b);

    Array2D<double> p = field(dec);
    const CgResult res = cg_solve(comm, dec, op, b, p, 1e-10, 2000);
    EXPECT_TRUE(res.converged);
    EXPECT_GT(res.iterations, 0);

    // p and p_true may differ by a constant: compare after removing the
    // mean difference (computed globally).
    std::vector<double> sums{0.0, 0.0};
    for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
      for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
        if (!op.is_wet(i, j)) continue;
        sums[0] += p(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) -
                   p_true(static_cast<std::size_t>(i),
                          static_cast<std::size_t>(j));
        sums[1] += 1.0;
      }
    }
    comm.global_sum(sums);
    const double shift = sums[0] / sums[1];
    for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
      for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
        if (!op.is_wet(i, j)) continue;
        EXPECT_NEAR(p(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) -
                        shift,
                    p_true(static_cast<std::size_t>(i),
                           static_cast<std::size_t>(j)),
                    1e-5);
      }
    }
  });
}

TEST(Cg, ZeroRhsConvergesImmediately) {
  const ModelConfig cfg = small_ocean(1, 1);
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    const Decomp dec(cfg, 0);
    const TileGrid grid(cfg, dec);
    const EllipticOperator op(cfg, dec, grid);
    Array2D<double> b = field(dec), p = field(dec);
    const CgResult res = cg_solve(comm, dec, op, b, p, 1e-8, 100);
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.iterations, 0);
  });
}

TEST(Cg, WarmStartNeedsFewerIterations) {
  const ModelConfig cfg = small_ocean(2, 2);
  run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    const Decomp dec(cfg, comm.group_rank());
    const TileGrid grid(cfg, dec);
    const EllipticOperator op(cfg, dec, grid);
    Array2D<double> p_true = field(dec);
    fill_random_interior(dec, grid, p_true,
                         static_cast<std::uint64_t>(500 + comm.group_rank()));
    Array2D<double> b = field(dec);
    exchange2d(comm, dec, p_true, 1);
    op.apply(p_true, b);

    Array2D<double> cold = field(dec);
    const int cold_iters =
        cg_solve(comm, dec, op, b, cold, 1e-10, 2000).iterations;

    Array2D<double> warm = cold;  // restart from the converged answer
    const int warm_iters =
        cg_solve(comm, dec, op, b, warm, 1e-10, 2000).iterations;
    EXPECT_LT(warm_iters, cold_iters / 4 + 1);
  });
}

TEST(Cg, IterationCountsIdenticalOnAllRanks) {
  const ModelConfig cfg = small_ocean(2, 2);
  run_ranks(4, [&](cluster::RankContext& ctx, comm::Comm& comm) {
    const Decomp dec(cfg, comm.group_rank());
    const TileGrid grid(cfg, dec);
    const EllipticOperator op(cfg, dec, grid);
    Array2D<double> b = field(dec);
    fill_random_interior(dec, grid, b,
                         static_cast<std::uint64_t>(7 + comm.group_rank()));
    // Make b compatible: subtract the global mean over wet cells.
    std::vector<double> sums{0.0, 0.0};
    for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
      for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
        sums[0] += b(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
        sums[1] += 1.0;
      }
    }
    comm.global_sum(sums);
    for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
      for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
        b(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) -=
            sums[0] / sums[1];
      }
    }
    Array2D<double> p = field(dec);
    const CgResult res = cg_solve(comm, dec, op, b, p, 1e-8, 2000);
    // Convergence decisions flow through bitwise-identical global sums;
    // cross-check by summing the iteration counts.
    const double total = comm.global_sum(static_cast<double>(res.iterations));
    EXPECT_DOUBLE_EQ(total, 4.0 * res.iterations);
    (void)ctx;
  });
}

}  // namespace
}  // namespace hyades::gcm
