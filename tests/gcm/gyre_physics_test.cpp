// Physics regression: the wind-driven gyre in a closed basin develops a
// western boundary current (Stommel's westward intensification) -- a
// qualitative solution property that exercises walls, masks, Coriolis
// and the elliptic solver together.
#include <gtest/gtest.h>

#include <cmath>
#include <mutex>

#include "gcm/model.hpp"
#include "tests/gcm/gcm_test_util.hpp"

namespace hyades::gcm {
namespace {

TEST(GyrePhysics, WesternBoundaryIntensification) {
  ModelConfig cfg = testing::small_ocean(2, 2, /*halo=*/2);
  cfg.nx = 32;
  cfg.ny = 16;
  cfg.nz = 3;
  cfg.topography = ModelConfig::Topography::kBasin;
  cfg.wind_tau0 = 0.2;
  cfg.visc_h = 1.0e6;   // Munk layer ~ a grid cell wide at this resolution
  cfg.dt = 2400.0;      // spin-up takes ~2 simulated months
  cfg.validate();

  std::mutex mu;
  testing::run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(cfg, comm);
    m.initialize();
    for (int s = 0; s < 3000; ++s) {
      const StepStats st = m.step();
      ASSERT_TRUE(st.cg_converged);
    }
    const double ke = m.kinetic_energy();
    EXPECT_TRUE(std::isfinite(ke));
    EXPECT_GT(ke, 0.0);

    const auto speed = m.gather_speed(0);
    if (comm.group_rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      // The basin interior spans roughly i in [2, 30); compare the mean
      // speed in the western quarter of the basin against the eastern
      // quarter (away from the land strip at i < 2).
      auto band_mean = [&](int i0, int i1) {
        double sum = 0;
        int n = 0;
        for (int i = i0; i < i1; ++i) {
          for (std::size_t j = 0; j < speed.ny(); ++j) {
            sum += speed(static_cast<std::size_t>(i), j);
            ++n;
          }
        }
        return sum / n;
      };
      const double west = band_mean(2, 9);
      const double east = band_mean(23, 30);
      EXPECT_GT(west, 1.3 * east)
          << "west " << west << " east " << east
          << ": no western intensification";
    }
  });
}

}  // namespace
}  // namespace hyades::gcm
