// Non-hydrostatic mode (Section 3.1): the 3-D elliptic operator, its
// solver, the 3-D projection, and the hydrostatic-limit consistency the
// paper relies on ("In the hydrostatic limit the non-hydrostatic
// pressure component is negligible").
#include <gtest/gtest.h>

#include <cmath>

#include "gcm/cg3.hpp"
#include "gcm/elliptic3.hpp"
#include "gcm/halo.hpp"
#include "gcm/kernels.hpp"
#include "gcm/model.hpp"
#include "support/rng.hpp"
#include "tests/gcm/gcm_test_util.hpp"

namespace hyades::gcm {
namespace {

using testing::run_ranks;
using testing::small_ocean;

Array3D<double> field3(const Decomp& dec, int nz, double init = 0.0) {
  return Array3D<double>(static_cast<std::size_t>(dec.ext_x()),
                         static_cast<std::size_t>(dec.ext_y()),
                         static_cast<std::size_t>(nz), init);
}

double dot3(const Decomp& dec, int nz, const Array3D<double>& a,
            const Array3D<double>& b) {
  double s = 0;
  for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
    for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
      for (int k = 0; k < nz; ++k) {
        s += a(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
               static_cast<std::size_t>(k)) *
             b(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
               static_cast<std::size_t>(k));
      }
    }
  }
  return s;
}

TEST(Elliptic3, ConstantInNullSpaceAndSymmetric) {
  ModelConfig cfg = small_ocean(1, 1);
  cfg.topography = ModelConfig::Topography::kRidge;
  run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    const Decomp dec(cfg, 0);
    const TileGrid grid(cfg, dec);
    const EllipticOperator3 op(cfg, dec, grid);

    Array3D<double> c = field3(dec, cfg.nz, 2.5);
    Array3D<double> out = field3(dec, cfg.nz);
    exchange3d(comm, dec, c, 1);
    op.apply(c, out);
    for (double v : out) EXPECT_NEAR(v, 0.0, 2e-4);  // weights ~ 1e9 scale

    SplitMix64 rng(3);
    Array3D<double> p = field3(dec, cfg.nz), q = field3(dec, cfg.nz);
    for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
      for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
        for (int k = 0; k < cfg.nz; ++k) {
          if (!op.is_wet(i, j, k)) continue;
          p(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
            static_cast<std::size_t>(k)) = rng.next_in(-1, 1);
          q(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
            static_cast<std::size_t>(k)) = rng.next_in(-1, 1);
        }
      }
    }
    Array3D<double> Lp = field3(dec, cfg.nz), Lq = field3(dec, cfg.nz);
    exchange3d(comm, dec, p, 1);
    exchange3d(comm, dec, q, 1);
    op.apply(p, Lp);
    op.apply(q, Lq);
    const double lpq = dot3(dec, cfg.nz, Lp, q);
    const double plq = dot3(dec, cfg.nz, p, Lq);
    EXPECT_NEAR(lpq, plq, 1e-9 * std::abs(lpq) + 1e-3);
    EXPECT_GE(dot3(dec, cfg.nz, Lp, p), -1e-6);  // PSD
  });
}

TEST(Cg3, SolvesManufacturedProblem) {
  const ModelConfig cfg = small_ocean(2, 2);
  run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    const Decomp dec(cfg, comm.group_rank());
    const TileGrid grid(cfg, dec);
    const EllipticOperator3 op(cfg, dec, grid);
    SplitMix64 rng(static_cast<std::uint64_t>(50 + comm.group_rank()));
    Array3D<double> p_true = field3(dec, cfg.nz);
    for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
      for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
        for (int k = 0; k < cfg.nz; ++k) {
          p_true(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                 static_cast<std::size_t>(k)) = rng.next_in(-1, 1);
        }
      }
    }
    Array3D<double> b = field3(dec, cfg.nz);
    exchange3d(comm, dec, p_true, 1);
    op.apply(p_true, b);

    Array3D<double> p = field3(dec, cfg.nz);
    const Cg3Result res = cg3_solve(comm, dec, op, b, p, 1e-10, 3000);
    EXPECT_TRUE(res.converged);

    // Compare gradients (the constant offset is unconstrained): check
    // L p == b directly.
    Array3D<double> check = field3(dec, cfg.nz);
    exchange3d(comm, dec, p, 1);
    op.apply(p, check);
    double num = 0, den = 0;
    for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
      for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
        for (int k = 0; k < cfg.nz; ++k) {
          const double bb =
              b(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                static_cast<std::size_t>(k));
          const double cc =
              check(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                    static_cast<std::size_t>(k));
          num += (bb - cc) * (bb - cc);
          den += bb * bb;
        }
      }
    }
    std::vector<double> sums{num, den};
    comm.global_sum(sums);
    EXPECT_LT(std::sqrt(sums[0] / std::max(sums[1], 1e-300)), 1e-8);
  });
}

ModelConfig nh_config(int px, int py) {
  ModelConfig cfg = small_ocean(px, py);
  cfg.nonhydrostatic = true;
  return cfg;
}

TEST(NonHydro, Full3DDivergenceVanishesAfterStep) {
  run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(nh_config(2, 2), comm);
    m.initialize();
    StepStats st{};
    for (int s = 0; s < 5; ++s) {
      st = m.step();
      ASSERT_TRUE(st.cg_converged);
      ASSERT_TRUE(st.cg3_converged);
    }
    EXPECT_GT(st.cg3_iterations, 0);
    // Per-cell 3-D divergence after the projection.
    const ModelConfig& cfg = m.config();
    const Decomp& dec = m.decomp();
    Array3D<double> div(static_cast<std::size_t>(dec.ext_x()),
                        static_cast<std::size_t>(dec.ext_y()),
                        static_cast<std::size_t>(cfg.nz), 0.0);
    kernels::nh_rhs(cfg, m.grid(), m.state().u, m.state().v, m.state().w,
                    div, kernels::extended(dec, 0));
    double worst = 0;
    for (double v : div) worst = std::max(worst, std::abs(v));
    // rhs units: m^3/s^2 over ~1e10 m^2 cells; the solver's 1e-7 relative
    // target leaves a tiny residual.
    const double scaled = worst * cfg.dt / m.grid().rAc[4];
    EXPECT_LT(scaled, 1e-10);
  });
}

TEST(NonHydro, HydrostaticLimitMatchesHydrostaticModel) {
  // At climate aspect ratios (dx ~ 10^6 m >> dz ~ 10^3 m) the
  // non-hydrostatic pressure is negligible: both formulations must give
  // nearly identical evolutions.
  Array2D<double> theta_h, theta_nh;
  double w_h = 0, w_nh = 0;
  std::mutex mu;
  run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(small_ocean(2, 2), comm);
    m.initialize();
    m.run(8);
    const double w = m.max_abs_w();
    auto g = m.gather_theta(0);
    std::lock_guard<std::mutex> lock(mu);
    w_h = w;
    if (comm.group_rank() == 0) theta_h = std::move(g);
  });
  run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(nh_config(2, 2), comm);
    m.initialize();
    m.run(8);
    const double w = m.max_abs_w();
    auto g = m.gather_theta(0);
    std::lock_guard<std::mutex> lock(mu);
    w_nh = w;
    if (comm.group_rank() == 0) theta_nh = std::move(g);
  });
  ASSERT_FALSE(theta_h.empty());
  double max_dt = 0, scale = 0;
  for (std::size_t i = 0; i < theta_h.nx(); ++i) {
    for (std::size_t j = 0; j < theta_h.ny(); ++j) {
      max_dt = std::max(max_dt, std::abs(theta_h(i, j) - theta_nh(i, j)));
      scale = std::max(scale, std::abs(theta_h(i, j)));
    }
  }
  EXPECT_LT(max_dt, 1e-6 * scale);
  // Vertical velocities agree to a few percent of their (tiny) scale.
  EXPECT_LT(std::abs(w_h - w_nh), 0.1 * std::max(w_h, 1e-12));
}

TEST(NonHydro, StableWithTopography) {
  ModelConfig cfg = nh_config(2, 2);
  cfg.nx = 32;
  cfg.ny = 16;
  cfg.topography = ModelConfig::Topography::kRidge;
  cfg.validate();
  run_ranks(4, [&](cluster::RankContext&, comm::Comm& comm) {
    Model m(cfg, comm);
    m.initialize();
    for (int s = 0; s < 8; ++s) {
      const StepStats st = m.step();
      ASSERT_TRUE(st.cg3_converged);
    }
    EXPECT_TRUE(std::isfinite(m.kinetic_energy()));
    EXPECT_LT(m.max_cfl(), 0.5);
  });
}

}  // namespace
}  // namespace hyades::gcm
