// Parameterized property sweeps across the stack: machine shapes,
// exchange widths and decompositions, fabric sizes, transfer sizes, and
// solver tolerances.
#include <gtest/gtest.h>

#include <cmath>

#include "arctic/fabric.hpp"
#include "comm/comm.hpp"
#include "gcm/cg.hpp"
#include "gcm/halo.hpp"
#include "gcm/model.hpp"
#include "net/arctic_model.hpp"
#include "net/logp.hpp"
#include "sim/scheduler.hpp"
#include "support/rng.hpp"
#include "tests/gcm/gcm_test_util.hpp"

namespace hyades {
namespace {

// ---------- global sum across machine shapes -------------------------------

using Shape = std::pair<int, int>;  // (smps, procs_per_smp)

class GsumShapeSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(GsumShapeSweep, CorrectDeterministicAndMonotone) {
  const auto [smps, ppp] = GetParam();
  const net::ArcticModel net;
  cluster::MachineConfig mc;
  mc.smp_count = smps;
  mc.procs_per_smp = ppp;
  mc.interconnect = &net;

  auto run_once = [&] {
    cluster::Runtime rt(mc);
    rt.run([&](cluster::RankContext& ctx) {
      comm::Comm comm(ctx);
      const double s = comm.global_sum(ctx.rank() + 0.5);
      const int n = smps * ppp;
      EXPECT_DOUBLE_EQ(s, n * (n - 1) / 2.0 + 0.5 * n);
    });
    return rt.max_clock();
  };
  const double t1 = run_once();
  const double t2 = run_once();
  EXPECT_EQ(t1, t2);  // timing determinism
  EXPECT_GE(t1, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GsumShapeSweep,
                         ::testing::Values(Shape{1, 1}, Shape{1, 2},
                                           Shape{2, 1}, Shape{2, 2},
                                           Shape{4, 1}, Shape{4, 2},
                                           Shape{8, 2}, Shape{16, 1},
                                           Shape{16, 2}));

// ---------- halo exchange across widths and decompositions ------------------

struct XchgCase {
  int width;
  int px, py;
};

class ExchangeSweep : public ::testing::TestWithParam<XchgCase> {};

TEST_P(ExchangeSweep, HaloMatchesGlobalFunction) {
  const XchgCase c = GetParam();
  // Halo cannot exceed the tile extent; widths are chosen <= this halo.
  const int halo = std::min({3, 16 / c.px, 8 / c.py});
  ASSERT_LE(c.width, halo);
  gcm::ModelConfig cfg = gcm::testing::small_ocean(c.px, c.py, halo);
  auto coded = [&](int gi, int gj, int k) {
    const int wi = ((gi % cfg.nx) + cfg.nx) % cfg.nx;
    return wi * 10000.0 + gj * 100.0 + k;
  };
  gcm::testing::run_ranks(c.px * c.py, [&](cluster::RankContext&,
                                           comm::Comm& comm) {
    const gcm::Decomp dec(cfg, comm.group_rank());
    Array3D<double> f(static_cast<std::size_t>(dec.ext_x()),
                      static_cast<std::size_t>(dec.ext_y()),
                      static_cast<std::size_t>(cfg.nz), -1.0);
    for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
      for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
        for (int k = 0; k < cfg.nz; ++k) {
          f(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
            static_cast<std::size_t>(k)) =
              coded(dec.global_i(i), dec.global_j(j), k);
        }
      }
    }
    gcm::exchange3d(comm, dec, f, c.width);
    const int h = dec.halo;
    for (int i = h - c.width; i < h + dec.snx + c.width; ++i) {
      for (int j = h - c.width; j < h + dec.sny + c.width; ++j) {
        const int gj = dec.global_j(j);
        if (gj < 0 || gj >= cfg.ny) continue;
        for (int k = 0; k < cfg.nz; ++k) {
          ASSERT_DOUBLE_EQ(f(static_cast<std::size_t>(i),
                             static_cast<std::size_t>(j),
                             static_cast<std::size_t>(k)),
                           coded(dec.global_i(i), gj, k))
              << "w=" << c.width << " px=" << c.px << " py=" << c.py;
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndDecomps, ExchangeSweep,
    ::testing::Values(XchgCase{1, 1, 1}, XchgCase{2, 1, 1}, XchgCase{3, 1, 1},
                      XchgCase{1, 2, 2}, XchgCase{2, 2, 2}, XchgCase{3, 2, 2},
                      XchgCase{3, 4, 1}, XchgCase{2, 1, 4},
                      XchgCase{2, 4, 2}));

// ---------- fabric across endpoint counts -----------------------------------

class FabricSweep : public ::testing::TestWithParam<int> {};

TEST_P(FabricSweep, AllPairsDeliverInOrder) {
  const int endpoints = GetParam();
  sim::Scheduler sched;
  arctic::Fabric fabric(sched, endpoints);
  std::vector<std::uint16_t> last_tag(static_cast<std::size_t>(endpoints), 0);
  bool order_ok = true;
  fabric.set_delivery_handler([&](int node, arctic::Packet&& p) {
    if (p.usr_tag < last_tag[static_cast<std::size_t>(node)]) order_ok = false;
    last_tag[static_cast<std::size_t>(node)] = p.usr_tag;
  });
  SplitMix64 rng(static_cast<std::uint64_t>(endpoints));
  const int src = 0;
  const int dst = endpoints - 1;
  for (std::uint16_t t = 0; t < 64; ++t) {
    arctic::Packet p;
    p.usr_tag = t;
    p.payload.assign(2 + rng.next_below(21), 0u);
    fabric.inject(src, dst, std::move(p));
  }
  sched.run();
  EXPECT_TRUE(order_ok);
  EXPECT_EQ(fabric.stats().delivered, 64u);
  EXPECT_EQ(fabric.stats().crc_flagged, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FabricSweep,
                         ::testing::Values(2, 4, 16, 64, 256));

// ---------- VI transfers across sizes ---------------------------------------

class ViSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ViSweep, ElapsedTracksClosedFormModel) {
  const std::int64_t bytes = GetParam();
  const net::ViTransferResult r = net::measure_vi_transfer(bytes);
  const net::ArcticModel model;
  EXPECT_EQ(r.bytes, bytes);
  // DES within 20% of the closed form everywhere in the sweep.
  EXPECT_NEAR(r.elapsed / model.transfer_time(bytes), 1.0, 0.2)
      << "bytes=" << bytes;
}

INSTANTIATE_TEST_SUITE_P(Sizes, ViSweep,
                         ::testing::Values(64, 512, 2048, 9216, 32768,
                                           131072));

// ---------- CG tolerance sweep ----------------------------------------------

class CgTolSweep : public ::testing::TestWithParam<double> {};

TEST_P(CgTolSweep, ConvergesAndIterationsScaleWithTolerance) {
  const double tol = GetParam();
  const gcm::ModelConfig cfg = gcm::testing::small_ocean(1, 1);
  gcm::testing::run_ranks(1, [&](cluster::RankContext&, comm::Comm& comm) {
    const gcm::Decomp dec(cfg, 0);
    const gcm::TileGrid grid(cfg, dec);
    const gcm::EllipticOperator op(cfg, dec, grid);
    const auto ex = static_cast<std::size_t>(dec.ext_x());
    const auto ey = static_cast<std::size_t>(dec.ext_y());
    Array2D<double> b(ex, ey, 0.0), p(ex, ey, 0.0);
    // Compatible rhs: a zonal wavenumber-2 pattern (zero mean).
    for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
      for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
        b(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
            std::sin(4.0 * M_PI * dec.global_i(i) / cfg.nx);
      }
    }
    const gcm::CgResult loose = gcm::cg_solve(comm, dec, op, b, p, tol, 2000);
    EXPECT_TRUE(loose.converged) << "tol " << tol;
    Array2D<double> p2(ex, ey, 0.0);
    const gcm::CgResult tight =
        gcm::cg_solve(comm, dec, op, b, p2, tol * 0.01, 2000);
    EXPECT_TRUE(tight.converged);
    EXPECT_GE(tight.iterations, loose.iterations);
  });
}

INSTANTIATE_TEST_SUITE_P(Tols, CgTolSweep,
                         ::testing::Values(1e-3, 1e-5, 1e-7));

// ---------- LogP payload sweep ----------------------------------------------

class LogPSweep : public ::testing::TestWithParam<int> {};

TEST_P(LogPSweep, OverheadsScaleWithAccessCount) {
  const int bytes = GetParam();
  const net::PioLogPResult r = net::measure_pio_logp(bytes);
  const int beats = 1 + (bytes + 7) / 8;
  EXPECT_NEAR(r.os, beats * 0.18, 1e-9);
  EXPECT_NEAR(r.orr, beats * 0.93, 1e-9);
  EXPECT_GT(r.L, 0.5);
  EXPECT_LT(r.L, 2.5);
}

INSTANTIATE_TEST_SUITE_P(Payloads, LogPSweep,
                         ::testing::Values(8, 16, 24, 32, 48, 64, 88));

}  // namespace
}  // namespace hyades
