// Regression tests for the two PR-6 bugs in bench/bench_json.hpp:
// non-finite doubles were printed via %.10g as "nan"/"inf" (invalid
// JSON), and control characters below 0x20 passed through strings
// unescaped.  Campaign tooling parses BENCH_*.json with strict parsers,
// so both are checked against a minimal RFC-8259 validator, not just
// expected strings.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "bench/bench_json.hpp"

namespace hyades::bench {
namespace {

std::string dump(const Json& j) {
  std::ostringstream os;
  j.dump(os, 0);
  return os.str();
}

// Minimal strict RFC-8259 recursive-descent validator.  Deliberately
// pedantic: rejects NaN/Infinity tokens, bare control characters inside
// strings, malformed numbers, and trailing garbage -- exactly the
// failure modes the two fixed bugs used to produce.
class StrictJson {
 public:
  static bool valid(const std::string& text) {
    StrictJson p(text);
    p.ws();
    if (!p.value()) return false;
    p.ws();
    return p.i_ == text.size();
  }

 private:
  explicit StrictJson(const std::string& t) : t_(t) {}
  const std::string& t_;
  std::size_t i_ = 0;

  [[nodiscard]] char peek() const { return i_ < t_.size() ? t_[i_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++i_;
    return true;
  }
  bool lit(const char* s) {
    std::size_t j = i_;
    for (; *s != '\0'; ++s, ++j) {
      if (j >= t_.size() || t_[j] != *s) return false;
    }
    i_ = j;
    return true;
  }
  void ws() {
    while (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
           peek() == '\r') {
      ++i_;
    }
  }
  static bool digit(char c) { return c >= '0' && c <= '9'; }
  static bool hex(char c) {
    return digit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
  }

  bool string() {
    if (!eat('"')) return false;
    while (true) {
      if (i_ >= t_.size()) return false;
      const unsigned char c = static_cast<unsigned char>(t_[i_]);
      if (c == '"') {
        ++i_;
        return true;
      }
      if (c < 0x20) return false;  // bare control character: invalid
      if (c == '\\') {
        ++i_;
        const char e = peek();
        if (e == 'u') {
          ++i_;
          for (int k = 0; k < 4; ++k) {
            if (!hex(peek())) return false;
            ++i_;
          }
          continue;
        }
        if (e == '"' || e == '\\' || e == '/' || e == 'b' || e == 'f' ||
            e == 'n' || e == 'r' || e == 't') {
          ++i_;
          continue;
        }
        return false;
      }
      ++i_;
    }
  }

  bool number() {
    (void)eat('-');
    if (eat('0')) {
      // leading zero must not be followed by digits
    } else if (digit(peek())) {
      while (digit(peek())) ++i_;
    } else {
      return false;
    }
    if (eat('.')) {
      if (!digit(peek())) return false;
      while (digit(peek())) ++i_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++i_;
      if (peek() == '+' || peek() == '-') ++i_;
      if (!digit(peek())) return false;
      while (digit(peek())) ++i_;
    }
    return true;
  }

  bool value() {  // NOLINT(misc-no-recursion)
    const char c = peek();
    if (c == '{') {
      ++i_;
      ws();
      if (eat('}')) return true;
      while (true) {
        ws();
        if (!string()) return false;
        ws();
        if (!eat(':')) return false;
        ws();
        if (!value()) return false;
        ws();
        if (eat(',')) continue;
        return eat('}');
      }
    }
    if (c == '[') {
      ++i_;
      ws();
      if (eat(']')) return true;
      while (true) {
        ws();
        if (!value()) return false;
        ws();
        if (eat(',')) continue;
        return eat(']');
      }
    }
    if (c == '"') return string();
    if (lit("true") || lit("false") || lit("null")) return true;
    return number();
  }
};

TEST(BenchJson, NonFiniteDoublesEmitNull) {
  Json root = Json::object();
  root.set("a", std::nan(""))
      .set("b", std::numeric_limits<double>::infinity())
      .set("c", -std::numeric_limits<double>::infinity())
      .set("d", 1.5);
  const std::string text = dump(root);
  // The %.10g bug printed bare nan/inf tokens, which no strict parser
  // accepts; the documented encoding is null.
  EXPECT_EQ(text.find("nan"), std::string::npos) << text;
  EXPECT_EQ(text.find("inf"), std::string::npos) << text;
  EXPECT_NE(text.find("\"a\": null"), std::string::npos) << text;
  EXPECT_NE(text.find("\"b\": null"), std::string::npos) << text;
  EXPECT_NE(text.find("\"c\": null"), std::string::npos) << text;
  EXPECT_NE(text.find("\"d\": 1.5"), std::string::npos) << text;
  EXPECT_TRUE(StrictJson::valid(text)) << text;
}

TEST(BenchJson, NonFiniteInsideArraysAndNesting) {
  Json arr = Json::array();
  arr.push(std::nan("")).push(2.0).push(
      std::numeric_limits<double>::infinity());
  Json root = Json::object();
  root.set("values", std::move(arr));
  const std::string text = dump(root);
  EXPECT_TRUE(StrictJson::valid(text)) << text;
}

TEST(BenchJson, ControlCharactersAreEscaped) {
  // One of each shorthand escape plus representative \u00XX cases: the
  // old write_escaped passed \r \b \f and everything below 0x20 (other
  // than \n \t) straight through.
  const std::string nasty =
      std::string("a\rb\bc\fd\ne\tf") + '\x01' + 'g' + '\x1f' + 'h' +
      '\x1b' + "\"quoted\" back\\slash";
  Json root = Json::object();
  root.set("s", nasty);
  const std::string text = dump(root);
  EXPECT_NE(text.find("\\r"), std::string::npos) << text;
  EXPECT_NE(text.find("\\b"), std::string::npos) << text;
  EXPECT_NE(text.find("\\f"), std::string::npos) << text;
  EXPECT_NE(text.find("\\n"), std::string::npos) << text;
  EXPECT_NE(text.find("\\t"), std::string::npos) << text;
  EXPECT_NE(text.find("\\u0001"), std::string::npos) << text;
  EXPECT_NE(text.find("\\u001f"), std::string::npos) << text;
  EXPECT_NE(text.find("\\u001b"), std::string::npos) << text;
  EXPECT_NE(text.find("\\\"quoted\\\""), std::string::npos) << text;
  EXPECT_NE(text.find("back\\\\slash"), std::string::npos) << text;
  // No raw control byte may survive anywhere in the document.
  for (const char c : text) {
    EXPECT_FALSE(static_cast<unsigned char>(c) < 0x20 && c != '\n')
        << "raw control char " << static_cast<int>(c) << " in: " << text;
  }
  EXPECT_TRUE(StrictJson::valid(text)) << text;
}

TEST(BenchJson, EscapedKeysStayValidToo) {
  Json root = Json::object();
  // Built by concatenation: "\x02c" in one literal would munch to 0x2c.
  root.set(std::string("key\rwith") + '\x02' + "control", 1);
  const std::string text = dump(root);
  EXPECT_NE(text.find("\\u0002"), std::string::npos) << text;
  EXPECT_TRUE(StrictJson::valid(text)) << text;
}

TEST(BenchJson, StrictValidatorRejectsTheOldEncodings) {
  // Sanity: the validator itself must catch the pre-fix documents, or
  // the tests above prove nothing.
  EXPECT_FALSE(StrictJson::valid("{\n  \"x\": nan\n}"));
  EXPECT_FALSE(StrictJson::valid("{\n  \"x\": inf\n}"));
  EXPECT_FALSE(StrictJson::valid(std::string("{\"s\": \"a\rb\"}")));
  EXPECT_TRUE(StrictJson::valid("{\n  \"x\": null\n}"));
}

}  // namespace
}  // namespace hyades::bench
