// Ensemble-farm suite (tier2 + aggregate label `farm_tests`): the
// deterministic job-queue service over the cluster pool.  Governing
// invariants: (1) the whole campaign -- schedule, ledger, diagnostics
// -- is a pure function of the submitted queue, so two runs of the same
// queue produce byte-identical summaries; (2) a duplicate (config hash,
// seed) submission is served from the result cache for zero additional
// simulated steps; (3) priorities and admission control order/refuse
// dispatch deterministically; (4) a member that exhausts its restart
// budget is reported failed without wedging the queue.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>

#include "cluster/fault.hpp"
#include "farm/farm.hpp"
#include "support/logging.hpp"
#include "tests/gcm/gcm_test_util.hpp"

namespace hyades::farm {
namespace {

struct QuietLog {
  LogLevel before = log_level();
  QuietLog() { set_log_level(LogLevel::kError); }
  ~QuietLog() { set_log_level(before); }
};

FarmConfig farm_config(int clusters, int max_pending = 0) {
  FarmConfig fc;
  fc.clusters = clusters;
  fc.max_pending = max_pending;
  fc.scratch_dir =
      (std::filesystem::temp_directory_path() / "hyades_farm_test").string();
  return fc;
}

// A fast 2x2-tile gyre member on a 4-SMP cluster.
JobSpec member(const std::string& name, std::uint64_t seed, int steps = 6,
               int priority = 0) {
  JobSpec s;
  s.name = name;
  s.priority = priority;
  s.seed = seed;
  s.steps = steps;
  s.machine = {4, 1};
  s.config = gcm::testing::small_ocean(2, 2);
  s.config.topography = gcm::ModelConfig::Topography::kBasin;
  return s;
}

// A member whose node 1 dies in every epoch: not survivable by
// restarting, so the resilient driver's typed give-up is guaranteed.
JobSpec doomed_member(const std::string& name) {
  JobSpec s = member(name, /*seed=*/11, /*steps=*/6);
  s.max_restarts = 1;
  for (int epoch = 0; epoch <= s.max_restarts + 1; ++epoch) {
    s.faults.node_kills.push_back({/*rank=*/1, /*at_us=*/50.0, epoch});
  }
  return s;
}

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

TEST(Farm, ConfigHashSeparatesPhysicsFromSeed) {
  const JobSpec a = member("a", 1);
  JobSpec b = member("b", 2);
  // Name, priority and seed are scheduling/identity-cache concerns, not
  // computation: hash must match.
  b.priority = 9;
  EXPECT_EQ(a.config_hash(), b.config_hash());

  // Any knob that changes the stepped bits must change the hash.
  JobSpec wind = member("wind", 1);
  wind.config.wind_tau0 += 0.01;
  EXPECT_NE(a.config_hash(), wind.config_hash());

  JobSpec longer = member("longer", 1);
  longer.steps += 1;
  EXPECT_NE(a.config_hash(), longer.config_hash());

  JobSpec wider = member("wider", 1);
  wider.machine = {2, 2};
  EXPECT_NE(a.config_hash(), wider.config_hash());

  JobSpec faulty = member("faulty", 1);
  faulty.faults.link_kills.push_back({0, 1, 0.0});
  EXPECT_NE(a.config_hash(), faulty.config_hash());
}

TEST(Farm, SameQueueTwiceIsBitIdentical) {
  // The acceptance criterion: two farms fed the identical queue emit
  // byte-identical campaign summaries (the ledger prints KE in hexfloat
  // precisely so bit-level drift would be visible here).
  auto campaign = [] {
    Farm f(farm_config(2));
    f.submit(member("m-a", 101));
    f.submit(member("m-b", 102));
    f.submit(member("m-c", 103, /*steps=*/6, /*priority=*/2));
    f.submit(member("m-a-again", 101));  // dedup'd
    f.run_until_drained();
    return f.format_summary();
  };
  const std::string first = campaign();
  const std::string second = campaign();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("cache"), std::string::npos) << first;
}

TEST(Farm, CacheHitServesDuplicateForZeroSteps) {
  Farm f(farm_config(2));
  const int orig = f.submit(member("orig", 42));
  f.run_until_drained();
  // By value: submit() grows the ledger vector, so a reference taken
  // here would dangle across the resubmissions below.
  const JobRecord r0 = f.job(orig);
  ASSERT_EQ(r0.status, JobStatus::kCompleted);
  EXPECT_FALSE(r0.from_cache);
  EXPECT_EQ(r0.result.steps_committed, 6);
  EXPECT_GT(r0.result.busy_us, 0.0);

  const double steps_before = f.campaign_metrics().get("farm.steps_committed");
  const double busy_before = f.campaign_metrics().get("farm.busy_us");

  const int dup = f.submit(member("dup", 42));
  f.run_until_drained();
  const JobRecord& r1 = f.job(dup);
  ASSERT_EQ(r1.status, JobStatus::kCompleted);
  EXPECT_TRUE(r1.from_cache);
  // Zero additional cost: no steps, no cluster occupancy, instant
  // completion at the dispatch-time job clock.
  EXPECT_EQ(r1.result.steps_committed, 0);
  EXPECT_EQ(r1.result.busy_us, 0.0);
  EXPECT_EQ(r1.cluster, -1);
  EXPECT_EQ(r1.start_us, r1.finish_us);
  EXPECT_EQ(f.campaign_metrics().get("farm.steps_committed"), steps_before);
  EXPECT_EQ(f.campaign_metrics().get("farm.busy_us"), busy_before);
  EXPECT_EQ(f.campaign_metrics().get("farm.cache_hits"), 1.0);
  EXPECT_EQ(f.campaign_metrics().get("farm.steps_saved"), 6.0);
  // The cached diagnostics ARE the original's, to the bit.
  EXPECT_TRUE(
      same_bits(r0.result.kinetic_energy, r1.result.kinetic_energy));
  EXPECT_TRUE(same_bits(r0.result.mean_theta, r1.result.mean_theta));

  // A fresh seed of the same configuration is a new ensemble draw, not
  // a cache hit.
  const int fresh = f.submit(member("fresh-seed", 43));
  f.run_until_drained();
  EXPECT_FALSE(f.job(fresh).from_cache);
  EXPECT_EQ(f.job(fresh).result.steps_committed, 6);

  const Farm::CampaignSummary s = f.summary();
  EXPECT_EQ(s.completed, 3);
  EXPECT_EQ(s.cache_hits, 1);
  EXPECT_EQ(s.steps_committed, 12);
  EXPECT_EQ(s.steps_saved, 6);
}

TEST(Farm, PriorityOrderAndFifoWithinClass) {
  // One pool cluster: dispatch order is fully visible in the start
  // stamps.  Highest priority first; FIFO among equals.
  Farm f(farm_config(1));
  const int low_a = f.submit(member("low-a", 201, 6, /*priority=*/0));
  const int low_b = f.submit(member("low-b", 202, 6, /*priority=*/0));
  const int urgent = f.submit(member("urgent", 203, 6, /*priority=*/5));
  f.run_until_drained();

  const JobRecord& ru = f.job(urgent);
  const JobRecord& ra = f.job(low_a);
  const JobRecord& rb = f.job(low_b);
  ASSERT_EQ(ru.status, JobStatus::kCompleted);
  ASSERT_EQ(ra.status, JobStatus::kCompleted);
  ASSERT_EQ(rb.status, JobStatus::kCompleted);
  // urgent overtakes both despite submitting last...
  EXPECT_EQ(ru.start_us, 0.0);
  EXPECT_LE(ru.finish_us, ra.start_us);
  // ...and the two priority-0 members keep submission order.
  EXPECT_LE(ra.finish_us, rb.start_us);
  // Single cluster: everyone ran on slot 0, back to back.
  EXPECT_EQ(ru.cluster, 0);
  EXPECT_EQ(ra.cluster, 0);
  EXPECT_EQ(rb.cluster, 0);
}

TEST(Farm, AdmissionControlRejectsOverCapacity) {
  Farm f(farm_config(1, /*max_pending=*/2));
  const int a = f.submit(member("fits-a", 301));
  const int b = f.submit(member("fits-b", 302));
  const int over = f.submit(member("over", 303));
  EXPECT_EQ(f.job(a).status, JobStatus::kQueued);
  EXPECT_EQ(f.job(b).status, JobStatus::kQueued);
  EXPECT_EQ(f.job(over).status, JobStatus::kRejected);
  EXPECT_NE(f.job(over).error.find("admission"), std::string::npos)
      << f.job(over).error;

  f.run_until_drained();
  // The rejected job stays rejected -- never silently run later -- and
  // the admitted ones complete normally.
  EXPECT_EQ(f.job(over).status, JobStatus::kRejected);
  EXPECT_EQ(f.job(a).status, JobStatus::kCompleted);
  EXPECT_EQ(f.job(b).status, JobStatus::kCompleted);
  const Farm::CampaignSummary s = f.summary();
  EXPECT_EQ(s.submitted, 3);
  EXPECT_EQ(s.completed, 2);
  EXPECT_EQ(s.rejected, 1);
  EXPECT_EQ(f.campaign_metrics().get("farm.jobs_rejected"), 1.0);

  // Capacity freed by draining: a resubmit is admitted (and, identical
  // spec, served from cache).
  const int again = f.submit(member("over-again", 303));
  f.run_until_drained();
  EXPECT_EQ(f.job(again).status, JobStatus::kCompleted);
}

TEST(Farm, RestartExhaustedMemberFailsWithoutWedgingQueue) {
  QuietLog quiet;
  Farm f(farm_config(1));
  const int doomed = f.submit(doomed_member("doomed"));
  const int after = f.submit(member("after", 401));
  f.run_until_drained();

  const JobRecord& rd = f.job(doomed);
  EXPECT_EQ(rd.status, JobStatus::kFailed);
  EXPECT_FALSE(rd.error.empty());
  // A failed member commits zero steps but still burned real virtual
  // time on its cluster -- the campaign accounting must show both.
  EXPECT_EQ(rd.result.steps_committed, 0);
  EXPECT_GT(rd.result.busy_us, 0.0);
  EXPECT_GT(rd.result.restarts, 0);

  // The queue kept draining: the member behind the wreck completes,
  // scheduled after the failed job released its cluster.
  const JobRecord& ra = f.job(after);
  EXPECT_EQ(ra.status, JobStatus::kCompleted);
  EXPECT_GE(ra.start_us, rd.finish_us);

  const Farm::CampaignSummary s = f.summary();
  EXPECT_EQ(s.failed, 1);
  EXPECT_EQ(s.completed, 1);
  EXPECT_GT(s.restarts, 0);
  EXPECT_EQ(f.campaign_metrics().get("farm.jobs_failed"), 1.0);

  // Failures are never cached: resubmitting the doomed spec runs (and
  // fails) again instead of serving a bogus hit.
  const int again = f.submit(doomed_member("doomed-again"));
  f.run_until_drained();
  EXPECT_EQ(f.job(again).status, JobStatus::kFailed);
  EXPECT_FALSE(f.job(again).from_cache);
}

TEST(Farm, PoolSpreadsIndependentMembersAcrossClusters) {
  Farm f(farm_config(2));
  const int a = f.submit(member("spread-a", 501));
  const int b = f.submit(member("spread-b", 502));
  f.run_until_drained();
  // Two free slots, two jobs: both start at t=0 on distinct clusters.
  EXPECT_EQ(f.job(a).start_us, 0.0);
  EXPECT_EQ(f.job(b).start_us, 0.0);
  EXPECT_NE(f.job(a).cluster, f.job(b).cluster);
  const Farm::CampaignSummary s = f.summary();
  // Makespan is the slower member, not the sum.
  EXPECT_LT(s.makespan_us, s.busy_us);
}

}  // namespace
}  // namespace hyades::farm
