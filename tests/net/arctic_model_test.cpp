#include "net/arctic_model.hpp"

#include <gtest/gtest.h>

#include "support/stats.hpp"

namespace hyades::net {
namespace {

TEST(ArcticModel, SmallMessageMatchesPaperFigure2) {
  const ArcticModel m;
  const LogPParams p8 = m.small_message(8);
  EXPECT_NEAR(p8.os, 0.36, 0.01);
  EXPECT_NEAR(p8.orr, 1.86, 0.01);
  EXPECT_LT(relative_error(p8.L, 1.3), 0.10);
  EXPECT_LT(relative_error(p8.half_rtt(), 3.7), 0.10);

  const LogPParams p64 = m.small_message(64);
  EXPECT_LT(relative_error(p64.os, 1.7), 0.10);
  EXPECT_LT(relative_error(p64.orr, 8.6), 0.05);
  EXPECT_LT(relative_error(p64.half_rtt(), 11.7), 0.10);
}

TEST(ArcticModel, TransferOverheadNearPaper) {
  const ArcticModel m;
  // Section 4.1: "a one-time 8.6 usec overhead to negotiate a transfer".
  EXPECT_LT(relative_error(m.transfer_overhead(), 8.6), 0.05);
}

TEST(ArcticModel, PerceivedBandwidthCurve) {
  const ArcticModel m;
  // Section 4.1: 56.8 MB/s perceived at 1 KByte...
  const double bw1k = 1024.0 / m.transfer_time(1024);
  EXPECT_LT(relative_error(bw1k, 56.8), 0.05);
  // ...and >= 90% of the 110 MB/s peak at 9 KBytes.
  const double bw9k = 9.0 * 1024.0 / m.transfer_time(9 * 1024);
  EXPECT_GE(bw9k, 0.90 * 110.0);
  // Peak approached for large blocks.
  const double bw128k = 131072.0 / m.transfer_time(131072);
  EXPECT_GT(bw128k, 108.0);
  EXPECT_LE(bw128k, 110.0);
}

TEST(ArcticModel, BandwidthMonotoneInBlockSize) {
  const ArcticModel m;
  double prev = 0;
  for (std::int64_t s = 4; s <= (1 << 17); s *= 2) {
    const double bw = static_cast<double>(s) / m.transfer_time(s);
    EXPECT_GT(bw, prev);
    prev = bw;
  }
}

TEST(ArcticModel, GlobalSumLatenciesMatchSection42) {
  const ArcticModel m;
  // Sum of butterfly rounds reproduces the measured 2/4/8/16-way
  // latencies of 4.0 / 8.3 / 12.8 / 18.2 us within 10%.
  const double paper[4] = {4.0, 8.3, 12.8, 18.2};
  double acc = 0.0;
  for (int round = 0; round < 4; ++round) {
    acc += m.gsum_round_time(round);
    EXPECT_LT(relative_error(acc, paper[round]), 0.10)
        << "N = " << (2 << round) << " measured-analog " << acc;
  }
}

TEST(ArcticModel, GlobalSumFitMatchesPaper) {
  // Least-squares fit of our model's latencies should be close to the
  // paper's tgsum = 4.67*log2(N) - 0.95.
  const ArcticModel m;
  std::vector<double> xs, ys;
  double acc = 0.0;
  for (int round = 0; round < 4; ++round) {
    acc += m.gsum_round_time(round);
    xs.push_back(round + 1.0);
    ys.push_back(acc);
  }
  const LinearFit fit = least_squares(xs, ys);
  EXPECT_LT(relative_error(fit.slope, 4.67), 0.10);
  EXPECT_GT(fit.r2, 0.98);
}

TEST(ArcticModel, RoundDistanceStructure) {
  const ArcticModel m;
  // Rounds 0/1 stay inside a leaf router; rounds 2/3 cross the root.
  EXPECT_EQ(m.up_levels_for_round(0), 0);
  EXPECT_EQ(m.up_levels_for_round(1), 0);
  EXPECT_EQ(m.up_levels_for_round(2), 1);
  EXPECT_EQ(m.up_levels_for_round(3), 1);
  EXPECT_LT(m.gsum_round_time(0), m.gsum_round_time(2));
  EXPECT_DOUBLE_EQ(m.gsum_round_time(2), m.gsum_round_time(3));
}

TEST(ArcticModel, ExchangePathSlowerThanStandalone) {
  const ArcticModel m;
  EXPECT_LT(m.exchange_bandwidth_mbytes(), m.bandwidth_mbytes());
  EXPECT_GT(m.exchange_transfer_time(65536), m.transfer_time(65536));
  // Effective exchange bandwidth ~ 1/(1/110 + 2/400) ~ 70.9 MB/s.
  EXPECT_NEAR(m.exchange_bandwidth_mbytes(), 70.9, 0.5);
}

TEST(ArcticModel, PathLatencyGrowsWithClimb) {
  const ArcticModel m;
  EXPECT_LT(m.path_latency(0), m.path_latency(1));
  EXPECT_LT(m.path_latency(1), m.path_latency(2));
}

}  // namespace
}  // namespace hyades::net
