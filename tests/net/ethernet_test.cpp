#include "net/ethernet.hpp"

#include <gtest/gtest.h>

#include "support/stats.hpp"

namespace hyades::net {
namespace {

// The models are calibrated against the paper's Figure 12 primitive
// costs; these tests pin that calibration.

TEST(Ethernet, FastEthernetGsumNearPaper) {
  const EthernetModel fe = fast_ethernet();
  // 16 procs on 8 SMPs: 3 butterfly rounds + the SMP-local combine.
  double t = fe.smp_local_sum_time();
  for (int r = 0; r < 3; ++r) t += fe.gsum_round_time(r);
  EXPECT_LT(relative_error(t, 942.0), 0.05);
}

TEST(Ethernet, GigabitGsumNearPaper) {
  const EthernetModel ge = gigabit_ethernet();
  double t = ge.smp_local_sum_time();
  for (int r = 0; r < 3; ++r) t += ge.gsum_round_time(r);
  EXPECT_LT(relative_error(t, 1193.0), 0.05);
}

TEST(Ethernet, GigabitSmallMessageSlowerThanFast) {
  // The paper's measured tgsum is *higher* on Gigabit Ethernet than on
  // Fast Ethernet (1999-era GE NICs had worse small-message latency).
  EXPECT_GT(gigabit_ethernet().gsum_round_time(0),
            fast_ethernet().gsum_round_time(0));
}

TEST(Ethernet, GigabitBulkFasterThanFast) {
  const EthernetModel fe = fast_ethernet();
  const EthernetModel ge = gigabit_ethernet();
  for (std::int64_t bytes : {1024, 16384, 262144}) {
    EXPECT_LT(ge.transfer_time(bytes), fe.transfer_time(bytes));
  }
}

TEST(Ethernet, TransferTimeAffine) {
  const EthernetModel ge = gigabit_ethernet();
  const double t1 = ge.transfer_time(0);
  EXPECT_DOUBLE_EQ(t1, ge.transfer_overhead());
  const double slope =
      (ge.transfer_time(1 << 20) - t1) / static_cast<double>(1 << 20);
  EXPECT_NEAR(1.0 / slope, ge.bandwidth_mbytes(), 1e-9);
}

TEST(Ethernet, OrdersOfMagnitudeVsArcticShape) {
  // Figure 12's qualitative ranking: Arctic ~70x faster than FE and ~15x
  // faster than GE on the DS-phase primitives is driven by these models;
  // here we just check FE >> GE >> (typical Arctic 115 us) on a small
  // exchange-sized transfer.
  const double fe = fast_ethernet().transfer_time(256);
  const double ge = gigabit_ethernet().transfer_time(256);
  EXPECT_GT(fe, ge);
  EXPECT_GT(ge, 115.0);
}

TEST(Ethernet, Names) {
  EXPECT_EQ(fast_ethernet().name(), "Fast Ethernet");
  EXPECT_EQ(gigabit_ethernet().name(), "Gigabit Ethernet");
  EXPECT_EQ(hpvm_myrinet().name(), "HPVM/Myrinet");
}

TEST(HpvmMyrinet, MatchesSection6DataPoints) {
  const EthernetModel hpvm = hpvm_myrinet();
  // ~42 MB/s at 1 KByte (paper: 25% below Hyades's exchange).
  const double bw1k = 1024.0 / hpvm.transfer_time(1024);
  EXPECT_LT(relative_error(bw1k, 42.0), 0.05);
  // A 16-way barrier (4 rounds + local) lands above 50 us...
  double barrier = hpvm.smp_local_sum_time();
  for (int r = 0; r < 4; ++r) barrier += hpvm.gsum_round_time(r);
  EXPECT_GT(barrier, 50.0);
  // ...and more than 2.5x Hyades's ~19 us.
  EXPECT_GT(barrier, 2.5 * 19.0);
  EXPECT_LT(barrier, 80.0);  // but the same class, nowhere near Ethernet
}

TEST(HpvmMyrinet, BetweenArcticAndGigabit) {
  const EthernetModel hpvm = hpvm_myrinet();
  const EthernetModel ge = gigabit_ethernet();
  for (std::int64_t bytes : {256, 4096, 65536}) {
    EXPECT_LT(hpvm.transfer_time(bytes), ge.transfer_time(bytes));
  }
  EXPECT_LT(hpvm.gsum_round_time(0), ge.gsum_round_time(0));
}

}  // namespace
}  // namespace hyades::net
