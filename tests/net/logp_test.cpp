#include "net/logp.hpp"

#include <gtest/gtest.h>

#include "net/arctic_model.hpp"
#include "support/stats.hpp"

namespace hyades::net {
namespace {

// Packet-level (DES) measurements against the paper's Figure 2 and the
// closed-form ArcticModel.

TEST(MeasurePioLogp, EightBytePayloadNearFigure2) {
  const PioLogPResult r = measure_pio_logp(8);
  EXPECT_NEAR(r.os, 0.36, 0.01);
  EXPECT_NEAR(r.orr, 1.86, 0.01);
  EXPECT_LT(relative_error(r.half_rtt, 3.7), 0.10);
  EXPECT_LT(relative_error(r.L, 1.3), 0.15);
}

TEST(MeasurePioLogp, SixtyFourBytePayloadNearFigure2) {
  const PioLogPResult r = measure_pio_logp(64);
  EXPECT_LT(relative_error(r.os, 1.7), 0.10);
  EXPECT_LT(relative_error(r.orr, 8.6), 0.05);
  EXPECT_LT(relative_error(r.half_rtt, 11.7), 0.10);
}

TEST(MeasurePioLogp, AgreesWithClosedFormModel) {
  const ArcticModel model;
  for (int bytes : {8, 16, 32, 64}) {
    const PioLogPResult des = measure_pio_logp(bytes);
    const LogPParams analytic = model.small_message(bytes);
    EXPECT_LT(relative_error(des.half_rtt, analytic.half_rtt()), 0.10)
        << "payload " << bytes;
  }
}

TEST(MeasurePioLogp, RejectsBadPayload) {
  EXPECT_THROW(measure_pio_logp(4), std::invalid_argument);
  EXPECT_THROW(measure_pio_logp(10), std::invalid_argument);
  EXPECT_THROW(measure_pio_logp(96), std::invalid_argument);
}

TEST(MeasureViTransfer, OneKilobyteNearPaper) {
  // Section 4.1: 56.8 MByte/sec perceived bandwidth at 1 KByte.
  const ViTransferResult r = measure_vi_transfer(1024);
  EXPECT_LT(relative_error(r.mbytes_per_sec, 56.8), 0.12);
}

TEST(MeasureViTransfer, NineKilobytesNearNinetyPercentPeak) {
  const ViTransferResult r = measure_vi_transfer(9 * 1024);
  EXPECT_GT(r.mbytes_per_sec, 0.87 * 110.0);
}

TEST(MeasureViTransfer, LargeBlocksApproachPeak) {
  const ViTransferResult r = measure_vi_transfer(131072);
  EXPECT_GT(r.mbytes_per_sec, 105.0);
  EXPECT_LE(r.mbytes_per_sec, 111.0);
}

TEST(MeasureViTransfer, MonotoneBandwidth) {
  double prev = 0;
  for (std::int64_t s = 64; s <= 65536; s *= 4) {
    const ViTransferResult r = measure_vi_transfer(s);
    EXPECT_GT(r.mbytes_per_sec, prev);
    prev = r.mbytes_per_sec;
  }
}

TEST(MeasureViTransfer, AgreesWithClosedFormModel) {
  const ArcticModel model;
  for (std::int64_t s : {1024, 8192, 65536}) {
    const ViTransferResult des = measure_vi_transfer(s);
    EXPECT_LT(relative_error(des.elapsed, model.transfer_time(s)), 0.15)
        << "block " << s;
  }
}

}  // namespace
}  // namespace hyades::net
