// Ablation (Figure 5): "Tile sizes and distributions can be defined to
// produce long strips consistent with vector memories ... Alternatively
// small, compact blocks can be created which are better suited to deep
// memory hierarchies."  On the communication side the decomposition also
// sets the halo perimeter: strips trade away one direction's neighbours
// entirely for a much longer edge in the other; compact blocks minimize
// total perimeter.  Measured with the production 2.8125-degree
// atmosphere on 16 processors.
#include <iostream>
#include <mutex>

#include "bench/bench_util.hpp"
#include "cluster/runtime.hpp"
#include "comm/comm.hpp"
#include "gcm/model.hpp"
#include "net/arctic_model.hpp"
#include "support/table.hpp"

namespace {

using namespace hyades;

struct TileStats {
  double texch_ms = 0;   // PS halo exchange per step
  double step_ms = 0;
};

TileStats run_case(int px, int py) {
  const net::ArcticModel net;
  cluster::MachineConfig mc;
  mc.smp_count = 8;
  mc.procs_per_smp = 2;
  mc.interconnect = &net;
  cluster::Runtime rt(mc);
  gcm::ModelConfig cfg = gcm::atmosphere_preset(px, py);
  TileStats out;
  std::mutex mu;
  rt.run([&](cluster::RankContext& ctx) {
    comm::Comm comm(ctx);
    gcm::Model m(cfg, comm);
    m.initialize();
    constexpr int kWarm = 1, kSteps = 3;
    for (int s = 0; s < kWarm; ++s) (void)m.step();
    const auto obs0 = m.stepper().observables();
    for (int s = 0; s < kSteps; ++s) (void)m.step();
    const auto& obs = m.stepper().observables();
    if (comm.group_rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      out.texch_ms = (obs.tps_exch_us - obs0.tps_exch_us) / kSteps / 1000.0;
      out.step_ms =
          ((obs.tps_us - obs0.tps_us) + (obs.tds_us - obs0.tds_us)) / kSteps /
          1000.0;
    }
  });
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation: tile shape (Figure 5: strips vs compact blocks)");
  Table t({"decomposition", "tile", "halo perimeter", "texch/step (ms)",
           "step (ms)"});
  struct Case {
    const char* name;
    int px, py;
  };
  for (const Case& c : {Case{"zonal strips", 1, 16}, Case{"squarish", 4, 4},
                        Case{"meridional strips", 16, 1},
                        Case{"2x8 blocks", 2, 8}, Case{"8x2 blocks", 8, 2}}) {
    const TileStats s = run_case(c.px, c.py);
    const int snx = 128 / c.px, sny = 64 / c.py;
    // Cells moved per halo-3 exchange of one field (both x stages plus
    // the corner-carrying y stages), per tile.
    const int perim = 2 * 3 * sny + 2 * 3 * (snx + 6);
    t.add_row({c.name,
               Table::fmt_int(snx) + "x" + Table::fmt_int(sny),
               Table::fmt_int(perim) + " cells/level",
               Table::fmt(s.texch_ms, 2), Table::fmt(s.step_ms, 1)});
  }
  t.print(std::cout,
          "(zonal strips have no east/west remote traffic at px=1 -- the "
          "wrap neighbour is the tile itself -- while compact blocks "
          "minimize total perimeter; the 2.8125-degree atmosphere, 16 "
          "procs / 8 SMPs)");
  return 0;
}
