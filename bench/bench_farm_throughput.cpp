// Ensemble-farm throughput: campaign-level cost accounting for the
// job-queue service.  Runs a fixed campaign -- a bulk ensemble wave, a
// complete duplicate wave (all cache hits), and one doomed fault-sweep
// member -- and reports jobs per virtual hour, cache hit rate, and the
// steps/virtual-time the dedup cache saved.  Emits BENCH_farm.json;
// note the cache-speedup ratio divides by the (zero) virtual cost of
// the cache-served wave, so the JSON emitter's non-finite -> null
// encoding is exercised on every run.
#include <iostream>

#include "bench/bench_json.hpp"
#include "bench/bench_util.hpp"
#include "farm/farm.hpp"
#include "gcm/config.hpp"
#include "support/logging.hpp"
#include "support/table.hpp"

namespace {

hyades::gcm::ModelConfig basin_config() {
  hyades::gcm::ModelConfig c;
  c.isomorph = hyades::gcm::Isomorph::kOcean;
  c.nx = 16;
  c.ny = 8;
  c.nz = 4;
  c.px = 2;
  c.py = 2;
  c.dt = 400.0;
  c.total_depth = 4000.0;
  c.visc_h = 1.0e6;
  c.diff_h = 1.0e5;
  c.topography = hyades::gcm::ModelConfig::Topography::kBasin;
  c.wind_tau0 = 0.15;
  c.validate();
  return c;
}

hyades::farm::JobSpec gyre_member(const std::string& name, std::uint64_t seed,
                                  int steps) {
  hyades::farm::JobSpec s;
  s.name = name;
  s.seed = seed;
  s.steps = steps;
  s.machine = {4, 1};
  s.config = basin_config();
  return s;
}

}  // namespace

int main() {
  using namespace hyades;
  constexpr int kMembers = 6;
  constexpr int kSteps = 6;
  constexpr int kClusters = 2;
  bench::banner("Ensemble-farm throughput (deterministic virtual time)");
  set_log_level(LogLevel::kError);  // the doomed member is meant to die

  farm::FarmConfig fc;
  fc.clusters = kClusters;
  farm::Farm f(fc);

  for (int m = 0; m < kMembers; ++m) {
    f.submit(gyre_member("fresh-" + std::to_string(m),
                         static_cast<std::uint64_t>(700 + m), kSteps));
  }
  farm::JobSpec doomed = gyre_member("doomed", 700, kSteps);
  doomed.max_restarts = 1;
  for (int epoch = 0; epoch <= doomed.max_restarts + 1; ++epoch) {
    doomed.faults.node_kills.push_back({/*rank=*/1, /*at_us=*/50.0, epoch});
  }
  f.submit(doomed);
  for (int m = 0; m < kMembers; ++m) {
    f.submit(gyre_member("dup-" + std::to_string(m),
                         static_cast<std::uint64_t>(700 + m), kSteps));
  }
  f.run_until_drained();

  const farm::Farm::CampaignSummary s = f.summary();
  const double makespan_hours = s.makespan_us / 3.6e9;
  const double jobs_per_hour =
      static_cast<double>(s.completed + s.failed) / makespan_hours;
  const double hit_rate =
      static_cast<double>(s.cache_hits) /
      static_cast<double>(s.completed + s.failed);
  const double fresh_us_per_step =
      s.busy_us / static_cast<double>(s.steps_committed);
  const double saved_us = fresh_us_per_step * static_cast<double>(s.steps_saved);
  // The entire duplicate wave cost zero virtual microseconds, so this
  // speedup is infinite -- by design: it lands in the JSON as null and
  // proves strict parsers still accept the document.
  const double cache_wave_speedup = saved_us / 0.0;

  Table t({"metric", "value"});
  t.add_row({"jobs submitted", Table::fmt_int(s.submitted)});
  t.add_row({"completed / failed",
             Table::fmt_int(s.completed) + " / " + Table::fmt_int(s.failed)});
  t.add_row({"makespan (virtual ms)", Table::fmt(s.makespan_us / 1000.0, 3)});
  t.add_row({"throughput (jobs/virtual hour)", Table::fmt(jobs_per_hour, 0)});
  t.add_row({"cache hit rate", Table::fmt(100.0 * hit_rate, 1) + "%"});
  t.add_row({"steps simulated / saved",
             Table::fmt_int(s.steps_committed) + " / " +
                 Table::fmt_int(s.steps_saved)});
  t.add_row({"dedup savings (virtual ms)", Table::fmt(saved_us / 1000.0, 3)});
  t.add_row({"restarts burned by doomed member", Table::fmt_int(s.restarts)});
  t.print(std::cout, "campaign: " + std::to_string(kMembers) +
                         " fresh + " + std::to_string(kMembers) +
                         " duplicate members + 1 doomed, " +
                         std::to_string(kClusters) + "-cluster pool");

  bench::Json rows = bench::Json::array();
  for (const farm::JobRecord& r : f.jobs()) {
    rows.push(bench::Json::object()
                  .set("job", r.id)
                  .set("name", r.spec.name)
                  .set("status", farm::to_string(r.status))
                  .set("from_cache", r.from_cache)
                  .set("steps_committed", r.result.steps_committed)
                  .set("busy_us", r.result.busy_us)
                  .set("restarts", r.result.restarts));
  }
  bench::write_json(
      "BENCH_farm.json",
      bench::Json::object()
          .set("bench", "farm_throughput")
          .set("clusters", kClusters)
          .set("members", kMembers)
          .set("steps_per_member", kSteps)
          .set("jobs_per_virtual_hour", jobs_per_hour)
          .set("cache_hit_rate", hit_rate)
          .set("steps_committed", s.steps_committed)
          .set("steps_saved", s.steps_saved)
          .set("dedup_saved_us", saved_us)
          .set("cache_wave_speedup", cache_wave_speedup)  // inf -> null
          .set("makespan_us", s.makespan_us)
          .set("busy_us", s.busy_us)
          .set("restarts", s.restarts)
          .set("jobs", std::move(rows)));
  return 0;
}
