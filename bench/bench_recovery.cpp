// Recovery-time bench: live tile migration versus restart-the-world.
//
// The same gyre run is killed on the same schedule and recovered both
// ways.  Under kEpochRestart every rank pays the restart penalty and
// re-loads its tile from the newest consistent durable slot; under
// kMigrate the survivors rewind from their in-memory snapshot rings and
// only the dead node's tiles are re-read from disk by adopter ranks on
// surviving boards.  Both recoveries are bit-identical to the
// failure-free run (asserted here, per rank, per field); what moves is
// the recovery clock -- the virtual time from the NodeDown verdict's
// detection to the last rank completing its first post-recovery step --
// which migration must win *strictly* on every schedule (exit 1
// otherwise).  Emits BENCH_recovery.json next to the table.
#include <cstring>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "bench/bench_util.hpp"
#include "cluster/fault.hpp"
#include "cluster/runtime.hpp"
#include "gcm/model.hpp"
#include "gcm/resilient.hpp"
#include "gcm/tile_ckpt.hpp"
#include "net/arctic_model.hpp"
#include "support/logging.hpp"
#include "support/table.hpp"

namespace {

using namespace hyades;

constexpr int kSmps = 4;
constexpr int kPpp = 1;
constexpr int kSteps = 24;
constexpr int kCkptEvery = 4;

gcm::ModelConfig make_cfg() {
  gcm::ModelConfig cfg;
  cfg.isomorph = gcm::Isomorph::kOcean;
  cfg.nx = 16;
  cfg.ny = 8;
  cfg.nz = 4;
  cfg.px = 2;
  cfg.py = 2;
  cfg.halo = 2;
  cfg.dt = 400.0;
  cfg.visc_h = 1.0e6;
  cfg.diff_h = 1.0e5;
  cfg.topography = gcm::ModelConfig::Topography::kBasin;
  cfg.validate();
  return cfg;
}

struct RunOut {
  gcm::ResilientStats stats;
  std::map<int, gcm::State> state;  // by rank
  double busy_us = 0;               // slowest rank's final clock
};

RunOut run_mode(const cluster::FaultPlan* plan, gcm::RecoveryMode mode,
                const std::string& ckpt_prefix) {
  const net::ArcticModel net;
  cluster::MachineConfig mc;
  mc.smp_count = kSmps;
  mc.procs_per_smp = kPpp;
  mc.interconnect = &net;
  mc.faults = plan;
  cluster::Runtime rt(mc);

  gcm::ResilientConfig rcfg;
  rcfg.ckpt_prefix = ckpt_prefix;
  rcfg.ckpt_every = kCkptEvery;
  rcfg.recovery = mode;

  RunOut out;
  std::mutex mu;
  rcfg.on_complete = [&](cluster::RankContext& ctx, gcm::Model& m) {
    std::lock_guard<std::mutex> lock(mu);
    out.state.emplace(ctx.rank(), m.state());
  };
  out.stats = gcm::run_resilient(rt, make_cfg(), kSteps, rcfg);
  out.busy_us = rt.max_clock();
  gcm::tile_ckpt::remove_slots(ckpt_prefix, mc.nranks());
  return out;
}

bool states_bit_identical(const RunOut& a, const RunOut& b) {
  if (a.state.size() != b.state.size()) return false;
  for (const auto& [rank, sa] : a.state) {
    const gcm::State& sb = b.state.at(rank);
    const auto same = [](const double* x, const double* y, std::size_t n) {
      return std::memcmp(x, y, n * sizeof(double)) == 0;
    };
    if (!same(sa.u.data(), sb.u.data(), sa.u.size()) ||
        !same(sa.v.data(), sb.v.data(), sa.v.size()) ||
        !same(sa.theta.data(), sb.theta.data(), sa.theta.size()) ||
        !same(sa.salt.data(), sb.salt.data(), sa.salt.size()) ||
        !same(sa.ps.data(), sb.ps.data(), sa.ps.size()) ||
        sa.step != sb.step) {
      return false;
    }
  }
  return true;
}

struct Kill {
  int rank = 0;
  double at_frac = 0;  // kill time as a fraction of the clean run
  int epoch = 0;       // 0: initial epoch; 1: fires during recovery
};

struct Schedule {
  std::string name;
  std::vector<Kill> kills;
  long join_step = -1;    // hot-join the first killed SMP (< 0: never)
  int expect_events = 1;  // recovery events the schedule must produce
};

}  // namespace

int main() {
  bench::banner("Recovery time: live tile migration vs epoch restart");
  set_log_level(LogLevel::kError);  // kill storms stay quiet

  // The failure-free baseline: bits to match, and the clock that
  // anchors each schedule's kill time.
  const RunOut clean =
      run_mode(nullptr, gcm::RecoveryMode::kEpochRestart, "/tmp/hyades_brc");

  const std::vector<Schedule> schedules = {
      {"early (pre-rotation)", {{3, 0.0, 0}}, -1, 1},
      {"mid-run", {{1, 0.45, 0}}, -1, 1},
      {"mid-run + hot join", {{1, 0.45, 0}}, 16, 1},
      {"late", {{2, 0.8, 0}}, -1, 1},
      // Two boards die inside one heartbeat window: ONE coalesced
      // verdict, one recovery planning over the whole dead set.
      {"two boards, one window", {{1, 0.45, 0}, {3, 0.451, 0}}, -1, 1},
      // A second board dies while the first recovery is replaying: two
      // ladder events back to back.
      {"kill during recovery", {{3, 0.5, 0}, {1, 0.7, 1}}, -1, 2},
  };

  Table t({"kill schedule", "resume step", "restart rec (us)",
           "migrate rec (us)", "speedup", "run overhead restart",
           "run overhead migrate"});
  bench::Json rows = bench::Json::array();
  bool ok = true;
  for (const Schedule& s : schedules) {
    cluster::FaultPlan plan;
    for (const Kill& k : s.kills) {
      const double at_us =
          k.at_frac <= 0.0 ? 50.0 : k.at_frac * clean.busy_us;
      plan.node_kills.push_back({k.rank, at_us, k.epoch});
    }
    if (s.join_step >= 0) {
      // A replacement board for the killed SMP arrives mid-campaign:
      // the adopted tile is handed home at this cut, un-oversubscribing
      // the adopter's board for the rest of the run.
      plan.node_joins.push_back({s.kills.front().rank / kPpp, s.join_step});
    }

    const RunOut restart =
        run_mode(&plan, gcm::RecoveryMode::kEpochRestart, "/tmp/hyades_brr");
    const RunOut migrate =
        run_mode(&plan, gcm::RecoveryMode::kMigrate, "/tmp/hyades_brm");
    if (static_cast<int>(restart.stats.recovery_us.size()) !=
            s.expect_events ||
        static_cast<int>(migrate.stats.recovery_us.size()) !=
            s.expect_events) {
      std::cerr << "BENCH_recovery: schedule '" << s.name
                << "' did not produce exactly " << s.expect_events
                << " recovery event(s)\n";
      return 1;
    }
    // Multi-event schedules compare the summed recovery clock: the
    // total virtual time the campaign spent not making progress.
    double rec_restart = 0.0;
    double rec_migrate = 0.0;
    for (const double us : restart.stats.recovery_us) rec_restart += us;
    for (const double us : migrate.stats.recovery_us) rec_migrate += us;
    if (!states_bit_identical(clean, restart) ||
        !states_bit_identical(clean, migrate)) {
      std::cerr << "BENCH_recovery: schedule '" << s.name
                << "' broke bit-identity with the failure-free run\n";
      ok = false;
    }
    if (rec_migrate >= rec_restart) {
      std::cerr << "BENCH_recovery: schedule '" << s.name
                << "' migration not strictly faster (" << rec_migrate
                << " vs " << rec_restart << " us)\n";
      ok = false;
    }

    const long resume = restart.stats.restart_steps.empty()
                            ? -1
                            : restart.stats.restart_steps[0];
    t.add_row({s.name, Table::fmt_int(resume), Table::fmt(rec_restart, 0),
               Table::fmt(rec_migrate, 0),
               Table::fmt(rec_restart / rec_migrate, 2) + "x",
               Table::fmt(100.0 * (restart.busy_us / clean.busy_us - 1.0), 1) +
                   "%",
               Table::fmt(100.0 * (migrate.busy_us / clean.busy_us - 1.0), 1) +
                   "%"});
    rows.push(bench::Json::object()
                  .set("schedule", s.name)
                  .set("kill_rank", s.kills.front().rank)
                  .set("kills", static_cast<int>(s.kills.size()))
                  .set("recovery_events", s.expect_events)
                  .set("resume_step", static_cast<double>(resume))
                  .set("recovery_us_restart", rec_restart)
                  .set("recovery_us_migrate", rec_migrate)
                  .set("speedup", rec_restart / rec_migrate)
                  .set("migrations", migrate.stats.migrations)
                  .set("rebalances", migrate.stats.rebalances)
                  .set("busy_us_clean", clean.busy_us)
                  .set("busy_us_restart", restart.busy_us)
                  .set("busy_us_migrate", migrate.busy_us)
                  .set("bit_identical", true));
  }
  t.print(std::cout, "16x8x4 basin ocean, 4 tiles / 4 SMPs, " +
                         std::to_string(kSteps) + " steps, ckpt every " +
                         std::to_string(kCkptEvery));

  std::cout
      << "\nreading: both recovery modes end bit-identical to the "
         "failure-free run (asserted) -- the contest is purely the "
         "recovery clock.  Restart pays the restart penalty on every "
         "rank plus a whole-slot reload; migration rewinds survivors "
         "from memory for free and bills the (smaller) migration cost "
         "to the adopters alone, so it wins on every schedule.  The "
         "run-overhead columns show the tail cost of migration: until a "
         "replacement board joins, the adopter's board runs "
         "oversubscribed, so a long remaining run amortizes against the "
         "recovery win (the hot-join row hands the tile home and "
         "reclaims most of it).  The win also depends on tile size: once "
         "one oversubscribed step costs more than the restart-minus-"
         "migration penalty gap, restarting the world is the faster "
         "recovery -- elasticity is for fat penalties and lean tiles.\n";

  bench::Json root = bench::Json::object();
  root.set("bench", "recovery")
      .set("config", bench::Json::object()
                         .set("nx", 16)
                         .set("ny", 8)
                         .set("nz", 4)
                         .set("tiles", 4)
                         .set("smps", kSmps)
                         .set("procs_per_smp", kPpp)
                         .set("steps", kSteps)
                         .set("ckpt_every", kCkptEvery))
      .set("rows", std::move(rows));
  bench::write_json("BENCH_recovery.json", root);
  return ok ? 0 : 1;
}
