// Ablation (Section 3.1): the paper's climate runs stay in the
// hydrostatic limit -- "the flow in the climate scale simulations
// presented here is hydrostatic, yielding a two-dimensional elliptic
// equation for the surface pressure".  This bench shows what the
// alternative costs: the non-hydrostatic mode replaces the diagnostic w
// with a prognostic one and adds a 3-D elliptic solve whose every
// iteration moves level-deep halo strips (two 3-D exchanges + two global
// sums), i.e. DS-phase communication inflated by ~nz.
#include <iostream>
#include <mutex>

#include "bench/bench_util.hpp"
#include "cluster/runtime.hpp"
#include "comm/comm.hpp"
#include "gcm/model.hpp"
#include "net/arctic_model.hpp"
#include "support/table.hpp"

namespace {

using namespace hyades;

struct NhStats {
  double tps_ms = 0, tds_ms = 0;
  double ni2 = 0, ni3 = 0;
};

NhStats run_case(bool nonhydro) {
  const net::ArcticModel net;
  cluster::MachineConfig mc;
  mc.smp_count = 8;
  mc.procs_per_smp = 2;
  mc.interconnect = &net;
  cluster::Runtime rt(mc);
  gcm::ModelConfig cfg = gcm::ocean_preset(4, 4);
  cfg.topography = gcm::ModelConfig::Topography::kFlat;  // isolate the solve
  cfg.nonhydrostatic = nonhydro;
  NhStats out;
  std::mutex mu;
  rt.run([&](cluster::RankContext& ctx) {
    comm::Comm comm(ctx);
    gcm::Model m(cfg, comm);
    m.initialize();
    constexpr int kWarm = 1, kSteps = 2;
    long it3 = 0;
    for (int s = 0; s < kWarm; ++s) (void)m.step();
    const auto obs0 = m.stepper().observables();
    for (int s = 0; s < kSteps; ++s) it3 += m.step().cg3_iterations;
    const auto& obs = m.stepper().observables();
    if (comm.group_rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      out.tps_ms = (obs.tps_us - obs0.tps_us) / kSteps / 1000.0;
      out.tds_ms = (obs.tds_us - obs0.tds_us) / kSteps / 1000.0;
      out.ni2 = static_cast<double>(obs.cg_iterations - obs0.cg_iterations) /
                kSteps;
      out.ni3 = static_cast<double>(it3) / kSteps;
    }
  });
  return out;
}

}  // namespace

int main() {
  bench::banner(
      "Ablation: hydrostatic vs non-hydrostatic formulation (Section 3.1)");
  Table t({"formulation", "tps (ms)", "tds (ms)", "Ni 2-D", "Ni 3-D",
           "step (ms)"});
  const NhStats hydro = run_case(false);
  const NhStats nh = run_case(true);
  t.add_row({"hydrostatic (paper's climate runs)", Table::fmt(hydro.tps_ms, 1),
             Table::fmt(hydro.tds_ms, 1), Table::fmt(hydro.ni2, 0), "-",
             Table::fmt(hydro.tps_ms + hydro.tds_ms, 1)});
  t.add_row({"non-hydrostatic", Table::fmt(nh.tps_ms, 1),
             Table::fmt(nh.tds_ms, 1), Table::fmt(nh.ni2, 0),
             Table::fmt(nh.ni3, 0), Table::fmt(nh.tps_ms + nh.tds_ms, 1)});
  t.print(std::cout,
          "flat-bottom 2.8125-deg ocean, 16 procs / 8 SMPs; the 3-D solve "
          "moves level-deep halo strips every iteration");
  const double slowdown =
      (nh.tps_ms + nh.tds_ms) / (hydro.tps_ms + hydro.tds_ms);
  std::cout << "\nnon-hydrostatic step costs " << Table::fmt(slowdown, 2)
            << "x the hydrostatic step at climate scale -- the reason the "
               "paper's coupled runs use the hydrostatic limit.\n";
  return 0;
}
