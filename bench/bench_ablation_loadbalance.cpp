// Ablation (Figure 5's remark): "Connectivity between tiles can be tuned
// to reduce the overall computational load."  With real continents, some
// tiles are land-heavy while others are fully wet; every DS-phase global
// sum synchronizes the group, so the whole machine advances at the
// wettest tile's pace.  This bench quantifies the imbalance and the DS
// cost it induces, against the aqua-planet (flat) baseline.
#include <iostream>
#include <mutex>

#include "bench/bench_util.hpp"
#include "cluster/runtime.hpp"
#include "comm/comm.hpp"
#include "gcm/model.hpp"
#include "net/arctic_model.hpp"
#include "support/table.hpp"

namespace {

using namespace hyades;

struct CaseStats {
  double imbalance = 0;
  double ni = 0;
  double tds_ms = 0;
  std::int64_t min_wet = 0, max_wet = 0;
};

CaseStats run_case(gcm::ModelConfig::Topography topo) {
  const net::ArcticModel net;
  cluster::MachineConfig mc;
  mc.smp_count = 8;
  mc.procs_per_smp = 2;
  mc.interconnect = &net;
  cluster::Runtime rt(mc);
  gcm::ModelConfig cfg = gcm::ocean_preset(4, 4);
  cfg.topography = topo;
  CaseStats out;
  std::mutex mu;
  rt.run([&](cluster::RankContext& ctx) {
    comm::Comm comm(ctx);
    gcm::Model m(cfg, comm);
    m.initialize();
    constexpr int kWarm = 2, kSteps = 3;
    for (int s = 0; s < kWarm; ++s) (void)m.step();
    const auto obs0 = m.stepper().observables();
    for (int s = 0; s < kSteps; ++s) (void)m.step();
    const auto& obs = m.stepper().observables();
    const double imb = m.load_imbalance();
    {
      std::lock_guard<std::mutex> lock(mu);
      out.min_wet = out.min_wet == 0
                        ? m.grid().wet_cells()
                        : std::min(out.min_wet, m.grid().wet_cells());
      out.max_wet = std::max(out.max_wet, m.grid().wet_cells());
      if (comm.group_rank() == 0) {
        out.imbalance = imb;
        out.ni = static_cast<double>(obs.cg_iterations - obs0.cg_iterations) /
                 kSteps;
        out.tds_ms = (obs.tds_us - obs0.tds_us) / kSteps / 1000.0;
      }
    }
  });
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation: tile load imbalance under real topography");
  Table t({"topography", "wet cells/tile (min..max)", "imbalance", "Ni",
           "tds/step (ms)"});
  struct Row {
    const char* name;
    gcm::ModelConfig::Topography topo;
  };
  for (const Row& row :
       {Row{"flat (aqua planet)", gcm::ModelConfig::Topography::kFlat},
        Row{"mid-basin ridge", gcm::ModelConfig::Topography::kRidge},
        Row{"continents", gcm::ModelConfig::Topography::kContinents}}) {
    const CaseStats s = run_case(row.topo);
    t.add_row({row.name,
               Table::fmt_int(s.min_wet) + " .. " + Table::fmt_int(s.max_wet),
               Table::fmt(s.imbalance, 2) + "x", Table::fmt(s.ni, 0),
               Table::fmt(s.tds_ms, 1)});
  }
  t.print(std::cout,
          "the group advances at the wettest tile's pace at every global "
          "sum (Figure 5: tile connectivity \"can be tuned to reduce the "
          "overall computational load\")");
  return 0;
}
