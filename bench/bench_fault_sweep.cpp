// Fault sweep: recovery overhead of the end-to-end reliability protocol.
//
// A closed-basin (gyre) ocean run is repeated under increasing per-
// message fault probability.  Every fault is recovered by the sequence-
// numbered NAK/timeout retransmit protocol, so the final model state is
// bit-identical across the whole sweep (asserted here); what moves is
// virtual time: the per-step wall time grows by the recovery cost, which
// the accounting isolates in the retrans bucket.  The table reports, per
// corruption rate, the retransmit counts, the recovery time charged, and
// the step-time overhead versus the fault-free run.
#include <cmath>
#include <cstring>
#include <iostream>
#include <mutex>
#include <vector>

#include "bench/bench_util.hpp"
#include "cluster/fault.hpp"
#include "cluster/runtime.hpp"
#include "comm/comm.hpp"
#include "gcm/model.hpp"
#include "net/arctic_model.hpp"
#include "support/logging.hpp"
#include "support/table.hpp"

namespace {

using namespace hyades;

constexpr int kSmps = 8;
constexpr int kPpp = 2;
constexpr int kSteps = 40;

gcm::ModelConfig make_cfg() {
  gcm::ModelConfig cfg;
  cfg.isomorph = gcm::Isomorph::kOcean;
  cfg.nx = 64;
  cfg.ny = 32;
  cfg.nz = 10;
  cfg.px = 4;
  cfg.py = 4;
  cfg.halo = 2;
  cfg.dt = 400.0;
  cfg.visc_h = 1.0e6;
  cfg.diff_h = 1.0e5;
  cfg.cg_tol = 1.0e-6;
  cfg.topography = gcm::ModelConfig::Topography::kBasin;
  cfg.validate();
  return cfg;
}

struct SweepPoint {
  double step_us = 0;          // max-clock per step
  std::uint64_t retransmits = 0;
  std::uint64_t crc_rejects = 0;
  std::uint64_t drops = 0;
  double retrans_us = 0;       // summed over ranks
  double theta_hash = 0;       // bitwise fingerprint of rank 0's theta
};

SweepPoint run_point(const cluster::FaultPlan& plan) {
  const net::ArcticModel net;
  cluster::MachineConfig mc;
  mc.smp_count = kSmps;
  mc.procs_per_smp = kPpp;
  mc.interconnect = &net;
  mc.faults = &plan;
  cluster::Runtime rt(mc);
  const gcm::ModelConfig cfg = make_cfg();
  SweepPoint out;
  std::mutex mu;
  rt.run([&](cluster::RankContext& ctx) {
    comm::Comm comm(ctx);
    gcm::Model m(cfg, comm);
    m.initialize();
    m.run(kSteps);
    const comm::ReliableStats& fs = comm.fault_stats();
    std::lock_guard<std::mutex> lock(mu);
    out.retransmits += fs.retransmits;
    out.crc_rejects += fs.crc_rejects;
    out.drops += fs.drops_detected;
    out.retrans_us += fs.retrans_us;
    if (ctx.rank() == 0) {
      // A cheap bitwise fingerprint: the sweep must not change the state.
      const double* d = m.state().theta.data();
      double h = 0;
      for (std::size_t i = 0; i < m.state().theta.size(); ++i) {
        h += d[i] * static_cast<double>(i % 97 + 1);
      }
      out.theta_hash = h;
    }
  });
  out.step_us = rt.max_clock() / kSteps;
  return out;
}

}  // namespace

int main() {
  bench::banner("Fault sweep: retransmit recovery overhead (gyre, Arctic)");
  set_log_level(LogLevel::kError);  // fault storms stay quiet

  const double rates[] = {0.0, 1e-4, 1e-3, 1e-2};
  SweepPoint base;
  Table t({"corrupt/pkt", "step (us)", "retransmits", "crc rejects", "drops",
           "retrans (us)", "overhead"});
  for (double rate : rates) {
    cluster::FaultPlan plan;
    plan.seed = 2026;
    plan.corrupt_prob = rate;
    plan.drop_prob = rate / 5.0;
    const SweepPoint p = run_point(plan);
    if (rate == 0.0) base = p;
    if (std::memcmp(&p.theta_hash, &base.theta_hash, sizeof(double)) != 0) {
      std::cerr << "FAULT SWEEP BROKE BIT-IDENTITY at rate " << rate << "\n";
      return 1;
    }
    t.add_row({Table::fmt(rate, 4), Table::fmt(p.step_us, 0),
               Table::fmt_int(static_cast<long>(p.retransmits)),
               Table::fmt_int(static_cast<long>(p.crc_rejects)),
               Table::fmt_int(static_cast<long>(p.drops)),
               Table::fmt(p.retrans_us, 0),
               Table::fmt(100.0 * (p.step_us / base.step_us - 1.0), 2) + "%"});
  }
  t.print(std::cout, "64x32x10 basin ocean, 16 procs / 8 SMPs, " +
                         std::to_string(kSteps) + " steps, per-step times");

  std::cout
      << "\nreading: the final state is bit-identical across the whole "
         "sweep (checked above) -- recoverable faults cost only virtual "
         "time.  At the paper-plausible 1e-3/packet corruption rate the "
         "recovery overhead stays small: each NAK'd transfer costs one "
         "small-message round trip plus backoff plus the retransfer, and "
         "those episodes overlap with the waits the bulk-synchronous "
         "steps already contain.  Drops are costlier per event (the "
         "500 us watchdog timeout dominates), which shows in the 1e-2 "
         "row.\n";
  return 0;
}
