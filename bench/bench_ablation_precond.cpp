// Ablation: the DS-phase preconditioner.  On a lat-lon grid the elliptic
// operator is strongly zonally anisotropic toward the polar walls
// (w_east/w_north ~ 30 at 80 degrees), so plain Jacobi-CG needs far more
// iterations than a zonal line relaxation.  Since every iteration costs
// one exchange and two global sums (Section 4), the preconditioner choice
// directly scales the DS communication bill.
#include <iostream>

#include "bench/bench_util.hpp"
#include "cluster/runtime.hpp"
#include "comm/comm.hpp"
#include "gcm/model.hpp"
#include "net/arctic_model.hpp"
#include "support/table.hpp"

namespace {

using namespace hyades;

struct SolveStats {
  double ni = 0;
  double tds_ms = 0;
};

SolveStats run_case(const gcm::ModelConfig& cfg) {
  const net::ArcticModel net;
  cluster::MachineConfig mc;
  mc.smp_count = 8;
  mc.procs_per_smp = 2;
  mc.interconnect = &net;
  cluster::Runtime rt(mc);
  SolveStats out;
  rt.run([&](cluster::RankContext& ctx) {
    comm::Comm comm(ctx);
    gcm::Model m(cfg, comm);
    m.initialize();
    constexpr int kWarm = 2, kSteps = 4;
    for (int s = 0; s < kWarm; ++s) (void)m.step();
    const auto obs0 = m.stepper().observables();
    for (int s = 0; s < kSteps; ++s) (void)m.step();
    const auto& obs = m.stepper().observables();
    if (comm.group_rank() == 0) {
      out.ni = static_cast<double>(obs.cg_iterations - obs0.cg_iterations) /
               kSteps;
      out.tds_ms = (obs.tds_us - obs0.tds_us) / kSteps / 1000.0;
    }
  });
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation: DS preconditioner (line relaxation vs Jacobi)");
  Table t({"isomorph", "preconditioner", "Ni", "tds/step (ms)"});
  for (bool atmosphere : {true, false}) {
    for (bool jacobi : {false, true}) {
      gcm::ModelConfig cfg =
          atmosphere ? gcm::atmosphere_preset(4, 4) : gcm::ocean_preset(4, 4);
      cfg.cg_jacobi = jacobi;
      cfg.cg_max_iter = 2000;
      const SolveStats s = run_case(cfg);
      t.add_row({atmosphere ? "atmosphere" : "ocean",
                 jacobi ? "Jacobi" : "line relaxation", Table::fmt(s.ni, 1),
                 Table::fmt(s.tds_ms, 1)});
    }
  }
  t.print(std::cout,
          "every CG iteration costs 2 global sums + 2 exchanges (Section 4)");
  return 0;
}
