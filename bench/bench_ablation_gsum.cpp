// Ablation (Section 4.2's design choice): the latency-optimal butterfly
// "minimizes latency at the expense of more messages" -- N log2 N
// messages in log2 N rounds.  Compare against the message-minimal
// alternative: a serial gather-to-root + broadcast tree (2(N-1) messages
// but each on the critical path twice over the tree depth with
// sequential sends).
#include <iostream>

#include "bench/bench_util.hpp"
#include "cluster/runtime.hpp"
#include "comm/comm.hpp"
#include "net/arctic_model.hpp"
#include "support/table.hpp"

namespace {

using namespace hyades;

double butterfly_cost(const net::Interconnect& net, int nodes) {
  cluster::MachineConfig mc;
  mc.smp_count = nodes;
  mc.procs_per_smp = 1;
  mc.interconnect = &net;
  cluster::Runtime rt(mc);
  rt.run([&](cluster::RankContext& ctx) {
    comm::Comm comm(ctx);
    (void)comm.global_sum(1.0);
  });
  return rt.max_clock();
}

// Binomial-tree reduce + broadcast implemented directly on the runtime,
// costed with the same per-round model.
double tree_cost(const net::Interconnect& net, int nodes) {
  cluster::MachineConfig mc;
  mc.smp_count = nodes;
  mc.procs_per_smp = 1;
  mc.interconnect = &net;
  cluster::Runtime rt(mc);
  rt.run([&](cluster::RankContext& ctx) {
    const int r = ctx.rank();
    double v = 1.0;
    // Reduce toward rank 0 (binomial tree).
    for (int bit = 1; bit < nodes; bit <<= 1) {
      if (r & bit) {
        ctx.send_raw(r & ~bit, 600, {v}, ctx.clock().now());
        break;
      }
      if (r + bit < nodes) {
        const cluster::Message m = ctx.recv_raw(r + bit, 600);
        ctx.clock().advance_to(m.stamp_us);
        int round = 0;
        for (int b = bit; b > 1; b >>= 1) ++round;
        ctx.clock().advance(ctx.net().gsum_round_time(round));
        v += m.data[0];
      }
    }
    // Broadcast back down.
    for (int bit = 1 << 30; bit >= 1; bit >>= 1) {
      if (bit >= nodes) continue;
      if ((r & (2 * bit - 1)) == 0 && r + bit < nodes) {
        ctx.send_raw(r + bit, 601, {v}, ctx.clock().now());
      } else if ((r & (2 * bit - 1)) == bit) {
        const cluster::Message m = ctx.recv_raw(r & ~bit, 601);
        ctx.clock().advance_to(m.stamp_us);
        int round = 0;
        for (int b = bit; b > 1; b >>= 1) ++round;
        ctx.clock().advance(ctx.net().gsum_round_time(round));
        v = m.data[0];
      }
    }
  });
  return rt.max_clock();
}

}  // namespace

int main() {
  const net::ArcticModel net;
  bench::banner("Ablation: butterfly vs reduce+broadcast tree global sum");
  Table t({"N", "butterfly (us)", "tree (us)", "speedup", "msgs fly/tree"});
  for (int nodes = 2; nodes <= 16; nodes *= 2) {
    const double fly = butterfly_cost(net, nodes);
    const double tree = tree_cost(net, nodes);
    int log2n = 0;
    for (int n = nodes; n > 1; n >>= 1) ++log2n;
    t.add_row({Table::fmt_int(nodes), Table::fmt(fly, 1),
               Table::fmt(tree, 1), Table::fmt(tree / fly, 2) + "x",
               Table::fmt_int(nodes * log2n) + " / " +
                   Table::fmt_int(2 * (nodes - 1))});
  }
  t.print(std::cout,
          "the butterfly buys latency with message count (Section 4.2)");
  return 0;
}
