// Ablation (Section 4): halo "overcomputation".  The PS phase uses a
// halo at least three points wide and duplicates computation in the halo
// so all communication collapses into ONE exchange per field per step.
// The alternative -- a one-point halo refreshed before every stencil
// pass -- trades the duplicated flops for two extra exchange/sync points
// per field.  Measured with production strip sizes on each interconnect.
#include <iostream>

#include "bench/bench_util.hpp"
#include "cluster/runtime.hpp"
#include "comm/comm.hpp"
#include "gcm/config.hpp"
#include "gcm/halo.hpp"
#include "net/arctic_model.hpp"
#include "net/ethernet.hpp"
#include "support/table.hpp"

namespace {

using namespace hyades;

double exchange_pattern_cost(const net::Interconnect& net, int nz, int width,
                             int exchanges_per_field) {
  cluster::MachineConfig mc;
  mc.smp_count = 8;
  mc.procs_per_smp = 2;
  mc.interconnect = &net;
  cluster::Runtime rt(mc);
  gcm::ModelConfig cfg = gcm::atmosphere_preset(4, 4);
  cfg.nz = nz;
  constexpr int kFields = 5;
  constexpr int kReps = 4;
  rt.run([&](cluster::RankContext& ctx) {
    comm::Comm comm(ctx);
    const gcm::Decomp dec(cfg, comm.group_rank());
    Array3D<double> f(static_cast<std::size_t>(dec.ext_x()),
                      static_cast<std::size_t>(dec.ext_y()),
                      static_cast<std::size_t>(nz), 1.0);
    for (int rep = 0; rep < kReps; ++rep) {
      for (int field = 0; field < kFields; ++field) {
        for (int x = 0; x < exchanges_per_field; ++x) {
          gcm::exchange3d(comm, dec, f, width);
        }
      }
    }
  });
  return rt.max_clock() / kReps;
}

}  // namespace

int main() {
  bench::banner("Ablation: PS overcomputation vs per-stage halo refresh");

  const net::ArcticModel arctic;
  const net::EthernetModel ge = net::gigabit_ethernet();
  const net::EthernetModel fe = net::fast_ethernet();
  Table t({"network", "halo-3 x1 (us)", "halo-1 x3 (us)", "saved"});
  struct Row {
    const char* name;
    const net::Interconnect* net;
  };
  double arctic_saved = 0;
  for (const Row& row : {Row{"Arctic", &arctic},
                         Row{"Gigabit Ethernet", &ge},
                         Row{"Fast Ethernet", &fe}}) {
    const double over = exchange_pattern_cost(*row.net, 10, 3, 1);
    const double staged = exchange_pattern_cost(*row.net, 10, 1, 3);
    if (row.net == &arctic) arctic_saved = staged / over;
    t.add_row({row.name, Table::fmt(over, 0), Table::fmt(staged, 0),
               Table::fmt(staged / over, 2) + "x"});
  }
  t.print(std::cout,
          "five 3-D atmosphere fields per step, 16 procs / 8 SMPs");

  std::cout
      << "\nreading: at production 3-D sizes the Arctic exchange is "
         "bandwidth-dominated, so collapsing three exchanges into one "
         "saves only the duplicated per-transfer overheads ("
      << Table::fmt(arctic_saved, 2)
      << "x here) -- but on overhead-dominated commodity interconnects "
         "the same trick is worth far more, and on every network it "
         "removes two synchronization points per field (the paper's "
         "stated goal: to \"reduce the number of communication and "
         "synchronization points required in a model time-step\").  The "
         "price is the duplicated tendency flops in the 2-cell overlap "
         "ring.\n";
  return 0;
}
