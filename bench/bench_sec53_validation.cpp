// Section 5.3: validation of the performance model against a one-year
// atmospheric simulation on sixteen processors over eight SMPs.
//
// Two layers of validation:
//  (a) the paper's own arithmetic -- Eqs. 12-13 with Figure 11's
//      parameters must give Tcomm ~ 30.1 min and Tcomp ~ 151 min,
//      totalling ~181 min vs the observed 183 min;
//  (b) the same methodology applied internally -- the analytic model fed
//      with *our measured* parameters must predict the virtual wall
//      clock of an actual simulated run of the real GCM.
#include <iostream>

#include "bench/bench_util.hpp"
#include "gcm/config.hpp"
#include "net/arctic_model.hpp"
#include "perf/calibrate.hpp"
#include "perf/perf_model.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace hyades;
  const char* trace_out = bench::trace_path(argc, argv);
  bench::banner("Section 5.3 (a): the paper's validation arithmetic");
  {
    const perf::PerfParams p = perf::paper_atmosphere();
    const double comm_min =
        us_to_minutes(perf::tcomm(p, perf::kPaperNt, perf::kPaperNi));
    const double comp_min =
        us_to_minutes(perf::tcomp(p, perf::kPaperNt, perf::kPaperNi));
    Table t({"quantity", "model (min)", "paper (min)", "d"});
    t.add_row({"Tcomm (Eq. 12)", Table::fmt(comm_min, 1), "30.1",
               bench::pct(comm_min, 30.1)});
    t.add_row({"Tcomp (Eq. 13)", Table::fmt(comp_min, 1), "151",
               bench::pct(comp_min, 151.0)});
    t.add_row({"total", Table::fmt(comm_min + comp_min, 1), "181",
               bench::pct(comm_min + comp_min, 181.0)});
    t.add_row({"observed wall clock", "-", "183", "-"});
    t.print(std::cout, "one-year run: Nt = 77760, Ni = 60");
  }

  bench::banner("Section 5.3 (b): internal validation on the simulator");
  {
    const net::ArcticModel net;
    const gcm::ModelConfig cfg = gcm::atmosphere_preset(4, 4);
    const int steps = 6;
    perf::TraceCapture cap;
    const perf::ModelMeasurement m =
        perf::measure_model(cfg, net, perf::MachineShape{8, 2}, steps,
                            /*warmup=*/2, trace_out ? &cap : nullptr);
    const Microseconds predicted = perf::trun(m.params, steps, m.ni) / steps;
    Table t({"quantity", "predicted", "simulated", "d"});
    t.add_row({"time per step (ms)", Table::fmt(predicted / 1000.0, 2),
               Table::fmt(m.step_us / 1000.0, 2),
               bench::pct(predicted, m.step_us)});
    t.print(std::cout, "analytic model fed with measured parameters");

    if (trace_out != nullptr) {
      bench::report_capture(trace_out, cap);
      // Cross-validation: the traced phase totals (rank 0, per step) must
      // reproduce the stepper's own tps/tds split, and sit close to the
      // analytic model's -- the residual against the analytic column is
      // the load-imbalance wait the idle-machine primitive costs cannot
      // see (the attribution table's imbalance-wait column).
      const cluster::Tracer& t0 = cap.tracers.front();
      const double ps_traced = t0.total("ps") / steps;
      const double ds_traced = t0.total("ds") / steps;
      const Microseconds ps_model = perf::tps(m.params.ps);
      const Microseconds ds_model = m.ni * perf::tds(m.params.ds);
      Table v({"phase", "traced (ms/step)", "stepper (ms/step)",
               "analytic (ms/step)", "d traced-stepper"});
      v.add_row({"PS", Table::fmt(ps_traced / 1000.0, 2),
                 Table::fmt(m.tps_us / 1000.0, 2),
                 Table::fmt(ps_model / 1000.0, 2),
                 bench::pct(ps_traced, m.tps_us)});
      v.add_row({"DS", Table::fmt(ds_traced / 1000.0, 2),
                 Table::fmt(m.tds_us / 1000.0, 2),
                 Table::fmt(ds_model / 1000.0, 2),
                 bench::pct(ds_traced, m.tds_us)});
      v.print(std::cout, "trace vs performance model, rank 0");
    }

    const double year_min =
        us_to_minutes(perf::trun(m.params, perf::kPaperNt, m.ni));
    std::cout << "\nextrapolated one-year atmosphere run with our measured "
                 "parameters: "
              << Table::fmt(year_min, 0)
              << " virtual minutes (paper observed 183 min with its heavier "
                 "physics kernel)\n";
  }

  bench::banner("Section 6 claim: a century within two weeks");
  {
    // "a century long synchronous climate simulation, coupling an
    // atmosphere at 2.8 resolution to a 1 ocean, can be completed within
    // a two week period."  With the atmosphere's measured one-year wall
    // clock of 183 minutes and the ocean running concurrently on its own
    // half of the machine, the century is bounded by the slower
    // component; the paper's own atmosphere numbers give:
    const perf::PerfParams p = perf::paper_atmosphere();
    const double year_min =
        us_to_minutes(perf::trun(p, perf::kPaperNt, perf::kPaperNi));
    const double century_days = 100.0 * year_min / (60.0 * 24.0);
    std::cout << "century of the 2.8-deg atmosphere: "
              << Table::fmt(century_days, 1)
              << " days of dedicated cluster time (paper claim: within two "
                 "weeks; the concurrent ocean isomorph occupies the other "
                 "half of the machine)\n";
  }
  return 0;
}
