// Ablation (Section 2.2 / Figure 1b): the Arctic header carries a
// "random uproute" bit that lets routers pick climb ports at random,
// trading the deterministic path's FIFO guarantee for load balancing
// across the fat tree's root links.
//
// Under benign (disjoint-pair) traffic the deterministic choice is
// ideal; under an adversarial pattern -- many sources whose
// deterministic climbs all hash onto the same root port -- adaptive
// routing spreads the load and cuts the completion time.
#include <iostream>

#include "arctic/fabric.hpp"
#include "bench/bench_util.hpp"
#include "sim/scheduler.hpp"
#include "support/table.hpp"

namespace {

using namespace hyades;

// All sixteen nodes blast packets at node 0's leaf group: the up paths
// contend for root bandwidth.
double hotspot_completion_us(bool random_uproute, int packets_per_node) {
  sim::Scheduler sched;
  arctic::FabricConfig cfg;
  cfg.random_uproute = random_uproute;
  cfg.seed = 12345;
  arctic::Fabric fabric(sched, 16, cfg);
  fabric.set_delivery_handler([](int, arctic::Packet&&) {});
  for (int p = 0; p < packets_per_node; ++p) {
    for (int src = 4; src < 16; ++src) {
      arctic::Packet pkt;
      pkt.payload.assign(22, 0u);  // max-size packets
      fabric.inject(src, src % 4, std::move(pkt));
    }
  }
  sched.run();
  return sim::to_us(sched.now());
}

double disjoint_completion_us(bool random_uproute, int packets_per_node) {
  sim::Scheduler sched;
  arctic::FabricConfig cfg;
  cfg.random_uproute = random_uproute;
  cfg.seed = 999;
  arctic::Fabric fabric(sched, 16, cfg);
  fabric.set_delivery_handler([](int, arctic::Packet&&) {});
  for (int p = 0; p < packets_per_node; ++p) {
    for (int src = 0; src < 8; ++src) {
      arctic::Packet pkt;
      pkt.payload.assign(22, 0u);
      fabric.inject(src, src + 8, std::move(pkt));  // disjoint pairs
    }
  }
  sched.run();
  return sim::to_us(sched.now());
}

}  // namespace

int main() {
  using namespace hyades;
  bench::banner("Ablation: deterministic vs random uproute (fat-tree "
                "adaptivity)");
  constexpr int kPackets = 64;
  Table t({"traffic pattern", "deterministic (us)", "random uproute (us)",
           "speedup"});
  {
    const double det = hotspot_completion_us(false, kPackets);
    const double rnd = hotspot_completion_us(true, kPackets);
    t.add_row({"12 nodes -> one leaf group", Table::fmt(det, 1),
               Table::fmt(rnd, 1), Table::fmt(det / rnd, 2) + "x"});
  }
  {
    const double det = disjoint_completion_us(false, kPackets);
    const double rnd = disjoint_completion_us(true, kPackets);
    t.add_row({"8 disjoint pairs", Table::fmt(det, 1), Table::fmt(rnd, 1),
               Table::fmt(det / rnd, 2) + "x"});
  }
  t.print(std::cout,
          "random uproute spreads climbs over the root links, at the cost "
          "of the same-path FIFO guarantee (GCM traffic therefore uses the "
          "deterministic mode)");
  return 0;
}
