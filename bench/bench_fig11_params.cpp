// Figure 11: performance-model parameters of the coupled ocean-
// atmosphere simulation at 2.8125 degrees, each isomorph on sixteen
// processors over eight SMPs.
//
// Communication parameters come from stand-alone benchmarks of the comm
// primitives (as in the paper); Nps/Nds come from the GCM's kernel flop
// counters.  Our kernel is leaner than the 1999 code's full physics, so
// the measured Nps sits below the paper's 781/751 -- reported side by
// side, not hidden.
#include <iostream>

#include "bench/bench_util.hpp"
#include "gcm/config.hpp"
#include "net/arctic_model.hpp"
#include "perf/calibrate.hpp"
#include "perf/perf_model.hpp"
#include "support/table.hpp"

int main() {
  using namespace hyades;
  const net::ArcticModel net;
  const perf::MachineShape shape{8, 2};

  const perf::ModelMeasurement atm =
      perf::measure_model(gcm::atmosphere_preset(4, 4), net, shape, 4);
  const perf::ModelMeasurement ocn =
      perf::measure_model(gcm::ocean_preset(4, 4), net, shape, 4);
  const perf::PerfParams patm = perf::paper_atmosphere();
  const perf::PerfParams pocn = perf::paper_ocean();

  bench::banner("Figure 11: PS phase parameters");
  {
    Table t({"isomorph", "param", "measured", "paper", "d"});
    auto ps_rows = [&](const char* name, const perf::ModelMeasurement& m,
                       const perf::PerfParams& p) {
      t.add_row({name, "Nps (flops/cell)", Table::fmt(m.params.ps.nps, 0),
                 Table::fmt(p.ps.nps, 0), bench::pct(m.params.ps.nps, p.ps.nps)});
      t.add_row({name, "nxyz (cells/proc)", Table::fmt(m.params.ps.nxyz, 0),
                 Table::fmt(p.ps.nxyz, 0),
                 bench::pct(m.params.ps.nxyz, p.ps.nxyz)});
      t.add_row({name, "texchxyz (us)", Table::fmt(m.params.ps.texchxyz, 0),
                 Table::fmt(p.ps.texchxyz, 0),
                 bench::pct(m.params.ps.texchxyz, p.ps.texchxyz)});
      t.add_row({name, "Fps (MFlop/s)", Table::fmt(m.params.ps.fps_mflops, 0),
                 Table::fmt(p.ps.fps_mflops, 0), "-"});
    };
    ps_rows("atmosphere", atm, patm);
    ps_rows("ocean", ocn, pocn);
    t.print(std::cout);
  }

  bench::banner("Figure 11: DS phase parameters");
  {
    Table t({"param", "measured", "paper", "d"});
    t.add_row({"Nds (flops/col/iter)", Table::fmt(atm.params.ds.nds, 0),
               Table::fmt(patm.ds.nds, 0),
               bench::pct(atm.params.ds.nds, patm.ds.nds)});
    t.add_row({"nxy (cols/proc)", Table::fmt(atm.params.ds.nxy, 0),
               Table::fmt(patm.ds.nxy, 0),
               bench::pct(atm.params.ds.nxy, patm.ds.nxy)});
    t.add_row({"tgsum (us)", Table::fmt(atm.params.ds.tgsum, 1),
               Table::fmt(patm.ds.tgsum, 1),
               bench::pct(atm.params.ds.tgsum, patm.ds.tgsum)});
    t.add_row({"texchxy (us)", Table::fmt(atm.params.ds.texchxy, 0),
               Table::fmt(patm.ds.texchxy, 0),
               bench::pct(atm.params.ds.texchxy, patm.ds.texchxy)});
    t.add_row({"Fds (MFlop/s)", Table::fmt(atm.params.ds.fds_mflops, 0),
               Table::fmt(patm.ds.fds_mflops, 0), "-"});
    t.print(std::cout,
            "(paper's nxy=1024 vs 128*64/16=512 columns/proc: see DESIGN.md; "
            "we report wet columns per processor)");
  }

  std::cout << "\nmean CG iterations Ni: atmosphere "
            << Table::fmt(atm.ni, 1) << ", ocean " << Table::fmt(ocn.ni, 1)
            << " (paper one-year mean: 60)\n";
  return 0;
}
