// Ablation (Section 4.1/4.2): mix-mode operation.  With two processors
// per SMP sharing one NIU, the communication master serializes both
// processors' remote traffic (and the local combine adds ~1 us to the
// global sum), but the same node count delivers twice the compute.
// Compare the two ways of using 16 processors' worth of hardware:
// 16 SMPs x 1 proc (one NIU each) vs 8 SMPs x 2 procs (mix-mode).
#include <iostream>

#include "bench/bench_util.hpp"
#include "gcm/config.hpp"
#include "net/arctic_model.hpp"
#include "perf/calibrate.hpp"
#include "support/table.hpp"

int main() {
  using namespace hyades;
  const net::ArcticModel net;
  bench::banner("Ablation: mix-mode (2 procs/SMP) vs one proc per node");

  const perf::PrimitiveCosts one =
      perf::measure_primitives(net, perf::MachineShape{16, 1}, 8);
  const perf::PrimitiveCosts mix =
      perf::measure_primitives(net, perf::MachineShape{8, 2}, 8);

  Table t({"primitive", "16x1 (us)", "2x8 mix-mode (us)", "penalty"});
  t.add_row({"global sum", Table::fmt(one.tgsum, 2), Table::fmt(mix.tgsum, 2),
             bench::pct(mix.tgsum, one.tgsum)});
  t.add_row({"exchange 2-D", Table::fmt(one.texchxy, 1),
             Table::fmt(mix.texchxy, 1), bench::pct(mix.texchxy, one.texchxy)});
  t.add_row({"exchange 3-D (10 lev)", Table::fmt(one.texchxyz_atmos, 0),
             Table::fmt(mix.texchxyz_atmos, 0),
             bench::pct(mix.texchxyz_atmos, one.texchxyz_atmos)});
  t.add_row({"exchange 3-D (30 lev)", Table::fmt(one.texchxyz_ocean, 0),
             Table::fmt(mix.texchxyz_ocean, 0),
             bench::pct(mix.texchxyz_ocean, one.texchxyz_ocean)});
  t.print(std::cout,
          "mix-mode funnels two processors' strips through one NIU "
          "(paper: slave bandwidth ~30% lower, local sum ~1 us)");

  // Whole-application view: the same 16-processor atmosphere on both
  // machine shapes.
  const perf::ModelMeasurement m16x1 = perf::measure_model(
      gcm::atmosphere_preset(4, 4), net, perf::MachineShape{16, 1}, 3);
  const perf::ModelMeasurement m2x8 = perf::measure_model(
      gcm::atmosphere_preset(4, 4), net, perf::MachineShape{8, 2}, 3);
  std::cout << "\natmosphere step: 16x1 = "
            << Table::fmt(m16x1.step_us / 1000.0, 2)
            << " ms, 2x8 mix-mode = " << Table::fmt(m2x8.step_us / 1000.0, 2)
            << " ms (" << bench::pct(m2x8.step_us, m16x1.step_us)
            << ") -- mix-mode halves the interconnect cost per processor "
               "for a modest communication penalty\n";
  return 0;
}
