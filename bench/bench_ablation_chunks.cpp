// Ablation (Section 4.1's design choice): the VI-mode sender copies data
// into the VI region "in several small chunks and initiates DMA on a
// chunk immediately after each copy to overlap the DMA transfer with the
// next round of copying".  The chunk size trades first-chunk latency
// (part of the ~8.6 us negotiation) against per-chunk doorbell overhead;
// this sweep shows the perceived 1-KB / 8-KB bandwidth across chunk
// sizes, plus what happens with no overlap at all.
#include <iostream>

#include "bench/bench_util.hpp"
#include "net/arctic_model.hpp"
#include "startx/config.hpp"
#include "support/table.hpp"

int main() {
  using namespace hyades;
  bench::banner("Ablation: VI sender chunk size (Section 4.1)");

  Table t({"chunk (B)", "overhead (us)", "BW @1KB (MB/s)", "BW @8KB (MB/s)"});
  for (int chunk : {128, 256, 512, 1024, 2048, 4096}) {
    startx::StartXConfig niu;
    niu.vi_chunk_bytes = chunk;
    const net::ArcticModel model(16, niu);
    const double ovh = model.transfer_overhead();
    t.add_row({Table::fmt_int(chunk), Table::fmt(ovh, 2),
               Table::fmt(1024.0 / model.transfer_time(1024), 1),
               Table::fmt(8192.0 / model.transfer_time(8192), 1)});
  }
  t.print(std::cout, "production choice: 512-byte chunks -> 8.6 us overhead");

  // No-overlap strawman: every chunk's copy serializes with its DMA, so
  // the copy cost applies to the whole payload, not just the first chunk.
  startx::StartXConfig niu;
  const net::ArcticModel model(16, niu);
  auto no_overlap_time = [&](double bytes) {
    return model.transfer_overhead() +
           bytes / niu.vi_payload_mbytes_per_sec +
           bytes / niu.copy_mbytes_per_sec;  // un-hidden copy
  };
  std::cout << "\nwithout copy/DMA overlap: "
            << Table::fmt(1024.0 / no_overlap_time(1024.0), 1)
            << " MB/s @1KB, "
            << Table::fmt(131072.0 / no_overlap_time(131072.0), 1)
            << " MB/s @128KB (peak drops from 110 to ~"
            << Table::fmt(1.0 / (1.0 / niu.vi_payload_mbytes_per_sec +
                                 1.0 / niu.copy_mbytes_per_sec),
                          0)
            << " MB/s)\n";
  return 0;
}
