// Chaos soak: 200 seeded fault schedules thrown at the resilient
// driver, composed from one SplitMix64-derived draw each -- multi-node
// kills (concurrent and cascading across epochs), kills fired during
// recovery, post-commit checkpoint corruption, permanent link deaths,
// hot node joins, and both ring depths, under both recovery modes.
//
// The soak asserts the robustness contract, not a performance number:
// every schedule the driver survives must finish bit-identical to the
// failure-free run, and every schedule it cannot survive must end in a
// typed gcm::RecoveryError subclass -- never a hang (the soak finishing
// at all is the hang check: every epoch is bounded by max_restarts),
// never an untyped escape.  Any violation exits nonzero.  Emits
// BENCH_chaos.json with the survival rate, the landed-rung histogram,
// and per-rung recovery clocks.
#include <algorithm>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "bench/bench_util.hpp"
#include "cluster/fault.hpp"
#include "cluster/runtime.hpp"
#include "gcm/model.hpp"
#include "gcm/resilient.hpp"
#include "gcm/tile_ckpt.hpp"
#include "net/arctic_model.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace hyades;

constexpr int kSmps = 4;
constexpr int kPpp = 1;
constexpr int kSteps = 12;
constexpr int kCkptEvery = 3;
constexpr int kMaxRestarts = 4;
constexpr int kDraws = 200;
constexpr std::uint64_t kSoakSeed = 0xC4A0C4A0u;

gcm::ModelConfig make_cfg() {
  gcm::ModelConfig cfg;
  cfg.isomorph = gcm::Isomorph::kOcean;
  cfg.nx = 16;
  cfg.ny = 8;
  cfg.nz = 4;
  cfg.px = 2;
  cfg.py = 2;
  cfg.halo = 2;
  cfg.dt = 400.0;
  cfg.visc_h = 1.0e6;
  cfg.diff_h = 1.0e5;
  cfg.topography = gcm::ModelConfig::Topography::kBasin;
  cfg.validate();
  return cfg;
}

struct RunOut {
  gcm::ResilientStats stats;
  std::map<int, gcm::State> state;  // by rank
  double busy_us = 0;
};

RunOut run_draw(const cluster::FaultPlan* plan, gcm::RecoveryMode mode,
                int ring_depth, const std::string& ckpt_prefix,
                std::function<void(int, const cluster::NodeDownVerdict&)>
                    pre_recovery) {
  const net::ArcticModel net;
  cluster::MachineConfig mc;
  mc.smp_count = kSmps;
  mc.procs_per_smp = kPpp;
  mc.interconnect = &net;
  mc.faults = plan;
  cluster::Runtime rt(mc);

  gcm::ResilientConfig rcfg;
  rcfg.ckpt_prefix = ckpt_prefix;
  rcfg.ckpt_every = kCkptEvery;
  rcfg.max_restarts = kMaxRestarts;
  rcfg.ring_depth = ring_depth;
  rcfg.recovery = mode;
  rcfg.pre_recovery = std::move(pre_recovery);

  RunOut out;
  std::mutex mu;
  rcfg.on_complete = [&](cluster::RankContext& ctx, gcm::Model& m) {
    std::lock_guard<std::mutex> lock(mu);
    out.state.emplace(ctx.rank(), m.state());
  };
  try {
    out.stats = gcm::run_resilient(rt, make_cfg(), kSteps, rcfg);
    // lint:allow(catch-all): driver-thread slot cleanup; rethrows intact
  } catch (...) {
    gcm::tile_ckpt::remove_slots(ckpt_prefix, mc.nranks());
    throw;
  }
  out.busy_us = rt.max_clock();
  gcm::tile_ckpt::remove_slots(ckpt_prefix, mc.nranks());
  return out;
}

bool states_bit_identical(const RunOut& a, const RunOut& b) {
  if (a.state.size() != b.state.size()) return false;
  for (const auto& [rank, sa] : a.state) {
    const gcm::State& sb = b.state.at(rank);
    const auto same = [](const double* x, const double* y, std::size_t n) {
      return std::memcmp(x, y, n * sizeof(double)) == 0;
    };
    if (!same(sa.u.data(), sb.u.data(), sa.u.size()) ||
        !same(sa.v.data(), sb.v.data(), sa.v.size()) ||
        !same(sa.theta.data(), sb.theta.data(), sa.theta.size()) ||
        !same(sa.salt.data(), sb.salt.data(), sa.salt.size()) ||
        sa.step != sb.step) {
      return false;
    }
  }
  return true;
}

// Flip one payload byte of a committed checkpoint file: post-commit bit
// rot.  The header stays intact, so only deep verification can tell.
void rot_payload(const std::string& path) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!f.good()) return;
  f.seekg(0, std::ios::end);
  const std::streamoff size = f.tellg();
  if (size <= 0) return;
  f.seekg(size - 1);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5a);
  f.seekp(size - 1);
  f.write(&byte, 1);
}

}  // namespace

int main() {
  bench::banner("Chaos soak: " + std::to_string(kDraws) +
                " seeded cascading-failure schedules");
  set_log_level(LogLevel::kError);  // kill storms stay quiet

  // The failure-free baseline every survivor's bits must match.
  // Recovery mode, ring depth, link kills and joins are all
  // bits-neutral, so one baseline covers every draw.
  const RunOut clean = run_draw(nullptr, gcm::RecoveryMode::kMigrate, 2,
                                "/tmp/hyades_bch_clean", nullptr);

  int survived = 0;
  int failed_typed = 0;
  int untyped_escapes = 0;
  int bits_broken = 0;
  int total_events = 0;
  std::int64_t total_downgrades = 0;
  std::map<std::string, int> failure_kinds;
  // Landed-rung histogram and summed recovery clocks, indexed by rung.
  std::map<std::string, int> rung_count;
  std::map<std::string, double> rung_rec_us;

  for (int d = 0; d < kDraws; ++d) {
    SplitMix64 rng(kSoakSeed + 977u * static_cast<std::uint64_t>(d));

    cluster::FaultPlan plan;
    const int n_kills = 1 + static_cast<int>(rng.next_below(3));
    std::vector<int> ranks = {0, 1, 2, 3};
    for (int i = 0; i < n_kills; ++i) {
      // Draw distinct victim ranks; the first kill always lands in
      // epoch 0 so every draw exercises at least one recovery.
      const std::size_t pick =
          static_cast<std::size_t>(rng.next_below(ranks.size()));
      const int victim = ranks[pick];
      ranks.erase(ranks.begin() + static_cast<std::ptrdiff_t>(pick));
      const int epoch = (i == 0) ? 0 : static_cast<int>(rng.next_below(2));
      plan.node_kills.push_back(
          {victim, clean.busy_us * rng.next_in(0.15, 0.85), epoch});
    }
    if (rng.next_double() < 0.25) {
      const int a = static_cast<int>(rng.next_below(kSmps));
      const int b = (a + 1 + static_cast<int>(rng.next_below(kSmps - 1))) %
                    kSmps;
      plan.link_kills.push_back({a, b, clean.busy_us * rng.next_double()});
    }
    if (rng.next_double() < 0.25) {
      plan.node_joins.push_back({plan.node_kills.front().rank / kPpp,
                                 static_cast<long>(
                                     kCkptEvery *
                                     (2 + static_cast<long>(
                                              rng.next_below(2))))});
    }
    const int ring_depth = 2 + static_cast<int>(rng.next_below(2));
    const gcm::RecoveryMode mode = rng.next_double() < 0.25
                                       ? gcm::RecoveryMode::kEpochRestart
                                       : gcm::RecoveryMode::kMigrate;
    const bool corrupt = rng.next_double() < 0.3;
    bool rotted = false;
    auto pre_recovery = [&](int, const cluster::NodeDownVerdict& v) {
      // Post-commit bit rot on the first recovery's primary casualty:
      // its newest durable tile decays between commit and adoption.
      if (rotted || !corrupt || v.rank < 0) return;
      rotted = true;
      const gcm::tile_ckpt::TileHit newest = gcm::tile_ckpt::newest_rank_ckpt(
          "/tmp/hyades_bch_d" + std::to_string(d), v.rank, kSteps);
      if (newest.step >= 0) rot_payload(newest.path);
    };

    try {
      const RunOut got = run_draw(&plan, mode, ring_depth,
                                  "/tmp/hyades_bch_d" + std::to_string(d),
                                  pre_recovery);
      ++survived;
      if (!states_bit_identical(clean, got)) {
        ++bits_broken;
        std::cerr << "BENCH_chaos: draw " << d
                  << " survived but broke bit-identity with the "
                     "failure-free run\n";
      }
      for (std::size_t i = 0; i < got.stats.ladder.size(); ++i) {
        const gcm::RecoveryEvent& ev = got.stats.ladder[i];
        ++total_events;
        total_downgrades += ev.downgrades();
        const std::string rung = gcm::to_string(ev.landed());
        ++rung_count[rung];
        if (i < got.stats.recovery_us.size()) {
          rung_rec_us[rung] += got.stats.recovery_us[i];
        }
      }
    } catch (const gcm::RecoveryExhausted& e) {
      ++failed_typed;
      ++failure_kinds["RecoveryExhausted"];
      // The exhausted ladder must carry its full history: every rung
      // tried, every failure explained.
      if (e.history.empty() ||
          std::any_of(e.history.begin(), e.history.end(),
                      [](const gcm::RungAttempt& a) {
                        return a.reason.empty();
                      })) {
        ++untyped_escapes;
        std::cerr << "BENCH_chaos: draw " << d
                  << " RecoveryExhausted without a full ladder history\n";
      }
    } catch (const gcm::RestartExhausted&) {
      ++failed_typed;
      ++failure_kinds["RestartExhausted"];
    } catch (const gcm::RecoveryError& e) {
      ++failed_typed;
      ++failure_kinds["RecoveryError"];
      if (std::string(e.what()).empty()) ++untyped_escapes;
    } catch (const std::exception& e) {
      ++untyped_escapes;
      std::cerr << "BENCH_chaos: draw " << d
                << " escaped with an untyped exception: " << e.what() << "\n";
      // lint:allow(catch-all): the soak's contract detector -- a
      // non-exception throw reaching the driver IS the violation being
      // counted (RankFailStop never crosses out of run_resilient).
    } catch (...) {
      ++untyped_escapes;
      std::cerr << "BENCH_chaos: draw " << d
                << " escaped with a non-exception throw\n";
    }
  }

  Table t({"landed rung", "recoveries", "mean recovery (us)"});
  bench::Json rungs = bench::Json::array();
  for (const auto& [rung, count] : rung_count) {
    const double mean = count > 0 ? rung_rec_us[rung] / count : 0.0;
    t.add_row({rung, Table::fmt_int(count), Table::fmt(mean, 0)});
    rungs.push(bench::Json::object()
                   .set("rung", rung)
                   .set("recoveries", count)
                   .set("mean_recovery_us", mean));
  }
  t.print(std::cout,
          std::to_string(kDraws) + " draws, 16x8x4 basin ocean, 4 tiles / " +
              std::to_string(kSmps) + " SMPs, " + std::to_string(kSteps) +
              " steps, ckpt every " + std::to_string(kCkptEvery));

  std::cout << "\nsurvived " << survived << "/" << kDraws << " ("
            << failed_typed << " typed give-ups";
  for (const auto& [kind, count] : failure_kinds) {
    std::cout << ", " << count << " " << kind;
  }
  std::cout << "), " << total_events << " recovery events, "
            << total_downgrades << " ladder downgrades, " << untyped_escapes
            << " untyped escapes, " << bits_broken << " bit-identity breaks\n";
  std::cout
      << "\nreading: the soak's contract is binary -- a schedule is either "
         "survivable (bits must match the failure-free run exactly) or it "
         "is not (the error must be a typed RecoveryError subclass whose "
         "ladder history says what was tried and why each rung fell "
         "through).  The rung histogram shows the degradation ladder "
         "doing its job: most recoveries land on the first rung, bit rot "
         "pushes some to the older cut, and cornered schedules fall back "
         "to restarting the world before any of them is allowed to "
         "become a crash.\n";

  bench::Json failures = bench::Json::array();
  for (const auto& [kind, count] : failure_kinds) {
    failures.push(
        bench::Json::object().set("kind", kind).set("count", count));
  }
  bench::Json root = bench::Json::object();
  root.set("bench", "chaos")
      .set("config", bench::Json::object()
                         .set("seed", static_cast<double>(kSoakSeed))
                         .set("draws", kDraws)
                         .set("nx", 16)
                         .set("ny", 8)
                         .set("nz", 4)
                         .set("tiles", 4)
                         .set("smps", kSmps)
                         .set("procs_per_smp", kPpp)
                         .set("steps", kSteps)
                         .set("ckpt_every", kCkptEvery)
                         .set("max_restarts", kMaxRestarts))
      .set("survived", survived)
      .set("failed_typed", failed_typed)
      .set("failures", std::move(failures))
      .set("recovery_events", total_events)
      .set("ladder_downgrades", static_cast<double>(total_downgrades))
      .set("untyped_escapes", untyped_escapes)
      .set("bit_identity_breaks", bits_broken)
      .set("rungs", std::move(rungs));
  bench::write_json("BENCH_chaos.json", root);

  if (untyped_escapes > 0 || bits_broken > 0) {
    std::cerr << "BENCH_chaos: robustness contract violated\n";
    return 1;
  }
  return 0;
}
