// Figure 2: LogP performance characteristics of PIO message passing for
// 8-byte and 64-byte payload messages.
//
// The measurement drives the packet-level simulator exactly the way the
// paper's microbenchmark drove the hardware: Os/Or from the mmap access
// costs, and the round trip from a ping-pong between two cross-tree
// nodes of a 16-endpoint Arctic fabric.
#include <iostream>

#include "bench/bench_util.hpp"
#include "net/logp.hpp"
#include "support/table.hpp"

int main() {
  using namespace hyades;
  bench::banner("Figure 2: LogP characteristics of PIO message passing");

  struct PaperRow {
    int bytes;
    double os, orr, half_rtt, L;
  };
  const PaperRow paper[] = {{8, 0.4, 2.0, 3.7, 1.3}, {64, 1.7, 8.6, 11.7, 1.4}};

  Table t({"size (B)", "Os (us)", "paper", "d", "Or (us)", "paper", "d",
           "RTT/2 (us)", "paper", "d", "L (us)", "paper", "d"});
  for (const PaperRow& row : paper) {
    const net::PioLogPResult r = net::measure_pio_logp(row.bytes);
    t.add_row({Table::fmt_int(row.bytes),
               Table::fmt(r.os, 2), Table::fmt(row.os, 1),
               bench::pct(r.os, row.os),
               Table::fmt(r.orr, 2), Table::fmt(row.orr, 1),
               bench::pct(r.orr, row.orr),
               Table::fmt(r.half_rtt, 2), Table::fmt(row.half_rtt, 1),
               bench::pct(r.half_rtt, row.half_rtt),
               Table::fmt(r.L, 2), Table::fmt(row.L, 1),
               bench::pct(r.L, row.L)});
  }
  t.print(std::cout,
          "measured on the Arctic/StarT-X simulator vs paper Figure 2");

  // The paper's own sanity check: Os and Or follow from the mmap access
  // costs of Section 2.1 (0.18 us/store, 0.93 us/load per 8-byte beat).
  std::cout << "\nmmap-derived estimates (Section 2.3): send 8B = 0.36 us, "
               "recv 8B = 1.86 us\n";
  return 0;
}
