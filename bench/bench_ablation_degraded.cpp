// Ablation: surviving hard failures -- degraded-fabric bandwidth and
// kill-schedule recovery overhead.
//
// Part 1 drives the Arctic fabric simulator in adaptive (random
// uproute) mode with disjoint-pair traffic while permanent link kills
// accumulate: degraded up*/down* routing keeps every pair connected
// (the fat tree's path diversity), but each dead up port shrinks the
// diversity the adaptive mode spreads load over, so delivered
// bandwidth falls and completion time stretches.
//
// Part 2 runs a basin-gyre ocean under whole kill schedules -- dead
// links, node fail-stops, repeated fail-stops across epochs -- through
// the membership/restart machinery.  The invariant that makes the table
// meaningful: every survivable schedule finishes with final prognostic
// state bit-identical to the failure-free run (checked bitwise here;
// the bench exits nonzero on any mismatch).  What failures cost is
// virtual time, itemized by the accounting as reroute and restart.
#include <cstring>
#include <iostream>
#include <map>
#include <mutex>
#include <vector>

#include "arctic/fabric.hpp"
#include "arctic/fault.hpp"
#include "bench/bench_util.hpp"
#include "cluster/fault.hpp"
#include "cluster/runtime.hpp"
#include "comm/comm.hpp"
#include "gcm/model.hpp"
#include "gcm/resilient.hpp"
#include "net/arctic_model.hpp"
#include "sim/scheduler.hpp"
#include "support/logging.hpp"
#include "support/table.hpp"

namespace {

using namespace hyades;

// ---- part 1: fabric bandwidth vs dead links ---------------------------

constexpr int kEndpoints = 16;
constexpr int kPacketsPerPair = 96;
constexpr int kPayloadWords = 22;  // max-size packets

struct FabricPoint {
  double completion_us = 0;
  double mbytes_per_sec = 0;
  std::uint64_t degraded_routes = 0;
};

FabricPoint fabric_point(int dead_links) {
  sim::Scheduler sched;
  arctic::FabricConfig cfg;
  cfg.random_uproute = true;  // adaptive: bandwidth tracks live diversity
  cfg.seed = 4242;
  arctic::Fabric fabric(sched, kEndpoints, cfg);
  fabric.set_delivery_handler([](int, arctic::Packet&&) {});
  const int rpl = kEndpoints / arctic::kRadix;
  for (const arctic::KillEvent& k : arctic::seeded_link_kills(
           /*seed=*/99, dead_links, fabric.levels(), rpl, /*window_us=*/1.0)) {
    fabric.apply_kill(k);
  }
  for (int p = 0; p < kPacketsPerPair; ++p) {
    for (int src = 0; src < kEndpoints / 2; ++src) {
      arctic::Packet pkt;
      pkt.payload.assign(kPayloadWords, 0u);
      fabric.inject(src, src + kEndpoints / 2, std::move(pkt));
    }
  }
  sched.run();
  FabricPoint out;
  out.completion_us = sim::to_us(sched.now());
  const double bytes = static_cast<double>(kPacketsPerPair) *
                       (kEndpoints / 2) * kPayloadWords * 4.0;
  out.mbytes_per_sec = bytes / out.completion_us;  // MB/s == bytes/us
  out.degraded_routes = fabric.stats().degraded_routes;
  return out;
}

// ---- part 2: gyre recovery overhead per kill schedule -----------------

constexpr int kSmps = 4;
constexpr int kSteps = 24;

gcm::ModelConfig gyre_cfg() {
  gcm::ModelConfig cfg;
  cfg.isomorph = gcm::Isomorph::kOcean;
  cfg.nx = 32;
  cfg.ny = 16;
  cfg.nz = 6;
  cfg.px = 2;
  cfg.py = 2;
  cfg.halo = 2;
  cfg.dt = 400.0;
  cfg.visc_h = 1.0e6;
  cfg.diff_h = 1.0e5;
  cfg.topography = gcm::ModelConfig::Topography::kBasin;
  cfg.validate();
  return cfg;
}

struct SchedulePoint {
  int restarts = 0;
  std::int64_t degraded_sends = 0;
  double reroute_us = 0;
  double restart_us = 0;
  double makespan_us = 0;
  std::map<int, std::vector<double>> theta;  // per-rank final field, bitwise
};

SchedulePoint run_schedule(const cluster::FaultPlan* plan) {
  const net::ArcticModel net;
  cluster::MachineConfig mc;
  mc.smp_count = kSmps;
  mc.procs_per_smp = 1;
  mc.interconnect = &net;
  mc.faults = plan;
  cluster::Runtime rt(mc);

  gcm::ResilientConfig rcfg;
  rcfg.ckpt_prefix = "/tmp/hyades_bench_degraded_ckpt";
  rcfg.ckpt_every = 6;
  rcfg.max_restarts = 4;
  SchedulePoint out;
  std::mutex mu;
  rcfg.on_complete = [&](cluster::RankContext& ctx, gcm::Model& m) {
    const double* d = m.state().theta.data();
    std::lock_guard<std::mutex> lock(mu);
    out.theta.emplace(ctx.rank(),
                      std::vector<double>(d, d + m.state().theta.size()));
  };
  const gcm::ResilientStats st = gcm::run_resilient(rt, gyre_cfg(), kSteps, rcfg);
  out.restarts = st.restarts;
  for (const cluster::Accounting& a : rt.accounting()) {
    out.degraded_sends += a.degraded_sends;
    out.reroute_us += a.reroute_us;
  }
  // rt.accounting() snapshots only the final epoch; the total restart
  // charge across all aborted epochs is plan-pure.
  out.restart_us = plan != nullptr
                       ? st.restarts * plan->restart_cost_us * kSmps
                       : 0.0;
  out.makespan_us = rt.max_clock();
  return out;
}

bool theta_bits_equal(const SchedulePoint& a, const SchedulePoint& b) {
  if (a.theta.size() != b.theta.size()) return false;
  for (const auto& [rank, va] : a.theta) {
    const auto it = b.theta.find(rank);
    if (it == b.theta.end() || it->second.size() != va.size()) return false;
    if (std::memcmp(va.data(), it->second.data(),
                    va.size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::banner("Ablation: hard failures -- degraded fabric and restart "
                "recovery");
  set_log_level(LogLevel::kError);  // membership warnings stay quiet

  {
    Table t({"dead links", "completion (us)", "bandwidth (MB/s)",
             "degraded routes", "slowdown"});
    FabricPoint base;
    for (int dead : {0, 1, 2, 4}) {
      const FabricPoint p = fabric_point(dead);
      if (dead == 0) base = p;
      t.add_row({Table::fmt_int(dead), Table::fmt(p.completion_us, 1),
                 Table::fmt(p.mbytes_per_sec, 1),
                 Table::fmt_int(static_cast<long>(p.degraded_routes)),
                 Table::fmt(p.completion_us / base.completion_us, 2) + "x"});
    }
    t.print(std::cout,
            "8 disjoint pairs x " + std::to_string(kPacketsPerPair) +
                " max-size packets, 16-endpoint fat tree; seeded permanent "
                "link kills (at most one up port per router, so every pair "
                "stays connected)");
  }

  struct Schedule {
    const char* name;
    cluster::FaultPlan plan;
  };
  std::vector<Schedule> schedules;
  schedules.push_back({"no failures", {}});
  {
    Schedule s{"2 link kills (t=0)", {}};
    s.plan.link_kills.push_back({0, 1, 0.0});
    s.plan.link_kills.push_back({2, 3, 0.0});
    schedules.push_back(s);
  }
  {
    Schedule s{"1 node kill", {}};
    s.plan.node_kills.push_back({/*rank=*/3, /*at_us=*/200.0, /*epoch=*/0});
    schedules.push_back(s);
  }
  {
    Schedule s{"2 node kills (2 epochs)", {}};
    s.plan.node_kills.push_back({/*rank=*/3, /*at_us=*/200.0, /*epoch=*/0});
    s.plan.node_kills.push_back({/*rank=*/1, /*at_us=*/400.0, /*epoch=*/1});
    schedules.push_back(s);
  }
  {
    Schedule s{"2 links + 1 node kill", {}};
    s.plan.link_kills.push_back({0, 1, 0.0});
    s.plan.link_kills.push_back({2, 3, 0.0});
    s.plan.node_kills.push_back({/*rank=*/3, /*at_us=*/200.0, /*epoch=*/0});
    schedules.push_back(s);
  }

  Table t({"kill schedule", "restarts", "degraded sends", "reroute (us)",
           "restart (us)", "makespan (us)", "overhead"});
  SchedulePoint base;
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    const SchedulePoint p = run_schedule(&schedules[i].plan);
    if (i == 0) base = p;
    if (!theta_bits_equal(base, p)) {
      std::cerr << "KILL SCHEDULE BROKE BIT-IDENTITY: " << schedules[i].name
                << "\n";
      return 1;
    }
    t.add_row({schedules[i].name, Table::fmt_int(p.restarts),
               Table::fmt_int(static_cast<long>(p.degraded_sends)),
               Table::fmt(p.reroute_us, 0), Table::fmt(p.restart_us, 0),
               Table::fmt(p.makespan_us, 0),
               Table::fmt(100.0 * (p.makespan_us / base.makespan_us - 1.0),
                          1) +
                   "%"});
  }
  t.print(std::cout,
          "32x16x6 basin ocean, 4 ranks / 4 SMPs, " + std::to_string(kSteps) +
              " steps, checkpoint every 6; every schedule above ends "
              "bit-identical to the failure-free run (checked)");

  std::cout
      << "\nreading: dead links are absorbed by rerouting -- the run never "
         "stops, it just pays the route-around penalty on every transfer "
         "that crosses the dead pair.  A node kill costs an epoch: the "
         "work since the last checkpoint is discarded, survivors agree on "
         "the verdict after the heartbeat deadline, and the restart "
         "(relaunch + reload) is charged to every rank.  Repeated kills "
         "compound per epoch, which is why the restart budget exists.\n";
  return 0;
}
