// Host-side microbenchmarks (google-benchmark): throughput of the
// simulator substrate itself -- event scheduling, packet routing through
// the fat tree, CG operator application, and a full GCM model step.
// These guard the *reproduction's* performance, not the paper's numbers.
#include <benchmark/benchmark.h>

#include "arctic/fabric.hpp"
#include "gcm/cg.hpp"
#include "gcm/halo.hpp"
#include "gcm/model.hpp"
#include "net/arctic_model.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace hyades;

void BM_SchedulerEventChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    int count = 0;
    for (int i = 0; i < 1000; ++i) {
      sched.schedule_at(sim::from_us(i % 97), [&count] { ++count; });
    }
    sched.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerEventChurn);

void BM_FabricAllPairs(benchmark::State& state) {
  const auto endpoints = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler sched;
    arctic::Fabric fabric(sched, endpoints);
    int delivered = 0;
    fabric.set_delivery_handler(
        [&delivered](int, arctic::Packet&&) { ++delivered; });
    for (int s = 0; s < endpoints; ++s) {
      for (int d = 0; d < endpoints; ++d) {
        if (s == d) continue;
        arctic::Packet p;
        p.payload = {1u, 2u};
        fabric.inject(s, d, std::move(p));
      }
    }
    sched.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * endpoints * (endpoints - 1));
}
BENCHMARK(BM_FabricAllPairs)->Arg(16)->Arg(64);

void BM_EllipticApply(benchmark::State& state) {
  gcm::ModelConfig cfg = gcm::ocean_preset(1, 1);
  cfg.topography = gcm::ModelConfig::Topography::kFlat;
  const gcm::Decomp dec(cfg, 0);
  const gcm::TileGrid grid(cfg, dec);
  const gcm::EllipticOperator op(cfg, dec, grid);
  Array2D<double> p(static_cast<std::size_t>(dec.ext_x()),
                    static_cast<std::size_t>(dec.ext_y()), 1.0);
  Array2D<double> out = p;
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.apply(p, out));
  }
  state.SetItemsProcessed(state.iterations() * cfg.nx * cfg.ny);
}
BENCHMARK(BM_EllipticApply);

void BM_ModelStepSingleTile(benchmark::State& state) {
  // Host cost of one full 128x64x10 atmosphere step on one tile (no
  // threading): the dominant real-time cost of the reproduction.
  const net::ArcticModel net;
  cluster::MachineConfig mc;
  mc.smp_count = 1;
  mc.procs_per_smp = 1;
  mc.interconnect = &net;
  gcm::ModelConfig cfg = gcm::atmosphere_preset(1, 1);
  for (auto _ : state) {
    state.PauseTiming();
    cluster::Runtime rt(mc);
    state.ResumeTiming();
    rt.run([&](cluster::RankContext& ctx) {
      comm::Comm comm(ctx);
      gcm::Model m(cfg, comm);
      m.initialize();
      (void)m.step();
    });
  }
  state.SetItemsProcessed(state.iterations() * cfg.nx * cfg.ny * cfg.nz);
}
BENCHMARK(BM_ModelStepSingleTile)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
