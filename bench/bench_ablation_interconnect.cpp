// Section 6 comparison points: Hyades's application-specific primitives
// vs the general-purpose HPVM/Myrinet suite.
//   * 16-way barrier: HPVM > 50 us, "more than 2.5 times longer" than
//     Hyades's context-specific primitive;
//   * 1-KByte transfer: HPVM ~ 42 MB/s, "25% slower" than the exchange.
#include <iostream>

#include "bench/bench_util.hpp"
#include "cluster/runtime.hpp"
#include "comm/comm.hpp"
#include "net/arctic_model.hpp"
#include "net/logp.hpp"
#include "perf/params.hpp"
#include "support/table.hpp"

int main() {
  using namespace hyades;
  const net::ArcticModel net;

  bench::banner("Section 6: Hyades primitives vs HPVM (paper-reported)");

  // 16-way barrier (16 processors on 8 SMPs, via the global sum).
  cluster::MachineConfig mc;
  mc.smp_count = 8;
  mc.procs_per_smp = 2;
  mc.interconnect = &net;
  cluster::Runtime rt(mc);
  constexpr int kReps = 32;
  rt.run([&](cluster::RankContext& ctx) {
    comm::Comm comm(ctx);
    for (int i = 0; i < kReps; ++i) comm.barrier();
  });
  const double barrier_us = rt.max_clock() / kReps;

  // 1-KByte transfer bandwidth through the VI path.
  const net::ViTransferResult k1 = net::measure_vi_transfer(1024);

  Table t({"primitive", "Hyades (measured)", "HPVM (paper)", "ratio"});
  t.add_row({"16-way barrier (us)", Table::fmt(barrier_us, 1),
             "> " + Table::fmt(perf::kHpvmBarrier16, 0),
             Table::fmt(perf::kHpvmBarrier16 / barrier_us, 1) + "x"});
  t.add_row({"1-KB transfer (MB/s)", Table::fmt(k1.mbytes_per_sec, 1),
             Table::fmt(perf::kHpvm1KBandwidth, 0),
             Table::fmt(k1.mbytes_per_sec / perf::kHpvm1KBandwidth, 2) + "x"});
  t.print(std::cout,
          "paper: HPVM barrier >2.5x longer; HPVM 1-KB transfer 25% slower");
  return 0;
}
