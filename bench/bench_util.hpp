// Shared helpers for the figure/table reproduction binaries: every bench
// prints the paper's reported values next to this reproduction's
// measured analogs, with the relative deviation.
#pragma once

#include <iostream>
#include <string>

#include "support/table.hpp"

namespace hyades::bench {

inline std::string pct(double measured, double paper) {
  if (paper == 0.0) return "-";
  const double d = 100.0 * (measured - paper) / paper;
  return (d >= 0 ? "+" : "") + Table::fmt(d, 1) + "%";
}

inline void banner(const std::string& title) {
  std::cout << "\n==== " << title << " ====\n";
}

}  // namespace hyades::bench
