// Shared helpers for the figure/table reproduction binaries: every bench
// prints the paper's reported values next to this reproduction's
// measured analogs, with the relative deviation.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "cluster/report.hpp"
#include "cluster/trace.hpp"
#include "perf/calibrate.hpp"
#include "support/table.hpp"

namespace hyades::bench {

inline std::string pct(double measured, double paper) {
  if (paper == 0.0) return "-";
  const double d = 100.0 * (measured - paper) / paper;
  // Built via string+string append: `const char* + std::string&&` takes
  // libstdc++'s insert path, which trips GCC 12's -Wrestrict false
  // positive (PR105329) under -Werror.
  const std::string sign = d >= 0 ? "+" : "";
  return sign + Table::fmt(d, 1) + "%";
}

inline void banner(const std::string& title) {
  std::cout << "\n==== " << title << " ====\n";
}

// `--trace <path>` flag: returns the path, or nullptr when absent.
inline const char* trace_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--trace") return argv[i + 1];
  }
  return nullptr;
}

// Export a measure_model capture as Chrome trace-event JSON and print
// the per-rank wait-time attribution table (per model step).
inline void report_capture(const char* path,
                           const perf::TraceCapture& cap) {
  std::vector<const cluster::Tracer*> tr;
  tr.reserve(cap.tracers.size());
  for (const cluster::Tracer& t : cap.tracers) tr.push_back(&t);
  cluster::write_trace_json(path, tr, cap.procs_per_smp);
  std::cout << "\nwrote Chrome trace (load in ui.perfetto.dev or "
               "chrome://tracing): "
            << path << "\n";
  print_wait_attribution(std::cout, cluster::wait_attribution(tr, cap.acct),
                         static_cast<double>(cap.steps));
}

}  // namespace hyades::bench
