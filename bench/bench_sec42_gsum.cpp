// Section 4.2: optimized global sum latencies.
//
//   * single processor per node: 2/4/8/16-way = 4.0 / 8.3 / 12.8 / 18.2 us
//   * two processors per SMP:    2x2 .. 2x16  = 4.8 / 9.1 / 13.5 / 19.5 us
//   * least-squares fit: tgsum = 4.67 * log2(N) - 0.95 us
//
// Latencies are measured by running the comm library's butterfly on the
// cluster runtime over the Arctic timing model.
#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "cluster/runtime.hpp"
#include "comm/comm.hpp"
#include "net/arctic_model.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

double measure_gsum(const hyades::net::Interconnect& net, int smps, int ppp) {
  using namespace hyades;
  cluster::MachineConfig mc;
  mc.smp_count = smps;
  mc.procs_per_smp = ppp;
  mc.interconnect = &net;
  cluster::Runtime rt(mc);
  constexpr int kReps = 32;
  rt.run([&](cluster::RankContext& ctx) {
    comm::Comm comm(ctx);
    for (int i = 0; i < kReps; ++i) (void)comm.global_sum(1.0);
  });
  return rt.max_clock() / kReps;
}

}  // namespace

int main() {
  using namespace hyades;
  const net::ArcticModel net;

  bench::banner("Section 4.2: N-way global sum latency (1 proc/node)");
  {
    const double paper[] = {4.0, 8.3, 12.8, 18.2};
    Table t({"N", "measured (us)", "paper (us)", "d"});
    std::vector<double> xs, ys;
    for (int i = 0; i < 4; ++i) {
      const int nodes = 2 << i;
      const double us = measure_gsum(net, nodes, 1);
      t.add_row({Table::fmt_int(nodes), Table::fmt(us, 2),
                 Table::fmt(paper[i], 1), bench::pct(us, paper[i])});
      xs.push_back(i + 1.0);
      ys.push_back(us);
    }
    t.print(std::cout);
    const LinearFit fit = least_squares(xs, ys);
    std::cout << "least-squares fit: tgsum = " << Table::fmt(fit.slope, 2)
              << " * log2(N) " << (fit.intercept < 0 ? "- " : "+ ")
              << Table::fmt(std::abs(fit.intercept), 2)
              << " us   (paper: 4.67 * log2(N) - 0.95)\n";
  }

  bench::banner("Section 4.2: 2xN-way global sum latency (2 procs/SMP)");
  {
    const double paper[] = {4.8, 9.1, 13.5, 19.5};
    Table t({"config", "measured (us)", "paper (us)", "d"});
    for (int i = 0; i < 4; ++i) {
      const int smps = 2 << i;
      const double us = measure_gsum(net, smps, 2);
      t.add_row({"2x" + Table::fmt_int(smps), Table::fmt(us, 2),
                 Table::fmt(paper[i], 1), bench::pct(us, paper[i])});
    }
    t.print(std::cout, "SMP-local combine adds ~1 us (paper: \"about 1 usec\")");
  }
  return 0;
}
