// Figure 7: perceived VI-mode transfer bandwidth as a function of block
// size (4 bytes .. 128 KBytes), including the one-time ~8.6 us transfer
// negotiation.  Points are measured through the packet-level simulator;
// the closed-form curve size/(overhead + size/110) is printed alongside.
#include <iostream>

#include "bench/bench_util.hpp"
#include "net/arctic_model.hpp"
#include "net/logp.hpp"
#include "support/table.hpp"

int main() {
  using namespace hyades;
  bench::banner("Figure 7: transfer bandwidth vs block size");

  const net::ArcticModel model;
  Table t({"block (B)", "measured (MB/s)", "model (MB/s)", "d"});
  for (std::int64_t size = 4; size <= 131072; size *= 2) {
    const net::ViTransferResult r = net::measure_vi_transfer(size);
    const double analytic =
        static_cast<double>(size) / model.transfer_time(size);
    t.add_row({Table::fmt_int(size), Table::fmt(r.mbytes_per_sec, 2),
               Table::fmt(analytic, 2),
               bench::pct(r.mbytes_per_sec, analytic)});
  }
  t.print(std::cout, "DES-measured vs closed-form (paper peak: 110 MB/s)");

  const net::ViTransferResult k1 = net::measure_vi_transfer(1024);
  const net::ViTransferResult k9 = net::measure_vi_transfer(9 * 1024);
  std::cout << "\npaper checkpoints: 56.8 MB/s @ 1 KB (measured "
            << Table::fmt(k1.mbytes_per_sec, 1) << "), >=90% of peak @ 9 KB"
            << " (measured " << Table::fmt(100.0 * k9.mbytes_per_sec / 110.0, 1)
            << "%)\n";
  std::cout << "transfer negotiation overhead (model): "
            << Table::fmt(model.transfer_overhead(), 2)
            << " us (paper: 8.6 us)\n";
  return 0;
}
