// Minimal machine-readable output for the bench binaries: an ordered
// JSON document builder with deterministic number formatting, so each
// figure reproduction can drop a BENCH_<name>.json next to its table
// (plots and regression tooling parse these instead of the text).
//
// Deliberately tiny: insertion-ordered objects, arrays, strings, bools
// and doubles formatted with "%.10g" (shortest round-trippable form for
// the magnitudes the benches emit, and stable across runs because every
// value derives from the deterministic virtual clock).
//
// Conformance notes (strict parsers reject the alternatives):
//   - JSON has no NaN/Infinity literal, so non-finite doubles are
//     emitted as `null` -- a ratio with a zero denominator (dedup
//     speedups, failure-free failure rates) stays machine-readable.
//   - Control characters below 0x20 are escaped: the common ones as
//     their two-character forms (\b \t \n \f \r), the rest as \u00XX.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace hyades::bench {

class Json {
 public:
  Json() = default;  // null
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  Json(double v) : kind_(Kind::kNumber), num_(v) {}        // NOLINT(runtime/explicit)
  Json(int v) : kind_(Kind::kNumber), num_(v) {}           // NOLINT(runtime/explicit)
  Json(std::int64_t v) : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}  // NOLINT
  Json(bool v) : kind_(Kind::kBool), bool_(v) {}           // NOLINT(runtime/explicit)
  Json(const char* v) : kind_(Kind::kString), str_(v) {}   // NOLINT(runtime/explicit)
  Json(std::string v) : kind_(Kind::kString), str_(std::move(v)) {}  // NOLINT

  // Objects: insertion-ordered key/value append; returns *this so rows
  // build as chains.
  Json& set(const std::string& key, Json value) {
    if (kind_ != Kind::kObject) {
      throw std::logic_error("Json::set on a non-object");
    }
    members_.emplace_back(key, std::move(value));
    return *this;
  }
  // Arrays.
  Json& push(Json value) {
    if (kind_ != Kind::kArray) {
      throw std::logic_error("Json::push on a non-array");
    }
    elements_.push_back(std::move(value));
    return *this;
  }

  void dump(std::ostream& os, int indent = 0) const {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    const std::string pad1(static_cast<std::size_t>(indent + 1) * 2, ' ');
    switch (kind_) {
      case Kind::kNull:
        os << "null";
        break;
      case Kind::kBool:
        os << (bool_ ? "true" : "false");
        break;
      case Kind::kNumber: {
        // %.10g would print "nan"/"inf", which no strict JSON parser
        // accepts; null is the documented non-finite encoding.
        if (!std::isfinite(num_)) {
          os << "null";
          break;
        }
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.10g", num_);
        os << buf;
        break;
      }
      case Kind::kString:
        write_escaped(os, str_);
        break;
      case Kind::kArray:
        if (elements_.empty()) {
          os << "[]";
          break;
        }
        os << "[\n";
        for (std::size_t i = 0; i < elements_.size(); ++i) {
          os << pad1;
          elements_[i].dump(os, indent + 1);
          os << (i + 1 < elements_.size() ? ",\n" : "\n");
        }
        os << pad << "]";
        break;
      case Kind::kObject:
        if (members_.empty()) {
          os << "{}";
          break;
        }
        os << "{\n";
        for (std::size_t i = 0; i < members_.size(); ++i) {
          os << pad1;
          write_escaped(os, members_[i].first);
          os << ": ";
          members_[i].second.dump(os, indent + 1);
          os << (i + 1 < members_.size() ? ",\n" : "\n");
        }
        os << pad << "}";
        break;
    }
  }

 private:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  static void write_escaped(std::ostream& os, const std::string& s) {
    os << '"';
    for (char c : s) {
      switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\b': os << "\\b"; break;
        case '\t': os << "\\t"; break;
        case '\n': os << "\\n"; break;
        case '\f': os << "\\f"; break;
        case '\r': os << "\\r"; break;
        default:
          // RFC 8259: all other control characters below 0x20 MUST be
          // escaped; a raw \x1b (say, from a string that carried ANSI
          // color) would make the document unparseable.
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            os << buf;
          } else {
            os << c;
          }
      }
    }
    os << '"';
  }

  Kind kind_ = Kind::kNull;
  double num_ = 0.0;
  bool bool_ = false;
  std::string str_;
  std::vector<Json> elements_;
  std::vector<std::pair<std::string, Json>> members_;
};

// Write `root` to `path` (trailing newline, UTF-8) and tell the user.
inline void write_json(const std::string& path, const Json& root) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_json: cannot open " + path);
  }
  root.dump(out, 0);
  out << "\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace hyades::bench
