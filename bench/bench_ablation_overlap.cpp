// Ablation: compute/communication overlap in the PS phase
// (ModelConfig::overlap_comm).  The split-phase comm core posts all five
// 3-D exchanges, computes the tile-interior tendencies while the strips
// are in flight, then completes the exchanges and computes the halo rim.
// The numerics are bitwise identical either way; only the timing moves.
//
// Two questions, per interconnect and tile size:
//   1. How much PS wall time does overlap recover?  (It should matter
//      most on Fast Ethernet, whose exchange dwarfs the interior
//      compute, and least on Arctic, whose exchange is already cheap.)
//   2. Does the perf model's overlap term,
//          T_exch_effective = max(t_cpu_floor, t_exch - t_interior),
//      predict the simulated overlapped PS from measured primitives --
//      the paper's Section 5.3 methodology?
#include <iostream>
#include <mutex>
#include <vector>

#include "bench/bench_util.hpp"
#include "cluster/runtime.hpp"
#include "comm/comm.hpp"
#include "gcm/halo.hpp"
#include "gcm/model.hpp"
#include "net/arctic_model.hpp"
#include "net/ethernet.hpp"
#include "perf/perf_model.hpp"
#include "support/table.hpp"

namespace {

using namespace hyades;

constexpr int kSmps = 8;
constexpr int kPpp = 2;
constexpr int kNz = 10;
constexpr int kSteps = 2;

gcm::ModelConfig make_cfg(int nx, int ny, bool overlap) {
  gcm::ModelConfig cfg;
  cfg.isomorph = gcm::Isomorph::kOcean;
  cfg.nx = nx;
  cfg.ny = ny;
  cfg.nz = kNz;
  cfg.px = 4;
  cfg.py = 4;
  cfg.halo = 2;
  cfg.dt = 400.0;
  cfg.visc_h = 1.0e6;
  cfg.diff_h = 1.0e5;
  cfg.cg_tol = 1.0e-5;
  cfg.cg_max_iter = 50;
  cfg.topography = gcm::ModelConfig::Topography::kRidge;
  cfg.overlap_comm = overlap;
  cfg.validate();
  return cfg;
}

struct PsTimes {
  double tps = 0, exch = 0, interior = 0, hidden = 0;
};

// Mean per-step PS times of the busiest rank.
PsTimes model_ps(const net::Interconnect& net, int nx, int ny, bool overlap) {
  cluster::MachineConfig mc;
  mc.smp_count = kSmps;
  mc.procs_per_smp = kPpp;
  mc.interconnect = &net;
  cluster::Runtime rt(mc);
  const gcm::ModelConfig cfg = make_cfg(nx, ny, overlap);
  PsTimes out;
  std::mutex mu;
  rt.run([&](cluster::RankContext& ctx) {
    comm::Comm comm(ctx);
    gcm::Model m(cfg, comm);
    m.initialize();
    m.run(kSteps);
    const gcm::PerfObservables& o = m.stepper().observables();
    std::lock_guard<std::mutex> lock(mu);
    const double tps = o.tps_us / kSteps;
    if (tps > out.tps) {
      out.tps = tps;
      out.exch = o.tps_exch_us / kSteps;
      out.interior = o.tps_interior_us / kSteps;
      out.hidden = o.overlap_us / kSteps;
    }
  });
  return out;
}

// Cost of the split-phase five-field exchange pattern itself, with a
// compute filler of `filler_us` between the posts and the completion
// (0: the full pipelined cost t_exch; huge: the un-hideable CPU floor).
double pipelined_exchange_cost(const net::Interconnect& net, int nx, int ny,
                               double filler_us) {
  cluster::MachineConfig mc;
  mc.smp_count = kSmps;
  mc.procs_per_smp = kPpp;
  mc.interconnect = &net;
  cluster::Runtime rt(mc);
  const gcm::ModelConfig cfg = make_cfg(nx, ny, true);
  constexpr int kFields = 5;
  constexpr int kReps = 4;
  rt.run([&](cluster::RankContext& ctx) {
    comm::Comm comm(ctx);
    const gcm::Decomp dec(cfg, comm.group_rank());
    std::vector<Array3D<double>> f(
        kFields, Array3D<double>(static_cast<std::size_t>(dec.ext_x()),
                                 static_cast<std::size_t>(dec.ext_y()),
                                 static_cast<std::size_t>(kNz), 1.0));
    for (int rep = 0; rep < kReps; ++rep) {
      std::vector<gcm::HaloExchange3> hx;
      hx.reserve(kFields);
      for (auto& fld : f) hx.emplace_back(comm, dec, fld, cfg.halo);
      for (auto& x : hx) x.start();
      if (filler_us > 0) {
        ctx.compute(filler_us * cfg.fps_mflops, cfg.fps_mflops);
      }
      for (auto& x : hx) x.progress();
      for (auto& x : hx) x.finish();
    }
  });
  return rt.max_clock() / kReps - filler_us;
}

}  // namespace

int main() {
  bench::banner("Ablation: split-phase PS exchange, compute overlapped");

  const net::ArcticModel arctic;
  const net::EthernetModel ge = net::gigabit_ethernet();
  const net::EthernetModel fe = net::fast_ethernet();
  struct Net {
    const char* name;
    const net::Interconnect* net;
  };
  const Net nets[] = {{"Arctic", &arctic},
                      {"Gigabit Ethernet", &ge},
                      {"Fast Ethernet", &fe}};
  const std::pair<int, int> sizes[] = {{32, 16}, {64, 32}, {128, 64}};

  for (const Net& n : nets) {
    Table t({"tile", "PS off (us)", "PS on (us)", "speedup", "hidden/step",
             "model (us)", "err"});
    for (const auto& [nx, ny] : sizes) {
      const PsTimes off = model_ps(*n.net, nx, ny, false);
      const PsTimes on = model_ps(*n.net, nx, ny, true);
      const double t_pipe = pipelined_exchange_cost(*n.net, nx, ny, 0.0);
      const double t_floor =
          pipelined_exchange_cost(*n.net, nx, ny, 4.0e6);

      // Section 5.3 methodology: feed measured primitives into the
      // analytic form and compare against the simulated overlapped run.
      perf::PhaseParams p;
      p.nps = off.tps - off.exch;  // measured PS compute time
      p.nxyz = 1.0;
      p.fps_mflops = 1.0;  // so tps_compute(p) == p.nps
      p.texchxyz = t_pipe / 5.0;
      const double pred = perf::tps_overlap(p, on.interior, t_floor);
      const double err = (pred - on.tps) / on.tps;

      t.add_row({Table::fmt(nx / 4, 0) + "x" + Table::fmt(ny / 4, 0) + "x" +
                     Table::fmt(kNz, 0),
                 Table::fmt(off.tps, 0), Table::fmt(on.tps, 0),
                 Table::fmt(off.tps / on.tps, 2) + "x",
                 Table::fmt(on.hidden, 0), Table::fmt(pred, 0),
                 Table::fmt(100.0 * err, 1) + "%"});
    }
    t.print(std::cout, std::string(n.name) +
                           ", ocean isomorph, 16 procs / 8 SMPs, busiest "
                           "rank, per step");
  }

  std::cout
      << "\nreading: overlap buys little on Arctic, whose exchange is "
         "mostly hidden already by its low per-transfer overhead, and "
         "the most on Fast Ethernet, where the five exchanges dominate "
         "the PS -- there, posting all strips up front both pipelines "
         "the transfers and hides them under the interior tendencies.  "
         "The model's overlap term max(t_cpu_floor, t_exch - t_interior) "
         "tracks the simulated runs from measured primitives alone "
         "(Section 5.3 methodology).\n";
  return 0;
}
