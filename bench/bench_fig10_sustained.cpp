// Figure 10: sustained performance of the ocean isomorph of the coarse-
// resolution climate model.  Vector-machine rows are the paper's
// reference numbers; the Hyades rows are measured by running the real
// GCM on the simulated cluster (1 processor, and 16 processors over 8
// two-way SMPs) and dividing counted flops by virtual time.
#include <iostream>

#include "bench/bench_json.hpp"
#include "bench/bench_util.hpp"
#include "gcm/config.hpp"
#include "net/arctic_model.hpp"
#include "perf/calibrate.hpp"
#include "perf/perf_model.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace hyades;
  const char* trace_out = bench::trace_path(argc, argv);
  bench::banner("Figure 10: sustained performance, ocean isomorph");

  const net::ArcticModel net;

  const gcm::ModelConfig one = gcm::ocean_preset(1, 1);
  const perf::ModelMeasurement m1 =
      perf::measure_model(one, net, perf::MachineShape{1, 1}, 3);

  const gcm::ModelConfig sixteen = gcm::ocean_preset(4, 4);
  perf::TraceCapture cap;
  const perf::ModelMeasurement m16 =
      perf::measure_model(sixteen, net, perf::MachineShape{8, 2}, 3,
                          /*warmup=*/2, trace_out ? &cap : nullptr);

  Table t({"procs", "machine", "sustained (GFlop/s)", "source"});
  for (const auto& ref : perf::kVectorMachines) {
    t.add_row({Table::fmt_int(ref.processors), ref.name,
               Table::fmt(ref.sustained_gflops, 1), "paper (reported)"});
  }
  t.add_row({"1", "Hyades", Table::fmt(m1.aggregate_gflops, 3),
             "measured  (paper: " + Table::fmt(perf::kPaperHyades1, 3) + ")"});
  t.add_row({"16", "Hyades", Table::fmt(m16.aggregate_gflops, 3),
             "measured  (paper: " + Table::fmt(perf::kPaperHyades16, 1) + ")"});
  t.print(std::cout);

  const double speedup = m16.aggregate_gflops / m1.aggregate_gflops;
  std::cout << "\n16-processor speedup over 1 processor: "
            << Table::fmt(speedup, 1)
            << "x   (paper: \"fifteen times higher\")\n";
  std::cout << "coupled-run aggregate (both isomorphs, 32 procs): ~"
            << Table::fmt(2.0 * m16.aggregate_gflops, 2)
            << " GFlop/s (paper: 1.6-1.8 GFlop/s)\n";

  // Attribution of the residual gap: our kernel is leaner than the 1999
  // code (measured Nps vs the paper's 751 flops/cell), which lowers the
  // compute:communication ratio.  Feeding the paper's flop density into
  // the analytic model with OUR measured communication costs recovers
  // the paper's scaling -- i.e. the interconnect substrate reproduces
  // the paper's balance; only the kernel flop count differs.
  perf::PerfParams paper_density = m16.params;
  paper_density.ps.nps = perf::paper_ocean().ps.nps;
  paper_density.ds.nds = perf::paper_ocean().ds.nds;
  const double agg_paper_density =
      16.0 * perf::sustained_mflops(paper_density, m16.ni) / 1.0e3;
  // One-processor rate with the same density: compute time only.
  const auto& pd = paper_density;
  const double flops1 =
      pd.ps.nps * pd.ps.nxyz + m16.ni * pd.ds.nds * pd.ds.nxy;
  const double one_proc_rate =
      flops1 / (perf::tps_compute(pd.ps) + m16.ni * perf::tds_compute(pd.ds));
  std::cout << "with the paper's kernel flop density (Nps=751, Nds=36) on "
               "our measured comm costs: "
            << Table::fmt(agg_paper_density, 2) << " GFlop/s aggregate, "
            << Table::fmt(16.0 * perf::sustained_mflops(paper_density, m16.ni) /
                              one_proc_rate,
                          1)
            << "x speedup\n";

  bench::Json rows = bench::Json::array();
  for (const auto& ref : perf::kVectorMachines) {
    rows.push(bench::Json::object()
                  .set("machine", ref.name)
                  .set("procs", ref.processors)
                  .set("sustained_gflops", ref.sustained_gflops)
                  .set("source", "paper"));
  }
  rows.push(bench::Json::object()
                .set("machine", "Hyades")
                .set("procs", 1)
                .set("sustained_gflops", m1.aggregate_gflops)
                .set("paper_gflops", perf::kPaperHyades1)
                .set("source", "measured"));
  rows.push(bench::Json::object()
                .set("machine", "Hyades")
                .set("procs", 16)
                .set("sustained_gflops", m16.aggregate_gflops)
                .set("paper_gflops", perf::kPaperHyades16)
                .set("source", "measured"));
  bench::write_json("BENCH_fig10_sustained.json",
                    bench::Json::object()
                        .set("figure", "fig10_sustained")
                        .set("speedup_16_over_1", speedup)
                        .set("paper_density_aggregate_gflops",
                             agg_paper_density)
                        .set("rows", std::move(rows)));

  if (trace_out != nullptr) bench::report_capture(trace_out, cap);
  return 0;
}
