// Figure 12: Potential Floating-Point Performance of the 2.8125-degree
// atmospheric simulation on a 16-processor/8-SMP cluster interconnected
// by Fast Ethernet, Gigabit Ethernet, and the Arctic Switch Fabric.
//
// Three passes:
//   (1) Eqs. 14-15 evaluated with the paper's measured primitive costs
//       (exact reproduction of the table's arithmetic);
//   (2) the same equations fed with primitive costs measured by running
//       the comm library on each interconnect *model* (end-to-end
//       reproduction through our stack);
//   (3) a topology-at-scale study: the same equations fed with
//       closed-form primitive costs on parameterized fat-trees (radix
//       2/4/8) and a rival 3-D torus, weak-scaled from 32 to 1024
//       processors (per-rank tile held at the paper's 32 x 16).
#include <iostream>
#include <utility>

#include "bench/bench_json.hpp"
#include "bench/bench_util.hpp"
#include "net/arctic_model.hpp"
#include "net/ethernet.hpp"
#include "net/topology.hpp"
#include "net/torus.hpp"
#include "perf/calibrate.hpp"
#include "perf/perf_model.hpp"
#include "support/table.hpp"

namespace {

struct PaperRow {
  const char* name;
  hyades::perf::InterconnectCosts costs;
  double pfpp_ps, pfpp_ds;
};

// Closed-form analogs of measure_primitives for the at-scale sweep
// (running the threaded DES at 1024 ranks is not feasible inside a
// bench): the global sum is an SMP-local combine, log2(smps) butterfly
// rounds and a local distribution; an exchange pays, per phase, one
// outbound and one inbound strip transfer serialized on the SMP's bus
// (Section 4.1).  Per-rank estimate; mix-mode SMP aggregation is left
// out on both sides of the comparison.
hyades::Microseconds analytic_tgsum(const hyades::net::Interconnect& net,
                                    int smps) {
  hyades::Microseconds t = 2.0 * net.smp_local_sum_time();
  int rounds = 0;
  for (int n = smps; n > 1; n >>= 1) ++rounds;
  for (int r = 0; r < rounds; ++r) t += net.gsum_round_time(r);
  return t;
}

hyades::Microseconds analytic_texch(const hyades::net::Interconnect& net,
                                    int snx, int sny, int nz, int halo) {
  const auto bytes = [&](int edge) {
    return static_cast<std::int64_t>(edge) * halo * nz *
           static_cast<std::int64_t>(sizeof(double));
  };
  return 2.0 * (2.0 * net.exchange_transfer_time(bytes(sny)) +
                2.0 * net.exchange_transfer_time(bytes(snx)));
}

}  // namespace

int main() {
  using namespace hyades;
  const PaperRow rows[] = {
      {"Fast Ethernet", perf::paper_fast_ethernet(), 8.0, 1.6},
      {"Gigabit Ethernet", perf::paper_gigabit_ethernet(), 139.0, 6.2},
      {"Arctic", perf::paper_arctic(), 487.0, 143.0},
  };

  bench::Json json_paper = bench::Json::array();
  bench::Json json_measured = bench::Json::array();

  bench::banner("Figure 12 (paper costs): Pfpp via Eqs. 14-15");
  {
    Table t({"network", "tgsum", "texchxy", "texchxyz", "Pfpp,ps", "paper",
             "Pfpp,ds", "paper"});
    for (const PaperRow& row : rows) {
      const perf::PerfParams p =
          perf::with_interconnect(perf::paper_atmosphere(), row.costs);
      t.add_row({row.name, Table::fmt(row.costs.tgsum, 1),
                 Table::fmt(row.costs.texchxy, 0),
                 Table::fmt(row.costs.texchxyz, 0),
                 Table::fmt(perf::pfpp_ps(p.ps), 1), Table::fmt(row.pfpp_ps, 1),
                 Table::fmt(perf::pfpp_ds(p.ds), 1),
                 Table::fmt(row.pfpp_ds, 1)});
      json_paper.push(bench::Json::object()
                          .set("network", row.name)
                          .set("tgsum_us", row.costs.tgsum)
                          .set("texchxy_us", row.costs.texchxy)
                          .set("texchxyz_us", row.costs.texchxyz)
                          .set("pfpp_ps", perf::pfpp_ps(p.ps))
                          .set("pfpp_ds", perf::pfpp_ds(p.ds))
                          .set("paper_pfpp_ps", row.pfpp_ps)
                          .set("paper_pfpp_ds", row.pfpp_ds));
    }
    t.print(std::cout, "(MFlop/s; Fps = 50, Fds = 60 for reference)");
  }

  bench::banner("Figure 12 (our stack): primitives measured per interconnect");
  {
    const net::ArcticModel arctic;
    const net::EthernetModel fe = net::fast_ethernet();
    const net::EthernetModel ge = net::gigabit_ethernet();
    const net::EthernetModel hpvm = net::hpvm_myrinet();
    const net::Interconnect* nets[] = {&fe, &ge, &hpvm, &arctic};
    const char* paper_note[] = {"8.0 / 1.6", "139 / 6.2", "(not in Fig 12)",
                                "487 / 143"};
    Table t({"network", "tgsum (us)", "texchxy (us)", "texchxyz (us)",
             "Pfpp,ps", "Pfpp,ds", "paper ps/ds"});
    for (int i = 0; i < 4; ++i) {
      const perf::PrimitiveCosts c =
          perf::measure_primitives(*nets[i], perf::MachineShape{}, 4);
      perf::PerfParams p = perf::paper_atmosphere();
      p.ps.texchxyz = c.texchxyz_atmos;
      p.ds.tgsum = c.tgsum;
      p.ds.texchxy = c.texchxy;
      t.add_row({nets[i]->name(), Table::fmt(c.tgsum, 1),
                 Table::fmt(c.texchxy, 0), Table::fmt(c.texchxyz_atmos, 0),
                 Table::fmt(perf::pfpp_ps(p.ps), 1),
                 Table::fmt(perf::pfpp_ds(p.ds), 1), paper_note[i]});
      json_measured.push(bench::Json::object()
                             .set("network", nets[i]->name())
                             .set("tgsum_us", c.tgsum)
                             .set("texchxy_us", c.texchxy)
                             .set("texchxyz_us", c.texchxyz_atmos)
                             .set("pfpp_ps", perf::pfpp_ps(p.ps))
                             .set("pfpp_ds", perf::pfpp_ds(p.ds)));
    }
    t.print(std::cout, "(HPVM/Myrinet added from Section 6's data points)");
  }
  bench::write_json("BENCH_fig12_pfpp.json",
                    bench::Json::object()
                        .set("figure", "fig12_pfpp")
                        .set("paper_costs", std::move(json_paper))
                        .set("measured", std::move(json_measured)));

  bench::banner(
      "Topology at scale: fat-tree radix 2/4/8 vs 3-D torus, Eqs. 14-15");
  {
    // Weak scaling: per-rank tile fixed at the paper's 32 x 16 (so
    // nxyz/nxy per processor, and thus the compute terms, are the
    // 16-rank reference values); two processors per SMP as built.
    constexpr int kTileX = 32, kTileY = 16, kAtmosLevels = 10, kPsHalo = 3;
    const int ranks_list[] = {32, 64, 128, 256, 512, 1024};
    bench::Json sweep = bench::Json::array();
    Table t({"network", "ranks", "smps", "tgsum", "texchxyz", "Pfpp,ps",
             "Pfpp,ds", "diam", "bisect MB/s/SMP"});
    const auto add_point = [&](const net::Interconnect& net_model,
                               int ranks, int smps) {
      const perf::InterconnectCosts costs{
          analytic_tgsum(net_model, smps),
          analytic_texch(net_model, kTileX, kTileY, 1, 1),
          analytic_texch(net_model, kTileX, kTileY, kAtmosLevels, kPsHalo)};
      const perf::PerfParams p =
          perf::with_interconnect(perf::paper_atmosphere(), costs);
      const net::Topology* topo = net_model.topology();
      const double bisect_per_smp =
          topo != nullptr ? topo->bisection_bandwidth_mbytes() / smps : 0.0;
      const int diameter = topo != nullptr ? topo->diameter_hops() : 0;
      t.add_row({net_model.name(), Table::fmt_int(ranks),
                 Table::fmt_int(smps), Table::fmt(costs.tgsum, 1),
                 Table::fmt(costs.texchxyz, 0),
                 Table::fmt(perf::pfpp_ps(p.ps), 1),
                 Table::fmt(perf::pfpp_ds(p.ds), 1), Table::fmt_int(diameter),
                 Table::fmt(bisect_per_smp, 0)});
      bench::Json row = bench::Json::object();
      row.set("network", net_model.name())
          .set("ranks", ranks)
          .set("smps", smps)
          .set("tgsum_us", costs.tgsum)
          .set("texchxy_us", costs.texchxy)
          .set("texchxyz_us", costs.texchxyz)
          .set("pfpp_ps", perf::pfpp_ps(p.ps))
          .set("pfpp_ds", perf::pfpp_ds(p.ds));
      if (topo != nullptr) {
        row.set("diameter_hops", diameter)
            .set("mean_hops", topo->mean_hops())
            .set("bisection_mbytes", topo->bisection_bandwidth_mbytes())
            .set("bisection_mbytes_per_smp", bisect_per_smp);
      }
      sweep.push(std::move(row));
    };
    for (int ranks : ranks_list) {
      const int smps = ranks / 2;
      for (int radix : {2, 4, 8}) {
        const net::ArcticModel ft(smps, {}, {}, radix);
        add_point(ft, ranks, smps);
      }
      const net::TorusModel torus = net::TorusModel::for_nodes(smps);
      add_point(torus, ranks, smps);
    }
    t.print(std::cout,
            "(weak scaling, 32x16x10 tile per rank, 2 procs/SMP; tgsum and "
            "texch from the closed-form models, Pfpp via Eqs. 14-15)");
    bench::write_json("BENCH_topology_sweep.json",
                      bench::Json::object()
                          .set("figure", "topology_sweep")
                          .set("tile", bench::Json::object()
                                           .set("snx", kTileX)
                                           .set("sny", kTileY)
                                           .set("nz", kAtmosLevels)
                                           .set("halo", kPsHalo))
                          .set("rows", std::move(sweep)));
  }

  std::cout << "\nreading (Section 5.4): with ~50 MFlop/s processors, "
               "Gigabit Ethernet is viable for the coarse-grain PS phase "
               "but ~10x short of the 306 us DS-phase budget; only Arctic "
               "keeps Pfpp above the processors' compute rate in both "
               "phases.\n";
  return 0;
}
