// Figure 12: Potential Floating-Point Performance of the 2.8125-degree
// atmospheric simulation on a 16-processor/8-SMP cluster interconnected
// by Fast Ethernet, Gigabit Ethernet, and the Arctic Switch Fabric.
//
// Two passes:
//   (1) Eqs. 14-15 evaluated with the paper's measured primitive costs
//       (exact reproduction of the table's arithmetic);
//   (2) the same equations fed with primitive costs measured by running
//       the comm library on each interconnect *model* (end-to-end
//       reproduction through our stack).
#include <iostream>

#include "bench/bench_util.hpp"
#include "net/arctic_model.hpp"
#include "net/ethernet.hpp"
#include "perf/calibrate.hpp"
#include "perf/perf_model.hpp"
#include "support/table.hpp"

namespace {

struct PaperRow {
  const char* name;
  hyades::perf::InterconnectCosts costs;
  double pfpp_ps, pfpp_ds;
};

}  // namespace

int main() {
  using namespace hyades;
  const PaperRow rows[] = {
      {"Fast Ethernet", perf::paper_fast_ethernet(), 8.0, 1.6},
      {"Gigabit Ethernet", perf::paper_gigabit_ethernet(), 139.0, 6.2},
      {"Arctic", perf::paper_arctic(), 487.0, 143.0},
  };

  bench::banner("Figure 12 (paper costs): Pfpp via Eqs. 14-15");
  {
    Table t({"network", "tgsum", "texchxy", "texchxyz", "Pfpp,ps", "paper",
             "Pfpp,ds", "paper"});
    for (const PaperRow& row : rows) {
      const perf::PerfParams p =
          perf::with_interconnect(perf::paper_atmosphere(), row.costs);
      t.add_row({row.name, Table::fmt(row.costs.tgsum, 1),
                 Table::fmt(row.costs.texchxy, 0),
                 Table::fmt(row.costs.texchxyz, 0),
                 Table::fmt(perf::pfpp_ps(p.ps), 1), Table::fmt(row.pfpp_ps, 1),
                 Table::fmt(perf::pfpp_ds(p.ds), 1),
                 Table::fmt(row.pfpp_ds, 1)});
    }
    t.print(std::cout, "(MFlop/s; Fps = 50, Fds = 60 for reference)");
  }

  bench::banner("Figure 12 (our stack): primitives measured per interconnect");
  {
    const net::ArcticModel arctic;
    const net::EthernetModel fe = net::fast_ethernet();
    const net::EthernetModel ge = net::gigabit_ethernet();
    const net::EthernetModel hpvm = net::hpvm_myrinet();
    const net::Interconnect* nets[] = {&fe, &ge, &hpvm, &arctic};
    const char* paper_note[] = {"8.0 / 1.6", "139 / 6.2", "(not in Fig 12)",
                                "487 / 143"};
    Table t({"network", "tgsum (us)", "texchxy (us)", "texchxyz (us)",
             "Pfpp,ps", "Pfpp,ds", "paper ps/ds"});
    for (int i = 0; i < 4; ++i) {
      const perf::PrimitiveCosts c =
          perf::measure_primitives(*nets[i], perf::MachineShape{}, 4);
      perf::PerfParams p = perf::paper_atmosphere();
      p.ps.texchxyz = c.texchxyz_atmos;
      p.ds.tgsum = c.tgsum;
      p.ds.texchxy = c.texchxy;
      t.add_row({nets[i]->name(), Table::fmt(c.tgsum, 1),
                 Table::fmt(c.texchxy, 0), Table::fmt(c.texchxyz_atmos, 0),
                 Table::fmt(perf::pfpp_ps(p.ps), 1),
                 Table::fmt(perf::pfpp_ds(p.ds), 1), paper_note[i]});
    }
    t.print(std::cout, "(HPVM/Myrinet added from Section 6's data points)");
  }

  std::cout << "\nreading (Section 5.4): with ~50 MFlop/s processors, "
               "Gigabit Ethernet is viable for the coarse-grain PS phase "
               "but ~10x short of the 306 us DS-phase budget; only Arctic "
               "keeps Pfpp above the processors' compute rate in both "
               "phases.\n";
  return 0;
}
