// Calibration constants for the StarT-X NIU and its PCI host environment.
//
// All values trace to Sections 2.1-2.3 and 4.1 of the paper:
//   * 0.93 us latency for an 8-byte read of an uncached memory-mapped PCI
//     register; 0.18 us minimum between back-to-back 8-byte writes;
//   * >120 MByte/sec sustained PCI DMA;
//   * 110 MByte/sec peak VI-mode payload bandwidth;
//   * PIO overhead estimates Os/Or follow directly from counting mmap
//     accesses (the paper derives Figure 2 the same way);
//   * NIU tx/rx processing latencies are calibrated so the one-way
//     8-byte-message latency L through a 16-endpoint fabric matches the
//     paper's 1.3 us.
#pragma once

#include "support/units.hpp"

namespace hyades::startx {

struct StartXConfig {
  // PCI programmed-I/O costs (Section 2.1).
  Microseconds mmap_read_us = 0.93;
  Microseconds mmap_write_us = 0.18;

  // Host PCI DMA capability (Section 2.1).
  double pci_dma_mbytes_per_sec = 120.0;

  // NIU-internal processing latencies (calibrated, see header comment).
  Microseconds tx_latency_us = 0.15;
  Microseconds rx_latency_us = 0.23;

  // VI mode (Sections 2.3, 4.1).
  double vi_payload_mbytes_per_sec = 110.0;  // measured peak payload rate
  int vi_chunk_bytes = 512;                  // sender copy/DMA chunk
  double copy_mbytes_per_sec = 400.0;        // cached memcpy on the host

  // Bytes of user payload carried per Arctic packet in a VI stream
  // (the maximum 22-word payload).
  int vi_packet_payload_bytes = 88;
};

// Number of 8-byte mmap accesses needed to move a PIO message (two header
// words = one 8-byte access, then the payload in 8-byte accesses).
int pio_accesses(int payload_bytes);

}  // namespace hyades::startx
