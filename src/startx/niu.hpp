// The StarT-X network interface unit (Section 2.3).
//
// Two message-passing mechanisms are modeled, the two the GCM code uses:
//
//   PIO mode -- a FIFO-based network abstraction.  The CPU writes a
//   message (two header words + 2..22 payload words) into NIU registers
//   with uncached mmap stores, and reads received messages with uncached
//   mmap loads.  Overheads are therefore pure functions of the mmap
//   access counts, which is exactly how the paper estimates (and then
//   measures, Figure 2) Os and Or.
//
//   VI mode -- DMA extends the physical queues into cacheable host
//   memory.  A send streams the payload through the Tx DMA engine as a
//   train of maximum-size Arctic packets paced at the measured 110
//   MByte/sec payload rate; the Rx DMA engine deposits arriving packets
//   into a pre-specified buffer in the receiver's VI region and
//   completion is observable by polling.
//
// This class models *timing and semantics*; the actual payload words flow
// through the Arctic fabric simulator so that ordering, priorities and
// CRC behaviour are exercised for real.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "arctic/fabric.hpp"
#include "sim/scheduler.hpp"
#include "startx/config.hpp"

namespace hyades::startx {

// A PIO message as seen by the receiving CPU.
struct PioMessage {
  int src = -1;
  std::uint16_t tag = 0;
  std::vector<std::uint32_t> payload;
  sim::SimTime arrival = 0;  // when it became visible in the rx queue
  bool crc_error = false;    // the 1-bit status software must check
};

class StartXNiu {
 public:
  StartXNiu(sim::Scheduler& sched, arctic::Fabric& fabric, int node,
            StartXConfig cfg = {});

  StartXNiu(const StartXNiu&) = delete;
  StartXNiu& operator=(const StartXNiu&) = delete;

  [[nodiscard]] int node() const { return node_; }
  [[nodiscard]] const StartXConfig& config() const { return cfg_; }

  // ---- PIO mode ------------------------------------------------------
  // CPU overhead of composing/consuming a PIO message with `payload_bytes`
  // of payload: the mmap access count times the access cost.
  [[nodiscard]] Microseconds pio_send_overhead(int payload_bytes) const;
  [[nodiscard]] Microseconds pio_recv_overhead(int payload_bytes) const;

  // Inject a PIO message whose mmap stores complete at absolute sim time
  // `cpu_done`.  The NIU adds its tx latency before the packet enters the
  // fabric.  payload.size() must be in [2, 22] words.
  void pio_inject_at(sim::SimTime cpu_done, int dst, std::uint16_t tag,
                     std::vector<std::uint32_t> payload,
                     arctic::Priority pri = arctic::Priority::kLow);

  [[nodiscard]] bool pio_available() const { return !pio_rx_.empty(); }
  [[nodiscard]] std::size_t pio_rx_depth() const { return pio_rx_.size(); }
  PioMessage pio_pop();

  // Hook invoked (at message-visible time) whenever a PIO message lands.
  void set_pio_notify(std::function<void(const PioMessage&)> fn) {
    pio_notify_ = std::move(fn);
  }

  // ---- VI mode ---------------------------------------------------------
  // Stream `bytes` of payload to `dst` under VI tag `tag`, beginning at
  // absolute sim time `start` (the caller accounts for negotiation and
  // doorbell costs before `start`).  Packets are paced so the payload
  // rate equals the configured VI peak.  `on_sent` (optional) fires when
  // the last packet has left this NIU.
  void vi_send_at(sim::SimTime start, int dst, std::uint16_t tag,
                  std::int64_t bytes, std::function<void()> on_sent = {});

  // Register interest in an inbound VI stream: `on_done(t)` fires when
  // `bytes` of payload under `tag` have fully arrived (t = arrival of the
  // final packet).  Streams may begin arriving before vi_expect is
  // called; early bytes are counted.
  void vi_expect(std::uint16_t tag, std::int64_t bytes,
                 std::function<void(sim::SimTime)> on_done);

  // Bytes received so far for a tag (for tests).
  [[nodiscard]] std::int64_t vi_received(std::uint16_t tag) const;

  // VI chunks discarded because the packet arrived CRC-flagged: the DMA
  // engine must not deposit garbled data (or trust a garbled byte-count
  // word), so the stream stalls until a retransmit arrives.
  [[nodiscard]] std::uint64_t vi_crc_discards() const {
    return vi_crc_discards_;
  }

  // ---- misc ------------------------------------------------------------
  // Time to memcpy `bytes` on the host (cached copy), used by the VI
  // chunking protocol.
  [[nodiscard]] Microseconds copy_time(std::int64_t bytes) const;

  // Fabric delivery entry point (wired up by attach_all).
  void on_delivery(arctic::Packet&& p);

 private:
  sim::Scheduler& sched_;
  arctic::Fabric& fabric_;
  int node_;
  StartXConfig cfg_;

  std::deque<PioMessage> pio_rx_;
  std::function<void(const PioMessage&)> pio_notify_;

  struct ViStream {
    std::int64_t expected = -1;  // unknown until vi_expect
    std::int64_t received = 0;
    sim::SimTime last_arrival = 0;
    std::function<void(sim::SimTime)> on_done;
  };
  std::map<std::uint16_t, ViStream> vi_;
  sim::SimTime vi_tx_free_at_ = 0;  // Tx DMA engine availability
  std::uint64_t vi_crc_discards_ = 0;

  void vi_check_done(std::uint16_t tag);

  // Inject with link-down context: a fabric UnreachableError (the dead
  // set disconnects the destination) is rethrown naming this NIU and
  // the protocol that hit it, so the operator sees which node's traffic
  // is partitioned rather than a bare fabric coordinate.
  void inject_checked(const char* proto, int dst, arctic::Packet&& p);
};

// Construct one NIU per fabric endpoint and wire the fabric's delivery
// handler to them.  The returned vector owns the NIUs.
std::vector<std::unique_ptr<StartXNiu>> attach_all(sim::Scheduler& sched,
                                                   arctic::Fabric& fabric,
                                                   StartXConfig cfg = {});

}  // namespace hyades::startx
