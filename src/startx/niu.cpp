#include "startx/niu.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

namespace hyades::startx {

namespace {
// usr_tag bit layout: bit 10 distinguishes VI stream packets from PIO
// messages; bits [9:0] are the user/VI tag.
constexpr std::uint16_t kViFlag = 1u << 10;
constexpr std::uint16_t kTagMask = 0x3FF;

// A VI packet dedicates payload[0] to the chunk's byte count, leaving 21
// words (84 bytes) of data per maximum-size Arctic packet.
constexpr int kViDataBytesPerPacket = (arctic::kMaxPayloadWords - 1) * 4;
}  // namespace

int pio_accesses(int payload_bytes) {
  return 1 + (payload_bytes + 7) / 8;  // one 8-byte store/load pair of header words, then payload
}

StartXNiu::StartXNiu(sim::Scheduler& sched, arctic::Fabric& fabric, int node,
                     StartXConfig cfg)
    : sched_(sched), fabric_(fabric), node_(node), cfg_(cfg) {}

void StartXNiu::inject_checked(const char* proto, int dst,
                               arctic::Packet&& p) {
  try {
    fabric_.inject(node_, dst, std::move(p));
  } catch (const arctic::UnreachableError& e) {
    throw std::runtime_error("startx niu " + std::to_string(node_) + ": " +
                             proto + " to node " + std::to_string(dst) +
                             " failed, destination partitioned (" + e.what() +
                             ")");
  }
}

Microseconds StartXNiu::pio_send_overhead(int payload_bytes) const {
  return pio_accesses(payload_bytes) * cfg_.mmap_write_us;
}

Microseconds StartXNiu::pio_recv_overhead(int payload_bytes) const {
  return pio_accesses(payload_bytes) * cfg_.mmap_read_us;
}

void StartXNiu::pio_inject_at(sim::SimTime cpu_done, int dst,
                              std::uint16_t tag,
                              std::vector<std::uint32_t> payload,
                              arctic::Priority pri) {
  if (payload.size() < arctic::kMinPayloadWords ||
      payload.size() > arctic::kMaxPayloadWords) {
    throw std::invalid_argument("pio_inject_at: payload must be 2..22 words");
  }
  if (tag > kTagMask) {
    throw std::invalid_argument("pio_inject_at: tag exceeds 10 bits");
  }
  arctic::Packet p;
  p.priority = pri;
  p.usr_tag = tag;
  p.payload = std::move(payload);
  const sim::SimTime inject_at =
      std::max(cpu_done, sched_.now()) + sim::from_us(cfg_.tx_latency_us);
  sched_.schedule_at(inject_at, [this, dst, pkt = std::move(p)]() mutable {
    inject_checked("pio", dst, std::move(pkt));
  });
}

PioMessage StartXNiu::pio_pop() {
  if (pio_rx_.empty()) {
    // Fail fast with context: popping an empty hardware queue is a
    // driver-protocol bug, and "which node" is the first question.
    throw std::logic_error("pio_pop: rx queue empty on node " +
                           std::to_string(node_));
  }
  PioMessage m = std::move(pio_rx_.front());
  pio_rx_.pop_front();
  return m;
}

void StartXNiu::vi_send_at(sim::SimTime start, int dst, std::uint16_t tag,
                           std::int64_t bytes,
                           std::function<void()> on_sent) {
  if (tag > kTagMask) {
    throw std::invalid_argument("vi_send_at: tag exceeds 10 bits");
  }
  const sim::SimTime begin = std::max({start, sched_.now(), vi_tx_free_at_});
  if (bytes <= 0) {
    if (on_sent) sched_.schedule_at(begin, std::move(on_sent));
    return;
  }

  // Pace packets so payload streams at the configured VI peak rate.
  const double rate = cfg_.vi_payload_mbytes_per_sec;  // bytes per us
  std::int64_t sent = 0;
  sim::SimTime t = begin;
  while (sent < bytes) {
    const int chunk = static_cast<int>(
        std::min<std::int64_t>(bytes - sent, kViDataBytesPerPacket));
    arctic::Packet p;
    p.priority = arctic::Priority::kLow;
    p.usr_tag = static_cast<std::uint16_t>(kViFlag | tag);
    const int data_words = (chunk + 3) / 4;
    p.payload.resize(static_cast<std::size_t>(1 + std::max(data_words, 1)));
    p.payload[0] = static_cast<std::uint32_t>(chunk);
    sched_.schedule_at(t, [this, dst, pkt = std::move(p)]() mutable {
      inject_checked("vi", dst, std::move(pkt));
    });
    sent += chunk;
    t += sim::from_us(static_cast<double>(chunk) / rate);
  }
  vi_tx_free_at_ = t;
  if (on_sent) sched_.schedule_at(t, std::move(on_sent));
}

void StartXNiu::vi_expect(std::uint16_t tag, std::int64_t bytes,
                          std::function<void(sim::SimTime)> on_done) {
  ViStream& s = vi_[tag];
  s.expected = bytes;
  s.on_done = std::move(on_done);
  vi_check_done(tag);
}

std::int64_t StartXNiu::vi_received(std::uint16_t tag) const {
  auto it = vi_.find(tag);
  return it == vi_.end() ? 0 : it->second.received;
}

Microseconds StartXNiu::copy_time(std::int64_t bytes) const {
  return static_cast<double>(bytes) / cfg_.copy_mbytes_per_sec;
}

void StartXNiu::on_delivery(arctic::Packet&& p) {
  // The Rx side spends its processing latency before the message becomes
  // visible to software (PIO queue) or is deposited in the VI region.
  sched_.schedule_after(
      sim::from_us(cfg_.rx_latency_us), [this, pkt = std::move(p)]() mutable {
        if (pkt.usr_tag & kViFlag) {
          // Never trust any word of a CRC-flagged packet -- payload[0]
          // is the chunk byte count, and crediting a garbled count
          // would silently corrupt stream completion.  Discard; the
          // stream stalls until the sender retransmits.
          if (pkt.crc_error) {
            ++vi_crc_discards_;
            return;
          }
          if (pkt.payload.empty()) {
            throw std::logic_error(
                "on_delivery: node " + std::to_string(node_) +
                " got VI packet serial " + std::to_string(pkt.serial) +
                " with empty payload");
          }
          const auto chunk = static_cast<std::int64_t>(pkt.payload[0]);
          if (chunk > kViDataBytesPerPacket ||
              chunk > 4 * (pkt.payload_words() - 1)) {
            throw std::logic_error(
                "on_delivery: node " + std::to_string(node_) +
                " got VI packet serial " + std::to_string(pkt.serial) +
                " claiming " + std::to_string(chunk) + " bytes in " +
                std::to_string(pkt.payload_words()) + " payload words");
          }
          const auto tag = static_cast<std::uint16_t>(pkt.usr_tag & kTagMask);
          ViStream& s = vi_[tag];
          s.received += chunk;
          s.last_arrival = sched_.now();
          vi_check_done(tag);
        } else {
          PioMessage m;
          m.src = pkt.src;
          m.tag = static_cast<std::uint16_t>(pkt.usr_tag & kTagMask);
          m.payload = std::move(pkt.payload);
          m.arrival = sched_.now();
          m.crc_error = pkt.crc_error;
          pio_rx_.push_back(std::move(m));
          if (pio_notify_) pio_notify_(pio_rx_.back());
        }
      });
}

void StartXNiu::vi_check_done(std::uint16_t tag) {
  auto it = vi_.find(tag);
  if (it == vi_.end()) return;
  ViStream& s = it->second;
  if (s.expected < 0 || s.received < s.expected || !s.on_done) return;
  auto done = std::move(s.on_done);
  const sim::SimTime t = s.expected == 0 ? sched_.now() : s.last_arrival;
  vi_.erase(it);
  sched_.schedule_at(std::max(t, sched_.now()),
                     [done = std::move(done), t] { done(t); });
}

std::vector<std::unique_ptr<StartXNiu>> attach_all(sim::Scheduler& sched,
                                                   arctic::Fabric& fabric,
                                                   StartXConfig cfg) {
  std::vector<std::unique_ptr<StartXNiu>> nius;
  nius.reserve(static_cast<std::size_t>(fabric.endpoints()));
  for (int n = 0; n < fabric.endpoints(); ++n) {
    nius.push_back(std::make_unique<StartXNiu>(sched, fabric, n, cfg));
  }
  fabric.set_delivery_handler(
      [raw = nius.data(), n = nius.size()](int node, arctic::Packet&& p) {
        if (node < 0 || static_cast<std::size_t>(node) >= n) {
          throw std::logic_error(
              "attach_all: fabric delivered packet serial " +
              std::to_string(p.serial) + " to nonexistent node " +
              std::to_string(node));
        }
        raw[node]->on_delivery(std::move(p));
      });
  return nius;
}

}  // namespace hyades::startx
