#include "gcm/model.hpp"

#include <array>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <vector>


#include "gcm/eos.hpp"
#include "gcm/physics.hpp"
#include "gcm/tile_ckpt.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"

namespace hyades::gcm {

namespace {
// Rollbacks are worth a warning, but a fault storm must not turn the
// log into one line per replayed step.
RateLimiter g_rollback_warn_limiter(/*burst=*/4, /*every=*/64);

constexpr int kTagGather = 3000;

// Deterministic per-cell noise in [-0.5, 0.5), a function of the global
// indices only.
double cell_noise(std::uint64_t seed, int gi, int gj, int k) {
  SplitMix64 rng(seed ^ (static_cast<std::uint64_t>(gi) * 73856093u) ^
                 (static_cast<std::uint64_t>(gj) * 19349663u) ^
                 (static_cast<std::uint64_t>(k) * 83492791u));
  return rng.next_double() - 0.5;
}
}  // namespace

Model::Model(const ModelConfig& cfg, comm::Comm& comm)
    : cfg_(cfg), comm_(comm), dec_(cfg, comm.group_rank()), grid_(cfg, dec_) {
  cfg_.validate();
  if (comm.group_size() != cfg.tiles()) {
    throw std::invalid_argument("Model: comm group size != px*py");
  }
  state_.allocate(dec_, cfg_.nz);
  stepper_ = std::make_unique<Timestepper>(cfg_, comm_, dec_, grid_, state_);
}

void Model::initialize(std::uint64_t seed) {
  const int ex = dec_.ext_x();
  const int ey = dec_.ext_y();
  for (int i = 0; i < ex; ++i) {
    for (int j = 0; j < ey; ++j) {
      const int gi = ((dec_.global_i(i) % cfg_.nx) + cfg_.nx) % cfg_.nx;
      const int gj = dec_.global_j(j);
      const double lat = grid_.latC[static_cast<std::size_t>(j)];
      for (int k = 0; k < cfg_.nz; ++k) {
        if (grid_.hFacC(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                        static_cast<std::size_t>(k)) <= 0) {
          continue;
        }
        const double z = grid_.zC[static_cast<std::size_t>(k)];
        double theta;
        if (cfg_.isomorph == Isomorph::kAtmosphere) {
          theta = atmos_teq(cfg_, lat, z);
        } else {
          // Thermocline-like stratification with a surface meridional
          // gradient.
          const double sfc = std::exp(-z / 800.0);
          theta = cfg_.theta0 + 12.0 * sfc - 6.0 * std::sin(lat) * std::sin(lat) * sfc - 2.0 * z / cfg_.total_depth;
        }
        theta += 1.0e-3 * cell_noise(seed, gi, std::max(gj, 0), k);
        state_.theta(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                     static_cast<std::size_t>(k)) = theta;
        state_.salt(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                    static_cast<std::size_t>(k)) = cfg_.salt0;
      }
    }
  }
}

StepStats Model::step(const SurfaceForcing* forcing) {
  return stepper_->step(forcing);
}

Model::RunStats Model::run(int steps) {
  RunStats rs;
  const bool guarded = cfg_.retry_budget >= 0;

  // In-memory checkpoint: everything a replayed step reads.  The State
  // copy carries the prognostic fields, the Adams-Bashforth history and
  // the step counter; the observables snapshot keeps a replayed step
  // from double-counting its first attempt's flops and CG iterations.
  State snapshot = guarded ? state_ : State{};
  PerfObservables snap_obs = stepper_->observables();
  int snap_step = 0;
  int consecutive_rollbacks = 0;

  for (int s = 0; s < steps; ++s) {
    if (guarded && cfg_.checkpoint_interval > 0 && s > snap_step &&
        (s - snap_step) >= cfg_.checkpoint_interval) {
      snapshot = state_;
      snap_obs = stepper_->observables();
      snap_step = s;
    }
    const std::int64_t before = comm_.ctx().accounting().retransmits;
    (void)step();
    ++rs.steps_run;
    if (!guarded) continue;

    // Collective rollback decision: the worst rank's retransmit count
    // this step, so every rank rolls back (or commits) together.
    const double worst = comm_.global_max(
        static_cast<double>(comm_.ctx().accounting().retransmits - before));
    if (worst <= static_cast<double>(cfg_.retry_budget)) {
      consecutive_rollbacks = 0;
      continue;
    }
    ++rs.rollbacks;
    if (++consecutive_rollbacks > cfg_.max_rollbacks) {
      throw std::runtime_error(
          "Model::run: rank " + std::to_string(comm_.ctx().rank()) + " gave up after " +
          std::to_string(consecutive_rollbacks) +
          " consecutive rollbacks at step " + std::to_string(s));
    }
    if (g_rollback_warn_limiter.admit()) {
      log_warn() << "fault: rank " << comm_.ctx().rank()
                 << " rolling back step " << s << " to checkpoint at step "
                 << snap_step << " (worst retransmits " << worst
                 << " > budget " << cfg_.retry_budget << ") at t="
                 << comm_.ctx().clock().now() << " us";
    }
    state_ = snapshot;
    stepper_->set_observables(snap_obs);
    s = snap_step - 1;  // ++s replays from the checkpointed step
  }
  return rs;
}

double Model::sum_weighted(const Array3D<double>& f, bool squared,
                           bool weight_ke) {
  double local = 0.0;
  for (int i = dec_.halo; i < dec_.halo + dec_.snx; ++i) {
    for (int j = dec_.halo; j < dec_.halo + dec_.sny; ++j) {
      for (int k = 0; k < cfg_.nz; ++k) {
        const auto si = static_cast<std::size_t>(i);
        const auto sj = static_cast<std::size_t>(j);
        const auto sk = static_cast<std::size_t>(k);
        const double hfac =
            weight_ke ? grid_.hFacW(si, sj, sk) : grid_.hFacC(si, sj, sk);
        if (hfac <= 0) continue;
        const double vol = grid_.rAc[sj] * grid_.dzf[sk] * hfac;
        const double x = f(si, sj, sk);
        local += (squared ? x * x : x) * vol;
      }
    }
  }
  return comm_.global_sum(local);
}

double Model::total_theta_volume() {
  return sum_weighted(state_.theta, false, false);
}
double Model::total_salt_volume() {
  return sum_weighted(state_.salt, false, false);
}

double Model::mean_theta() {
  double vol = 0.0;
  for (int j = dec_.halo; j < dec_.halo + dec_.sny; ++j) {
    for (int i = dec_.halo; i < dec_.halo + dec_.snx; ++i) {
      for (int k = 0; k < cfg_.nz; ++k) {
        const auto sj = static_cast<std::size_t>(j);
        const double h = grid_.hFacC(static_cast<std::size_t>(i), sj,
                                     static_cast<std::size_t>(k));
        if (h > 0) vol += grid_.rAc[sj] * grid_.dzf[static_cast<std::size_t>(k)] * h;
      }
    }
  }
  const double total_vol = comm_.global_sum(vol);
  return total_vol > 0 ? total_theta_volume() / total_vol : 0.0;
}

double Model::kinetic_energy() {
  const double uu = sum_weighted(state_.u, true, true);
  // v-face weighting approximated with hFacW as well (diagnostic only).
  const double vv = sum_weighted(state_.v, true, true);
  return 0.5 * cfg_.rho0 * (uu + vv);
}

double Model::max_abs_w() {
  double local = 0.0;
  for (int i = dec_.halo; i < dec_.halo + dec_.snx; ++i) {
    for (int j = dec_.halo; j < dec_.halo + dec_.sny; ++j) {
      for (int k = 0; k < cfg_.nz; ++k) {
        local = std::max(local,
                         std::abs(state_.w(static_cast<std::size_t>(i),
                                           static_cast<std::size_t>(j),
                                           static_cast<std::size_t>(k))));
      }
    }
  }
  return comm_.global_max(local);
}

double Model::max_cfl() {
  double local = 0.0;
  for (int i = dec_.halo; i < dec_.halo + dec_.snx; ++i) {
    for (int j = dec_.halo; j < dec_.halo + dec_.sny; ++j) {
      const auto sj = static_cast<std::size_t>(j);
      for (int k = 0; k < cfg_.nz; ++k) {
        const auto si = static_cast<std::size_t>(i);
        const auto sk = static_cast<std::size_t>(k);
        local = std::max(
            local, std::abs(state_.u(si, sj, sk)) * cfg_.dt / grid_.dxC[sj]);
        local = std::max(
            local, std::abs(state_.v(si, sj, sk)) * cfg_.dt / grid_.dyC);
        local = std::max(local, std::abs(state_.w(si, sj, sk)) * cfg_.dt /
                                    grid_.dzf[sk]);
      }
    }
  }
  return comm_.global_max(local);
}

double Model::max_surface_divergence() {
  double local = 0.0;
  for (int i = dec_.halo; i < dec_.halo + dec_.snx; ++i) {
    for (int j = dec_.halo; j < dec_.halo + dec_.sny; ++j) {
      double div = 0.0;
      bool wet = false;
      for (int k = 0; k < cfg_.nz; ++k) {
        if (grid_.hFacC(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                        static_cast<std::size_t>(k)) <= 0) {
          continue;
        }
        wet = true;
        div += kernels::column_flux_divergence(grid_, state_.u, state_.v, i,
                                               j, k);
      }
      if (wet) {
        local = std::max(
            local, std::abs(div) / grid_.rAc[static_cast<std::size_t>(j)]);
      }
    }
  }
  return comm_.global_max(local);
}

double Model::load_imbalance() {
  const auto mine = static_cast<double>(grid_.wet_cells());
  const double total = comm_.global_sum(mine);
  const double busiest = comm_.global_max(mine);
  const double mean = total / comm_.group_size();
  return mean > 0 ? busiest / mean : 1.0;
}

Array2D<double> Model::gather2d(const Array2D<double>& local) {
  auto& ctx = comm_.ctx();
  const auto bytes = static_cast<std::int64_t>(
      static_cast<std::size_t>(dec_.snx * dec_.sny) * sizeof(double));
  const int root_abs = ctx.rank() - comm_.group_rank();  // group rank 0

  if (comm_.group_rank() != 0) {
    std::vector<double> payload;
    payload.reserve(static_cast<std::size_t>(dec_.snx * dec_.sny));
    for (int i = 0; i < dec_.snx; ++i) {
      for (int j = 0; j < dec_.sny; ++j) {
        payload.push_back(local(static_cast<std::size_t>(i),
                                static_cast<std::size_t>(j)));
      }
    }
    const Microseconds stamp =
        ctx.clock().now() + ctx.net().transfer_time(bytes);
    // lint:allow(raw-send): diagnostic gather outside the fault window
    // (fault plans target the step loop, not field collection); routing
    // it through reliable would shift goldens for zero model-state risk.
    ctx.send_raw(root_abs, kTagGather, std::move(payload), stamp);
    ctx.clock().advance(ctx.net().transfer_overhead());
    return {};
  }

  Array2D<double> global(static_cast<std::size_t>(cfg_.nx),
                         static_cast<std::size_t>(cfg_.ny), 0.0);
  // Own tile.
  for (int i = 0; i < dec_.snx; ++i) {
    for (int j = 0; j < dec_.sny; ++j) {
      global(static_cast<std::size_t>(dec_.i0 + i),
             static_cast<std::size_t>(dec_.j0 + j)) =
          local(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
    }
  }
  for (int gr = 1; gr < comm_.group_size(); ++gr) {
    const cluster::Message m = ctx.recv_raw(root_abs + gr, kTagGather);
    ctx.clock().advance_to(m.stamp_us);
    const Decomp dtheir(cfg_, gr);
    std::size_t n = 0;
    for (int i = 0; i < dtheir.snx; ++i) {
      for (int j = 0; j < dtheir.sny; ++j) {
        global(static_cast<std::size_t>(dtheir.i0 + i),
               static_cast<std::size_t>(dtheir.j0 + j)) = m.data[n++];
      }
    }
  }
  return global;
}

Array2D<double> Model::gather_theta(int k) {
  Array2D<double> local(static_cast<std::size_t>(dec_.snx),
                        static_cast<std::size_t>(dec_.sny), 0.0);
  for (int i = 0; i < dec_.snx; ++i) {
    for (int j = 0; j < dec_.sny; ++j) {
      local(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          state_.theta(static_cast<std::size_t>(i + dec_.halo),
                       static_cast<std::size_t>(j + dec_.halo),
                       static_cast<std::size_t>(k));
    }
  }
  return gather2d(local);
}

Array2D<double> Model::gather_speed(int k) {
  Array2D<double> local(static_cast<std::size_t>(dec_.snx),
                        static_cast<std::size_t>(dec_.sny), 0.0);
  for (int i = 0; i < dec_.snx; ++i) {
    for (int j = 0; j < dec_.sny; ++j) {
      const auto si = static_cast<std::size_t>(i + dec_.halo);
      const auto sj = static_cast<std::size_t>(j + dec_.halo);
      const auto sk = static_cast<std::size_t>(k);
      const double uc = 0.5 * (state_.u(si, sj, sk) + state_.u(si + 1, sj, sk));
      const double vc = 0.5 * (state_.v(si, sj, sk) + state_.v(si, sj + 1, sk));
      local(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          std::sqrt(uc * uc + vc * vc);
    }
  }
  return gather2d(local);
}

// Checkpoint format and file naming live in gcm/tile_ckpt (the single
// owner of the HYADES03 wire format and path composition); the Model
// methods stay as the per-rank facade over it.

std::string Model::checkpoint_path(const std::string& prefix,
                                   int group_rank) {
  return tile_ckpt::rank_path(prefix, group_rank);
}

long Model::checkpoint_step(const std::string& path) {
  return tile_ckpt::peek_step(path);
}

void Model::save_checkpoint(const std::string& prefix) const {
  tile_ckpt::save(tile_ckpt::rank_path(prefix, comm_.group_rank()), cfg_,
                  state_);
}

void Model::load_checkpoint(const std::string& prefix) {
  tile_ckpt::load(tile_ckpt::rank_path(prefix, comm_.group_rank()), cfg_,
                  &state_);
}

Array2D<double> Model::gather_ps() {
  Array2D<double> local(static_cast<std::size_t>(dec_.snx),
                        static_cast<std::size_t>(dec_.sny), 0.0);
  for (int i = 0; i < dec_.snx; ++i) {
    for (int j = 0; j < dec_.sny; ++j) {
      local(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          state_.ps(static_cast<std::size_t>(i + dec_.halo),
                    static_cast<std::size_t>(j + dec_.halo));
    }
  }
  return gather2d(local);
}

}  // namespace hyades::gcm
