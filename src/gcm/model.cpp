#include "gcm/model.hpp"

#include <array>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "arctic/crc.hpp"

#include "gcm/eos.hpp"
#include "gcm/physics.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"

namespace hyades::gcm {

namespace {
// Rollbacks are worth a warning, but a fault storm must not turn the
// log into one line per replayed step.
RateLimiter g_rollback_warn_limiter(/*burst=*/4, /*every=*/64);

constexpr int kTagGather = 3000;

// Deterministic per-cell noise in [-0.5, 0.5), a function of the global
// indices only.
double cell_noise(std::uint64_t seed, int gi, int gj, int k) {
  SplitMix64 rng(seed ^ (static_cast<std::uint64_t>(gi) * 73856093u) ^
                 (static_cast<std::uint64_t>(gj) * 19349663u) ^
                 (static_cast<std::uint64_t>(k) * 83492791u));
  return rng.next_double() - 0.5;
}
}  // namespace

Model::Model(const ModelConfig& cfg, comm::Comm& comm)
    : cfg_(cfg), comm_(comm), dec_(cfg, comm.group_rank()), grid_(cfg, dec_) {
  cfg_.validate();
  if (comm.group_size() != cfg.tiles()) {
    throw std::invalid_argument("Model: comm group size != px*py");
  }
  state_.allocate(dec_, cfg_.nz);
  stepper_ = std::make_unique<Timestepper>(cfg_, comm_, dec_, grid_, state_);
}

void Model::initialize(std::uint64_t seed) {
  const int ex = dec_.ext_x();
  const int ey = dec_.ext_y();
  for (int i = 0; i < ex; ++i) {
    for (int j = 0; j < ey; ++j) {
      const int gi = ((dec_.global_i(i) % cfg_.nx) + cfg_.nx) % cfg_.nx;
      const int gj = dec_.global_j(j);
      const double lat = grid_.latC[static_cast<std::size_t>(j)];
      for (int k = 0; k < cfg_.nz; ++k) {
        if (grid_.hFacC(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                        static_cast<std::size_t>(k)) <= 0) {
          continue;
        }
        const double z = grid_.zC[static_cast<std::size_t>(k)];
        double theta;
        if (cfg_.isomorph == Isomorph::kAtmosphere) {
          theta = atmos_teq(cfg_, lat, z);
        } else {
          // Thermocline-like stratification with a surface meridional
          // gradient.
          const double sfc = std::exp(-z / 800.0);
          theta = cfg_.theta0 + 12.0 * sfc - 6.0 * std::sin(lat) * std::sin(lat) * sfc - 2.0 * z / cfg_.total_depth;
        }
        theta += 1.0e-3 * cell_noise(seed, gi, std::max(gj, 0), k);
        state_.theta(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                     static_cast<std::size_t>(k)) = theta;
        state_.salt(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                    static_cast<std::size_t>(k)) = cfg_.salt0;
      }
    }
  }
}

StepStats Model::step(const SurfaceForcing* forcing) {
  return stepper_->step(forcing);
}

Model::RunStats Model::run(int steps) {
  RunStats rs;
  const bool guarded = cfg_.retry_budget >= 0;

  // In-memory checkpoint: everything a replayed step reads.  The State
  // copy carries the prognostic fields, the Adams-Bashforth history and
  // the step counter; the observables snapshot keeps a replayed step
  // from double-counting its first attempt's flops and CG iterations.
  State snapshot = guarded ? state_ : State{};
  PerfObservables snap_obs = stepper_->observables();
  int snap_step = 0;
  int consecutive_rollbacks = 0;

  for (int s = 0; s < steps; ++s) {
    if (guarded && cfg_.checkpoint_interval > 0 && s > snap_step &&
        (s - snap_step) >= cfg_.checkpoint_interval) {
      snapshot = state_;
      snap_obs = stepper_->observables();
      snap_step = s;
    }
    const std::int64_t before = comm_.ctx().accounting().retransmits;
    (void)step();
    ++rs.steps_run;
    if (!guarded) continue;

    // Collective rollback decision: the worst rank's retransmit count
    // this step, so every rank rolls back (or commits) together.
    const double worst = comm_.global_max(
        static_cast<double>(comm_.ctx().accounting().retransmits - before));
    if (worst <= static_cast<double>(cfg_.retry_budget)) {
      consecutive_rollbacks = 0;
      continue;
    }
    ++rs.rollbacks;
    if (++consecutive_rollbacks > cfg_.max_rollbacks) {
      throw std::runtime_error(
          "Model::run: rank " + std::to_string(comm_.ctx().rank()) + " gave up after " +
          std::to_string(consecutive_rollbacks) +
          " consecutive rollbacks at step " + std::to_string(s));
    }
    if (g_rollback_warn_limiter.admit()) {
      log_warn() << "fault: rank " << comm_.ctx().rank()
                 << " rolling back step " << s << " to checkpoint at step "
                 << snap_step << " (worst retransmits " << worst
                 << " > budget " << cfg_.retry_budget << ") at t="
                 << comm_.ctx().clock().now() << " us";
    }
    state_ = snapshot;
    stepper_->set_observables(snap_obs);
    s = snap_step - 1;  // ++s replays from the checkpointed step
  }
  return rs;
}

double Model::sum_weighted(const Array3D<double>& f, bool squared,
                           bool weight_ke) {
  double local = 0.0;
  for (int i = dec_.halo; i < dec_.halo + dec_.snx; ++i) {
    for (int j = dec_.halo; j < dec_.halo + dec_.sny; ++j) {
      for (int k = 0; k < cfg_.nz; ++k) {
        const auto si = static_cast<std::size_t>(i);
        const auto sj = static_cast<std::size_t>(j);
        const auto sk = static_cast<std::size_t>(k);
        const double hfac =
            weight_ke ? grid_.hFacW(si, sj, sk) : grid_.hFacC(si, sj, sk);
        if (hfac <= 0) continue;
        const double vol = grid_.rAc[sj] * grid_.dzf[sk] * hfac;
        const double x = f(si, sj, sk);
        local += (squared ? x * x : x) * vol;
      }
    }
  }
  return comm_.global_sum(local);
}

double Model::total_theta_volume() {
  return sum_weighted(state_.theta, false, false);
}
double Model::total_salt_volume() {
  return sum_weighted(state_.salt, false, false);
}

double Model::mean_theta() {
  double vol = 0.0;
  for (int j = dec_.halo; j < dec_.halo + dec_.sny; ++j) {
    for (int i = dec_.halo; i < dec_.halo + dec_.snx; ++i) {
      for (int k = 0; k < cfg_.nz; ++k) {
        const auto sj = static_cast<std::size_t>(j);
        const double h = grid_.hFacC(static_cast<std::size_t>(i), sj,
                                     static_cast<std::size_t>(k));
        if (h > 0) vol += grid_.rAc[sj] * grid_.dzf[static_cast<std::size_t>(k)] * h;
      }
    }
  }
  const double total_vol = comm_.global_sum(vol);
  return total_vol > 0 ? total_theta_volume() / total_vol : 0.0;
}

double Model::kinetic_energy() {
  const double uu = sum_weighted(state_.u, true, true);
  // v-face weighting approximated with hFacW as well (diagnostic only).
  const double vv = sum_weighted(state_.v, true, true);
  return 0.5 * cfg_.rho0 * (uu + vv);
}

double Model::max_abs_w() {
  double local = 0.0;
  for (int i = dec_.halo; i < dec_.halo + dec_.snx; ++i) {
    for (int j = dec_.halo; j < dec_.halo + dec_.sny; ++j) {
      for (int k = 0; k < cfg_.nz; ++k) {
        local = std::max(local,
                         std::abs(state_.w(static_cast<std::size_t>(i),
                                           static_cast<std::size_t>(j),
                                           static_cast<std::size_t>(k))));
      }
    }
  }
  return comm_.global_max(local);
}

double Model::max_cfl() {
  double local = 0.0;
  for (int i = dec_.halo; i < dec_.halo + dec_.snx; ++i) {
    for (int j = dec_.halo; j < dec_.halo + dec_.sny; ++j) {
      const auto sj = static_cast<std::size_t>(j);
      for (int k = 0; k < cfg_.nz; ++k) {
        const auto si = static_cast<std::size_t>(i);
        const auto sk = static_cast<std::size_t>(k);
        local = std::max(
            local, std::abs(state_.u(si, sj, sk)) * cfg_.dt / grid_.dxC[sj]);
        local = std::max(
            local, std::abs(state_.v(si, sj, sk)) * cfg_.dt / grid_.dyC);
        local = std::max(local, std::abs(state_.w(si, sj, sk)) * cfg_.dt /
                                    grid_.dzf[sk]);
      }
    }
  }
  return comm_.global_max(local);
}

double Model::max_surface_divergence() {
  double local = 0.0;
  for (int i = dec_.halo; i < dec_.halo + dec_.snx; ++i) {
    for (int j = dec_.halo; j < dec_.halo + dec_.sny; ++j) {
      double div = 0.0;
      bool wet = false;
      for (int k = 0; k < cfg_.nz; ++k) {
        if (grid_.hFacC(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                        static_cast<std::size_t>(k)) <= 0) {
          continue;
        }
        wet = true;
        div += kernels::column_flux_divergence(grid_, state_.u, state_.v, i,
                                               j, k);
      }
      if (wet) {
        local = std::max(
            local, std::abs(div) / grid_.rAc[static_cast<std::size_t>(j)]);
      }
    }
  }
  return comm_.global_max(local);
}

double Model::load_imbalance() {
  const auto mine = static_cast<double>(grid_.wet_cells());
  const double total = comm_.global_sum(mine);
  const double busiest = comm_.global_max(mine);
  const double mean = total / comm_.group_size();
  return mean > 0 ? busiest / mean : 1.0;
}

Array2D<double> Model::gather2d(const Array2D<double>& local) {
  auto& ctx = comm_.ctx();
  const auto bytes = static_cast<std::int64_t>(
      static_cast<std::size_t>(dec_.snx * dec_.sny) * sizeof(double));
  const int root_abs = ctx.rank() - comm_.group_rank();  // group rank 0

  if (comm_.group_rank() != 0) {
    std::vector<double> payload;
    payload.reserve(static_cast<std::size_t>(dec_.snx * dec_.sny));
    for (int i = 0; i < dec_.snx; ++i) {
      for (int j = 0; j < dec_.sny; ++j) {
        payload.push_back(local(static_cast<std::size_t>(i),
                                static_cast<std::size_t>(j)));
      }
    }
    const Microseconds stamp =
        ctx.clock().now() + ctx.net().transfer_time(bytes);
    // lint:allow(raw-send): diagnostic gather outside the fault window
    // (fault plans target the step loop, not field collection); routing
    // it through reliable would shift goldens for zero model-state risk.
    ctx.send_raw(root_abs, kTagGather, std::move(payload), stamp);
    ctx.clock().advance(ctx.net().transfer_overhead());
    return {};
  }

  Array2D<double> global(static_cast<std::size_t>(cfg_.nx),
                         static_cast<std::size_t>(cfg_.ny), 0.0);
  // Own tile.
  for (int i = 0; i < dec_.snx; ++i) {
    for (int j = 0; j < dec_.sny; ++j) {
      global(static_cast<std::size_t>(dec_.i0 + i),
             static_cast<std::size_t>(dec_.j0 + j)) =
          local(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
    }
  }
  for (int gr = 1; gr < comm_.group_size(); ++gr) {
    const cluster::Message m = ctx.recv_raw(root_abs + gr, kTagGather);
    ctx.clock().advance_to(m.stamp_us);
    const Decomp dtheir(cfg_, gr);
    std::size_t n = 0;
    for (int i = 0; i < dtheir.snx; ++i) {
      for (int j = 0; j < dtheir.sny; ++j) {
        global(static_cast<std::size_t>(dtheir.i0 + i),
               static_cast<std::size_t>(dtheir.j0 + j)) = m.data[n++];
      }
    }
  }
  return global;
}

Array2D<double> Model::gather_theta(int k) {
  Array2D<double> local(static_cast<std::size_t>(dec_.snx),
                        static_cast<std::size_t>(dec_.sny), 0.0);
  for (int i = 0; i < dec_.snx; ++i) {
    for (int j = 0; j < dec_.sny; ++j) {
      local(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          state_.theta(static_cast<std::size_t>(i + dec_.halo),
                       static_cast<std::size_t>(j + dec_.halo),
                       static_cast<std::size_t>(k));
    }
  }
  return gather2d(local);
}

Array2D<double> Model::gather_speed(int k) {
  Array2D<double> local(static_cast<std::size_t>(dec_.snx),
                        static_cast<std::size_t>(dec_.sny), 0.0);
  for (int i = 0; i < dec_.snx; ++i) {
    for (int j = 0; j < dec_.sny; ++j) {
      const auto si = static_cast<std::size_t>(i + dec_.halo);
      const auto sj = static_cast<std::size_t>(j + dec_.halo);
      const auto sk = static_cast<std::size_t>(k);
      const double uc = 0.5 * (state_.u(si, sj, sk) + state_.u(si + 1, sj, sk));
      const double vc = 0.5 * (state_.v(si, sj, sk) + state_.v(si, sj + 1, sk));
      local(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          std::sqrt(uc * uc + vc * vc);
    }
  }
  return gather2d(local);
}

namespace {
// "HYADES03": version 3 adds the self-describing header -- payload byte
// count and a CRC-32 (the same arctic polynomial the fabric uses end to
// end) -- so a truncated or bit-flipped file fails fast at load instead
// of silently seeding a diverged restart.
constexpr std::uint64_t kCheckpointMagic = 0x4859414445533033ull;

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

std::string hex_u64(std::uint64_t v) {
  std::ostringstream ss;
  ss << "0x" << std::hex << v;
  return ss.str();
}

struct ConfigWord {
  const char* name;
  std::uint64_t value;
};

std::array<ConfigWord, 7> config_words(const ModelConfig& cfg) {
  return {{{"nx", static_cast<std::uint64_t>(cfg.nx)},
           {"ny", static_cast<std::uint64_t>(cfg.ny)},
           {"nz", static_cast<std::uint64_t>(cfg.nz)},
           {"px", static_cast<std::uint64_t>(cfg.px)},
           {"py", static_cast<std::uint64_t>(cfg.py)},
           {"halo", static_cast<std::uint64_t>(cfg.halo)},
           {"isomorph",
            static_cast<std::uint64_t>(cfg.isomorph == Isomorph::kOcean ? 0
                                                                        : 1)}}};
}
}  // namespace

std::string Model::checkpoint_path(const std::string& prefix,
                                   int group_rank) {
  return prefix + ".rank" + std::to_string(group_rank);
}

long Model::checkpoint_step(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("checkpoint_step: cannot open " + path);
  }
  const std::uint64_t magic = read_u64(is);
  if (!is || magic != kCheckpointMagic) {
    throw std::runtime_error("checkpoint_step: bad magic in " + path +
                             " (got " + hex_u64(magic) + ", want HYADES03 " +
                             hex_u64(kCheckpointMagic) + ")");
  }
  for (int i = 0; i < 7; ++i) (void)read_u64(is);  // config words
  const std::uint64_t step = read_u64(is);
  if (!is) {
    throw std::runtime_error("checkpoint_step: truncated header in " + path);
  }
  return static_cast<long>(step);
}

void Model::save_checkpoint(const std::string& prefix) const {
  const std::string path = checkpoint_path(prefix, comm_.group_rank());
  // Serialize the state payload in memory first, so the header can carry
  // its byte count and CRC-32.
  std::vector<std::uint8_t> payload;
  const auto append = [&payload](const double* p, std::size_t n) {
    const auto* b = reinterpret_cast<const std::uint8_t*>(p);
    payload.insert(payload.end(), b, b + n * sizeof(double));
  };
  for (const Array3D<double>* f :
       {&state_.u, &state_.v, &state_.w, &state_.theta, &state_.salt,
        &state_.gu_nm1, &state_.gv_nm1, &state_.gt_nm1, &state_.gs_nm1,
        &state_.gw_nm1, &state_.phi_nh}) {
    append(f->data(), f->size());
  }
  append(state_.ps.data(), state_.ps.size());
  const std::uint32_t crc = arctic::crc32(payload);

  // Atomic publish: write the whole file under a temporary name, then
  // rename onto the real path.  A crash mid-write leaves the previous
  // complete checkpoint in place, never a half-written file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw std::runtime_error("save_checkpoint: cannot open " + tmp);
    write_u64(os, kCheckpointMagic);
    for (const ConfigWord& w : config_words(cfg_)) write_u64(os, w.value);
    write_u64(os, static_cast<std::uint64_t>(state_.step));
    write_u64(os, static_cast<std::uint64_t>(payload.size()));
    write_u64(os, static_cast<std::uint64_t>(crc));
    os.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
    os.close();
    if (!os) throw std::runtime_error("save_checkpoint: write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("save_checkpoint: cannot rename " + tmp +
                             " onto " + path);
  }
}

void Model::load_checkpoint(const std::string& prefix) {
  const std::string path = checkpoint_path(prefix, comm_.group_rank());
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_checkpoint: cannot open " + path);
  const std::uint64_t magic = read_u64(is);
  if (!is || magic != kCheckpointMagic) {
    throw std::runtime_error("load_checkpoint: bad magic in " + path +
                             " (got " + hex_u64(magic) + ", want HYADES03 " +
                             hex_u64(kCheckpointMagic) + ")");
  }
  for (const ConfigWord& w : config_words(cfg_)) {
    const std::uint64_t got = read_u64(is);
    if (!is) {
      throw std::runtime_error("load_checkpoint: truncated header in " + path);
    }
    if (got != w.value) {
      throw std::runtime_error(
          "load_checkpoint: configuration mismatch in " + path + ": " +
          w.name + " is " + std::to_string(got) + " in the file, model has " +
          std::to_string(w.value));
    }
  }
  const std::uint64_t step = read_u64(is);
  const std::uint64_t payload_bytes = read_u64(is);
  const std::uint64_t crc_stored = read_u64(is);
  if (!is) {
    throw std::runtime_error("load_checkpoint: truncated header in " + path);
  }

  std::size_t expect_bytes = 0;
  for (const Array3D<double>* f :
       {&state_.u, &state_.v, &state_.w, &state_.theta, &state_.salt,
        &state_.gu_nm1, &state_.gv_nm1, &state_.gt_nm1, &state_.gs_nm1,
        &state_.gw_nm1, &state_.phi_nh}) {
    expect_bytes += f->size() * sizeof(double);
  }
  expect_bytes += state_.ps.size() * sizeof(double);
  if (payload_bytes != expect_bytes) {
    throw std::runtime_error(
        "load_checkpoint: payload size mismatch in " + path + ": header says " +
        std::to_string(payload_bytes) + " bytes, model state needs " +
        std::to_string(expect_bytes));
  }

  std::vector<std::uint8_t> payload(payload_bytes);
  is.read(reinterpret_cast<char*>(payload.data()),
          static_cast<std::streamsize>(payload.size()));
  if (!is || static_cast<std::uint64_t>(is.gcount()) != payload_bytes) {
    throw std::runtime_error(
        "load_checkpoint: truncated " + path + " (payload has " +
        std::to_string(is.gcount() > 0 ? is.gcount() : 0) + " of " +
        std::to_string(payload_bytes) + " bytes)");
  }
  const std::uint32_t crc = arctic::crc32(payload);
  if (crc != static_cast<std::uint32_t>(crc_stored)) {
    throw std::runtime_error(
        "load_checkpoint: CRC mismatch in " + path + " (stored " +
        hex_u64(crc_stored) + ", computed " + hex_u64(crc) +
        "): the checkpoint is corrupt");
  }

  // Header and payload verified; only now touch the model state.
  state_.step = static_cast<long>(step);
  std::size_t off = 0;
  const auto extract = [&payload, &off](double* p, std::size_t n) {
    std::memcpy(p, payload.data() + off, n * sizeof(double));
    off += n * sizeof(double);
  };
  for (Array3D<double>* f :
       {&state_.u, &state_.v, &state_.w, &state_.theta, &state_.salt,
        &state_.gu_nm1, &state_.gv_nm1, &state_.gt_nm1, &state_.gs_nm1,
        &state_.gw_nm1, &state_.phi_nh}) {
    extract(f->data(), f->size());
  }
  extract(state_.ps.data(), state_.ps.size());
}

Array2D<double> Model::gather_ps() {
  Array2D<double> local(static_cast<std::size_t>(dec_.snx),
                        static_cast<std::size_t>(dec_.sny), 0.0);
  for (int i = 0; i < dec_.snx; ++i) {
    for (int j = 0; j < dec_.sny; ++j) {
      local(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          state_.ps(static_cast<std::size_t>(i + dec_.halo),
                    static_cast<std::size_t>(j + dec_.halo));
    }
  }
  return gather2d(local);
}

}  // namespace hyades::gcm
