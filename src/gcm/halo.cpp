#include "gcm/halo.hpp"

#include <stdexcept>

namespace hyades::gcm {

namespace {

// Generic packer over a rectangular (i, j) window and nz levels.
template <typename FieldT>
void pack(const FieldT& f, int i0, int i1, int j0, int j1, int nz,
          std::vector<double>& out) {
  out.clear();
  out.reserve(static_cast<std::size_t>((i1 - i0) * (j1 - j0) * nz));
  for (int i = i0; i < i1; ++i) {
    for (int j = j0; j < j1; ++j) {
      for (int k = 0; k < nz; ++k) {
        out.push_back(f(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                        static_cast<std::size_t>(k)));
      }
    }
  }
}

template <typename FieldT>
void unpack(FieldT& f, int i0, int i1, int j0, int j1, int nz,
            const std::vector<double>& in) {
  std::size_t n = 0;
  for (int i = i0; i < i1; ++i) {
    for (int j = j0; j < j1; ++j) {
      for (int k = 0; k < nz; ++k) {
        f(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
          static_cast<std::size_t>(k)) = in[n++];
      }
    }
  }
}

// Array2D adaptor so the same pack/unpack handles both ranks.
struct Flat2D {
  Array2D<double>& a;
  double operator()(std::size_t i, std::size_t j, std::size_t) const {
    return a(i, j);
  }
  double& operator()(std::size_t i, std::size_t j, std::size_t) {
    return a(i, j);
  }
};
struct ConstFlat2D {
  const Array2D<double>& a;
  double operator()(std::size_t i, std::size_t j, std::size_t) const {
    return a(i, j);
  }
};

template <typename ConstF, typename MutF>
void exchange_impl(comm::Comm& comm, const Decomp& dec, const ConstF& cf,
                   MutF& mf, int nz, int width) {
  if (width < 1 || width > dec.halo) {
    throw std::invalid_argument("exchange: width must be in [1, halo]");
  }
  const int h = dec.halo;
  const int ie = h + dec.snx;  // one past the interior in x
  const int je = h + dec.sny;

  using comm::kEast;
  using comm::kNorth;
  using comm::kSouth;
  using comm::kWest;

  // Stage 1: east/west strips over interior rows.
  {
    std::array<int, comm::kDirections> nb{dec.neighbors[kEast],
                                          dec.neighbors[kWest], -1, -1};
    comm::Comm::Buffers buf;
    if (nb[kEast] >= 0) {
      pack(cf, ie - width, ie, h, je, nz, buf.out[kEast]);
      buf.in[kEast].resize(static_cast<std::size_t>(width * dec.sny * nz));
    }
    if (nb[kWest] >= 0) {
      pack(cf, h, h + width, h, je, nz, buf.out[kWest]);
      buf.in[kWest].resize(static_cast<std::size_t>(width * dec.sny * nz));
    }
    comm.exchange(nb, buf);
    if (nb[kEast] >= 0) unpack(mf, ie, ie + width, h, je, nz, buf.in[kEast]);
    if (nb[kWest] >= 0) unpack(mf, h - width, h, h, je, nz, buf.in[kWest]);
  }

  // Stage 2: north/south strips over the x-extended rows, so corners are
  // carried along.
  {
    const int xi0 = h - width;
    const int xi1 = ie + width;
    std::array<int, comm::kDirections> nb{-1, -1, dec.neighbors[kNorth],
                                          dec.neighbors[kSouth]};
    comm::Comm::Buffers buf;
    const auto strip =
        static_cast<std::size_t>((xi1 - xi0) * width * nz);
    if (nb[kNorth] >= 0) {
      pack(cf, xi0, xi1, je - width, je, nz, buf.out[kNorth]);
      buf.in[kNorth].resize(strip);
    }
    if (nb[kSouth] >= 0) {
      pack(cf, xi0, xi1, h, h + width, nz, buf.out[kSouth]);
      buf.in[kSouth].resize(strip);
    }
    comm.exchange(nb, buf);
    if (nb[kNorth] >= 0) {
      unpack(mf, xi0, xi1, je, je + width, nz, buf.in[kNorth]);
    }
    if (nb[kSouth] >= 0) {
      unpack(mf, xi0, xi1, h - width, h, nz, buf.in[kSouth]);
    }
  }
}

}  // namespace

void exchange3d(comm::Comm& comm, const Decomp& dec, Array3D<double>& f,
                int width) {
  exchange_impl(comm, dec, f, f, static_cast<int>(f.nz()), width);
}

void exchange2d(comm::Comm& comm, const Decomp& dec, Array2D<double>& f,
                int width) {
  const ConstFlat2D cf{f};
  Flat2D mf{f};
  exchange_impl(comm, dec, cf, mf, 1, width);
}

HaloExchange3::HaloExchange3(comm::Comm& comm, const Decomp& dec,
                             Array3D<double>& f, int width)
    : comm_(&comm), dec_(&dec), f_(&f), width_(width) {
  if (width < 1 || width > dec.halo) {
    throw std::invalid_argument("HaloExchange3: width must be in [1, halo]");
  }
}

void HaloExchange3::start() {
  if (stage_ != 0) throw std::logic_error("HaloExchange3: start() twice");
  const Decomp& dec = *dec_;
  const int h = dec.halo;
  const int ie = h + dec.snx;
  const int je = h + dec.sny;
  const int nz = static_cast<int>(f_->nz());
  using comm::kEast;
  using comm::kWest;

  const std::array<int, comm::kDirections> nb{dec.neighbors[kEast],
                                              dec.neighbors[kWest], -1, -1};
  if (nb[kEast] >= 0) {
    pack(*f_, ie - width_, ie, h, je, nz, buf_.out[kEast]);
    buf_.in[kEast].resize(static_cast<std::size_t>(width_ * dec.sny * nz));
  }
  if (nb[kWest] >= 0) {
    pack(*f_, h, h + width_, h, je, nz, buf_.out[kWest]);
    buf_.in[kWest].resize(static_cast<std::size_t>(width_ * dec.sny * nz));
  }
  h_ = comm_->exchange_start(nb, buf_);
  stage_ = 1;
}

void HaloExchange3::progress() {
  if (stage_ != 1) throw std::logic_error("HaloExchange3: progress() order");
  const Decomp& dec = *dec_;
  const int h = dec.halo;
  const int ie = h + dec.snx;
  const int je = h + dec.sny;
  const int nz = static_cast<int>(f_->nz());
  using comm::kEast;
  using comm::kNorth;
  using comm::kSouth;
  using comm::kWest;

  comm_->exchange_finish(h_);
  if (dec.neighbors[kEast] >= 0) {
    unpack(*f_, ie, ie + width_, h, je, nz, buf_.in[kEast]);
  }
  if (dec.neighbors[kWest] >= 0) {
    unpack(*f_, h - width_, h, h, je, nz, buf_.in[kWest]);
  }

  const int xi0 = h - width_;
  const int xi1 = ie + width_;
  const std::array<int, comm::kDirections> nb{-1, -1, dec.neighbors[kNorth],
                                              dec.neighbors[kSouth]};
  buf_ = comm::Buffers{};
  const auto strip = static_cast<std::size_t>((xi1 - xi0) * width_ * nz);
  if (nb[kNorth] >= 0) {
    pack(*f_, xi0, xi1, je - width_, je, nz, buf_.out[kNorth]);
    buf_.in[kNorth].resize(strip);
  }
  if (nb[kSouth] >= 0) {
    pack(*f_, xi0, xi1, h, h + width_, nz, buf_.out[kSouth]);
    buf_.in[kSouth].resize(strip);
  }
  h_ = comm_->exchange_start(nb, buf_);
  stage_ = 2;
}

void HaloExchange3::finish() {
  if (stage_ != 2) throw std::logic_error("HaloExchange3: finish() order");
  const Decomp& dec = *dec_;
  const int h = dec.halo;
  const int ie = h + dec.snx;
  const int je = h + dec.sny;
  const int nz = static_cast<int>(f_->nz());
  using comm::kNorth;
  using comm::kSouth;

  comm_->exchange_finish(h_);
  const int xi0 = h - width_;
  const int xi1 = ie + width_;
  if (dec.neighbors[kNorth] >= 0) {
    unpack(*f_, xi0, xi1, je, je + width_, nz, buf_.in[kNorth]);
  }
  if (dec.neighbors[kSouth] >= 0) {
    unpack(*f_, xi0, xi1, h - width_, h, nz, buf_.in[kSouth]);
  }
  stage_ = 3;
}

}  // namespace hyades::gcm
