#include "gcm/coupler.hpp"

#include <cmath>
#include <stdexcept>

#include "gcm/halo.hpp"

namespace hyades::gcm {

namespace {
constexpr int kTagSst = 4000;
constexpr int kTagFlux = 4001;
}  // namespace

Coupler::Coupler(cluster::RankContext& ctx, int ocean_base, int atmos_base,
                 int group_n)
    : ctx_(ctx),
      ocean_base_(ocean_base),
      atmos_base_(atmos_base),
      group_n_(group_n) {
  const int r = ctx.rank();
  const bool in_ocean = r >= ocean_base_ && r < ocean_base_ + group_n_;
  const bool in_atmos = r >= atmos_base_ && r < atmos_base_ + group_n_;
  if (in_ocean == in_atmos) {
    throw std::invalid_argument("Coupler: rank must be in exactly one group");
  }
}

bool Coupler::is_ocean() const {
  return ctx_.rank() >= ocean_base_ && ctx_.rank() < ocean_base_ + group_n_;
}

void Coupler::exchange_boundary(Model& model, SurfaceForcing& forcing) {
  const Decomp& dec = model.decomp();
  const int h = dec.halo;
  const auto ex = static_cast<std::size_t>(dec.ext_x());
  const auto ey = static_cast<std::size_t>(dec.ext_y());
  const std::size_t n =
      static_cast<std::size_t>(dec.snx) * static_cast<std::size_t>(dec.sny);
  const auto bytes = static_cast<std::int64_t>(n * sizeof(double));
  const Microseconds xfer = ctx_.net().transfer_time(bytes);
  const State& s = model.state();
  forcing.active = true;

  // Helper lambdas: the wire format is the flat interior (i-major);
  // receivers scatter into extended arrays and halo-exchange one ring so
  // the PS overcomputation window sees consistent forcing.
  auto pack_interior = [&](auto&& get) {
    std::vector<double> out;
    out.reserve(n);
    for (int i = 0; i < dec.snx; ++i) {
      for (int j = 0; j < dec.sny; ++j) {
        out.push_back(get(static_cast<std::size_t>(i + h),
                          static_cast<std::size_t>(j + h)));
      }
    }
    return out;
  };
  auto unpack_interior = [&](const std::vector<double>& in, std::size_t base,
                             Array2D<double>& dst) {
    dst = Array2D<double>(ex, ey, 0.0);
    std::size_t p = base;
    for (int i = 0; i < dec.snx; ++i) {
      for (int j = 0; j < dec.sny; ++j) {
        dst(static_cast<std::size_t>(i + h), static_cast<std::size_t>(j + h)) =
            in[p++];
      }
    }
  };

  if (is_ocean()) {
    const int peer = ctx_.rank() - ocean_base_ + atmos_base_;
    // Send SST (surface theta over the interior).
    // lint:allow(raw-send): coupler exchange predates the reliability
    // layer and is pinned by coupled-run goldens; new model traffic must
    // use comm/reliable (see DESIGN.md "Static analysis").
    ctx_.send_raw(peer, kTagSst,
                  pack_interior([&](std::size_t i, std::size_t j) {
                    return s.theta(i, j, 0);
                  }),
                  ctx_.clock().now() + xfer);

    // Receive (taux, tauy, qnet) concatenated.
    const cluster::Message m = ctx_.recv_raw(peer, kTagFlux);
    ctx_.clock().advance_to(m.stamp_us);
    if (m.data.size() != 3 * n) {
      throw std::logic_error("Coupler: flux message size mismatch");
    }
    unpack_interior(m.data, 0, forcing.taux);
    unpack_interior(m.data, n, forcing.tauy);
    unpack_interior(m.data, 2 * n, forcing.qnet);
    exchange2d(model.comm(), dec, forcing.taux, 1);
    exchange2d(model.comm(), dec, forcing.tauy, 1);
    exchange2d(model.comm(), dec, forcing.qnet, 1);
    return;
  }

  // ---- atmosphere side --------------------------------------------------
  const int peer = ctx_.rank() - atmos_base_ + ocean_base_;
  const cluster::Message m = ctx_.recv_raw(peer, kTagSst);
  ctx_.clock().advance_to(m.stamp_us);
  if (m.data.size() != n) {
    throw std::logic_error("Coupler: SST message size mismatch");
  }
  unpack_interior(m.data, 0, forcing.sst);
  exchange2d(model.comm(), dec, forcing.sst, 1);

  // Bulk fluxes from the lowest atmospheric level.  The atmosphere's
  // theta is in K, the ocean's in degC; the bulk heat formula bridges
  // the two scales.
  const int kb = model.config().nz - 1;
  Array2D<double> taux(ex, ey, 0.0), tauy(ex, ey, 0.0), qnet(ex, ey, 0.0);
  for (int i = h; i < h + dec.snx; ++i) {
    for (int j = h; j < h + dec.sny; ++j) {
      const auto si = static_cast<std::size_t>(i);
      const auto sj = static_cast<std::size_t>(j);
      const auto sk = static_cast<std::size_t>(kb);
      const double uc = 0.5 * (s.u(si, sj, sk) + s.u(si + 1, sj, sk));
      const double vc = 0.5 * (s.v(si, sj, sk) + s.v(si, sj + 1, sk));
      const double speed = std::sqrt(uc * uc + vc * vc);
      taux(si, sj) = kAirDensity * kDragCoeff * speed * uc;
      tauy(si, sj) = kAirDensity * kDragCoeff * speed * vc;
      // Heat into the ocean when the air above is warmer than the SST.
      qnet(si, sj) = kHeatCoeff * ((s.theta(si, sj, sk) - 273.15) -
                                   forcing.sst(si, sj));
    }
  }
  std::vector<double> flux;
  flux.reserve(3 * n);
  auto append = [&](const Array2D<double>& f) {
    for (int i = 0; i < dec.snx; ++i) {
      for (int j = 0; j < dec.sny; ++j) {
        flux.push_back(f(static_cast<std::size_t>(i + h),
                         static_cast<std::size_t>(j + h)));
      }
    }
  };
  append(taux);
  append(tauy);
  append(qnet);
  // lint:allow(raw-send): paired with the SST leg above -- same golden
  // pinning; convert both sides together or not at all.
  ctx_.send_raw(peer, kTagFlux, std::move(flux),
                ctx_.clock().now() + 3.0 * xfer);
}

}  // namespace hyades::gcm
