// Jacobi-preconditioned conjugate gradients with the paper's per-
// iteration communication structure: one 2-D halo-1 exchange (on the
// search direction) and two global sums (Section 4: "the iterative
// solver requires an exchange to be applied to two fields at every
// solver iteration ... Two global sum operations are required at every
// solver iteration").
//
// All dot products are reduced through Comm::global_sum, so every rank
// sees bitwise-identical convergence decisions.
#pragma once

#include <stdexcept>
#include <string>

#include "comm/comm.hpp"
#include "gcm/elliptic.hpp"

namespace hyades::gcm {

// Thrown when a residual norm turns non-finite mid-solve: NaNs in the
// state (e.g. garbled data that somehow slipped past the CRC/reliability
// layer) or a genuinely diverging solve.  Aborting with a diagnostic
// beats silently iterating on garbage until max_iter.  Collective-safe:
// the residual comes from a global sum, so every rank throws together.
struct SolverDivergence : std::runtime_error {
  SolverDivergence(const char* solver, int at_iteration, double rr)
      : std::runtime_error(std::string(solver) +
                           ": non-finite residual at iteration " +
                           std::to_string(at_iteration) + " (<r,r> = " +
                           std::to_string(rr) + ")"),
        iteration(at_iteration),
        residual_sq(rr) {}
  int iteration;
  double residual_sq;
};

struct CgResult {
  int iterations = 0;
  double residual = 0.0;       // sqrt(<r, M^-1 r>) at exit
  double rhs_norm = 0.0;       // initial preconditioned norm
  bool converged = false;
  double flops = 0.0;          // local flops spent in the solve
};

enum class CgPrecond {
  kZonalLine,  // tile-local tridiagonal-in-x (production default)
  kJacobi,     // diagonal scaling (kept for the solver ablation)
};

// Solves L p = b in-place (p holds the initial guess, typically the
// previous step's pressure).  b must satisfy the compatibility condition
// (its global sum is ~0); the constant null-space component of p is left
// untouched by CG.
CgResult cg_solve(comm::Comm& comm, const Decomp& dec,
                  const EllipticOperator& op, const Array2D<double>& b,
                  Array2D<double>& p, double tol, int max_iter,
                  CgPrecond precond = CgPrecond::kZonalLine);

}  // namespace hyades::gcm
