#include "gcm/cg.hpp"

#include <cmath>

#include "cluster/trace.hpp"
#include "gcm/halo.hpp"

namespace hyades::gcm {

namespace {
// Interior dot product in a fixed (i, j) order so the local partial sum
// is deterministic.
double dot_interior(const Decomp& dec, const Array2D<double>& a,
                    const Array2D<double>& b) {
  double s = 0.0;
  for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
    for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
      s += a(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) *
           b(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
    }
  }
  return s;
}

void axpy_interior(const Decomp& dec, double alpha, const Array2D<double>& x,
                   Array2D<double>& y) {
  for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
    for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
      y(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) +=
          alpha * x(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
    }
  }
}

void xpay_interior(const Decomp& dec, const Array2D<double>& x, double beta,
                   Array2D<double>& y) {
  for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
    for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
      auto& yy = y(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
      yy = x(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) +
           beta * yy;
    }
  }
}
}  // namespace

CgResult cg_solve(comm::Comm& comm, const Decomp& dec,
                  const EllipticOperator& op, const Array2D<double>& b,
                  Array2D<double>& p, double tol, int max_iter,
                  CgPrecond precond) {
  const auto apply_precond = [&](const Array2D<double>& rr,
                                 Array2D<double>& zz) {
    return precond == CgPrecond::kJacobi ? op.precondition_jacobi(rr, zz)
                                         : op.precondition(rr, zz);
  };
  CgResult res;
  const auto ex = static_cast<std::size_t>(dec.ext_x());
  const auto ey = static_cast<std::size_t>(dec.ext_y());
  const double cells = static_cast<double>(dec.snx) * dec.sny;

  Array2D<double> r(ex, ey, 0.0), z(ex, ey, 0.0), d(ex, ey, 0.0),
      q(ex, ey, 0.0);

  // r = b - L p  (the initial guess usually carries the previous step's
  // pressure, which shortens the solve considerably).
  exchange2d(comm, dec, p, 1);
  res.flops += op.apply(p, q);
  for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
    for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
      r(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          b(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) -
          q(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
    }
  }
  res.flops += cells;

  res.flops += apply_precond(r, z);
  d = z;
  double rz = comm.global_sum(dot_interior(dec, r, z));
  res.flops += 2.0 * cells;
  res.rhs_norm = std::sqrt(std::max(
      comm.global_sum(dot_interior(dec, b, b)), 0.0));
  const double target =
      tol * std::max(res.rhs_norm, 1e-300);

  double rr = comm.global_sum(dot_interior(dec, r, r));
  res.flops += 2.0 * cells;
  if (!std::isfinite(rr) || !std::isfinite(rz)) {
    throw SolverDivergence("cg_solve", 0, rr);
  }
  if (std::sqrt(rr) <= target) {
    res.converged = true;
    res.residual = std::sqrt(rr);
    return res;
  }

  // Per-iteration solver spans: each covers the iteration's virtual-time
  // interval (dominated by its exchange + two global sums; the arithmetic
  // is flop-counted here but clock-charged at the end of the DS) with the
  // iteration's flops as counter payload.  Recording never touches the
  // clock, so tracing leaves solver timing bit-identical.
  cluster::Tracer* tracer = comm.ctx().tracer();
  const auto record_iter = [&](Microseconds t_it, double fl0, int it) {
    if (tracer == nullptr) return;
    cluster::SpanCounters ctr;
    ctr.flops = res.flops - fl0;
    ctr.cg_iterations = 1;
    tracer->record("ds_cg_iter", cluster::SpanCat::kSolver, t_it,
                   comm.ctx().clock().now(), ctr);
    (void)it;
  };

  for (int it = 0; it < max_iter; ++it) {
    const Microseconds t_it = comm.ctx().clock().now();
    const double fl_it0 = res.flops;
    // The paper's per-iteration communication: one exchange...
    exchange2d(comm, dec, d, 1);
    res.flops += op.apply(d, q);
    // ...and two global sums.
    const double dq = comm.global_sum(dot_interior(dec, d, q));
    res.flops += 2.0 * cells;
    if (dq <= 0.0) break;  // L is SPD on the wet subspace; dq==0 => done
    const double alpha = rz / dq;
    axpy_interior(dec, alpha, d, p);
    axpy_interior(dec, -alpha, q, r);
    res.flops += 4.0 * cells;

    res.flops += apply_precond(r, z);
    // The paper's solver applies the exchange to *two* fields per
    // iteration (Eq. 9); the second refreshes the preconditioned
    // residual's halo, which stencil preconditioners (and the original
    // implementation) require.
    exchange2d(comm, dec, z, 1);
    double rz_new, rr_new;
    {
      // Fused into one butterfly payload; still costed (and counted) as
      // the paper's two global sums.
      std::vector<double> sums{dot_interior(dec, r, z),
                               dot_interior(dec, r, r)};
      res.flops += 4.0 * cells;
      comm.global_sum(sums);
      rz_new = sums[0];
      rr_new = sums[1];
    }
    if (!std::isfinite(rr_new) || !std::isfinite(rz_new)) {
      throw SolverDivergence("cg_solve", it + 1, rr_new);
    }
    res.iterations = it + 1;
    if (std::sqrt(rr_new) <= target) {
      res.converged = true;
      res.residual = std::sqrt(rr_new);
      record_iter(t_it, fl_it0, it);
      return res;
    }
    const double beta = rz_new / rz;
    rz = rz_new;
    xpay_interior(dec, z, beta, d);
    res.flops += 2.0 * cells;
    res.residual = std::sqrt(rr_new);
    record_iter(t_it, fl_it0, it);
  }
  return res;
}

}  // namespace hyades::gcm
