#include "gcm/physics.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "gcm/eos.hpp"

namespace hyades::gcm {

namespace {
constexpr double kSecondsPerDay = 86400.0;

inline double at3(const Array3D<double>& f, int i, int j, int k) {
  return f(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
           static_cast<std::size_t>(k));
}
inline double& at3(Array3D<double>& f, int i, int j, int k) {
  return f(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
           static_cast<std::size_t>(k));
}
}  // namespace

double atmos_teq(const ModelConfig& cfg, double lat, double depth_from_top) {
  // Potential temperature increases with height (statically stable) and
  // has a strong equator-to-pole gradient near the surface -- a
  // Held-Suarez-flavoured profile in height coordinates.
  const double sigma = depth_from_top / cfg.total_depth;  // 0 top .. 1 sfc
  const double s2 = std::sin(lat) * std::sin(lat);
  return cfg.theta0 + 30.0 * (1.0 - sigma) - 45.0 * s2 * sigma;
}

double ocean_wind_stress(const ModelConfig& cfg, double lat) {
  // Easterly trades / mid-latitude westerlies bands.
  const double phi = lat / (cfg.lat_extent_deg * M_PI / 180.0);  // -1..1
  return cfg.wind_tau0 * (-std::cos(3.0 * M_PI * phi / 2.0));
}

double ocean_sst_target(const ModelConfig& cfg, double lat) {
  const double phi = lat / (cfg.lat_extent_deg * M_PI / 180.0);
  return cfg.theta0 + 12.0 * (std::cos(M_PI * phi / 1.2) - 0.2);
}

double apply_physics(const ModelConfig& cfg, const TileGrid& grid,
                     const Decomp& dec, State& s,
                     const SurfaceForcing& forcing, const kernels::Range& r) {
  if (!cfg.enable_forcing) return 0.0;
  (void)dec;
  double flops = 0;
  const int nz = cfg.nz;

  if (cfg.isomorph == Isomorph::kAtmosphere) {
    const double inv_tau_rad = 1.0 / (cfg.rad_tau_days * kSecondsPerDay);
    const double inv_tau_fric = 1.0 / (cfg.fric_tau_days * kSecondsPerDay);
    for (int i = r.i0; i < r.i1; ++i) {
      for (int j = r.j0; j < r.j1; ++j) {
        const double lat = grid.latC[static_cast<std::size_t>(j)];
        for (int k = 0; k < nz; ++k) {
          if (grid.hFacC(static_cast<std::size_t>(i),
                         static_cast<std::size_t>(j),
                         static_cast<std::size_t>(k)) <= 0) {
            continue;
          }
          const double teq =
              atmos_teq(cfg, lat, grid.zC[static_cast<std::size_t>(k)]);
          at3(s.gt, i, j, k) += (teq - at3(s.theta, i, j, k)) * inv_tau_rad;
          flops += 10.0;
          // Boundary-layer Rayleigh friction in the two lowest levels.
          if (k >= nz - 2) {
            at3(s.gu, i, j, k) -= at3(s.u, i, j, k) * inv_tau_fric;
            at3(s.gv, i, j, k) -= at3(s.v, i, j, k) * inv_tau_fric;
            flops += 4.0;
          }
        }
        // (physics package continues below: radiation + moisture are
        // applied by the dedicated routines called at the end of
        // apply_physics)
        // Bulk surface heat flux from the coupler's SST (bottom level).
        // The SST field is in the ocean's units (degC); the atmosphere
        // carries potential temperature in K.
        if (forcing.active && !forcing.sst.empty()) {
          const int k = nz - 1;
          if (grid.hFacC(static_cast<std::size_t>(i),
                         static_cast<std::size_t>(j),
                         static_cast<std::size_t>(k)) > 0) {
            const double sst_k = forcing.sst(static_cast<std::size_t>(i),
                                             static_cast<std::size_t>(j)) +
                                 273.15;
            const double coef =
                1.0 / (5.0 * kSecondsPerDay);  // fast boundary-layer coupling
            at3(s.gt, i, j, k) += (sst_k - at3(s.theta, i, j, k)) * coef;
            flops += 4.0;
          }
        }
      }
    }
    flops += gray_radiation(cfg, grid, s, r);
    flops += moisture_cycle(cfg, grid, s, forcing, r);
    return flops;
  }

  // ---- ocean ------------------------------------------------------------
  (void)dec;
  const double inv_tau_restore = 1.0 / (cfg.t_restore_days * kSecondsPerDay);
  const double dz0 = grid.dzf[0];
  const bool coupled = forcing.active && !forcing.taux.empty();
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      const double lat = grid.latC[static_cast<std::size_t>(j)];
      const auto si = static_cast<std::size_t>(i);
      const auto sj = static_cast<std::size_t>(j);

      // Wind stress applied to the surface level momentum.
      if (grid.hFacW(si, sj, 0) > 0) {
        const double tx =
            coupled ? forcing.taux(si, sj) : ocean_wind_stress(cfg, lat);
        at3(s.gu, i, j, 0) += tx / (cfg.rho0 * dz0);
        flops += 3.0;
      }
      if (coupled && grid.hFacS(si, sj, 0) > 0) {
        at3(s.gv, i, j, 0) += forcing.tauy(si, sj) / (cfg.rho0 * dz0);
        flops += 3.0;
      }

      // Surface heat: restoring climatology, or the coupler's flux.
      if (grid.hFacC(si, sj, 0) > 0) {
        if (coupled && !forcing.qnet.empty()) {
          // Q / (rho0 cp dz): cp ~ 3990 J/kg/K for seawater.
          at3(s.gt, i, j, 0) +=
              forcing.qnet(si, sj) / (cfg.rho0 * 3990.0 * dz0);
          flops += 3.0;
        } else {
          const double tstar = ocean_sst_target(cfg, lat);
          at3(s.gt, i, j, 0) +=
              (tstar - at3(s.theta, i, j, 0)) * inv_tau_restore;
          flops += 8.0;
        }
      }
    }
  }
  flops += richardson_mixing(cfg, grid, s, r);
  return flops;
}

double gray_radiation(const ModelConfig& cfg, const TileGrid& grid, State& s,
                      const kernels::Range& r) {
  if (!cfg.enable_radiation || cfg.isomorph != Isomorph::kAtmosphere) {
    return 0.0;
  }
  constexpr double kSigmaSB = 5.67e-8;  // W/m^2/K^4
  constexpr double kCp = 1004.0;        // J/kg/K
  const double eps = cfg.rad_emissivity;
  const int nz = cfg.nz;
  double flops = 0;
  std::vector<double> B(static_cast<std::size_t>(nz));
  std::vector<double> D(static_cast<std::size_t>(nz) + 1);
  std::vector<double> U(static_cast<std::size_t>(nz) + 1);
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      if (grid.hFacC(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                     0) <= 0) {
        continue;
      }
      // Layer emissions.
      for (int k = 0; k < nz; ++k) {
        const double th = at3(s.theta, i, j, k);
        const double t2 = th * th;
        B[static_cast<std::size_t>(k)] = kSigmaSB * t2 * t2;
      }
      // Downward sweep from the top of the atmosphere (D = 0 there).
      D[0] = 0.0;
      for (int k = 0; k < nz; ++k) {
        D[static_cast<std::size_t>(k) + 1] =
            D[static_cast<std::size_t>(k)] * (1.0 - eps) +
            eps * B[static_cast<std::size_t>(k)];
      }
      // Upward sweep from the surface (emits like the lowest layer).
      U[static_cast<std::size_t>(nz)] = B[static_cast<std::size_t>(nz - 1)];
      for (int k = nz - 1; k >= 0; --k) {
        U[static_cast<std::size_t>(k)] =
            U[static_cast<std::size_t>(k) + 1] * (1.0 - eps) +
            eps * B[static_cast<std::size_t>(k)];
      }
      // Heating from net-flux convergence (net upward F = U - D).
      for (int k = 0; k < nz; ++k) {
        const double f_top = U[static_cast<std::size_t>(k)] -
                             D[static_cast<std::size_t>(k)];
        const double f_bot = U[static_cast<std::size_t>(k) + 1] -
                             D[static_cast<std::size_t>(k) + 1];
        at3(s.gt, i, j, k) +=
            (f_bot - f_top) /
            (cfg.rho0 * kCp * grid.dzf[static_cast<std::size_t>(k)]);
      }
      flops += 22.0 * nz;
    }
  }
  return flops;
}

double moisture_cycle(const ModelConfig& cfg, const TileGrid& grid, State& s,
                      const SurfaceForcing& forcing,
                      const kernels::Range& r) {
  if (!cfg.enable_moisture || cfg.isomorph != Isomorph::kAtmosphere) {
    return 0.0;
  }
  constexpr double kTauCondense = 3600.0;     // 1 hour
  constexpr double kTauEvap = 2.0 * 86400.0;  // 2 days
  const int nz = cfg.nz;
  double flops = 0;
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      for (int k = 0; k < nz; ++k) {
        if (grid.hFacC(static_cast<std::size_t>(i),
                       static_cast<std::size_t>(j),
                       static_cast<std::size_t>(k)) <= 0) {
          continue;
        }
        const double th = at3(s.theta, i, j, k);
        const double q = at3(s.salt, i, j, k);
        const double qsat =
            cfg.q_ref * std::exp(0.0625 * (th - cfg.q_theta_ref));
        if (q > qsat) {
          const double rate = (q - qsat) / kTauCondense;
          at3(s.gs, i, j, k) -= rate;
          at3(s.gt, i, j, k) += cfg.latent_heat_over_cp * rate;
          flops += 5.0;
        }
        // Surface evaporation toward 80% relative humidity; slightly
        // enhanced over warm SST when coupled.
        if (k == nz - 1) {
          double target = 0.8 * qsat;
          if (forcing.active && !forcing.sst.empty()) {
            const double sst_k = forcing.sst(static_cast<std::size_t>(i),
                                             static_cast<std::size_t>(j)) +
                                 273.15;
            target = 0.8 * cfg.q_ref *
                     std::exp(0.0625 * (sst_k - cfg.q_theta_ref));
            flops += 18.0;
          }
          at3(s.gs, i, j, k) += (target - q) / kTauEvap;
          flops += 4.0;
        }
        flops += 18.0;
      }
    }
  }
  return flops;
}

double richardson_mixing(const ModelConfig& cfg, const TileGrid& grid,
                         State& s, const kernels::Range& r) {
  if (!cfg.enable_ri_mixing || cfg.isomorph != Isomorph::kOcean) {
    return 0.0;
  }
  const int nz = cfg.nz;
  if (nz < 2) return 0.0;
  double flops = 0;
  std::vector<double> nu(static_cast<std::size_t>(nz) + 1, 0.0);
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      const auto si = static_cast<std::size_t>(i);
      const auto sj = static_cast<std::size_t>(j);
      // Interface diffusivities from the local Richardson number.
      for (int k = 1; k < nz; ++k) {
        nu[static_cast<std::size_t>(k)] = 0.0;
        if (grid.hFacC(si, sj, static_cast<std::size_t>(k)) <= 0 ||
            grid.hFacC(si, sj, static_cast<std::size_t>(k - 1)) <= 0) {
          continue;
        }
        const double dzc = grid.zC[static_cast<std::size_t>(k)] -
                           grid.zC[static_cast<std::size_t>(k - 1)];
        const double b_up = buoyancy(cfg, at3(s.theta, i, j, k - 1),
                                     at3(s.salt, i, j, k - 1));
        const double b_dn =
            buoyancy(cfg, at3(s.theta, i, j, k), at3(s.salt, i, j, k));
        const double n2 = (b_up - b_dn) / dzc;  // > 0 when stable
        const double du = (at3(s.u, i, j, k - 1) - at3(s.u, i, j, k));
        const double dv = (at3(s.v, i, j, k - 1) - at3(s.v, i, j, k));
        const double shear2 = (du * du + dv * dv) / (dzc * dzc) + 1e-12;
        const double ri = std::max(n2 / shear2, 0.0);
        const double denom = 1.0 + 5.0 * ri;
        nu[static_cast<std::size_t>(k)] = cfg.ri_nu0 / (denom * denom);
        flops += 26.0;
      }
      // Conservative vertical diffusion with the interface coefficients.
      auto diffuse = [&](const Array3D<double>& f, Array3D<double>& g,
                         double scale) {
        for (int k = 0; k < nz; ++k) {
          const double hfac = grid.hFacC(si, sj, static_cast<std::size_t>(k));
          if (hfac <= 0) continue;
          double flux_top = 0.0, flux_bot = 0.0;
          if (k > 0 && nu[static_cast<std::size_t>(k)] > 0) {
            const double dzc = grid.zC[static_cast<std::size_t>(k)] -
                               grid.zC[static_cast<std::size_t>(k - 1)];
            flux_top = nu[static_cast<std::size_t>(k)] * scale *
                       (at3(f, i, j, k - 1) - at3(f, i, j, k)) / dzc;
          }
          if (k + 1 < nz && nu[static_cast<std::size_t>(k) + 1] > 0) {
            const double dzc = grid.zC[static_cast<std::size_t>(k) + 1] -
                               grid.zC[static_cast<std::size_t>(k)];
            flux_bot = nu[static_cast<std::size_t>(k) + 1] * scale *
                       (at3(f, i, j, k) - at3(f, i, j, k + 1)) / dzc;
          }
          // Divide by the *open* thickness so column totals telescope
          // exactly even through partial bottom cells.
          at3(g, i, j, k) += (flux_top - flux_bot) /
                             (grid.dzf[static_cast<std::size_t>(k)] * hfac);
          flops += 10.0;
        }
      };
      diffuse(s.theta, s.gt, 1.0);
      diffuse(s.salt, s.gs, 1.0);
      diffuse(s.u, s.gu, 1.0);
      diffuse(s.v, s.gv, 1.0);
    }
  }
  return flops;
}

double convective_adjustment(const ModelConfig& cfg, const TileGrid& grid,
                             Array3D<double>& theta, const kernels::Range& r) {
  if (!cfg.enable_convection || cfg.isomorph != Isomorph::kAtmosphere) {
    return 0.0;
  }
  double flops = 0;
  const int nz = cfg.nz;
  // Pool-adjacent-violators over each column: stability in depth
  // coordinates requires theta non-increasing with k (theta(k+1) sits
  // *below* theta(k); a warmer level below is statically unstable).
  // Merging adjacent unstable blocks into mass-weighted pools yields the
  // exactly-stable, heat-conserving adjusted profile in one pass.
  struct Pool {
    double mass, heat;
    int first, count;
    [[nodiscard]] double value() const { return heat / mass; }
  };
  std::vector<Pool> pools;
  pools.reserve(static_cast<std::size_t>(nz));
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      const auto si = static_cast<std::size_t>(i);
      const auto sj = static_cast<std::size_t>(j);
      pools.clear();
      for (int k = 0; k < nz; ++k) {
        const double h = grid.hFacC(si, sj, static_cast<std::size_t>(k));
        if (h <= 0) break;  // below the bottom
        const double mass = grid.dzf[static_cast<std::size_t>(k)] * h;
        pools.push_back(
            Pool{mass, mass * at3(theta, i, j, k), k, 1});
        while (pools.size() >= 2 &&
               pools.back().value() >
                   pools[pools.size() - 2].value() + 1e-14) {
          Pool lower = pools.back();
          pools.pop_back();
          Pool& upper = pools.back();
          upper.mass += lower.mass;
          upper.heat += lower.heat;
          upper.count += lower.count;
          flops += 4.0;
        }
        flops += 4.0;
      }
      for (const Pool& pool : pools) {
        if (pool.count == 1) continue;
        for (int k = pool.first; k < pool.first + pool.count; ++k) {
          at3(theta, i, j, k) = pool.value();
        }
        flops += pool.count;
      }
    }
  }
  return flops;
}

}  // namespace hyades::gcm
