// Preconditioned conjugate gradients for the non-hydrostatic 3-D
// pressure (the 3-D counterpart of cg.hpp).  Per iteration: two 3-D
// halo-1 exchanges and two global sums -- the same communication shape
// as the 2-D solver but with level-deep strips, which is exactly why the
// paper's climate runs stay in the hydrostatic limit (see
// bench_ablation_nonhydro).
#pragma once

#include "comm/comm.hpp"
#include "gcm/elliptic3.hpp"

namespace hyades::gcm {

struct Cg3Result {
  int iterations = 0;
  double residual = 0.0;
  bool converged = false;
  double flops = 0.0;
};

Cg3Result cg3_solve(comm::Comm& comm, const Decomp& dec,
                    const EllipticOperator3& op, const Array3D<double>& b,
                    Array3D<double>& p, double tol, int max_iter);

}  // namespace hyades::gcm
