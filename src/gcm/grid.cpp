#include "gcm/grid.hpp"

#include <algorithm>
#include <cmath>

namespace hyades::gcm {

namespace {
constexpr double kHFacMin = 0.2;   // smallest allowed partial cell
constexpr double kHFacCut = 0.05;  // below this a cell is closed
}  // namespace

double TileGrid::column_depth(const ModelConfig& cfg, double lon, double lat) {
  const double D = cfg.total_depth;
  switch (cfg.topography) {
    case ModelConfig::Topography::kFlat:
      return D;
    case ModelConfig::Topography::kRidge: {
      // A meridional mid-basin ridge rising to 60% of the column.
      const double x = std::fmod(lon, 2.0 * M_PI) - M_PI;
      return D * (1.0 - 0.6 * std::exp(-(x * x) / (2.0 * 0.3 * 0.3)));
    }
    case ModelConfig::Topography::kContinents: {
      // Two idealized rectangular land masses with shelf edges.
      const double l = std::fmod(lon + 2.0 * M_PI, 2.0 * M_PI);
      const double lat_deg = lat * 180.0 / M_PI;
      auto in_block = [&](double lo, double hi) {
        return l > lo * M_PI && l < hi * M_PI && std::abs(lat_deg) < 60.0;
      };
      if (in_block(0.30, 0.60) || in_block(1.20, 1.50)) return 0.0;
      // Shelves along the block edges.
      auto near_block = [&](double lo, double hi) {
        return l > (lo - 0.06) * M_PI && l < (hi + 0.06) * M_PI &&
               std::abs(lat_deg) < 63.0;
      };
      if (near_block(0.30, 0.60) || near_block(1.20, 1.50)) return 0.35 * D;
      return D;
    }
    case ModelConfig::Topography::kBasin: {
      // A meridional land strip closes the periodic channel into a basin.
      const double l = std::fmod(lon + 2.0 * M_PI, 2.0 * M_PI);
      if (l < 0.12 * M_PI || l > 1.88 * M_PI) return 0.0;
      return D;
    }
  }
  return D;
}

TileGrid::TileGrid(const ModelConfig& cfg, const Decomp& dec) {
  const int ex = dec.ext_x();
  const int ey = dec.ext_y();
  const int nz = cfg.nz;
  const double R = cfg.radius;
  const double dlat = cfg.dlat_rad();
  const double dlon = cfg.dlon_rad();

  dyC = R * dlat;
  latC.resize(static_cast<std::size_t>(ey));
  dxC.resize(static_cast<std::size_t>(ey));
  dxS.resize(static_cast<std::size_t>(ey));
  fC.resize(static_cast<std::size_t>(ey));
  rAc.resize(static_cast<std::size_t>(ey));
  for (int j = 0; j < ey; ++j) {
    const int gj = dec.global_j(j);
    // Clamp halo rows beyond the wall to the wall latitude; they are land
    // anyway, but their metrics must stay finite.
    const int cj = std::clamp(gj, 0, cfg.ny - 1);
    const double lat = cfg.lat0_rad() + (cj + 0.5) * dlat;
    const double lat_s = cfg.lat0_rad() + cj * dlat;
    latC[static_cast<std::size_t>(j)] = lat;
    dxC[static_cast<std::size_t>(j)] = R * std::cos(lat) * dlon;
    dxS[static_cast<std::size_t>(j)] = R * std::cos(lat_s) * dlon;
    fC[static_cast<std::size_t>(j)] = 2.0 * cfg.omega * std::sin(lat);
    rAc[static_cast<std::size_t>(j)] = dxC[static_cast<std::size_t>(j)] * dyC;
  }

  dzf = cfg.level_thicknesses();
  zC.resize(static_cast<std::size_t>(nz));
  double z = 0.0;
  for (int k = 0; k < nz; ++k) {
    zC[static_cast<std::size_t>(k)] = z + 0.5 * dzf[static_cast<std::size_t>(k)];
    z += dzf[static_cast<std::size_t>(k)];
  }

  hFacC = Array3D<double>(static_cast<std::size_t>(ex),
                          static_cast<std::size_t>(ey),
                          static_cast<std::size_t>(nz), 0.0);
  depth = Array2D<double>(static_cast<std::size_t>(ex),
                          static_cast<std::size_t>(ey), 0.0);

  for (int i = 0; i < ex; ++i) {
    for (int j = 0; j < ey; ++j) {
      const int gj = dec.global_j(j);
      if (gj < 0 || gj >= cfg.ny) continue;  // beyond the y walls: land
      const int gi = ((dec.global_i(i) % cfg.nx) + cfg.nx) % cfg.nx;
      const double lon = (gi + 0.5) * dlon;
      const double D = column_depth(cfg, lon, latC[static_cast<std::size_t>(j)]);
      double top = 0.0;
      double h_total = 0.0;
      for (int k = 0; k < nz; ++k) {
        const double dz = dzf[static_cast<std::size_t>(k)];
        double h = std::clamp((D - top) / dz, 0.0, 1.0);
        if (h < kHFacCut) {
          h = 0.0;
        } else if (h < kHFacMin) {
          h = kHFacMin;
        }
        hFacC(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
              static_cast<std::size_t>(k)) = h;
        h_total += h * dz;
        top += dz;
      }
      depth(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          h_total;
    }
  }

  // Face fractions: the open fraction of a face is the smaller of the two
  // adjacent cells' fractions (the finite-volume "shaved cell" rule).
  hFacW = Array3D<double>(static_cast<std::size_t>(ex),
                          static_cast<std::size_t>(ey),
                          static_cast<std::size_t>(nz), 0.0);
  hFacS = Array3D<double>(static_cast<std::size_t>(ex),
                          static_cast<std::size_t>(ey),
                          static_cast<std::size_t>(nz), 0.0);
  for (int i = 1; i < ex; ++i) {
    for (int j = 0; j < ey; ++j) {
      for (int k = 0; k < nz; ++k) {
        hFacW(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
              static_cast<std::size_t>(k)) =
            std::min(hFacC(static_cast<std::size_t>(i - 1),
                           static_cast<std::size_t>(j),
                           static_cast<std::size_t>(k)),
                     hFacC(static_cast<std::size_t>(i),
                           static_cast<std::size_t>(j),
                           static_cast<std::size_t>(k)));
      }
    }
  }
  for (int i = 0; i < ex; ++i) {
    for (int j = 1; j < ey; ++j) {
      for (int k = 0; k < nz; ++k) {
        hFacS(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
              static_cast<std::size_t>(k)) =
            std::min(hFacC(static_cast<std::size_t>(i),
                           static_cast<std::size_t>(j - 1),
                           static_cast<std::size_t>(k)),
                     hFacC(static_cast<std::size_t>(i),
                           static_cast<std::size_t>(j),
                           static_cast<std::size_t>(k)));
      }
    }
  }

  // Interior wet-cell census.
  for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
    for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
      bool any = false;
      for (int k = 0; k < nz; ++k) {
        if (hFacC(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                  static_cast<std::size_t>(k)) > 0) {
          ++wet_cells_;
          any = true;
        }
      }
      if (any) ++wet_columns_;
    }
  }
}

}  // namespace hyades::gcm
