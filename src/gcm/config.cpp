#include "gcm/config.hpp"

#include <bit>

#include "support/rng.hpp"

namespace hyades::gcm {

namespace {

// Incremental fingerprint built on the SplitMix64 finalizer: absorbing
// each field through hash_mix keeps the result a pure function of the
// field *sequence*, so reordering or dropping a field changes the hash.
struct Digest {
  std::uint64_t h = 0x48594144u;  // "HYAD"
  void word(std::uint64_t w) { h = hash_mix(h, {w}); }
  void real(double v) { word(std::bit_cast<std::uint64_t>(v)); }
  void integer(int v) { word(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  void boolean(bool v) { word(v ? 1u : 0u); }
};

}  // namespace

std::uint64_t ModelConfig::fingerprint() const {
  Digest d;
  d.integer(static_cast<int>(isomorph));
  d.integer(nx);
  d.integer(ny);
  d.integer(nz);
  d.real(lat_extent_deg);
  d.integer(px);
  d.integer(py);
  d.integer(halo);
  d.real(dt);
  d.real(radius);
  d.real(omega);
  d.real(gravity);
  d.real(rho0);
  d.real(theta0);
  d.real(salt0);
  d.real(eos_alpha);
  d.real(eos_beta);
  d.real(visc_h);
  d.real(visc_v);
  d.real(diff_h);
  d.real(diff_v);
  d.real(visc_4);
  d.real(diff_4);
  d.boolean(enable_ri_mixing);
  d.real(ri_nu0);
  d.boolean(enable_radiation);
  d.real(rad_emissivity);
  d.boolean(enable_moisture);
  d.real(q_ref);
  d.real(q_theta_ref);
  d.real(latent_heat_over_cp);
  d.integer(static_cast<int>(advection));
  d.boolean(implicit_vertical_mixing);
  d.real(ab_eps);
  d.boolean(overlap_comm);
  d.real(cg_tol);
  d.integer(cg_max_iter);
  d.boolean(cg_jacobi);
  d.boolean(nonhydrostatic);
  d.real(cg3_tol);
  d.integer(cg3_max_iter);
  d.word(static_cast<std::uint64_t>(dz.size()));
  for (const double v : dz) d.real(v);
  d.real(total_depth);
  d.integer(static_cast<int>(topography));
  d.real(wind_tau0);
  d.real(t_restore_days);
  d.real(rad_tau_days);
  d.real(fric_tau_days);
  d.boolean(enable_forcing);
  d.boolean(enable_convection);
  d.real(fps_mflops);
  d.real(fds_mflops);
  d.integer(checkpoint_interval);
  d.integer(retry_budget);
  d.integer(max_rollbacks);
  return d.h;
}

// The coupled-run configurations of Section 5: both components at
// 2.8125-degree zonal resolution on a 128 x 64 lateral grid.  The
// vertical extents are inferred from Figure 11's per-processor cell
// counts (see DESIGN.md): ocean 30 levels, atmosphere 10 levels.

ModelConfig ocean_preset(int px, int py) {
  ModelConfig c;
  c.isomorph = Isomorph::kOcean;
  c.nx = 128;
  c.ny = 64;
  c.nz = 30;
  c.px = px;
  c.py = py;
  c.halo = 3;
  c.dt = 400.0;
  c.cg_tol = 1.0e-6;  // paper-era solver accuracy; keeps Ni near 60
  c.total_depth = 4000.0;
  c.topography = ModelConfig::Topography::kContinents;
  c.rho0 = 1029.0;
  c.theta0 = 15.0;
  c.eos_alpha = 2.0e-4;
  c.eos_beta = 7.4e-4;
  c.visc_h = 1.0e5;
  c.visc_v = 1.0e-3;
  c.diff_h = 1.0e3;
  c.diff_v = 1.0e-5;
  c.visc_4 = 1.0e14;  // biharmonic mixing, scale-selective at 2.8 deg
  c.diff_4 = 1.0e14;
  c.enable_ri_mixing = true;
  c.advection = ModelConfig::Advection::kDst3;
  c.implicit_vertical_mixing = true;
  c.validate();
  return c;
}

ModelConfig atmosphere_preset(int px, int py) {
  ModelConfig c;
  c.isomorph = Isomorph::kAtmosphere;
  c.nx = 128;
  c.ny = 64;
  c.nz = 10;
  c.px = px;
  c.py = py;
  c.halo = 3;
  c.dt = 400.0;
  c.cg_tol = 1.0e-6;
  c.total_depth = 1.0e4;  // 10 km column in height coordinates
  c.topography = ModelConfig::Topography::kFlat;
  c.rho0 = 1.2;
  c.theta0 = 300.0;
  c.eos_alpha = 1.0 / 300.0;  // b = g theta'/theta_ref
  c.eos_beta = 0.0;           // `salt` becomes a passive moisture proxy
  c.visc_h = 3.0e5;
  c.visc_v = 1.0e-2;
  c.diff_h = 1.0e5;
  c.diff_v = 1.0e-3;
  c.visc_4 = 1.0e14;
  c.diff_4 = 1.0e14;
  c.advection = ModelConfig::Advection::kDst3;
  c.implicit_vertical_mixing = true;
  c.enable_radiation = true;
  c.enable_moisture = true;
  c.salt0 = 0.005;    // `salt` carries the moisture mixing ratio
  c.wind_tau0 = 0.0;  // no surface stress forcing; physics drives the flow
  c.validate();
  return c;
}

}  // namespace hyades::gcm
