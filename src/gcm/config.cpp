#include "gcm/config.hpp"

namespace hyades::gcm {

// The coupled-run configurations of Section 5: both components at
// 2.8125-degree zonal resolution on a 128 x 64 lateral grid.  The
// vertical extents are inferred from Figure 11's per-processor cell
// counts (see DESIGN.md): ocean 30 levels, atmosphere 10 levels.

ModelConfig ocean_preset(int px, int py) {
  ModelConfig c;
  c.isomorph = Isomorph::kOcean;
  c.nx = 128;
  c.ny = 64;
  c.nz = 30;
  c.px = px;
  c.py = py;
  c.halo = 3;
  c.dt = 400.0;
  c.cg_tol = 1.0e-6;  // paper-era solver accuracy; keeps Ni near 60
  c.total_depth = 4000.0;
  c.topography = ModelConfig::Topography::kContinents;
  c.rho0 = 1029.0;
  c.theta0 = 15.0;
  c.eos_alpha = 2.0e-4;
  c.eos_beta = 7.4e-4;
  c.visc_h = 1.0e5;
  c.visc_v = 1.0e-3;
  c.diff_h = 1.0e3;
  c.diff_v = 1.0e-5;
  c.visc_4 = 1.0e14;  // biharmonic mixing, scale-selective at 2.8 deg
  c.diff_4 = 1.0e14;
  c.enable_ri_mixing = true;
  c.advection = ModelConfig::Advection::kDst3;
  c.implicit_vertical_mixing = true;
  c.validate();
  return c;
}

ModelConfig atmosphere_preset(int px, int py) {
  ModelConfig c;
  c.isomorph = Isomorph::kAtmosphere;
  c.nx = 128;
  c.ny = 64;
  c.nz = 10;
  c.px = px;
  c.py = py;
  c.halo = 3;
  c.dt = 400.0;
  c.cg_tol = 1.0e-6;
  c.total_depth = 1.0e4;  // 10 km column in height coordinates
  c.topography = ModelConfig::Topography::kFlat;
  c.rho0 = 1.2;
  c.theta0 = 300.0;
  c.eos_alpha = 1.0 / 300.0;  // b = g theta'/theta_ref
  c.eos_beta = 0.0;           // `salt` becomes a passive moisture proxy
  c.visc_h = 3.0e5;
  c.visc_v = 1.0e-2;
  c.diff_h = 1.0e5;
  c.diff_v = 1.0e-3;
  c.visc_4 = 1.0e14;
  c.diff_4 = 1.0e14;
  c.advection = ModelConfig::Advection::kDst3;
  c.implicit_vertical_mixing = true;
  c.enable_radiation = true;
  c.enable_moisture = true;
  c.salt0 = 0.005;    // `salt` carries the moisture mixing ratio
  c.wind_tau0 = 0.0;  // no surface stress forcing; physics drives the flow
  c.validate();
  return c;
}

}  // namespace hyades::gcm
