// Configuration for the MIT-GCM-style finite-volume model (Section 3).
//
// One numerical kernel serves both climate components: the paper's
// "isomorphism" between the incompressible ocean and the compressible
// atmosphere means the same semi-discrete equations (1)-(3) are stepped
// for both, with different vertical grids, equations of state and
// forcing.  We realize the atmosphere as a Boussinesq fluid in height
// coordinates with potential-temperature buoyancy -- a simplification
// that preserves the isomorphism (and the computational structure, which
// is what the performance study exercises).
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace hyades::gcm {

enum class Isomorph { kOcean, kAtmosphere };

struct ModelConfig {
  Isomorph isomorph = Isomorph::kOcean;

  // Global horizontal grid (lateral size 128 x 64 at the paper's 2.8125
  // degree resolution).  x is periodic (longitude); y is bounded.  The
  // grid spans latitudes [-lat_extent, +lat_extent]; staying away from
  // the poles plays the role of the paper's polar treatment.
  int nx = 128;
  int ny = 64;
  int nz = 30;  // ocean 30 / atmosphere 10 levels (see DESIGN.md)
  double lat_extent_deg = 80.0;

  // Tile decomposition: px * py tiles, one per rank of the component's
  // communicator group.  nx % px == 0 and ny % py == 0.
  int px = 4;
  int py = 4;
  int halo = 3;  // PS-phase halo width (overcomputation, Section 4)

  double dt = 400.0;  // seconds

  // Planetary constants.
  double radius = 6.371e6;     // m
  double omega = 7.292e-5;     // 1/s
  double gravity = 9.81;       // m/s^2

  // Fluid constants.
  double rho0 = 1029.0;        // reference density (kg/m^3)
  double theta0 = 15.0;        // reference temperature (degC or K offset)
  double salt0 = 35.0;         // reference salinity (psu) / moisture proxy
  double eos_alpha = 2.0e-4;   // thermal expansion (1/K)
  double eos_beta = 7.4e-4;    // haline contraction (1/psu)

  // Mixing coefficients.
  double visc_h = 1.0e5;   // horizontal viscosity (m^2/s)
  double visc_v = 1.0e-3;  // vertical viscosity
  double diff_h = 1.0e3;   // horizontal tracer diffusivity
  double diff_v = 1.0e-5;  // vertical tracer diffusivity
  double visc_4 = 0.0;     // biharmonic viscosity (m^4/s), 0 = off
  double diff_4 = 0.0;     // biharmonic tracer diffusivity

  // Richardson-number vertical mixing (ocean; Pacanowski-Philander).
  bool enable_ri_mixing = false;
  double ri_nu0 = 5.0e-2;  // peak mixing coefficient (m^2/s)

  // Gray-radiation and moisture cycle (atmosphere physics package).
  bool enable_radiation = false;
  double rad_emissivity = 0.10;  // per-layer longwave emissivity
  bool enable_moisture = false;
  double q_ref = 0.010;          // saturation mixing ratio at theta_ref
  double q_theta_ref = 290.0;    // reference temperature for q_sat (K)
  double latent_heat_over_cp = 2500.0;  // K per unit mixing ratio

  // Tracer advection: 2nd-order centered, or 3rd-order direct space-time
  // (upwind-biased, scale-selective; needs halo >= 3).
  enum class Advection { kCentered2, kDst3 };
  Advection advection = Advection::kCentered2;

  // Vertical diffusion/viscosity treatment: implicit (backward Euler,
  // unconditionally stable column tridiagonals) or explicit in the
  // tendencies.
  bool implicit_vertical_mixing = false;

  // Adams-Bashforth stabilizing offset.
  double ab_eps = 0.01;

  // Compute/communication overlap in the PS (split-phase halo
  // exchanges): start all five 3-D exchanges, compute the tendency
  // kernels on the tile interior while the strips are in flight, finish
  // the exchanges, then compute the halo rim.  Numerics are bitwise
  // identical either way (the interior pass reads only tile-owned
  // cells); only the virtual timing changes.  Default off so the seed's
  // paper-calibration timing is reproduced exactly.
  bool overlap_comm = false;

  // Pressure (DS) solver.
  double cg_tol = 1.0e-7;
  int cg_max_iter = 500;
  bool cg_jacobi = false;  // true: plain Jacobi preconditioner (ablation)

  // Non-hydrostatic mode (Section 3.1): w becomes prognostic and a 3-D
  // elliptic solve finds the non-hydrostatic pressure after the 2-D
  // surface solve.  The climate configurations stay hydrostatic (the
  // paper: "the flow in the climate scale simulations presented here is
  // hydrostatic"); this mode serves fine-scale process studies.
  bool nonhydrostatic = false;
  double cg3_tol = 1.0e-7;
  int cg3_max_iter = 500;

  // Vertical grid: level thicknesses (m).  Empty -> uniform layers over
  // total_depth.
  std::vector<double> dz;
  double total_depth = 4000.0;  // ocean depth / atmosphere column height

  // Topography: flat bottom, an idealized mid-basin ridge, idealized
  // continents (exercises the finite-volume mask/partial-cell machinery
  // of Figure 4), or a closed rectangular basin (a meridional land strip
  // interrupts the periodic channel -- the classic gyre setup).
  enum class Topography { kFlat, kRidge, kContinents, kBasin };
  Topography topography = Topography::kFlat;

  // Forcing.
  double wind_tau0 = 0.1;          // ocean surface wind stress (N/m^2)
  double t_restore_days = 30.0;    // surface temperature restoring
  double rad_tau_days = 40.0;      // atmospheric radiative relaxation
  double fric_tau_days = 1.0;      // boundary-layer Rayleigh friction
  bool enable_forcing = true;
  bool enable_convection = true;   // atmosphere convective adjustment

  // Processor model (Figure 11): sustained MFlop/s on the PS and DS
  // kernels of a 400 MHz PII.
  double fps_mflops = 50.0;
  double fds_mflops = 60.0;

  // ---- fault tolerance (graceful degradation) -------------------------
  // With retry_budget >= 0, Model::run keeps an in-memory snapshot of
  // the prognostic state, refreshed every checkpoint_interval steps
  // (<= 0: only the initial snapshot).  A step in which any rank spends
  // more than retry_budget retransmits rolls the whole group back to the
  // snapshot and replays; the decision is collective (a global max), so
  // all ranks stay in lockstep.  More than max_rollbacks consecutive
  // rollbacks without a committed step aborts the run.
  int checkpoint_interval = 0;
  int retry_budget = -1;  // -1: rollback machinery disabled
  int max_rollbacks = 8;

  // ---- derived helpers -------------------------------------------------
  [[nodiscard]] double dlon_rad() const { return 2.0 * M_PI / nx; }
  [[nodiscard]] double dlat_rad() const {
    return 2.0 * lat_extent_deg * (M_PI / 180.0) / ny;
  }
  [[nodiscard]] double lat0_rad() const {
    return -lat_extent_deg * (M_PI / 180.0);
  }
  [[nodiscard]] int tiles() const { return px * py; }
  [[nodiscard]] int snx() const { return nx / px; }
  [[nodiscard]] int sny() const { return ny / py; }

  [[nodiscard]] std::vector<double> level_thicknesses() const {
    if (!dz.empty()) {
      if (static_cast<int>(dz.size()) != nz) {
        throw std::invalid_argument("ModelConfig: dz size != nz");
      }
      return dz;
    }
    return std::vector<double>(static_cast<std::size_t>(nz),
                               total_depth / nz);
  }

  void validate() const {
    if (nx < 1 || ny < 1 || nz < 1) {
      throw std::invalid_argument("ModelConfig: bad grid dims");
    }
    if (px < 1 || py < 1 || px > nx || py > ny) {
      throw std::invalid_argument("ModelConfig: more tiles than grid cells");
    }
    // snx()/sny() are the floor-division base tile sizes; remainder
    // cells go to the leading tiles (see gcm/decomp.hpp), so the halo
    // must fit the smallest tile.
    if (halo < 1 || halo > snx() || halo > sny()) {
      throw std::invalid_argument("ModelConfig: bad halo width");
    }
    if (dt <= 0) throw std::invalid_argument("ModelConfig: dt <= 0");
    (void)level_thicknesses();
  }

  // Order- and value-stable 64-bit fingerprint of every field that
  // affects the computation (doubles hashed by bit pattern, so two
  // configs collide only when the stepped equations are bit-identical).
  // The ensemble farm's result cache keys on (fingerprint, init seed):
  // a field added here without extending the hash would silently alias
  // distinct configurations, so config.cpp hashes *all* members and a
  // regression test pins the value for the default config.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

// Paper-matching presets for the coupled 2.8125-degree climate run.
ModelConfig ocean_preset(int px, int py);
ModelConfig atmosphere_preset(int px, int py);

}  // namespace hyades::gcm
