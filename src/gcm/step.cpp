#include "gcm/step.hpp"

#include "cluster/trace.hpp"

#include "gcm/halo.hpp"
#include "gcm/kernels.hpp"

namespace hyades::gcm {

Timestepper::Timestepper(const ModelConfig& cfg, comm::Comm& comm,
                         const Decomp& dec, const TileGrid& grid,
                         State& state)
    : cfg_(cfg),
      comm_(comm),
      dec_(dec),
      grid_(grid),
      state_(state),
      op_(cfg, dec, grid),
      rhs_(static_cast<std::size_t>(dec.ext_x()),
           static_cast<std::size_t>(dec.ext_y()), 0.0),
      scratch_(static_cast<std::size_t>(dec.ext_x()),
               static_cast<std::size_t>(dec.ext_y()),
               static_cast<std::size_t>(cfg.nz), 0.0) {
  if (cfg.halo < 2) {
    throw std::invalid_argument(
        "Timestepper: halo >= 2 required for PS overcomputation");
  }
  if ((cfg.visc_4 > 0 || cfg.diff_4 > 0) && cfg.halo < 3) {
    throw std::invalid_argument(
        "Timestepper: biharmonic mixing needs halo >= 3");
  }
  if (cfg.advection == ModelConfig::Advection::kDst3 && cfg.halo < 3) {
    throw std::invalid_argument("Timestepper: DST-3 advection needs halo >= 3");
  }
  if (cfg.nonhydrostatic) {
    op3_ = std::make_unique<EllipticOperator3>(cfg, dec, grid);
    rhs3_ = Array3D<double>(static_cast<std::size_t>(dec.ext_x()),
                            static_cast<std::size_t>(dec.ext_y()),
                            static_cast<std::size_t>(cfg.nz), 0.0);
    wmask_ = rhs3_;
    for (int i = 0; i < dec.ext_x(); ++i) {
      for (int j = 0; j < dec.ext_y(); ++j) {
        for (int k = 1; k < cfg.nz; ++k) {
          const bool open =
              grid.hFacC(static_cast<std::size_t>(i),
                         static_cast<std::size_t>(j),
                         static_cast<std::size_t>(k)) > 0 &&
              grid.hFacC(static_cast<std::size_t>(i),
                         static_cast<std::size_t>(j),
                         static_cast<std::size_t>(k - 1)) > 0;
          wmask_(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                 static_cast<std::size_t>(k)) = open ? 1.0 : 0.0;
        }
      }
    }
  }
}

StepStats Timestepper::step(const SurfaceForcing* forcing) {
  auto& ctx = comm_.ctx();
  StepStats st;
  const int h = dec_.halo;
  const SurfaceForcing& f = forcing ? *forcing : no_forcing_;

  // ======================= PS: prognostic step =======================
  const Microseconds t_ps = ctx.clock().now();
  const Microseconds overlap0 = ctx.accounting().overlap_us;

  // Overcomputed windows: with the halos fresh, every PS term for this
  // tile comes from tile-local data.
  const kernels::Range r2 = kernels::extended(dec_, 2);
  const kernels::Range r1 = kernels::extended(dec_, 1);
  const kernels::Range ri = kernels::extended(dec_, 0);

  // With implicit vertical mixing the explicit vertical coefficients are
  // zeroed here and the column solves run after the state update.
  const double kv_exp = cfg_.implicit_vertical_mixing ? 0.0 : cfg_.diff_v;
  const double av_exp = cfg_.implicit_vertical_mixing ? 0.0 : cfg_.visc_v;

  // The PS tendency kernels over a set of hydrostatic windows `hs` and
  // tendency windows `ts` ({r2}, {r1} reproduces the seed sequence; the
  // overlap path passes interior sub-windows, then the rim slabs).  Each
  // kernel sweeps all its windows before the next kernel runs, so a
  // window's reads never depend on which decomposition produced it.
  const auto tendency_kernels = [&](const std::vector<kernels::Range>& hs,
                                    const std::vector<kernels::Range>& ts) {
    double fl = 0;
    for (const auto& rh : hs) {
      fl += kernels::hydrostatic(cfg_, grid_, state_.theta, state_.salt,
                                 state_.phi, rh);
    }
    for (const auto& rt : ts) {
      fl += kernels::momentum_tendencies(cfg_, grid_, state_.u, state_.v,
                                         state_.w, state_.phi, state_.gu,
                                         state_.gv, av_exp, rt);
    }
    for (const auto& rt : ts) {
      fl += kernels::tracer_tendency(cfg_, grid_, state_.u, state_.v,
                                     state_.w, state_.theta, state_.gt,
                                     cfg_.diff_h, kv_exp, rt);
    }
    for (const auto& rt : ts) {
      fl += kernels::tracer_tendency(cfg_, grid_, state_.u, state_.v,
                                     state_.w, state_.salt, state_.gs,
                                     cfg_.diff_h, kv_exp, rt);
    }
    // Biharmonic horizontal mixing (scale-selective dissipation).
    if (cfg_.visc_4 > 0) {
      for (const auto& rt : ts) {
        fl += kernels::biharmonic_tendency(cfg_, grid_, state_.u, grid_.hFacW,
                                           scratch_, state_.gu, cfg_.visc_4,
                                           rt);
      }
      for (const auto& rt : ts) {
        fl += kernels::biharmonic_tendency(cfg_, grid_, state_.v, grid_.hFacS,
                                           scratch_, state_.gv, cfg_.visc_4,
                                           rt);
      }
    }
    if (cfg_.diff_4 > 0) {
      for (const auto& rt : ts) {
        fl += kernels::biharmonic_tendency(cfg_, grid_, state_.theta,
                                           grid_.hFacC, scratch_, state_.gt,
                                           cfg_.diff_4, rt);
      }
      for (const auto& rt : ts) {
        fl += kernels::biharmonic_tendency(cfg_, grid_, state_.salt,
                                           grid_.hFacC, scratch_, state_.gs,
                                           cfg_.diff_4, rt);
      }
    }
    for (const auto& rt : ts) {
      fl += apply_physics(cfg_, grid_, dec_, state_, f, rt);
    }
    if (cfg_.nonhydrostatic) {
      for (const auto& rt : ts) {
        fl += kernels::w_tendencies(cfg_, grid_, state_.u, state_.v,
                                    state_.w, state_.gw, av_exp, rt);
      }
    }
    return fl;
  };

  double ps_flops = 0;   // total, for StepStats
  double deferred = 0;   // flops accumulated but not yet charged

  if (!cfg_.overlap_comm) {
    // One exchange per 3-D state field per step (Section 4): u, v, w,
    // theta, salt -- the paper's five texchxyz applications.
    exchange3d(comm_, dec_, state_.u, h);
    exchange3d(comm_, dec_, state_.v, h);
    exchange3d(comm_, dec_, state_.w, h);
    exchange3d(comm_, dec_, state_.theta, h);
    exchange3d(comm_, dec_, state_.salt, h);
    st.tps_exch_us = ctx.clock().now() - t_ps;

    deferred += tendency_kernels({r2}, {r1});
  } else {
    // Split-phase PS: post the five exchanges, compute the interior
    // while the strips are in flight, complete the exchanges, then
    // compute the halo rim.  Interior kernels read only tile-owned
    // cells (kernels::interior), which the exchange never modifies, so
    // the state after the step is bitwise identical to the blocking
    // path -- only virtual timing (and the biharmonic scratch
    // recomputation flops along the interior/rim seam) differ.
    std::vector<HaloExchange3> hx;
    hx.reserve(5);  // no reallocation: in-flight handles must not move
    for (Array3D<double>* fld : {&state_.u, &state_.v, &state_.w,
                                 &state_.theta, &state_.salt}) {
      hx.emplace_back(comm_, dec_, *fld, h);
    }
    for (auto& x : hx) x.start();
    Microseconds exch_us = ctx.clock().now() - t_ps;

    const kernels::Range r1i = kernels::interior(dec_, r1);
    const kernels::Range r2i = kernels::interior(dec_, r2, 1);
    const Microseconds t_int = ctx.clock().now();
    const double fl_int = tendency_kernels({r2i}, {r1i});
    ctx.compute(fl_int, cfg_.fps_mflops);
    ps_flops += fl_int;
    st.tps_interior_us = ctx.clock().now() - t_int;
    if (ctx.tracer()) {
      cluster::SpanCounters ctr;
      ctr.flops = fl_int;
      ctx.tracer()->record("ps_interior", cluster::SpanCat::kPhase, t_int,
                           ctx.clock().now(), ctr);
    }

    // Stage 2 (north/south) depends on stage-1 strips, so it is posted
    // here and drained immediately; its latency still pipelines across
    // the five fields' NIU transfers.
    const Microseconds t_wait = ctx.clock().now();
    for (auto& x : hx) x.progress();
    for (auto& x : hx) x.finish();
    exch_us += ctx.clock().now() - t_wait;
    st.tps_exch_us = exch_us;

    std::array<kernels::Range, 4> slabs1{};
    std::array<kernels::Range, 4> slabs2{};
    const int n1 = kernels::rim(r1, r1i, slabs1);
    const int n2 = kernels::rim(r2, r2i, slabs2);
    const std::vector<kernels::Range> hs(slabs2.begin(), slabs2.begin() + n2);
    const std::vector<kernels::Range> ts(slabs1.begin(), slabs1.begin() + n1);
    deferred += tendency_kernels(hs, ts);
  }

  const bool first = (state_.step == 0);
  deferred += kernels::ab2_update(cfg_, grid_.hFacW, state_.u, state_.gu,
                                  state_.gu_nm1, first, r1);
  deferred += kernels::ab2_update(cfg_, grid_.hFacS, state_.v, state_.gv,
                                  state_.gv_nm1, first, r1);
  deferred += kernels::ab2_update(cfg_, grid_.hFacC, state_.theta, state_.gt,
                                  state_.gt_nm1, first, r1);
  deferred += kernels::ab2_update(cfg_, grid_.hFacC, state_.salt, state_.gs,
                                  state_.gs_nm1, first, r1);
  if (cfg_.nonhydrostatic) {
    deferred += kernels::ab2_update(cfg_, wmask_, state_.w, state_.gw,
                                    state_.gw_nm1, first, r1);
  }
  if (cfg_.implicit_vertical_mixing) {
    deferred += kernels::implicit_vertical_diffusion(
        cfg_, grid_, state_.theta, grid_.hFacC, cfg_.diff_v, r1);
    deferred += kernels::implicit_vertical_diffusion(
        cfg_, grid_, state_.salt, grid_.hFacC, cfg_.diff_v, r1);
    deferred += kernels::implicit_vertical_diffusion(
        cfg_, grid_, state_.u, grid_.hFacW, cfg_.visc_v, r1);
    deferred += kernels::implicit_vertical_diffusion(
        cfg_, grid_, state_.v, grid_.hFacS, cfg_.visc_v, r1);
  }
  deferred += convective_adjustment(cfg_, grid_, state_.theta, r1);

  std::swap(state_.gu, state_.gu_nm1);
  std::swap(state_.gv, state_.gv_nm1);
  std::swap(state_.gt, state_.gt_nm1);
  std::swap(state_.gs, state_.gs_nm1);
  if (cfg_.nonhydrostatic) std::swap(state_.gw, state_.gw_nm1);

  const Microseconds t_rim = ctx.clock().now();
  ctx.compute(deferred, cfg_.fps_mflops);
  ps_flops += deferred;
  st.ps_flops = ps_flops;
  st.tps_us = ctx.clock().now() - t_ps;
  st.overlap_us = ctx.accounting().overlap_us - overlap0;
  if (ctx.tracer()) {
    if (cfg_.overlap_comm) {
      // The deferred flops charged here are the rim tendency pass plus
      // the state update (AB2 / implicit mixing / adjustment) kernels.
      cluster::SpanCounters rim_ctr;
      rim_ctr.flops = deferred;
      ctx.tracer()->record("ps_rim", cluster::SpanCat::kPhase, t_rim,
                           ctx.clock().now(), rim_ctr);
    }
    cluster::SpanCounters ctr;
    ctr.flops = ps_flops;
    ctr.overlap_us = st.overlap_us;
    ctx.tracer()->record("ps", cluster::SpanCat::kPhase, t_ps,
                         ctx.clock().now(), ctr);
  }

  // ======================= DS: diagnostic step =======================
  const Microseconds t_ds = ctx.clock().now();
  double ds_flops = 0;

  // rhs of eq. (3); the solver works with L = -A, so b = -rhs.
  ds_flops += kernels::ps_rhs(cfg_, grid_, state_.u, state_.v, rhs_, ri);
  for (int i = ri.i0; i < ri.i1; ++i) {
    for (int j = ri.j0; j < ri.j1; ++j) {
      auto& x = rhs_(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
      x = -x;
    }
  }

  const CgResult cg =
      cg_solve(comm_, dec_, op_, rhs_, state_.ps, cfg_.cg_tol,
               cfg_.cg_max_iter,
               cfg_.cg_jacobi ? CgPrecond::kJacobi : CgPrecond::kZonalLine);
  ds_flops += cg.flops;
  st.cg_iterations = cg.iterations;
  st.cg_residual = cg.residual;
  st.cg_converged = cg.converged;

  // Refresh the pressure halo, then project the velocities (including the
  // shared faces on the interior's high edge, which both neighbouring
  // tiles compute identically).
  exchange2d(comm_, dec_, state_.ps, 1);
  const kernels::Range rc{h, h + dec_.snx + 1, h, h + dec_.sny + 1};
  ds_flops += kernels::correct_velocity(cfg_, grid_, state_.ps, state_.u,
                                        state_.v, rc);
  kernels::apply_velocity_masks(grid_, state_.u, state_.v, r1);

  if (!cfg_.nonhydrostatic) {
    // Hydrostatic limit: w is diagnostic (eq. (2) vertically integrated).
    ds_flops += kernels::diagnose_w(cfg_, grid_, state_.u, state_.v,
                                    state_.w, ri);
  } else {
    // Non-hydrostatic pressure: a 3-D elliptic solve removes the
    // remaining 3-D divergence from (u, v, w*).
    ds_flops += kernels::nh_rhs(cfg_, grid_, state_.u, state_.v, state_.w,
                                rhs3_, ri);
    for (int i = ri.i0; i < ri.i1; ++i) {
      for (int j = ri.j0; j < ri.j1; ++j) {
        for (int k = 0; k < cfg_.nz; ++k) {
          auto& x = rhs3_(static_cast<std::size_t>(i),
                          static_cast<std::size_t>(j),
                          static_cast<std::size_t>(k));
          x = -x;
        }
      }
    }
    const Cg3Result cg3 = cg3_solve(comm_, dec_, *op3_, rhs3_,
                                    state_.phi_nh, cfg_.cg3_tol,
                                    cfg_.cg3_max_iter);
    ds_flops += cg3.flops;
    st.cg3_iterations = cg3.iterations;
    st.cg3_converged = cg3.converged;
    exchange3d(comm_, dec_, state_.phi_nh, 1);
    const kernels::Range rc3{h, h + dec_.snx + 1, h, h + dec_.sny + 1};
    ds_flops += kernels::correct_velocity_nh(cfg_, grid_, state_.phi_nh,
                                             state_.u, state_.v, state_.w,
                                             rc3);
    kernels::apply_velocity_masks(grid_, state_.u, state_.v, r1);
  }

  ctx.compute(ds_flops, cfg_.fds_mflops);
  st.ds_flops = ds_flops;
  st.tds_us = ctx.clock().now() - t_ds;
  if (ctx.tracer()) {
    cluster::SpanCounters ctr;
    ctr.flops = ds_flops;
    ctr.cg_iterations = st.cg_iterations + st.cg3_iterations;
    ctx.tracer()->record("ds", cluster::SpanCat::kPhase, t_ds,
                         ctx.clock().now(), ctr);
  }

  ++state_.step;
  ++obs_.steps;
  obs_.ps_flops += st.ps_flops;
  obs_.ds_flops += st.ds_flops;
  obs_.cg_iterations += st.cg_iterations;
  obs_.tps_us += st.tps_us;
  obs_.tps_exch_us += st.tps_exch_us;
  obs_.tps_interior_us += st.tps_interior_us;
  obs_.overlap_us += st.overlap_us;
  obs_.tds_us += st.tds_us;
  return st;
}

}  // namespace hyades::gcm
