#include "gcm/elliptic.hpp"

#include <algorithm>

namespace hyades::gcm {

EllipticOperator::EllipticOperator(const ModelConfig& cfg, const Decomp& dec,
                                   const TileGrid& grid)
    : dec_(dec) {
  const int ex = dec.ext_x();
  const int ey = dec.ext_y();
  wW_ = Array2D<double>(static_cast<std::size_t>(ex),
                        static_cast<std::size_t>(ey), 0.0);
  wS_ = Array2D<double>(static_cast<std::size_t>(ex),
                        static_cast<std::size_t>(ey), 0.0);
  diag_ = Array2D<double>(static_cast<std::size_t>(ex),
                          static_cast<std::size_t>(ey), 0.0);

  // Face depths H_f = sum_k hFac_f dz_k; the same face fractions used by
  // the velocity correction, which makes the projection exact.
  for (int i = 0; i < ex; ++i) {
    for (int j = 0; j < ey; ++j) {
      double hw = 0.0, hs = 0.0;
      for (int k = 0; k < cfg.nz; ++k) {
        hw += grid.hFacW(static_cast<std::size_t>(i),
                         static_cast<std::size_t>(j),
                         static_cast<std::size_t>(k)) *
              grid.dzf[static_cast<std::size_t>(k)];
        hs += grid.hFacS(static_cast<std::size_t>(i),
                         static_cast<std::size_t>(j),
                         static_cast<std::size_t>(k)) *
              grid.dzf[static_cast<std::size_t>(k)];
      }
      wW_(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          hw * grid.dyC / grid.dxC[static_cast<std::size_t>(j)];
      wS_(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          hs * grid.dxS[static_cast<std::size_t>(j)] / grid.dyC;
    }
  }

  for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
    for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
      const auto si = static_cast<std::size_t>(i);
      const auto sj = static_cast<std::size_t>(j);
      if (grid.depth(si, sj) <= 0) continue;  // land column
      diag_(si, sj) = wW_(si, sj) + wW_(si + 1, sj) + wS_(si, sj) +
                      wS_(si, sj + 1);
    }
  }
  ybuf_.assign(static_cast<std::size_t>(dec.sny), 0.0);
  factor_lines();
}

void EllipticOperator::factor_lines() {
  const int ex = dec_.ext_x();
  const int ey = dec_.ext_y();
  cp_ = Array2D<double>(static_cast<std::size_t>(ex),
                        static_cast<std::size_t>(ey), 0.0);
  inv_ = Array2D<double>(static_cast<std::size_t>(ex),
                         static_cast<std::size_t>(ey), 0.0);
  const int h = dec_.halo;
  for (int j = h; j < h + dec_.sny; ++j) {
    const auto sj = static_cast<std::size_t>(j);
    double prev_cp = 0.0;
    bool have_prev = false;
    for (int i = h; i < h + dec_.snx; ++i) {
      const auto si = static_cast<std::size_t>(i);
      const double b = diag_(si, sj);
      if (b <= 0) {  // land: decoupled identity row
        cp_(si, sj) = 0.0;
        inv_(si, sj) = 0.0;
        have_prev = false;
        continue;
      }
      // Sub/super couplings within the tile row; couplings into the halo
      // (another tile, or land) are dropped from the off-diagonals.
      const double a =
          (have_prev && i > h) ? -wW_(si, sj) : 0.0;
      const double c =
          (i + 1 < h + dec_.snx) ? -wW_(si + 1, sj) : 0.0;
      // Guard against an exactly-singular block (a fully isolated wet
      // zonal strip would make M a pure Neumann tridiagonal).
      const double denom =
          std::max(b - a * (have_prev ? prev_cp : 0.0), 1e-12 * b);
      inv_(si, sj) = 1.0 / denom;
      cp_(si, sj) = c / denom;
      prev_cp = cp_(si, sj);
      have_prev = true;
    }
  }

  // Meridional (y-direction) factors.
  cpy_ = Array2D<double>(static_cast<std::size_t>(ex),
                         static_cast<std::size_t>(ey), 0.0);
  invy_ = Array2D<double>(static_cast<std::size_t>(ex),
                          static_cast<std::size_t>(ey), 0.0);
  for (int i = h; i < h + dec_.snx; ++i) {
    const auto si = static_cast<std::size_t>(i);
    double prev_cp = 0.0;
    bool have_prev = false;
    for (int j = h; j < h + dec_.sny; ++j) {
      const auto sj = static_cast<std::size_t>(j);
      const double b = diag_(si, sj);
      if (b <= 0) {
        cpy_(si, sj) = 0.0;
        invy_(si, sj) = 0.0;
        have_prev = false;
        continue;
      }
      const double a = (have_prev && j > h) ? -wS_(si, sj) : 0.0;
      const double c = (j + 1 < h + dec_.sny) ? -wS_(si, sj + 1) : 0.0;
      const double denom =
          std::max(b - a * (have_prev ? prev_cp : 0.0), 1e-12 * b);
      invy_(si, sj) = 1.0 / denom;
      cpy_(si, sj) = c / denom;
      prev_cp = cpy_(si, sj);
      have_prev = true;
    }
  }
}

double EllipticOperator::apply(const Array2D<double>& p,
                               Array2D<double>& out) const {
  double flops = 0;
  for (int i = dec_.halo; i < dec_.halo + dec_.snx; ++i) {
    for (int j = dec_.halo; j < dec_.halo + dec_.sny; ++j) {
      const auto si = static_cast<std::size_t>(i);
      const auto sj = static_cast<std::size_t>(j);
      if (diag_(si, sj) <= 0) {
        out(si, sj) = 0.0;
        continue;
      }
      // L = -A: diag * p_c - sum w_f p_nb.
      out(si, sj) = diag_(si, sj) * p(si, sj) -
                    wW_(si, sj) * p(si - 1, sj) -
                    wW_(si + 1, sj) * p(si + 1, sj) -
                    wS_(si, sj) * p(si, sj - 1) -
                    wS_(si, sj + 1) * p(si, sj + 1);
      flops += 9.0;
    }
  }
  return flops;
}

double EllipticOperator::precondition(const Array2D<double>& r,
                                      Array2D<double>& z) const {
  // Thomas solves per line in both directions (restarting at land
  // breaks, where rows are decoupled identity blocks), averaged.
  double flops = 0;
  const int h = dec_.halo;

  // ---- zonal pass: z holds Mx^-1 r -------------------------------------
  for (int j = h; j < h + dec_.sny; ++j) {
    const auto sj = static_cast<std::size_t>(j);
    bool have_prev = false;
    double prev_z = 0.0;
    for (int i = h; i < h + dec_.snx; ++i) {
      const auto si = static_cast<std::size_t>(i);
      if (diag_(si, sj) <= 0) {
        z(si, sj) = 0.0;
        have_prev = false;
        continue;
      }
      const double a = (have_prev && i > h) ? -wW_(si, sj) : 0.0;
      z(si, sj) = (r(si, sj) - a * prev_z) * inv_(si, sj);
      prev_z = z(si, sj);
      have_prev = true;
      flops += 3.0;
    }
    bool have_next = false;
    double next_z = 0.0;
    for (int i = h + dec_.snx - 1; i >= h; --i) {
      const auto si = static_cast<std::size_t>(i);
      if (diag_(si, sj) <= 0) {
        have_next = false;
        continue;
      }
      if (have_next) {
        z(si, sj) -= cp_(si, sj) * next_z;
        flops += 2.0;
      }
      next_z = z(si, sj);
      have_next = true;
    }
  }

  // ---- meridional pass, accumulated: z = (Mx^-1 r + My^-1 r) / 2 -------
  for (int i = h; i < h + dec_.snx; ++i) {
    const auto si = static_cast<std::size_t>(i);
    bool have_prev = false;
    double prev_y = 0.0;
    double* ybuf = ybuf_.data();
    for (int j = h; j < h + dec_.sny; ++j) {
      const auto sj = static_cast<std::size_t>(j);
      const int jj = j - h;
      if (diag_(si, sj) <= 0) {
        ybuf[jj] = 0.0;
        have_prev = false;
        continue;
      }
      const double a = (have_prev && j > h) ? -wS_(si, sj) : 0.0;
      ybuf[jj] = (r(si, sj) - a * prev_y) * invy_(si, sj);
      prev_y = ybuf[jj];
      have_prev = true;
      flops += 3.0;
    }
    bool have_next = false;
    double next_y = 0.0;
    for (int j = h + dec_.sny - 1; j >= h; --j) {
      const auto sj = static_cast<std::size_t>(j);
      const int jj = j - h;
      if (diag_(si, sj) <= 0) {
        have_next = false;
        continue;
      }
      double yj = ybuf[jj];
      if (have_next) {
        yj -= cpy_(si, sj) * next_y;
        flops += 2.0;
      }
      next_y = yj;
      have_next = true;
      z(si, sj) = 0.5 * (z(si, sj) + yj);
      flops += 2.0;
    }
  }
  return flops;
}

double EllipticOperator::precondition_jacobi(const Array2D<double>& r,
                                             Array2D<double>& z) const {
  double flops = 0;
  for (int i = dec_.halo; i < dec_.halo + dec_.snx; ++i) {
    for (int j = dec_.halo; j < dec_.halo + dec_.sny; ++j) {
      const auto si = static_cast<std::size_t>(i);
      const auto sj = static_cast<std::size_t>(j);
      z(si, sj) = diag_(si, sj) > 0 ? r(si, sj) / diag_(si, sj) : 0.0;
      flops += 1.0;
    }
  }
  return flops;
}

}  // namespace hyades::gcm
