#include "gcm/tile_ckpt.hpp"

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "arctic/crc.hpp"

namespace hyades::gcm::tile_ckpt {

namespace {
// "HYADES03": version 3 adds the self-describing header -- payload byte
// count and a CRC-32 (the same arctic polynomial the fabric uses end to
// end) -- so a truncated or bit-flipped file fails fast at load instead
// of silently seeding a diverged restart.
constexpr std::uint64_t kCheckpointMagic = 0x4859414445533033ull;

std::function<void(const std::string&)>& corrupt_hook() {
  static std::function<void(const std::string&)> hook;
  return hook;
}

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

std::string hex_u64(std::uint64_t v) {
  std::ostringstream ss;
  ss << "0x" << std::hex << v;
  return ss.str();
}

struct ConfigWord {
  const char* name;
  std::uint64_t value;
};

std::array<ConfigWord, 7> config_words(const ModelConfig& cfg) {
  return {{{"nx", static_cast<std::uint64_t>(cfg.nx)},
           {"ny", static_cast<std::uint64_t>(cfg.ny)},
           {"nz", static_cast<std::uint64_t>(cfg.nz)},
           {"px", static_cast<std::uint64_t>(cfg.px)},
           {"py", static_cast<std::uint64_t>(cfg.py)},
           {"halo", static_cast<std::uint64_t>(cfg.halo)},
           {"isomorph",
            static_cast<std::uint64_t>(cfg.isomorph == Isomorph::kOcean ? 0
                                                                        : 1)}}};
}

// The payload field order is part of the format: the prognostic fields,
// the Adams-Bashforth n-1 tendencies, the non-hydrostatic pressure, and
// the surface pressure.
std::array<const Array3D<double>*, 11> payload_fields(const State& s) {
  return {&s.u,      &s.v,      &s.w,      &s.theta,  &s.salt, &s.gu_nm1,
          &s.gv_nm1, &s.gt_nm1, &s.gs_nm1, &s.gw_nm1, &s.phi_nh};
}

std::array<Array3D<double>*, 11> payload_fields(State& s) {
  return {&s.u,      &s.v,      &s.w,      &s.theta,  &s.salt, &s.gu_nm1,
          &s.gv_nm1, &s.gt_nm1, &s.gs_nm1, &s.gw_nm1, &s.phi_nh};
}

// Remove the temporary and rethrow-style throw: every save failure path
// funnels through here so a failed publish never strands a ".tmp".
[[noreturn]] void fail_save(const std::string& tmp, const std::string& msg) {
  std::remove(tmp.c_str());
  throw std::runtime_error(msg);
}

}  // namespace

std::string slot_prefix(const std::string& prefix, int slot) {
  return prefix + (slot == 0 ? ".a" : ".b");
}

std::string rank_path(const std::string& prefix, int group_rank) {
  return prefix + ".rank" + std::to_string(group_rank);
}

void save(const std::string& path, const ModelConfig& cfg, const State& s) {
  // Serialize the state payload in memory first, so the header can carry
  // its byte count and CRC-32.
  std::vector<std::uint8_t> payload;
  const auto append = [&payload](const double* p, std::size_t n) {
    const auto* b = reinterpret_cast<const std::uint8_t*>(p);
    payload.insert(payload.end(), b, b + n * sizeof(double));
  };
  for (const Array3D<double>* f : payload_fields(s)) {
    append(f->data(), f->size());
  }
  append(s.ps.data(), s.ps.size());
  const std::uint32_t crc = arctic::crc32(payload);

  // Atomic publish: write the whole file under a temporary name, verify
  // it, then rename onto the real path.  A crash mid-write leaves the
  // previous complete checkpoint in place, never a half-written file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) fail_save(tmp, "save_checkpoint: cannot open " + tmp);
    write_u64(os, kCheckpointMagic);
    for (const ConfigWord& w : config_words(cfg)) write_u64(os, w.value);
    write_u64(os, static_cast<std::uint64_t>(s.step));
    write_u64(os, static_cast<std::uint64_t>(payload.size()));
    write_u64(os, static_cast<std::uint64_t>(crc));
    os.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
    os.close();
    if (!os) fail_save(tmp, "save_checkpoint: write failed: " + tmp);
  }
  if (corrupt_hook()) corrupt_hook()(tmp);
  // Post-write verify: re-read the temporary and check header + CRC
  // before publishing.  A full disk, a torn write, or (in tests) the
  // corrupt hook all surface here -- and the temporary is removed.
  {
    std::ifstream is(tmp, std::ios::binary);
    if (!is) fail_save(tmp, "save_checkpoint: cannot re-read " + tmp);
    const std::uint64_t magic = read_u64(is);
    if (!is || magic != kCheckpointMagic) {
      fail_save(tmp, "save_checkpoint: verify failed (bad magic) in " + tmp);
    }
    for (int i = 0; i < 7; ++i) (void)read_u64(is);  // config words
    (void)read_u64(is);                              // step
    const std::uint64_t bytes = read_u64(is);
    const std::uint64_t crc_stored = read_u64(is);
    if (!is || bytes != payload.size()) {
      fail_save(tmp,
                "save_checkpoint: verify failed (truncated header) in " + tmp);
    }
    std::vector<std::uint8_t> back(payload.size());
    is.read(reinterpret_cast<char*>(back.data()),
            static_cast<std::streamsize>(back.size()));
    if (!is || static_cast<std::uint64_t>(is.gcount()) != payload.size()) {
      fail_save(tmp,
                "save_checkpoint: verify failed (truncated payload) in " + tmp);
    }
    const std::uint32_t crc_back = arctic::crc32(back);
    if (crc_back != crc || crc_back != static_cast<std::uint32_t>(crc_stored)) {
      fail_save(tmp, "save_checkpoint: verify failed (CRC mismatch, wrote " +
                         hex_u64(crc) + ", read back " + hex_u64(crc_back) +
                         ") in " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    fail_save(tmp,
              "save_checkpoint: cannot rename " + tmp + " onto " + path);
  }
}

void load(const std::string& path, const ModelConfig& cfg, State* s) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_checkpoint: cannot open " + path);
  const std::uint64_t magic = read_u64(is);
  if (!is || magic != kCheckpointMagic) {
    throw std::runtime_error("load_checkpoint: bad magic in " + path +
                             " (got " + hex_u64(magic) + ", want HYADES03 " +
                             hex_u64(kCheckpointMagic) + ")");
  }
  for (const ConfigWord& w : config_words(cfg)) {
    const std::uint64_t got = read_u64(is);
    if (!is) {
      throw std::runtime_error("load_checkpoint: truncated header in " + path);
    }
    if (got != w.value) {
      throw std::runtime_error(
          "load_checkpoint: configuration mismatch in " + path + ": " +
          w.name + " is " + std::to_string(got) + " in the file, model has " +
          std::to_string(w.value));
    }
  }
  const std::uint64_t step = read_u64(is);
  const std::uint64_t payload_bytes = read_u64(is);
  const std::uint64_t crc_stored = read_u64(is);
  if (!is) {
    throw std::runtime_error("load_checkpoint: truncated header in " + path);
  }

  std::size_t expect_bytes = 0;
  for (const Array3D<double>* f : payload_fields(*s)) {
    expect_bytes += f->size() * sizeof(double);
  }
  expect_bytes += s->ps.size() * sizeof(double);
  if (payload_bytes != expect_bytes) {
    throw std::runtime_error(
        "load_checkpoint: payload size mismatch in " + path + ": header says " +
        std::to_string(payload_bytes) + " bytes, model state needs " +
        std::to_string(expect_bytes));
  }

  std::vector<std::uint8_t> payload(payload_bytes);
  is.read(reinterpret_cast<char*>(payload.data()),
          static_cast<std::streamsize>(payload.size()));
  if (!is || static_cast<std::uint64_t>(is.gcount()) != payload_bytes) {
    throw std::runtime_error(
        "load_checkpoint: truncated " + path + " (payload has " +
        std::to_string(is.gcount() > 0 ? is.gcount() : 0) + " of " +
        std::to_string(payload_bytes) + " bytes)");
  }
  const std::uint32_t crc = arctic::crc32(payload);
  if (crc != static_cast<std::uint32_t>(crc_stored)) {
    throw std::runtime_error(
        "load_checkpoint: CRC mismatch in " + path + " (stored " +
        hex_u64(crc_stored) + ", computed " + hex_u64(crc) +
        "): the checkpoint is corrupt");
  }

  // Header and payload verified; only now touch the model state.
  s->step = static_cast<long>(step);
  std::size_t off = 0;
  const auto extract = [&payload, &off](double* p, std::size_t n) {
    std::memcpy(p, payload.data() + off, n * sizeof(double));
    off += n * sizeof(double);
  };
  for (Array3D<double>* f : payload_fields(*s)) {
    extract(f->data(), f->size());
  }
  extract(s->ps.data(), s->ps.size());
}

bool verify(const std::string& path, const ModelConfig& cfg) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  const std::uint64_t magic = read_u64(is);
  if (!is || magic != kCheckpointMagic) return false;
  for (const ConfigWord& w : config_words(cfg)) {
    const std::uint64_t got = read_u64(is);
    if (!is || got != w.value) return false;
  }
  (void)read_u64(is);  // step
  const std::uint64_t payload_bytes = read_u64(is);
  const std::uint64_t crc_stored = read_u64(is);
  if (!is) return false;
  std::vector<std::uint8_t> payload(payload_bytes);
  is.read(reinterpret_cast<char*>(payload.data()),
          static_cast<std::streamsize>(payload.size()));
  if (!is || static_cast<std::uint64_t>(is.gcount()) != payload_bytes) {
    return false;
  }
  return arctic::crc32(payload) == static_cast<std::uint32_t>(crc_stored);
}

long peek_step(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("checkpoint_step: cannot open " + path);
  }
  const std::uint64_t magic = read_u64(is);
  if (!is || magic != kCheckpointMagic) {
    throw std::runtime_error("checkpoint_step: bad magic in " + path +
                             " (got " + hex_u64(magic) + ", want HYADES03 " +
                             hex_u64(kCheckpointMagic) + ")");
  }
  for (int i = 0; i < 7; ++i) (void)read_u64(is);  // config words
  const std::uint64_t step = read_u64(is);
  if (!is) {
    throw std::runtime_error("checkpoint_step: truncated header in " + path);
  }
  return static_cast<long>(step);
}

SlotScan scan_slot(const std::string& prefix, int slot, int nranks) {
  SlotScan scan;
  long step = -1;
  for (int r = 0; r < nranks; ++r) {
    long s = -1;
    try {
      s = peek_step(rank_path(slot_prefix(prefix, slot), r));
    } catch (const std::runtime_error&) {
      return scan;  // missing or unreadable file
    }
    if (r == 0) {
      step = s;
    } else if (s != step) {
      return scan;  // mixed steps: abort caught the slot mid-rotation
    }
  }
  scan.consistent = step >= 0;
  scan.step = step;
  return scan;
}

TileHit newest_rank_ckpt(const std::string& prefix, int rank, long max_step) {
  TileHit best;
  for (int slot = 0; slot < 2; ++slot) {
    const std::string path = rank_path(slot_prefix(prefix, slot), rank);
    long step = -1;
    try {
      step = peek_step(path);
    } catch (const std::runtime_error&) {
      continue;  // slot never written (or torn): not a candidate
    }
    if (step <= max_step && step > best.step) {
      best.path = path;
      best.step = step;
    }
  }
  return best;
}

void remove_slots(const std::string& prefix, int nranks) {
  for (int slot = 0; slot < 2; ++slot) {
    for (int r = 0; r < nranks; ++r) {
      std::remove(rank_path(slot_prefix(prefix, slot), r).c_str());
    }
  }
}

void set_test_corrupt_hook(std::function<void(const std::string&)> hook) {
  corrupt_hook() = std::move(hook);
}

}  // namespace hyades::gcm::tile_ckpt
