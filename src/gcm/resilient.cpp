#include "gcm/resilient.hpp"

#include <cstdio>
#include <stdexcept>

#include "cluster/membership.hpp"
#include "comm/comm.hpp"
#include "gcm/model.hpp"
#include "support/logging.hpp"

namespace hyades::gcm {

namespace {

std::string slot_prefix(const std::string& prefix, int slot) {
  return prefix + (slot == 0 ? ".a" : ".b");
}

// A slot is usable only when every rank's file exists, parses, and
// reports the same step -- an epoch abort mid-rotation leaves the slot
// it was rewriting mixed, and the scan rejects it.
struct SlotScan {
  bool consistent = false;
  long step = -1;
};

SlotScan scan_slot(const std::string& prefix, int nranks) {
  SlotScan scan;
  long step = -1;
  for (int r = 0; r < nranks; ++r) {
    long s = -1;
    try {
      s = Model::checkpoint_step(Model::checkpoint_path(prefix, r));
    } catch (const std::runtime_error&) {
      return scan;  // missing or unreadable file
    }
    if (r == 0) {
      step = s;
    } else if (s != step) {
      return scan;  // mixed steps
    }
  }
  scan.consistent = step >= 0;
  scan.step = step;
  return scan;
}

}  // namespace

ResilientStats run_resilient(cluster::Runtime& rt, const ModelConfig& mcfg,
                             int steps, const ResilientConfig& rcfg) {
  if (rcfg.ckpt_prefix.empty()) {
    throw std::invalid_argument("run_resilient: ckpt_prefix is required");
  }
  if (rcfg.ckpt_every < 1) {
    throw std::invalid_argument("run_resilient: ckpt_every must be >= 1");
  }
  if (rcfg.max_restarts < 0) {
    throw std::invalid_argument("run_resilient: max_restarts must be >= 0");
  }
  const int nranks = rt.config().nranks();
  if (rcfg.tracers != nullptr &&
      rcfg.tracers->size() < static_cast<std::size_t>(nranks)) {
    throw std::invalid_argument("run_resilient: tracer list shorter than ranks");
  }

  // Clear both slots up front: a stale checkpoint left by an earlier run
  // (possibly of a different configuration) must never be mistaken for
  // this run's restart point.
  for (int slot = 0; slot < 2; ++slot) {
    for (int r = 0; r < nranks; ++r) {
      std::remove(
          Model::checkpoint_path(slot_prefix(rcfg.ckpt_prefix, slot), r)
              .c_str());
    }
  }

  ResilientStats st;
  Microseconds clock_base = 0;  // virtual start time of a restarted epoch
  std::string load_prefix;      // slot to restart from; empty = fresh start

  for (int epoch = 0;; ++epoch) {
    rt.set_epoch(epoch);
    rt.bus().reset_down();

    try {
      rt.run([&](cluster::RankContext& ctx) {
        if (rcfg.tracers != nullptr) {
          ctx.set_tracer(
              &(*rcfg.tracers)[static_cast<std::size_t>(ctx.rank())]);
        }
        try {
          comm::Comm comm(ctx);
          Model model(mcfg, comm);
          if (load_prefix.empty()) {
            model.initialize(rcfg.init_seed);
            // Durable step-0 checkpoint BEFORE the first communication:
            // even a kill firing in the first step restarts from a
            // complete, mutually consistent slot.
            model.save_checkpoint(slot_prefix(rcfg.ckpt_prefix, 0));
          } else {
            model.load_checkpoint(load_prefix);
            const cluster::FaultPlan* plan = ctx.faults();
            const Microseconds began = ctx.clock().now();
            ctx.clock().advance_to(clock_base);
            ctx.charge_restart(plan != nullptr ? plan->restart_cost_us : 0.0);
            if (ctx.tracer() != nullptr) {
              ctx.tracer()->record("restart", cluster::SpanCat::kNodeDown,
                                   began, ctx.clock().now());
            }
          }
          while (model.state().step < steps) {
            (void)model.step();
            const long s = model.state().step;
            if (s < steps && s % rcfg.ckpt_every == 0) {
              // The barrier makes the rotation a collective cut at step
              // s; double buffering covers an abort mid-rotation.
              model.comm().barrier();
              const int slot = static_cast<int>((s / rcfg.ckpt_every) % 2);
              model.save_checkpoint(slot_prefix(rcfg.ckpt_prefix, slot));
            }
          }
          if (rcfg.on_complete) rcfg.on_complete(ctx, model);
        } catch (const cluster::RankFailStop&) {
          // This rank's node fail-stopped at a communication point: go
          // silent.  Wake an SMP sibling blocked on the shared barrier;
          // survivors detect the silence through the membership service.
          if (ctx.procs_per_smp() > 1) {
            rt.smp_shared(ctx.smp()).barrier.abort();
          }
        } catch (const cluster::NodeDownError&) {
          throw;  // collective epoch abort; Runtime::run surfaces it first
        } catch (const std::runtime_error&) {
          // A dying sibling aborts the shared SMP barrier; ranks of the
          // killed node treat that collateral as their own death.  Any
          // other runtime_error on a surviving node is a real failure.
          cluster::Membership* ms = ctx.membership();
          if (ms != nullptr && ms->scheduled_kill(ctx.rank()) != nullptr) {
            return;
          }
          throw;
        }
      });
      st.steps = steps;
      return st;
    } catch (const cluster::NodeDownError& e) {
      st.verdicts.push_back(e.verdict);
      if (++st.restarts > rcfg.max_restarts) {
        throw RestartExhausted(st.restarts, e.verdict);
      }
      const SlotScan a = scan_slot(slot_prefix(rcfg.ckpt_prefix, 0), nranks);
      const SlotScan b = scan_slot(slot_prefix(rcfg.ckpt_prefix, 1), nranks);
      if (!a.consistent && !b.consistent) {
        throw std::runtime_error(
            "run_resilient: no consistent checkpoint slot to restart from");
      }
      const bool use_a = a.consistent && (!b.consistent || a.step >= b.step);
      load_prefix = slot_prefix(rcfg.ckpt_prefix, use_a ? 0 : 1);
      st.restart_steps.push_back(use_a ? a.step : b.step);
      const cluster::FaultPlan* plan = rt.config().faults;
      clock_base = e.verdict.detected_us +
                   (plan != nullptr ? plan->restart_cost_us : 0.0);
      log_warn() << "run_resilient: epoch " << epoch << " aborted (rank "
                 << e.verdict.rank << " down at t=" << e.verdict.detected_us
                 << " us); restarting from step "
                 << st.restart_steps.back();
    }
  }
}

}  // namespace hyades::gcm
