#include "gcm/resilient.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>

#include "cluster/membership.hpp"
#include "comm/comm.hpp"
#include "gcm/decomp.hpp"
#include "gcm/model.hpp"
#include "gcm/tile_ckpt.hpp"
#include "support/logging.hpp"

namespace hyades::gcm {

const char* to_string(RecoveryRung rung) {
  switch (rung) {
    case RecoveryRung::kMigrate:
      return "migrate";
    case RecoveryRung::kMigrateOlderCut:
      return "migrate-older-cut";
    case RecoveryRung::kEpochRestart:
      return "epoch-restart";
  }
  return "?";
}

namespace {

// Durable slot of the committed cut at step `s`: the on-disk store is
// two alternating slots regardless of ring depth (a property of the
// HYADES03 double-buffered format, not of the in-memory ring).
int durable_slot(long s, int ckpt_every) {
  return static_cast<int>((s / ckpt_every) % 2);
}

// In-memory ring slot of the cut at step `s` for a ring of `depth`
// committed snapshots: consecutive cuts rotate through the depth.
int ring_slot(long s, int ckpt_every, int depth) {
  return static_cast<int>((s / ckpt_every) % depth);
}

// A chaos soak recovers hundreds of times per process: the per-epoch
// recovery warnings must not flood the log.  Burst covers interactive
// runs (every recovery of a normal campaign still prints).
RateLimiter g_recovery_warn_limiter(/*burst=*/6, /*every=*/64);

// One committed in-memory snapshot of a rank's tile, written at every
// checkpoint cut in migrate mode.  `ring_depth` of these per rank form
// the ring that lets survivors rewind without touching disk: because
// each cut's save sits between collective barriers, no two live ranks
// can be more than one cut apart, so a two-deep ring always covers the
// newest recovery step every peer can reach -- deeper rings keep older
// cuts live for the older-cut ladder rung.
struct Snap {
  long step = -1;
  State state;
};

long newest_ring_step(const std::vector<Snap>& rr) {
  long newest = -1;
  for (const Snap& s : rr) newest = std::max(newest, s.step);
  return newest;
}

bool ring_has(const std::vector<Snap>& rr, long step) {
  for (const Snap& s : rr) {
    if (s.step == step) return true;
  }
  return false;
}

}  // namespace

ResilientStats run_resilient(cluster::Runtime& rt, const ModelConfig& mcfg,
                             int steps, const ResilientConfig& rcfg) {
  if (rcfg.ckpt_prefix.empty()) {
    throw std::invalid_argument("run_resilient: ckpt_prefix is required");
  }
  if (rcfg.ckpt_every < 1) {
    throw std::invalid_argument("run_resilient: ckpt_every must be >= 1");
  }
  if (rcfg.max_restarts < 0) {
    throw std::invalid_argument("run_resilient: max_restarts must be >= 0");
  }
  if (rcfg.ring_depth < 2) {
    throw std::invalid_argument(
        "run_resilient: ring_depth must be >= 2 (barriers allow one cut of "
        "skew between live ranks)");
  }
  const int nranks = rt.config().nranks();
  if (rcfg.tracers != nullptr &&
      rcfg.tracers->size() < static_cast<std::size_t>(nranks)) {
    throw std::invalid_argument("run_resilient: tracer list shorter than ranks");
  }

  // Clear both slots up front: a stale checkpoint left by an earlier run
  // (possibly of a different configuration) must never be mistaken for
  // this run's restart point.
  tile_ckpt::remove_slots(rcfg.ckpt_prefix, nranks);

  const bool migrate = rcfg.recovery == RecoveryMode::kMigrate;
  const cluster::FaultPlan* plan = rt.config().faults;
  const int ppp = rt.config().procs_per_smp;
  const int smp_count = rt.config().smp_count;

  // ---- driver-held recovery state -------------------------------------
  // Everything below is written by the driver between epochs or by a
  // rank thread in its own slot during an epoch; thread create/join
  // orders every cross-thread access.
  std::vector<std::vector<Snap>> ring;  // per-rank committed snapshots
  if (migrate) {
    ring.assign(static_cast<std::size_t>(nranks),
                std::vector<Snap>(static_cast<std::size_t>(rcfg.ring_depth)));
  }
  std::vector<int> host_map;  // evolving placement baseline; empty=identity
  std::set<int> dead_smps;    // boards lost and not yet replaced by a join
  int adopt_rr = 0;           // round-robin fallback cursor for adoption

  const auto host_of = [&](int r) {
    return host_map.empty() ? r / ppp : host_map[static_cast<std::size_t>(r)];
  };

  // Resumed-epoch instructions for the rank bodies.
  long resume_step = -1;  // -1 = fresh start
  Microseconds clock_base = 0;
  std::string load_prefix;  // epoch-restart slot to reload
  std::vector<char> adopt_load(static_cast<std::size_t>(nranks), 0);
  std::vector<std::string> adopt_path(static_cast<std::size_t>(nranks));
  // Ladder outcome of the recovery being resumed: the rung it landed on
  // (names the kNodeDown span) and the rungs fallen getting there
  // (charged to every resuming rank's accounting).
  RecoveryRung pending_rung = RecoveryRung::kMigrate;
  int pending_downgrades = 0;

  // Recovery-time probe: each rank records the virtual clock after its
  // first completed step of an epoch; the driver turns the max into the
  // per-event recovery_us (detection -> everyone stepping again).
  Microseconds pending_detect = -1.0;
  std::vector<Microseconds> probe(static_cast<std::size_t>(nranks), 0.0);

  // Per-epoch completion flags: a rank marks its slot after its last
  // step.  When a kill takes down every board at once there is no
  // survivor left to escalate a verdict -- every rank fail-stops
  // silently and run() returns cleanly with nothing computed.  The
  // driver detects that (no rank completed) and synthesizes the
  // coalesced verdict the survivors would have published.
  std::vector<char> completed(static_cast<std::size_t>(nranks), 0);

  ResilientStats st;

  const auto absorb_counts = [&] {
    for (const cluster::Accounting& a : rt.accounting()) {
      st.migrations += static_cast<int>(a.migrations);
      st.rebalances += static_cast<int>(a.rebalances);
    }
  };
  const auto record_recovery = [&] {
    if (pending_detect < 0) return;
    Microseconds mx = pending_detect;
    for (Microseconds p : probe) mx = std::max(mx, p);
    st.recovery_us.push_back(mx - pending_detect);
    pending_detect = -1.0;
  };

  // ---- the degradation ladder's rungs ---------------------------------

  // Epoch restart: pick the newest consistent AND deep-verified durable
  // slot for a whole-world reload.  Consistency (same step on every
  // rank) comes from the header scan; a corrupt payload passes the
  // header, so every rank file of a candidate slot is CRC-verified
  // before committing -- a slot with rotted bits degrades to the other
  // slot, recorded as a failed attempt.  Returns false (with the
  // attempts recorded) when neither slot is usable.
  const auto plan_epoch_restart = [&](RecoveryEvent* ev) -> bool {
    const tile_ckpt::SlotScan scans[2] = {
        tile_ckpt::scan_slot(rcfg.ckpt_prefix, 0, nranks),
        tile_ckpt::scan_slot(rcfg.ckpt_prefix, 1, nranks)};
    std::vector<int> order;
    for (int slot : {0, 1}) {
      if (scans[slot].consistent) order.push_back(slot);
    }
    std::sort(order.begin(), order.end(),
              [&](int x, int y) { return scans[x].step > scans[y].step; });
    for (int slot : order) {
      const std::string sp = tile_ckpt::slot_prefix(rcfg.ckpt_prefix, slot);
      int bad_rank = -1;
      for (int r = 0; r < nranks; ++r) {
        if (!tile_ckpt::verify(tile_ckpt::rank_path(sp, r), mcfg)) {
          bad_rank = r;
          break;
        }
      }
      if (bad_rank >= 0) {
        ev->attempts.push_back(
            {RecoveryRung::kEpochRestart, scans[slot].step, false,
             "slot " + std::to_string(slot) + " at step " +
                 std::to_string(scans[slot].step) + ": rank " +
                 std::to_string(bad_rank) +
                 " durable checkpoint failed deep verification"});
        continue;
      }
      load_prefix = sp;
      resume_step = scans[slot].step;
      ev->attempts.push_back(
          {RecoveryRung::kEpochRestart, resume_step, true, ""});
      return true;
    }
    if (order.empty()) {
      ev->attempts.push_back(
          {RecoveryRung::kEpochRestart, -1, false,
           "no consistent checkpoint slot to restart from"});
    }
    return false;
  };

  for (int epoch = 0;; ++epoch) {
    rt.set_epoch(epoch);
    rt.bus().reset_down();
    rt.set_host_map(host_map);
    completed.assign(static_cast<std::size_t>(nranks), 0);

    try {
      rt.run([&](cluster::RankContext& ctx) {
        const int rank = ctx.rank();
        const auto ri = static_cast<std::size_t>(rank);
        if (rcfg.tracers != nullptr) {
          ctx.set_tracer(&(*rcfg.tracers)[ri]);
        }
        try {
          comm::Comm comm(ctx);
          Model model(mcfg, comm);
          if (resume_step < 0) {
            model.initialize(rcfg.init_seed);
            // Durable step-0 checkpoint BEFORE the first communication:
            // even a kill firing in the first step restarts from a
            // complete, mutually consistent slot.
            model.save_checkpoint(tile_ckpt::slot_prefix(rcfg.ckpt_prefix, 0));
            if (migrate) {
              // ring_slot(0) == 0 at any depth.
              ring[ri][0].step = 0;
              ring[ri][0].state = model.state();
            }
          } else if (!migrate || !load_prefix.empty()) {
            // Epoch restart: the recovery mode's only rung, or the
            // migrate ladder's last resort (the driver cleared the
            // rings and reset the placement; the boards are back).
            model.load_checkpoint(load_prefix);
            const Microseconds began = ctx.clock().now();
            ctx.clock().advance_to(clock_base);
            ctx.charge_restart(plan != nullptr ? plan->restart_cost_us : 0.0);
            if (pending_downgrades > 0) {
              ctx.note_downgrades(pending_downgrades);
            }
            if (ctx.tracer() != nullptr) {
              ctx.tracer()->record("restart", cluster::SpanCat::kNodeDown,
                                   began, ctx.clock().now());
            }
            if (migrate) {
              const auto slot = static_cast<std::size_t>(ring_slot(
                  resume_step, rcfg.ckpt_every, rcfg.ring_depth));
              ring[ri][slot].step = resume_step;
              ring[ri][slot].state = model.state();
            }
          } else {
            // Live-migration resume: adopters of dead tiles re-read the
            // newest durable per-tile checkpoint and pay the migration
            // cost; survivors rewind from the in-memory ring for free.
            const auto slot = static_cast<std::size_t>(
                ring_slot(resume_step, rcfg.ckpt_every, rcfg.ring_depth));
            if (adopt_load[ri] != 0) {
              tile_ckpt::load(adopt_path[ri], mcfg, &model.state());
              const Microseconds began = ctx.clock().now();
              const Microseconds cost =
                  plan != nullptr ? plan->migrate_cost_us : 0.0;
              ctx.clock().advance_to(clock_base + cost);
              ctx.charge_migrate(cost);
              if (ctx.tracer() != nullptr) {
                // The span carries the landed rung's name, so the trace
                // (and the report built from it) shows whether this
                // recovery took the newest cut or fell a rung.
                ctx.tracer()->record(to_string(pending_rung),
                                     cluster::SpanCat::kNodeDown, began,
                                     ctx.clock().now());
              }
            } else {
              model.state() = ring[ri][slot].state;
              ctx.clock().advance_to(clock_base);
            }
            if (pending_downgrades > 0) {
              ctx.note_downgrades(pending_downgrades);
            }
            // Re-seed the ring at the recovery cut (fills the adopters'
            // cleared ring; a bit-exact overwrite on survivors).
            ring[ri][slot].step = resume_step;
            ring[ri][slot].state = model.state();
          }
          bool first_step = true;
          while (model.state().step < steps) {
            (void)model.step();
            const long s = model.state().step;
            if (first_step) {
              probe[ri] = ctx.clock().now();
              first_step = false;
            }
            if (s < steps && s % rcfg.ckpt_every == 0) {
              // The barrier makes the rotation a collective cut at step
              // s; double buffering covers an abort mid-rotation.
              model.comm().barrier();
              const int dslot = durable_slot(s, rcfg.ckpt_every);
              model.save_checkpoint(
                  tile_ckpt::slot_prefix(rcfg.ckpt_prefix, dslot));
              if (migrate) {
                const auto cslot = static_cast<std::size_t>(
                    ring_slot(s, rcfg.ckpt_every, rcfg.ring_depth));
                ring[ri][cslot].step = s;
                ring[ri][cslot].state = model.state();
                // Hot joins: every rank applies the same pure function
                // of (plan, step) to its local placement map, so the
                // maps stay consistent without any shared state.  A
                // migrated tile whose home board is back returns home;
                // re-applying is a no-op, so replayed epochs converge.
                if (plan != nullptr && plan->has_node_joins()) {
                  for (const cluster::NodeJoin& j : plan->node_joins) {
                    if (j.smp < 0 || j.smp >= smp_count || j.at_step > s) {
                      continue;
                    }
                    const int lo = j.smp * ppp;
                    for (int q = lo; q < lo + ppp && q < nranks; ++q) {
                      if (ctx.host_smp_of(q) == j.smp) continue;
                      ctx.rehome_rank(q, j.smp);
                      if (q == rank) {
                        const Microseconds began = ctx.clock().now();
                        ctx.clock().advance(plan->rebalance_cost_us);
                        ctx.charge_rebalance(plan->rebalance_cost_us);
                        if (ctx.tracer() != nullptr) {
                          ctx.tracer()->record("rebalance",
                                               cluster::SpanCat::kNodeDown,
                                               began, ctx.clock().now());
                        }
                      }
                    }
                  }
                }
              }
            }
          }
          completed[ri] = 1;
          if (rcfg.on_complete) rcfg.on_complete(ctx, model);
        } catch (const cluster::RankFailStop&) {
          // This rank's node fail-stopped at a communication point: go
          // silent.  Wake an SMP sibling blocked on the shared barrier;
          // survivors detect the silence through the membership service.
          if (ctx.procs_per_smp() > 1) {
            rt.smp_shared(ctx.smp()).barrier.abort();
          }
        } catch (const cluster::NodeDownError&) {
          throw;  // collective epoch abort; Runtime::run surfaces it first
        } catch (const std::runtime_error&) {
          // A dying sibling aborts the shared SMP barrier; ranks of the
          // killed node treat that collateral as their own death.  Any
          // other runtime_error on a surviving node is a real failure.
          cluster::Membership* ms = ctx.membership();
          if (ms != nullptr && ms->scheduled_kill(ctx.rank()) != nullptr) {
            return;
          }
          throw;
        }
      });
      bool all_completed = true;
      for (char c : completed) all_completed = all_completed && c != 0;
      if (!all_completed) {
        // Every rank fail-stopped before finishing (steps are collective,
        // so completion is all-or-nothing): the whole machine went down
        // inside one detection window and nobody was left to escalate.
        // Synthesize the canonical coalesced verdict and recover through
        // the ladder like any other NodeDown event.
        if (plan == nullptr || !plan->has_node_kills()) {
          throw RecoveryError(
              "run_resilient: epoch " + std::to_string(epoch) +
                  " ended with no rank completing and no scheduled kill to "
                  "explain it",
              -1, -1, -1, RecoveryRung::kMigrate);
        }
        throw cluster::NodeDownError(
            cluster::coalesce_expired_kills(*plan, epoch));
      }
      st.steps = steps;
      absorb_counts();
      record_recovery();
      return st;
    } catch (const cluster::NodeDownError& e) {
      absorb_counts();
      record_recovery();
      st.verdicts.push_back(e.verdict);
      if (++st.restarts > rcfg.max_restarts) {
        throw RestartExhausted(st.restarts, e.verdict);
      }
      // Chaos/test hook: damage durable state *before* planning, so the
      // planner sees exactly what a recovery after silent bit rot sees.
      if (rcfg.pre_recovery) rcfg.pre_recovery(epoch, e.verdict);

      RecoveryEvent ev;
      ev.verdict = e.verdict;

      if (!migrate) {
        // ---- epoch restart: everyone reloads the newest full slot ----
        if (!plan_epoch_restart(&ev)) {
          throw RecoveryExhausted(e.verdict, ev.attempts);
        }
        st.restart_steps.push_back(resume_step);
        clock_base = e.verdict.detected_us +
                     (plan != nullptr ? plan->restart_cost_us : 0.0);
        if (g_recovery_warn_limiter.admit()) {
          log_warn() << "run_resilient: epoch " << epoch << " aborted (rank "
                     << e.verdict.rank << " down at t="
                     << e.verdict.detected_us << " us); restarting from step "
                     << st.restart_steps.back();
        }
      } else {
        // ---- live migration: survivors rewind in memory, adopters ----
        // ---- re-load only the dead tiles' durable checkpoints.    ----
        // The verdict carries a dead *set*: every board hosting a
        // kill-named rank is down, together with every tile it hosts
        // (including tiles adopted during an earlier recovery).
        std::set<int> dead_boards;
        for (int vr : e.verdict.dead_ranks()) dead_boards.insert(host_of(vr));
        std::vector<char> is_dead(static_cast<std::size_t>(nranks), 0);
        std::vector<int> dead;
        for (int r = 0; r < nranks; ++r) {
          if (dead_boards.count(host_of(r)) != 0) {
            is_dead[static_cast<std::size_t>(r)] = 1;
            dead.push_back(r);
          }
        }

        // One rung of migration planning: find the newest cut at or
        // below `ceiling` that every survivor's ring and every dead
        // rank's (CRC-verified) durable checkpoint can meet at.  Any
        // precondition miss fails the rung with its reason -- the
        // ladder decides what to do next, nothing aborts the campaign.
        std::vector<std::string> planned_paths(
            static_cast<std::size_t>(nranks));
        const auto try_migrate = [&](long ceiling, RungAttempt* att) -> bool {
          att->ok = false;
          att->step = -1;
          if (static_cast<int>(dead.size()) == nranks) {
            att->reason = "verdict takes every board down; nothing to migrate";
            return false;
          }
          long s_surv = -1;
          bool have_surv = false;
          for (int r = 0; r < nranks; ++r) {
            if (is_dead[static_cast<std::size_t>(r)] != 0) continue;
            const long newest =
                newest_ring_step(ring[static_cast<std::size_t>(r)]);
            if (newest < 0) {
              att->reason = "survivor rank " + std::to_string(r) +
                            " holds no committed snapshot";
              return false;
            }
            s_surv = have_surv ? std::min(s_surv, newest) : newest;
            have_surv = true;
          }
          const long cap = std::min(s_surv, ceiling);
          if (cap < 0) {
            att->reason = "no committed cut at or below step " +
                          std::to_string(ceiling);
            return false;
          }
          // Clamp by the dead tiles' newest durable checkpoints: a rank
          // that died inside a cut's barrier may have published one cut
          // less than the survivors reached.
          long s_recover = cap;
          for (int r : dead) {
            const tile_ckpt::TileHit hit =
                tile_ckpt::newest_rank_ckpt(rcfg.ckpt_prefix, r, cap);
            if (hit.step < 0) {
              att->reason = "dead rank " + std::to_string(r) +
                            " has no durable checkpoint at or below step " +
                            std::to_string(cap);
              return false;
            }
            s_recover = std::min(s_recover, hit.step);
          }
          att->step = s_recover;
          // Resolve every dead rank's recovery source at exactly
          // s_recover, and deep-verify it: peek_step only reads the
          // header, so a payload with rotted bits would otherwise crash
          // the adopter mid-load instead of degrading the rung.
          for (int r : dead) {
            const tile_ckpt::TileHit hit =
                tile_ckpt::newest_rank_ckpt(rcfg.ckpt_prefix, r, s_recover);
            if (hit.step != s_recover) {
              att->reason = "dead rank " + std::to_string(r) +
                            " has no durable checkpoint at recovery step " +
                            std::to_string(s_recover);
              return false;
            }
            if (!tile_ckpt::verify(hit.path, mcfg)) {
              att->reason = "dead rank " + std::to_string(r) +
                            " durable checkpoint at step " +
                            std::to_string(s_recover) +
                            " failed deep verification (corrupt)";
              return false;
            }
            planned_paths[static_cast<std::size_t>(r)] = hit.path;
          }
          for (int r = 0; r < nranks; ++r) {
            const auto riv = static_cast<std::size_t>(r);
            if (is_dead[riv] != 0) continue;
            if (!ring_has(ring[riv], s_recover)) {
              att->reason = "survivor rank " + std::to_string(r) +
                            " ring misses recovery cut " +
                            std::to_string(s_recover);
              return false;
            }
          }
          att->ok = true;
          return true;
        };

        // Rung 1: migrate at the newest common cut.
        RungAttempt a1;
        a1.rung = RecoveryRung::kMigrate;
        bool planned = try_migrate(static_cast<long>(steps), &a1);
        ev.attempts.push_back(a1);
        // Rung 2: migrate from one durable cut further back (the newest
        // may be corrupt, or a dead rank may miss it entirely).
        if (!planned) {
          RungAttempt a2;
          a2.rung = RecoveryRung::kMigrateOlderCut;
          const long older_ceiling =
              (a1.step >= 0 ? a1.step : static_cast<long>(steps)) - 1;
          planned = try_migrate(older_ceiling, &a2);
          ev.attempts.push_back(a2);
        }

        if (planned) {
          const long s_recover = ev.attempts.back().step;
          adopt_load.assign(static_cast<std::size_t>(nranks), 0);
          for (int r : dead) {
            adopt_load[static_cast<std::size_t>(r)] = 1;
            adopt_path[static_cast<std::size_t>(r)] =
                planned_paths[static_cast<std::size_t>(r)];
          }

          // Evolve the placement baseline.  First mirror the joins the
          // aborted epoch had already applied at cuts up to the recovery
          // step, so the baseline matches every rank's map at that cut;
          // then retire the dead boards and re-home their tiles.
          if (host_map.empty()) {
            host_map.resize(static_cast<std::size_t>(nranks));
            for (int r = 0; r < nranks; ++r) {
              host_map[static_cast<std::size_t>(r)] = r / ppp;
            }
          }
          if (plan != nullptr) {
            for (const cluster::NodeJoin& j : plan->node_joins) {
              if (j.smp < 0 || j.smp >= smp_count || j.at_step > s_recover ||
                  dead_boards.count(j.smp) != 0) {
                continue;
              }
              dead_smps.erase(j.smp);
              const int lo = j.smp * ppp;
              for (int q = lo; q < lo + ppp && q < nranks; ++q) {
                host_map[static_cast<std::size_t>(q)] = j.smp;
              }
            }
          }
          dead_smps.insert(dead_boards.begin(), dead_boards.end());
          std::vector<int> alive;
          for (int smp = 0; smp < smp_count; ++smp) {
            if (dead_smps.count(smp) == 0) alive.push_back(smp);
          }
          // Adoption: prefer the board hosting a surviving halo neighbor
          // (the adopted tile's exchanges stay partly local), else
          // spread the orphans round-robin over the surviving boards.
          // `alive` cannot be empty here: a planned migration implies at
          // least one survivor, and its host is not a dead board.
          for (int r : dead) {
            int target = -1;
            const Decomp dec(mcfg, r);
            for (int nr : dec.neighbors) {
              if (nr < 0 || is_dead[static_cast<std::size_t>(nr)] != 0) {
                continue;
              }
              const int cand = host_map[static_cast<std::size_t>(nr)];
              if (dead_smps.count(cand) == 0) {
                target = cand;
                break;
              }
            }
            if (target < 0) {
              target =
                  alive[static_cast<std::size_t>(adopt_rr) % alive.size()];
              ++adopt_rr;
            }
            host_map[static_cast<std::size_t>(r)] = target;
            // The adopter board's in-memory ring never held this tile:
            // invalidate the dead rank's snapshots so a later failure
            // cannot rewind onto state that died with the board.
            for (Snap& snap : ring[static_cast<std::size_t>(r)]) {
              snap.step = -1;
            }
          }

          load_prefix.clear();
          resume_step = s_recover;
          st.restart_steps.push_back(s_recover);
          clock_base = e.verdict.detected_us;
          if (g_recovery_warn_limiter.admit()) {
            log_warn() << "run_resilient: epoch " << epoch
                       << " aborted (rank " << e.verdict.rank << " down, "
                       << dead_boards.size() << " board(s), t="
                       << e.verdict.detected_us << " us); "
                       << to_string(ev.landed()) << ": migrating "
                       << dead.size() << " tile(s) and resuming from step "
                       << s_recover;
          }
        } else {
          const std::string migrate_fail_reason = ev.attempts.back().reason;
          if (!plan_epoch_restart(&ev)) {
            throw RecoveryExhausted(e.verdict, ev.attempts);
          }
          // Rung 3: restart the world from the newest verified slot.
          // The operator replaced the boards: placement returns to
          // identity, no board is dead in the restarted epoch, and the
          // rings restart from the reload cut (the driver clears them;
          // each rank re-seeds its own at resume).
          host_map.clear();
          dead_smps.clear();
          adopt_load.assign(static_cast<std::size_t>(nranks), 0);
          for (std::vector<Snap>& rr : ring) {
            for (Snap& snap : rr) snap.step = -1;
          }
          st.restart_steps.push_back(resume_step);
          clock_base = e.verdict.detected_us +
                       (plan != nullptr ? plan->restart_cost_us : 0.0);
          if (g_recovery_warn_limiter.admit()) {
            log_warn() << "run_resilient: epoch " << epoch
                       << " aborted (rank " << e.verdict.rank
                       << " down); migration unplannable ("
                       << migrate_fail_reason
                       << "); epoch restart from step " << resume_step;
          }
        }
      }
      pending_rung = ev.landed();
      pending_downgrades = ev.downgrades();
      st.ladder.push_back(ev);
      pending_detect = e.verdict.detected_us;
      probe.assign(static_cast<std::size_t>(nranks), e.verdict.detected_us);
    }
  }
}

}  // namespace hyades::gcm
