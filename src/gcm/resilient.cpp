#include "gcm/resilient.hpp"

#include <algorithm>
#include <array>
#include <set>
#include <stdexcept>

#include "cluster/membership.hpp"
#include "comm/comm.hpp"
#include "gcm/decomp.hpp"
#include "gcm/model.hpp"
#include "gcm/tile_ckpt.hpp"
#include "support/logging.hpp"

namespace hyades::gcm {

namespace {

// Durable slot (and in-memory ring slot) of the committed cut at step
// `s`: the fresh-init step-0 checkpoint lands in slot 0, later cuts
// alternate.
int cut_slot(long s, int ckpt_every) {
  return static_cast<int>((s / ckpt_every) % 2);
}

// One committed in-memory snapshot of a rank's tile, written at every
// checkpoint cut in migrate mode.  Two of these per rank form the ring
// that lets survivors rewind without touching disk: because each cut's
// save sits between collective barriers, no two live ranks can be more
// than one cut apart, so a two-deep ring always covers the recovery
// step every peer can reach.
struct Snap {
  long step = -1;
  State state;
};

}  // namespace

ResilientStats run_resilient(cluster::Runtime& rt, const ModelConfig& mcfg,
                             int steps, const ResilientConfig& rcfg) {
  if (rcfg.ckpt_prefix.empty()) {
    throw std::invalid_argument("run_resilient: ckpt_prefix is required");
  }
  if (rcfg.ckpt_every < 1) {
    throw std::invalid_argument("run_resilient: ckpt_every must be >= 1");
  }
  if (rcfg.max_restarts < 0) {
    throw std::invalid_argument("run_resilient: max_restarts must be >= 0");
  }
  const int nranks = rt.config().nranks();
  if (rcfg.tracers != nullptr &&
      rcfg.tracers->size() < static_cast<std::size_t>(nranks)) {
    throw std::invalid_argument("run_resilient: tracer list shorter than ranks");
  }

  // Clear both slots up front: a stale checkpoint left by an earlier run
  // (possibly of a different configuration) must never be mistaken for
  // this run's restart point.
  tile_ckpt::remove_slots(rcfg.ckpt_prefix, nranks);

  const bool migrate = rcfg.recovery == RecoveryMode::kMigrate;
  const cluster::FaultPlan* plan = rt.config().faults;
  const int ppp = rt.config().procs_per_smp;
  const int smp_count = rt.config().smp_count;

  // ---- driver-held recovery state -------------------------------------
  // Everything below is written by the driver between epochs or by a
  // rank thread in its own slot during an epoch; thread create/join
  // orders every cross-thread access.
  std::vector<std::array<Snap, 2>> ring;  // per-rank committed snapshots
  if (migrate) ring.resize(static_cast<std::size_t>(nranks));
  std::vector<int> host_map;  // evolving placement baseline; empty=identity
  std::set<int> dead_smps;    // boards lost and not yet replaced by a join
  int adopt_rr = 0;           // round-robin fallback cursor for adoption

  const auto host_of = [&](int r) {
    return host_map.empty() ? r / ppp : host_map[static_cast<std::size_t>(r)];
  };

  // Resumed-epoch instructions for the rank bodies.
  long resume_step = -1;  // -1 = fresh start
  Microseconds clock_base = 0;
  std::string load_prefix;  // epoch-restart slot to reload
  std::vector<char> adopt_load(static_cast<std::size_t>(nranks), 0);
  std::vector<std::string> adopt_path(static_cast<std::size_t>(nranks));

  // Recovery-time probe: each rank records the virtual clock after its
  // first completed step of an epoch; the driver turns the max into the
  // per-event recovery_us (detection -> everyone stepping again).
  Microseconds pending_detect = -1.0;
  std::vector<Microseconds> probe(static_cast<std::size_t>(nranks), 0.0);

  ResilientStats st;

  const auto absorb_counts = [&] {
    for (const cluster::Accounting& a : rt.accounting()) {
      st.migrations += static_cast<int>(a.migrations);
      st.rebalances += static_cast<int>(a.rebalances);
    }
  };
  const auto record_recovery = [&] {
    if (pending_detect < 0) return;
    Microseconds mx = pending_detect;
    for (Microseconds p : probe) mx = std::max(mx, p);
    st.recovery_us.push_back(mx - pending_detect);
    pending_detect = -1.0;
  };

  for (int epoch = 0;; ++epoch) {
    rt.set_epoch(epoch);
    rt.bus().reset_down();
    rt.set_host_map(host_map);

    try {
      rt.run([&](cluster::RankContext& ctx) {
        const int rank = ctx.rank();
        const auto ri = static_cast<std::size_t>(rank);
        if (rcfg.tracers != nullptr) {
          ctx.set_tracer(&(*rcfg.tracers)[ri]);
        }
        try {
          comm::Comm comm(ctx);
          Model model(mcfg, comm);
          if (resume_step < 0) {
            model.initialize(rcfg.init_seed);
            // Durable step-0 checkpoint BEFORE the first communication:
            // even a kill firing in the first step restarts from a
            // complete, mutually consistent slot.
            model.save_checkpoint(tile_ckpt::slot_prefix(rcfg.ckpt_prefix, 0));
            if (migrate) {
              ring[ri][0].step = 0;
              ring[ri][0].state = model.state();
            }
          } else if (!migrate) {
            model.load_checkpoint(load_prefix);
            const Microseconds began = ctx.clock().now();
            ctx.clock().advance_to(clock_base);
            ctx.charge_restart(plan != nullptr ? plan->restart_cost_us : 0.0);
            if (ctx.tracer() != nullptr) {
              ctx.tracer()->record("restart", cluster::SpanCat::kNodeDown,
                                   began, ctx.clock().now());
            }
          } else {
            // Live-migration resume: adopters of dead tiles re-read the
            // newest durable per-tile checkpoint and pay the migration
            // cost; survivors rewind from the in-memory ring for free.
            const auto slot =
                static_cast<std::size_t>(cut_slot(resume_step,
                                                  rcfg.ckpt_every));
            if (adopt_load[ri] != 0) {
              tile_ckpt::load(adopt_path[ri], mcfg, &model.state());
              const Microseconds began = ctx.clock().now();
              const Microseconds cost =
                  plan != nullptr ? plan->migrate_cost_us : 0.0;
              ctx.clock().advance_to(clock_base + cost);
              ctx.charge_migrate(cost);
              if (ctx.tracer() != nullptr) {
                ctx.tracer()->record("migrate", cluster::SpanCat::kNodeDown,
                                     began, ctx.clock().now());
              }
            } else {
              model.state() = ring[ri][slot].state;
              ctx.clock().advance_to(clock_base);
            }
            // Re-seed the ring at the recovery cut (fills the adopters'
            // cleared ring; a bit-exact overwrite on survivors).
            ring[ri][slot].step = resume_step;
            ring[ri][slot].state = model.state();
          }
          bool first_step = true;
          while (model.state().step < steps) {
            (void)model.step();
            const long s = model.state().step;
            if (first_step) {
              probe[ri] = ctx.clock().now();
              first_step = false;
            }
            if (s < steps && s % rcfg.ckpt_every == 0) {
              // The barrier makes the rotation a collective cut at step
              // s; double buffering covers an abort mid-rotation.
              model.comm().barrier();
              const int cslot = cut_slot(s, rcfg.ckpt_every);
              model.save_checkpoint(
                  tile_ckpt::slot_prefix(rcfg.ckpt_prefix, cslot));
              if (migrate) {
                ring[ri][static_cast<std::size_t>(cslot)].step = s;
                ring[ri][static_cast<std::size_t>(cslot)].state =
                    model.state();
                // Hot joins: every rank applies the same pure function
                // of (plan, step) to its local placement map, so the
                // maps stay consistent without any shared state.  A
                // migrated tile whose home board is back returns home;
                // re-applying is a no-op, so replayed epochs converge.
                if (plan != nullptr && plan->has_node_joins()) {
                  for (const cluster::NodeJoin& j : plan->node_joins) {
                    if (j.smp < 0 || j.smp >= smp_count || j.at_step > s) {
                      continue;
                    }
                    const int lo = j.smp * ppp;
                    for (int q = lo; q < lo + ppp && q < nranks; ++q) {
                      if (ctx.host_smp_of(q) == j.smp) continue;
                      ctx.rehome_rank(q, j.smp);
                      if (q == rank) {
                        const Microseconds began = ctx.clock().now();
                        ctx.clock().advance(plan->rebalance_cost_us);
                        ctx.charge_rebalance(plan->rebalance_cost_us);
                        if (ctx.tracer() != nullptr) {
                          ctx.tracer()->record("rebalance",
                                               cluster::SpanCat::kNodeDown,
                                               began, ctx.clock().now());
                        }
                      }
                    }
                  }
                }
              }
            }
          }
          if (rcfg.on_complete) rcfg.on_complete(ctx, model);
        } catch (const cluster::RankFailStop&) {
          // This rank's node fail-stopped at a communication point: go
          // silent.  Wake an SMP sibling blocked on the shared barrier;
          // survivors detect the silence through the membership service.
          if (ctx.procs_per_smp() > 1) {
            rt.smp_shared(ctx.smp()).barrier.abort();
          }
        } catch (const cluster::NodeDownError&) {
          throw;  // collective epoch abort; Runtime::run surfaces it first
        } catch (const std::runtime_error&) {
          // A dying sibling aborts the shared SMP barrier; ranks of the
          // killed node treat that collateral as their own death.  Any
          // other runtime_error on a surviving node is a real failure.
          cluster::Membership* ms = ctx.membership();
          if (ms != nullptr && ms->scheduled_kill(ctx.rank()) != nullptr) {
            return;
          }
          throw;
        }
      });
      st.steps = steps;
      absorb_counts();
      record_recovery();
      return st;
    } catch (const cluster::NodeDownError& e) {
      absorb_counts();
      record_recovery();
      st.verdicts.push_back(e.verdict);
      if (++st.restarts > rcfg.max_restarts) {
        throw RestartExhausted(st.restarts, e.verdict);
      }

      if (!migrate) {
        // ---- epoch restart: everyone reloads the newest full slot ----
        const tile_ckpt::SlotScan a =
            tile_ckpt::scan_slot(rcfg.ckpt_prefix, 0, nranks);
        const tile_ckpt::SlotScan b =
            tile_ckpt::scan_slot(rcfg.ckpt_prefix, 1, nranks);
        if (!a.consistent && !b.consistent) {
          throw std::runtime_error(
              "run_resilient: no consistent checkpoint slot to restart from");
        }
        const bool use_a = a.consistent && (!b.consistent || a.step >= b.step);
        load_prefix = tile_ckpt::slot_prefix(rcfg.ckpt_prefix, use_a ? 0 : 1);
        resume_step = use_a ? a.step : b.step;
        st.restart_steps.push_back(resume_step);
        clock_base = e.verdict.detected_us +
                     (plan != nullptr ? plan->restart_cost_us : 0.0);
        log_warn() << "run_resilient: epoch " << epoch << " aborted (rank "
                   << e.verdict.rank << " down at t=" << e.verdict.detected_us
                   << " us); restarting from step "
                   << st.restart_steps.back();
      } else {
        // ---- live migration: survivors rewind in memory, adopters ----
        // ---- re-load only the dead tiles' durable checkpoints.    ----
        const int dead_smp = host_of(e.verdict.rank);
        std::vector<char> is_dead(static_cast<std::size_t>(nranks), 0);
        std::vector<int> dead;
        for (int r = 0; r < nranks; ++r) {
          if (host_of(r) == dead_smp) {
            is_dead[static_cast<std::size_t>(r)] = 1;
            dead.push_back(r);
          }
        }
        if (static_cast<int>(dead.size()) == nranks) {
          throw std::runtime_error(
              "run_resilient: node down took every rank; nothing to migrate");
        }
        // The newest cut every survivor still holds in its ring: because
        // the cut's save sits between collective barriers, survivors are
        // within one cut of each other, so the minimum of their newest
        // ring steps is present in every survivor's two-deep ring.
        long s_surv = -1;
        bool have_surv = false;
        for (int r = 0; r < nranks; ++r) {
          if (is_dead[static_cast<std::size_t>(r)] != 0) continue;
          const auto& rr = ring[static_cast<std::size_t>(r)];
          const long newest = std::max(rr[0].step, rr[1].step);
          if (newest < 0) {
            throw std::runtime_error(
                "run_resilient: survivor rank " + std::to_string(r) +
                " holds no committed snapshot");
          }
          s_surv = have_surv ? std::min(s_surv, newest) : newest;
          have_surv = true;
        }
        // Clamp by the dead tiles' newest durable checkpoints: a rank
        // that died inside a cut's barrier may have published one cut
        // less than the survivors reached.
        long s_recover = s_surv;
        for (int r : dead) {
          const tile_ckpt::TileHit hit =
              tile_ckpt::newest_rank_ckpt(rcfg.ckpt_prefix, r, s_surv);
          if (hit.step < 0) {
            throw std::runtime_error(
                "run_resilient: no durable checkpoint for dead rank " +
                std::to_string(r));
          }
          s_recover = std::min(s_recover, hit.step);
        }
        // Resolve every rank's recovery source at exactly s_recover.
        adopt_load.assign(static_cast<std::size_t>(nranks), 0);
        for (int r : dead) {
          const tile_ckpt::TileHit hit =
              tile_ckpt::newest_rank_ckpt(rcfg.ckpt_prefix, r, s_recover);
          if (hit.step != s_recover) {
            throw std::runtime_error(
                "run_resilient: dead rank " + std::to_string(r) +
                " has no durable checkpoint at recovery step " +
                std::to_string(s_recover));
          }
          adopt_load[static_cast<std::size_t>(r)] = 1;
          adopt_path[static_cast<std::size_t>(r)] = hit.path;
        }
        const int rslot = cut_slot(s_recover, rcfg.ckpt_every);
        for (int r = 0; r < nranks; ++r) {
          const auto riv = static_cast<std::size_t>(r);
          if (is_dead[riv] != 0) continue;
          if (ring[riv][static_cast<std::size_t>(rslot)].step != s_recover) {
            throw std::runtime_error(
                "run_resilient: survivor rank " + std::to_string(r) +
                " holds no snapshot at recovery step " +
                std::to_string(s_recover));
          }
        }

        // Evolve the placement baseline.  First mirror the joins the
        // aborted epoch had already applied at cuts up to the recovery
        // step, so the baseline matches every rank's map at that cut;
        // then retire the dead board and re-home its tiles.
        if (host_map.empty()) {
          host_map.resize(static_cast<std::size_t>(nranks));
          for (int r = 0; r < nranks; ++r) {
            host_map[static_cast<std::size_t>(r)] = r / ppp;
          }
        }
        if (plan != nullptr) {
          for (const cluster::NodeJoin& j : plan->node_joins) {
            if (j.smp < 0 || j.smp >= smp_count || j.at_step > s_recover ||
                j.smp == dead_smp) {
              continue;
            }
            dead_smps.erase(j.smp);
            const int lo = j.smp * ppp;
            for (int q = lo; q < lo + ppp && q < nranks; ++q) {
              host_map[static_cast<std::size_t>(q)] = j.smp;
            }
          }
        }
        dead_smps.insert(dead_smp);
        std::vector<int> alive;
        for (int smp = 0; smp < smp_count; ++smp) {
          if (dead_smps.count(smp) == 0) alive.push_back(smp);
        }
        if (alive.empty()) {
          throw std::runtime_error(
              "run_resilient: every board is down; cannot migrate");
        }
        // Adoption: prefer the board hosting a surviving halo neighbor
        // (the adopted tile's exchanges stay partly local), else spread
        // the orphans round-robin over the surviving boards.
        for (int r : dead) {
          int target = -1;
          const Decomp dec(mcfg, r);
          for (int nr : dec.neighbors) {
            if (nr < 0 || is_dead[static_cast<std::size_t>(nr)] != 0) {
              continue;
            }
            const int cand = host_map[static_cast<std::size_t>(nr)];
            if (dead_smps.count(cand) == 0) {
              target = cand;
              break;
            }
          }
          if (target < 0) {
            target = alive[static_cast<std::size_t>(adopt_rr) % alive.size()];
            ++adopt_rr;
          }
          host_map[static_cast<std::size_t>(r)] = target;
          // The adopter board's in-memory ring never held this tile:
          // invalidate the dead rank's snapshots so a later failure
          // cannot rewind onto state that died with the board.
          ring[static_cast<std::size_t>(r)][0].step = -1;
          ring[static_cast<std::size_t>(r)][1].step = -1;
        }

        load_prefix.clear();
        resume_step = s_recover;
        st.restart_steps.push_back(s_recover);
        clock_base = e.verdict.detected_us;
        log_warn() << "run_resilient: epoch " << epoch << " aborted (rank "
                   << e.verdict.rank << " down at t=" << e.verdict.detected_us
                   << " us); migrating " << dead.size()
                   << " tile(s) off board " << dead_smp
                   << " and resuming from step " << s_recover;
      }
      pending_detect = e.verdict.detected_us;
      probe.assign(static_cast<std::size_t>(nranks), e.verdict.detected_us);
    }
  }
}

}  // namespace hyades::gcm
