// Halo exchange adapters: pack tile edge strips into the comm library's
// exchange buffers and unpack the neighbours' strips into the halo.
//
// A 3-D (or 2-D) field exchange runs in two stages -- east/west first,
// then north/south over the x-extended rows -- so halo corners are
// filled without explicit diagonal communication.  This is the standard
// realization of the paper's `exchange` primitive, and each stage maps
// onto one call of comm::Comm::exchange.
#pragma once

#include "comm/comm.hpp"
#include "gcm/decomp.hpp"
#include "support/array.hpp"

namespace hyades::gcm {

// Exchange `width` halo cells of a 3-D field (width <= dec.halo).
void exchange3d(comm::Comm& comm, const Decomp& dec, Array3D<double>& f,
                int width);

// Exchange `width` halo cells of a 2-D field.
void exchange2d(comm::Comm& comm, const Decomp& dec, Array2D<double>& f,
                int width);

// Split-phase 3-D halo exchange: the two stages of exchange3d broken at
// their communication waits, so the stepper can compute while strips are
// in flight (ModelConfig::overlap_comm).  Stage 2 (north/south) packs
// x-extended rows that include stage-1 results, so it cannot be posted
// before stage 1 completes; `progress` is the pivot between them.
//
//   HaloExchange3 hx(comm, dec, f, width);
//   hx.start();     // pack + post stage 1 (east/west strips)
//   ... compute ...
//   hx.progress();  // finish stage 1, pack + post stage 2 (north/south)
//   ... compute ...
//   hx.finish();    // finish stage 2; halo fully fresh
//
// The field must not be written between start() and finish().  Several
// HaloExchange3 may be in flight at once (per-handle tag sequencing in
// the comm layer); within a run the three calls are collective across
// the group in a consistent order.
class HaloExchange3 {
 public:
  HaloExchange3(comm::Comm& comm, const Decomp& dec, Array3D<double>& f,
                int width);
  HaloExchange3(const HaloExchange3&) = delete;
  HaloExchange3& operator=(const HaloExchange3&) = delete;
  HaloExchange3(HaloExchange3&&) = default;
  HaloExchange3& operator=(HaloExchange3&&) = default;

  void start();
  void progress();
  void finish();

 private:
  comm::Comm* comm_;
  const Decomp* dec_;
  Array3D<double>* f_;
  int width_;
  int stage_ = 0;  // 0 idle, 1 stage-1 posted, 2 stage-2 posted, 3 done
  comm::Buffers buf_;
  comm::ExchangeHandle h_;
};

}  // namespace hyades::gcm
