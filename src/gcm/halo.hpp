// Halo exchange adapters: pack tile edge strips into the comm library's
// exchange buffers and unpack the neighbours' strips into the halo.
//
// A 3-D (or 2-D) field exchange runs in two stages -- east/west first,
// then north/south over the x-extended rows -- so halo corners are
// filled without explicit diagonal communication.  This is the standard
// realization of the paper's `exchange` primitive, and each stage maps
// onto one call of comm::Comm::exchange.
#pragma once

#include "comm/comm.hpp"
#include "gcm/decomp.hpp"
#include "support/array.hpp"

namespace hyades::gcm {

// Exchange `width` halo cells of a 3-D field (width <= dec.halo).
void exchange3d(comm::Comm& comm, const Decomp& dec, Array3D<double>& f,
                int width);

// Exchange `width` halo cells of a 2-D field.
void exchange2d(comm::Comm& comm, const Decomp& dec, Array2D<double>& f,
                int width);

}  // namespace hyades::gcm
