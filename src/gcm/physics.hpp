// Forcing and sub-grid physics.
//
// The paper's coupled run uses an "intermediate complexity atmospheric
// physics package" (Molteni's simplified parameterizations); we build the
// closest synthetic equivalent that exercises the same code path: extra
// per-column work inside the PS phase feeding the tendency arrays.
//
//   Atmosphere: Newtonian relaxation of potential temperature toward a
//   radiative-equilibrium profile Teq(lat, height), Rayleigh friction in
//   the lowest levels (the boundary layer), bulk surface fluxes from the
//   SST supplied by the coupler, and dry convective adjustment.
//
//   Ocean: zonal wind-stress bands (or coupler-supplied stress), surface
//   temperature restoring (or coupler-supplied heat flux).
#pragma once

#include "gcm/config.hpp"
#include "gcm/decomp.hpp"
#include "gcm/grid.hpp"
#include "gcm/kernels.hpp"
#include "gcm/state.hpp"

namespace hyades::gcm {

// Boundary conditions supplied by the coupler (allocated on the tile's
// *extended* index space and halo-exchanged one ring deep, so the PS
// phase's overcomputation sees the same forcing on both sides of a tile
// seam; empty arrays when running uncoupled).
struct SurfaceForcing {
  Array2D<double> sst;   // atmosphere: sea-surface temperature under us
  Array2D<double> taux;  // ocean: zonal wind stress (N/m^2)
  Array2D<double> tauy;  // ocean: meridional wind stress
  Array2D<double> qnet;  // ocean: surface heat flux (W/m^2, positive down)
  bool active = false;
};

// Radiative-equilibrium potential temperature for the atmosphere.
double atmos_teq(const ModelConfig& cfg, double lat, double depth_from_top);

// Climatological zonal wind stress used by the uncoupled ocean.
double ocean_wind_stress(const ModelConfig& cfg, double lat);

// Restoring surface temperature used by the uncoupled ocean.
double ocean_sst_target(const ModelConfig& cfg, double lat);

// Add forcing/physics tendencies into state.gu/gv/gt over the window.
// Returns flops.
double apply_physics(const ModelConfig& cfg, const TileGrid& grid,
                     const Decomp& dec, State& s,
                     const SurfaceForcing& forcing, const kernels::Range& r);

// Dry convective adjustment (atmosphere): mix statically unstable column
// pairs after the tracer update.  Returns flops.
double convective_adjustment(const ModelConfig& cfg, const TileGrid& grid,
                             Array3D<double>& theta, const kernels::Range& r);

// Gray two-stream longwave radiation (atmosphere): per-column up/down
// flux sweeps with per-layer emissivity; heating from flux convergence.
double gray_radiation(const ModelConfig& cfg, const TileGrid& grid, State& s,
                      const kernels::Range& r);

// Moisture cycle (atmosphere): condensation of super-saturated columns
// with latent heating, plus surface evaporation toward saturation.
double moisture_cycle(const ModelConfig& cfg, const TileGrid& grid, State& s,
                      const SurfaceForcing& forcing, const kernels::Range& r);

// Richardson-number-dependent vertical mixing (ocean; Pacanowski &
// Philander form nu = nu0/(1+5Ri)^2) applied to momentum and tracers.
double richardson_mixing(const ModelConfig& cfg, const TileGrid& grid,
                         State& s, const kernels::Range& r);

}  // namespace hyades::gcm
