// The DS-phase elliptic system (eq. (3)):  solve
//
//     div_h( H grad_h ps ) = rhs
//
// on the 2-D lateral grid.  Discretely the operator rows are
//
//     A(p)_c = sum_faces w_f (p_nb - p_c),    w_f = H_f * len_f / dist_f
//
// which is symmetric negative semidefinite; the solver works with
// L = -A (SPD up to the constant null space) -- the "pre-conditioned
// conjugate-gradient iterative solver" of Section 4.
//
// Preconditioner: symmetrized line relaxation,
//     M^-1 = (Mx^-1 + My^-1) / 2,
// where Mx (My) is the tridiagonal part of L along each latitude row
// (longitude column), solved tile-locally (cross-tile couplings dropped
// from the off-diagonals but kept on the diagonal, so each factor stays
// SPD and so does their average).  The zonal lines cure the lat-lon
// grid's polar anisotropy (w_east/w_north ~ 30 at 80 degrees); the
// meridional lines pick up the depth contrasts of shelves and ridges.
// Together they keep the iteration count near the paper's Ni ~ 60.
#pragma once

#include "gcm/config.hpp"
#include "gcm/decomp.hpp"
#include "gcm/grid.hpp"
#include "support/array.hpp"

namespace hyades::gcm {

class EllipticOperator {
 public:
  EllipticOperator(const ModelConfig& cfg, const Decomp& dec,
                   const TileGrid& grid);

  // out = L p over the tile interior; p must have a valid 1-cell halo.
  // Returns the flops performed.
  double apply(const Array2D<double>& p, Array2D<double>& out) const;

  // z = M^-1 r over the interior (z = 0 on land), where M is the
  // tile-local zonal tridiagonal part of L.  Returns flops.
  double precondition(const Array2D<double>& r, Array2D<double>& z) const;

  // z = r / diag(L): the plain Jacobi alternative (kept for the solver
  // ablation bench).
  double precondition_jacobi(const Array2D<double>& r,
                             Array2D<double>& z) const;

  // Face weight accessors (exposed for symmetry tests).
  [[nodiscard]] const Array2D<double>& west_weight() const { return wW_; }
  [[nodiscard]] const Array2D<double>& south_weight() const { return wS_; }
  [[nodiscard]] const Array2D<double>& diagonal() const { return diag_; }
  [[nodiscard]] bool is_wet(int i, int j) const {
    return diag_(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) > 0;
  }

  [[nodiscard]] const Decomp& decomp() const { return dec_; }

 private:
  void factor_lines();

  const Decomp& dec_;
  // Weights on the tile's extended index space: wW_(i,j) couples cells
  // (i-1,j)-(i,j); wS_(i,j) couples (i,j-1)-(i,j).
  Array2D<double> wW_, wS_, diag_;
  // Thomas-algorithm factors per interior cell: cp_ = normalized
  // super-diagonal, inv_ = 1/(b - a*cp_prev); x-direction and
  // y-direction sets.
  Array2D<double> cp_, inv_;
  Array2D<double> cpy_, invy_;
  mutable std::vector<double> ybuf_;  // meridional Thomas scratch
};

}  // namespace hyades::gcm
