// Prognostic and diagnostic model state for one tile.
//
// All 3-D arrays are allocated over the tile's extended (halo-included)
// region; w is held at cell-top faces (w(k) = downward volume-flux
// velocity through the top of level k).  Tendency arrays at time levels
// n and n-1 support the Adams-Bashforth-2 stepping of Figure 6's PS
// block.
#pragma once

#include "gcm/decomp.hpp"
#include "support/array.hpp"

namespace hyades::gcm {

struct State {
  Array3D<double> u, v, w;       // velocities (m/s); w positive downward
  Array3D<double> theta, salt;   // tracers
  Array3D<double> gu, gv, gt, gs, gw;              // tendencies at step n
  Array3D<double> gu_nm1, gv_nm1, gt_nm1, gs_nm1, gw_nm1;  // at n-1
  Array3D<double> phi;           // hydrostatic pressure anomaly / rho0
  Array3D<double> phi_nh;        // non-hydrostatic pressure / rho0
  Array2D<double> ps;            // surface pressure / rho0 (m^2/s^2)
  long step = 0;

  void allocate(const Decomp& dec, int nz) {
    const auto ex = static_cast<std::size_t>(dec.ext_x());
    const auto ey = static_cast<std::size_t>(dec.ext_y());
    const auto zk = static_cast<std::size_t>(nz);
    for (Array3D<double>* f :
         {&u, &v, &w, &theta, &salt, &gu, &gv, &gt, &gs, &gw, &gu_nm1,
          &gv_nm1, &gt_nm1, &gs_nm1, &gw_nm1, &phi, &phi_nh}) {
      *f = Array3D<double>(ex, ey, zk, 0.0);
    }
    ps = Array2D<double>(ex, ey, 0.0);
    step = 0;
  }
};

}  // namespace hyades::gcm
