// Field output: portable graymap (PGM) images and CSV tables for gathered
// 2-D fields -- the Figure 9 analog outputs of the example programs.
#pragma once

#include <string>

#include "support/array.hpp"

namespace hyades::gcm {

// Write an 8-bit PGM; values are linearly mapped from [lo, hi] (values
// outside clamp).  Pass lo == hi to auto-scale to the field's range.
// The image is nx wide (longitude) and ny tall with row 0 at the bottom
// (southernmost latitude last in file order, as PGM rows go top-down).
void write_pgm(const std::string& path, const Array2D<double>& field,
               double lo = 0.0, double hi = 0.0);

// Write a CSV with one row per j (latitude), columns over i (longitude).
void write_csv(const std::string& path, const Array2D<double>& field);

// Render a coarse ASCII contour map to a string (for quick terminal
// inspection in the examples).
std::string ascii_map(const Array2D<double>& field, int width = 64,
                      int height = 24);

}  // namespace hyades::gcm
