// Ocean-atmosphere coupler (Section 5.1): "the ocean and atmosphere
// isomorphs must run concurrently, periodically exchanging boundary
// conditions".  Both components use the same lateral grid and tile
// decomposition, so tile (tx, ty) of one component pairs with the same
// tile of the other; the paired ranks swap 2-D boundary fields through
// the interconnect.
//
// Protocol per coupling interval:
//   ocean -> atmosphere : SST (surface theta)
//   atmosphere -> ocean : wind stress (bulk formula on its lowest-level
//                         winds) and net surface heat flux.
#pragma once

#include "cluster/runtime.hpp"
#include "gcm/model.hpp"
#include "gcm/physics.hpp"

namespace hyades::gcm {

class Coupler {
 public:
  // Groups [ocean_base, ocean_base+n) and [atmos_base, atmos_base+n).
  Coupler(cluster::RankContext& ctx, int ocean_base, int atmos_base,
          int group_n);

  [[nodiscard]] bool is_ocean() const;

  // Collective over both groups.  Fills `forcing` with the peer's
  // boundary fields: SST for an atmosphere rank; taux/tauy/qnet for an
  // ocean rank.
  void exchange_boundary(Model& model, SurfaceForcing& forcing);

  // Bulk-formula constants.
  static constexpr double kAirDensity = 1.2;       // kg/m^3
  static constexpr double kDragCoeff = 1.3e-3;     // momentum exchange
  static constexpr double kHeatCoeff = 35.0;       // W/m^2/K

 private:
  cluster::RankContext& ctx_;
  int ocean_base_, atmos_base_, group_n_;
};

}  // namespace hyades::gcm
