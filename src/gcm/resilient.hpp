// Restart-from-checkpoint resilience: the driver that survives hard
// node failures.
//
// run_resilient executes a gyre-style model run in *epochs*.  Within an
// epoch every rank steps its tile normally, saving a durable checkpoint
// every `ckpt_every` steps into one of two alternating on-disk slots
// (double buffering: while one slot is being rewritten the other always
// holds a complete, mutually consistent set of rank files).  When a
// scheduled node kill fires, the dying node's ranks go silent at their
// next communication point; a surviving partner's receive escalates
// through the membership service, the plan-pure NodeDown verdict poisons
// the message bus, and every survivor unwinds its epoch.  The driver
// then scans both checkpoint slots, picks the newest step present and
// identical on *every* rank, bumps the epoch (which shifts every
// transport tag by kEpochTagStride, so stale pre-failure messages can
// never be mistaken for restarted traffic), and relaunches all ranks
// from that step.  After `max_restarts` aborted epochs it gives up with
// a typed RestartExhausted error -- it never hangs.
//
// Determinism: stepping is bit-deterministic and checkpoints are bit
// exact, so any survivable kill schedule finishes with final state
// bit-identical to the failure-free run; with no kills scheduled the
// epoch loop runs exactly once and adds no comm, clock, or accounting
// effects beyond the periodic checkpoint barrier.
//
// Elastic membership (RecoveryMode::kMigrate) replaces the
// restart-the-world epoch with *live tile migration*: every rank keeps a
// two-deep in-memory ring of committed cut snapshots alongside the
// durable per-tile files, so after a NodeDown verdict the survivors
// rewind from memory while only the dead node's tiles are re-read from
// their newest durable checkpoints by adopter ranks re-homed onto
// surviving boards (neighbor-preferring placement, round-robin
// fallback).  The epoch tag still bumps -- stale traffic ages out
// exactly as under restart -- but the survivors pay no restart cost and
// no disk I/O, so recovery is strictly faster.  A scheduled NodeJoin
// hands the migrated tiles back to the replacement board at the first
// checkpoint cut at or past its step, rebalancing the load.  State
// evolution is placement-independent, so every recovery and rebalance
// finishes bit-identical to the failure-free run.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/fault.hpp"
#include "cluster/runtime.hpp"
#include "cluster/trace.hpp"
#include "gcm/config.hpp"

namespace hyades::gcm {

// How the driver recovers from a NodeDown verdict: relaunch the world
// from the newest consistent slot (kEpochRestart), or rewind survivors
// in memory and re-load only the dead tiles (kMigrate).
enum class RecoveryMode { kEpochRestart, kMigrate };

struct ResilientConfig {
  std::string ckpt_prefix;  // required: durable checkpoint path prefix
  int ckpt_every = 8;       // steps between durable checkpoints (>= 1)
  int max_restarts = 3;     // aborted epochs tolerated before giving up
  std::uint64_t init_seed = 7;
  RecoveryMode recovery = RecoveryMode::kEpochRestart;

  // Optional per-rank tracers (size >= nranks): ranks attach them so
  // node_down / restart spans land in the trace.  Not owned.
  std::vector<cluster::Tracer>* tracers = nullptr;

  // Optional per-rank hook invoked right after a rank finishes the last
  // step of the *completed* epoch (aborted epochs never reach it).
  // Tests use it to capture the final model state for bit-identity
  // checks; it must be thread-safe across ranks.
  std::function<void(cluster::RankContext&, class Model&)> on_complete;
};

struct ResilientStats {
  int steps = 0;     // steps of the completed run
  int restarts = 0;  // epochs aborted by a NodeDown verdict
  std::vector<cluster::NodeDownVerdict> verdicts;  // one per restart
  std::vector<long> restart_steps;  // checkpoint step each epoch resumed from
  int migrations = 0;   // dead tiles adopted live (kMigrate only)
  int rebalances = 0;   // tiles handed back to hot-joined boards
  // Per recovery event: virtual time from the verdict's detection to the
  // last rank completing its first post-recovery step -- the time the
  // campaign was not making forward progress.  Comparable across
  // recovery modes (bench_recovery plots exactly this).
  std::vector<Microseconds> recovery_us;
};

// Thrown when a run aborts more than max_restarts times: the failure is
// not survivable by restarting (e.g. the plan kills a node every epoch).
struct RestartExhausted : std::runtime_error {
  RestartExhausted(int after_restarts, const cluster::NodeDownVerdict& v)
      : std::runtime_error(
            "run_resilient: giving up after " +
            std::to_string(after_restarts) +
            " restarts (last verdict: rank " + std::to_string(v.rank) +
            " down in epoch " + std::to_string(v.epoch) + " at t=" +
            std::to_string(v.detected_us) + " us)"),
        restarts(after_restarts), last_verdict(v) {}
  int restarts;
  cluster::NodeDownVerdict last_verdict;
};

// Run `steps` model steps across all of rt's ranks (one tile per rank;
// mcfg.px * mcfg.py must equal rt's rank count), surviving scheduled
// node kills by restarting from the newest consistent checkpoint.
// Collective over the whole machine; returns once on the driver thread.
ResilientStats run_resilient(cluster::Runtime& rt, const ModelConfig& mcfg,
                             int steps, const ResilientConfig& rcfg);

}  // namespace hyades::gcm
