// Restart-from-checkpoint resilience: the driver that survives hard
// node failures.
//
// run_resilient executes a gyre-style model run in *epochs*.  Within an
// epoch every rank steps its tile normally, saving a durable checkpoint
// every `ckpt_every` steps into one of two alternating on-disk slots
// (double buffering: while one slot is being rewritten the other always
// holds a complete, mutually consistent set of rank files).  When a
// scheduled node kill fires, the dying node's ranks go silent at their
// next communication point; a surviving partner's receive escalates
// through the membership service, the plan-pure NodeDown verdict poisons
// the message bus, and every survivor unwinds its epoch.  The driver
// then scans both checkpoint slots, picks the newest step present and
// identical on *every* rank, bumps the epoch (which shifts every
// transport tag by kEpochTagStride, so stale pre-failure messages can
// never be mistaken for restarted traffic), and relaunches all ranks
// from that step.  After `max_restarts` aborted epochs it gives up with
// a typed RestartExhausted error -- it never hangs.
//
// Determinism: stepping is bit-deterministic and checkpoints are bit
// exact, so any survivable kill schedule finishes with final state
// bit-identical to the failure-free run; with no kills scheduled the
// epoch loop runs exactly once and adds no comm, clock, or accounting
// effects beyond the periodic checkpoint barrier.
//
// Elastic membership (RecoveryMode::kMigrate) replaces the
// restart-the-world epoch with *live tile migration*: every rank keeps a
// two-deep in-memory ring of committed cut snapshots alongside the
// durable per-tile files, so after a NodeDown verdict the survivors
// rewind from memory while only the dead node's tiles are re-read from
// their newest durable checkpoints by adopter ranks re-homed onto
// surviving boards (neighbor-preferring placement, round-robin
// fallback).  The epoch tag still bumps -- stale traffic ages out
// exactly as under restart -- but the survivors pay no restart cost and
// no disk I/O, so recovery is strictly faster.  A scheduled NodeJoin
// hands the migrated tiles back to the replacement board at the first
// checkpoint cut at or past its step, rebalancing the load.  State
// evolution is placement-independent, so every recovery and rebalance
// finishes bit-identical to the failure-free run.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/fault.hpp"
#include "cluster/runtime.hpp"
#include "cluster/trace.hpp"
#include "gcm/config.hpp"

namespace hyades::gcm {

// How the driver recovers from a NodeDown verdict: relaunch the world
// from the newest consistent slot (kEpochRestart), or rewind survivors
// in memory and re-load only the dead tiles (kMigrate).
enum class RecoveryMode { kEpochRestart, kMigrate };

struct ResilientConfig {
  std::string ckpt_prefix;  // required: durable checkpoint path prefix
  int ckpt_every = 8;       // steps between durable checkpoints (>= 1)
  int max_restarts = 3;     // aborted epochs tolerated before giving up
  std::uint64_t init_seed = 7;
  RecoveryMode recovery = RecoveryMode::kEpochRestart;

  // Depth of the in-memory snapshot ring (kMigrate only; >= 2).  Depth
  // 2 covers the one-cut skew collective barriers allow between live
  // ranks; deeper rings keep older cuts live so the older-cut rung can
  // reach further back under long detection latencies.  The durable
  // on-disk store stays two-slot regardless (a file-format property).
  int ring_depth = 2;

  // Test/chaos hook invoked on the driver thread when a NodeDown
  // verdict is caught, before any recovery planning -- the chaos
  // harness uses it to damage durable files deterministically (bit rot
  // after commit), exercising the degradation ladder.  Not called on
  // fault-free runs.
  std::function<void(int epoch, const cluster::NodeDownVerdict&)>
      pre_recovery;

  // Optional per-rank tracers (size >= nranks): ranks attach them so
  // node_down / restart spans land in the trace.  Not owned.
  std::vector<cluster::Tracer>* tracers = nullptr;

  // Optional per-rank hook invoked right after a rank finishes the last
  // step of the *completed* epoch (aborted epochs never reach it).
  // Tests use it to capture the final model state for bit-identity
  // checks; it must be thread-safe across ranks.
  std::function<void(cluster::RankContext&, class Model&)> on_complete;
};

// The degradation ladder's rungs, in the order recovery attempts them
// under kMigrate.  Epoch restart is both a mode and the ladder's
// next-to-last rung: when migration cannot be planned (no survivors, a
// corrupt adopted tile with no older cut, a ring miss), the driver
// falls back to restarting the world from the newest consistent slot
// before giving up with a typed RecoveryExhausted.
enum class RecoveryRung {
  kMigrate = 0,          // newest common cut, survivors rewind in memory
  kMigrateOlderCut = 1,  // same plan, one durable cut further back
  kEpochRestart = 2,     // everyone reloads the newest consistent slot
};
[[nodiscard]] const char* to_string(RecoveryRung rung);

// One attempted rung of one recovery event: where it aimed and, when it
// failed, why the ladder fell through to the next rung.
struct RungAttempt {
  RecoveryRung rung = RecoveryRung::kMigrate;
  long step = -1;      // recovery step this rung targeted (-1: none found)
  bool ok = false;
  std::string reason;  // failure cause; empty when ok
};

// One recovery event: the verdict that triggered it and the full ladder
// history (every attempt, in order; the last one succeeded unless the
// run ended in RecoveryExhausted).
struct RecoveryEvent {
  cluster::NodeDownVerdict verdict;
  std::vector<RungAttempt> attempts;
  // The rung the recovery landed on (the last attempt's).
  [[nodiscard]] RecoveryRung landed() const {
    return attempts.empty() ? RecoveryRung::kMigrate : attempts.back().rung;
  }
  // Rungs fallen before landing: 0 for a first-choice recovery.
  [[nodiscard]] int downgrades() const {
    return attempts.empty() ? 0 : static_cast<int>(attempts.size()) - 1;
  }
};

struct ResilientStats {
  int steps = 0;     // steps of the completed run
  int restarts = 0;  // epochs aborted by a NodeDown verdict
  std::vector<cluster::NodeDownVerdict> verdicts;  // one per restart
  std::vector<long> restart_steps;  // checkpoint step each epoch resumed from
  int migrations = 0;   // dead tiles adopted live (kMigrate only)
  int rebalances = 0;   // tiles handed back to hot-joined boards
  // Per recovery event: virtual time from the verdict's detection to the
  // last rank completing its first post-recovery step -- the time the
  // campaign was not making forward progress.  Comparable across
  // recovery modes (bench_recovery plots exactly this).
  std::vector<Microseconds> recovery_us;
  // Per recovery event, aligned with `verdicts`: the degradation-ladder
  // history (which rungs were tried, which one the recovery landed on).
  std::vector<RecoveryEvent> ladder;
};

// Base of the typed recovery-error hierarchy: every way run_resilient
// gives up is a subclass carrying the context a campaign operator needs
// to triage -- the primary casualty, the recovery step and durable slot
// in question (-1 when not applicable), and the ladder rung being
// attempted when recovery became impossible.  Still a runtime_error, so
// pre-existing generic handlers (the farm's failed-member triage) keep
// working unchanged.
class RecoveryError : public std::runtime_error {
 public:
  RecoveryError(const std::string& what_msg, int failed_rank, long at_step,
                int in_slot, RecoveryRung at_rung)
      : std::runtime_error(what_msg),
        rank(failed_rank),
        step(at_step),
        slot(in_slot),
        rung(at_rung) {}
  int rank;           // primary casualty rank, or -1
  long step;          // recovery step in question, or -1
  int slot;           // durable slot in question, or -1
  RecoveryRung rung;  // rung under attempt when the error was raised
};

// Thrown when a run aborts more than max_restarts times: the failure is
// not survivable by restarting (e.g. the plan kills a node every epoch).
struct RestartExhausted : RecoveryError {
  RestartExhausted(int after_restarts, const cluster::NodeDownVerdict& v)
      : RecoveryError(
            "run_resilient: giving up after " +
                std::to_string(after_restarts) +
                " restarts (last verdict: rank " + std::to_string(v.rank) +
                " down in epoch " + std::to_string(v.epoch) + " at t=" +
                std::to_string(v.detected_us) + " us)",
            v.rank, /*at_step=*/-1, /*in_slot=*/-1,
            RecoveryRung::kEpochRestart),
        restarts(after_restarts), last_verdict(v) {}
  int restarts;
  cluster::NodeDownVerdict last_verdict;
};

// Thrown when every rung of the degradation ladder failed for one
// recovery event: migration could not be planned at any reachable cut
// AND no consistent, CRC-verified durable slot exists to restart the
// epoch from.  Carries the full ladder history so the error itself
// shows what was tried and why each rung fell through.
struct RecoveryExhausted : RecoveryError {
  RecoveryExhausted(const cluster::NodeDownVerdict& v,
                    std::vector<RungAttempt> ladder_history)
      : RecoveryError(
            "run_resilient: recovery exhausted after " +
                std::to_string(ladder_history.size()) +
                " ladder rung(s) (verdict: rank " + std::to_string(v.rank) +
                ", " + std::to_string(v.dead_ranks().size()) +
                " dead rank(s), epoch " + std::to_string(v.epoch) +
                "): " +
                (ladder_history.empty() ? std::string("no rung attempted")
                                        : ladder_history.back().reason),
            v.rank, /*at_step=*/-1, /*in_slot=*/-1,
            ladder_history.empty() ? RecoveryRung::kMigrate
                                   : ladder_history.back().rung),
        verdict(v), history(std::move(ladder_history)) {}
  cluster::NodeDownVerdict verdict;
  std::vector<RungAttempt> history;
};

// Run `steps` model steps across all of rt's ranks (one tile per rank;
// mcfg.px * mcfg.py must equal rt's rank count), surviving scheduled
// node kills by restarting from the newest consistent checkpoint.
// Collective over the whole machine; returns once on the driver thread.
ResilientStats run_resilient(cluster::Runtime& rt, const ModelConfig& mcfg,
                             int steps, const ResilientConfig& rcfg);

}  // namespace hyades::gcm
