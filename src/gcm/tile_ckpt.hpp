// The checkpoint module: the single owner of durable tile-checkpoint
// file naming and the HYADES03 wire format.
//
// Every rank's tile state is an independently loadable unit: one file
// per (prefix, slot, rank), self-describing ("HYADES03": magic, config
// words, step, payload byte count, CRC-32) and published atomically
// (written to "<path>.tmp", CRC-verified by re-reading the temporary,
// then renamed).  Every failure path removes the temporary, so a failed
// save never strands a ".tmp" next to the live slot files.
//
// Path discipline (enforced by hyades-lint's ckpt-path rule): nothing
// outside this module composes checkpoint file names -- callers hold an
// opaque prefix and go through slot_prefix()/rank_path().  That is what
// lets the elastic-membership driver reason about per-tile recovery
// points (newest_rank_ckpt) without ad-hoc string surgery spread over
// gcm/ and farm/.
#pragma once

#include <functional>
#include <string>

#include "gcm/config.hpp"
#include "gcm/state.hpp"

namespace hyades::gcm::tile_ckpt {

// "<prefix>.a" / "<prefix>.b": the two alternating durable slots the
// resilient driver rotates through (double buffering).
[[nodiscard]] std::string slot_prefix(const std::string& prefix, int slot);

// "<prefix>.rank<N>": the per-tile file of one group rank.
[[nodiscard]] std::string rank_path(const std::string& prefix,
                                    int group_rank);

// Write one tile's state to `path` atomically: serialize, CRC, write to
// "<path>.tmp", re-read and verify the temporary, rename.  Throws
// std::runtime_error on any failure -- after removing the temporary.
void save(const std::string& path, const ModelConfig& cfg, const State& s);

// Load one tile's state from `path`, verifying magic, config words,
// payload size and CRC before touching `s`.  Throws on any mismatch.
void load(const std::string& path, const ModelConfig& cfg, State* s);

// Read the step counter out of a checkpoint header without loading the
// payload.  Throws if the file is missing or not HYADES03.
[[nodiscard]] long peek_step(const std::string& path);

// Deep verification without touching any State: magic, config words,
// payload byte count, and the CRC-32 over the full payload all check
// out.  peek_step only reads the header, so a bit-flipped payload
// passes it -- the recovery ladder calls this before committing to a
// rung, so a corrupt durable tile degrades the recovery instead of
// crashing an adopter mid-load.  Returns false (never throws) on any
// damage, including a missing file.
[[nodiscard]] bool verify(const std::string& path, const ModelConfig& cfg);

// A slot is usable as a collective restart point only when every rank's
// file exists, parses, and reports the same step.
struct SlotScan {
  bool consistent = false;
  long step = -1;
};
[[nodiscard]] SlotScan scan_slot(const std::string& prefix, int slot,
                                 int nranks);

// The newest durable checkpoint of one rank's tile with step <=
// max_step, searching both slots.  step == -1 when neither slot holds a
// usable file -- per-tile recovery (live migration) loads exactly one
// tile this way, without requiring whole-slot consistency.
struct TileHit {
  std::string path;
  long step = -1;
};
[[nodiscard]] TileHit newest_rank_ckpt(const std::string& prefix, int rank,
                                       long max_step);

// Remove every rank file of both slots (ignores missing files).
void remove_slots(const std::string& prefix, int nranks);

// Test-only fault injection: invoked with the temporary file's path
// after the write and before the post-write verify, so tests can
// corrupt or delete the temporary and assert the failure paths clean
// up.  Pass nullptr to clear.  Not thread-safe; set it only around
// single-threaded test saves.
void set_test_corrupt_hook(std::function<void(const std::string&)> hook);

}  // namespace hyades::gcm::tile_ckpt
