// Facade tying one tile's grid, state and stepper together behind the
// public API a model user sees.  Every rank of a component's
// communicator group constructs one Model; methods marked *collective*
// must be called by all ranks of the group together.
#pragma once

#include <cstdint>
#include <memory>

#include "comm/comm.hpp"
#include "gcm/config.hpp"
#include "gcm/decomp.hpp"
#include "gcm/grid.hpp"
#include "gcm/state.hpp"
#include "gcm/step.hpp"

namespace hyades::gcm {

class Model {
 public:
  // The comm group's size must equal cfg.px * cfg.py (one tile per rank).
  Model(const ModelConfig& cfg, comm::Comm& comm);

  // Set the initial stratification plus a small deterministic
  // perturbation keyed to *global* cell indices (so different
  // decompositions start from the same global state).
  void initialize(std::uint64_t seed = 7);

  // Advance one step / many steps (collective).
  StepStats step(const SurfaceForcing* forcing = nullptr);

  // Outcome of a Model::run, for the fault-tolerance machinery: how many
  // steps actually executed (replays included) and how many rollbacks
  // were taken.  Fault-free runs report steps_run == steps requested.
  struct RunStats {
    int steps_run = 0;
    int rollbacks = 0;
  };
  // Run `steps` steps.  With cfg.retry_budget >= 0, degrades gracefully
  // under communication faults: a step in which any rank exceeds the
  // retransmit budget is rolled back to the last in-memory checkpoint
  // and replayed (see ModelConfig's fault-tolerance knobs).
  RunStats run(int steps);

  // ---- diagnostics (collective; identical result on every rank) ------
  double mean_theta();
  double total_theta_volume();   // sum theta * cell volume (conservation)
  double total_salt_volume();
  double kinetic_energy();       // 0.5 rho0 sum (u^2+v^2) V
  double max_abs_w();
  double max_cfl();              // advective CFL over the tile interior
  double max_surface_divergence();  // residual of eq. (2) after projection

  // Computational load imbalance across the group's tiles: the busiest
  // tile's wet-cell count over the mean (1.0 = perfectly balanced).  The
  // paper's Figure 5 notes tile connectivity "can be tuned to reduce the
  // overall computational load"; with land-heavy tiles the whole group
  // waits for the wettest tile at every global sum.
  double load_imbalance();

  // Gather a horizontal field to group rank 0 (collective); other ranks
  // receive an empty array.  k selects the level for 3-D fields.
  Array2D<double> gather_theta(int k);
  Array2D<double> gather_speed(int k);  // cell-centered |u|
  Array2D<double> gather_ps();

  // ---- checkpoint / restart -------------------------------------------
  // Each rank writes/reads its own tile file "<prefix>.rank<N>".  A
  // restarted run continues bit-identically (the Adams-Bashforth history
  // and the step counter are included).  Files are self-describing
  // ("HYADES03": magic, config words, step, payload size, CRC-32) and
  // published atomically (written to "<path>.tmp", then renamed), so a
  // crash mid-save leaves the previous complete checkpoint intact.  load
  // fails fast with a descriptive error on a bad magic, configuration
  // mismatch, truncation, or CRC failure -- corrupt state never reaches
  // the fields.
  void save_checkpoint(const std::string& prefix) const;
  void load_checkpoint(const std::string& prefix);

  // The on-disk file name for a group rank's tile checkpoint.
  static std::string checkpoint_path(const std::string& prefix,
                                     int group_rank);
  // Read the step counter out of a checkpoint header without loading the
  // payload (the resilient driver picks the restart step this way).
  // Throws if the file is missing or its header is not HYADES03.
  static long checkpoint_step(const std::string& path);

  [[nodiscard]] const ModelConfig& config() const { return cfg_; }
  [[nodiscard]] const Decomp& decomp() const { return dec_; }
  [[nodiscard]] const TileGrid& grid() const { return grid_; }
  State& state() { return state_; }
  [[nodiscard]] const State& state() const { return state_; }
  Timestepper& stepper() { return *stepper_; }
  comm::Comm& comm() { return comm_; }

 private:
  Array2D<double> gather2d(const Array2D<double>& local);
  double sum_weighted(const Array3D<double>& f, bool squared, bool weight_ke);

  ModelConfig cfg_;
  comm::Comm& comm_;
  Decomp dec_;
  TileGrid grid_;
  State state_;
  std::unique_ptr<Timestepper> stepper_;
};

}  // namespace hyades::gcm
