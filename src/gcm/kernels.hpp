// Finite-volume kernels for the PS (prognostic) and DS (diagnostic)
// phases of Figure 6.  Every kernel operates on a rectangular local-index
// window -- the PS kernels run on windows *wider than the interior*
// (overcomputation, Section 4), which is what confines PS communication
// to a single halo exchange per field per time step.
//
// Each kernel returns the number of floating-point operations it
// performed (counted per wet point from the operation's arithmetic), so
// the time-stepper can charge virtual compute time and measure the
// paper's Nps / Nds parameters (Figure 11).
#pragma once

#include <array>

#include "gcm/config.hpp"
#include "gcm/grid.hpp"
#include "gcm/state.hpp"

namespace hyades::gcm::kernels {

struct Range {
  int i0, i1, j0, j1;  // local index window, half-open
};

[[nodiscard]] inline bool empty(const Range& r) {
  return r.i0 >= r.i1 || r.j0 >= r.j1;
}

// Interior extended by `e` halo cells on every side (e <= dec.halo).
Range extended(const Decomp& dec, int e);

// Overlap split of a PS window (ModelConfig::overlap_comm): the largest
// sub-window of `r` that can be computed while a width-`halo` exchange
// is still in flight.  Every PS stencil reaches at most `halo` cells, so
// cells at least 2*halo from a neighbor-facing tile edge read only
// tile-owned data, which the exchange never modifies.  Sides without a
// neighbor are not shrunk (nothing arrives there).  `margin` widens the
// band (the hydrostatic pass runs one cell wider because the momentum
// kernel reads phi one cell beyond its own window; hydrostatics is
// column-local, so the widened cells still read only owned data).
Range interior(const Decomp& dec, const Range& r, int margin = 0);

// The complement r \ ri as up to four disjoint rectangles (ri must be
// the `interior` of r, or empty).  Returns the number written to `out`.
int rim(const Range& r, const Range& ri, std::array<Range, 4>& out);

// Buoyancy from the EOS and hydrostatic integration of phi (eq. between
// (1) and (3): p_hy from b).  Fills state.phi over the window.
double hydrostatic(const ModelConfig& cfg, const TileGrid& grid,
                   const Array3D<double>& theta, const Array3D<double>& salt,
                   Array3D<double>& phi, const Range& r);

// Momentum tendencies Gu, Gv: advection, Coriolis, hydrostatic pressure
// gradient, horizontal friction, and explicit vertical friction with
// coefficient `visc_v` (pass 0 when vertical mixing is implicit).
double momentum_tendencies(const ModelConfig& cfg, const TileGrid& grid,
                           const Array3D<double>& u, const Array3D<double>& v,
                           const Array3D<double>& w,
                           const Array3D<double>& phi, Array3D<double>& gu,
                           Array3D<double>& gv, double visc_v,
                           const Range& r);

// Flux-form tracer tendency (advection + diffusion) for one tracer.
double tracer_tendency(const ModelConfig& cfg, const TileGrid& grid,
                       const Array3D<double>& u, const Array3D<double>& v,
                       const Array3D<double>& w, const Array3D<double>& tr,
                       Array3D<double>& gtr, double kappa_h, double kappa_v,
                       const Range& r);

// Conservative masked horizontal Laplacian: out = (1/V) sum_faces
// w_f (f_nb - f_c).  `mask` selects the point type (hFacC for tracers,
// hFacW/hFacS for velocities); face openness is min(mask_c, mask_nb).
// Needs f valid one cell beyond the window.
double masked_laplacian(const ModelConfig& cfg, const TileGrid& grid,
                        const Array3D<double>& f, const Array3D<double>& mask,
                        Array3D<double>& out, const Range& r);

// Biharmonic (del^4) horizontal mixing: g -= a4 * lap(lap(f)), built from
// two conservative Laplacian passes (so tracer totals are preserved to
// round-off).  `scratch` must be an extended-size work array; f must be
// valid two cells beyond the window.
double biharmonic_tendency(const ModelConfig& cfg, const TileGrid& grid,
                           const Array3D<double>& f,
                           const Array3D<double>& mask,
                           Array3D<double>& scratch, Array3D<double>& g,
                           double a4, const Range& r);

// Adams-Bashforth-2 update: f += dt * ((1.5+eps) g - (0.5+eps) g_nm1),
// masked by `mask` (> 0 means active); plain forward Euler on the first
// step.
double ab2_update(const ModelConfig& cfg, const Array3D<double>& mask,
                  Array3D<double>& f, const Array3D<double>& g,
                  const Array3D<double>& g_nm1, bool first_step,
                  const Range& r);

// Non-hydrostatic w tendency (advection + friction) at interior w points
// (cell-top faces with wet cells on both sides; the buoyancy force is
// absorbed into the hydrostatic pressure, Section 3.1).
double w_tendencies(const ModelConfig& cfg, const TileGrid& grid,
                    const Array3D<double>& u, const Array3D<double>& v,
                    const Array3D<double>& w, Array3D<double>& gw,
                    double visc_v, const Range& r);

// Full 3-D divergence / dt per wet cell (rhs of the non-hydrostatic
// elliptic equation; columns sum to ~0 after the 2-D surface solve).
double nh_rhs(const ModelConfig& cfg, const TileGrid& grid,
              const Array3D<double>& u, const Array3D<double>& v,
              const Array3D<double>& w, Array3D<double>& rhs, const Range& r);

// Subtract the non-hydrostatic pressure gradient from (u, v, w).
double correct_velocity_nh(const ModelConfig& cfg, const TileGrid& grid,
                           const Array3D<double>& phi_nh, Array3D<double>& u,
                           Array3D<double>& v, Array3D<double>& w,
                           const Range& r);

// Diagnose the downward velocity w at cell tops from continuity,
// integrating from the bottom (w = 0 beneath the deepest wet cell).
double diagnose_w(const ModelConfig& cfg, const TileGrid& grid,
                  const Array3D<double>& u, const Array3D<double>& v,
                  Array3D<double>& w, const Range& r);

// DS right-hand side: depth-integrated volume-flux divergence / dt
// (the discrete form of eq. (3)'s source term).
double ps_rhs(const ModelConfig& cfg, const TileGrid& grid,
              const Array3D<double>& u, const Array3D<double>& v,
              Array2D<double>& rhs, const Range& r);

// Backward-Euler vertical diffusion: solves, per column,
//   (I - dt d/dz (kv d/dz)) f_new = f
// with no-flux top/bottom boundaries, in conservative flux form
// (column integrals of f * dz * hFac are preserved to round-off).
// Unconditionally stable, tile-local (no communication).
double implicit_vertical_diffusion(const ModelConfig& cfg,
                                   const TileGrid& grid, Array3D<double>& f,
                                   const Array3D<double>& mask, double kv,
                                   const Range& r);

// Subtract the surface-pressure gradient: u -= dt dps/dx, v -= dt dps/dy
// on open faces (the correction that enforces eq. (2)).
double correct_velocity(const ModelConfig& cfg, const TileGrid& grid,
                        const Array2D<double>& ps, Array3D<double>& u,
                        Array3D<double>& v, const Range& r);

// Zero velocities on closed faces (defensive; tendencies are already
// masked).
void apply_velocity_masks(const TileGrid& grid, Array3D<double>& u,
                          Array3D<double>& v, const Range& r);

// Depth-integrated horizontal volume-flux divergence of one column
// (shared by diagnose_w / ps_rhs; exposed for tests).
double column_flux_divergence(const TileGrid& grid, const Array3D<double>& u,
                              const Array3D<double>& v, int i, int j, int k);

}  // namespace hyades::gcm::kernels
