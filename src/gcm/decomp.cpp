#include "gcm/decomp.hpp"

#include <stdexcept>

namespace hyades::gcm {

Decomp::Decomp(const ModelConfig& cfg, int group_rank)
    : px(cfg.px),
      py(cfg.py),
      tx(group_rank % cfg.px),
      ty(group_rank / cfg.px),
      snx(cfg.snx()),
      sny(cfg.sny()),
      halo(cfg.halo),
      i0(tx * cfg.snx()),
      j0(ty * cfg.sny()) {
  if (group_rank < 0 || group_rank >= cfg.tiles()) {
    throw std::invalid_argument("Decomp: rank outside tile grid");
  }
  neighbors[comm::kEast] = rank_of(tx + 1, ty);
  neighbors[comm::kWest] = rank_of(tx - 1, ty);
  neighbors[comm::kNorth] = ty + 1 < py ? rank_of(tx, ty + 1) : -1;
  neighbors[comm::kSouth] = ty - 1 >= 0 ? rank_of(tx, ty - 1) : -1;
}

}  // namespace hyades::gcm
