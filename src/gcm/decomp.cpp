#include "gcm/decomp.hpp"

#include <algorithm>
#include <cmath>

namespace hyades::gcm {

namespace {

// Interior size of tile `t` of `p` tiles over `n` cells: the remainder
// n % p is spread one cell at a time over the leading tiles, so sizes
// differ by at most one and depend only on the tile's own coordinate
// (all row-mates share sny, all column-mates share snx -- the invariant
// the halo exchange strip sizes rely on).  Identical to n / p whenever
// p divides n.
int tile_span(int n, int p, int t) { return n / p + (t < n % p ? 1 : 0); }

// Global offset of tile `t`'s first interior cell.
int tile_start(int n, int p, int t) { return t * (n / p) + std::min(t, n % p); }

void check_shape(const ModelConfig& cfg) {
  if (cfg.px < 1 || cfg.py < 1 || cfg.px > cfg.nx || cfg.py > cfg.ny) {
    throw DecompError(DecompError::Code::kBadShape,
                      "Decomp: more tiles than grid cells");
  }
  // The halo must fit the *smallest* tile (the floor-division size);
  // a wider halo would read past a neighbour's interior and silently
  // corrupt the exchange.
  if (cfg.halo > cfg.nx / cfg.px || cfg.halo > cfg.ny / cfg.py) {
    throw DecompError(DecompError::Code::kHaloTooWide,
                      "Decomp: halo wider than smallest tile");
  }
}

}  // namespace

std::pair<int, int> choose_tiles(int nranks, int nx, int ny) {
  if (nranks < 1 || nx < 1 || ny < 1) {
    throw DecompError(DecompError::Code::kBadShape,
                      "choose_tiles: empty grid or rank count");
  }
  int best_px = -1;
  double best_tile = 0.0;
  double best_grid = 0.0;
  for (int px = 1; px <= nranks; ++px) {
    if (nranks % px != 0) continue;
    const int py = nranks / px;
    if (px > nx || py > ny) continue;  // would create empty tiles
    // Primary key: tiles as square as possible; secondary: the rank
    // grid itself as square as possible.  Log-ratio magnitudes make
    // 2:1 and 1:2 equally good.
    const double tile_cost = std::fabs(
        std::log((static_cast<double>(nx) / px) / (static_cast<double>(ny) / py)));
    const double grid_cost =
        std::fabs(std::log(static_cast<double>(px) / py));
    const bool better =
        best_px < 0 || tile_cost < best_tile - 1e-12 ||
        (tile_cost < best_tile + 1e-12 && grid_cost < best_grid - 1e-12);
    if (better) {
      best_px = px;
      best_tile = tile_cost;
      best_grid = grid_cost;
    }
  }
  if (best_px < 0) {
    throw DecompError(DecompError::Code::kBadShape,
                      "choose_tiles: no tile grid fits");
  }
  return {best_px, nranks / best_px};
}

Decomp::Decomp(const ModelConfig& cfg, int group_rank)
    : px(cfg.px),
      py(cfg.py),
      tx(group_rank % std::max(cfg.px, 1)),
      ty(group_rank / std::max(cfg.px, 1)),
      halo(cfg.halo) {
  check_shape(cfg);
  if (group_rank < 0 || group_rank >= cfg.tiles()) {
    throw DecompError(DecompError::Code::kBadRank,
                      "Decomp: rank outside tile grid");
  }
  snx = tile_span(cfg.nx, px, tx);
  sny = tile_span(cfg.ny, py, ty);
  i0 = tile_start(cfg.nx, px, tx);
  j0 = tile_start(cfg.ny, py, ty);
  neighbors[comm::kEast] = rank_of(tx + 1, ty);
  neighbors[comm::kWest] = rank_of(tx - 1, ty);
  neighbors[comm::kNorth] = ty + 1 < py ? rank_of(tx, ty + 1) : -1;
  neighbors[comm::kSouth] = ty - 1 >= 0 ? rank_of(tx, ty - 1) : -1;
}

}  // namespace hyades::gcm
