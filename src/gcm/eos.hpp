// Equation of state.
//
// Both isomorphs use the same linear form (Section 3: the isomorphism
// lets one kernel serve ocean and atmosphere):
//
//   b = g * (alpha * (theta - theta0) - beta * (salt - salt0))
//
// Ocean: alpha/beta are the thermal-expansion and haline-contraction
// coefficients.  Atmosphere: alpha = 1/theta_ref turns b into the dry
// potential-temperature buoyancy g*theta'/theta_ref and beta = 0 (the
// `salt` array then carries a passive moisture proxy).
#pragma once

#include "gcm/config.hpp"

namespace hyades::gcm {

// Buoyancy (m/s^2), positive upward for light fluid.
inline double buoyancy(const ModelConfig& cfg, double theta, double salt) {
  return cfg.gravity * (cfg.eos_alpha * (theta - cfg.theta0) -
                        cfg.eos_beta * (salt - cfg.salt0));
}

// Flops per buoyancy evaluation (for the performance accounting).
inline constexpr double kEosFlops = 6.0;

}  // namespace hyades::gcm
