// The non-hydrostatic 3-D elliptic system (Section 3.1: outside the
// hydrostatic limit the model carries a non-hydrostatic pressure
// component found from a three-dimensional elliptic equation):
//
//     div3( grad3 phi_nh ) = div3(u*, v*, w*) / dt
//
// Discretely the 7-point operator couples each wet cell to its 4 lateral
// and 2 vertical neighbours with finite-volume face weights; as in the
// 2-D case the solver works with L3 = -A3 (SPD up to the constant).
//
// Preconditioner: exact vertical-column tridiagonal solves.  At climate
// aspect ratios the vertical coupling (rA/dzc, with dz ~ 100 m) exceeds
// the lateral coupling (dz*dy/dx, with dx ~ 10^5 m) by many orders of
// magnitude, so solving the columns exactly removes essentially all of
// the operator's stiffness.
#pragma once

#include "gcm/config.hpp"
#include "gcm/decomp.hpp"
#include "gcm/grid.hpp"
#include "support/array.hpp"

namespace hyades::gcm {

class EllipticOperator3 {
 public:
  EllipticOperator3(const ModelConfig& cfg, const Decomp& dec,
                    const TileGrid& grid);

  // out = L3 p over the tile interior; p needs a 1-cell lateral halo.
  double apply(const Array3D<double>& p, Array3D<double>& out) const;

  // z = M^-1 r with M = the vertical tridiagonal part of L3 (plus the
  // full diagonal), solved per column.  SPD, tile-local.
  double precondition(const Array3D<double>& r, Array3D<double>& z) const;

  [[nodiscard]] bool is_wet(int i, int j, int k) const {
    return diag_(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                 static_cast<std::size_t>(k)) > 0;
  }
  [[nodiscard]] const Array3D<double>& diagonal() const { return diag_; }

 private:
  const ModelConfig& cfg_;
  const Decomp& dec_;
  const TileGrid& grid_;
  // Face weights: wW_(i,j,k) couples (i-1,j,k)-(i,j,k); wS_ couples in j;
  // wT_(i,j,k) couples (i,j,k-1)-(i,j,k) (the top face of cell k).
  Array3D<double> wW_, wS_, wT_, diag_;
  // Thomas factors of the column tridiagonal.
  Array3D<double> cp_, inv_;
};

}  // namespace hyades::gcm
