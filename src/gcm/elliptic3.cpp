#include "gcm/elliptic3.hpp"

#include <algorithm>

namespace hyades::gcm {

namespace {
inline double at(const Array3D<double>& f, int i, int j, int k) {
  return f(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
           static_cast<std::size_t>(k));
}
inline double& at(Array3D<double>& f, int i, int j, int k) {
  return f(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
           static_cast<std::size_t>(k));
}
}  // namespace

EllipticOperator3::EllipticOperator3(const ModelConfig& cfg, const Decomp& dec,
                                     const TileGrid& grid)
    : cfg_(cfg), dec_(dec), grid_(grid) {
  const auto ex = static_cast<std::size_t>(dec.ext_x());
  const auto ey = static_cast<std::size_t>(dec.ext_y());
  const auto ez = static_cast<std::size_t>(cfg.nz);
  for (Array3D<double>* a : {&wW_, &wS_, &wT_, &diag_, &cp_, &inv_}) {
    *a = Array3D<double>(ex, ey, ez, 0.0);
  }

  // Face weights (the same geometry the velocity correction uses, which
  // makes the 3-D projection exact).
  for (int i = 0; i < dec.ext_x(); ++i) {
    for (int j = 0; j < dec.ext_y(); ++j) {
      const auto sj = static_cast<std::size_t>(j);
      for (int k = 0; k < cfg.nz; ++k) {
        const double dz = grid.dzf[static_cast<std::size_t>(k)];
        at(wW_, i, j, k) = grid.hFacW(static_cast<std::size_t>(i), sj,
                                      static_cast<std::size_t>(k)) *
                           grid.dyC * dz / grid.dxC[sj];
        at(wS_, i, j, k) = grid.hFacS(static_cast<std::size_t>(i), sj,
                                      static_cast<std::size_t>(k)) *
                           grid.dxS[sj] * dz / grid.dyC;
        if (k > 0 &&
            grid.hFacC(static_cast<std::size_t>(i), sj,
                       static_cast<std::size_t>(k)) > 0 &&
            grid.hFacC(static_cast<std::size_t>(i), sj,
                       static_cast<std::size_t>(k - 1)) > 0) {
          const double dzc = grid.zC[static_cast<std::size_t>(k)] -
                             grid.zC[static_cast<std::size_t>(k - 1)];
          at(wT_, i, j, k) = grid.rAc[sj] / dzc;
        }
      }
    }
  }

  const int h = dec.halo;
  for (int i = h; i < h + dec.snx; ++i) {
    for (int j = h; j < h + dec.sny; ++j) {
      for (int k = 0; k < cfg.nz; ++k) {
        if (grid.hFacC(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                       static_cast<std::size_t>(k)) <= 0) {
          continue;
        }
        const double below = (k + 1 < cfg.nz) ? at(wT_, i, j, k + 1) : 0.0;
        at(diag_, i, j, k) = at(wW_, i, j, k) + at(wW_, i + 1, j, k) +
                             at(wS_, i, j, k) + at(wS_, i, j + 1, k) +
                             at(wT_, i, j, k) + below;
      }
    }
  }

  // Thomas factors of the column tridiagonal (full diagonal kept, so M
  // remains SPD even where columns decouple).
  for (int i = h; i < h + dec.snx; ++i) {
    for (int j = h; j < h + dec.sny; ++j) {
      double prev_cp = 0.0;
      bool have_prev = false;
      for (int k = 0; k < cfg.nz; ++k) {
        const double b = at(diag_, i, j, k);
        if (b <= 0) {
          have_prev = false;
          continue;
        }
        const double a = (have_prev && k > 0) ? -at(wT_, i, j, k) : 0.0;
        const double c = (k + 1 < cfg.nz) ? -at(wT_, i, j, k + 1) : 0.0;
        const double denom =
            std::max(b - a * (have_prev ? prev_cp : 0.0), 1e-12 * b);
        at(inv_, i, j, k) = 1.0 / denom;
        at(cp_, i, j, k) = c / denom;
        prev_cp = at(cp_, i, j, k);
        have_prev = true;
      }
    }
  }
}

double EllipticOperator3::apply(const Array3D<double>& p,
                                Array3D<double>& out) const {
  double flops = 0;
  const int h = dec_.halo;
  const int nz = cfg_.nz;
  for (int i = h; i < h + dec_.snx; ++i) {
    for (int j = h; j < h + dec_.sny; ++j) {
      for (int k = 0; k < nz; ++k) {
        const double d = at(diag_, i, j, k);
        if (d <= 0) {
          at(out, i, j, k) = 0.0;
          continue;
        }
        double acc = d * at(p, i, j, k);
        acc -= at(wW_, i, j, k) * at(p, i - 1, j, k);
        acc -= at(wW_, i + 1, j, k) * at(p, i + 1, j, k);
        acc -= at(wS_, i, j, k) * at(p, i, j - 1, k);
        acc -= at(wS_, i, j + 1, k) * at(p, i, j + 1, k);
        if (k > 0) acc -= at(wT_, i, j, k) * at(p, i, j, k - 1);
        if (k + 1 < nz) acc -= at(wT_, i, j, k + 1) * at(p, i, j, k + 1);
        at(out, i, j, k) = acc;
        flops += 13.0;
      }
    }
  }
  return flops;
}

double EllipticOperator3::precondition(const Array3D<double>& r,
                                       Array3D<double>& z) const {
  double flops = 0;
  const int h = dec_.halo;
  const int nz = cfg_.nz;
  for (int i = h; i < h + dec_.snx; ++i) {
    for (int j = h; j < h + dec_.sny; ++j) {
      bool have_prev = false;
      double prev_z = 0.0;
      for (int k = 0; k < nz; ++k) {
        if (at(diag_, i, j, k) <= 0) {
          at(z, i, j, k) = 0.0;
          have_prev = false;
          continue;
        }
        const double a = (have_prev && k > 0) ? -at(wT_, i, j, k) : 0.0;
        at(z, i, j, k) = (at(r, i, j, k) - a * prev_z) * at(inv_, i, j, k);
        prev_z = at(z, i, j, k);
        have_prev = true;
        flops += 3.0;
      }
      bool have_next = false;
      double next_z = 0.0;
      for (int k = nz - 1; k >= 0; --k) {
        if (at(diag_, i, j, k) <= 0) {
          have_next = false;
          continue;
        }
        if (have_next) {
          at(z, i, j, k) -= at(cp_, i, j, k) * next_z;
          flops += 2.0;
        }
        next_z = at(z, i, j, k);
        have_next = true;
      }
    }
  }
  return flops;
}

}  // namespace hyades::gcm
