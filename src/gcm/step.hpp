// The time-stepping loop of Figure 6: each step runs the Prognostic Step
// (PS: one halo exchange per 3-D state field, then tendency kernels with
// overcomputation) and the Diagnostic Step (DS: the elliptic surface
// pressure solve, one 2-D exchange + two global sums per CG iteration),
// then applies the pressure correction that enforces eq. (2).
//
// Alongside the numerics the stepper keeps the performance observables
// the paper's model consumes (Figure 11): flops per phase, exchange and
// solver communication time, and the mean CG iteration count Ni.
#pragma once

#include <memory>

#include "comm/comm.hpp"
#include "gcm/cg.hpp"
#include "gcm/cg3.hpp"
#include "gcm/config.hpp"
#include "gcm/elliptic.hpp"
#include "gcm/elliptic3.hpp"
#include "gcm/grid.hpp"
#include "gcm/physics.hpp"
#include "gcm/state.hpp"

namespace hyades::gcm {

struct StepStats {
  Microseconds tps_us = 0;       // PS wall (virtual) time
  Microseconds tps_exch_us = 0;  // of which halo exchange (start+wait)
  // Overlap mode (ModelConfig::overlap_comm) only; both 0 when off:
  Microseconds tps_interior_us = 0;  // interior compute under the exchange
  Microseconds overlap_us = 0;       // comm time hidden under compute
  Microseconds tds_us = 0;       // DS wall time (solve + correction)
  int cg_iterations = 0;
  double cg_residual = 0.0;
  bool cg_converged = false;
  int cg3_iterations = 0;        // non-hydrostatic solve (0 when hydrostatic)
  bool cg3_converged = true;
  double ps_flops = 0.0;
  double ds_flops = 0.0;
};

// Accumulated observables for the performance model (Section 5.2).
struct PerfObservables {
  long steps = 0;
  double ps_flops = 0, ds_flops = 0;
  long cg_iterations = 0;
  Microseconds tps_us = 0, tps_exch_us = 0, tds_us = 0;
  Microseconds tps_interior_us = 0, overlap_us = 0;  // overlap mode only

  [[nodiscard]] double mean_ni() const {
    return steps ? static_cast<double>(cg_iterations) /
                       static_cast<double>(steps)
                 : 0.0;
  }
  // Flops per wet interior cell per step (the paper's Nps).
  [[nodiscard]] double nps(std::int64_t wet_cells) const {
    return steps && wet_cells ? ps_flops / static_cast<double>(steps) /
                                    static_cast<double>(wet_cells)
                              : 0.0;
  }
  // Flops per wet column per CG iteration (the paper's Nds).
  [[nodiscard]] double nds(std::int64_t wet_columns) const {
    return cg_iterations && wet_columns
               ? ds_flops / static_cast<double>(cg_iterations) /
                     static_cast<double>(wet_columns)
               : 0.0;
  }
};

class Timestepper {
 public:
  Timestepper(const ModelConfig& cfg, comm::Comm& comm, const Decomp& dec,
              const TileGrid& grid, State& state);

  // Advance one time step.  `forcing` supplies coupler boundary
  // conditions (may be null for climatological forcing).
  StepStats step(const SurfaceForcing* forcing = nullptr);

  [[nodiscard]] const PerfObservables& observables() const { return obs_; }
  // Restore hook for rollback-and-replay: a replayed step must not
  // double-count its first attempt's flops/iterations.
  void set_observables(const PerfObservables& obs) { obs_ = obs; }
  [[nodiscard]] const EllipticOperator& elliptic() const { return op_; }

 private:
  const ModelConfig& cfg_;
  comm::Comm& comm_;
  const Decomp& dec_;
  const TileGrid& grid_;
  State& state_;
  EllipticOperator op_;
  Array2D<double> rhs_;
  Array3D<double> scratch_;  // biharmonic work array
  // Non-hydrostatic machinery (allocated only when enabled).
  std::unique_ptr<EllipticOperator3> op3_;
  Array3D<double> rhs3_;
  Array3D<double> wmask_;  // 1 on open w points
  SurfaceForcing no_forcing_;
  PerfObservables obs_;
};

}  // namespace hyades::gcm
