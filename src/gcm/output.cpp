#include "gcm/output.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace hyades::gcm {

namespace {
std::pair<double, double> field_range(const Array2D<double>& f) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : f) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (!(hi > lo)) hi = lo + 1.0;
  return {lo, hi};
}
}  // namespace

void write_pgm(const std::string& path, const Array2D<double>& field,
               double lo, double hi) {
  if (field.empty()) throw std::invalid_argument("write_pgm: empty field");
  if (lo == hi) std::tie(lo, hi) = field_range(field);
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("write_pgm: cannot open " + path);
  const auto nx = field.nx();
  const auto ny = field.ny();
  os << "P5\n" << nx << ' ' << ny << "\n255\n";
  for (std::size_t jr = 0; jr < ny; ++jr) {
    const std::size_t j = ny - 1 - jr;  // north at the top
    for (std::size_t i = 0; i < nx; ++i) {
      const double t = std::clamp((field(i, j) - lo) / (hi - lo), 0.0, 1.0);
      os.put(static_cast<char>(static_cast<unsigned char>(t * 255.0)));
    }
  }
}

void write_csv(const std::string& path, const Array2D<double>& field) {
  if (field.empty()) throw std::invalid_argument("write_csv: empty field");
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_csv: cannot open " + path);
  for (std::size_t j = 0; j < field.ny(); ++j) {
    for (std::size_t i = 0; i < field.nx(); ++i) {
      os << field(i, j);
      os << (i + 1 < field.nx() ? ',' : '\n');
    }
  }
}

std::string ascii_map(const Array2D<double>& field, int width, int height) {
  if (field.empty()) return "(empty field)\n";
  static const char kShades[] = " .:-=+*#%@";
  const auto [lo, hi] = field_range(field);
  std::ostringstream os;
  for (int r = height - 1; r >= 0; --r) {
    const auto j = static_cast<std::size_t>(
        r * static_cast<long>(field.ny()) / height);
    for (int c = 0; c < width; ++c) {
      const auto i = static_cast<std::size_t>(
          c * static_cast<long>(field.nx()) / width);
      const double t = std::clamp((field(i, j) - lo) / (hi - lo), 0.0, 1.0);
      os << kShades[static_cast<int>(t * 9.0)];
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace hyades::gcm
