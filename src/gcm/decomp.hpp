// Tiled domain decomposition (Section 4, Figure 5): the global lateral
// grid is carved into px x py tiles, each extending over the full depth.
// Tiles carry a halo in which neighbouring tiles' data are duplicated.
#pragma once

#include <array>

#include "comm/comm.hpp"
#include "gcm/config.hpp"

namespace hyades::gcm {

struct Decomp {
  Decomp(const ModelConfig& cfg, int group_rank);

  int px, py;     // tile grid shape
  int tx, ty;     // this tile's coordinates
  int snx, sny;   // interior tile size
  int halo;       // halo width
  int i0, j0;     // global index of the tile's first interior cell

  // Group ranks of the four neighbours (periodic in x, closed in y);
  // -1 where the domain ends.
  std::array<int, comm::kDirections> neighbors;

  [[nodiscard]] int rank_of(int tile_x, int tile_y) const {
    return tile_y * px + ((tile_x % px) + px) % px;
  }
  // Total allocated extent including halos.
  [[nodiscard]] int ext_x() const { return snx + 2 * halo; }
  [[nodiscard]] int ext_y() const { return sny + 2 * halo; }
  // Global j for a local (halo-offset) j index.
  [[nodiscard]] int global_j(int j_local) const { return j0 + j_local - halo; }
  [[nodiscard]] int global_i(int i_local) const { return i0 + i_local - halo; }
};

}  // namespace hyades::gcm
