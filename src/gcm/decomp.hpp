// Tiled domain decomposition (Section 4, Figure 5): the global lateral
// grid is carved into px x py tiles, each extending over the full depth.
// Tiles carry a halo in which neighbouring tiles' data are duplicated.
//
// Arbitrary rank counts are supported: when px (py) does not divide nx
// (ny) the remainder is spread one extra column (row) at a time over
// the leading tiles, so tile sizes differ by at most one.  All tiles in
// a row share sny and all tiles in a column share snx, which keeps the
// four halo strip sizes agreed between exchange partners.  Degenerate
// shapes -- more tiles than cells, or a halo wider than the smallest
// tile -- fail fast with a typed DecompError instead of silently
// corrupting halo exchanges.
#pragma once

#include <array>
#include <stdexcept>
#include <string>
#include <utility>

#include "comm/comm.hpp"
#include "gcm/config.hpp"

namespace hyades::gcm {

class DecompError : public std::invalid_argument {
 public:
  enum class Code {
    kBadRank,      // rank / tile coordinate outside the tile grid
    kBadShape,     // more tiles than grid cells along an axis
    kHaloTooWide,  // halo exceeds the smallest tile's interior
  };
  DecompError(Code code, const std::string& what)
      : std::invalid_argument(what), code_(code) {}
  [[nodiscard]] Code code() const { return code_; }

 private:
  Code code_;
};

// Deterministic near-square tile grid for `nranks` ranks on an nx x ny
// lateral grid: among the divisor pairs px*py == nranks that fit the
// grid, pick the one whose *tiles* are closest to square, breaking ties
// toward the squarer rank grid (16 ranks on the paper grid -> 4x4).
std::pair<int, int> choose_tiles(int nranks, int nx, int ny);

struct Decomp {
  Decomp(const ModelConfig& cfg, int group_rank);

  int px, py;     // tile grid shape
  int tx, ty;     // this tile's coordinates
  int snx, sny;   // interior tile size (remainder tiles are one larger)
  int halo;       // halo width
  int i0, j0;     // global index of the tile's first interior cell

  // Group ranks of the four neighbours (periodic in x, closed in y);
  // -1 where the domain ends.
  std::array<int, comm::kDirections> neighbors;

  // Rank owning tile (tile_x, tile_y); tile_x wraps periodically,
  // tile_y must lie inside the grid (throws DecompError otherwise).
  [[nodiscard]] int rank_of(int tile_x, int tile_y) const {
    if (tile_y < 0 || tile_y >= py) {
      throw DecompError(DecompError::Code::kBadRank,
                        "Decomp::rank_of: tile_y outside grid");
    }
    return tile_y * px + ((tile_x % px) + px) % px;
  }
  // Total allocated extent including halos.
  [[nodiscard]] int ext_x() const { return snx + 2 * halo; }
  [[nodiscard]] int ext_y() const { return sny + 2 * halo; }
  // Global j for a local (halo-offset) j index.
  [[nodiscard]] int global_j(int j_local) const { return j0 + j_local - halo; }
  [[nodiscard]] int global_i(int i_local) const { return i0 + i_local - halo; }
};

}  // namespace hyades::gcm
