// Per-tile finite-volume grid: spherical-polar metrics, vertical levels,
// and the volume/face open fractions ("shaved cells", Figure 4) that let
// the discrete domain fit irregular geometry.
//
// Staggering is the Arakawa C grid:
//   tracers, pressure      at cell centers   (i, j, k)
//   u                      at west  faces    u(i,j) between cells i-1, i
//   v                      at south faces    v(i,j) between cells j-1, j
//   w                      at top   faces    w(i,j,k) above cell k
// k = 0 is the surface and k increases downward; level thicknesses dz[k].
//
// Indices are local tile indices including the halo offset: the interior
// is [halo, halo + snx) x [halo, halo + sny).  Rows beyond the global y
// extent are marked land, which closes the domain at the north and south
// walls through the same mask machinery that represents continents.
#pragma once

#include <vector>

#include "gcm/config.hpp"
#include "gcm/decomp.hpp"
#include "support/array.hpp"

namespace hyades::gcm {

class TileGrid {
 public:
  TileGrid(const ModelConfig& cfg, const Decomp& dec);

  // Horizontal metrics, indexed by local j (0 .. ext_y).
  std::vector<double> latC;  // cell-center latitude (rad)
  std::vector<double> dxC;   // R cos(lat) dlon: cell width / center spacing
  std::vector<double> dxS;   // width of the south face of row j
  std::vector<double> fC;    // Coriolis parameter 2*Omega*sin(lat)
  std::vector<double> rAc;   // cell plan area dxC * dyC
  double dyC = 0;            // R dlat (uniform)

  // Vertical grid.
  std::vector<double> dzf;  // level thickness
  std::vector<double> zC;   // depth of level center (positive downward)

  // Open fractions (0 = closed/land, 1 = fully open).
  Array3D<double> hFacC;  // cell volume fraction
  Array3D<double> hFacW;  // west-face fraction (u points)
  Array3D<double> hFacS;  // south-face fraction (v points)
  Array2D<double> depth;  // total fluid depth H = sum dz * hFacC

  [[nodiscard]] bool wet(std::size_t i, std::size_t j, std::size_t k) const {
    return hFacC(i, j, k) > 0.0;
  }

  // Counts of wet interior cells / columns on this tile (for flop and
  // conservation accounting).
  [[nodiscard]] std::int64_t wet_cells() const { return wet_cells_; }
  [[nodiscard]] std::int64_t wet_columns() const { return wet_columns_; }

 private:
  // Fluid depth at a global (i, j) cell from the configured topography.
  [[nodiscard]] static double column_depth(const ModelConfig& cfg,
                                           double lon, double lat);

  std::int64_t wet_cells_ = 0;
  std::int64_t wet_columns_ = 0;
};

}  // namespace hyades::gcm
