#include "gcm/cg3.hpp"

#include <cmath>

#include "gcm/cg.hpp"  // SolverDivergence
#include "gcm/halo.hpp"

namespace hyades::gcm {

namespace {
double dot_interior(const Decomp& dec, int nz, const Array3D<double>& a,
                    const Array3D<double>& b) {
  double s = 0.0;
  for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
    for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
      for (int k = 0; k < nz; ++k) {
        s += a(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
               static_cast<std::size_t>(k)) *
             b(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
               static_cast<std::size_t>(k));
      }
    }
  }
  return s;
}

void axpy_interior(const Decomp& dec, int nz, double alpha,
                   const Array3D<double>& x, Array3D<double>& y) {
  for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
    for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
      for (int k = 0; k < nz; ++k) {
        y(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
          static_cast<std::size_t>(k)) +=
            alpha * x(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                      static_cast<std::size_t>(k));
      }
    }
  }
}

void xpay_interior(const Decomp& dec, int nz, const Array3D<double>& x,
                   double beta, Array3D<double>& y) {
  for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
    for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
      for (int k = 0; k < nz; ++k) {
        auto& yy = y(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                     static_cast<std::size_t>(k));
        yy = x(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
               static_cast<std::size_t>(k)) +
             beta * yy;
      }
    }
  }
}
}  // namespace

Cg3Result cg3_solve(comm::Comm& comm, const Decomp& dec,
                    const EllipticOperator3& op, const Array3D<double>& b,
                    Array3D<double>& p, double tol, int max_iter) {
  Cg3Result res;
  const auto ex = static_cast<std::size_t>(dec.ext_x());
  const auto ey = static_cast<std::size_t>(dec.ext_y());
  const auto ez = b.nz();
  const int nz = static_cast<int>(ez);
  const double cells = static_cast<double>(dec.snx) * dec.sny * nz;

  Array3D<double> r(ex, ey, ez, 0.0), z(ex, ey, ez, 0.0), d(ex, ey, ez, 0.0),
      q(ex, ey, ez, 0.0);

  exchange3d(comm, dec, p, 1);
  res.flops += op.apply(p, q);
  for (int i = dec.halo; i < dec.halo + dec.snx; ++i) {
    for (int j = dec.halo; j < dec.halo + dec.sny; ++j) {
      for (int k = 0; k < nz; ++k) {
        r(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
          static_cast<std::size_t>(k)) =
            b(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
              static_cast<std::size_t>(k)) -
            q(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
              static_cast<std::size_t>(k));
      }
    }
  }
  res.flops += cells;

  res.flops += op.precondition(r, z);
  d = z;
  double rz = comm.global_sum(dot_interior(dec, nz, r, z));
  const double bb = comm.global_sum(dot_interior(dec, nz, b, b));
  const double target = tol * std::sqrt(std::max(bb, 1e-300));
  double rr = comm.global_sum(dot_interior(dec, nz, r, r));
  res.flops += 6.0 * cells;
  if (!std::isfinite(rr) || !std::isfinite(rz)) {
    throw SolverDivergence("cg3_solve", 0, rr);
  }
  if (std::sqrt(rr) <= target) {
    res.converged = true;
    res.residual = std::sqrt(rr);
    return res;
  }

  for (int it = 0; it < max_iter; ++it) {
    exchange3d(comm, dec, d, 1);
    res.flops += op.apply(d, q);
    const double dq = comm.global_sum(dot_interior(dec, nz, d, q));
    res.flops += 2.0 * cells;
    if (dq <= 0.0) break;
    const double alpha = rz / dq;
    axpy_interior(dec, nz, alpha, d, p);
    axpy_interior(dec, nz, -alpha, q, r);
    res.flops += 4.0 * cells;

    res.flops += op.precondition(r, z);
    exchange3d(comm, dec, z, 1);
    std::vector<double> sums{dot_interior(dec, nz, r, z),
                             dot_interior(dec, nz, r, r)};
    res.flops += 4.0 * cells;
    comm.global_sum(sums);
    const double rz_new = sums[0];
    const double rr_new = sums[1];
    if (!std::isfinite(rr_new) || !std::isfinite(rz_new)) {
      throw SolverDivergence("cg3_solve", it + 1, rr_new);
    }
    res.iterations = it + 1;
    res.residual = std::sqrt(rr_new);
    if (res.residual <= target) {
      res.converged = true;
      return res;
    }
    const double beta = rz_new / rz;
    rz = rz_new;
    xpay_interior(dec, nz, z, beta, d);
    res.flops += 2.0 * cells;
  }
  return res;
}

}  // namespace hyades::gcm
