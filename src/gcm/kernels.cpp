#include "gcm/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "gcm/eos.hpp"

namespace hyades::gcm::kernels {

namespace {
// Terse local accessors (indices are validated by the Array asserts in
// debug builds).
inline double at(const Array3D<double>& f, int i, int j, int k) {
  return f(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
           static_cast<std::size_t>(k));
}
inline double& at(Array3D<double>& f, int i, int j, int k) {
  return f(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
           static_cast<std::size_t>(k));
}
inline double at(const Array2D<double>& f, int i, int j) {
  return f(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
}
inline double& at(Array2D<double>& f, int i, int j) {
  return f(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
}
inline double m1(const std::vector<double>& v, int j) {
  return v[static_cast<std::size_t>(j)];
}
}  // namespace

Range extended(const Decomp& dec, int e) {
  return Range{dec.halo - e, dec.halo + dec.snx + e, dec.halo - e,
               dec.halo + dec.sny + e};
}

Range interior(const Decomp& dec, const Range& r, int margin) {
  const int h = dec.halo;
  Range ri = r;
  if (dec.neighbors[comm::kWest] >= 0) ri.i0 = std::max(r.i0, 2 * h - margin);
  if (dec.neighbors[comm::kEast] >= 0) {
    ri.i1 = std::min(r.i1, h + dec.snx - h + margin);
  }
  if (dec.neighbors[comm::kSouth] >= 0) ri.j0 = std::max(r.j0, 2 * h - margin);
  if (dec.neighbors[comm::kNorth] >= 0) {
    ri.j1 = std::min(r.j1, h + dec.sny - h + margin);
  }
  if (empty(ri)) ri = Range{r.i0, r.i0, r.j0, r.j0};
  return ri;
}

int rim(const Range& r, const Range& ri, std::array<Range, 4>& out) {
  if (empty(ri)) {
    out[0] = r;
    return empty(r) ? 0 : 1;
  }
  int n = 0;
  const Range west{r.i0, ri.i0, r.j0, r.j1};
  const Range east{ri.i1, r.i1, r.j0, r.j1};
  const Range south{ri.i0, ri.i1, r.j0, ri.j0};
  const Range north{ri.i0, ri.i1, ri.j1, r.j1};
  for (const Range& slab : {west, east, south, north}) {
    if (!empty(slab)) out[static_cast<std::size_t>(n++)] = slab;
  }
  return n;
}

double hydrostatic(const ModelConfig& cfg, const TileGrid& grid,
                   const Array3D<double>& theta, const Array3D<double>& salt,
                   Array3D<double>& phi, const Range& r) {
  const int nz = cfg.nz;
  double flops = 0;
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      double p = 0.0;        // phi at the current cell center
      double b_above = 0.0;  // buoyancy of the cell above
      for (int k = 0; k < nz; ++k) {
        if (grid.hFacC(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                       static_cast<std::size_t>(k)) <= 0) {
          at(phi, i, j, k) = p;  // keep land columns finite
          continue;
        }
        const double b = buoyancy(cfg, at(theta, i, j, k), at(salt, i, j, k));
        // d(phi)/d(depth) = -b; integrate center to center.
        if (k == 0) {
          p = -b * 0.5 * grid.dzf[0];
        } else {
          p -= 0.5 * (b_above * grid.dzf[static_cast<std::size_t>(k - 1)] +
                      b * grid.dzf[static_cast<std::size_t>(k)]);
        }
        at(phi, i, j, k) = p;
        b_above = b;
        flops += kEosFlops + 5.0;
      }
    }
  }
  return flops;
}

double momentum_tendencies(const ModelConfig& cfg, const TileGrid& grid,
                           const Array3D<double>& u, const Array3D<double>& v,
                           const Array3D<double>& w,
                           const Array3D<double>& phi, Array3D<double>& gu,
                           Array3D<double>& gv, double visc_v,
                           const Range& r) {
  const int nz = cfg.nz;
  const double dy = grid.dyC;
  double flops = 0;

  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      const double dx = m1(grid.dxC, j);
      const double dxs = m1(grid.dxS, j);
      const double f_u = m1(grid.fC, j);
      const double f_v = 0.5 * (m1(grid.fC, j - 1) + m1(grid.fC, j));
      for (int k = 0; k < nz; ++k) {
        const double dz = grid.dzf[static_cast<std::size_t>(k)];

        // ---- Gu at the u point (west face of cell (i,j)) -------------
        if (at(grid.hFacW, i, j, k) > 0) {
          const double uc = at(u, i, j, k);
          const double vbar = 0.25 * (at(v, i - 1, j, k) + at(v, i, j, k) +
                                      at(v, i - 1, j + 1, k) +
                                      at(v, i, j + 1, k));
          const double dudx = (at(u, i + 1, j, k) - at(u, i - 1, j, k)) /
                              (2.0 * dx);
          const double dudy = (at(u, i, j + 1, k) - at(u, i, j - 1, k)) /
                              (2.0 * dy);
          // Vertical advection: w is the downward velocity at cell tops.
          double vert = 0.0;
          if (k > 0) {
            const double wt = 0.5 * (at(w, i - 1, j, k) + at(w, i, j, k));
            vert += 0.5 * wt * (at(u, i, j, k - 1) - uc) /
                    (grid.zC[static_cast<std::size_t>(k)] -
                     grid.zC[static_cast<std::size_t>(k - 1)]) * -1.0;
          }
          if (k + 1 < nz && at(grid.hFacW, i, j, k + 1) > 0) {
            const double wb =
                0.5 * (at(w, i - 1, j, k + 1) + at(w, i, j, k + 1));
            vert += 0.5 * wb * (uc - at(u, i, j, k + 1)) /
                    (grid.zC[static_cast<std::size_t>(k + 1)] -
                     grid.zC[static_cast<std::size_t>(k)]) * -1.0;
          }
          const double adv = uc * dudx + vbar * dudy + vert;
          const double dpdx = (at(phi, i, j, k) - at(phi, i - 1, j, k)) / dx;
          const double visc_h =
              cfg.visc_h *
              ((at(u, i + 1, j, k) - 2.0 * uc + at(u, i - 1, j, k)) / (dx * dx) +
               (at(u, i, j + 1, k) - 2.0 * uc + at(u, i, j - 1, k)) / (dy * dy));
          double visc_v_term = 0.0;
          if (k > 0) {
            visc_v_term += visc_v * (at(u, i, j, k - 1) - uc) / (dz * dz);
          }
          if (k + 1 < nz && at(grid.hFacW, i, j, k + 1) > 0) {
            visc_v_term += visc_v * (at(u, i, j, k + 1) - uc) / (dz * dz);
          }
          at(gu, i, j, k) = -adv + f_u * vbar - dpdx + visc_h + visc_v_term;
          flops += 44.0;
        } else {
          at(gu, i, j, k) = 0.0;
        }

        // ---- Gv at the v point (south face of cell (i,j)) ------------
        if (at(grid.hFacS, i, j, k) > 0) {
          const double vc = at(v, i, j, k);
          const double ubar = 0.25 * (at(u, i, j - 1, k) + at(u, i + 1, j - 1, k) +
                                      at(u, i, j, k) + at(u, i + 1, j, k));
          const double dvdx =
              (at(v, i + 1, j, k) - at(v, i - 1, j, k)) / (2.0 * dxs);
          const double dvdy =
              (at(v, i, j + 1, k) - at(v, i, j - 1, k)) / (2.0 * dy);
          double vert = 0.0;
          if (k > 0) {
            const double wt = 0.5 * (at(w, i, j - 1, k) + at(w, i, j, k));
            vert += 0.5 * wt * (at(v, i, j, k - 1) - vc) /
                    (grid.zC[static_cast<std::size_t>(k)] -
                     grid.zC[static_cast<std::size_t>(k - 1)]) * -1.0;
          }
          if (k + 1 < nz && at(grid.hFacS, i, j, k + 1) > 0) {
            const double wb = 0.5 * (at(w, i, j - 1, k + 1) + at(w, i, j, k + 1));
            vert += 0.5 * wb * (vc - at(v, i, j, k + 1)) /
                    (grid.zC[static_cast<std::size_t>(k + 1)] -
                     grid.zC[static_cast<std::size_t>(k)]) * -1.0;
          }
          const double adv = ubar * dvdx + vc * dvdy + vert;
          const double dpdy = (at(phi, i, j, k) - at(phi, i, j - 1, k)) / dy;
          const double visc_h =
              cfg.visc_h *
              ((at(v, i + 1, j, k) - 2.0 * vc + at(v, i - 1, j, k)) /
                   (dxs * dxs) +
               (at(v, i, j + 1, k) - 2.0 * vc + at(v, i, j - 1, k)) / (dy * dy));
          double visc_v_term = 0.0;
          if (k > 0) {
            visc_v_term += visc_v * (at(v, i, j, k - 1) - vc) / (dz * dz);
          }
          if (k + 1 < nz && at(grid.hFacS, i, j, k + 1) > 0) {
            visc_v_term += visc_v * (at(v, i, j, k + 1) - vc) / (dz * dz);
          }
          at(gv, i, j, k) = -adv - f_v * ubar - dpdy + visc_h + visc_v_term;
          flops += 44.0;
        } else {
          at(gv, i, j, k) = 0.0;
        }
      }
    }
  }
  return flops;
}

namespace {
// Downward volume flux through the top face of cell (i,j,k) implied by
// advective transport of `tr`, plus vertical diffusion.
inline double vertical_tracer_flux(const TileGrid& grid,
                                   const Array3D<double>& w,
                                   const Array3D<double>& tr, double kappa_v,
                                   int i, int j, int k) {
  if (k == 0) return 0.0;  // no flux through the surface
  if (at(grid.hFacC, i, j, k) <= 0 || at(grid.hFacC, i, j, k - 1) <= 0) {
    return 0.0;
  }
  const double area = m1(grid.rAc, j);
  const double adv =
      at(w, i, j, k) * area * 0.5 * (at(tr, i, j, k - 1) + at(tr, i, j, k));
  const double dzc = grid.zC[static_cast<std::size_t>(k)] -
                     grid.zC[static_cast<std::size_t>(k - 1)];
  // Downward diffusive flux: F = -kv * d(tr)/d(depth) * area.
  const double diff =
      -kappa_v * area * (at(tr, i, j, k) - at(tr, i, j, k - 1)) / dzc;
  return adv + diff;
}

// 3rd-order direct space-time face value (MITgcm's DST-3 scheme):
// upwind-biased, with the Courant number folded into the weights.  The
// slope differences are masked so the stencil degrades gracefully to
// first order beside land.
inline double dst3_face_value(double vel, double cfl, double t_m2,
                              double t_m1, double t_0, double t_p1,
                              bool have_m2, bool have_p1) {
  const double c = std::abs(cfl);
  const double d0 = (2.0 - c) * (1.0 - c) / 6.0;
  const double d1 = (1.0 - c * c) / 6.0;
  const double rj = t_0 - t_m1;
  if (vel >= 0.0) {
    const double rjm = have_m2 ? (t_m1 - t_m2) : 0.0;
    return t_m1 + d0 * rj + d1 * rjm;
  }
  const double rjp = have_p1 ? (t_p1 - t_0) : 0.0;
  return t_0 - (d0 * rj + d1 * rjp);
}

// Eastward tracer flux (advection + diffusion) through the west face of
// cell (i,j,k).
inline double zonal_tracer_flux(const ModelConfig& cfg, const TileGrid& grid,
                                const Array3D<double>& u,
                                const Array3D<double>& tr, double kappa_h,
                                int i, int j, int k, double dz) {
  const double open = at(grid.hFacW, i, j, k);
  if (open <= 0) return 0.0;
  const double area = open * grid.dyC * dz;
  const double vel = at(u, i, j, k);
  double face;
  if (cfg.advection == ModelConfig::Advection::kDst3) {
    const double cfl = vel * cfg.dt / m1(grid.dxC, j);
    face = dst3_face_value(vel, cfl, at(tr, i - 2, j, k), at(tr, i - 1, j, k),
                           at(tr, i, j, k), at(tr, i + 1, j, k),
                           at(grid.hFacC, i - 2, j, k) > 0,
                           at(grid.hFacC, i + 1, j, k) > 0);
  } else {
    face = 0.5 * (at(tr, i - 1, j, k) + at(tr, i, j, k));
  }
  const double adv = vel * area * face;
  const double diff = -kappa_h * area *
                      (at(tr, i, j, k) - at(tr, i - 1, j, k)) / m1(grid.dxC, j);
  return adv + diff;
}

// Northward tracer flux through the south face of cell (i,j,k).
inline double merid_tracer_flux(const ModelConfig& cfg, const TileGrid& grid,
                                const Array3D<double>& v,
                                const Array3D<double>& tr, double kappa_h,
                                int i, int j, int k, double dz) {
  const double open = at(grid.hFacS, i, j, k);
  if (open <= 0) return 0.0;
  const double area = open * m1(grid.dxS, j) * dz;
  const double vel = at(v, i, j, k);
  double face;
  if (cfg.advection == ModelConfig::Advection::kDst3) {
    const double cfl = vel * cfg.dt / grid.dyC;
    face = dst3_face_value(vel, cfl, at(tr, i, j - 2, k), at(tr, i, j - 1, k),
                           at(tr, i, j, k), at(tr, i, j + 1, k),
                           at(grid.hFacC, i, j - 2, k) > 0,
                           at(grid.hFacC, i, j + 1, k) > 0);
  } else {
    face = 0.5 * (at(tr, i, j - 1, k) + at(tr, i, j, k));
  }
  const double adv = vel * area * face;
  const double diff =
      -kappa_h * area * (at(tr, i, j, k) - at(tr, i, j - 1, k)) / grid.dyC;
  return adv + diff;
}
}  // namespace

double tracer_tendency(const ModelConfig& cfg, const TileGrid& grid,
                       const Array3D<double>& u, const Array3D<double>& v,
                       const Array3D<double>& w, const Array3D<double>& tr,
                       Array3D<double>& gtr, double kappa_h, double kappa_v,
                       const Range& r) {
  const int nz = cfg.nz;
  double flops = 0;
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      for (int k = 0; k < nz; ++k) {
        const double hfac = at(grid.hFacC, i, j, k);
        if (hfac <= 0) {
          at(gtr, i, j, k) = 0.0;
          continue;
        }
        const double dz = grid.dzf[static_cast<std::size_t>(k)];
        const double fw =
            zonal_tracer_flux(cfg, grid, u, tr, kappa_h, i, j, k, dz);
        const double fe =
            zonal_tracer_flux(cfg, grid, u, tr, kappa_h, i + 1, j, k, dz);
        const double fs =
            merid_tracer_flux(cfg, grid, v, tr, kappa_h, i, j, k, dz);
        const double fn =
            merid_tracer_flux(cfg, grid, v, tr, kappa_h, i, j + 1, k, dz);
        const double ftop =
            vertical_tracer_flux(grid, w, tr, kappa_v, i, j, k);
        const double fbot = (k + 1 < nz)
                                ? vertical_tracer_flux(grid, w, tr, kappa_v,
                                                       i, j, k + 1)
                                : 0.0;
        const double vol = m1(grid.rAc, j) * dz * hfac;
        at(gtr, i, j, k) = -((fe - fw) + (fn - fs) + (fbot - ftop)) / vol;
        flops += cfg.advection == ModelConfig::Advection::kDst3 ? 102.0 : 54.0;
      }
    }
  }
  return flops;
}

double masked_laplacian(const ModelConfig& cfg, const TileGrid& grid,
                        const Array3D<double>& f, const Array3D<double>& mask,
                        Array3D<double>& out, const Range& r) {
  const int nz = cfg.nz;
  const double dy = grid.dyC;
  double flops = 0;
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      const double dx = m1(grid.dxC, j);
      for (int k = 0; k < nz; ++k) {
        const double mc = at(mask, i, j, k);
        if (mc <= 0) {
          at(out, i, j, k) = 0.0;
          continue;
        }
        const double dz = grid.dzf[static_cast<std::size_t>(k)];
        const double vol = m1(grid.rAc, j) * dz * mc;
        double acc = 0.0;
        // East/west faces.
        const double mw = std::min(mc, at(mask, i - 1, j, k));
        const double me = std::min(mc, at(mask, i + 1, j, k));
        acc += mw * dy * dz / dx * (at(f, i - 1, j, k) - at(f, i, j, k));
        acc += me * dy * dz / dx * (at(f, i + 1, j, k) - at(f, i, j, k));
        // North/south faces.
        const double ms = std::min(mc, at(mask, i, j - 1, k));
        const double mn = std::min(mc, at(mask, i, j + 1, k));
        acc += ms * m1(grid.dxS, j) * dz / dy *
               (at(f, i, j - 1, k) - at(f, i, j, k));
        acc += mn * m1(grid.dxS, j + 1) * dz / dy *
               (at(f, i, j + 1, k) - at(f, i, j, k));
        at(out, i, j, k) = acc / vol;
        flops += 26.0;
      }
    }
  }
  return flops;
}

double biharmonic_tendency(const ModelConfig& cfg, const TileGrid& grid,
                           const Array3D<double>& f,
                           const Array3D<double>& mask,
                           Array3D<double>& scratch, Array3D<double>& g,
                           double a4, const Range& r) {
  if (a4 <= 0) return 0.0;
  double flops = 0;
  // First pass one ring wider, so the second pass's stencil is covered.
  const Range r1{r.i0 - 1, r.i1 + 1, r.j0 - 1, r.j1 + 1};
  flops += masked_laplacian(cfg, grid, f, mask, scratch, r1);
  const int nz = cfg.nz;
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      const double dx = m1(grid.dxC, j);
      const double dy = grid.dyC;
      for (int k = 0; k < nz; ++k) {
        const double mc = at(mask, i, j, k);
        if (mc <= 0) continue;
        const double dz = grid.dzf[static_cast<std::size_t>(k)];
        const double vol = m1(grid.rAc, j) * dz * mc;
        double acc = 0.0;
        const double mw = std::min(mc, at(mask, i - 1, j, k));
        const double me = std::min(mc, at(mask, i + 1, j, k));
        acc += mw * dy * dz / dx *
               (at(scratch, i - 1, j, k) - at(scratch, i, j, k));
        acc += me * dy * dz / dx *
               (at(scratch, i + 1, j, k) - at(scratch, i, j, k));
        const double ms = std::min(mc, at(mask, i, j - 1, k));
        const double mn = std::min(mc, at(mask, i, j + 1, k));
        acc += ms * m1(grid.dxS, j) * dz / dy *
               (at(scratch, i, j - 1, k) - at(scratch, i, j, k));
        acc += mn * m1(grid.dxS, j + 1) * dz / dy *
               (at(scratch, i, j + 1, k) - at(scratch, i, j, k));
        at(g, i, j, k) -= a4 * acc / vol;
        flops += 28.0;
      }
    }
  }
  return flops;
}

double ab2_update(const ModelConfig& cfg, const Array3D<double>& mask,
                  Array3D<double>& f, const Array3D<double>& g,
                  const Array3D<double>& g_nm1, bool first_step,
                  const Range& r) {
  const double c1 = first_step ? 1.0 : 1.5 + cfg.ab_eps;
  const double c0 = first_step ? 0.0 : 0.5 + cfg.ab_eps;
  const int nz = static_cast<int>(f.nz());
  double flops = 0;
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      for (int k = 0; k < nz; ++k) {
        if (at(mask, i, j, k) <= 0) continue;
        at(f, i, j, k) += cfg.dt * (c1 * at(g, i, j, k) -
                                    c0 * at(g_nm1, i, j, k));
        flops += 5.0;
      }
    }
  }
  return flops;
}

namespace {
// A w point (top face of cell k) is open iff both adjacent cells are wet
// (and k > 0: the surface face belongs to the free surface / rigid lid).
inline bool w_open(const TileGrid& grid, int i, int j, int k) {
  return k > 0 &&
         at(grid.hFacC, i, j, k) > 0 && at(grid.hFacC, i, j, k - 1) > 0;
}
}  // namespace

double w_tendencies(const ModelConfig& cfg, const TileGrid& grid,
                    const Array3D<double>& u, const Array3D<double>& v,
                    const Array3D<double>& w, Array3D<double>& gw,
                    double visc_v, const Range& r) {
  const int nz = cfg.nz;
  const double dy = grid.dyC;
  double flops = 0;
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      const double dx = m1(grid.dxC, j);
      for (int k = 0; k < nz; ++k) {
        if (!w_open(grid, i, j, k)) {
          at(gw, i, j, k) = 0.0;
          continue;
        }
        const double wc = at(w, i, j, k);
        // Horizontal velocity averaged to the w point (4 u's, 4 v's over
        // the two adjacent levels).
        const double uc = 0.25 * (at(u, i, j, k - 1) + at(u, i + 1, j, k - 1) +
                                  at(u, i, j, k) + at(u, i + 1, j, k));
        const double vc = 0.25 * (at(v, i, j, k - 1) + at(v, i, j + 1, k - 1) +
                                  at(v, i, j, k) + at(v, i, j + 1, k));
        const double dwdx = (at(w, i + 1, j, k) - at(w, i - 1, j, k)) /
                            (2.0 * dx);
        const double dwdy = (at(w, i, j + 1, k) - at(w, i, j - 1, k)) /
                            (2.0 * dy);
        // Vertical self-advection across the adjacent faces.
        double dwdz = 0.0;
        if (w_open(grid, i, j, k - 1) || w_open(grid, i, j, k + 1 < nz ? k + 1 : k)) {
          const double w_up = (k - 1 > 0) ? at(w, i, j, k - 1) : 0.0;
          const double w_dn = (k + 1 < nz) ? at(w, i, j, k + 1) : 0.0;
          const double dzc = grid.dzf[static_cast<std::size_t>(k - 1)] +
                             grid.dzf[static_cast<std::size_t>(k)];
          dwdz = (w_dn - w_up) / dzc;
        }
        const double adv = uc * dwdx + vc * dwdy + wc * dwdz;
        const double visc_h =
            cfg.visc_h *
            ((at(w, i + 1, j, k) - 2.0 * wc + at(w, i - 1, j, k)) / (dx * dx) +
             (at(w, i, j + 1, k) - 2.0 * wc + at(w, i, j - 1, k)) / (dy * dy));
        double visc_vt = 0.0;
        const double dzk = grid.dzf[static_cast<std::size_t>(k)];
        if (w_open(grid, i, j, k - 1)) {
          visc_vt += visc_v * (at(w, i, j, k - 1) - wc) / (dzk * dzk);
        }
        if (k + 1 < nz && w_open(grid, i, j, k + 1)) {
          visc_vt += visc_v * (at(w, i, j, k + 1) - wc) / (dzk * dzk);
        }
        at(gw, i, j, k) = -adv + visc_h + visc_vt;
        flops += 38.0;
      }
    }
  }
  return flops;
}

double nh_rhs(const ModelConfig& cfg, const TileGrid& grid,
              const Array3D<double>& u, const Array3D<double>& v,
              const Array3D<double>& w, Array3D<double>& rhs,
              const Range& r) {
  const int nz = cfg.nz;
  double flops = 0;
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      const double area = m1(grid.rAc, j);
      for (int k = 0; k < nz; ++k) {
        if (at(grid.hFacC, i, j, k) <= 0) {
          at(rhs, i, j, k) = 0.0;
          continue;
        }
        const double hdiv = column_flux_divergence(grid, u, v, i, j, k);
        const double wtop = w_open(grid, i, j, k) ? at(w, i, j, k) * area : 0.0;
        const double wbot = (k + 1 < nz && w_open(grid, i, j, k + 1))
                                ? at(w, i, j, k + 1) * area
                                : 0.0;
        at(rhs, i, j, k) = (hdiv + wbot - wtop) / cfg.dt;
        flops += 14.0;
      }
    }
  }
  return flops;
}

double correct_velocity_nh(const ModelConfig& cfg, const TileGrid& grid,
                           const Array3D<double>& phi_nh, Array3D<double>& u,
                           Array3D<double>& v, Array3D<double>& w,
                           const Range& r) {
  const int nz = cfg.nz;
  const double dt = cfg.dt;
  double flops = 0;
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      const double dx = m1(grid.dxC, j);
      for (int k = 0; k < nz; ++k) {
        if (at(grid.hFacW, i, j, k) > 0) {
          at(u, i, j, k) -=
              dt * (at(phi_nh, i, j, k) - at(phi_nh, i - 1, j, k)) / dx;
          flops += 4.0;
        }
        if (at(grid.hFacS, i, j, k) > 0) {
          at(v, i, j, k) -=
              dt * (at(phi_nh, i, j, k) - at(phi_nh, i, j - 1, k)) / grid.dyC;
          flops += 4.0;
        }
        if (w_open(grid, i, j, k)) {
          const double dzc = grid.zC[static_cast<std::size_t>(k)] -
                             grid.zC[static_cast<std::size_t>(k - 1)];
          at(w, i, j, k) -=
              dt * (at(phi_nh, i, j, k) - at(phi_nh, i, j, k - 1)) / dzc;
          flops += 4.0;
        }
      }
    }
  }
  return flops;
}

double column_flux_divergence(const TileGrid& grid, const Array3D<double>& u,
                              const Array3D<double>& v, int i, int j, int k) {
  const double dz = grid.dzf[static_cast<std::size_t>(k)];
  const double uw = at(u, i, j, k) * at(grid.hFacW, i, j, k) * grid.dyC * dz;
  const double ue =
      at(u, i + 1, j, k) * at(grid.hFacW, i + 1, j, k) * grid.dyC * dz;
  const double vs =
      at(v, i, j, k) * at(grid.hFacS, i, j, k) * m1(grid.dxS, j) * dz;
  const double vn = at(v, i, j + 1, k) * at(grid.hFacS, i, j + 1, k) *
                    m1(grid.dxS, j + 1) * dz;
  return (ue - uw) + (vn - vs);
}

double diagnose_w(const ModelConfig& cfg, const TileGrid& grid,
                  const Array3D<double>& u, const Array3D<double>& v,
                  Array3D<double>& w, const Range& r) {
  const int nz = cfg.nz;
  double flops = 0;
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      double wf = 0.0;  // downward volume flux at the face below level k
      for (int k = nz - 1; k >= 0; --k) {
        if (at(grid.hFacC, i, j, k) <= 0) {
          at(w, i, j, k) = 0.0;
          continue;
        }
        wf += column_flux_divergence(grid, u, v, i, j, k);
        at(w, i, j, k) = wf / m1(grid.rAc, j);
        flops += 12.0;
      }
    }
  }
  return flops;
}

double ps_rhs(const ModelConfig& cfg, const TileGrid& grid,
              const Array3D<double>& u, const Array3D<double>& v,
              Array2D<double>& rhs, const Range& r) {
  const int nz = cfg.nz;
  double flops = 0;
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      double div = 0.0;
      for (int k = 0; k < nz; ++k) {
        if (at(grid.hFacC, i, j, k) <= 0) continue;
        div += column_flux_divergence(grid, u, v, i, j, k);
        flops += 11.0;
      }
      at(rhs, i, j) = div / cfg.dt;
      flops += 1.0;
    }
  }
  return flops;
}

double correct_velocity(const ModelConfig& cfg, const TileGrid& grid,
                        const Array2D<double>& ps, Array3D<double>& u,
                        Array3D<double>& v, const Range& r) {
  const int nz = cfg.nz;
  const double dt = cfg.dt;
  double flops = 0;
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      const double dpdx = (at(ps, i, j) - at(ps, i - 1, j)) / m1(grid.dxC, j);
      const double dpdy = (at(ps, i, j) - at(ps, i, j - 1)) / grid.dyC;
      for (int k = 0; k < nz; ++k) {
        if (at(grid.hFacW, i, j, k) > 0) {
          at(u, i, j, k) -= dt * dpdx;
          flops += 2.0;
        }
        if (at(grid.hFacS, i, j, k) > 0) {
          at(v, i, j, k) -= dt * dpdy;
          flops += 2.0;
        }
      }
      flops += 6.0;
    }
  }
  return flops;
}

double implicit_vertical_diffusion(const ModelConfig& cfg,
                                   const TileGrid& grid, Array3D<double>& f,
                                   const Array3D<double>& mask, double kv,
                                   const Range& r) {
  if (kv <= 0) return 0.0;
  const int nz = cfg.nz;
  if (nz < 2) return 0.0;
  const double dt = cfg.dt;
  double flops = 0;
  // Thomas-solve workspaces.
  std::vector<double> cp(static_cast<std::size_t>(nz));
  std::vector<double> rhs(static_cast<std::size_t>(nz));
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      // Interface conductances g_k (between cells k-1 and k), open only
      // where both cells are wet.
      // Row k: (hfac_k dz_k + dt(g_k + g_{k+1})) f_k - dt g_k f_{k-1}
      //        - dt g_{k+1} f_{k+1} = hfac_k dz_k f*_k   (flux form,
      // multiplied through by the open thickness -> symmetric & conservative).
      double prev_cp = 0.0;
      bool have_prev = false;
      for (int k = 0; k < nz; ++k) {
        const double hfac = at(mask, i, j, k);
        if (hfac <= 0) {
          cp[static_cast<std::size_t>(k)] = 0.0;
          rhs[static_cast<std::size_t>(k)] = 0.0;
          have_prev = false;
          continue;
        }
        const double vol = hfac * grid.dzf[static_cast<std::size_t>(k)];
        double g_up = 0.0, g_dn = 0.0;
        if (k > 0 && at(mask, i, j, k - 1) > 0) {
          g_up = kv / (grid.zC[static_cast<std::size_t>(k)] -
                       grid.zC[static_cast<std::size_t>(k - 1)]);
        }
        if (k + 1 < nz && at(mask, i, j, k + 1) > 0) {
          g_dn = kv / (grid.zC[static_cast<std::size_t>(k + 1)] -
                       grid.zC[static_cast<std::size_t>(k)]);
        }
        const double a = have_prev ? -dt * g_up : 0.0;
        const double b = vol + dt * (g_up + g_dn);
        const double c = -dt * g_dn;
        const double denom = b - a * prev_cp;
        cp[static_cast<std::size_t>(k)] = c / denom;
        rhs[static_cast<std::size_t>(k)] =
            (vol * at(f, i, j, k) -
             a * (have_prev ? rhs[static_cast<std::size_t>(k - 1)] : 0.0)) /
            denom;
        prev_cp = cp[static_cast<std::size_t>(k)];
        have_prev = true;
        flops += 14.0;
      }
      // Back substitution.
      bool have_next = false;
      double next_f = 0.0;
      for (int k = nz - 1; k >= 0; --k) {
        if (at(mask, i, j, k) <= 0) {
          have_next = false;
          continue;
        }
        double fk = rhs[static_cast<std::size_t>(k)];
        if (have_next) {
          fk -= cp[static_cast<std::size_t>(k)] * next_f;
          flops += 2.0;
        }
        at(f, i, j, k) = fk;
        next_f = fk;
        have_next = true;
      }
    }
  }
  return flops;
}

void apply_velocity_masks(const TileGrid& grid, Array3D<double>& u,
                          Array3D<double>& v, const Range& r) {
  const int nz = static_cast<int>(u.nz());
  for (int i = r.i0; i < r.i1; ++i) {
    for (int j = r.j0; j < r.j1; ++j) {
      for (int k = 0; k < nz; ++k) {
        if (at(grid.hFacW, i, j, k) <= 0) at(u, i, j, k) = 0.0;
        if (at(grid.hFacS, i, j, k) <= 0) at(v, i, j, k) = 0.0;
      }
    }
  }
}

}  // namespace hyades::gcm::kernels
