#include "farm/queue.hpp"

#include <cstdint>

namespace hyades::farm {

bool JobQueue::push(int id, int priority) {
  if (max_pending_ > 0 &&
      pending_.size() >= static_cast<std::size_t>(max_pending_)) {
    return false;
  }
  pending_.push_back({id, priority, next_seq_++});
  return true;
}

int JobQueue::pop() {
  if (pending_.empty()) return -1;
  std::size_t best = 0;
  for (std::size_t i = 1; i < pending_.size(); ++i) {
    const Pending& p = pending_[i];
    const Pending& b = pending_[best];
    if (p.priority > b.priority ||
        (p.priority == b.priority && p.seq < b.seq)) {
      best = i;
    }
  }
  const int id = pending_[best].id;
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(best));
  return id;
}

}  // namespace hyades::farm
