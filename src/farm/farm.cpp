#include "farm/farm.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "farm/executor.hpp"
#include "support/table.hpp"

namespace hyades::farm {

namespace {

std::string hexfloat(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

}  // namespace

Farm::Farm(FarmConfig cfg) : cfg_(cfg), queue_(cfg.max_pending) {
  if (cfg_.clusters < 1) {
    throw std::invalid_argument("Farm: pool needs at least one cluster");
  }
  if (cfg_.scratch_dir.empty()) {
    cfg_.scratch_dir =
        (std::filesystem::temp_directory_path() / "hyades_farm").string();
  }
  pool_free_at_.assign(static_cast<std::size_t>(cfg_.clusters), 0.0);
}

int Farm::submit(JobSpec spec) {
  const int id = static_cast<int>(jobs_.size());
  JobRecord rec;
  rec.id = id;
  rec.spec = std::move(spec);
  rec.submit_us = now_;
  metrics_.inc("farm.jobs_submitted");
  if (!queue_.push(id, rec.spec.priority)) {
    rec.status = JobStatus::kRejected;
    rec.error = "admission: queue full (" +
                std::to_string(queue_.max_pending()) + " pending)";
    metrics_.inc("farm.jobs_rejected");
  }
  jobs_.push_back(std::move(rec));
  return id;
}

void Farm::run_until_drained() {
  for (int id = queue_.pop(); id >= 0; id = queue_.pop()) {
    dispatch(jobs_[static_cast<std::size_t>(id)]);
  }
  metrics_.set("farm.makespan_us", now_);
}

void Farm::dispatch(JobRecord& rec) {
  const ResultCache::Key key{rec.spec.config_hash(), rec.spec.seed};
  if (const JobResult* hit = cache_.lookup(key)) {
    // Dedup: identical (config, seed) was already computed, and runs
    // are bit-deterministic, so the cached diagnostics ARE the result.
    // Served instantly at the current job clock for zero steps.
    rec.status = JobStatus::kCompleted;
    rec.from_cache = true;
    rec.start_us = rec.finish_us = now_;
    rec.result.kinetic_energy = hit->kinetic_energy;
    rec.result.mean_theta = hit->mean_theta;
    metrics_.inc("farm.jobs_completed");
    metrics_.inc("farm.cache_hits");
    metrics_.inc("farm.steps_saved", static_cast<double>(rec.spec.steps));
    return;
  }

  // Earliest-free pool slot, lowest id on ties: deterministic.
  std::size_t slot = 0;
  for (std::size_t c = 1; c < pool_free_at_.size(); ++c) {
    if (pool_free_at_[c] < pool_free_at_[slot]) slot = c;
  }
  const ExecutionOutcome out =
      execute_job(rec.spec, scratch_prefix(rec.id));

  rec.cluster = static_cast<int>(slot);
  rec.start_us = std::max(pool_free_at_[slot], rec.submit_us);
  rec.finish_us = rec.start_us + out.result.busy_us;
  pool_free_at_[slot] = rec.finish_us;
  now_ = std::max(now_, rec.finish_us);
  rec.result = out.result;

  metrics_.inc("farm.steps_committed",
               static_cast<double>(out.result.steps_committed));
  metrics_.inc("farm.busy_us", out.result.busy_us);
  metrics_.inc("farm.retransmits",
               static_cast<double>(out.result.retransmits));
  metrics_.inc("farm.restarts", static_cast<double>(out.result.restarts));
  metrics_.inc("farm.rollbacks", static_cast<double>(out.result.rollbacks));
  metrics_.inc("farm.migrations", static_cast<double>(out.result.migrations));
  metrics_.inc("farm.rebalances", static_cast<double>(out.result.rebalances));
  metrics_.inc("farm.downgrades", static_cast<double>(out.result.downgrades));
  if (out.ok) {
    rec.status = JobStatus::kCompleted;
    metrics_.inc("farm.jobs_completed");
    cache_.insert(key, rec.result);
  } else {
    rec.status = JobStatus::kFailed;
    rec.error = out.error;
    metrics_.inc("farm.jobs_failed");
  }
}

std::string Farm::scratch_prefix(int job_id) {
  if (!scratch_ready_) {
    std::filesystem::create_directories(cfg_.scratch_dir);
    scratch_ready_ = true;
  }
  return cfg_.scratch_dir + "/job" + std::to_string(job_id);
}

const JobRecord& Farm::job(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= jobs_.size()) {
    throw std::out_of_range("Farm::job: unknown id " + std::to_string(id));
  }
  return jobs_[static_cast<std::size_t>(id)];
}

Farm::CampaignSummary Farm::summary() const {
  CampaignSummary s;
  s.submitted = static_cast<int>(jobs_.size());
  for (const JobRecord& r : jobs_) {
    switch (r.status) {
      case JobStatus::kCompleted:
        ++s.completed;
        if (r.from_cache) ++s.cache_hits;
        break;
      case JobStatus::kFailed: ++s.failed; break;
      case JobStatus::kRejected: ++s.rejected; break;
      case JobStatus::kQueued: break;
    }
    if (r.from_cache) {
      s.steps_saved += r.spec.steps;
    } else if (r.status != JobStatus::kRejected) {
      s.steps_committed += r.result.steps_committed;
      s.busy_us += r.result.busy_us;
      s.retransmits += r.result.retransmits;
      s.restarts += r.result.restarts;
      s.rollbacks += r.result.rollbacks;
      s.migrations += r.result.migrations;
      s.rebalances += r.result.rebalances;
      s.downgrades += r.result.downgrades;
    }
    s.makespan_us = std::max(s.makespan_us, r.finish_us);
  }
  return s;
}

std::string Farm::format_summary() const {
  std::ostringstream os;
  Table t({"job", "name", "prio", "status", "served", "cluster",
           "start (ms)", "finish (ms)", "steps", "recovery", "migr",
           "downgr", "KE (J, hex)"});
  for (const JobRecord& r : jobs_) {
    const bool ran = r.status == JobStatus::kCompleted ||
                     r.status == JobStatus::kFailed;
    // Node-kill members record how their cluster recovers; everything
    // else has no recovery mode to speak of.
    const bool resilient = r.spec.faults.has_node_kills();
    t.add_row({std::to_string(r.id), r.spec.name,
               std::to_string(r.spec.priority), to_string(r.status),
               r.from_cache ? "cache" : (ran ? "pool" : "-"),
               r.cluster >= 0 ? std::to_string(r.cluster) : "-",
               ran ? Table::fmt(r.start_us / 1000.0, 3) : "-",
               ran ? Table::fmt(r.finish_us / 1000.0, 3) : "-",
               std::to_string(r.result.steps_committed),
               resilient
                   ? (r.spec.recovery == gcm::RecoveryMode::kMigrate
                          ? "migrate"
                          : "restart")
                   : "-",
               resilient ? std::to_string(r.result.migrations) : "-",
               resilient ? std::to_string(r.result.downgrades) : "-",
               r.status == JobStatus::kCompleted
                   ? hexfloat(r.result.kinetic_energy)
                   : "-"});
  }
  t.print(os);
  const CampaignSummary s = summary();
  os << "campaign: " << s.submitted << " submitted, " << s.completed
     << " completed (" << s.cache_hits << " from cache), " << s.failed
     << " failed, " << s.rejected << " rejected\n"
     << "steps: " << s.steps_committed << " simulated, " << s.steps_saved
     << " saved by dedup; cluster busy "
     << Table::fmt(s.busy_us / 1000.0, 3) << " ms; makespan "
     << Table::fmt(s.makespan_us / 1000.0, 3) << " ms\n"
     << "recovery: " << s.retransmits << " retransmits, " << s.restarts
     << " restarts, " << s.rollbacks << " rollbacks, " << s.migrations
     << " migrations, " << s.rebalances << " rebalances, " << s.downgrades
     << " ladder downgrades\n";
  return os.str();
}

}  // namespace hyades::farm
