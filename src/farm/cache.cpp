#include "farm/cache.hpp"

namespace hyades::farm {

const JobResult* ResultCache::lookup(const Key& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void ResultCache::insert(const Key& key, const JobResult& result) {
  entries_.emplace(key, result);
}

}  // namespace hyades::farm
