#include "farm/executor.hpp"

#include <cstdio>
#include <mutex>
#include <stdexcept>

#include "cluster/runtime.hpp"
#include "comm/comm.hpp"
#include "gcm/model.hpp"
#include "gcm/resilient.hpp"
#include "gcm/tile_ckpt.hpp"
#include "net/arctic_model.hpp"

namespace hyades::farm {

namespace {

// Sum the cost side of the outcome out of the runtime's last run(),
// valid for completed and aborted runs alike (Runtime::run captures
// per-rank accounting even when a rank unwound with an exception).
void charge_costs(const cluster::Runtime& rt, JobResult* r) {
  r->busy_us = rt.max_clock();
  r->retransmits = 0;
  r->restarts = 0;
  for (const cluster::Accounting& a : rt.accounting()) {
    r->retransmits += a.retransmits;
    r->restarts += a.restarts;
  }
}

}  // namespace

ExecutionOutcome execute_job(const JobSpec& spec,
                             const std::string& scratch_prefix) {
  if (spec.machine.nranks() != spec.config.tiles()) {
    throw std::invalid_argument(
        "execute_job: machine ranks (" + std::to_string(spec.machine.nranks()) +
        ") != config tiles (" + std::to_string(spec.config.tiles()) + ")");
  }
  if (spec.steps < 1) {
    throw std::invalid_argument("execute_job: steps must be >= 1");
  }
  spec.config.validate();

  const net::ArcticModel arctic(spec.machine.smp_count);
  cluster::MachineConfig mc;
  mc.smp_count = spec.machine.smp_count;
  mc.procs_per_smp = spec.machine.procs_per_smp;
  mc.interconnect = &arctic;
  if (spec.faults.enabled()) mc.faults = &spec.faults;
  cluster::Runtime rt(mc);

  ExecutionOutcome out;
  std::mutex mu;

  if (spec.faults.has_node_kills()) {
    // Hard-failure members ride the resilient restart driver; its
    // durable checkpoints live under the farm's scratch prefix.
    gcm::ResilientConfig rcfg;
    rcfg.ckpt_prefix = scratch_prefix;
    rcfg.ckpt_every = spec.ckpt_every;
    rcfg.max_restarts = spec.max_restarts;
    rcfg.init_seed = spec.seed;
    rcfg.recovery = spec.recovery;
    rcfg.on_complete = [&](cluster::RankContext& ctx, gcm::Model& m) {
      // Collective diagnostics: every rank participates, rank 0 records.
      const double ke = m.kinetic_energy();
      const double mt = m.mean_theta();
      if (ctx.rank() == 0) {
        std::lock_guard<std::mutex> lock(mu);
        out.result.kinetic_energy = ke;
        out.result.mean_theta = mt;
      }
    };
    try {
      const gcm::ResilientStats st =
          gcm::run_resilient(rt, spec.config, spec.steps, rcfg);
      out.ok = true;
      out.result.steps_committed = st.steps;
      out.result.migrations = st.migrations;
      out.result.rebalances = st.rebalances;
      for (const gcm::RecoveryEvent& ev : st.ladder) {
        out.result.downgrades += ev.downgrades();
      }
    } catch (const gcm::RecoveryError& e) {
      // Typed give-up (RestartExhausted, RecoveryExhausted): a failed
      // member with full context in the message, not a failed farm.
      out.ok = false;
      out.error = e.what();
      out.result.steps_committed = 0;  // every epoch aborted: nothing kept
    } catch (const std::runtime_error& e) {
      out.ok = false;
      out.error = e.what();
      out.result.steps_committed = 0;
    }
    charge_costs(rt, &out.result);
    gcm::tile_ckpt::remove_slots(scratch_prefix, mc.nranks());
    return out;
  }

  try {
    rt.run([&](cluster::RankContext& ctx) {
      comm::Comm comm(ctx);
      gcm::Model model(spec.config, comm);
      model.initialize(spec.seed);
      const gcm::Model::RunStats rs = model.run(spec.steps);
      const double ke = model.kinetic_energy();
      const double mt = model.mean_theta();
      if (comm.group_rank() == 0) {
        std::lock_guard<std::mutex> lock(mu);
        out.result.kinetic_energy = ke;
        out.result.mean_theta = mt;
        out.result.steps_committed = rs.steps_run;
        out.result.rollbacks = rs.rollbacks;
      }
    });
    out.ok = true;
  } catch (const std::runtime_error& e) {
    // Solver divergence, delivery failure past the retry budget,
    // rollback give-up: a failed member, not a failed farm.
    out.ok = false;
    out.error = e.what();
    out.result.steps_committed = 0;
    out.result.rollbacks = 0;
  }
  charge_costs(rt, &out.result);
  return out;
}

}  // namespace hyades::farm
