// Result cache: completed job diagnostics keyed by (config hash, seed).
//
// The farm's dedup story: production campaigns resubmit members all the
// time (a re-queued sweep, an overlapping follow-up study, a user
// double-submitting), and every model run here is bit-deterministic, so
// an identical (configuration, seed) pair *must* produce identical
// bits.  Serving the cached diagnostics is therefore exact, not
// approximate -- zero simulated steps, zero cluster occupancy.
//
// Only successful runs are cached: a failed member (restart budget
// exhausted, solver divergence) depends on its injected adversity, and
// campaigns retry failures on purpose.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "farm/job.hpp"

namespace hyades::farm {

class ResultCache {
 public:
  using Key = std::pair<std::uint64_t, std::uint64_t>;  // (config, seed)

  // The cached result for the key, or nullptr on a miss (counted).
  [[nodiscard]] const JobResult* lookup(const Key& key);
  // Record a successful run.  First write wins: the bits are identical
  // by construction, and keeping the original preserves its cost
  // accounting in the producer's record.
  void insert(const Key& key, const JobResult& result);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::int64_t hits() const { return hits_; }
  [[nodiscard]] std::int64_t misses() const { return misses_; }

 private:
  std::map<Key, JobResult> entries_;  // ordered: iteration deterministic
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace hyades::farm
