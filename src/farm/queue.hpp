// Priority job queue with admission control.
//
// Dispatch order is a total, deterministic order: highest priority
// first, FIFO (submission sequence) within a priority class -- the
// CP-PACS-style production queue where a short validation member can
// overtake a bulk sweep without starving it.  Admission control is a
// hard pending-depth cap: a full queue rejects at submit time (the
// caller records the job kRejected) instead of growing without bound --
// a resident service under heavy traffic degrades by refusing work it
// cannot schedule, never by dying.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hyades::farm {

class JobQueue {
 public:
  // depth <= 0 means unbounded (test/benchmark convenience).
  explicit JobQueue(int max_pending = 0) : max_pending_(max_pending) {}

  // Admit job `id` at `priority`; false when the queue is full.
  bool push(int id, int priority);
  // Highest-priority, earliest-submitted pending job; -1 when drained.
  int pop();

  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  [[nodiscard]] bool empty() const { return pending_.empty(); }
  [[nodiscard]] int max_pending() const { return max_pending_; }

 private:
  struct Pending {
    int id;
    int priority;
    std::uint64_t seq;  // global submission sequence (FIFO tiebreak)
  };
  int max_pending_;
  std::uint64_t next_seq_ = 0;
  std::vector<Pending> pending_;  // small-N linear scan, like metrics
};

}  // namespace hyades::farm
