// The ensemble farm: a resident, deterministic job-queue service over a
// pool of simulated clusters.
//
// This is ROADMAP item 1 -- the CP-PACS/PACS-CS production-campaign
// model applied to climate ensembles.  A Farm accepts a queue of jobs
// (perturbed-parameter gyre or coupled-climate members, interconnect
// what-ifs, fault-sweep campaigns), schedules them across `clusters`
// pool slots in priority order, and serves duplicate submissions from a
// result cache keyed by (config hash, seed).
//
// Time: the farm keeps its own virtual *job clock*, distinct from (and
// built on) the per-run rank clocks.  A job's duration is its cluster's
// final virtual time -- a pure function of the spec -- so the whole
// schedule (start/finish stamps, pool-slot choice, makespan) is a pure
// function of the submitted queue.  Dispatch is sequential in priority
// order onto the earliest-free pool slot (lowest slot id on ties);
// cache-served jobs complete instantly at the dispatch-time clock.
// Two runs of the same queue therefore produce bit-identical campaign
// summaries -- the whole service is golden-lockable.
//
// Failure: a member whose cluster exhausts its restart budget (or whose
// solver diverges) is recorded kFailed with the typed error message and
// the virtual time it burned; the queue keeps draining.  Admission
// control bounds the pending queue: an over-capacity submit is recorded
// kRejected, never silently dropped.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "farm/cache.hpp"
#include "farm/job.hpp"
#include "farm/queue.hpp"
#include "support/metrics.hpp"
#include "support/units.hpp"

namespace hyades::farm {

struct FarmConfig {
  int clusters = 2;      // pool size (>= 1)
  int max_pending = 0;   // admission cap; <= 0 = unbounded
  // Durable-checkpoint scratch directory for resilient members; ""
  // resolves to <temp dir>/hyades_farm.  Created on first use.
  std::string scratch_dir;
};

class Farm {
 public:
  explicit Farm(FarmConfig cfg);

  // Enqueue a job; returns its id.  An over-capacity submit is recorded
  // kRejected (check job(id).status), never silently dropped.
  int submit(JobSpec spec);

  // Dispatch every pending job to completion (deterministic order).
  void run_until_drained();

  // The ledger entry for `id`.  The reference is into a growing
  // vector: invalidated by the next submit(); copy it to keep it.
  [[nodiscard]] const JobRecord& job(int id) const;
  [[nodiscard]] const std::vector<JobRecord>& jobs() const { return jobs_; }

  struct CampaignSummary {
    int submitted = 0;
    int completed = 0;  // includes cache-served
    int failed = 0;
    int rejected = 0;
    int cache_hits = 0;
    std::int64_t steps_committed = 0;  // freshly simulated steps
    std::int64_t steps_saved = 0;      // steps dedup'd away by the cache
    Microseconds busy_us = 0.0;        // summed cluster occupancy
    Microseconds makespan_us = 0.0;    // farm clock at drain
    std::int64_t retransmits = 0;
    std::int64_t restarts = 0;
    std::int64_t rollbacks = 0;
    std::int64_t migrations = 0;  // live tile adoptions across members
    std::int64_t rebalances = 0;  // hot-join handbacks across members
    std::int64_t downgrades = 0;  // recovery-ladder rungs fallen across members
  };
  [[nodiscard]] CampaignSummary summary() const;

  // Deterministic human-readable campaign report: the job ledger (KE in
  // hexfloat so bit-identity is visible) plus the summary totals.  Two
  // runs of the same queue produce byte-identical strings.
  [[nodiscard]] std::string format_summary() const;

  // Campaign-wide cost/usage counters (farm.* namespace), rolled up
  // from every executed job.
  [[nodiscard]] const metrics::Registry& campaign_metrics() const {
    return metrics_;
  }

  [[nodiscard]] Microseconds now() const { return now_; }
  [[nodiscard]] const ResultCache& cache() const { return cache_; }

 private:
  void dispatch(JobRecord& rec);
  [[nodiscard]] std::string scratch_prefix(int job_id);

  FarmConfig cfg_;
  JobQueue queue_;
  ResultCache cache_;
  metrics::Registry metrics_;
  std::vector<JobRecord> jobs_;
  std::vector<Microseconds> pool_free_at_;
  Microseconds now_ = 0.0;
  bool scratch_ready_ = false;
};

}  // namespace hyades::farm
