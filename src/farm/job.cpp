#include "farm/job.hpp"

#include <bit>

#include "support/rng.hpp"

namespace hyades::farm {

namespace {

// Same incremental-digest discipline as ModelConfig::fingerprint: every
// field absorbed in a fixed order, doubles by bit pattern.
struct Digest {
  std::uint64_t h;
  explicit Digest(std::uint64_t init) : h(init) {}
  void word(std::uint64_t w) { h = hash_mix(h, {w}); }
  void real(double v) { word(std::bit_cast<std::uint64_t>(v)); }
  void integer(std::int64_t v) { word(static_cast<std::uint64_t>(v)); }
};

std::uint64_t hash_fault_plan(const cluster::FaultPlan& p) {
  Digest d(0x4641554cu);  // "FAUL"
  d.word(p.seed);
  d.real(p.corrupt_prob);
  d.real(p.drop_prob);
  d.real(p.timeout_us);
  d.real(p.backoff_us);
  d.real(p.backoff_max_us);
  d.integer(p.max_attempts);
  d.integer(p.straggler_rank);
  d.real(p.straggler_factor);
  d.word(static_cast<std::uint64_t>(p.node_kills.size()));
  for (const cluster::NodeKill& k : p.node_kills) {
    d.integer(k.rank);
    d.real(k.at_us);
    d.integer(k.epoch);
  }
  d.word(static_cast<std::uint64_t>(p.link_kills.size()));
  for (const cluster::LinkKill& k : p.link_kills) {
    d.integer(k.smp_a);
    d.integer(k.smp_b);
    d.real(k.at_us);
  }
  d.word(static_cast<std::uint64_t>(p.node_joins.size()));
  for (const cluster::NodeJoin& j : p.node_joins) {
    d.integer(j.smp);
    d.integer(j.at_step);
  }
  d.real(p.heartbeat_deadline_us);
  d.integer(p.dead_peer_probes);
  d.real(p.restart_cost_us);
  d.real(p.migrate_cost_us);
  d.real(p.rebalance_cost_us);
  d.real(p.reroute_penalty_us);
  return d.h;
}

}  // namespace

std::uint64_t JobSpec::config_hash() const {
  Digest d(0x4a4f4253u);  // "JOBS"
  d.word(config.fingerprint());
  d.integer(machine.smp_count);
  d.integer(machine.procs_per_smp);
  d.integer(steps);
  // A disabled plan hashes as a single zero word so that default-faulted
  // specs compare equal regardless of the (unused) timing knobs.
  if (faults.enabled()) {
    d.word(hash_fault_plan(faults));
    d.integer(ckpt_every);
    d.integer(max_restarts);
    d.integer(recovery == gcm::RecoveryMode::kMigrate ? 1 : 0);
  } else {
    d.word(0);
  }
  return d.h;
}

const char* to_string(JobStatus s) {
  switch (s) {
    case JobStatus::kQueued: return "queued";
    case JobStatus::kCompleted: return "completed";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kRejected: return "rejected";
  }
  return "?";
}

}  // namespace hyades::farm
