// Job model for the ensemble farm: one JobSpec describes a complete,
// self-contained campaign member -- the machine to simulate, the model
// configuration to step, how many steps, the initialization seed, and
// an optional fault plan (fault-sweep and interconnect what-if members
// carry their injected adversity with them).
//
// Identity: config_hash() fingerprints everything that determines the
// *computation* -- model config, machine shape, step count, fault plan
// -- but NOT the seed; the farm's result cache keys on
// (config_hash, seed), the paper-campaign notion of "the same member":
// resubmitting an identical member must be served from cache, while a
// new seed of the same configuration is a fresh ensemble draw.
#pragma once

#include <cstdint>
#include <string>

#include "cluster/fault.hpp"
#include "gcm/config.hpp"
#include "gcm/resilient.hpp"
#include "support/units.hpp"

namespace hyades::farm {

// The simulated cluster a job wants (one tile per rank:
// smp_count * procs_per_smp must equal config.px * config.py).
struct MachineShape {
  int smp_count = 4;
  int procs_per_smp = 1;
  [[nodiscard]] int nranks() const { return smp_count * procs_per_smp; }
};

struct JobSpec {
  std::string name;      // human label; not part of the identity hash
  int priority = 0;      // higher dispatches first; FIFO within a class
  std::uint64_t seed = 7;  // Model::initialize seed (cache key, not hashed)
  int steps = 8;
  MachineShape machine;
  gcm::ModelConfig config;

  // Fault-campaign members: applied to the job's cluster when
  // faults.enabled().  A plan scheduling node kills routes the job
  // through the resilient restart driver with the knobs below.
  cluster::FaultPlan faults;
  int ckpt_every = 3;    // durable checkpoint cadence (resilient jobs)
  int max_restarts = 3;  // aborted epochs tolerated before kFailed
  // How node-kill members recover: restart the world from the newest
  // slot, or live-migrate the dead tiles onto survivors.  Part of the
  // identity hash (it changes the member's timing, not its bits).
  gcm::RecoveryMode recovery = gcm::RecoveryMode::kEpochRestart;

  // Everything that determines the stepped bits, hashed in a fixed
  // field order (see job.cpp); the seed deliberately stays out.
  [[nodiscard]] std::uint64_t config_hash() const;
};

enum class JobStatus {
  kQueued,     // admitted, waiting for a pool cluster
  kCompleted,  // ran (or was cache-served) to the requested step count
  kFailed,     // typed give-up (RestartExhausted, solver divergence...)
  kRejected,   // admission control refused the submit
};

[[nodiscard]] const char* to_string(JobStatus s);

// What a completed job produced, and what it cost.  Cache-served jobs
// copy the producer's diagnostics but report zero steps and zero
// virtual cost: the farm spent nothing to serve them.
struct JobResult {
  double kinetic_energy = 0.0;  // final KE (J), bit-deterministic
  double mean_theta = 0.0;      // final mean temperature
  int steps_committed = 0;      // model steps that advanced state
  Microseconds busy_us = 0.0;   // cluster occupancy (max rank clock)
  std::int64_t retransmits = 0;  // summed fault-recovery retries
  std::int64_t restarts = 0;     // summed epoch restarts
  int rollbacks = 0;             // soft-fault rollback replays
  int migrations = 0;            // dead tiles adopted live (migrate mode)
  int rebalances = 0;            // tiles handed back to hot-joined boards
  int downgrades = 0;            // recovery-ladder rungs fallen (summed)
};

// One farm ledger row: the spec plus everything the scheduler decided.
struct JobRecord {
  int id = -1;
  JobSpec spec;
  JobStatus status = JobStatus::kQueued;
  bool from_cache = false;
  int cluster = -1;             // pool slot; -1 = cache-served/rejected
  Microseconds submit_us = 0.0;  // farm job-clock timestamps
  Microseconds start_us = 0.0;
  Microseconds finish_us = 0.0;
  JobResult result;
  std::string error;  // non-empty iff kFailed / kRejected
};

}  // namespace hyades::farm
