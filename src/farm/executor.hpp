// Cluster-pool executor: runs one JobSpec on one simulated cluster and
// reports what it produced and what it cost.
//
// Every job gets a freshly constructed cluster::Runtime of its
// requested shape (a pool slot models *availability*, not reuse of
// warm state -- exactly the paper's dedicated machine being handed the
// next queued job).  Execution is synchronous and virtual-time
// deterministic, so the farm can drive the pool sequentially and still
// produce the schedule a concurrent pool would: a job's cost in
// virtual microseconds is independent of when the farm dispatches it.
//
// Jobs whose fault plan schedules node kills route through the
// resilient restart driver (gcm/resilient.hpp); a RestartExhausted or
// solver failure comes back as ok == false with the typed message --
// the farm reports the member failed and keeps draining the queue.
#pragma once

#include <string>

#include "farm/job.hpp"

namespace hyades::farm {

struct ExecutionOutcome {
  bool ok = false;
  JobResult result;   // diagnostics valid iff ok; cost fields always real
  std::string error;  // non-empty iff !ok
};

// Run the job to completion (or typed failure).  `scratch_prefix` is
// the durable-checkpoint path prefix for resilient members; plain
// members never touch the filesystem.  Throws only on caller bugs
// (rank/tile mismatch); injected adversity is reported, not thrown.
ExecutionOutcome execute_job(const JobSpec& spec,
                             const std::string& scratch_prefix);

}  // namespace hyades::farm
