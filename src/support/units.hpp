// Unit conventions shared across the hardware models and the performance
// model.
//
// All simulated time is carried either as integer picoseconds (SimTime in
// sim/time.hpp, for the discrete-event core where exact ordering matters)
// or as double microseconds (for the coarse virtual-clock runtime and the
// analytic model, matching the paper's units).
#pragma once

#include <cstdint>

namespace hyades {

// Double microseconds: the unit of the paper's tables (Os, Or, L, tgsum...).
using Microseconds = double;

// Convenience conversions.
constexpr double kUsPerSecond = 1.0e6;
constexpr double kUsPerMinute = 60.0e6;

constexpr Microseconds seconds_to_us(double s) { return s * kUsPerSecond; }
constexpr double us_to_seconds(Microseconds us) { return us / kUsPerSecond; }
constexpr double us_to_minutes(Microseconds us) { return us / kUsPerMinute; }

// Bandwidths are expressed as MByte/sec in the paper; internally we often
// need bytes/us which is numerically identical to MByte/sec.
constexpr double mbytes_per_sec_to_bytes_per_us(double mbps) { return mbps; }

// MFlop/sec == flops per microsecond.
constexpr double mflops_to_flops_per_us(double mflops) { return mflops; }

}  // namespace hyades
