#include "support/stats.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace hyades {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) {
    const double d = x - s.mean;
    ss += d * d;
  }
  s.stddev = std::sqrt(ss / static_cast<double>(xs.size()));
  return s;
}

LinearFit least_squares(std::span<const double> xs,
                        std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("least_squares: size mismatch");
  }
  if (xs.size() < 2) {
    throw std::invalid_argument("least_squares: need at least two points");
  }
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    throw std::invalid_argument("least_squares: degenerate x values");
  }
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;

  const double ymean = sy / n;
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit(xs[i]);
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - ymean) * (ys[i] - ymean);
  }
  fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

double relative_error(double a, double b, double eps) {
  const double scale = std::max(std::abs(b), eps);
  return std::abs(a - b) / scale;
}

}  // namespace hyades
