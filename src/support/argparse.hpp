// Checked command-line value parsing for the example/bench binaries.
//
// The drivers used to parse positional arguments with std::atoi, which
// silently yields 0 on garbage -- `production_run abc` ran zero
// segments and "succeeded", the worst kind of campaign-tooling failure.
// These helpers parse the *whole* token or die with a usage message.
//
// Layering: the pure parse_int/parse_double return nullopt on any
// garbage, partial parse, or out-of-range value (unit-testable, no
// exit); the checked_* wrappers are the one-liners main() wants --
// print `<what>: bad value '<text>'` plus the usage string to stderr
// and exit(2) (the conventional usage-error status).
#pragma once

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>

namespace hyades::support {

// Strict base-10 integer: optional sign, digits, nothing else.
[[nodiscard]] inline std::optional<long long> parse_int(
    std::string_view text) {
  if (text.empty()) return std::nullopt;
  long long v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return v;
}

// Strict floating-point: the full token must parse and be finite.
[[nodiscard]] inline std::optional<double> parse_double(
    std::string_view text) {
  if (text.empty()) return std::nullopt;
  // std::from_chars<double> is still missing from some libstdc++
  // configurations; strtod + a full-consumption check is equivalent
  // under the "C" locale the binaries run in.
  const std::string owned(text);
  char* end = nullptr;
  const double v = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size()) return std::nullopt;
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

[[noreturn]] inline void die_usage(const char* what, const char* text,
                                   const char* usage) {
  std::cerr << what << ": bad value '" << text << "'\nusage: " << usage
            << "\n";
  std::exit(2);
}

// Parse `text` as an int in [min, max] or exit(2) with the usage line.
[[nodiscard]] inline int checked_int(const char* text, const char* what,
                                     const char* usage, long long min = 1,
                                     long long max = 1000000000) {
  const std::optional<long long> v = parse_int(text);
  if (!v || *v < min || *v > max) die_usage(what, text, usage);
  return static_cast<int>(*v);
}

[[nodiscard]] inline double checked_double(const char* text, const char* what,
                                           const char* usage,
                                           double min = 0.0,
                                           double max = 1.0e12) {
  const std::optional<double> v = parse_double(text);
  if (!v || *v < min || *v > max) die_usage(what, text, usage);
  return *v;
}

}  // namespace hyades::support
