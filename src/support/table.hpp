// ASCII table printer used by the bench harness to emit paper-style
// tables (Figures 2, 10, 11, 12 and the Section 4.2 latency list).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace hyades {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Append a row; it must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  // Helpers for numeric cells.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(long long v);

  // Render with column alignment; title is printed above if nonempty.
  void print(std::ostream& os, const std::string& title = "") const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hyades
