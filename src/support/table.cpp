#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace hyades {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: headers must be nonempty");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_int(long long v) { return std::to_string(v); }

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_sep = [&] {
    os << '+';
    for (auto w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    }
    os << '\n';
  };

  if (!title.empty()) {
    os << title << '\n';
  }
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) {
    print_row(row);
  }
  print_sep();
}

}  // namespace hyades
