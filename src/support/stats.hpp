// Small statistics helpers: summary statistics and least-squares linear
// fits.  The paper fits tgsum = C*log2(N) + b by least squares (Section
// 4.2); bench_sec42_gsum reproduces that fit with LinearFit.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hyades {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> xs);

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  // coefficient of determination

  double operator()(double x) const { return slope * x + intercept; }
};

// Ordinary least-squares fit y = slope*x + intercept.  Requires
// xs.size() == ys.size() and at least two distinct x values.
LinearFit least_squares(std::span<const double> xs, std::span<const double> ys);

// Relative error |a-b| / max(|b|, eps); used pervasively by tests that
// compare measured values against the paper's tables.
double relative_error(double a, double b, double eps = 1e-300);

}  // namespace hyades
