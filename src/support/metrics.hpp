// A small named-counter registry for per-rank performance metrics.
//
// Each rank (or measurement window) fills one Registry with additive
// counters -- virtual-time buckets, byte counts, flop counts, event
// counts.  aggregate() folds the per-rank registries into min/mean/max
// rollups, the shape the wait-time-attribution report and the live
// Figure-11 breakdown consume.  Counters keep insertion order so tables
// print in the order the producer declared them.
#pragma once

#include <string>
#include <vector>

namespace hyades::metrics {

class Registry {
 public:
  // Add `v` to the named counter (created at 0 on first touch).
  void inc(const std::string& name, double v = 1.0);
  // Overwrite the named counter.
  void set(const std::string& name, double v);
  // Current value; 0.0 for a counter never touched.
  [[nodiscard]] double get(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const;

  struct Entry {
    std::string name;
    double value = 0;
  };
  // Insertion-ordered view of all counters.
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  // Divide every counter by `n` (per-step rollups from per-run totals).
  [[nodiscard]] Registry per(double n) const;

  // Fold another registry into this one, name-wise additive (new names
  // are appended in the other registry's order).  The ensemble farm
  // rolls per-job cost registries into its campaign registry this way.
  void merge(const Registry& other);

 private:
  Entry* find(const std::string& name);
  [[nodiscard]] const Entry* find(const std::string& name) const;
  std::vector<Entry> entries_;  // small-N: linear scan beats a map here
};

// Cross-rank rollup of one counter.
struct Rollup {
  std::string name;
  double min = 0, max = 0, sum = 0, mean = 0;
};

// Fold per-rank registries counter-by-counter.  The union of names is
// taken (a rank missing a counter contributes 0); order follows the
// first registry that mentions each name.
std::vector<Rollup> aggregate(const std::vector<const Registry*>& per_rank);

}  // namespace hyades::metrics
