#include "support/metrics.hpp"

#include <algorithm>

namespace hyades::metrics {

Registry::Entry* Registry::find(const std::string& name) {
  for (Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const Registry::Entry* Registry::find(const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

void Registry::inc(const std::string& name, double v) {
  if (Entry* e = find(name)) {
    e->value += v;
  } else {
    entries_.push_back({name, v});
  }
}

void Registry::set(const std::string& name, double v) {
  if (Entry* e = find(name)) {
    e->value = v;
  } else {
    entries_.push_back({name, v});
  }
}

double Registry::get(const std::string& name) const {
  const Entry* e = find(name);
  return e ? e->value : 0.0;
}

bool Registry::has(const std::string& name) const {
  return find(name) != nullptr;
}

void Registry::merge(const Registry& other) {
  for (const Entry& e : other.entries_) inc(e.name, e.value);
}

Registry Registry::per(double n) const {
  Registry out;
  for (const Entry& e : entries_) {
    out.set(e.name, n != 0.0 ? e.value / n : 0.0);
  }
  return out;
}

std::vector<Rollup> aggregate(const std::vector<const Registry*>& per_rank) {
  std::vector<Rollup> out;
  const auto rollup_of = [&out](const std::string& name) -> Rollup* {
    for (Rollup& r : out) {
      if (r.name == name) return &r;
    }
    return nullptr;
  };
  // Union of names, ordered by first appearance.
  for (const Registry* reg : per_rank) {
    if (reg == nullptr) continue;
    for (const Registry::Entry& e : reg->entries()) {
      if (rollup_of(e.name) == nullptr) out.push_back({e.name, 0, 0, 0, 0});
    }
  }
  int nregs = 0;
  for (const Registry* reg : per_rank) {
    if (reg != nullptr) ++nregs;
  }
  for (Rollup& r : out) {
    bool first = true;
    for (const Registry* reg : per_rank) {
      if (reg == nullptr) continue;
      const double v = reg->get(r.name);
      r.sum += v;
      r.min = first ? v : std::min(r.min, v);
      r.max = first ? v : std::max(r.max, v);
      first = false;
    }
    r.mean = nregs > 0 ? r.sum / nregs : 0.0;
  }
  return out;
}

}  // namespace hyades::metrics
