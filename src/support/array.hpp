// Dense 2-D / 3-D array containers used throughout the GCM and the
// hardware models.
//
// Layout conventions:
//   Array2D<T>(nx, ny)      -- index (i, j), row-major in j (j fastest).
//   Array3D<T>(nx, ny, nz)  -- index (i, j, k), k fastest.
//
// The GCM's hot loops iterate k innermost (vertical columns are
// contiguous), which matches the paper's column-oriented decomposition:
// "the vertical dimension stays within a single node".
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <vector>

namespace hyades {

template <typename T>
class Array2D {
 public:
  Array2D() = default;
  Array2D(std::size_t nx, std::size_t ny, T init = T{})
      : nx_(nx), ny_(ny), data_(nx * ny, init) {}

  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  T& operator()(std::size_t i, std::size_t j) {
    assert(i < nx_ && j < ny_);
    return data_[i * ny_ + j];
  }
  const T& operator()(std::size_t i, std::size_t j) const {
    assert(i < nx_ && j < ny_);
    return data_[i * ny_ + j];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  friend bool operator==(const Array2D& a, const Array2D& b) {
    return a.nx_ == b.nx_ && a.ny_ == b.ny_ && a.data_ == b.data_;
  }

 private:
  std::size_t nx_ = 0, ny_ = 0;
  std::vector<T> data_;
};

template <typename T>
class Array3D {
 public:
  Array3D() = default;
  Array3D(std::size_t nx, std::size_t ny, std::size_t nz, T init = T{})
      : nx_(nx), ny_(ny), nz_(nz), data_(nx * ny * nz, init) {}

  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] std::size_t nz() const { return nz_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  T& operator()(std::size_t i, std::size_t j, std::size_t k) {
    assert(i < nx_ && j < ny_ && k < nz_);
    return data_[(i * ny_ + j) * nz_ + k];
  }
  const T& operator()(std::size_t i, std::size_t j, std::size_t k) const {
    assert(i < nx_ && j < ny_ && k < nz_);
    return data_[(i * ny_ + j) * nz_ + k];
  }

  // Pointer to the contiguous vertical column at (i, j).
  T* column(std::size_t i, std::size_t j) { return &data_[(i * ny_ + j) * nz_]; }
  const T* column(std::size_t i, std::size_t j) const {
    return &data_[(i * ny_ + j) * nz_];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  friend bool operator==(const Array3D& a, const Array3D& b) {
    return a.nx_ == b.nx_ && a.ny_ == b.ny_ && a.nz_ == b.nz_ &&
           a.data_ == b.data_;
  }

 private:
  std::size_t nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<T> data_;
};

}  // namespace hyades
