// Clang thread-safety-analysis attribute shim.
//
// These macros expand to Clang's `-Wthread-safety` attributes when the
// compiler supports them and to nothing elsewhere (GCC, MSVC), so the
// annotations cost zero on non-Clang builds while letting a Clang build
// prove at compile time that every GUARDED_BY field is only touched with
// its mutex held.  The vocabulary follows the official Clang
// documentation (and Abseil's thread_annotations.h): CAPABILITY marks a
// lockable type, GUARDED_BY ties data to its lock, REQUIRES/ACQUIRE/
// RELEASE annotate functions, SCOPED_CAPABILITY marks RAII guards.
//
// The annotated wrapper types (support::Mutex, support::MutexLock,
// support::CondVar) live in support/sync.hpp; annotate shared state with
// those rather than raw std::mutex, because libstdc++'s std::mutex
// carries no capability attributes and the analysis cannot see through
// it.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define HYADES_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define HYADES_THREAD_ANNOTATION_(x)  // no-op
#endif

// Type attributes ----------------------------------------------------------

// Marks a class as a lockable capability ("mutex" names the capability
// kind in diagnostics).
#define CAPABILITY(x) HYADES_THREAD_ANNOTATION_(capability(x))

// Marks an RAII class whose constructor acquires and destructor releases
// a capability.
#define SCOPED_CAPABILITY HYADES_THREAD_ANNOTATION_(scoped_lockable)

// Data attributes ----------------------------------------------------------

// The field may only be read or written while holding `x`.
#define GUARDED_BY(x) HYADES_THREAD_ANNOTATION_(guarded_by(x))

// The pointed-to data (not the pointer itself) is protected by `x`.
#define PT_GUARDED_BY(x) HYADES_THREAD_ANNOTATION_(pt_guarded_by(x))

// Lock-ordering declarations.
#define ACQUIRED_BEFORE(...) \
  HYADES_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  HYADES_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// Function attributes ------------------------------------------------------

// The caller must hold the capability (exclusively / shared) on entry,
// and still holds it on exit.
#define REQUIRES(...) \
  HYADES_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  HYADES_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// The function acquires / releases the capability and holds / no longer
// holds it on exit.
#define ACQUIRE(...) HYADES_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  HYADES_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) HYADES_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  HYADES_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

// The function attempts the acquisition; `b` is the return value that
// means success.
#define TRY_ACQUIRE(b, ...) \
  HYADES_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))

// The caller must NOT hold the capability (guards against recursive
// locking of a non-recursive mutex).
#define EXCLUDES(...) HYADES_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Returns a reference to the capability guarding this object.
#define RETURN_CAPABILITY(x) HYADES_THREAD_ANNOTATION_(lock_returned(x))

// The function asserts (at run time or by construction) that the calling
// thread already holds the capability; the analysis trusts it from that
// point on.  Used inside condition-variable predicates, which execute
// with the mutex held but are lambdas the analysis cannot annotate.
#define ASSERT_CAPABILITY(...) \
  HYADES_THREAD_ANNOTATION_(assert_capability(__VA_ARGS__))

// Escape hatch: the function does lock-dependent work the analysis
// cannot follow.  Every use needs a justifying comment.
#define NO_THREAD_SAFETY_ANALYSIS \
  HYADES_THREAD_ANNOTATION_(no_thread_safety_analysis)
