// Small deterministic RNG (SplitMix64) used for reproducible test data,
// synthetic workloads and the fat-tree's "random uproute" load balancing.
// We avoid <random> engines in simulation paths so that results are
// bit-identical across standard library implementations.
#pragma once

#include <cstdint>
#include <initializer_list>

namespace hyades {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
      : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return n ? next() % n : 0; }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform double in [lo, hi).
  double next_in(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

 private:
  std::uint64_t state_;
};

// Stateless counter-mode hashing built on the SplitMix64 finalizer.  A
// fault decision keyed on (seed, src, dst, serial, attempt) must be a
// pure function of its keys: shared mutable RNG state would make the
// decision depend on which rank-thread asked first (nondeterministic
// under real scheduling) and would perturb consumers of the sequential
// stream (the fabric's random-uproute decisions must be bit-identical
// with faults on or off).
[[nodiscard]] inline std::uint64_t hash_mix(std::uint64_t seed,
                                            std::initializer_list<std::uint64_t> keys) {
  std::uint64_t h = seed;
  for (std::uint64_t k : keys) {
    h += 0x9e3779b97f4a7c15ull + k;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    h = h ^ (h >> 31);
  }
  return h;
}

// Uniform double in [0, 1) derived from hash_mix (same mantissa recipe
// as SplitMix64::next_double).
[[nodiscard]] inline double hash_unit(std::uint64_t seed,
                                      std::initializer_list<std::uint64_t> keys) {
  return static_cast<double>(hash_mix(seed, keys) >> 11) *
         (1.0 / 9007199254740992.0);
}

}  // namespace hyades
