// Minimal thread-safe logging with severity levels.  The cluster runtime
// runs ranks on threads, so log lines must not interleave mid-line.
#pragma once

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace hyades {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are dropped.  Defaults to kWarn so
// tests and benches stay quiet unless something is wrong.
void set_log_level(LogLevel level);
LogLevel log_level();

// Emit one complete line (severity tag prepended) under a global mutex.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LogStream log_debug() {
  return detail::LogStream(LogLevel::kDebug);
}
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() {
  return detail::LogStream(LogLevel::kError);
}

// Admission control for high-frequency warning sites (fault storms can
// produce one recovery event per packet).  The first `burst` events are
// admitted, after which only every `every`-th event passes; suppressed()
// reports how many were swallowed so a summary line can say so.
// Thread-safe: each rank-thread may share one limiter.
class RateLimiter {
 public:
  explicit RateLimiter(std::uint64_t burst = 5, std::uint64_t every = 100)
      : burst_(burst), every_(every == 0 ? 1 : every) {}

  // The pure admission rule for event number `n` (0-based): inside the
  // burst window, or on a stride boundary past it.  With burst == 0 the
  // very first event is still admitted (0 % every == 0) -- a limiter is
  // a thinner, never a silencer.  Unsigned wraparound of `n` is
  // well-defined and merely restarts the cycle.
  static constexpr bool admits(std::uint64_t n, std::uint64_t burst,
                               std::uint64_t every) {
    return n < burst || (n - burst) % (every == 0 ? 1 : every) == 0;
  }

  // True if the caller should emit this event's log line.
  bool admit() {
    const std::uint64_t n = seen_.fetch_add(1, std::memory_order_relaxed);
    const bool ok = admits(n, burst_, every_);
    if (!ok) suppressed_.fetch_add(1, std::memory_order_relaxed);
    return ok;
  }

  [[nodiscard]] std::uint64_t seen() const {
    return seen_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t burst_;
  std::uint64_t every_;
  std::atomic<std::uint64_t> seen_{0};
  std::atomic<std::uint64_t> suppressed_{0};
};

}  // namespace hyades
