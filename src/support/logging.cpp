#include "support/logging.hpp"

#include <atomic>
#include <iostream>

#include "support/sync.hpp"

namespace hyades {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
// Serializes whole lines onto std::cerr (the guarded resource is the
// stream itself, which cannot carry a GUARDED_BY annotation).
support::Mutex g_mutex;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "[debug] ";
    case LogLevel::kInfo:
      return "[info ] ";
    case LogLevel::kWarn:
      return "[warn ] ";
    case LogLevel::kError:
      return "[error] ";
  }
  return "[?????] ";
}

}  // namespace

// The level is a standalone filter knob: no other data is published
// with it, so relaxed ordering is sufficient (threads only need to
// eventually see the new level, not anything it guards).
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) <
      static_cast<int>(g_level.load(std::memory_order_relaxed))) {
    return;
  }
  support::MutexLock lock(g_mutex);
  std::cerr << tag(level) << msg << '\n';
}

}  // namespace hyades
