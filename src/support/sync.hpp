// Annotated synchronization primitives for the cluster runtime.
//
// Thin wrappers over std::mutex / std::condition_variable_any that carry
// the Clang thread-safety capability attributes (support/
// thread_annotations.hpp).  libstdc++'s own types are un-annotated, so
// guarding a field with a raw std::mutex is invisible to
// `-Wthread-safety`; guarding it with support::Mutex lets a Clang build
// reject any access that does not provably hold the lock.
//
// Zero-overhead by construction: every method is an inline forward to
// the std primitive, and the attributes vanish on non-Clang compilers.
#pragma once

#include <condition_variable>
#include <mutex>

#include "support/thread_annotations.hpp"

namespace hyades::support {

// A standard exclusive mutex, annotated as a capability.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Declare (to the analysis) that this thread holds the mutex.  Only
  // for contexts that provably run under the lock but that the analysis
  // cannot see into -- e.g. the first line of a CondVar predicate.
  void assert_held() const ASSERT_CAPABILITY() {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII guard (the annotated equivalent of std::lock_guard).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable that waits directly on a support::Mutex.
//
// Built on condition_variable_any (which accepts any BasicLockable), so
// callers keep the annotated mutex type through the wait and the
// analysis sees the REQUIRES contract: the mutex must be held to call
// wait*(), and is held again when it returns.  The transient
// unlock/relock inside std::condition_variable_any is invisible to the
// analysis, which is exactly the fiction thread-safety analysis expects
// of a condition wait (same treatment as Abseil's CondVar).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  template <typename Predicate>
  void wait(Mutex& mu, Predicate pred) REQUIRES(mu) {
    cv_.wait(mu, pred);
  }

  // Returns false if `dur` elapsed with the predicate still false.
  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& dur,
                Predicate pred) REQUIRES(mu) {
    return cv_.wait_for(mu, dur, pred);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace hyades::support
