// Calibration drivers: the "stand-alone benchmarks" of Section 5.3.
//
// measure_primitives runs the comm library's exchange / global-sum
// primitives with production-sized payloads on the simulated cluster and
// reports their virtual-time costs -- the measured analogs of Figure
// 11's tgsum / texchxy / texchxyz columns.
//
// measure_model runs the real GCM for a few steps and extracts the
// remaining Figure-11 parameters (Nps, nxyz, Nds, nxy, Ni) from the
// kernel flop counters, plus sustained Flop rates for the Figure 10
// analog.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/runtime.hpp"
#include "cluster/trace.hpp"
#include "gcm/config.hpp"
#include "net/interconnect.hpp"
#include "perf/params.hpp"

namespace hyades::perf {

struct MachineShape {
  int smps = 8;
  int procs_per_smp = 2;
  [[nodiscard]] int nranks() const { return smps * procs_per_smp; }
};

struct PrimitiveCosts {
  Microseconds tgsum = 0;          // one global sum
  Microseconds texchxy = 0;        // 2-D halo-1 exchange, one field
  Microseconds texchxyz_atmos = 0; // 3-D halo-3 exchange, 10 levels
  Microseconds texchxyz_ocean = 0; // 3-D halo-3 exchange, 30 levels
};

PrimitiveCosts measure_primitives(const net::Interconnect& net,
                                  MachineShape shape = {},
                                  int repetitions = 16);

struct ModelMeasurement {
  PerfParams params;        // measured Figure-11 analog
  double ni = 0;            // mean CG iterations per step
  Microseconds step_us = 0; // mean virtual time per model step
  Microseconds tps_us = 0, tps_exch_us = 0, tds_us = 0;  // per step
  double per_proc_mflops = 0;   // sustained, busiest rank
  double aggregate_gflops = 0;  // whole machine
  long steps = 0;
  std::int64_t wet_cells = 0;    // per processor (rank 0's tile)
  std::int64_t wet_columns = 0;
};

// Per-rank observability capture of a measure_model run: tracers are
// attached *after* the warmup steps, so the spans and the accounting
// deltas cover exactly the measured window.  Tracing only reads the
// virtual clock, so a captured run's timing (and ModelMeasurement) is
// bit-identical to an uncaptured one.
struct TraceCapture {
  std::vector<cluster::Tracer> tracers;   // one per rank
  std::vector<cluster::Accounting> acct;  // accounting delta per rank
  int procs_per_smp = 1;                  // for write_trace_json pids
  Microseconds window_us = 0;             // slowest rank's measured time
  long steps = 0;
};

// Runs cfg (whose px*py must equal shape.nranks()) on the given
// interconnect: `warmup` steps to pass the Adams-Bashforth start-up and
// the initial pressure adjustment (which inflate the CG iteration
// count), then `steps` measured steps.  Nps/nxyz are normalized by the
// full tile cell count, as in Figure 11 (the paper's nxyz = grid/procs,
// land included).  When `capture` is non-null it is filled with the
// measured window's per-rank trace and accounting deltas.
ModelMeasurement measure_model(const gcm::ModelConfig& cfg,
                               const net::Interconnect& net,
                               MachineShape shape, int steps,
                               int warmup = 2,
                               TraceCapture* capture = nullptr);

}  // namespace hyades::perf
