// The analytic performance model of Section 5.2 (Eqs. 4-13) and the
// Potential Floating-Point Performance metric of Section 5.4
// (Eqs. 14-15).
#pragma once

#include "perf/params.hpp"

namespace hyades::perf {

// ---- Eqs. 4-6: PS phase -------------------------------------------------
Microseconds tps_compute(const PhaseParams& p);  // Nps*nxyz / Fps
Microseconds tps_exch(const PhaseParams& p);     // 5 * texchxyz
Microseconds tps(const PhaseParams& p);

// ---- Overlap extension: split-phase PS exchanges --------------------------
// With compute/communication overlap (ModelConfig::overlap_comm) the PS
// pays only the exchange time not hidden under the interior compute:
//   T_exch_effective = max(0, t_exch - t_interior)
// where t_interior is the virtual time of the interior tendency pass
// (measured, or estimated as the interior share of tps_compute).
Microseconds tps_exch_effective(const PhaseParams& p, Microseconds t_interior);
// Refinement: only the in-flight (wire) portion of the exchange can hide
// under compute; the CPU-side portion -- injection overheads, local
// copies, the drain of the second (north/south) stage -- is paid
// regardless and bounds the effective cost from below.  `t_exch_cpu` is
// that floor (measured, or estimated from transfer_overhead()).
Microseconds tps_exch_effective(const PhaseParams& p, Microseconds t_interior,
                                Microseconds t_exch_cpu);
// Eq. (4) with the overlap term: tps_compute + tps_exch_effective.
Microseconds tps_overlap(const PhaseParams& p, Microseconds t_interior);
Microseconds tps_overlap(const PhaseParams& p, Microseconds t_interior,
                         Microseconds t_exch_cpu);
// Eq. (11) with the PS overlap term (the DS is unchanged).
Microseconds trun_overlap(const PerfParams& p, long nt, double ni,
                          Microseconds t_interior);

// ---- Eqs. 7-10: DS phase (per solver iteration) ---------------------------
Microseconds tds_compute(const DsParams& p);  // Nds*nxy / Fds
Microseconds tds_exch(const DsParams& p);     // 2 * texchxy
Microseconds tds_gsum(const DsParams& p);     // 2 * tgsum
Microseconds tds(const DsParams& p);

// ---- Eq. 11: total runtime ------------------------------------------------
Microseconds trun(const PerfParams& p, long nt, double ni);

// ---- Eqs. 12-13: communication / computation split -------------------------
Microseconds tcomm(const PerfParams& p, long nt, double ni);
Microseconds tcomp(const PerfParams& p, long nt, double ni);

// ---- Eqs. 14-15: Potential Floating-Point Performance ----------------------
// Per-processor MFlop/s if computation took zero time.
double pfpp_ps(const PhaseParams& p);
double pfpp_ds(const DsParams& p);

// Sustained per-processor MFlop/s over a full model step with mean
// solver iteration count ni (used for the Figure 10 analog).
double sustained_mflops(const PerfParams& p, double ni);

// Substitute alternative-interconnect primitive costs into a parameter
// set (how Figure 12's rows are built).
PerfParams with_interconnect(PerfParams p, const InterconnectCosts& costs);

}  // namespace hyades::perf
