// The analytic performance model of Section 5.2 (Eqs. 4-13) and the
// Potential Floating-Point Performance metric of Section 5.4
// (Eqs. 14-15).
#pragma once

#include "perf/params.hpp"

namespace hyades::perf {

// ---- Eqs. 4-6: PS phase -------------------------------------------------
Microseconds tps_compute(const PhaseParams& p);  // Nps*nxyz / Fps
Microseconds tps_exch(const PhaseParams& p);     // 5 * texchxyz
Microseconds tps(const PhaseParams& p);

// ---- Eqs. 7-10: DS phase (per solver iteration) ---------------------------
Microseconds tds_compute(const DsParams& p);  // Nds*nxy / Fds
Microseconds tds_exch(const DsParams& p);     // 2 * texchxy
Microseconds tds_gsum(const DsParams& p);     // 2 * tgsum
Microseconds tds(const DsParams& p);

// ---- Eq. 11: total runtime ------------------------------------------------
Microseconds trun(const PerfParams& p, long nt, double ni);

// ---- Eqs. 12-13: communication / computation split -------------------------
Microseconds tcomm(const PerfParams& p, long nt, double ni);
Microseconds tcomp(const PerfParams& p, long nt, double ni);

// ---- Eqs. 14-15: Potential Floating-Point Performance ----------------------
// Per-processor MFlop/s if computation took zero time.
double pfpp_ps(const PhaseParams& p);
double pfpp_ds(const DsParams& p);

// Sustained per-processor MFlop/s over a full model step with mean
// solver iteration count ni (used for the Figure 10 analog).
double sustained_mflops(const PerfParams& p, double ni);

// Substitute alternative-interconnect primitive costs into a parameter
// set (how Figure 12's rows are built).
PerfParams with_interconnect(PerfParams p, const InterconnectCosts& costs);

}  // namespace hyades::perf
